// tormet_node: runs exactly one role (PSC TS/CP/DC or PrivCount TS/SK/DC)
// of a distributed deployment, as described by a shared plan file.
//
//   tormet_node --config <plan.cfg> --node <id>
//
// The process serves its role's protocol messages over TCP and exits 0
// once the round's explicit DONE/ACK completion handshake finishes. The
// tally-server role additionally writes the serialized tally to the plan's
// tally path. Exits non-zero (with a message on stderr) on config,
// protocol, or transport failures.
#include <cstring>
#include <iostream>
#include <string>

#include "src/cli/deployment_plan.h"
#include "src/cli/node_runner.h"
#include "src/util/logging.h"

namespace {

void usage() {
  std::cerr << "usage: tormet_node --config <plan.cfg> --node <id> [--verbose]\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  long node = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--node" && i + 1 < argc) {
      const char* value = argv[++i];
      char* end = nullptr;
      node = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || node < 0) {
        std::cerr << "tormet_node: --node expects a numeric id, got '" << value
                  << "'\n";
        return 2;
      }
    } else if (arg == "--verbose") {
      tormet::set_log_level(tormet::log_level::info);
    } else {
      usage();
      return 2;
    }
  }
  if (config_path.empty() || node < 0) {
    usage();
    return 2;
  }

  try {
    const tormet::cli::deployment_plan plan = tormet::cli::load_plan(config_path);
    const tormet::cli::node_result result = tormet::cli::run_node(
        plan, static_cast<tormet::net::node_id>(node));
    if (!result.tally.empty()) std::cout << result.tally;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "tormet_node (node " << node << "): " << e.what() << "\n";
    return 1;
  }
}
