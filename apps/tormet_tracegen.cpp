// tormet_tracegen: renders the workload models into deterministic per-DC
// event-trace files and a ready-to-run deployment plan, so every paper
// workload can drive a real multi-process round end to end:
//
//   # generate: traces + plan.cfg into --out
//   tormet_tracegen --model browsing --out /tmp/traces --dcs 4
//   tormet_orchestrator --config /tmp/traces/plan.cfg --check-inproc
//
//   # feed: stream an existing trace file to a DC's event socket
//   tormet_tracegen --feed 127.0.0.1:9100 --in /tmp/traces/dc-0.trace
//
// Generation is a pure function of (--model, --dcs, --scale, --events,
// --seed): the same flags reproduce byte-identical traces anywhere. The
// emitted plan measures the model's defaults (cli::defaults_for_model);
// edit plan.cfg to change counters, noise, or topology.
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "src/cli/deployment_plan.h"
#include "src/cli/workload_source.h"
#include "src/tor/trace_socket.h"
#include "src/workload/scenario.h"
#include "src/workload/trace_gen.h"

namespace {

void usage() {
  std::cerr
      << "usage: tormet_tracegen --out DIR [--model "
         "zipf|browsing|onion|population|mixed]\n"
         "         [--dcs N] [--scale X] [--events N] [--seed S] [--days N]\n"
         "         [--relays N] [--sample-prob P]\n"
         "         [--protocol psc|privcount] [--cps N] [--sks N]\n"
         "         [--bins B] [--group toy|p256] [--port-base P] [--no-plan]\n"
         "       tormet_tracegen --scenario flash_crowd|diurnal|botnet_surge|"
         "relay_churn|country_block\n"
         "         --out DIR [--dcs N] [--scale X] [--events N] [--seed S] "
         "[--days N] [...]\n"
         "       tormet_tracegen --feed HOST:PORT --in TRACE_FILE\n"
         "\n"
         "--days N renders N days of population churn into one trace per DC\n"
         "and declares an N-round daily schedule in the emitted plan, so the\n"
         "Table 5 multi-day unique-client measurements run end to end.\n"
         "\n"
         "--scenario renders a named time-varying workload (see\n"
         "docs/SCENARIOS.md): traces, a ground_truth.cfg sidecar with the\n"
         "per-round true statistics, and a plan whose DCs materialize the\n"
         "scenario deterministically (workload scenario ...).\n"
         "\n"
         "--relays N emits a `workload relays` plan instead of a trace plan:\n"
         "each DC embeds N/dcs always-on relay stats agents that publish\n"
         "per-window .pub files, aggregated back into the sharded ingest\n"
         "plane (see docs/RELAY_AGENT.md). --sample-prob P (default 1.0)\n"
         "sets the per-circuit sampling probability.\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tormet;

  workload::trace_gen_params params;
  std::string scenario;
  bool scale_given = false;
  std::string out_dir;
  std::string feed_target;
  std::string feed_file;
  std::string protocol = "privcount";
  std::size_t cps = 3, sks = 3;
  std::uint64_t bins = 4096;
  std::uint64_t relays = 0;
  double sample_prob = 1.0;
  std::string group = "toy";
  unsigned port_base = 7450;
  bool write_plan = true;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") out_dir = next();
    else if (arg == "--model") params.model = next();
    else if (arg == "--scenario") scenario = next();
    else if (arg == "--dcs") params.dcs = std::strtoul(next(), nullptr, 10);
    else if (arg == "--scale") {
      params.scale = std::strtod(next(), nullptr);
      scale_given = true;
    }
    else if (arg == "--events") params.events = std::strtoul(next(), nullptr, 10);
    else if (arg == "--seed") params.seed = std::strtoul(next(), nullptr, 10);
    else if (arg == "--days") params.days = std::strtoul(next(), nullptr, 10);
    else if (arg == "--protocol") protocol = next();
    else if (arg == "--cps") cps = std::strtoul(next(), nullptr, 10);
    else if (arg == "--sks") sks = std::strtoul(next(), nullptr, 10);
    else if (arg == "--bins") bins = std::strtoul(next(), nullptr, 10);
    else if (arg == "--relays") relays = std::strtoul(next(), nullptr, 10);
    else if (arg == "--sample-prob") sample_prob = std::strtod(next(), nullptr);
    else if (arg == "--group") group = next();
    else if (arg == "--port-base") port_base = static_cast<unsigned>(
                                       std::strtoul(next(), nullptr, 10));
    else if (arg == "--no-plan") write_plan = false;
    else if (arg == "--feed") feed_target = next();
    else if (arg == "--in") feed_file = next();
    else {
      usage();
      return 2;
    }
  }

  try {
    // -- feed mode ----------------------------------------------------------
    if (!feed_target.empty() || !feed_file.empty()) {
      if (feed_target.empty() || feed_file.empty()) {
        usage();
        return 2;
      }
      const std::size_t colon = feed_target.rfind(':');
      if (colon == std::string::npos) {
        std::cerr << "tormet_tracegen: --feed expects HOST:PORT\n";
        return 2;
      }
      const std::string host = feed_target.substr(0, colon);
      const auto port = static_cast<std::uint16_t>(
          std::strtoul(feed_target.c_str() + colon + 1, nullptr, 10));
      const std::size_t sent =
          tor::stream_trace_to_socket(host, port, feed_file);
      std::cerr << "tormet_tracegen: streamed " << sent << " events to "
                << feed_target << "\n";
      return 0;
    }

    // -- generate mode ------------------------------------------------------
    if (out_dir.empty()) {
      usage();
      return 2;
    }
    // -- scenario mode: traces + ground-truth sidecar + scenario plan -------
    if (!scenario.empty()) {
      if (!workload::is_known_scenario(scenario)) {
        std::cerr << "tormet_tracegen: unknown scenario '" << scenario << "'\n";
        return 2;
      }
      if (params.days < 1) {
        std::cerr << "tormet_tracegen: --days must be >= 1\n";
        return 2;
      }
      workload::scenario_params sp;
      sp.name = scenario;
      sp.dcs = params.dcs;
      // --scale means client-population scale here; the trace models'
      // network_scale default would render a minimal population.
      sp.scale = scale_given ? params.scale : 1.0;
      sp.events = params.events;
      sp.seed = params.seed;
      sp.days = params.days;
      std::filesystem::create_directories(out_dir);
      const std::vector<std::size_t> counts =
          workload::write_scenario_dir(sp, out_dir);
      std::size_t total = 0;
      for (std::size_t k = 0; k < counts.size(); ++k) {
        std::cerr << "  dc-" << k << ".trace: " << counts[k] << " events\n";
        total += counts[k];
      }
      std::cerr << "tormet_tracegen: scenario " << scenario << ", " << total
                << " events across " << sp.dcs << " DCs -> " << out_dir
                << " (+ ground_truth.cfg)\n";
      if (write_plan) {
        cli::deployment_plan plan;
        if (protocol == "psc") {
          plan = cli::make_psc_plan(sp.dcs, cps, bins);
          plan.round.group = group == "p256" ? crypto::group_backend::p256
                                             : crypto::group_backend::toy;
        } else if (protocol == "privcount") {
          plan = cli::make_privcount_plan(sp.dcs, sks, {{"placeholder", 1, 1}});
          plan.counters.clear();
        } else {
          usage();
          return 2;
        }
        const cli::trace_round_defaults defaults =
            cli::defaults_for_scenario(scenario);
        // The plan's DCs materialize the scenario themselves (pure function
        // of the plan); the trace files beside it are for inspection and
        // socket feeding.
        plan.workload.kind = cli::workload_kind::scenario;
        plan.workload.model = scenario;
        plan.workload.scale = sp.scale;
        plan.workload.events = sp.events;
        plan.workload.gen_seed = sp.seed;
        plan.workload.gen_days = sp.days;
        if (sp.days > 1) {
          plan.schedule_rounds = static_cast<std::uint32_t>(sp.days);
          plan.round_duration_s = tormet::k_seconds_per_day;
          plan.round_gap_s = 0;
        }
        plan.psc_extractor = defaults.psc_extractor;
        plan.instruments = defaults.instruments;
        plan.counters = defaults.counters;
        plan.rng_seed = sp.seed;
        plan.tally_path =
            (std::filesystem::absolute(out_dir) / "tally.out").string();
        for (std::size_t k = 0; k < plan.nodes.size(); ++k) {
          plan.nodes[k].port = static_cast<std::uint16_t>(port_base + k);
        }
        const std::string plan_path = out_dir + "/plan.cfg";
        cli::save_plan(plan, plan_path);
        std::cerr << "tormet_tracegen: wrote " << plan_path << " ("
                  << plan.protocol << ", " << plan.nodes.size()
                  << " nodes, ports " << port_base << "..)\n";
      }
      return 0;
    }
    if (!workload::is_known_trace_model(params.model)) {
      std::cerr << "tormet_tracegen: unknown model '" << params.model << "'\n";
      return 2;
    }
    if (params.days < 1) {
      std::cerr << "tormet_tracegen: --days must be >= 1\n";
      return 2;
    }
    std::filesystem::create_directories(out_dir);
    const std::vector<std::size_t> counts =
        workload::write_trace_dir(params, out_dir);
    std::size_t total = 0;
    for (std::size_t k = 0; k < counts.size(); ++k) {
      std::cerr << "  dc-" << k << ".trace: " << counts[k] << " events\n";
      total += counts[k];
    }
    std::cerr << "tormet_tracegen: model " << params.model << ", " << total
              << " events across " << params.dcs << " DCs -> " << out_dir
              << "\n";

    if (write_plan) {
      cli::deployment_plan plan;
      if (protocol == "psc") {
        plan = cli::make_psc_plan(params.dcs, cps, bins);
        plan.round.group = group == "p256" ? crypto::group_backend::p256
                                           : crypto::group_backend::toy;
      } else if (protocol == "privcount") {
        // Counters filled from the model defaults below.
        plan.protocol = "privcount";
        net::node_id id = 0;
        plan.nodes.push_back(
            {id++, cli::node_role::privcount_ts, "127.0.0.1", 0});
        for (std::size_t s = 0; s < sks; ++s) {
          plan.nodes.push_back(
              {id++, cli::node_role::privcount_sk, "127.0.0.1", 0});
        }
        for (std::size_t d = 0; d < params.dcs; ++d) {
          plan.nodes.push_back(
              {id++, cli::node_role::privcount_dc, "127.0.0.1", 0});
        }
      } else {
        usage();
        return 2;
      }
      const cli::trace_round_defaults defaults =
          cli::defaults_for_model(params.model);
      if (relays > 0) {
        // Relay-agent deployment: the DCs regenerate the model themselves
        // (pure function of the plan) and detour every window through
        // N/dcs embedded stats agents + publish-file aggregation. The
        // trace files beside the plan are for inspection and feeding.
        plan.workload.kind = cli::workload_kind::relays;
        plan.workload.relay_count = relays;
        plan.workload.model = params.model;
        plan.workload.scale = params.scale;
        plan.workload.events = params.events;
        plan.workload.gen_seed = params.seed;
        plan.workload.gen_days = params.days;
        plan.sample_prob = sample_prob;
      } else {
        plan.workload.kind = cli::workload_kind::trace;
        plan.workload.trace_dir = std::filesystem::absolute(out_dir).string();
      }
      if (params.days > 1) {
        // One daily measurement round per generated day: the node processes
        // stay up across the schedule and window the trace by sim time.
        plan.schedule_rounds = static_cast<std::uint32_t>(params.days);
        plan.round_duration_s = tormet::k_seconds_per_day;
        plan.round_gap_s = 0;
      }
      plan.psc_extractor = defaults.psc_extractor;
      plan.instruments = defaults.instruments;
      plan.counters = defaults.counters;
      plan.rng_seed = params.seed;
      plan.tally_path =
          (std::filesystem::absolute(out_dir) / "tally.out").string();
      for (std::size_t k = 0; k < plan.nodes.size(); ++k) {
        plan.nodes[k].port = static_cast<std::uint16_t>(port_base + k);
      }
      const std::string plan_path = out_dir + "/plan.cfg";
      cli::save_plan(plan, plan_path);
      std::cerr << "tormet_tracegen: wrote " << plan_path << " ("
                << plan.protocol << ", " << plan.nodes.size()
                << " nodes, ports " << port_base << "..)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "tormet_tracegen: " << e.what() << "\n";
    return 1;
  }
}
