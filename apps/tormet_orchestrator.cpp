// tormet_orchestrator: spawns and coordinates a full protocol round across
// real OS processes (one tormet_node per role) over TCP, collects the
// final tally, and — with --check-inproc — verifies it is byte-identical
// to the in-process reference round with the same seeds. CI runs exactly
// that as its distributed-round gate.
//
//   tormet_orchestrator [--config plan.cfg] [--protocol psc|privcount]
//                       [--dcs N] [--cps N] [--sks N] [--bins B]
//                       [--seed S] [--items-per-dc N] [--shared-items N]
//                       [--group toy|p256] [--noise on|off]
//                       [--timeout-s N] [--node-binary PATH] [--durable]
//                       [--check-inproc] [--keep-workdir] [--verbose]
//
// Without --config a plan is synthesized from the flags (defaults: PSC,
// 4 DCs, 3 CPs, 1024 bins, toy group). --durable gives every node a
// write-ahead op-log under the workdir: crashed (exit 42) nodes are
// restarted and resume from their log. Exits 0 on success, 1 on any node
// failure, timeout, or tally mismatch.
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "src/cli/deployment_plan.h"
#include "src/cli/orchestrator.h"
#include "src/util/logging.h"

namespace {

void usage() {
  std::cerr
      << "usage: tormet_orchestrator [--config plan.cfg]\n"
         "         [--protocol psc|privcount] [--dcs N] [--cps N] [--sks N]\n"
         "         [--bins B] [--seed S] [--items-per-dc N] [--shared-items N]\n"
         "         [--group toy|p256] [--noise on|off] [--timeout-s N]\n"
         "         [--node-binary PATH] [--durable] [--check-inproc]\n"
         "         [--keep-workdir] [--verbose]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tormet;

  std::string config_path;
  std::string protocol = "psc";
  std::size_t dcs = 4, cps = 3, sks = 3;
  std::uint64_t bins = 1024, seed = 3141;
  std::uint64_t items_per_dc = 40, shared_items = 7;
  std::string group = "toy";
  bool noise = true;
  bool check_inproc = false;
  bool keep_workdir = false;
  bool durable = false;
  int timeout_s = 120;
  std::string node_binary;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--config") config_path = next();
    else if (arg == "--protocol") protocol = next();
    else if (arg == "--dcs") dcs = std::strtoul(next(), nullptr, 10);
    else if (arg == "--cps") cps = std::strtoul(next(), nullptr, 10);
    else if (arg == "--sks") sks = std::strtoul(next(), nullptr, 10);
    else if (arg == "--bins") bins = std::strtoul(next(), nullptr, 10);
    else if (arg == "--seed") seed = std::strtoul(next(), nullptr, 10);
    else if (arg == "--items-per-dc") items_per_dc = std::strtoul(next(), nullptr, 10);
    else if (arg == "--shared-items") shared_items = std::strtoul(next(), nullptr, 10);
    else if (arg == "--group") group = next();
    else if (arg == "--noise") noise = std::string_view{next()} == "on";
    else if (arg == "--timeout-s") timeout_s = static_cast<int>(std::strtol(next(), nullptr, 10));
    else if (arg == "--node-binary") node_binary = next();
    else if (arg == "--durable") durable = true;
    else if (arg == "--check-inproc") check_inproc = true;
    else if (arg == "--keep-workdir") keep_workdir = true;
    else if (arg == "--verbose") set_log_level(log_level::info);
    else {
      usage();
      return 2;
    }
  }

  try {
    cli::deployment_plan plan;
    if (!config_path.empty()) {
      plan = cli::load_plan(config_path);
    } else if (protocol == "psc") {
      plan = cli::make_psc_plan(dcs, cps, bins);
      plan.round.group = group == "p256" ? crypto::group_backend::p256
                                         : crypto::group_backend::toy;
      plan.round.noise_enabled = noise;
      plan.items_per_dc = items_per_dc;
      plan.shared_items = shared_items;
      plan.rng_seed = seed;
    } else if (protocol == "privcount") {
      plan = cli::make_privcount_plan(
          dcs, sks,
          {{"entry/connections", 12.0, 100.0}, {"entry/circuits", 651.0, 100.0}});
      plan.privcount_noise_enabled = noise;
      plan.rng_seed = seed;
    } else {
      usage();
      return 2;
    }

    if (node_binary.empty()) node_binary = cli::sibling_node_binary();
    if (node_binary.empty()) {
      std::cerr << "tormet_orchestrator: cannot locate tormet_node "
                   "(pass --node-binary)\n";
      return 2;
    }

    const std::string workdir = cli::make_round_workdir();
    plan.tally_path = workdir + "/tally.out";
    if (durable) plan.durable_dir = workdir + "/durable";
    cli::assign_free_ports(plan);

    std::cerr << "orchestrator: spawning " << plan.nodes.size() << " "
              << plan.protocol << " node processes (workdir " << workdir
              << ")\n";
    const cli::distributed_round_result result =
        cli::run_distributed_round(plan, node_binary, workdir, timeout_s * 1000);
    std::cout << result.tally;
    if (!result.summary.empty()) {
      std::cerr << "orchestrator: deployment summary\n" << result.summary;
    }
    for (const auto& n : result.nodes) {
      if (n.restarts > 0) {
        std::cerr << "orchestrator: node " << n.id << " was restarted "
                  << n.restarts << " time(s) and recovered\n";
      }
    }

    int rc = 0;
    if (check_inproc) {
      const std::string reference = cli::run_reference_round(plan);
      if (reference == result.tally) {
        std::cerr << "orchestrator: distributed tally is byte-identical to "
                     "the in-process round\n";
      } else {
        std::cerr << "orchestrator: TALLY MISMATCH\n--- distributed ---\n"
                  << result.tally << "--- in-process ---\n"
                  << reference;
        rc = 1;
      }
    }
    if (keep_workdir || rc != 0) {
      std::cerr << "orchestrator: round artifacts kept under " << workdir << "\n";
    } else {
      std::error_code ec;
      std::filesystem::remove_all(workdir, ec);
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "tormet_orchestrator: " << e.what() << "\n";
    return 1;
  }
}
