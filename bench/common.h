// Shared helpers for the reproduction benches: standard study setup at
// paper-like weight fractions, formatting of estimates, and the per-bench
// scale bookkeeping described in DESIGN.md §6.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "src/core/instruments.h"
#include "src/core/measurement_study.h"
#include "src/net/inproc.h"
#include "src/stats/confidence.h"
#include "src/util/table.h"

namespace tormet::bench {

/// The default study: a full-size synthetic consensus (6,500 relays like
/// April-2018 Tor) with 16 measured relays at paper-like weight fractions.
[[nodiscard]] inline core::study_config default_study_config(std::uint64_t seed =
                                                                 20180101) {
  core::study_config cfg;
  cfg.consensus.num_relays = 6500;
  cfg.consensus.seed = 42;
  cfg.num_exit_relays = 6;
  cfg.num_nonexit_relays = 10;
  cfg.target_exit_fraction = 0.02;    // paper: 1.5-2.4 %
  cfg.target_guard_fraction = 0.013;  // paper: ~1.2-1.4 %
  cfg.seed = seed;
  return cfg;
}

/// "value [lo; hi]" with count formatting.
[[nodiscard]] inline std::string fmt_count_est(const stats::estimate& e) {
  return format_count(e.value);
}
[[nodiscard]] inline std::string fmt_ci_counts(const stats::estimate& e) {
  return "[" + format_count(e.ci.lo) + "; " + format_count(e.ci.hi) + "]";
}
[[nodiscard]] inline std::string fmt_ci_percent(const stats::estimate& e) {
  return "[" + format_percent(e.ci.lo) + "; " + format_percent(e.ci.hi) + "]";
}
[[nodiscard]] inline std::string fmt_interval_counts(const stats::interval& i) {
  return "[" + format_count(i.lo) + "; " + format_count(i.hi) + "]";
}

/// Scales a local estimate to network-wide *paper-scale* numbers: divide by
/// the observation fraction, then by the simulation's network_scale.
[[nodiscard]] inline stats::estimate to_paper_scale(const stats::estimate& local,
                                                    double observe_fraction,
                                                    double network_scale) {
  const stats::estimate network =
      stats::extrapolate_by_fraction(local, observe_fraction);
  return stats::extrapolate_by_fraction(network, network_scale);
}

inline void print_header(const std::string& title, double network_scale,
                         const std::string& notes = "") {
  std::printf("%s\n", title.c_str());
  std::printf("  simulation scale: 1/%.0f of the 2018 Tor network%s%s\n\n",
              1.0 / network_scale, notes.empty() ? "" : " — ", notes.c_str());
}

}  // namespace tormet::bench
