// Figure 2 reproduction: membership of primary domains in Alexa rank sets
// (top) and in top-10 sibling sets (bottom). Key paper shapes:
//   * torproject.org ~40 % of primary domains (the Onionoo anomaly)
//   * rank-decade buckets roughly flat (~4-8 % each), "other" ~22 %
//   * amazon siblings ~9.7 %, google siblings ~2.4 %, rest <1 %
#include "common.h"

#include "src/privcount/deployment.h"
#include "src/workload/browsing.h"

namespace {

using namespace tormet;

constexpr double k_scale = 1e-3;

/// Rank sets: set 0 = ranks (0,10], set i = (10^i, 10^(i+1)]. torproject.org
/// is measured separately (as in the paper).
[[nodiscard]] std::vector<core::domain_set> make_rank_sets(
    const workload::alexa_list& alexa) {
  std::vector<core::domain_set> sets;
  sets.push_back({"torproject.org", {"torproject.org"}});
  std::uint32_t lo = 0;
  for (std::uint32_t hi = 10; hi <= alexa.size(); hi *= 10) {
    core::domain_set set;
    set.name = "(" + std::to_string(lo) + "," + std::to_string(hi) + "]";
    set.domains.reserve(hi - lo);
    for (std::uint32_t rank = lo + 1; rank <= hi; ++rank) {
      const std::string& d = alexa.domain_at_rank(rank);
      if (d != "torproject.org") set.domains.push_back(d);
    }
    sets.push_back(std::move(set));
    lo = hi;
  }
  return sets;
}

[[nodiscard]] std::vector<core::domain_set> make_sibling_sets(
    const workload::alexa_list& alexa) {
  std::vector<core::domain_set> sets;
  sets.push_back({"torproject", alexa.sibling_set("torproject")});
  for (const char* base : {"google", "youtube", "facebook", "baidu",
                           "wikipedia", "yahoo", "reddit", "qq", "amazon",
                           "duckduckgo"}) {
    sets.push_back({base, alexa.sibling_set(base)});
  }
  return sets;
}

struct measurement {
  std::map<std::string, double> share;    // set name -> fraction of primary domains
  std::map<std::string, stats::estimate> ratio_ci;
};

const workload::alexa_list& get_alexa() {
  static const workload::alexa_list list =
      workload::alexa_list::make_synthetic({.size = 1'000'000, .seed = 3});
  return list;
}

measurement run_measurement(const std::string& base,
                            std::vector<core::domain_set> sets,
                            std::uint64_t seed) {
  core::measurement_study study{bench::default_study_config(seed)};
  tor::network& net = study.network();

  workload::browsing_params bp;
  bp.seed = seed;
  bp.circuits_per_web_client = 14.5;  // paper-calibrated visit volume
  workload::browsing_driver browser{net, get_alexa(), bp};

  std::vector<tor::client_id> clients;
  const auto n_clients = static_cast<std::size_t>(6.9e6 * k_scale);
  for (std::size_t i = 0; i < n_clients; ++i) {
    tor::client_profile p;
    p.ip = static_cast<std::uint32_t>(i + 1);
    clients.push_back(net.add_client(p));
  }

  net::inproc_net bus;
  privcount::deployment_config cfg = study.privcount_config();
  cfg.measured_relays = study.measured_exits();
  privcount::deployment dep{bus, cfg};
  dep.add_instrument(core::instrument_domain_sets(base, sets));
  dep.attach(net);

  std::vector<privcount::counter_spec> specs;
  const double d20 = 20.0 * k_scale;
  for (const auto& s : sets) specs.push_back({base + "/" + s.name, d20, 500.0});
  specs.push_back({base + "/other", d20, 500.0});

  const auto results = dep.run_round(specs, [&] {
    browser.run_day(clients, sim_time{0});
  });

  double total = 0.0;
  for (const auto& c : results) total += static_cast<double>(c.value);
  measurement m;
  const stats::estimate total_est = stats::normal_estimate(total, 0.0);
  for (const auto& c : results) {
    const std::string name = c.name.substr(base.size() + 1);
    m.share[name] = static_cast<double>(c.value) / total;
    m.ratio_ci[name] = stats::ratio_estimate(
        stats::normal_estimate(static_cast<double>(c.value), c.sigma), total_est);
  }
  return m;
}

int run() {
  bench::print_header("Fig 2 — Alexa rank-set and sibling-set membership",
                      k_scale, "full 1M-entry synthetic Alexa list");

  const workload::alexa_list& alexa = get_alexa();

  // -- top panel: rank sets -------------------------------------------------
  const measurement rank = run_measurement("rank", make_rank_sets(alexa), 71);
  repro_table top{"Fig 2 (top) — primary domains by Alexa rank set (%)"};
  const std::pair<const char*, double> paper_rank[] = {
      {"torproject.org", 0.401}, {"(0,10]", 0.084},      {"(10,100]", 0.051},
      {"(100,1000]", 0.062},     {"(1000,10000]", 0.043}, {"(10000,100000]", 0.077},
      {"(100000,1000000]", 0.070}, {"other", 0.217},
  };
  for (const auto& [name, paper] : paper_rank) {
    const auto it = rank.share.find(name);
    if (it == rank.share.end()) continue;
    top.add(name, format_percent(paper), format_percent(it->second),
            bench::fmt_ci_percent(rank.ratio_ci.at(name)));
  }
  top.print();

  // -- bottom panel: sibling sets ------------------------------------------
  const measurement sib =
      run_measurement("sibling", make_sibling_sets(alexa), 72);
  repro_table bottom{"Fig 2 (bottom) — primary domains by sibling set (%)"};
  const std::pair<const char*, double> paper_sib[] = {
      {"torproject", 0.390}, {"google", 0.024},  {"youtube", 0.001},
      {"facebook", 0.003},   {"baidu", 0.000},   {"wikipedia", 0.000},
      {"yahoo", 0.002},      {"reddit", 0.000},  {"qq", 0.001},
      {"amazon", 0.097},     {"duckduckgo", 0.004}, {"other", 0.481},
  };
  for (const auto& [name, paper] : paper_sib) {
    const auto it = sib.share.find(name);
    if (it == sib.share.end()) continue;
    bottom.add(name, format_percent(paper), format_percent(it->second),
               bench::fmt_ci_percent(sib.ratio_ci.at(name)));
  }
  bottom.print();
  return 0;
}

}  // namespace

int main() { return run(); }
