// Table 3 reproduction: the promiscuous/selective guard-connection model
// fit. Two PSC unique-IP measurements from *disjoint* relay sets with
// different guard-weight fractions (paper: 0.42 % and 0.88 %) jointly
// identify, for each candidate guards-per-client g in {3,4,5}:
//   * the feasible promiscuous-client range (paper: ~14-22 thousand), and
//   * the network-wide client-IP range (paper, g=3: ~10.9-11.2 million).
// The paper's conclusions to preserve: a single-g model without promiscuous
// clients is inconsistent; with promiscuous clients g=3 implies ~5x the
// Tor Metrics user estimate; higher g implies fewer clients.
#include "common.h"

#include "src/psc/deployment.h"
#include "src/stats/guard_model.h"
#include "src/stats/psc_ci.h"
#include "src/workload/population.h"

namespace {

using namespace tormet;

constexpr double k_scale = 1.0 / 25.0;

stats::guard_measurement measure(core::measurement_study& study,
                                 tor::network& net, workload::population& pop,
                                 const std::vector<tor::relay_id>& relays,
                                 int day, std::uint64_t seed) {
  net::inproc_net bus;
  psc::deployment_config cfg;
  cfg.measured_relays = relays;
  cfg.round.bins = 1 << 16;
  cfg.round.group = crypto::group_backend::toy;
  cfg.round.sensitivity = 4.0 * k_scale;
  cfg.rng_seed = seed;
  psc::deployment dep{bus, cfg};
  dep.set_extractor(core::extract_client_ip());
  dep.attach(net);

  const psc::round_outcome out = dep.run_round([&] {
    pop.advance_to_day(day);
    pop.run_entry_day(sim_time{day * k_seconds_per_day});
  });

  stats::psc_ci_params ci;
  ci.bins = out.bins;
  ci.total_noise_bits = out.total_noise_bits;
  const stats::estimate e = stats::psc_confidence_interval(out.raw_count, ci);

  stats::guard_measurement m;
  // Widen the protocol CI slightly for day-to-day population variation (the
  // two measurements run on different days, as in the paper).
  m.uniques_ci = {e.ci.lo * 0.97, e.ci.hi * 1.03};
  m.guard_fraction = study.fraction(tor::position::guard, relays);
  return m;
}

int run() {
  bench::print_header("Table 3 — promiscuous/selective guard-model fit",
                      k_scale, "two disjoint DC sets, toy group backend");

  core::measurement_study study{bench::default_study_config(93)};
  tor::network& net = study.network();
  auto geo = std::make_shared<workload::geoip_db>(workload::geoip_db::make_synthetic());

  workload::population_params pp;
  pp.network_scale = k_scale;
  pp.seed = 93;
  pp.web_rates = {4.0, 0, 0, 0, 0};
  pp.chat_rates = {4.0, 0, 0, 0, 0};
  pp.bot_rates = {20.0, 0, 0, 0, 0};
  pp.idle_rates = {2.0, 0, 0, 0, 0};
  pp.uae_rates = {12.0, 0, 0, 0, 0};
  pp.promiscuous_rates = {0, 0, 0, 0, 0};
  workload::population pop{net, *geo, pp};

  // Two disjoint relay sets with ~paper-like weight ratio (~1 : 2.1).
  const auto guards = net.net().eligible(tor::position::guard);
  std::vector<tor::relay_id> set1;
  std::vector<tor::relay_id> set2;
  double f1 = 0.0;
  double f2 = 0.0;
  for (const auto id : guards) {
    const double p = net.net().selection_probability(tor::position::guard, id);
    if (f1 < 0.0042 && p < 0.001) {
      set1.push_back(id);
      f1 += p;
    } else if (f2 < 0.0088 && p < 0.001) {
      set2.push_back(id);
      f2 += p;
    }
    if (f1 >= 0.0042 && f2 >= 0.0088) break;
  }

  const stats::guard_measurement m1 = measure(study, net, pop, set1, 0, 601);
  const stats::guard_measurement m2 = measure(study, net, pop, set2, 1, 602);

  std::printf("  measurement 1: %.2f %% guard weight, uniques in [%.0f; %.0f]\n",
              m1.guard_fraction * 100, m1.uniques_ci.lo, m1.uniques_ci.hi);
  std::printf("  measurement 2: %.2f %% guard weight, uniques in [%.0f; %.0f]\n\n",
              m2.guard_fraction * 100, m2.uniques_ci.lo, m2.uniques_ci.hi);

  stats::guard_model_params fit;
  fit.candidate_g = {3, 4, 5};
  fit.max_promiscuous = 40'000 * k_scale;
  const auto rows = stats::fit_guard_model(m1, m2, fit);

  // Paper rows (network-wide; ours scale back up by 1/k_scale).
  const std::pair<const char*, const char*> paper[] = {
      {"[15,856; 21,522]", "[10,851,783; 11,240,709]"},
      {"[15,129; 21,056]", "[8,195,072; 8,493,863]"},
      {"[14,428; 20,451]", "[6,605,713; 6,849,612]"},
  };

  repro_table table{"Table 3 — fit per guards-per-client g"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (!row.consistent) {
      table.add("g=" + std::to_string(row.guards_per_client) + " consistent",
                "yes", "NO");
      continue;
    }
    table.add("g=" + std::to_string(row.guards_per_client) + " promiscuous",
              paper[i].first,
              bench::fmt_interval_counts({row.promiscuous.lo / k_scale,
                                          row.promiscuous.hi / k_scale}),
              "", "sim truth 18,000");
    table.add("g=" + std::to_string(row.guards_per_client) + " network IPs",
              paper[i].second,
              bench::fmt_interval_counts({row.network_ips.lo / k_scale,
                                          row.network_ips.hi / k_scale}),
              "", "sim truth ~8.8 M + churn");
  }
  table.print();

  // The paper's companion conclusion: without promiscuous clients the two
  // measurements force g into [27, 34] — an implausible model.
  repro_table aside{"§5.1 aside — g required when promiscuous clients are excluded"};
  stats::guard_model_params no_promiscuous;
  no_promiscuous.candidate_g = {1,  2,  3,  5,  8,  12, 16, 20, 24,
                                27, 30, 34, 38, 45, 60};
  no_promiscuous.max_promiscuous = 1.0;  // effectively zero
  int g_lo = 0;
  int g_hi = 0;
  for (const auto& row : stats::fit_guard_model(m1, m2, no_promiscuous)) {
    if (!row.consistent) continue;
    if (g_lo == 0) g_lo = row.guards_per_client;
    g_hi = row.guards_per_client;
  }
  aside.add("feasible g range (P=0)", "[27; 34] — implausible",
            g_lo == 0 ? "none consistent"
                      : "[" + std::to_string(g_lo) + "; " + std::to_string(g_hi) + "]");
  aside.print();
  return 0;
}

}  // namespace

int main() { return run(); }
