// Table 7 reproduction: onion-service descriptor fetch statistics at the
// measured HSDirs (PrivCount). Paper findings: 134 M fetches/day, 90.9 %
// failing (missing descriptors from outdated botnet lists + malformed
// requests, ~1,400 failures/second), and — of the successful fetches —
// 56.8 % to publicly indexed (ahmia) onion sites.
#include "common.h"

#include "src/privcount/deployment.h"
#include "src/workload/onion_activity.h"

namespace {

using namespace tormet;

// Service population runs at 1/10 scale so popularity is spread over
// thousands of services (success observation at the HSDirs is otherwise too
// lumpy); fetch *volume* is scaled further, and counts are inferred with
// the fetch-volume scale.
constexpr double k_scale = 1.0 / 10.0;
constexpr double k_sim_fetches = 2.5e6;
constexpr double k_fetch_scale = k_sim_fetches / 134e6;

int run() {
  bench::print_header("Table 7 — descriptor fetches (PrivCount at HSDirs)",
                      k_fetch_scale);

  core::measurement_study study{bench::default_study_config(97)};
  tor::network& net = study.network();

  workload::onion_params op;
  op.network_scale = k_scale;
  op.fetch_attempts = k_sim_fetches / k_scale;  // scaled to k_sim_fetches
  op.seed = 97;
  workload::onion_driver driver{net, op};
  const auto index = std::make_shared<const workload::ahmia_index>(driver.index());

  tor::client_profile cp;
  cp.ip = 1;
  const tor::client_id client = net.add_client(cp);
  const std::vector<tor::client_id> clients{client};

  const std::vector<tor::relay_id> hsdirs = study.measured_hsdirs();
  const std::set<tor::relay_id> hsdir_set{hsdirs.begin(), hsdirs.end()};
  const double fetch_weight = net.ring().responsibility_fraction(hsdir_set, 0);

  net::inproc_net bus;
  privcount::deployment_config cfg = study.privcount_config();
  cfg.measured_relays = hsdirs;
  privcount::deployment dep{bus, cfg};
  dep.add_instrument(core::instrument_hsdir_descriptors(index));
  dep.attach(net);

  const double d30 = 30.0 * k_fetch_scale;  // Table 1: 30 fetches/day
  const std::vector<privcount::counter_spec> specs{
      {"hsdir/fetch/total", d30, 13000},
      {"hsdir/fetch/success", d30, 1200},
      {"hsdir/fetch/failed", d30, 12000},
      {"hsdir/fetch/success/public", d30, 700},
      {"hsdir/fetch/success/unknown", d30, 500},
  };
  const auto results = dep.run_round(specs, [&] {
    driver.run_day(clients, clients, sim_time{0});
  });

  std::map<std::string, privcount::counter_result> r;
  for (const auto& c : results) r[c.name] = c;
  const auto infer = [&](const std::string& name) {
    const auto& c = r.at(name);
    return bench::to_paper_scale(
        stats::normal_estimate(static_cast<double>(c.value), c.sigma),
        fetch_weight, k_fetch_scale);
  };

  const stats::estimate total = infer("hsdir/fetch/total");
  const stats::estimate success = infer("hsdir/fetch/success");
  const stats::estimate failed = infer("hsdir/fetch/failed");
  const stats::estimate pub = infer("hsdir/fetch/success/public");
  const stats::estimate unknown = infer("hsdir/fetch/success/unknown");

  const stats::estimate fail_share = stats::ratio_estimate(failed, total);
  const stats::estimate pub_share = stats::ratio_estimate(pub, success);
  const stats::estimate unknown_share = stats::ratio_estimate(unknown, success);

  const tor::ground_truth& t = net.truth();
  repro_table table{"Table 7 — network-wide v2 descriptor statistics per day"};
  table.add("fetched", "134 million [117; 150]", bench::fmt_count_est(total),
            bench::fmt_ci_counts(total),
            "sim truth " + format_count(
                static_cast<double>(t.descriptor_fetches) / k_fetch_scale));
  table.add("succeeded", "12.2 million [10.6; 13.7]",
            bench::fmt_count_est(success), bench::fmt_ci_counts(success));
  table.add("failed", "121 million [103; 140]", bench::fmt_count_est(failed),
            bench::fmt_ci_counts(failed));
  table.add("fail share", "90.9 % [87.8; 93.2]",
            format_percent(fail_share.value), bench::fmt_ci_percent(fail_share));
  table.add("fail rate", "1,400 failed/s [1,192; 1,620]",
            format_count(failed.value / 86400.0) + "/s",
            "[" + format_count(failed.ci.lo / 86400.0) + "; " +
                format_count(failed.ci.hi / 86400.0) + "]/s");
  table.add("success: public (ahmia)", "56.8 % [36.9; 83.6]",
            format_percent(pub_share.value), bench::fmt_ci_percent(pub_share));
  table.add("success: unknown", "47.6 % [28.8; 72.7]",
            format_percent(unknown_share.value),
            bench::fmt_ci_percent(unknown_share));
  table.print();
  return 0;
}

}  // namespace

int main() { return run(); }
