// Table 5 reproduction: unique client statistics via PSC at the measured
// guards — unique IPs (313,213), countries (203), ASes (11,882), 4-day IPs
// (672,303) and the derived churn rate (~119,697 IPs/day; IPs turn over
// almost twice in 4 days).
//
// Scale notes (EXPERIMENTS.md): unique-IP counts scale with the client
// population, so this bench runs at 1/25 scale with population-scaled
// sensitivity; country/AS counts are scale-invariant quantities, so their
// rounds use the unscaled sensitivity — preserving the paper's
// noise-overwhelms-small-counts behaviour (the country CI hits the 250
// ceiling exactly as in the paper).
#include "common.h"

#include <algorithm>

#include "src/psc/deployment.h"
#include "src/stats/guard_model.h"
#include "src/stats/metrics_portal.h"
#include "src/stats/psc_ci.h"
#include "src/workload/population.h"

namespace {

using namespace tormet;

constexpr double k_scale = 1.0 / 25.0;

struct psc_run {
  stats::estimate local;  // exact-DP CI on the locally observed unique count
};

psc_run run_psc(core::measurement_study& study, tor::network& net,
                workload::population& pop, psc::data_collector::extractor extract,
                double sensitivity, int first_day, int days,
                std::uint64_t seed) {
  net::inproc_net bus;
  psc::deployment_config cfg = study.psc_config();
  cfg.measured_relays = study.measured_guards();
  cfg.round.bins = 1 << 16;
  cfg.round.group = crypto::group_backend::toy;
  cfg.round.sensitivity = sensitivity;
  cfg.rng_seed = seed;
  psc::deployment dep{bus, cfg};
  dep.set_extractor(std::move(extract));
  dep.attach(net);

  const psc::round_outcome out = dep.run_round([&] {
    for (int d = first_day; d < first_day + days; ++d) {
      pop.advance_to_day(d);
      pop.run_entry_day(sim_time{d * k_seconds_per_day});
    }
  });

  stats::psc_ci_params ci;
  ci.bins = out.bins;
  ci.total_noise_bits = out.total_noise_bits;
  psc_run r;
  r.local = stats::psc_confidence_interval(out.raw_count, ci);
  return r;
}

int run() {
  bench::print_header("Table 5 — unique client statistics (PSC at guards)",
                      k_scale,
                      "toy group backend; 2^16-bin oblivious tables");

  core::measurement_study study{bench::default_study_config(95)};
  tor::network& net = study.network();
  auto geo = std::make_shared<workload::geoip_db>(workload::geoip_db::make_synthetic());

  workload::population_params pp;
  pp.network_scale = k_scale;
  pp.seed = 95;
  // Lean entry days: unique counting needs connection events; directory
  // circuits are kept (at their defaults) because the Tor-Metrics baseline
  // row estimates users from them. Other circuit/byte traffic is elided
  // to keep the 4-day window fast.
  pp.web_rates = {4.0, 2.5, 0, 0, 0};
  pp.chat_rates = {4.0, 2.5, 0, 0, 0};
  pp.bot_rates = {20.0, 3.0, 0, 0, 0};
  pp.idle_rates = {1.0, 1.0, 0, 0, 0};
  // AE directory loops damped here (they are fig4's subject; at 4-day
  // volume they would dominate this bench's runtime).
  pp.uae_rates = {12.0, 50.0, 0, 0, 0};
  pp.promiscuous_rates = {0, 0, 0, 0, 0};
  workload::population pop{net, *geo, pp};

  const double guard_frac =
      study.fraction(tor::position::guard, study.measured_guards());
  const int g = pp.guards_per_selective;

  // -- unique IPs, 1 day ----------------------------------------------------
  const psc_run ips = run_psc(study, net, pop, core::extract_client_ip(),
                              4.0 * k_scale, 0, 1, 501);
  // -- unique ASes, 1 day (scale-invariant sensitivity) ----------------------
  const psc_run ases = run_psc(study, net, pop, core::extract_client_asn(geo),
                               4.0, 1, 1, 502);
  // -- unique countries, averaged over two consecutive days ------------------
  const psc_run cc1 = run_psc(study, net, pop, core::extract_client_country(geo),
                              4.0, 2, 1, 503);
  const psc_run cc2 = run_psc(study, net, pop, core::extract_client_country(geo),
                              4.0, 3, 1, 504);
  const stats::estimate countries{
      (cc1.local.value + cc2.local.value) / 2.0,
      {(cc1.local.ci.lo + cc2.local.ci.lo) / 2.0,
       std::min(250.0, (cc1.local.ci.hi + cc2.local.ci.hi) / 2.0)}};
  // -- unique IPs over a 4-day window ----------------------------------------
  const psc_run ips4 = run_psc(study, net, pop, core::extract_client_ip(),
                               13.0 * k_scale, 4, 4, 505);

  // -- derived: churn and network-wide inference -----------------------------
  const double churn_per_day = (ips4.local.value - ips.local.value) / 3.0;
  const stats::interval churn_ci{(ips4.local.ci.lo - ips.local.ci.hi) / 3.0,
                                 (ips4.local.ci.hi - ips.local.ci.lo) / 3.0};
  const double turnover = ips4.local.value / ips.local.value;

  const double daily_users =
      stats::quick_user_estimate(ips.local.value, guard_frac, g) / k_scale;
  const stats::interval network_ips =
      stats::unique_count_range(ips.local.value / k_scale, guard_frac);

  const auto scaled = [&](const stats::estimate& e) {
    return stats::estimate{e.value / k_scale,
                           {e.ci.lo / k_scale, e.ci.hi / k_scale}};
  };

  repro_table table{"Table 5 — locally observed unique client statistics"};
  const stats::estimate ips_p = scaled(ips.local);
  table.add("IPs (1 day)", "313,213 [313,039; 376,343]",
            bench::fmt_count_est(ips_p), bench::fmt_ci_counts(ips_p),
            "sim truth " + format_count(
                static_cast<double>(pop.unique_ips_to_date()) / k_scale) +
                " total population");
  table.add("countries", "203 [141; 250]", format_sig(countries.value, 3),
            "[" + format_sig(std::max(0.0, countries.ci.lo), 3) + "; " +
                format_sig(countries.ci.hi, 3) + "]",
            "unscaled (scale-invariant)");
  const stats::estimate as_p = ases.local;  // scale-invariant-ish; report raw
  table.add("ASes", "11,882 [11,708; 12,053]", format_count(as_p.value),
            bench::fmt_ci_counts(as_p), "unscaled noise");
  const stats::estimate ips4_p = scaled(ips4.local);
  table.add("IPs (4 days)", "672,303 [671,781; 1,118,147]",
            bench::fmt_count_est(ips4_p), bench::fmt_ci_counts(ips4_p));
  table.add("churn per day", "119,697 [119,581; 247,268]",
            format_count(churn_per_day / k_scale),
            bench::fmt_interval_counts(
                {churn_ci.lo / k_scale, churn_ci.hi / k_scale}));
  table.print();

  repro_table derived{"Table 5 — derived inferences"};
  derived.add("4-day / 1-day turnover", "~2.15x (IPs turn over ~2x in 4 days)",
              format_sig(turnover, 3) + "x", "",
              "sim churn param 0.382/day");
  derived.add("daily users (obs/p/g)", "~8.77 million", format_count(daily_users),
              "", "Tor Metrics said 2.15 M");
  derived.add("network-wide IPs [x, x/p]", "see Table 3",
              bench::fmt_interval_counts(network_ips));

  // The baseline the paper argues against: the Tor-Metrics-Portal estimate
  // from directory requests (assumed 10/client/day). Our clients bundle
  // directory pulls through guards at a lower true rate, so the heuristic
  // undercounts — the paper's "factor of four more than previously
  // believed" headline.
  const int days_simulated = 8;
  const double metrics_users = stats::metrics_portal_user_estimate(
      static_cast<double>(net.truth().entry_dir_circuits) / days_simulated,
      1.0) / k_scale;
  derived.add("Tor-Metrics-style estimate", "2.15 million",
              format_count(metrics_users), "", "from directory requests");
  derived.add("direct / Metrics factor", "~4x underestimate",
              format_sig(stats::underestimate_factor(daily_users, metrics_users),
                         2) + "x");
  derived.print();
  return 0;
}

}  // namespace

int main() { return run(); }
