// Table 4 reproduction: network-wide client usage inferred from PrivCount
// entry counters — data volume (517 TiB), client connections (148 M), and
// client circuits (1,286 M) per day. Local counts at the measured guards
// are divided by the entry-selection fraction (§5.1 used 1.44 %).
#include "common.h"

#include "src/privcount/deployment.h"
#include "src/workload/alexa.h"
#include "src/workload/browsing.h"
#include "src/workload/population.h"

namespace {

using namespace tormet;

constexpr double k_scale = 1e-3;

int run() {
  bench::print_header("Table 4 — network-wide client usage (PrivCount at guards)",
                      k_scale);

  core::measurement_study study{bench::default_study_config(92)};
  tor::network& net = study.network();
  auto geo = std::make_shared<workload::geoip_db>(workload::geoip_db::make_synthetic());

  workload::population_params pp;
  pp.network_scale = k_scale;
  pp.seed = 92;
  workload::population pop{net, *geo, pp};

  // Browsing adds the web-driven entry bytes/circuits on top of the entry-
  // side behaviour (dir circuits, chat, bots).
  const auto alexa = std::make_shared<const workload::alexa_list>(
      workload::alexa_list::make_synthetic({.size = 100'000, .seed = 3}));
  workload::browsing_params bp;
  bp.seed = 92;
  bp.circuits_per_web_client = 14.5;  // paper-calibrated visit volume
  workload::browsing_driver browser{net, *alexa, bp};

  net::inproc_net bus;
  privcount::deployment_config cfg = study.privcount_config();
  cfg.measured_relays = study.measured_guards();
  privcount::deployment dep{bus, cfg};
  dep.add_instrument(core::instrument_entry_totals());
  dep.attach(net);

  const std::vector<privcount::counter_spec> specs{
      {"entry/connections", 12.0 * k_scale, 2000},
      {"entry/circuits", 651.0 * k_scale, 17000},
      {"entry/bytes", 407e6 * k_scale, 7e9},
  };

  const auto results = dep.run_round(specs, [&] {
    pop.run_entry_day(sim_time{0});
    browser.run_day(pop.active_of(workload::client_class::web), sim_time{0});
  });

  std::map<std::string, privcount::counter_result> r;
  for (const auto& c : results) r[c.name] = c;
  const double frac = study.fraction(tor::position::guard, study.measured_guards());
  const auto infer = [&](const std::string& name) {
    const auto& c = r.at(name);
    return bench::to_paper_scale(
        stats::normal_estimate(static_cast<double>(c.value), c.sigma), frac,
        k_scale);
  };

  const stats::estimate bytes = infer("entry/bytes");
  const stats::estimate conns = infer("entry/connections");
  const stats::estimate circuits = infer("entry/circuits");
  const tor::ground_truth& t = net.truth();

  repro_table table{"Table 4 — network-wide client usage per day"};
  table.add("data", "517 TiB [504; 530]", format_bytes(bytes.value),
            "[" + format_bytes(bytes.ci.lo) + "; " + format_bytes(bytes.ci.hi) + "]",
            "sim truth " + format_bytes(static_cast<double>(t.entry_bytes) / k_scale));
  table.add("connections", "148 million [143; 153]", bench::fmt_count_est(conns),
            bench::fmt_ci_counts(conns),
            "sim truth " +
                format_count(static_cast<double>(t.entry_connections) / k_scale));
  table.add("circuits", "1,286 million [1,246; 1,326]",
            bench::fmt_count_est(circuits), bench::fmt_ci_counts(circuits),
            "sim truth " +
                format_count(static_cast<double>(t.entry_circuits) / k_scale));
  table.print();
  return 0;
}

}  // namespace

int main() { return run(); }
