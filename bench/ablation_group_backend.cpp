// Ablation: group-backend cost for the PSC pipeline stages (DC table
// initialization, oblivious inserts, homomorphic combine, mix pass,
// decryption pass). p256 is the production backend; the toy 62-bit group is
// algebraically identical and lets simulations run at larger scale — this
// bench quantifies the gap.
#include "common.h"

#include <chrono>

#include "src/crypto/elgamal.h"
#include "src/crypto/shuffle.h"

namespace {

using namespace tormet;
using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

void run_backend(const char* name, crypto::group_backend backend,
                 std::size_t bins, repro_table& table) {
  const auto group = crypto::make_group(backend);
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng rng{7};

  const auto kp1 = scheme.generate_keypair(rng);
  const auto kp2 = scheme.generate_keypair(rng);
  const auto kp3 = scheme.generate_keypair(rng);
  const crypto::group_element joint = scheme.combine_public_keys(
      std::vector<crypto::group_element>{kp1.pub, kp2.pub, kp3.pub});

  // DC table init (bins encryptions of zero).
  auto t0 = clock_type::now();
  std::vector<crypto::elgamal_ciphertext> table_a;
  table_a.reserve(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    table_a.push_back(scheme.encrypt_zero(joint, rng));
  }
  const double init_ms = ms_since(t0);

  // Oblivious inserts (fresh encrypt-one overwrites).
  t0 = clock_type::now();
  for (std::size_t i = 0; i < bins / 4; ++i) {
    table_a[i * 4 % bins] = scheme.encrypt_one(joint, rng);
  }
  const double insert_ms = ms_since(t0);

  // Homomorphic combine of two DC tables.
  t0 = clock_type::now();
  for (std::size_t i = 0; i < bins; ++i) {
    table_a[i] = scheme.add(table_a[i], table_a[(i + 1) % bins]);
  }
  const double combine_ms = ms_since(t0);

  // One CP mix pass (shuffle + rerandomize).
  t0 = clock_type::now();
  crypto::shuffle_transcript transcript;
  std::vector<crypto::elgamal_ciphertext> mixed =
      crypto::shuffle_and_rerandomize(scheme, joint, table_a, rng, transcript);
  const double mix_ms = ms_since(t0);

  // Decryption passes (3 CPs strip shares, then count).
  t0 = clock_type::now();
  std::size_t nonzero = 0;
  for (auto& ct : mixed) {
    ct = scheme.strip_share(ct, kp1.secret);
    ct = scheme.strip_share(ct, kp2.secret);
    ct = scheme.strip_share(ct, kp3.secret);
    if (!group->is_identity(ct.b)) ++nonzero;
  }
  const double decrypt_ms = ms_since(t0);

  const auto fmt = [](double ms) { return format_sig(ms, 3) + " ms"; };
  table.add(std::string{name} + " init", "", fmt(init_ms));
  table.add(std::string{name} + " inserts (b/4)", "", fmt(insert_ms));
  table.add(std::string{name} + " combine", "", fmt(combine_ms));
  table.add(std::string{name} + " mix pass", "", fmt(mix_ms));
  table.add(std::string{name} + " 3x decrypt+count", "", fmt(decrypt_ms),
            "", "nonzero=" + std::to_string(nonzero));
}

int run() {
  constexpr std::size_t bins = 2048;
  std::printf("Ablation — PSC pipeline cost per group backend (bins = %zu)\n\n",
              bins);
  repro_table table{"stage timings"};
  run_backend("toy62", crypto::group_backend::toy, bins, table);
  run_backend("p256", crypto::group_backend::p256, bins, table);
  table.print();
  std::printf("Reading: the toy group runs the identical protocol ~10-100x\n"
              "faster, which is why the large-scale benches use it; p256 is\n"
              "the deployment backend (tests cover both).\n");
  return 0;
}

}  // namespace

int main() { return run(); }
