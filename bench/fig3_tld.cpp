// Figure 3 reproduction: primary domains by top-level domain, measured for
// all sites (wildcard counters) and for Alexa-listed sites only. Paper
// shapes: .com/.org/.net carry most traffic (.org inflated by
// torproject.org), .ru the largest ccTLD, "other" grows when restricted to
// the Alexa list.
#include "common.h"

#include "src/privcount/deployment.h"
#include "src/workload/browsing.h"
#include "src/workload/suffix_list.h"

namespace {

using namespace tormet;

constexpr double k_scale = 1e-3;

const std::vector<std::string>& measured_tlds() {
  static const std::vector<std::string> tlds{
      "com", "org", "net", "br", "cn", "de", "fr", "in", "ir", "it", "jp",
      "pl", "ru", "uk"};
  return tlds;
}

struct tld_measurement {
  std::map<std::string, double> share;
};

tld_measurement run_measurement(bool alexa_only, std::uint64_t seed) {
  core::measurement_study study{bench::default_study_config(seed)};
  tor::network& net = study.network();

  static const auto alexa = std::make_shared<const workload::alexa_list>(
      workload::alexa_list::make_synthetic({.size = 1'000'000, .seed = 3}));
  const auto suffixes =
      std::make_shared<const workload::suffix_list>(workload::suffix_list::embedded());

  workload::browsing_params bp;
  bp.seed = seed;
  bp.circuits_per_web_client = 14.5;  // paper-calibrated visit volume
  workload::browsing_driver browser{net, *alexa, bp};

  std::vector<tor::client_id> clients;
  for (std::size_t i = 0; i < static_cast<std::size_t>(6.9e6 * k_scale); ++i) {
    tor::client_profile p;
    p.ip = static_cast<std::uint32_t>(i + 1);
    clients.push_back(net.add_client(p));
  }

  net::inproc_net bus;
  privcount::deployment_config cfg = study.privcount_config();
  cfg.measured_relays = study.measured_exits();
  privcount::deployment dep{bus, cfg};
  // The paper measured torproject.org separately in the Alexa run but its
  // wildcard implementation could not during the all-sites run.
  dep.add_instrument(core::instrument_tld_histogram(
      "tld", measured_tlds(), alexa_only ? alexa : nullptr,
      /*separate_torproject=*/alexa_only, suffixes));
  dep.attach(net);

  std::vector<privcount::counter_spec> specs;
  const double d20 = 20.0 * k_scale;
  for (const auto& tld : measured_tlds()) specs.push_back({"tld/" + tld, d20, 500});
  specs.push_back({"tld/other", d20, 500});
  if (alexa_only) specs.push_back({"tld/torproject.org", d20, 5000});

  const auto results = dep.run_round(specs, [&] {
    browser.run_day(clients, sim_time{0});
  });

  double total = 0.0;
  for (const auto& c : results) total += static_cast<double>(c.value);
  tld_measurement m;
  for (const auto& c : results) {
    m.share[c.name.substr(4)] = static_cast<double>(c.value) / total;
  }
  return m;
}

int run() {
  bench::print_header("Fig 3 — primary domains by TLD (PrivCount at exits)",
                      k_scale);

  const tld_measurement all = run_measurement(/*alexa_only=*/false, 81);
  const tld_measurement alexa = run_measurement(/*alexa_only=*/true, 82);

  // Paper values: all-sites series / Alexa-only series (percent).
  const std::tuple<const char*, double, double> paper[] = {
      {"com", 0.372, 0.266}, {"org", 0.441, 0.011}, {"net", 0.050, 0.011},
      {"br", 0.003, 0.005},  {"cn", 0.000, 0.002},  {"de", 0.007, 0.004},
      {"fr", 0.004, 0.004},  {"in", 0.002, 0.000},  {"ir", 0.002, 0.000},
      {"it", 0.001, 0.000},  {"jp", 0.005, 0.004},  {"pl", 0.003, 0.002},
      {"ru", 0.028, 0.024},  {"uk", 0.005, 0.001},  {"other", 0.079, 0.261},
  };
  // Note: the paper's .org 44.1 % (all sites) includes torproject.org; its
  // Alexa series lists torproject.org separately at 40.4 %.

  repro_table table{"Fig 3 — TLD share of primary domains (all sites)"};
  for (const auto& [tld, paper_all, paper_alexa] : paper) {
    (void)paper_alexa;
    const auto it = all.share.find(tld);
    if (it == all.share.end()) continue;
    table.add("." + std::string{tld}, format_percent(paper_all),
              format_percent(it->second));
  }
  table.print();

  repro_table table2{"Fig 3 — TLD share of primary domains (Alexa sites only)"};
  table2.add("torproject.org (separate)", "40.4 %",
             format_percent(alexa.share.count("torproject.org")
                                ? alexa.share.at("torproject.org")
                                : 0.0));
  for (const auto& [tld, paper_all, paper_alexa] : paper) {
    (void)paper_all;
    const auto it = alexa.share.find(tld);
    if (it == alexa.share.end()) continue;
    table2.add("." + std::string{tld}, format_percent(paper_alexa),
               format_percent(it->second));
  }
  table2.print();
  return 0;
}

}  // namespace

int main() { return run(); }
