// Shared scaffolding for the --speedup-json bench modes: positive-integer
// argument parsing (garbage or non-positive input falls back to the
// default) and the repeat-until-stable throughput measurement loop.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdlib>

namespace tormet::bench {

/// Parses argv[index] as a positive integer; returns `fallback` when the
/// argument is missing, non-numeric, or not positive.
[[nodiscard]] inline std::size_t positive_arg_or(int argc, char** argv,
                                                 int index,
                                                 std::size_t fallback) {
  if (index >= argc) return fallback;
  const long long value = std::atoll(argv[index]);
  return value > 0 ? static_cast<std::size_t>(value) : fallback;
}

/// Runs `fn` once as warm-up, then repeats it until ~0.5 s has elapsed and
/// returns the throughput in items per second (`items` processed per call).
template <typename Fn>
[[nodiscard]] double measure_items_per_sec(std::size_t items, const Fn& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up (builds precompute tables, faults in pages)
  std::size_t reps = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++reps;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < 0.5);
  return static_cast<double>(reps * items) / elapsed;
}

}  // namespace tormet::bench
