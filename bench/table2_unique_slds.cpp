// Table 2 reproduction: unique second-level domains via PSC at the exits —
// all SLDs vs Alexa-listed SLDs — plus the §4.3 Monte-Carlo power-law
// extrapolation to a network-wide unique-Alexa-SLD count.
//
// Workload note (EXPERIMENTS.md): the paper's Table 2 (March) and Fig 2
// (January/February) were measured weeks apart and are not mutually
// consistent; this bench uses the Table-2-calibrated destination model
// (full Alexa list, Zipf exponent 1.4 — which reproduces both the paper's
// local 35,660 Alexa uniques and its 513,342 network-wide extrapolation at
// full scale), while fig2_alexa uses the Fig-2-calibrated model.
#include "common.h"

#include "src/psc/deployment.h"
#include "src/stats/extrapolate.h"
#include "src/stats/psc_ci.h"
#include "src/workload/browsing.h"
#include "src/workload/suffix_list.h"

namespace {

using namespace tormet;

constexpr double k_scale = 1.0 / 50.0;

struct sld_run {
  stats::estimate local;
};

int run() {
  bench::print_header("Table 2 — unique SLDs (PSC at 5 exits)", k_scale,
                      "Zipf 1.4 full-list model; subsequent streams elided "
                      "(they carry no primary domain)");

  core::measurement_study study{bench::default_study_config(94)};
  tor::network& net = study.network();

  const auto alexa = std::make_shared<const workload::alexa_list>(
      workload::alexa_list::make_synthetic({.size = 1'000'000, .seed = 3}));
  const auto suffixes =
      std::make_shared<const workload::suffix_list>(workload::suffix_list::embedded());

  workload::browsing_params bp;
  bp.seed = 94;
  bp.alexa_active_stride = 1;       // Table-2 model: the whole list is live
  bp.alexa_zipf_exponent = 1.4;     // concentration that matches Table 2
  bp.tail_zipf_exponent = 0.6;      // long non-Alexa tail
  bp.subsequent_streams_per_initial = 0.0;
  workload::browsing_driver browser{net, *alexa, bp};

  std::vector<tor::client_id> clients;
  for (std::size_t i = 0; i < static_cast<std::size_t>(6.9e6 * k_scale); ++i) {
    tor::client_profile p;
    p.ip = static_cast<std::uint32_t>(i + 1);
    clients.push_back(net.add_client(p));
  }

  // The paper used 5 of the 6 exits (1.24 % weight) for this measurement.
  std::vector<tor::relay_id> exits = study.measured_exits();
  if (exits.size() > 5) exits.resize(5);
  const double exit_frac = study.fraction(tor::position::exit, exits);

  const auto run_round = [&](psc::data_collector::extractor extract,
                             std::uint64_t seed) {
    net::inproc_net bus;
    psc::deployment_config cfg;
    cfg.measured_relays = exits;
    cfg.round.bins = 1 << 16;
    cfg.round.group = crypto::group_backend::toy;
    cfg.round.sensitivity = 20.0 * k_scale;  // Table 1: 20 domains/day
    cfg.rng_seed = seed;
    psc::deployment dep{bus, cfg};
    dep.set_extractor(std::move(extract));
    dep.attach(net);
    const psc::round_outcome out =
        dep.run_round([&] { browser.run_day(clients, sim_time{0}); });
    stats::psc_ci_params ci;
    ci.bins = out.bins;
    ci.total_noise_bits = out.total_noise_bits;
    sld_run r;
    r.local = stats::psc_confidence_interval(out.raw_count, ci);
    return r;
  };

  const sld_run all_slds =
      run_round(core::extract_primary_sld(suffixes, nullptr), 701);
  const sld_run alexa_slds =
      run_round(core::extract_primary_sld(suffixes, alexa), 702);

  repro_table table{"Table 2 — locally observed unique SLDs"};
  table.add("SLDs", "471,228 [470,357; 472,099]",
            format_count(all_slds.local.value),
            bench::fmt_ci_counts(all_slds.local),
            "scaled measurement (1/50 of paper volume)");
  table.add("Alexa SLDs", "35,660 [34,789; 37,393]",
            format_count(alexa_slds.local.value),
            bench::fmt_ci_counts(alexa_slds.local));
  table.add("SLDs / Alexa SLDs", "13.2x (long tail exists)",
            format_sig(all_slds.local.value /
                           std::max(1.0, alexa_slds.local.value),
                       3) + "x");
  table.print();

  // -- §4.3 Monte-Carlo power-law extrapolation ------------------------------
  // The power-law model covers the *rank-distributed* Alexa visits
  // (alexa_share); the torproject/amazon anomalies are two fixed SLDs that
  // add ~2 uniques and are excluded from the fit, as an analyst who had
  // seen the Fig 2 results would do.
  const tor::ground_truth& t = net.truth();
  stats::powerlaw_extrapolation_params mc;
  mc.universe = alexa->size();
  mc.exponent_lo = 1.25;
  mc.exponent_hi = 1.55;
  mc.network_accesses = static_cast<std::uint64_t>(
      static_cast<double>(t.exit_streams_initial) * bp.alexa_share);
  mc.observe_fraction = exit_frac;
  mc.local_uniques_ci = {(alexa_slds.local.ci.lo - 2.0) * 0.92,
                         (alexa_slds.local.ci.hi - 2.0) * 1.08};
  mc.trials = 100;  // the paper ran 100 simulations
  mc.seed = 703;
  const stats::powerlaw_extrapolation_result result =
      stats::extrapolate_uniques_powerlaw(mc);

  repro_table extrap{"Table 2 — network-wide Alexa-SLD extrapolation (Monte-Carlo)"};
  extrap.add("accepted trials", "100 simulations",
             std::to_string(result.accepted) + "/" + std::to_string(result.trials));
  if (result.accepted > 0) {
    extrap.add("network-wide Alexa uniques", "513,342 [512,760; 514,693]",
               format_count(result.network_uniques.value),
               bench::fmt_ci_counts(result.network_uniques),
               "sim truth " +
                   format_count(static_cast<double>(
                       browser.unique_alexa_sites_visited())));
    extrap.add("fitted exponent range", "(power law assumed)",
               "[" + format_sig(result.exponent_range.lo, 3) + "; " +
                   format_sig(result.exponent_range.hi, 3) + "]",
               "", "workload truth 1.4");
    extrap.add("network/local unique ratio", "~14x",
               format_sig(result.network_uniques.value /
                              std::max(1.0, alexa_slds.local.value),
                          3) + "x");
  }
  extrap.print();
  return 0;
}

}  // namespace

int main() { return run(); }
