// google-benchmark microbenchmarks for measurement-path hot spots: event
// ingestion through PrivCount instruments (plain counters, domain-set
// matching against a 1M-entry index) and PSC oblivious inserts.
//
// `micro_privcount --speedup-json [bins] [workers]` skips google-benchmark
// and times the serial per-bin paths against the batch-engine paths for the
// two PSC bulk stages the tally pipeline spends its time in — oblivious-
// table initialization and the final-vector tally decode (decode stripped
// ciphertexts + count non-identity bins) — emitting one JSON object per
// stage. `--tally-sweep-json [workers]` sweeps the tally decode over
// 2^14..2^17 bins.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "bench/speedup_common.h"
#include "src/core/instruments.h"
#include "src/crypto/batch_engine.h"
#include "src/crypto/secure_rng.h"
#include "src/psc/oblivious_set.h"
#include "src/tor/events.h"
#include "src/util/thread_pool.h"
#include "src/workload/alexa.h"

namespace {

using namespace tormet;

tor::event make_stream_event(const std::string& host) {
  tor::event ev;
  ev.observer = 0;
  ev.body = tor::exit_stream_event{tor::address_kind::hostname, true, 443, host};
  return ev;
}

void bm_stream_taxonomy_instrument(benchmark::State& state) {
  const auto instrument = core::instrument_stream_taxonomy();
  const tor::event ev = make_stream_event("www.example.com");
  std::uint64_t total = 0;
  const auto incr = [&](const std::string&, std::uint64_t n) { total += n; };
  for (auto _ : state) {
    instrument(ev, incr);
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(bm_stream_taxonomy_instrument);

void bm_domain_set_matching(benchmark::State& state) {
  // Rank-set matching against a list of state.range(0) domains.
  const auto alexa = workload::alexa_list::make_synthetic(
      {.size = static_cast<std::size_t>(state.range(0)), .seed = 3});
  std::vector<core::domain_set> sets;
  core::domain_set set;
  set.name = "all";
  set.domains.reserve(alexa.size());
  for (std::uint32_t rank = 1; rank <= alexa.size(); ++rank) {
    set.domains.push_back(alexa.domain_at_rank(rank));
  }
  sets.push_back(std::move(set));
  const auto instrument = core::instrument_domain_sets("rank", std::move(sets));

  const tor::event hit = make_stream_event("www.amazon.com");
  const tor::event miss = make_stream_event("tail1234567.com");
  std::uint64_t total = 0;
  const auto incr = [&](const std::string&, std::uint64_t n) { total += n; };
  for (auto _ : state) {
    instrument(hit, incr);
    instrument(miss, incr);
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(bm_domain_set_matching)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kNanosecond);

void bm_psc_table_init_toy(benchmark::State& state) {
  const auto group = crypto::make_toy_group();
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng rng{9};
  const auto kp = scheme.generate_keypair(rng);
  const std::size_t bins = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    psc::oblivious_set set{scheme, kp.pub, bins, rng};
    benchmark::DoNotOptimize(set.slots().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_psc_table_init_toy)->Arg(1 << 12)->Arg(1 << 16);

void bm_psc_insert_toy(benchmark::State& state) {
  const auto group = crypto::make_toy_group();
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng rng{9};
  const auto kp = scheme.generate_keypair(rng);
  psc::oblivious_set set{scheme, kp.pub, 1 << 14, rng};
  std::uint64_t i = 0;
  for (auto _ : state) {
    set.insert(as_bytes("ip:" + std::to_string(i++)), rng);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_psc_insert_toy);

void bm_country_instrument(benchmark::State& state) {
  const auto geo = std::make_shared<const workload::geoip_db>(
      workload::geoip_db::make_synthetic());
  const auto instrument = core::instrument_country_usage(
      geo, {"US", "RU", "DE", "UA", "FR", "AE"});
  tor::event ev;
  ev.body = tor::entry_connection_event{42};  // country 0 = US block
  std::uint64_t total = 0;
  const auto incr = [&](const std::string&, std::uint64_t n) { total += n; };
  for (auto _ : state) {
    instrument(ev, incr);
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(bm_country_instrument);

// ---------------------------------------------------------------------------
// --speedup-json: serial vs batched+threaded PSC table initialization (the
// DC-side bulk path: every bin is an encryption of zero), as one JSON line.
// ---------------------------------------------------------------------------

/// Serial vs batched final-vector tally decode at `bins` bins: the TS's
/// last step, decoding the stripped ciphertext vector off the wire and
/// counting non-identity plaintexts. The serial reference is the pre-engine
/// per-bin loop (full decode + is_identity); the batch path parses only the
/// plaintext components through the group arena decoder, sharded.
void run_tally_decode_json(const crypto::batch_engine& engine,
                           std::size_t bins, std::size_t workers,
                           crypto::secure_rng& rng) {
  const crypto::elgamal& scheme = engine.scheme();
  const auto kp = scheme.generate_keypair(rng);
  // A realistic stripped final vector: ~1/3 occupied bins.
  std::vector<std::uint8_t> bits(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    bits[i] = static_cast<std::uint8_t>(i % 3 == 0);
  }
  const std::vector<crypto::elgamal_ciphertext> cts = engine.encrypt_bits_batch(
      kp.pub, bits, crypto::batch_engine::derive_seed(rng));
  const std::vector<crypto::elgamal_ciphertext> stripped =
      engine.strip_share_batch(cts, kp.secret);
  const std::vector<byte_buffer> wire = engine.encode_batch(stripped);

  const auto measure = [&](const auto& fn) {
    return bench::measure_items_per_sec(bins, fn);
  };
  std::uint64_t serial_count = 0;
  const double serial = measure([&] {
    std::uint64_t count = 0;
    for (const auto& enc : wire) {
      const crypto::elgamal_ciphertext ct = scheme.decode(enc);
      if (!scheme.grp().is_identity(ct.b)) ++count;
    }
    serial_count = count;
    benchmark::DoNotOptimize(count);
  });
  std::uint64_t batched_count = 0;
  const double batched = measure([&] {
    batched_count = engine.tally_decode_count(wire);
    benchmark::DoNotOptimize(batched_count);
  });
  if (serial_count != batched_count) {
    std::fprintf(stderr, "tally decode mismatch: serial %llu batched %llu\n",
                 static_cast<unsigned long long>(serial_count),
                 static_cast<unsigned long long>(batched_count));
    std::exit(1);
  }

  std::printf(
      "{\"bench\":\"micro_privcount.tally_decode_speedup\",\"backend\":\"%s\","
      "\"bins\":%zu,\"workers\":%zu,"
      "\"serial_bins_per_sec\":%.0f,\"batched_bins_per_sec\":%.0f,"
      "\"speedup\":%.2f}\n",
      scheme.grp().name().c_str(), bins, workers, serial, batched,
      batched / serial);
}

int run_speedup_json(std::size_t bins, std::size_t workers) {
  const auto group = crypto::make_toy_group();
  const crypto::elgamal scheme{group};
  const auto pool = std::make_shared<util::thread_pool>(workers);
  const crypto::batch_engine engine{group, pool};
  crypto::deterministic_rng rng{2025};
  const auto kp = scheme.generate_keypair(rng);

  const auto measure = [&](const auto& fn) {
    return bench::measure_items_per_sec(bins, fn);
  };

  // Serial reference: the pre-batch per-bin loop.
  const double serial_init = measure([&] {
    std::vector<crypto::elgamal_ciphertext> slots;
    slots.reserve(bins);
    for (std::size_t i = 0; i < bins; ++i) {
      slots.push_back(scheme.encrypt_zero(kp.pub, rng));
    }
    benchmark::DoNotOptimize(slots);
  });
  const double batched_init = measure([&] {
    psc::oblivious_set set{engine, kp.pub, bins, rng};
    benchmark::DoNotOptimize(set.slots().data());
  });

  std::printf(
      "{\"bench\":\"micro_privcount.table_init_speedup\",\"backend\":\"%s\","
      "\"bins\":%zu,\"workers\":%zu,"
      "\"serial_bins_per_sec\":%.0f,\"batched_bins_per_sec\":%.0f,"
      "\"speedup\":%.2f}\n",
      group->name().c_str(), bins, workers, serial_init, batched_init,
      batched_init / serial_init);

  run_tally_decode_json(engine, bins, workers, rng);
  return 0;
}

int run_tally_sweep_json(std::size_t workers) {
  const auto group = crypto::make_toy_group();
  const auto pool = std::make_shared<util::thread_pool>(workers);
  const crypto::batch_engine engine{group, pool};
  crypto::deterministic_rng rng{2026};
  for (const std::size_t bins :
       {std::size_t{1} << 14, std::size_t{1} << 15, std::size_t{1} << 16,
        std::size_t{1} << 17}) {
    run_tally_decode_json(engine, bins, workers, rng);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--speedup-json") == 0) {
      return run_speedup_json(bench::positive_arg_or(argc, argv, i + 1, 16384),
                              bench::positive_arg_or(argc, argv, i + 2, 4));
    }
    if (std::strcmp(argv[i], "--tally-sweep-json") == 0) {
      return run_tally_sweep_json(bench::positive_arg_or(argc, argv, i + 1, 4));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
