// google-benchmark microbenchmarks for measurement-path hot spots: event
// ingestion through PrivCount instruments (plain counters, domain-set
// matching against a 1M-entry index) and PSC oblivious inserts.
#include <benchmark/benchmark.h>

#include "src/core/instruments.h"
#include "src/crypto/secure_rng.h"
#include "src/psc/oblivious_set.h"
#include "src/tor/events.h"
#include "src/workload/alexa.h"

namespace {

using namespace tormet;

tor::event make_stream_event(const std::string& host) {
  tor::event ev;
  ev.observer = 0;
  ev.body = tor::exit_stream_event{tor::address_kind::hostname, true, 443, host};
  return ev;
}

void bm_stream_taxonomy_instrument(benchmark::State& state) {
  const auto instrument = core::instrument_stream_taxonomy();
  const tor::event ev = make_stream_event("www.example.com");
  std::uint64_t total = 0;
  const auto incr = [&](const std::string&, std::uint64_t n) { total += n; };
  for (auto _ : state) {
    instrument(ev, incr);
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(bm_stream_taxonomy_instrument);

void bm_domain_set_matching(benchmark::State& state) {
  // Rank-set matching against a list of state.range(0) domains.
  const auto alexa = workload::alexa_list::make_synthetic(
      {.size = static_cast<std::size_t>(state.range(0)), .seed = 3});
  std::vector<core::domain_set> sets;
  core::domain_set set;
  set.name = "all";
  set.domains.reserve(alexa.size());
  for (std::uint32_t rank = 1; rank <= alexa.size(); ++rank) {
    set.domains.push_back(alexa.domain_at_rank(rank));
  }
  sets.push_back(std::move(set));
  const auto instrument = core::instrument_domain_sets("rank", std::move(sets));

  const tor::event hit = make_stream_event("www.amazon.com");
  const tor::event miss = make_stream_event("tail1234567.com");
  std::uint64_t total = 0;
  const auto incr = [&](const std::string&, std::uint64_t n) { total += n; };
  for (auto _ : state) {
    instrument(hit, incr);
    instrument(miss, incr);
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(bm_domain_set_matching)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kNanosecond);

void bm_psc_insert_toy(benchmark::State& state) {
  const auto group = crypto::make_toy_group();
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng rng{9};
  const auto kp = scheme.generate_keypair(rng);
  psc::oblivious_set set{scheme, kp.pub, 1 << 14, rng};
  std::uint64_t i = 0;
  for (auto _ : state) {
    set.insert(as_bytes("ip:" + std::to_string(i++)), rng);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_psc_insert_toy);

void bm_country_instrument(benchmark::State& state) {
  const auto geo = std::make_shared<const workload::geoip_db>(
      workload::geoip_db::make_synthetic());
  const auto instrument = core::instrument_country_usage(
      geo, {"US", "RU", "DE", "UA", "FR", "AE"});
  tor::event ev;
  ev.body = tor::entry_connection_event{42};  // country 0 = US block
  std::uint64_t total = 0;
  const auto incr = [&](const std::string&, std::uint64_t n) { total += n; };
  for (auto _ : state) {
    instrument(ev, incr);
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(bm_country_instrument);

}  // namespace

BENCHMARK_MAIN();
