// Event-trace pipeline throughput: how fast measurement events move
// through the codec and replay path that feeds distributed data
// collectors. Stages measured over a generated mixed-model workload:
//   encode    — event -> length-prefixed records in memory
//   decode    — incremental event_decoder over the encoded stream
//   file I/O  — trace_writer out + trace_reader/replay_events back in
//   observe   — decode + full PrivCount instrument stack per event
// The paper's deployment handled ~2 B exit streams/day network-wide
// (~23 k events/s); per-DC ingestion has to beat its share comfortably.
// A parallel stage then measures the PR-8 worker-pool ingest plane
// (serial vs 4 workers, PSC p256 and PrivCount) for the CI speedup gate.
//
// With --days N the bench additionally measures the multi-round live
// pipeline's replay path: a generated N-day trace streamed through a
// cli::workload_cursor that partitions it into daily collection windows
// (the code path every DC runs across a multi-round schedule).
//
// Usage: trace_replay [events] [--days N] [--json]
#include "common.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>

#include <thread>

#include "src/cli/deployment_plan.h"
#include "src/cli/workload_source.h"
#include "src/core/instruments.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/group.h"
#include "src/net/inproc.h"
#include "src/privcount/data_collector.h"
#include "src/privcount/messages.h"
#include "src/psc/data_collector.h"
#include "src/psc/messages.h"
#include "src/tor/event_codec.h"
#include "src/tor/trace_file.h"
#include "src/util/thread_pool.h"
#include "src/workload/trace_gen.h"

namespace {

using namespace tormet;
using clock_type = std::chrono::steady_clock;

double secs_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Multi-round replay throughput: one N-day trace streamed through the
/// workload_cursor's daily windows (the live pipeline's DC replay path).
int run_multiround(std::uint64_t target_events, std::uint64_t days, bool json) {
  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 1;
  gen.events = target_events;
  gen.days = days;
  gen.seed = 8;

  char tmpl[] = "/tmp/tormet-bench-XXXXXX";
  const char* dir = mkdtemp(tmpl);
  const std::vector<std::size_t> counts = workload::write_trace_dir(gen, dir);
  const std::size_t n = counts.front();

  cli::deployment_plan plan = cli::make_privcount_plan(
      1, 1, core::default_specs_for("stream_taxonomy"));
  plan.workload.kind = cli::workload_kind::trace;
  plan.workload.trace_dir = dir;
  plan.instruments = {"stream_taxonomy"};
  plan.schedule_rounds = static_cast<std::uint32_t>(days);
  plan.round_duration_s = k_seconds_per_day;
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    plan.nodes[i].port = static_cast<std::uint16_t>(9900 + i);
  }
  const core::measurement_schedule sched = cli::round_schedule_of(plan);

  const auto t0 = clock_type::now();
  cli::workload_cursor cursor{plan, 0};
  std::size_t replayed = 0;
  for (const auto& round : sched.rounds()) {
    replayed += cursor.stream_window(round.start, round.end(),
                                     [&](const tor::event*, std::size_t) {});
  }
  replayed += cursor.drain();
  const double replay_s = secs_since(t0);

  const std::string path = std::string{dir} + "/" + tor::trace_file_name(0);
  std::remove(path.c_str());
  rmdir(dir);
  if (replayed != n) {
    std::fprintf(stderr, "multiround count mismatch: %zu of %zu\n", replayed, n);
    return 1;
  }
  const double eps = static_cast<double>(n) / replay_s;
  if (json) {
    std::printf(
        "{\"bench\":\"trace_replay.multiround\",\"events\":%zu,\"days\":%llu,"
        "\"rounds\":%llu,\"replay_eps\":%.0f}\n",
        n, static_cast<unsigned long long>(days),
        static_cast<unsigned long long>(days), eps);
    return 0;
  }
  repro_table table{"Multi-round windowed replay (" + std::to_string(n) +
                    " events, " + std::to_string(days) + " daily rounds)"};
  table.add("windowed file replay", "", format_count(eps) + " ev/s", "");
  table.print();
  return 0;
}

/// Sharded batched-ingest throughput: the same generated stream pushed
/// through workload_cursor::stream_window into a DC's ingest() path
/// (compiled slot instruments + flat counter slabs), against the per-event
/// observe() baseline with the closure instrument — the PR 5 replay path.
/// The CI gate pins the ratio, which is machine-independent.
int run_ingest(std::uint64_t target_events, bool json) {
  workload::trace_gen_params params;
  params.model = "zipf";
  params.dcs = 1;
  params.events = target_events;
  params.seed = 8;
  const auto generated =
      std::make_shared<const std::vector<std::vector<tor::event>>>(
          workload::generate_trace_events(params));
  const std::vector<tor::event>& events = generated->front();
  const std::size_t n = events.size();

  cli::deployment_plan plan = cli::make_privcount_plan(
      1, 1, core::default_specs_for("stream_taxonomy"));
  plan.workload.kind = cli::workload_kind::generate;
  plan.workload.model = "zipf";
  plan.workload.events = target_events;
  plan.workload.gen_seed = 8;
  plan.instruments = {"stream_taxonomy"};

  net::inproc_net bus;
  bus.register_node(0, [](const net::message&) {});  // absorb DC->TS sends
  crypto::deterministic_rng rng{1};
  const auto start_round = [](privcount::data_collector& dc) {
    privcount::configure_msg cfg;
    cfg.round_id = 1;
    for (const auto& spec : core::default_specs_for("stream_taxonomy")) {
      cfg.counter_names.push_back(spec.name);
      cfg.sigmas.push_back(0.0);
    }
    dc.handle_message(privcount::encode_configure(0, 1, cfg));
    dc.handle_message(privcount::encode_simple(
        0, 1, privcount::msg_type::start_collection, 1));
  };
  constexpr sim_time k_begin{std::numeric_limits<std::int64_t>::min()};
  constexpr sim_time k_end{std::numeric_limits<std::int64_t>::max()};

  // -- scalar baseline: closure instrument, observe() per event -------------
  privcount::data_collector scalar_dc{1, 0, bus, rng};
  scalar_dc.add_instrument(core::instrument_by_name("stream_taxonomy"));
  start_round(scalar_dc);
  std::size_t scalar_total = 0;
  auto t0 = clock_type::now();
  do {
    for (const tor::event& ev : events) scalar_dc.observe(ev);
    scalar_total += n;
  } while (secs_since(t0) < 0.2);
  const double scalar_s = secs_since(t0);

  // -- batched ingest, 1 shard and 4 shards ---------------------------------
  const auto measure_ingest = [&](std::size_t shards, std::size_t& total) {
    privcount::data_collector dc{1, 0, bus, rng};
    dc.add_instrument(core::make_batch_instrument("stream_taxonomy"));
    dc.set_shards(shards);
    start_round(dc);
    total = 0;
    const auto start = clock_type::now();
    do {
      cli::workload_cursor cursor{plan, 0, generated};
      cursor.stream_window(
          k_begin, k_end,
          [&dc](const tor::event* evs, std::size_t k) { dc.ingest(evs, k); });
      total += n;
    } while (secs_since(start) < 0.4);
    if (dc.events_observed() != total) {
      std::fprintf(stderr, "ingest count mismatch at %zu shards\n", shards);
      std::exit(1);
    }
    return secs_since(start);
  };
  std::size_t ingest1_total = 0, ingest4_total = 0;
  const double ingest1_s = measure_ingest(1, ingest1_total);
  const double ingest4_s = measure_ingest(4, ingest4_total);

  if (scalar_dc.events_observed() != scalar_total) {
    std::fprintf(stderr, "scalar count mismatch\n");
    return 1;
  }
  const double scalar_eps = static_cast<double>(scalar_total) / scalar_s;
  const double ingest_eps = static_cast<double>(ingest1_total) / ingest1_s;
  const double ingest4_eps = static_cast<double>(ingest4_total) / ingest4_s;
  const double speedup = ingest_eps / scalar_eps;
  if (json) {
    std::printf(
        "{\"bench\":\"trace_replay.ingest\",\"events\":%zu,\"shards\":1,"
        "\"ingest_eps\":%.0f,\"ingest4_eps\":%.0f,\"scalar_eps\":%.0f,"
        "\"speedup\":%.2f}\n",
        n, ingest_eps, ingest4_eps, scalar_eps, speedup);
    return 0;
  }
  repro_table table{"Sharded batched ingest (" + std::to_string(n) +
                    " events/pass, stream_taxonomy)"};
  table.add("observe baseline", "", format_count(scalar_eps) + " ev/s", "");
  table.add("batched ingest (1 shard)", "", format_count(ingest_eps) + " ev/s",
            format_count(speedup) + "x");
  table.add("batched ingest (4 shards)", "",
            format_count(ingest4_eps) + " ev/s", "");
  table.print();
  return 0;
}

/// Parallel-ingest speedup: serial single-thread ingest vs the PR-8 worker
/// pool (8 shards on a 4-worker pool), for both DC kinds. The PSC p256
/// number is the headline — each insert is a real EC encryption, so shard
/// workers scale near-linearly and the CI gate pins the 4-worker speedup
/// (>= 1.8x) on multi-core runners. PrivCount slab ingest is memory-bound
/// and reported for reference only. On machines with fewer than 4 cores
/// the speedup is meaningless; `skipped` tells the gate to stand down.
int run_parallel(bool json) {
  const std::size_t hw = std::thread::hardware_concurrency();
  const bool skipped = hw < 4;
  constexpr std::size_t k_workers = 4;
  constexpr std::size_t k_shards = 8;

  // -- PSC p256: crypto-dominated seeded inserts ----------------------------
  workload::trace_gen_params params;
  params.model = "zipf";
  params.dcs = 1;
  params.events = 2'000;
  params.seed = 8;
  const std::vector<tor::event> events =
      workload::generate_trace_events(params).front();

  const auto group = crypto::make_group(crypto::group_backend::p256);
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng key_rng{5};
  const crypto::elgamal_keypair kp = scheme.generate_keypair(key_rng);

  const auto psc_eps = [&](std::shared_ptr<util::thread_pool> pool) {
    net::inproc_net bus;
    bus.register_node(0, [](const net::message&) {});
    crypto::deterministic_rng rng{1};
    psc::data_collector dc{1, 0, bus, rng};
    dc.set_extractor(core::extractor_by_name("primary_sld"));
    dc.set_shards(k_shards);
    if (pool != nullptr) dc.set_thread_pool(std::move(pool));
    psc::dc_configure_msg cfg;
    cfg.round_id = 1;
    cfg.bins = 1024;
    cfg.group = static_cast<std::uint8_t>(crypto::group_backend::p256);
    cfg.joint_pk = group->encode(kp.pub);
    dc.handle_message(psc::encode_dc_configure(0, 1, cfg));
    std::size_t total = 0;
    const auto t0 = clock_type::now();
    do {
      dc.ingest(events.data(), events.size());
      total += events.size();
    } while (secs_since(t0) < 0.4);
    return static_cast<double>(total) / secs_since(t0);
  };
  const double psc_serial = psc_eps(nullptr);
  const double psc_parallel =
      psc_eps(std::make_shared<util::thread_pool>(k_workers));
  const double psc_speedup = psc_parallel / psc_serial;

  // -- PrivCount: memory-bound slab ingest (reference numbers) --------------
  params.events = 100'000;
  const std::vector<tor::event> pc_events =
      workload::generate_trace_events(params).front();
  const auto privcount_eps = [&](std::shared_ptr<util::thread_pool> pool) {
    net::inproc_net bus;
    bus.register_node(0, [](const net::message&) {});
    crypto::deterministic_rng rng{1};
    privcount::data_collector dc{1, 0, bus, rng};
    dc.add_instrument(core::make_batch_instrument("stream_taxonomy"));
    dc.set_shards(k_shards);
    if (pool != nullptr) dc.set_thread_pool(std::move(pool));
    privcount::configure_msg cfg;
    cfg.round_id = 1;
    for (const auto& spec : core::default_specs_for("stream_taxonomy")) {
      cfg.counter_names.push_back(spec.name);
      cfg.sigmas.push_back(0.0);
    }
    dc.handle_message(privcount::encode_configure(0, 1, cfg));
    dc.handle_message(privcount::encode_simple(
        0, 1, privcount::msg_type::start_collection, 1));
    std::size_t total = 0;
    const auto t0 = clock_type::now();
    do {
      dc.ingest(pc_events.data(), pc_events.size());
      total += pc_events.size();
    } while (secs_since(t0) < 0.4);
    return static_cast<double>(total) / secs_since(t0);
  };
  const double pc_serial = privcount_eps(nullptr);
  const double pc_parallel =
      privcount_eps(std::make_shared<util::thread_pool>(k_workers));
  const double pc_speedup = pc_parallel / pc_serial;

  if (json) {
    std::printf(
        "{\"bench\":\"trace_replay.parallel\",\"workers\":%zu,\"shards\":%zu,"
        "\"hw\":%zu,\"skipped\":%s,\"psc_serial_eps\":%.0f,"
        "\"psc_parallel_eps\":%.0f,\"psc_speedup\":%.2f,"
        "\"privcount_serial_eps\":%.0f,\"privcount_parallel_eps\":%.0f,"
        "\"privcount_speedup\":%.2f}\n",
        k_workers, k_shards, hw, skipped ? "true" : "false", psc_serial,
        psc_parallel, psc_speedup, pc_serial, pc_parallel, pc_speedup);
    return 0;
  }
  repro_table table{"Parallel ingest, 8 shards on a 4-worker pool (hw " +
                    std::to_string(hw) + (skipped ? ", gate skipped)" : ")")};
  table.add("PSC p256 serial", "", format_count(psc_serial) + " ev/s", "");
  table.add("PSC p256 4 workers", "", format_count(psc_parallel) + " ev/s",
            format_count(psc_speedup) + "x");
  table.add("PrivCount serial", "", format_count(pc_serial) + " ev/s", "");
  table.add("PrivCount 4 workers", "", format_count(pc_parallel) + " ev/s",
            format_count(pc_speedup) + "x");
  table.print();
  return 0;
}

/// Scenario replay throughput: the Mevade-shaped botnet_surge workload
/// (PR 9's heaviest scenario — day 1 doubles the event rate) materialized
/// from its plan spec and streamed through the daily-window cursor path
/// into a sharded DC. This is exactly the code path the scenario
/// acceptance gate drives; the CI artifact tracks its events/s.
int run_scenario(bool json) {
  cli::deployment_plan plan = cli::make_privcount_plan(
      1, 1, core::default_specs_for("entry_totals"));
  plan.workload.kind = cli::workload_kind::scenario;
  plan.workload.model = "botnet_surge";
  plan.workload.scale = 1.0;
  plan.workload.events = 50'000;
  plan.workload.gen_seed = 8;
  plan.workload.gen_days = 2;
  plan.instruments = {"entry_totals"};
  plan.schedule_rounds = 2;
  plan.round_duration_s = k_seconds_per_day;
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    plan.nodes[i].port = static_cast<std::uint16_t>(9800 + i);
  }

  const auto gen_t0 = clock_type::now();
  const auto generated = cli::materialize_plan_events(plan);
  const double generate_s = secs_since(gen_t0);
  const std::size_t n = generated->front().size();
  const core::measurement_schedule sched = cli::round_schedule_of(plan);

  net::inproc_net bus;
  bus.register_node(0, [](const net::message&) {});
  crypto::deterministic_rng rng{1};
  privcount::data_collector dc{1, 0, bus, rng};
  dc.add_instrument(core::make_batch_instrument("entry_totals"));
  dc.set_shards(4);
  privcount::configure_msg cfg;
  cfg.round_id = 1;
  for (const auto& spec : core::default_specs_for("entry_totals")) {
    cfg.counter_names.push_back(spec.name);
    cfg.sigmas.push_back(0.0);
  }
  dc.handle_message(privcount::encode_configure(0, 1, cfg));
  dc.handle_message(
      privcount::encode_simple(0, 1, privcount::msg_type::start_collection, 1));

  std::size_t total = 0;
  const auto t0 = clock_type::now();
  do {
    cli::workload_cursor cursor{plan, 0, generated};
    std::size_t replayed = 0;
    for (const auto& round : sched.rounds()) {
      replayed += cursor.stream_window(
          round.start, round.end(),
          [&dc](const tor::event* evs, std::size_t k) { dc.ingest(evs, k); });
    }
    replayed += cursor.drain();
    if (replayed != n) {
      std::fprintf(stderr, "scenario replay mismatch: %zu of %zu\n", replayed,
                   n);
      return 1;
    }
    total += n;
  } while (secs_since(t0) < 0.4);
  const double eps = static_cast<double>(total) / secs_since(t0);

  if (json) {
    std::printf(
        "{\"bench\":\"trace_replay.scenario\",\"scenario\":\"botnet_surge\","
        "\"events\":%zu,\"rounds\":2,\"generate_s\":%.3f,\"replay_eps\":%.0f}"
        "\n",
        n, generate_s, eps);
    return 0;
  }
  repro_table table{"Scenario replay, botnet_surge (" + std::to_string(n) +
                    " events, 2 daily rounds, 4 shards)"};
  table.add("materialize from plan", "",
            format_count(static_cast<double>(n) / generate_s) + " ev/s", "");
  table.add("windowed replay + ingest", "", format_count(eps) + " ev/s", "");
  table.print();
  return 0;
}

int run(std::uint64_t target_events, bool json) {
  workload::trace_gen_params params;
  params.model = "zipf";
  params.dcs = 1;
  params.events = target_events;
  params.seed = 8;
  const std::vector<tor::event> events =
      workload::generate_trace_events(params).front();
  const std::size_t n = events.size();

  // -- encode ---------------------------------------------------------------
  auto t0 = clock_type::now();
  byte_buffer stream;
  tor::append_trace_header(stream);
  for (const tor::event& ev : events) tor::append_event_record(stream, ev);
  const double encode_s = secs_since(t0);
  const double mib = static_cast<double>(stream.size()) / (1 << 20);

  // -- decode ---------------------------------------------------------------
  t0 = clock_type::now();
  tor::event_decoder decoder;
  decoder.feed(stream);
  std::size_t decoded = 0;
  while (decoder.next().has_value()) ++decoded;
  const double decode_s = secs_since(t0);

  // -- file round trip ------------------------------------------------------
  char tmpl[] = "/tmp/tormet-bench-XXXXXX";
  const char* dir = mkdtemp(tmpl);
  const std::string path = std::string{dir} + "/bench.trace";
  t0 = clock_type::now();
  {
    tor::trace_writer writer{path};
    for (const tor::event& ev : events) writer.write(ev);
    writer.close();
  }
  const double write_s = secs_since(t0);
  t0 = clock_type::now();
  tor::trace_reader reader{path};
  std::size_t replayed = 0;
  tor::replay_events(reader, [&replayed](const tor::event&) { ++replayed; });
  const double read_s = secs_since(t0);
  std::remove(path.c_str());
  rmdir(dir);

  // -- observe through the full instrument stack ----------------------------
  net::inproc_net bus;
  crypto::deterministic_rng rng{1};
  privcount::data_collector dc{1, 0, bus, rng};
  for (const auto& name : core::instrument_names()) {
    dc.add_instrument(core::instrument_by_name(name));
  }
  // Drive the DC into collecting state through a minimal configure+start.
  privcount::configure_msg cfg;
  cfg.round_id = 1;
  for (const auto& name : core::instrument_names()) {
    for (const auto& spec : core::default_specs_for(name)) {
      cfg.counter_names.push_back(spec.name);
      cfg.sigmas.push_back(0.0);
    }
  }
  bus.register_node(0, [](const net::message&) {});  // absorb DC->TS sends
  dc.handle_message(privcount::encode_configure(0, 1, cfg));
  dc.handle_message(privcount::encode_simple(
      0, 1, privcount::msg_type::start_collection, 1));
  t0 = clock_type::now();
  for (const tor::event& ev : events) dc.observe(ev);
  const double observe_s = secs_since(t0);

  if (decoded != n || replayed != n || dc.events_observed() != n) {
    std::fprintf(stderr, "count mismatch: %zu decoded, %zu replayed\n",
                 decoded, replayed);
    return 1;
  }

  const auto rate = [n](double s) { return static_cast<double>(n) / s; };
  if (json) {
    std::printf(
        "{\"bench\":\"trace_replay\",\"events\":%zu,\"stream_mib\":%.2f,"
        "\"encode_eps\":%.0f,\"decode_eps\":%.0f,\"write_eps\":%.0f,"
        "\"read_eps\":%.0f,\"observe_eps\":%.0f}\n",
        n, mib, rate(encode_s), rate(decode_s), rate(write_s), rate(read_s),
        rate(observe_s));
    return 0;
  }
  repro_table table{"Event-trace pipeline throughput (" + std::to_string(n) +
                    " events, " + format_count(mib) + " MiB stream)"};
  table.add("encode", "", format_count(rate(encode_s)) + " ev/s",
            format_count(mib / encode_s) + " MiB/s");
  table.add("decode", "", format_count(rate(decode_s)) + " ev/s",
            format_count(mib / decode_s) + " MiB/s");
  table.add("file write", "", format_count(rate(write_s)) + " ev/s", "");
  table.add("file read+replay", "", format_count(rate(read_s)) + " ev/s", "");
  table.add("observe (3 instruments)", "",
            format_count(rate(observe_s)) + " ev/s", "");
  table.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t events = 200'000;
  std::uint64_t days = 1;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      days = std::strtoull(argv[++i], nullptr, 10);
    } else {
      events = std::strtoull(argv[i], nullptr, 10);
    }
  }
  int rc = run(events, json);
  if (rc == 0) rc = run_ingest(events, json);
  if (rc == 0) rc = run_parallel(json);
  if (rc == 0) rc = run_scenario(json);
  if (rc != 0 || days <= 1) return rc;
  return run_multiround(events, days, json);
}
