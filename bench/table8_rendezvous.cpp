// Table 8 reproduction: rendezvous-point statistics (PrivCount at the
// measured relays in the RP position). Paper findings: 366 M rendezvous
// circuits/day of which only 8.08 % succeed (4.37 % lose their connection,
// 84.9 % expire before the service completes), carrying 20.1 TiB of cell
// payload (~2 Gbit/s, ~730 KiB per active circuit).
#include "common.h"

#include "src/privcount/deployment.h"
#include "src/tor/cell.h"
#include "src/workload/onion_activity.h"

namespace {

using namespace tormet;

constexpr double k_scale = 1.0 / 100.0;

int run() {
  bench::print_header("Table 8 — rendezvous statistics (PrivCount at RPs)",
                      k_scale);

  core::measurement_study study{bench::default_study_config(98)};
  tor::network& net = study.network();

  workload::onion_params op;
  op.network_scale = k_scale;
  op.fetch_attempts = 0.0;  // this bench isolates rendezvous traffic
  op.seed = 98;
  workload::onion_driver driver{net, op};

  tor::client_profile cp;
  cp.ip = 1;
  const tor::client_id client = net.add_client(cp);
  const std::vector<tor::client_id> clients{client};

  net::inproc_net bus;
  privcount::deployment_config cfg = study.privcount_config();
  privcount::deployment dep{bus, cfg};
  dep.add_instrument(core::instrument_rendezvous());
  dep.attach(net);

  const double d180 = 180.0 * k_scale;  // Table 1: 180 rendezvous connections
  const double dcells = 400e6 / tor::k_cell_payload_bytes * k_scale;
  const std::vector<privcount::counter_spec> specs{
      {"rend/circuits", d180 * 2, 30000},
      {"rend/succeeded", d180 * 2, 2500},
      {"rend/conn-closed", d180, 1300},
      {"rend/expired", d180, 26000},
      {"rend/cells", dcells, 4e6},
  };
  const auto results = dep.run_round(specs, [&] {
    driver.run_day(clients, clients, sim_time{0});
  });

  std::map<std::string, privcount::counter_result> r;
  for (const auto& c : results) r[c.name] = c;
  const double rp_frac = study.fraction(tor::position::rendezvous,
                                        study.measured_relays());
  const auto infer = [&](const std::string& name) {
    const auto& c = r.at(name);
    return bench::to_paper_scale(
        stats::normal_estimate(static_cast<double>(c.value), c.sigma), rp_frac,
        k_scale);
  };

  const stats::estimate circuits = infer("rend/circuits");
  const stats::estimate succeeded = infer("rend/succeeded");
  const stats::estimate conn_closed = infer("rend/conn-closed");
  const stats::estimate expired = infer("rend/expired");
  const stats::estimate cells = infer("rend/cells");

  const stats::estimate payload{
      cells.value * tor::k_cell_payload_bytes,
      {cells.ci.lo * tor::k_cell_payload_bytes,
       cells.ci.hi * tor::k_cell_payload_bytes}};
  const stats::estimate success_share = stats::ratio_estimate(succeeded, circuits);
  const stats::estimate closed_share = stats::ratio_estimate(conn_closed, circuits);
  const stats::estimate expired_share = stats::ratio_estimate(expired, circuits);

  const tor::ground_truth& t = net.truth();
  repro_table table{"Table 8 — network-wide rendezvous statistics per day"};
  table.add("total circuits", "366 million [351; 380]",
            bench::fmt_count_est(circuits), bench::fmt_ci_counts(circuits),
            "sim truth " +
                format_count(static_cast<double>(t.rend_circuits) / k_scale));
  table.add("succeeded", "8.08 % [3.47; 13.1]",
            format_percent(success_share.value),
            bench::fmt_ci_percent(success_share));
  table.add("failed: conn. closed", "4.37 % [0.0; 9.23]",
            format_percent(closed_share.value),
            bench::fmt_ci_percent(closed_share));
  table.add("failed: circuit expired", "84.9 % [77.0; 93.5]",
            format_percent(expired_share.value),
            bench::fmt_ci_percent(expired_share));
  table.add("cell payload", "20.1 TiB [15.2; 24.9]", format_bytes(payload.value),
            "[" + format_bytes(payload.ci.lo) + "; " +
                format_bytes(payload.ci.hi) + "]",
            "sim truth " + format_bytes(
                static_cast<double>(t.rend_payload_bytes) / k_scale));
  table.add("payload / second", "2.04 Gbit/s [1.55; 2.53]",
            format_sig(payload.value * 8 / 86400 / 1e9, 3) + " Gbit/s");
  table.add("payload / active circuit", "730 KiB [341; 2,070]",
            format_bytes(payload.value / succeeded.value));
  table.print();
  return 0;
}

}  // namespace

int main() { return run(); }
