// Table 6 reproduction: network-wide unique v2 onion addresses published
// (70,826) and fetched (74,900, wide CI) inferred from PSC measurements at
// the measured HSDirs, extrapolated via HSDir-replication observation
// probabilities (publish weight vs fetch weight — the fetch CI is much
// wider because the fetch weight is ~5x smaller).
#include "common.h"

#include "src/psc/deployment.h"
#include "src/stats/psc_ci.h"
#include "src/workload/onion_activity.h"

namespace {

using namespace tormet;

constexpr double k_scale = 0.25;  // service population scale

int run() {
  bench::print_header("Table 6 — unique onion addresses (PSC at HSDirs)",
                      k_scale,
                      "fetch volume further scaled (uniques depend on the "
                      "popularity distribution, not raw attempt counts)");

  core::measurement_study study{bench::default_study_config(96)};
  tor::network& net = study.network();

  workload::onion_params op;
  op.network_scale = k_scale;
  op.fetch_attempts = 6e6;  // scaled-down fetch traffic (see header note)
  op.seed = 96;
  workload::onion_driver driver{net, op};

  tor::client_profile cp;
  cp.ip = 1;
  const tor::client_id client = net.add_client(cp);
  const std::vector<tor::client_id> clients{client};

  const std::vector<tor::relay_id> hsdirs = study.measured_hsdirs();
  const std::set<tor::relay_id> hsdir_set{hsdirs.begin(), hsdirs.end()};
  const double publish_weight =
      net.ring().publish_observation_probability(hsdir_set, 0);
  const double fetch_weight = net.ring().responsibility_fraction(hsdir_set, 0);
  std::printf("  publish weight %.3f %% (paper 2.75 %%), fetch weight %.3f %% "
              "(paper 0.534 %%)\n\n",
              publish_weight * 100, fetch_weight * 100);

  const auto run_round = [&](psc::data_collector::extractor extract,
                             double sensitivity, std::uint64_t seed) {
    net::inproc_net bus;
    psc::deployment_config cfg;
    cfg.measured_relays = hsdirs;
    cfg.round.bins = 1 << 15;
    cfg.round.group = crypto::group_backend::toy;
    cfg.round.sensitivity = sensitivity;
    cfg.rng_seed = seed;
    psc::deployment dep{bus, cfg};
    dep.set_extractor(std::move(extract));
    dep.attach(net);
    const psc::round_outcome out = dep.run_round(
        [&] { driver.run_day(clients, clients, sim_time{0}); });
    stats::psc_ci_params ci;
    ci.bins = out.bins;
    ci.total_noise_bits = out.total_noise_bits;
    return stats::psc_confidence_interval(out.raw_count, ci);
  };

  // Table 1: 3 new onion addresses per protected day (scaled).
  const stats::estimate published_local =
      run_round(core::extract_published_address(), 3.0 * k_scale, 801);
  const stats::estimate fetched_local =
      run_round(core::extract_fetched_address(), 30.0 * k_scale, 802);

  const auto extrapolate = [&](const stats::estimate& local, double weight) {
    return bench::to_paper_scale(local, weight, k_scale);
  };
  const stats::estimate published =
      extrapolate(published_local, publish_weight);
  const stats::estimate fetched = extrapolate(fetched_local, fetch_weight);

  repro_table table{"Table 6 — network-wide unique v2 onion addresses"};
  table.add("addresses published", "70,826 [65,738; 76,350]",
            bench::fmt_count_est(published), bench::fmt_ci_counts(published),
            "sim truth " + format_count(
                static_cast<double>(net.service_count()) / k_scale));
  table.add("addresses fetched", "74,900 [34,363; 696,255]",
            bench::fmt_count_est(fetched), bench::fmt_ci_counts(fetched),
            "sim truth " + format_count(
                static_cast<double>(driver.unique_fetched()) / k_scale));
  const stats::estimate used_share = stats::ratio_estimate(fetched, published);
  table.add("fetched/published", "45-100 % of services used",
            format_percent(used_share.value),
            bench::fmt_ci_percent(used_share),
            "sim truth " + format_percent(
                static_cast<double>(driver.unique_fetched()) /
                static_cast<double>(net.service_count())));
  table.add("fetch CI much wider than publish CI", "yes (0.534 % vs 2.75 %)",
            fetched.ci.width() > 3 * published.ci.width() ? "yes" : "no");
  table.print();
  return 0;
}

}  // namespace

int main() { return run(); }
