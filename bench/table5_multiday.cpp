// Table 5 multi-day reproduction over the *live pipeline*: the multi-day
// unique-client ratio (the paper's 4-day/1-day turnover of ~2.15x) measured
// end to end through the multi-round machinery itself — a generated
// `--days N` population-churn trace partitioned into daily PSC rounds by
// cli::run_reference_round (the same code path the distributed deployment
// is byte-identity-gated against), plus one long round spanning the whole
// window for the multi-day unique count.
//
// With noise disabled the raw counts are exact occupancy counts, so the
// printed ratio isolates the churn model + windowing, not DP noise.
//
// Usage: table5_multiday [--days N] [--scale X] [--json]
#include "common.h"

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "src/cli/deployment_plan.h"
#include "src/cli/orchestrator.h"
#include "src/workload/population.h"

namespace {

using namespace tormet;

/// Extracts every "estimate <v>" line of a (multi-round) tally.
[[nodiscard]] std::vector<double> parse_estimates(const std::string& tally) {
  std::vector<double> out;
  std::istringstream in{tally};
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("estimate ", 0) == 0) {
      out.push_back(std::strtod(line.c_str() + 9, nullptr));
    }
  }
  return out;
}

[[nodiscard]] cli::deployment_plan base_plan(double scale, std::uint64_t days) {
  cli::deployment_plan plan = cli::make_psc_plan(4, 3, 1 << 14);
  plan.round.group = crypto::group_backend::toy;
  plan.round.noise_enabled = false;  // exact counts isolate the churn model
  plan.rng_seed = 95;
  plan.psc_extractor = "client_ip";
  plan.workload.kind = cli::workload_kind::generate;
  plan.workload.model = "population";
  plan.workload.scale = scale;
  plan.workload.gen_seed = 95;
  plan.workload.gen_days = days;
  // run_reference_round validates ports even though nothing binds them.
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    plan.nodes[i].port = static_cast<std::uint16_t>(9900 + i);
  }
  return plan;
}

int run(std::uint64_t days, double scale, bool json) {
  // Daily rounds: one PSC unique-IP round per generated day, through the
  // multi-round reference pipeline (persistent deployment + windowed
  // cursors).
  cli::deployment_plan daily = base_plan(scale, days);
  daily.schedule_rounds = static_cast<std::uint32_t>(days);
  daily.round_duration_s = k_seconds_per_day;
  const std::vector<double> day_estimates =
      parse_estimates(cli::run_reference_round(daily));
  if (day_estimates.size() != days) {
    std::fprintf(stderr, "expected %llu daily estimates, got %zu\n",
                 static_cast<unsigned long long>(days), day_estimates.size());
    return 1;
  }

  // One long round over the same trace: the N-day unique-IP count.
  cli::deployment_plan window = base_plan(scale, days);
  const std::vector<double> window_estimate =
      parse_estimates(cli::run_reference_round(window));
  if (window_estimate.size() != 1) return 1;

  const double day1 = day_estimates.front();
  const double multi = window_estimate.front();
  const double ratio = multi / day1;
  const double churn = workload::population_params{}.daily_churn;
  const double model_ratio = 1.0 + static_cast<double>(days - 1) * churn;
  const double paper_ratio = 672'303.0 / 313'213.0;  // 4-day / 1-day IPs

  if (json) {
    std::printf(
        "{\"bench\":\"table5_multiday\",\"days\":%llu,\"scale\":%g,"
        "\"day1_unique\":%.1f,\"multiday_unique\":%.1f,\"ratio\":%.4f,"
        "\"model_ratio\":%.4f}\n",
        static_cast<unsigned long long>(days), scale, day1, multi, ratio,
        model_ratio);
    return 0;
  }

  bench::print_header(
      "Table 5 (multi-day) — unique clients via the live multi-round pipeline",
      scale, "population model, noiseless PSC, daily rounds + one long round");
  repro_table table{"multi-day unique-IP ratio (" + std::to_string(days) +
                    " days)"};
  for (std::size_t d = 0; d < day_estimates.size(); ++d) {
    table.add("unique IPs day " + std::to_string(d + 1), "",
              format_count(day_estimates[d]), "");
  }
  table.add("unique IPs " + std::to_string(days) + "-day window", "",
            format_count(multi), "");
  table.add("multi-day / 1-day ratio",
            days == 4 ? "2.15x (672,303 / 313,213)" : "",
            format_sig(ratio, 3) + "x", "",
            "model 1+(N-1)c = " + format_sig(model_ratio, 3) + "x");
  if (days == 4) {
    table.add("paper 4-day turnover", format_sig(paper_ratio, 3) + "x", "", "");
  }
  table.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t days = 4;
  double scale = 5e-4;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--days" && i + 1 < argc) {
      days = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr, "usage: table5_multiday [--days N] [--scale X] [--json]\n");
      return 2;
    }
  }
  if (days < 2) {
    std::fprintf(stderr, "table5_multiday: --days must be >= 2\n");
    return 2;
  }
  return run(days, scale, json);
}
