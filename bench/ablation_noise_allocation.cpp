// Ablation: the equal-relative-noise privacy-budget allocation (PrivCount's
// published strategy, used by every measurement here) vs a naive uniform
// epsilon split. Uses the Fig 1 + Table 4 counter sets: expected magnitudes
// span 5 orders of magnitude, which is exactly where uniform allocation
// falls over (small counters drown in noise budgeted for big ones).
#include "common.h"

#include "src/dp/allocation.h"

namespace {

using namespace tormet;

int run() {
  std::printf("Ablation — privacy-budget allocation strategies\n\n");

  // Expected values are the operator's magnitude estimates; for near-zero
  // counters (ipv6 streams) the value is the smallest magnitude of
  // *interest*, which keeps the minimax objective meaningful.
  const dp::privacy_params params{0.3, 1e-11};
  const std::vector<dp::counter_request> counters{
      {"streams/total", 400, 4.0e7},
      {"streams/initial", 20, 2.0e6},
      {"streams/initial/ipv6", 20, 5.0e4},
      {"entry/connections", 12, 2.1e6},
      {"entry/circuits", 651, 1.9e7},
      {"entry/bytes", 4.07e8, 8.2e12},
      {"rend/expired", 180, 2.7e6},
  };

  const auto smart = dp::allocate_budget(params, counters);
  const auto uniform = dp::allocate_budget_uniform(params, counters);

  repro_table table{"relative noise sigma/E per counter"};
  for (std::size_t i = 0; i < counters.size(); ++i) {
    const double rel_smart = smart[i].sigma / counters[i].expected_value;
    const double rel_uniform = uniform[i].sigma / counters[i].expected_value;
    table.add(counters[i].name,
              "uniform: " + format_sig(rel_uniform, 3),
              "equal-rel: " + format_sig(rel_smart, 3));
  }
  table.print();
  std::printf("Equal-relative allocation is a minimax strategy: it trades\n"
              "slack on counters that were far more accurate than needed for\n"
              "the counter that was about to drown in noise.\n\n");

  double eps_smart = 0.0;
  double worst_smart = 0.0;
  double worst_uniform = 0.0;
  for (std::size_t i = 0; i < counters.size(); ++i) {
    eps_smart += smart[i].epsilon;
    worst_smart = std::max(worst_smart, smart[i].sigma / counters[i].expected_value);
    worst_uniform =
        std::max(worst_uniform, uniform[i].sigma / counters[i].expected_value);
  }
  repro_table summary{"summary"};
  summary.add("total epsilon spent", format_sig(params.epsilon, 3),
              format_sig(eps_smart, 3), "", "identical budget");
  summary.add("worst-case relative noise", format_sig(worst_uniform, 3),
              format_sig(worst_smart, 3), "",
              format_sig(worst_uniform / worst_smart, 3) + "x improvement");
  summary.print();
  return 0;
}

}  // namespace

int main() { return run(); }
