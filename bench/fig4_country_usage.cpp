// Figure 4 reproduction: per-country client connections, bytes, and
// circuits (PrivCount histograms keyed by GeoIP lookups at the guards).
// Paper shapes: US, RU, DE lead connections and bytes; the UAE (AE) is
// absent from the connection/byte leaders but ranks ~6th in circuits — the
// "partially blocked clients loop directory fetches" anomaly, which the
// uae_blocked client class reproduces.
//
// As in the paper, each metric is measured in its own 24-hour round (one
// privacy budget per round); small countries remain noise-dominated, which
// is itself a paper-reproduced behaviour (its Fig 4 leader boards contain
// noise artifacts like BV and SS).
#include "common.h"

#include <algorithm>

#include "src/privcount/deployment.h"
#include "src/stats/metrics_portal.h"
#include "src/workload/alexa.h"
#include "src/workload/browsing.h"
#include "src/workload/population.h"

namespace {

using namespace tormet;

constexpr double k_scale = 1e-3;

int run() {
  bench::print_header("Fig 4 — per-country client usage (PrivCount at guards)",
                      k_scale, "one measurement round per metric, as deployed");

  core::measurement_study study{bench::default_study_config(91)};
  tor::network& net = study.network();
  auto geo = std::make_shared<workload::geoip_db>(workload::geoip_db::make_synthetic());

  workload::population_params pp;
  pp.network_scale = k_scale;
  pp.seed = 91;
  workload::population pop{net, *geo, pp};

  const auto alexa = std::make_shared<const workload::alexa_list>(
      workload::alexa_list::make_synthetic({.size = 100'000, .seed = 3}));
  workload::browsing_params bp;
  bp.seed = 91;
  bp.circuits_per_web_client = 14.5;
  workload::browsing_driver browser{net, *alexa, bp};

  // Measure the larger per-country populations plus AE (the anomaly).
  const std::vector<std::string> countries{"US", "RU", "DE", "UA", "FR", "GB",
                                           "CA", "NL", "PL", "ES", "AE", "MX",
                                           "BR", "SE", "AR"};

  net::inproc_net bus;
  privcount::deployment_config cfg = study.privcount_config();
  cfg.measured_relays = study.measured_guards();
  privcount::deployment dep{bus, cfg};
  dep.add_instrument(core::instrument_country_usage(geo, countries));
  dep.attach(net);

  const double frac = study.fraction(tor::position::guard, study.measured_guards());

  // Expected values per country from the operator's prior (the GeoIP client
  // shares) — magnitude estimates for the noise allocation.
  struct metric_spec {
    const char* name;
    double sensitivity;          // Table-1 bound, scaled
    double network_total;        // prior for the whole network per day
    double floor;
  };
  const metric_spec metrics[] = {
      {"connections", 12.0 * k_scale, 148e6 * k_scale, 10.0},
      {"bytes", 407e6 * k_scale, 5.2e14 * k_scale, 1e6},
      {"circuits", 651.0 * k_scale, 1.29e9 * k_scale, 100.0},
      {"dir-requests", 651.0 * k_scale, 3.6e8 * k_scale, 50.0},
  };

  std::map<std::string, double> value;
  int day = 0;
  // Rounds: connections / bytes / circuits+dir-requests (the directory
  // split shares the circuits round, as it derives from the same events).
  const std::vector<std::vector<int>> rounds{{0}, {1}, {2, 3}};
  for (const auto& round_metrics : rounds) {
    std::vector<privcount::counter_spec> specs;
    for (const int m : round_metrics) {
      for (const auto& cc : countries) {
        const double share = geo->countries()[geo->index_of(cc)].client_share;
        const double expected =
            std::max(metrics[m].floor, share * metrics[m].network_total * frac);
        specs.push_back({"country/" + cc + "/" + metrics[m].name,
                         metrics[m].sensitivity, expected});
      }
    }
    const auto results = dep.run_round(specs, [&] {
      pop.advance_to_day(day);
      pop.run_entry_day(sim_time{day * k_seconds_per_day});
      browser.run_day(pop.active_of(workload::client_class::web),
                      sim_time{day * k_seconds_per_day});
      ++day;
    });
    for (const auto& c : results) value[c.name] = static_cast<double>(c.value);
  }

  const auto ranked = [&](const std::string& metric) {
    std::vector<std::pair<std::string, double>> rows;
    for (const auto& cc : countries) {
      rows.emplace_back(cc, value["country/" + cc + "/" + metric] / frac / k_scale);
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    return rows;
  };

  const char* metric_names[] = {"connections", "bytes", "circuits"};
  const char* paper_top[] = {"US RU DE UA FR ... (AE absent)",
                             "US RU DE UA GB FR ... (AE absent)",
                             "US FR RU DE PL AE ... (AE ~6th)"};
  for (int m = 0; m < 3; ++m) {
    repro_table t{std::string{"Fig 4 — top countries by "} + metric_names[m]};
    t.add("paper ordering", paper_top[m], "");
    const auto rows = ranked(metric_names[m]);
    int shown = 0;
    int ae_rank = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].first == "AE") ae_rank = static_cast<int>(i) + 1;
      if (shown < 8) {
        t.add("#" + std::to_string(i + 1) + " " + rows[i].first, "",
              std::string{"bytes"} == metric_names[m]
                  ? format_bytes(rows[i].second)
                  : format_count(rows[i].second));
        ++shown;
      }
    }
    t.add("AE rank", m == 2 ? "~6th (anomaly)" : "not a leader",
          "#" + std::to_string(ae_rank));
    t.print();
  }

  // §5.2 aside: the Tor-Metrics-style estimator ranks countries by
  // directory requests — the paper's discrepancy ("Tor Metrics ranks the
  // UAE second; our direct measurements do not") reproduced mechanistically
  // by the directory-looping AE clients.
  repro_table metrics_table{"§5.2 aside — Tor-Metrics-style per-country user estimates"};
  metrics_table.add("paper observation",
                    "Tor Metrics ranks UAE ~2nd; direct measurement does not",
                    "");
  std::vector<std::pair<std::string, double>> rows;
  for (const auto& cc : countries) {
    // Noise can push small counters negative; the Metrics methodology
    // clamps to zero (a negative request count is meaningless).
    const double requests =
        std::max(0.0, value["country/" + cc + "/dir-requests"]) / frac;
    rows.emplace_back(
        cc, stats::metrics_portal_user_estimate(requests, 1.0) / k_scale);
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (std::size_t i = 0; i < 5 && i < rows.size(); ++i) {
    metrics_table.add("#" + std::to_string(i + 1) + " " + rows[i].first, "",
                      format_count(rows[i].second) + " 'users'");
  }
  metrics_table.print();
  return 0;
}

}  // namespace

int main() { return run(); }
