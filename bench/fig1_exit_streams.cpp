// Figure 1 reproduction: the exit-stream taxonomy over a 24-hour round.
//   (a) total streams vs initial streams          (~2 B total, ~5 % initial)
//   (b) initial streams by address kind           (hostname dominates)
//   (c) initial hostname streams by port          (web ports dominate)
// PrivCount measurement at the 6 measured exit relays (~2 % exit weight),
// inferred network-wide by dividing by the exit fraction (§3.3), then
// rescaled by the simulation's network_scale for paper-scale comparison.
#include "common.h"

#include "src/dp/action_bounds.h"
#include "src/privcount/deployment.h"
#include "src/workload/browsing.h"

namespace {

using namespace tormet;

constexpr double k_scale = 1e-3;

int run() {
  bench::print_header("Fig 1 — exit stream taxonomy (PrivCount at exits)",
                      k_scale);

  core::measurement_study study{bench::default_study_config()};
  tor::network& net = study.network();

  const auto alexa = std::make_shared<const workload::alexa_list>(
      workload::alexa_list::make_synthetic({.size = 100'000, .seed = 3}));
  workload::browsing_params bp;
  bp.seed = 2018;
  // ~6.9 M web clients x ~14.5 visits x ~20 streams ≈ the paper's 2 B
  // streams per day.
  bp.circuits_per_web_client = 14.5;
  workload::browsing_driver browser{net, *alexa, bp};

  std::vector<tor::client_id> clients;
  const auto n_clients = static_cast<std::size_t>(6.9e6 * k_scale);
  for (std::size_t i = 0; i < n_clients; ++i) {
    tor::client_profile p;
    p.ip = static_cast<std::uint32_t>(i + 1);
    clients.push_back(net.add_client(p));
  }

  net::inproc_net bus;
  privcount::deployment_config cfg = study.privcount_config();
  cfg.measured_relays = study.measured_exits();
  privcount::deployment dep{bus, cfg};
  dep.add_instrument(core::instrument_stream_taxonomy());
  dep.attach(net);

  // Sensitivities: the Table-1 domain bound (20) covers initial streams; a
  // protected user's total streams are bounded by 20 domains x ~20 streams.
  // Bounds scale with network_scale (DESIGN.md §6). Expected values for the
  // near-zero counters are set to the smallest magnitude of *interest*
  // (~0.2 % of initial streams), not to zero: the equal-relative-noise
  // allocator would otherwise spend the whole budget shrinking their noise
  // floor (see ablation_noise_allocation).
  const double d20 = 20.0 * k_scale;
  const double d400 = 400.0 * k_scale;
  const std::vector<privcount::counter_spec> specs{
      {"streams/total", d400, 6e4},
      {"streams/initial", d20, 3e3},
      {"streams/initial/hostname", d20, 3e3},
      {"streams/initial/ipv4", d20, 500},
      {"streams/initial/ipv6", d20, 500},
      {"streams/initial/hostname/web", d20, 3e3},
      {"streams/initial/hostname/other", d20, 500},
  };

  const auto results = dep.run_round(specs, [&] {
    browser.run_day(clients, sim_time{0});
  });

  std::map<std::string, privcount::counter_result> r;
  for (const auto& c : results) r[c.name] = c;

  const double exit_frac =
      study.fraction(tor::position::exit, study.measured_exits());
  const auto paper_scale = [&](const std::string& name) {
    const auto& c = r.at(name);
    return bench::to_paper_scale(
        stats::normal_estimate(static_cast<double>(c.value), c.sigma),
        exit_frac, k_scale);
  };

  const stats::estimate total = paper_scale("streams/total");
  const stats::estimate initial = paper_scale("streams/initial");
  const stats::estimate hostname = paper_scale("streams/initial/hostname");
  const stats::estimate ipv4 = paper_scale("streams/initial/ipv4");
  const stats::estimate ipv6 = paper_scale("streams/initial/ipv6");
  const stats::estimate web = paper_scale("streams/initial/hostname/web");
  const stats::estimate other = paper_scale("streams/initial/hostname/other");

  const tor::ground_truth& t = net.truth();
  repro_table fig1a{"Fig 1a — streams per 24 h (network-wide)"};
  fig1a.add("total streams", "~2 billion", bench::fmt_count_est(total),
            bench::fmt_ci_counts(total),
            "sim truth " + format_count(static_cast<double>(t.exit_streams_total) / k_scale));
  fig1a.add("initial streams", "~5 % of total",
            format_percent(initial.value / total.value),
            bench::fmt_ci_percent(stats::ratio_estimate(initial, total)),
            "sim truth " + format_percent(static_cast<double>(t.exit_streams_initial) /
                                          static_cast<double>(t.exit_streams_total)));
  fig1a.print();

  repro_table fig1b{"Fig 1b — initial streams by address kind"};
  fig1b.add("hostname", "~100 %", format_percent(hostname.value / initial.value),
            bench::fmt_ci_percent(stats::ratio_estimate(hostname, initial)));
  fig1b.add("IPv4", "~0 (within noise)", format_count(ipv4.value),
            bench::fmt_ci_counts(ipv4));
  fig1b.add("IPv6", "~0 (within noise)", format_count(ipv6.value),
            bench::fmt_ci_counts(ipv6));
  fig1b.print();

  repro_table fig1c{"Fig 1c — initial hostname streams by port"};
  fig1c.add("web port (80/443)", "~100 %",
            format_percent(web.value / hostname.value),
            bench::fmt_ci_percent(stats::ratio_estimate(web, hostname)));
  fig1c.add("other port", "~0 (within noise)", format_count(other.value),
            bench::fmt_ci_counts(other));
  fig1c.print();
  return 0;
}

}  // namespace

int main() { return run(); }
