// Many-publisher relay-agent ingest throughput: the PR-10 fleet path. A
// generated zipf stream is routed onto a simulated fleet of embedded relay
// stats agents (per-circuit shard assignment, the relay_plane's routing),
// each agent publishes its window as a versioned CRC-framed .pub file, and
// the aggregation service scans the directory, merge-sorts the fleet's
// windows back into DC arrival order, and delivers one contiguous span to
// a PrivCount DC's sharded ingest plane. Phases measured:
//   publish   — route + per-relay window encode + atomic .pub writes
//   aggregate — directory scan + decode + merge + dc.ingest()
//   cycle     — a full window cycle through relay_plane::close_window
// The paper's relay-side constraint is an always-on agent at ~23k
// events/s network share; a 200-publisher aggregation epoch has to clear
// the same bar comfortably on the DC side.
//
// Usage: relay_ingest [events] [--relays N] [--json]
#include "common.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/cli/deployment_plan.h"
#include "src/core/instruments.h"
#include "src/crypto/secure_rng.h"
#include "src/net/inproc.h"
#include "src/privcount/data_collector.h"
#include "src/privcount/messages.h"
#include "src/relay/aggregator.h"
#include "src/relay/relay_plane.h"
#include "src/relay/stats_agent.h"
#include "src/tor/event_shard.h"
#include "src/workload/trace_gen.h"

namespace {

using namespace tormet;
using clock_type = std::chrono::steady_clock;

double secs_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Sink that only counts: isolates the publish+merge cost from instrument
/// evaluation.
class counting_sink final : public core::event_sink {
 public:
  void observe(const tor::event&) override { ++count_; }
  void ingest(const tor::event*, std::size_t n) override { count_ += n; }
  void set_shards(std::size_t) override {}
  [[nodiscard]] std::size_t shards() const noexcept override { return 1; }
  void set_thread_pool(std::shared_ptr<util::thread_pool>) override {}
  [[nodiscard]] std::uint64_t events_observed() const noexcept override {
    return count_;
  }

 private:
  std::uint64_t count_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t target_events = 200'000;
  std::uint64_t relays = 200;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--relays") == 0 && i + 1 < argc) {
      relays = std::strtoull(argv[++i], nullptr, 10);
    } else {
      target_events = std::strtoull(argv[i], nullptr, 10);
    }
  }

  workload::trace_gen_params params;
  params.model = "zipf";
  params.dcs = 1;
  params.events = target_events;
  params.seed = 8;
  const std::vector<tor::event> events =
      workload::generate_trace_events(params).front();
  const std::size_t n = events.size();
  const std::uint64_t seed = relay::sampling_seed_of(8);

  char tmpl[] = "/tmp/tormet-relay-bench-XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "relay_ingest: mkdtemp failed\n");
    return 1;
  }

  // -- publish phase: route + encode + atomic per-relay window writes -------
  std::vector<relay::stats_agent> agents;
  agents.reserve(relays);
  for (std::uint64_t r = 0; r < relays; ++r) {
    agents.emplace_back(r, seed, 1.0);
  }
  std::size_t published_windows = 0;
  std::uint64_t published_events = 0;
  double publish_s = 0.0;
  double aggregate_s = 0.0;
  counting_sink merge_sink;
  relay::aggregator agg{dir, relays};
  std::uint64_t epoch = 0;
  const auto wall0 = clock_type::now();
  do {
    const auto t0 = clock_type::now();
    std::uint64_t seq = 0;
    for (const tor::event& ev : events) {
      const std::size_t r = tor::shard_of(tor::shard_key_of(ev), relays);
      agents[r].offer(seq++, ev);
    }
    for (auto& agent : agents) agent.publish(epoch, dir);
    publish_s += secs_since(t0);
    published_windows += relays;
    published_events += n;

    // -- aggregate phase: scan + decode + merge-sort + span ingest ----------
    const auto t1 = clock_type::now();
    const std::size_t ingested = agg.collect_epoch(epoch, merge_sink);
    aggregate_s += secs_since(t1);
    if (ingested != n) {
      std::fprintf(stderr, "relay_ingest: merge lost events: %zu of %zu\n",
                   ingested, n);
      return 1;
    }
    ++epoch;
  } while (secs_since(wall0) < 0.6);

  // -- full cycle through the DC-embedded plane + sharded PrivCount ingest --
  net::inproc_net bus;
  bus.register_node(0, [](const net::message&) {});
  crypto::deterministic_rng rng{1};
  privcount::data_collector dc{1, 0, bus, rng};
  dc.add_instrument(core::make_batch_instrument("stream_taxonomy"));
  dc.set_shards(4);
  {
    privcount::configure_msg cfg;
    cfg.round_id = 1;
    for (const auto& spec : core::default_specs_for("stream_taxonomy")) {
      cfg.counter_names.push_back(spec.name);
      cfg.sigmas.push_back(0.0);
    }
    dc.handle_message(privcount::encode_configure(0, 1, cfg));
    dc.handle_message(privcount::encode_simple(
        0, 1, privcount::msg_type::start_collection, 1));
  }
  relay::relay_plane plane{relays, 1.0, seed, std::string{dir} + "/plane"};
  std::uint64_t cycle_events = 0;
  std::uint64_t window = 0;
  const auto t2 = clock_type::now();
  do {
    plane.route(events.data(), events.size());
    cycle_events += plane.close_window(window++, dc);
  } while (secs_since(t2) < 0.6);
  const double cycle_s = secs_since(t2);
  if (dc.events_observed() != cycle_events) {
    std::fprintf(stderr, "relay_ingest: plane/DC count mismatch\n");
    return 1;
  }

  std::filesystem::remove_all(dir);

  const double publish_eps = static_cast<double>(published_events) / publish_s;
  const double aggregate_eps =
      static_cast<double>(published_events) / aggregate_s;
  const double cycle_eps = static_cast<double>(cycle_events) / cycle_s;
  if (json) {
    std::printf(
        "{\"bench\":\"relay_ingest\",\"relays\":%llu,\"events\":%zu,"
        "\"windows\":%zu,\"publish_eps\":%.0f,\"aggregate_eps\":%.0f,"
        "\"cycle_eps\":%.0f}\n",
        static_cast<unsigned long long>(relays), n, published_windows,
        publish_eps, aggregate_eps, cycle_eps);
    return 0;
  }
  repro_table table{"Relay-agent fleet ingest (" + std::to_string(relays) +
                    " publishers, " + std::to_string(n) +
                    " events per window)"};
  table.add("publish (route+encode+write)", "", format_count(publish_eps) + " ev/s",
            "");
  table.add("aggregate (scan+merge+ingest)", "",
            format_count(aggregate_eps) + " ev/s", "");
  table.add("full window cycle -> sharded DC", "",
            format_count(cycle_eps) + " ev/s", "");
  table.print();
  return 0;
}
