// Ablation: PSC oblivious-table size vs estimator quality. Fewer bins mean
// more hash collisions, which the occupancy inversion must correct at the
// cost of variance; the exact-DP confidence interval widens accordingly.
// Sweeps table sizes at a fixed true cardinality with a Monte-Carlo
// occupancy simulation (the estimator pipeline is identical to a protocol
// run; the crypto layer is exercised separately in ablation_group_backend).
#include "common.h"

#include <cmath>

#include "src/psc/estimator.h"
#include "src/stats/psc_ci.h"
#include "src/util/rng.h"

namespace {

using namespace tormet;

int run() {
  std::printf("Ablation — PSC hash-table size vs accuracy (true n = 10,000, "
              "noise bits = 200)\n\n");

  constexpr std::uint64_t true_n = 10'000;
  constexpr std::uint64_t noise_bits = 200;
  constexpr int trials = 30;
  rng r{2024};

  repro_table table{"bins sweep"};
  for (const std::uint64_t bins :
       {4096ULL, 8192ULL, 16384ULL, 65536ULL, 262144ULL}) {
    double bias_sum = 0.0;
    double ci_width_sum = 0.0;
    int covered = 0;
    for (int t = 0; t < trials; ++t) {
      std::set<std::uint64_t> occupied;
      for (std::uint64_t i = 0; i < true_n; ++i) occupied.insert(r.below(bins));
      std::uint64_t raw = occupied.size();
      for (std::uint64_t i = 0; i < noise_bits; ++i) raw += r.bernoulli(0.5);

      const psc::cardinality_estimate est =
          psc::estimate_cardinality(raw, bins, noise_bits);
      bias_sum += est.cardinality - static_cast<double>(true_n);

      stats::psc_ci_params ci;
      ci.bins = bins;
      ci.total_noise_bits = noise_bits;
      const stats::estimate e = stats::psc_confidence_interval(raw, ci);
      ci_width_sum += e.ci.width();
      if (e.ci.contains(static_cast<double>(true_n))) ++covered;
    }
    const double load = static_cast<double>(true_n) / static_cast<double>(bins);
    table.add("bins=" + std::to_string(bins),
              "load " + format_sig(load, 2),
              "bias " + format_sig(bias_sum / trials, 3),
              "CI width " + format_sig(ci_width_sum / trials, 4),
              "coverage " + std::to_string(covered) + "/" + std::to_string(trials));
  }
  table.print();

  std::printf("Reading: estimates stay unbiased across loads (the occupancy\n"
              "inversion works), but CI width grows sharply once load factor\n"
              "approaches 1 — motivating the 2^16-bin tables the Table 2/5/6\n"
              "benches use.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
