// google-benchmark microbenchmarks for the crypto substrate: hashing,
// deterministic DRBG, group operations and ElGamal for both backends,
// additive blinding, and the wire codec.
//
// `micro_crypto --speedup-json [batch] [workers]` skips google-benchmark and
// instead times the serial per-element ElGamal path against the batched +
// threaded engine path on the toy backend, emitting one JSON object so the
// speedup is tracked in the bench trajectory.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "bench/speedup_common.h"
#include "src/crypto/batch_engine.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/hmac.h"
#include "src/crypto/secret_sharing.h"
#include "src/crypto/secure_rng.h"
#include "src/crypto/sha256.h"
#include "src/net/wire.h"
#include "src/util/thread_pool.h"

namespace {

using namespace tormet;

void bm_sha256(benchmark::State& state) {
  const byte_buffer data(static_cast<std::size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_sha256)->Arg(64)->Arg(1024)->Arg(16384);

void bm_hmac(benchmark::State& state) {
  const byte_buffer key(32, 0x11);
  const byte_buffer data(256, 0x22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
}
BENCHMARK(bm_hmac);

void bm_drbg_fill(benchmark::State& state) {
  crypto::deterministic_rng rng{1};
  byte_buffer out(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    rng.fill(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_drbg_fill)->Arg(32)->Arg(4096);

crypto::group_backend backend_of(const benchmark::State& state) {
  return state.range(0) == 0 ? crypto::group_backend::toy
                             : crypto::group_backend::p256;
}

void bm_elgamal_encrypt(benchmark::State& state) {
  const auto group = crypto::make_group(backend_of(state));
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng rng{2};
  const auto kp = scheme.generate_keypair(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.encrypt_one(kp.pub, rng));
  }
}
BENCHMARK(bm_elgamal_encrypt)->Arg(0)->Arg(1);

void bm_elgamal_rerandomize(benchmark::State& state) {
  const auto group = crypto::make_group(backend_of(state));
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng rng{3};
  const auto kp = scheme.generate_keypair(rng);
  const auto ct = scheme.encrypt_one(kp.pub, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.rerandomize(kp.pub, ct, rng));
  }
}
BENCHMARK(bm_elgamal_rerandomize)->Arg(0)->Arg(1);

void bm_elgamal_strip_share(benchmark::State& state) {
  const auto group = crypto::make_group(backend_of(state));
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng rng{4};
  const auto kp = scheme.generate_keypair(rng);
  const auto ct = scheme.encrypt_one(kp.pub, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.strip_share(ct, kp.secret));
  }
}
BENCHMARK(bm_elgamal_strip_share)->Arg(0)->Arg(1);

void bm_elgamal_rerandomize_batch(benchmark::State& state) {
  const auto group = crypto::make_group(backend_of(state));
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng rng{3};
  const auto kp = scheme.generate_keypair(rng);
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const auto cts = scheme.encrypt_zero_batch(kp.pub, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.rerandomize_batch(kp.pub, cts, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(bm_elgamal_rerandomize_batch)
    ->Args({0, 1024})->Args({0, 8192})->Args({1, 256});

void bm_elgamal_strip_share_batch(benchmark::State& state) {
  const auto group = crypto::make_group(backend_of(state));
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng rng{4};
  const auto kp = scheme.generate_keypair(rng);
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const auto cts = scheme.encrypt_zero_batch(kp.pub, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.strip_share_batch(cts, kp.secret));
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(bm_elgamal_strip_share_batch)
    ->Args({0, 1024})->Args({0, 8192})->Args({1, 256});

void bm_additive_shares(benchmark::State& state) {
  crypto::deterministic_rng rng{5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::additive_shares(123456789, 3, rng));
  }
}
BENCHMARK(bm_additive_shares);

void bm_wire_roundtrip(benchmark::State& state) {
  for (auto _ : state) {
    net::wire_writer w;
    for (int i = 0; i < 16; ++i) {
      w.write_u64(static_cast<std::uint64_t>(i) * 0x9e3779b9);
      w.write_varint(static_cast<std::uint64_t>(i) << 20);
    }
    w.write_string("counter/name/with/path");
    const byte_buffer buf = w.take();
    net::wire_reader r{buf};
    std::uint64_t acc = 0;
    for (int i = 0; i < 16; ++i) {
      acc += r.read_u64();
      acc += r.read_varint();
    }
    benchmark::DoNotOptimize(acc + r.read_string().size());
  }
}
BENCHMARK(bm_wire_roundtrip);

// ---------------------------------------------------------------------------
// --speedup-json: serial vs batched+threaded throughput on the PSC hot path
// (rerandomize + strip-share, toy backend), as one JSON line for the bench
// trajectory.
// ---------------------------------------------------------------------------

int run_speedup_json(std::size_t batch, std::size_t workers) {
  const auto group = crypto::make_toy_group();
  const crypto::elgamal scheme{group};
  const auto pool = std::make_shared<util::thread_pool>(workers);
  const crypto::batch_engine engine{group, pool};
  crypto::deterministic_rng rng{2024};
  const auto kp = scheme.generate_keypair(rng);
  const auto input = scheme.encrypt_zero_batch(kp.pub, batch, rng);

  // Every repetition processes the whole batch.
  const auto measure = [&](const auto& fn) {
    return bench::measure_items_per_sec(batch, fn);
  };

  const double serial_rerand = measure([&] {
    std::vector<crypto::elgamal_ciphertext> out;
    out.reserve(input.size());
    for (const auto& ct : input) {
      out.push_back(scheme.rerandomize(kp.pub, ct, rng));
    }
    benchmark::DoNotOptimize(out);
  });
  const double serial_strip = measure([&] {
    std::vector<crypto::elgamal_ciphertext> out;
    out.reserve(input.size());
    for (const auto& ct : input) {
      out.push_back(scheme.strip_share(ct, kp.secret));
    }
    benchmark::DoNotOptimize(out);
  });
  const double serial_pipeline = measure([&] {
    std::vector<crypto::elgamal_ciphertext> out;
    out.reserve(input.size());
    for (const auto& ct : input) {
      out.push_back(scheme.strip_share(scheme.rerandomize(kp.pub, ct, rng),
                                       kp.secret));
    }
    benchmark::DoNotOptimize(out);
  });

  const crypto::sha256_digest seed = crypto::batch_engine::derive_seed(rng);
  const double batched_rerand = measure([&] {
    benchmark::DoNotOptimize(engine.rerandomize_batch(kp.pub, input, seed));
  });
  const double batched_strip = measure([&] {
    benchmark::DoNotOptimize(engine.strip_share_batch(input, kp.secret));
  });
  const double batched_pipeline = measure([&] {
    benchmark::DoNotOptimize(engine.strip_share_batch(
        engine.rerandomize_batch(kp.pub, input, seed), kp.secret));
  });

  std::printf(
      "{\"bench\":\"micro_crypto.batch_speedup\",\"backend\":\"%s\","
      "\"batch\":%zu,\"workers\":%zu,\"shard_size\":%zu,"
      "\"serial_ops_per_sec\":{\"rerandomize\":%.0f,\"strip_share\":%.0f,"
      "\"rerandomize_strip\":%.0f},"
      "\"batched_ops_per_sec\":{\"rerandomize\":%.0f,\"strip_share\":%.0f,"
      "\"rerandomize_strip\":%.0f},"
      "\"speedup\":{\"rerandomize\":%.2f,\"strip_share\":%.2f,"
      "\"rerandomize_strip\":%.2f}}\n",
      group->name().c_str(), batch, workers, engine.shard_size(),
      serial_rerand, serial_strip, serial_pipeline, batched_rerand,
      batched_strip, batched_pipeline, batched_rerand / serial_rerand,
      batched_strip / serial_strip, batched_pipeline / serial_pipeline);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--speedup-json") == 0) {
      return run_speedup_json(bench::positive_arg_or(argc, argv, i + 1, 8192),
                              bench::positive_arg_or(argc, argv, i + 2, 4));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
