// google-benchmark microbenchmarks for the crypto substrate: hashing,
// deterministic DRBG, group operations and ElGamal for both backends,
// additive blinding, and the wire codec.
#include <benchmark/benchmark.h>

#include "src/crypto/elgamal.h"
#include "src/crypto/hmac.h"
#include "src/crypto/secret_sharing.h"
#include "src/crypto/secure_rng.h"
#include "src/crypto/sha256.h"
#include "src/net/wire.h"

namespace {

using namespace tormet;

void bm_sha256(benchmark::State& state) {
  const byte_buffer data(static_cast<std::size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_sha256)->Arg(64)->Arg(1024)->Arg(16384);

void bm_hmac(benchmark::State& state) {
  const byte_buffer key(32, 0x11);
  const byte_buffer data(256, 0x22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
}
BENCHMARK(bm_hmac);

void bm_drbg_fill(benchmark::State& state) {
  crypto::deterministic_rng rng{1};
  byte_buffer out(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    rng.fill(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_drbg_fill)->Arg(32)->Arg(4096);

crypto::group_backend backend_of(const benchmark::State& state) {
  return state.range(0) == 0 ? crypto::group_backend::toy
                             : crypto::group_backend::p256;
}

void bm_elgamal_encrypt(benchmark::State& state) {
  const auto group = crypto::make_group(backend_of(state));
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng rng{2};
  const auto kp = scheme.generate_keypair(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.encrypt_one(kp.pub, rng));
  }
}
BENCHMARK(bm_elgamal_encrypt)->Arg(0)->Arg(1);

void bm_elgamal_rerandomize(benchmark::State& state) {
  const auto group = crypto::make_group(backend_of(state));
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng rng{3};
  const auto kp = scheme.generate_keypair(rng);
  const auto ct = scheme.encrypt_one(kp.pub, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.rerandomize(kp.pub, ct, rng));
  }
}
BENCHMARK(bm_elgamal_rerandomize)->Arg(0)->Arg(1);

void bm_elgamal_strip_share(benchmark::State& state) {
  const auto group = crypto::make_group(backend_of(state));
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng rng{4};
  const auto kp = scheme.generate_keypair(rng);
  const auto ct = scheme.encrypt_one(kp.pub, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.strip_share(ct, kp.secret));
  }
}
BENCHMARK(bm_elgamal_strip_share)->Arg(0)->Arg(1);

void bm_additive_shares(benchmark::State& state) {
  crypto::deterministic_rng rng{5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::additive_shares(123456789, 3, rng));
  }
}
BENCHMARK(bm_additive_shares);

void bm_wire_roundtrip(benchmark::State& state) {
  for (auto _ : state) {
    net::wire_writer w;
    for (int i = 0; i < 16; ++i) {
      w.write_u64(static_cast<std::uint64_t>(i) * 0x9e3779b9);
      w.write_varint(static_cast<std::uint64_t>(i) << 20);
    }
    w.write_string("counter/name/with/path");
    const byte_buffer buf = w.take();
    net::wire_reader r{buf};
    std::uint64_t acc = 0;
    for (int i = 0; i < 16; ++i) {
      acc += r.read_u64();
      acc += r.read_varint();
    }
    benchmark::DoNotOptimize(acc + r.read_string().size());
  }
}
BENCHMARK(bm_wire_roundtrip);

}  // namespace

BENCHMARK_MAIN();
