// Zero-allocation guarantees for the batch crypto hot path. The test binary
// overrides global operator new/delete with a counting shim, then asserts
// that the toy-backend batch paths (encrypt, rerandomize, strip, wire
// decode, tally decode) perform a number of allocations that does NOT grow
// with the batch size: every per-element structure lives in a per-batch
// arena or in the scalar's inline small buffer. The toy backend routes all
// of its allocation through operator new (no OpenSSL mallocs), which is
// why the contract is asserted there; p256 shares the exact same arena
// code paths on our side of the OpenSSL boundary.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "src/crypto/batch_engine.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/group.h"
#include "src/crypto/secure_rng.h"

namespace {

std::atomic<std::size_t> g_new_calls{0};

[[nodiscard]] void* counted_alloc(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tormet::crypto {
namespace {

constexpr std::size_t k_small = 512;
constexpr std::size_t k_large = 4096;

/// Allocation count of one call to `fn`, on this (single) thread.
template <typename Fn>
[[nodiscard]] std::size_t allocations_of(const Fn& fn) {
  const std::size_t before = g_new_calls.load(std::memory_order_relaxed);
  fn();
  return g_new_calls.load(std::memory_order_relaxed) - before;
}

class AllocationTest : public ::testing::Test {
 protected:
  AllocationTest()
      : group_{make_toy_group()},
        // One shard per batch (shard_size == batch size), no pool: counts on
        // the calling thread cover the entire batch, and per-shard overhead
        // (one stream_rng, a handful of vectors) is identical for both
        // sizes, so equal counts mean zero allocations per element.
        engine_small_{group_, nullptr, k_small},
        engine_large_{group_, nullptr, k_large},
        rng_{99} {
    kp_ = engine_small_.scheme().generate_keypair(rng_);
    seed_ = batch_engine::derive_seed(rng_);
    // Warm up every path once: static comb tables, cached per-base combs,
    // thread_local scratch. After this, counts are deterministic.
    input_small_ = engine_small_.encrypt_zero_batch(kp_.pub, k_small, seed_);
    input_large_ = engine_large_.encrypt_zero_batch(kp_.pub, k_large, seed_);
    wire_small_ = engine_small_.encode_batch(input_small_);
    wire_large_ = engine_large_.encode_batch(input_large_);
    (void)engine_small_.rerandomize_batch(kp_.pub, input_small_, seed_);
    (void)engine_small_.strip_share_batch(input_small_, kp_.secret);
    (void)engine_small_.tally_decode_count(wire_small_);
  }

  std::shared_ptr<const group> group_;
  batch_engine engine_small_;
  batch_engine engine_large_;
  deterministic_rng rng_;
  elgamal_keypair kp_;
  sha256_digest seed_{};
  std::vector<elgamal_ciphertext> input_small_, input_large_;
  std::vector<byte_buffer> wire_small_, wire_large_;
};

TEST_F(AllocationTest, ScalarsAreInlineOnEveryBackend) {
  deterministic_rng rng{7};
  for (const auto backend : {group_backend::toy, group_backend::p256}) {
    const auto g = make_group(backend);
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(g->random_scalar(rng).is_inline());
    }
    EXPECT_TRUE(g->scalar_from_u64(123456789).is_inline());
  }
}

TEST_F(AllocationTest, RandomScalarDrawsAreAllocationFree) {
  deterministic_rng rng{8};
  const std::size_t allocs = allocations_of([&] {
    for (int i = 0; i < 256; ++i) {
      const scalar k = group_->random_scalar(rng);
      ASSERT_TRUE(k.valid());
    }
  });
  EXPECT_EQ(allocs, 0u);
}

TEST_F(AllocationTest, EncryptBatchAllocationsDoNotScaleWithBatchSize) {
  const std::size_t small = allocations_of([&] {
    (void)engine_small_.encrypt_zero_batch(kp_.pub, k_small, seed_);
  });
  const std::size_t large = allocations_of([&] {
    (void)engine_large_.encrypt_zero_batch(kp_.pub, k_large, seed_);
  });
  EXPECT_EQ(large, small) << "per-element allocations on the encrypt path";
  // Sanity: the serial per-element loop allocates at least once per element
  // (each ciphertext's two handles), so the counter does detect scaling.
  deterministic_rng rng{11};
  const std::size_t serial = allocations_of([&] {
    for (std::size_t i = 0; i < k_small; ++i) {
      (void)engine_small_.scheme().encrypt_zero(kp_.pub, rng);
    }
  });
  EXPECT_GE(serial, k_small);
}

TEST_F(AllocationTest, RerandomizeBatchAllocationsDoNotScaleWithBatchSize) {
  const std::size_t small = allocations_of([&] {
    (void)engine_small_.rerandomize_batch(kp_.pub, input_small_, seed_);
  });
  const std::size_t large = allocations_of([&] {
    (void)engine_large_.rerandomize_batch(kp_.pub, input_large_, seed_);
  });
  EXPECT_EQ(large, small) << "per-element allocations on the rerandomize path";
}

TEST_F(AllocationTest, StripShareBatchAllocationsDoNotScaleWithBatchSize) {
  const std::size_t small = allocations_of([&] {
    (void)engine_small_.strip_share_batch(input_small_, kp_.secret);
  });
  const std::size_t large = allocations_of([&] {
    (void)engine_large_.strip_share_batch(input_large_, kp_.secret);
  });
  EXPECT_EQ(large, small) << "per-element allocations on the strip path";
}

TEST_F(AllocationTest, TallyDecodeCountIsAllocationFreePerElement) {
  const std::size_t small = allocations_of([&] {
    (void)engine_small_.tally_decode_count(wire_small_);
  });
  const std::size_t large = allocations_of([&] {
    (void)engine_large_.tally_decode_count(wire_large_);
  });
  EXPECT_EQ(large, small) << "per-element allocations on the tally decode path";
}

TEST_F(AllocationTest, WireDecodeBatchAllocatesOnlyTheOutputVectorAndArena) {
  // decode_batch must materialize n handles, but through the arena: the
  // allocation count may not scale with n beyond the flat per-batch set
  // (component vectors + one arena per component + the output vector).
  const std::size_t small = allocations_of([&] {
    (void)engine_small_.decode_batch(wire_small_);
  });
  const std::size_t large = allocations_of([&] {
    (void)engine_large_.decode_batch(wire_large_);
  });
  EXPECT_EQ(large, small) << "per-element allocations on the wire decode path";
}

}  // namespace
}  // namespace tormet::crypto
