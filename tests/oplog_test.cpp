// Write-ahead op-log + checkpoint store tests: append/replay round-trips,
// checkpoint compaction (log truncation), and strict rejection of every
// kind of on-disk damage — truncation, CRC mismatch, oversized lengths,
// bad magic — as a typed op_log_error, never a crash or a silent
// misrecovery.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "src/util/bytes.h"
#include "src/util/op_log.h"

namespace tormet::util {
namespace {

[[nodiscard]] byte_buffer bytes_of(const std::string& s) {
  return byte_buffer{s.begin(), s.end()};
}

class oplog_fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tormet-oplog-test-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string dir() const { return dir_.string(); }
  [[nodiscard]] std::filesystem::path log_path() const {
    return dir_ / "oplog";
  }
  [[nodiscard]] std::filesystem::path checkpoint_path() const {
    return dir_ / "checkpoint";
  }

  [[nodiscard]] std::string read_raw(const std::filesystem::path& p) const {
    std::ifstream in{p, std::ios::binary};
    return {std::istreambuf_iterator<char>{in},
            std::istreambuf_iterator<char>{}};
  }
  void write_raw(const std::filesystem::path& p, const std::string& s) const {
    std::ofstream out{p, std::ios::binary | std::ios::trunc};
    out << s;
  }

 private:
  std::filesystem::path dir_;
};

TEST_F(oplog_fixture, FreshStoreIsEmptyAndCreatesTheDirectory) {
  durable_store store{dir()};
  EXPECT_FALSE(store.recovered().has_checkpoint);
  EXPECT_TRUE(store.recovered().records.empty());
  EXPECT_EQ(store.log_records(), 0u);
  EXPECT_TRUE(std::filesystem::exists(log_path()));
}

TEST_F(oplog_fixture, AppendedRecordsReplayInOrderAcrossReopen) {
  {
    durable_store store{dir()};
    store.append(bytes_of("round 1"));
    store.append(bytes_of("round 2"));
    store.append(bytes_of(std::string(100'000, 'x')));  // multi-chunk-ish
  }
  durable_store back{dir()};
  ASSERT_EQ(back.recovered().records.size(), 3u);
  EXPECT_EQ(back.recovered().records[0], bytes_of("round 1"));
  EXPECT_EQ(back.recovered().records[1], bytes_of("round 2"));
  EXPECT_EQ(back.recovered().records[2].size(), 100'000u);
  EXPECT_FALSE(back.recovered().has_checkpoint);
  // Replayed records count toward the compaction trigger.
  EXPECT_EQ(back.log_records(), 3u);
}

TEST_F(oplog_fixture, CheckpointTruncatesTheLogAndReplaysFirst) {
  {
    durable_store store{dir()};
    store.append(bytes_of("a"));
    store.append(bytes_of("b"));
    store.write_checkpoint(bytes_of("state-after-b"));
    EXPECT_EQ(store.log_records(), 0u);  // log truncated to its header
    store.append(bytes_of("c"));
  }
  durable_store back{dir()};
  EXPECT_TRUE(back.recovered().has_checkpoint);
  EXPECT_EQ(back.recovered().checkpoint, bytes_of("state-after-b"));
  ASSERT_EQ(back.recovered().records.size(), 1u);
  EXPECT_EQ(back.recovered().records[0], bytes_of("c"));
}

TEST_F(oplog_fixture, CheckpointReplacementIsAtomicAcrossRewrites) {
  durable_store store{dir()};
  for (int i = 0; i < 5; ++i) {
    store.append(bytes_of("r" + std::to_string(i)));
    store.write_checkpoint(bytes_of("ckpt" + std::to_string(i)));
  }
  durable_store back{dir()};
  EXPECT_EQ(back.recovered().checkpoint, bytes_of("ckpt4"));
  EXPECT_TRUE(back.recovered().records.empty());
  // No stray temp file left behind.
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir())) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 2u);  // oplog + checkpoint
}

TEST_F(oplog_fixture, EmptyRecordsRoundTrip) {
  {
    durable_store store{dir()};
    store.append(byte_view{});
    store.append(bytes_of("x"));
  }
  durable_store back{dir()};
  ASSERT_EQ(back.recovered().records.size(), 2u);
  EXPECT_TRUE(back.recovered().records[0].empty());
}

TEST_F(oplog_fixture, EveryLogTruncationFailsLoudly) {
  {
    durable_store store{dir()};
    store.append(bytes_of("round 1"));
    store.append(bytes_of("round 2"));
  }
  const std::string full = read_raw(log_path());
  // A cut anywhere strictly inside a record frame must throw; a cut at a
  // record boundary (or inside the magic) either throws or recovers a
  // prefix — never crashes, never fabricates data.
  for (std::size_t len = 0; len < full.size(); ++len) {
    write_raw(log_path(), full.substr(0, len));
    try {
      durable_store store{dir()};
      for (const auto& rec : store.recovered().records) {
        EXPECT_TRUE(rec == bytes_of("round 1") || rec == bytes_of("round 2"));
      }
    } catch (const op_log_error&) {
    }
  }
}

TEST_F(oplog_fixture, CorruptedLogBytesFailLoudly) {
  {
    durable_store store{dir()};
    store.append(bytes_of("important state"));
  }
  const std::string full = read_raw(log_path());
  // Flip every byte (one at a time): header flips break the magic, frame
  // flips break length/CRC, payload flips break the CRC. All must throw.
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    std::string bad = full;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    write_raw(log_path(), bad);
    EXPECT_THROW(durable_store{dir()}, op_log_error) << "byte " << pos;
  }
}

TEST_F(oplog_fixture, CorruptedCheckpointFailsLoudly) {
  {
    durable_store store{dir()};
    store.write_checkpoint(bytes_of("snapshot"));
  }
  const std::string full = read_raw(checkpoint_path());
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    std::string bad = full;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    write_raw(checkpoint_path(), bad);
    EXPECT_THROW(durable_store{dir()}, op_log_error) << "byte " << pos;
  }
  for (std::size_t len = 0; len < full.size(); ++len) {
    write_raw(checkpoint_path(), full.substr(0, len));
    EXPECT_THROW(durable_store{dir()}, op_log_error) << "prefix " << len;
  }
  // Trailing garbage after the single checkpoint record is also corruption.
  write_raw(checkpoint_path(), full + "extra");
  EXPECT_THROW(durable_store{dir()}, op_log_error);
}

TEST_F(oplog_fixture, OversizedRecordLengthIsRejectedNotAllocated) {
  {
    durable_store store{dir()};
    store.append(bytes_of("x"));
  }
  std::string full = read_raw(log_path());
  // Patch the record length field (first 4 bytes after the magic) to an
  // absurd value: the loader must reject it instead of allocating 4 GiB.
  const std::size_t magic = std::string{"tormet-oplog-v1\n"}.size();
  for (int i = 0; i < 4; ++i) full[magic + i] = static_cast<char>(0xff);
  write_raw(log_path(), full);
  EXPECT_THROW(durable_store{dir()}, op_log_error);
}

TEST_F(oplog_fixture, Crc32MatchesKnownVectors) {
  // IEEE 802.3 check value for "123456789".
  const byte_buffer v = bytes_of("123456789");
  EXPECT_EQ(crc32(v), 0xCBF43926u);
  EXPECT_EQ(crc32(byte_view{}), 0u);
}

}  // namespace
}  // namespace tormet::util
