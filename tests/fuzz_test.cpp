// Robustness ("fuzz-ish") property tests: every decoder must reject
// malformed input by throwing a typed error — never crash, hang, or read
// out of bounds. Exercised over systematic truncations and random
// corruptions of valid messages.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/cli/deployment_plan.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/secure_rng.h"
#include "src/net/wire.h"
#include "src/privcount/counter_slab.h"
#include "src/privcount/messages.h"
#include "src/psc/messages.h"
#include "src/psc/oblivious_set.h"
#include "src/tor/consensus_doc.h"
#include "src/tor/event_shard.h"
#include "src/util/check.h"
#include "src/util/op_log.h"
#include "src/util/rng.h"

namespace tormet::crypto {
/// Test-only backdoor into the private scalar constructor, so the
/// small-buffer/heap storage split can be exercised directly (no backend
/// produces encodings wider than the inline buffer).
struct scalar_test_access {
  [[nodiscard]] static scalar make(byte_view bytes) { return scalar{bytes}; }
};
}  // namespace tormet::crypto

namespace tormet {
namespace {

/// Decodes must either succeed or throw wire_error/precondition_error —
/// anything else (crash, other exception) fails the test.
template <typename Fn>
void expect_graceful(Fn&& decode) {
  try {
    decode();
  } catch (const net::wire_error&) {
  } catch (const precondition_error&) {
  } catch (const std::runtime_error&) {
    // Crypto decoders surface OpenSSL failures as runtime_error.
  }
}

TEST(FuzzTest, PrivcountConfigureTruncations) {
  privcount::configure_msg m;
  m.round_id = 3;
  m.counter_names = {"a/b", "c/d", "e"};
  m.sigmas = {1.0, 2.0, 3.0};
  m.noise_weight = 0.5;
  m.share_keepers = {1, 2, 3};
  const net::message full = privcount::encode_configure(0, 1, m);

  for (std::size_t len = 0; len < full.payload.size(); ++len) {
    net::message cut = full;
    cut.payload.resize(len);
    EXPECT_THROW((void)privcount::decode_configure(cut), net::wire_error)
        << "prefix length " << len;
  }
  // The full message decodes.
  EXPECT_NO_THROW((void)privcount::decode_configure(full));
}

TEST(FuzzTest, PrivcountReportCorruption) {
  privcount::dc_report_msg m;
  m.round_id = 9;
  m.values = {1, 2, 3, ~0ULL};
  const net::message full = privcount::encode_dc_report(4, 0, m);

  rng r{101};
  for (int trial = 0; trial < 500; ++trial) {
    net::message corrupt = full;
    const std::size_t pos = static_cast<std::size_t>(
        r.below(corrupt.payload.size()));
    corrupt.payload[pos] ^= static_cast<std::uint8_t>(1 + r.below(255));
    expect_graceful([&] { (void)privcount::decode_dc_report(corrupt); });
  }
}

TEST(FuzzTest, PscVectorTruncationsAndCorruption) {
  const auto group = crypto::make_toy_group();
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng rng_c{7};
  const auto kp = scheme.generate_keypair(rng_c);

  psc::vector_msg m;
  m.round_id = 2;
  std::vector<crypto::elgamal_ciphertext> cts;
  for (int i = 0; i < 8; ++i) cts.push_back(scheme.encrypt_one(kp.pub, rng_c));
  m.ciphertexts = psc::encode_ciphertexts(scheme, cts);
  const net::message full = psc::encode_vector(1, 2, psc::msg_type::mix_pass, m);

  for (std::size_t len = 0; len < full.payload.size(); len += 3) {
    net::message cut = full;
    cut.payload.resize(len);
    expect_graceful([&] {
      const psc::vector_msg decoded = psc::decode_vector(cut);
      (void)psc::decode_ciphertexts(scheme, decoded.ciphertexts);
    });
  }

  rng r{55};
  for (int trial = 0; trial < 300; ++trial) {
    net::message corrupt = full;
    const std::size_t pos =
        static_cast<std::size_t>(r.below(corrupt.payload.size()));
    corrupt.payload[pos] ^= static_cast<std::uint8_t>(1 + r.below(255));
    expect_graceful([&] {
      const psc::vector_msg decoded = psc::decode_vector(corrupt);
      (void)psc::decode_ciphertexts(scheme, decoded.ciphertexts);
    });
  }
}

TEST(FuzzTest, GroupElementDecodeRejectsGarbage) {
  rng r{77};
  for (const auto backend :
       {crypto::group_backend::toy, crypto::group_backend::p256}) {
    const auto group = crypto::make_group(backend);
    for (int trial = 0; trial < 200; ++trial) {
      const std::size_t len = 1 + r.below(40);
      byte_buffer junk(len);
      for (auto& b : junk) b = static_cast<std::uint8_t>(r.below(256));
      expect_graceful([&] { (void)group->decode(junk); });
      expect_graceful([&] { (void)group->decode_scalar(junk); });
    }
  }
}

TEST(FuzzTest, ConsensusDocCorruption) {
  tor::consensus_params params;
  params.num_relays = 30;
  const std::string good =
      tor::serialize_consensus(tor::make_synthetic_consensus(params));
  EXPECT_NO_THROW((void)tor::parse_consensus(good));

  rng r{88};
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupt = good;
    const std::size_t pos = static_cast<std::size_t>(r.below(corrupt.size()));
    corrupt[pos] = static_cast<char>('!' + r.below(90));
    expect_graceful([&] { (void)tor::parse_consensus(corrupt); });
  }
  // Truncations at line granularity.
  for (std::size_t cut = 0; cut < good.size(); cut += 37) {
    expect_graceful([&] { (void)tor::parse_consensus(good.substr(0, cut)); });
  }
}

TEST(FuzzTest, ScalarEncodingRoundTripsCanonically) {
  // bytes -> scalar -> bytes must be the identity on canonical encodings,
  // for freshly drawn scalars and for re-decoded ones, on both backends.
  rng r{123};
  for (const auto backend :
       {crypto::group_backend::toy, crypto::group_backend::p256}) {
    const auto group = crypto::make_group(backend);
    crypto::deterministic_rng crng{static_cast<std::uint64_t>(7 + r.below(100))};
    for (int trial = 0; trial < 100; ++trial) {
      const crypto::scalar k = group->random_scalar(crng);
      const byte_buffer enc = group->encode_scalar(k);
      const crypto::scalar back = group->decode_scalar(enc);
      EXPECT_EQ(group->encode_scalar(back), enc);
      EXPECT_TRUE(back.is_inline());  // both backends encode in <= 32 bytes
    }
    // u64-derived scalars round-trip too (the tally/count path).
    for (const std::uint64_t v : {0ULL, 1ULL, 0xffffffffULL, 1ULL << 60}) {
      const crypto::scalar k = group->scalar_from_u64(v);
      EXPECT_EQ(group->encode_scalar(group->decode_scalar(group->encode_scalar(k))),
                group->encode_scalar(k));
    }
  }
}

TEST(FuzzTest, ScalarDecodeRejectsInvalidEncodings) {
  rng r{321};
  for (const auto backend :
       {crypto::group_backend::toy, crypto::group_backend::p256}) {
    const auto group = crypto::make_group(backend);
    const std::size_t width = backend == crypto::group_backend::toy ? 8 : 32;
    // Wrong lengths must throw, never truncate or pad.
    for (const std::size_t len : {std::size_t{0}, width - 1, width + 1,
                                  std::size_t{64}}) {
      byte_buffer junk(len, 0x01);
      EXPECT_THROW((void)group->decode_scalar(junk), precondition_error)
          << "length " << len;
    }
    // Values at or above the group order must be rejected: all-0xff is
    // always >= the order for both backends.
    byte_buffer max_bytes(width, 0xff);
    EXPECT_THROW((void)group->decode_scalar(max_bytes), precondition_error);
    // Random out-of-range-or-valid inputs must never crash.
    for (int trial = 0; trial < 200; ++trial) {
      byte_buffer bytes(width);
      for (auto& b : bytes) b = static_cast<std::uint8_t>(r.below(256));
      expect_graceful([&] { (void)group->decode_scalar(bytes); });
    }
  }
}

TEST(FuzzTest, ScalarSmallBufferAndHeapStorageBehaveIdentically) {
  rng r{555};
  // The inline buffer covers every canonical backend width (8 and 32); the
  // heap path exists for hypothetical wider backends. Both must hold the
  // bytes faithfully across copies, moves, and overwrites.
  for (const std::size_t len :
       {std::size_t{1}, std::size_t{8}, std::size_t{32},  // inline
        std::size_t{33}, std::size_t{48}, std::size_t{64}}) {  // heap
    byte_buffer bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(r.below(256));
    const crypto::scalar k = crypto::scalar_test_access::make(bytes);
    ASSERT_TRUE(k.valid());
    EXPECT_EQ(k.is_inline(), len <= 32);
    EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), k.bytes().begin(),
                           k.bytes().end()));

    crypto::scalar copy = k;  // copies view the same canonical bytes
    crypto::scalar moved = std::move(copy);
    EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), moved.bytes().begin(),
                           moved.bytes().end()));

    crypto::scalar overwritten = crypto::scalar_test_access::make(bytes);
    overwritten = crypto::scalar_test_access::make(byte_buffer(5, 0xee));
    EXPECT_EQ(overwritten.bytes().size(), 5u);
    EXPECT_TRUE(overwritten.is_inline());
  }
  EXPECT_FALSE(crypto::scalar{}.valid());
}

/// A representative deployment plan exercising every section the parser
/// knows: schedule, grace, workload, instruments, counters, nodes.
[[nodiscard]] std::string valid_plan_text() {
  cli::deployment_plan plan = cli::make_privcount_plan(
      3, 2, {{"entry/connections", 12.0, 100.0}, {"exit/streams", 20.0, 1e6}});
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    plan.nodes[i].port = static_cast<std::uint16_t>(9100 + i);
  }
  plan.schedule_rounds = 3;
  plan.round_duration_s = k_seconds_per_day;
  plan.round_gap_s = 3600;
  plan.dc_grace_ms = 2000;
  plan.pace = 0.25;
  plan.workload.kind = cli::workload_kind::generate;
  plan.workload.model = "mixed";
  plan.workload.scale = 2e-5;
  plan.workload.gen_days = 3;
  plan.instruments = {"stream_taxonomy", "entry_totals"};
  return cli::serialize_plan(plan);
}

TEST(FuzzTest, PlanParserTruncations) {
  const std::string full = valid_plan_text();
  EXPECT_NO_THROW((void)cli::parse_plan(full));
  // Every byte-prefix must either parse (a truncation can land on a line
  // boundary that still forms a smaller valid plan) or throw the typed plan
  // error — never crash or throw anything else.
  for (std::size_t len = 0; len < full.size(); ++len) {
    try {
      (void)cli::parse_plan(std::string_view{full}.substr(0, len));
    } catch (const precondition_error&) {
    }
  }
}

TEST(FuzzTest, PlanParserRandomCorruption) {
  const std::string full = valid_plan_text();
  rng r{2024};
  for (int trial = 0; trial < 1500; ++trial) {
    std::string corrupt = full;
    // 1-4 random byte edits: substitution, deletion, or insertion.
    const int edits = 1 + static_cast<int>(r.below(4));
    for (int e = 0; e < edits && !corrupt.empty(); ++e) {
      const std::size_t pos = static_cast<std::size_t>(r.below(corrupt.size()));
      switch (r.below(3)) {
        case 0:
          corrupt[pos] = static_cast<char>(' ' + r.below(95));
          break;
        case 1:
          corrupt.erase(pos, 1);
          break;
        default:
          corrupt.insert(pos, 1, static_cast<char>(' ' + r.below(95)));
          break;
      }
    }
    try {
      (void)cli::parse_plan(corrupt);
    } catch (const precondition_error&) {
    }
  }
}

TEST(FuzzTest, PlanParserLineShuffleAndDeletion) {
  const std::string full = valid_plan_text();
  std::vector<std::string> lines;
  std::istringstream in{full};
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  rng r{77};
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::string> mutated = lines;
    // Delete a few random lines and swap a random pair.
    const int deletions = static_cast<int>(r.below(3));
    for (int d = 0; d < deletions && mutated.size() > 1; ++d) {
      mutated.erase(mutated.begin() +
                    static_cast<std::ptrdiff_t>(r.below(mutated.size())));
    }
    if (mutated.size() >= 2) {
      std::swap(mutated[r.below(mutated.size())],
                mutated[r.below(mutated.size())]);
    }
    std::string text;
    for (const auto& l : mutated) text += l + "\n";
    try {
      (void)cli::parse_plan(text);
    } catch (const precondition_error&) {
    }
  }
}

TEST(FuzzTest, PlanParserRejectsGuaranteedInvalidMutations) {
  const std::string full = valid_plan_text();
  // Header corruption is always fatal: the magic must match exactly.
  std::string bad_magic = full;
  bad_magic[0] = 'X';
  EXPECT_THROW((void)cli::parse_plan(bad_magic), precondition_error);
  EXPECT_THROW((void)cli::parse_plan(""), precondition_error);
  EXPECT_THROW((void)cli::parse_plan("\n\n#only comments\n"),
               precondition_error);
  // Unknown keys never silently parse.
  EXPECT_THROW((void)cli::parse_plan(full + "quantum_flux 1\n"),
               precondition_error);
}

/// A valid scenario plan whose `workload scenario ...` argument is
/// replaced by `arg`, so the scenario spec parser can be fuzzed in situ.
[[nodiscard]] std::string scenario_plan_with_arg(const std::string& arg) {
  cli::deployment_plan plan =
      cli::make_privcount_plan(2, 1, {{"entry/connections", 12.0, 100.0}});
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    plan.nodes[i].port = static_cast<std::uint16_t>(9200 + i);
  }
  plan.instruments = {"entry_totals"};
  plan.workload.kind = cli::workload_kind::scenario;
  plan.workload.model = "flash_crowd";
  plan.workload.scale = 0.5;
  plan.workload.events = 500;
  plan.workload.gen_seed = 3;
  plan.workload.gen_days = 2;
  plan.schedule_rounds = 2;
  plan.round_duration_s = k_seconds_per_day;
  const std::string text = cli::serialize_plan(plan);
  const std::string key = "workload scenario ";
  const std::size_t pos = text.find(key);
  EXPECT_NE(pos, std::string::npos);
  const std::size_t eol = text.find('\n', pos);
  return text.substr(0, pos) + key + arg + text.substr(eol);
}

TEST(FuzzTest, ScenarioWorkloadSpecTypedRejections) {
  // The serializer's own spelling parses.
  EXPECT_NO_THROW((void)cli::parse_plan(
      scenario_plan_with_arg("flash_crowd,0.5,500,3,2")));
  // Every malformed spec throws the typed line-numbered plan error:
  // unknown scenario names, wrong field counts, junk numbers, and
  // out-of-range envelope parameters.
  for (const char* bad : {
           "flashcrowd,0.5,500,3,2",        // unknown scenario name
           "mevade_botnet,1,100,1",         // unknown scenario name
           "flash_crowd",                   // missing fields
           "flash_crowd,0.5",               // missing fields
           "flash_crowd,0.5,500",           // missing fields
           "flash_crowd,0.5,500,3,2,9",     // extra field
           "flash_crowd,,500,3,2",          // empty field
           "flash_crowd,0,500,3",           // scale must be > 0
           "flash_crowd,-1,500,3",          // negative scale
           "flash_crowd,1001,500,3",        // scale past the cap
           "flash_crowd,nan,500,3",         // junk scale
           "flash_crowd,0.5,0,3",           // events must be >= 1
           "flash_crowd,0.5,100000001,3",   // events past the cap
           "flash_crowd,0.5,5x0,3",         // junk events
           "flash_crowd,0.5,500,-3",        // negative seed
           "flash_crowd,0.5,500,3,0",       // days must be >= 1
           "flash_crowd,0.5,500,3,367",     // days past a year
           "flash_crowd,0.5,500,3,two",     // junk days
       }) {
    EXPECT_THROW((void)cli::parse_plan(scenario_plan_with_arg(bad)),
                 precondition_error)
        << "accepted malformed scenario spec: " << bad;
  }
}

TEST(FuzzTest, ScenarioWorkloadSpecRandomCorruption) {
  rng r{77};
  const std::string good = "flash_crowd,0.5,500,3,2";
  for (int trial = 0; trial < 800; ++trial) {
    std::string arg = good;
    const int edits = 1 + static_cast<int>(r.below(3));
    for (int e = 0; e < edits; ++e) {
      if (arg.empty()) arg = ",";
      const auto pos = static_cast<std::size_t>(r.below(arg.size()));
      switch (r.below(3)) {
        case 0:
          arg[pos] = static_cast<char>(33 + r.below(94));
          break;
        case 1:
          arg.erase(pos, 1);
          break;
        default:
          arg.insert(pos, 1, static_cast<char>(33 + r.below(94)));
          break;
      }
    }
    try {
      (void)cli::parse_plan(scenario_plan_with_arg(arg));
    } catch (const precondition_error&) {
    }
  }
}

/// Scoped scratch dir holding one durable store's on-disk state.
class oplog_dir {
 public:
  oplog_dir() {
    static int counter = 0;
    path_ = std::filesystem::temp_directory_path() /
            ("tormet-oplog-fuzz-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter++));
    std::filesystem::remove_all(path_);
  }
  ~oplog_dir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] std::string dir() const { return path_.string(); }
  [[nodiscard]] std::string file(const char* name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

[[nodiscard]] std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out << content;
}

/// Opening a durable store must either recover (a prefix of) the written
/// state or throw the typed op_log_error — anything else (crash, OOM from
/// a corrupted length, another exception type) is a recovery bug. Under
/// the ASan/UBSan CI legs this also proves no UB on malformed input.
void expect_clean_recovery(const std::string& dir) {
  try {
    const util::durable_store store{dir};
    (void)store.recovered();
  } catch (const util::op_log_error&) {
  }
}

TEST(FuzzTest, OpLogTruncationsRecoverOrFailLoudly) {
  oplog_dir scratch;
  {
    util::durable_store store{scratch.dir()};
    store.append(as_bytes("round 1"));
    store.write_checkpoint(as_bytes("checkpoint state"));
    store.append(as_bytes("round 2"));
    store.append(as_bytes(std::string(3000, 'z')));
  }
  const std::string log = slurp(scratch.file("oplog"));
  const std::string ckpt = slurp(scratch.file("checkpoint"));
  for (std::size_t len = 0; len <= log.size(); ++len) {
    spit(scratch.file("oplog"), log.substr(0, len));
    expect_clean_recovery(scratch.dir());
  }
  spit(scratch.file("oplog"), log);
  for (std::size_t len = 0; len <= ckpt.size(); ++len) {
    spit(scratch.file("checkpoint"), ckpt.substr(0, len));
    expect_clean_recovery(scratch.dir());
  }
}

TEST(FuzzTest, OpLogBitFlipsRecoverOrFailLoudly) {
  oplog_dir scratch;
  {
    util::durable_store store{scratch.dir()};
    store.write_checkpoint(as_bytes("snapshot of cumulative state"));
    store.append(as_bytes("round 5"));
    store.append(as_bytes("round 6"));
  }
  const std::string log = slurp(scratch.file("oplog"));
  const std::string ckpt = slurp(scratch.file("checkpoint"));

  rng r{4242};
  for (int trial = 0; trial < 400; ++trial) {
    std::string bad_log = log;
    std::string bad_ckpt = ckpt;
    // 1-3 random bit flips across the two files.
    const int flips = 1 + static_cast<int>(r.below(3));
    for (int f = 0; f < flips; ++f) {
      std::string& target = r.below(2) == 0 ? bad_log : bad_ckpt;
      const std::size_t pos = static_cast<std::size_t>(r.below(target.size()));
      target[pos] = static_cast<char>(
          target[pos] ^ static_cast<char>(1 << r.below(8)));
    }
    spit(scratch.file("oplog"), bad_log);
    spit(scratch.file("checkpoint"), bad_ckpt);
    expect_clean_recovery(scratch.dir());
  }
}

TEST(FuzzTest, OpLogRandomJunkFilesFailLoudly) {
  rng r{777};
  for (int trial = 0; trial < 100; ++trial) {
    oplog_dir scratch;
    std::filesystem::create_directories(scratch.dir());
    const auto junk = [&](std::size_t max_len) {
      std::string s(r.below(max_len + 1), '\0');
      for (auto& c : s) c = static_cast<char>(r.below(256));
      return s;
    };
    spit(scratch.file("oplog"), junk(200));
    spit(scratch.file("checkpoint"), junk(200));
    expect_clean_recovery(scratch.dir());
  }
}

/// A deterministic event with the given variant shape, parameterized so a
/// fuzz loop can sweep adversarial identity distributions (all-equal client
/// ips, near-colliding targets, every body alternative).
[[nodiscard]] tor::event make_shard_event(std::uint64_t variant,
                                          std::uint64_t ident) {
  tor::event ev;
  ev.observer = static_cast<tor::relay_id>(ident % 13);
  ev.at = sim_time{static_cast<std::int64_t>(ident % 1000)};
  switch (variant % 8) {
    case 0:
      ev.body = tor::entry_connection_event{static_cast<std::uint32_t>(ident)};
      break;
    case 1:
      ev.body = tor::entry_circuit_event{static_cast<std::uint32_t>(ident),
                                         tor::circuit_kind::general};
      break;
    case 2:
      ev.body = tor::entry_data_event{static_cast<std::uint32_t>(ident),
                                      ident % 4096};
      break;
    case 3: {
      tor::exit_stream_event s;
      s.kind = tor::address_kind::hostname;
      s.is_initial = (ident % 2) == 0;
      s.target = "t" + std::to_string(ident) + ".example.com";
      ev.body = s;
      break;
    }
    case 4:
      ev.body = tor::exit_data_event{ident % 65536};
      break;
    case 5:
      ev.body = tor::hsdir_publish_event{
          tor::onion_address{"o" + std::to_string(ident)}};
      break;
    case 6:
      ev.body = tor::hsdir_fetch_event{
          tor::onion_address{"o" + std::to_string(ident)},
          tor::fetch_outcome::success};
      break;
    default:
      ev.body = tor::rend_circuit_event{tor::rend_outcome::succeeded,
                                        ident % 512};
      break;
  }
  return ev;
}

TEST(FuzzTest, ShardOfAlwaysLandsInRange) {
  // Adversarial keys: the fixed points hash mixers get wrong, tiny
  // sequential client ips, aligned powers of two, plus random draws.
  std::vector<std::uint64_t> keys = {0, 1, 2, 0xffffffffffffffffULL,
                                     0x8000000000000000ULL,
                                     0x5555555555555555ULL};
  for (std::uint64_t i = 0; i < 64; ++i) {
    keys.push_back(i);             // small client ips
    keys.push_back(1ULL << i);     // aligned
    keys.push_back((1ULL << i) - 1);
  }
  rng r{4242};
  for (int i = 0; i < 500; ++i) keys.push_back(r.next());

  std::vector<std::size_t> shard_counts = {1, 2, 3, 5, 7, 8, 16, 17, 64, 4096};
  for (int i = 0; i < 50; ++i) {
    shard_counts.push_back(1 + static_cast<std::size_t>(r.below(10000)));
  }
  for (const std::uint64_t key : keys) {
    for (const std::size_t shards : shard_counts) {
      const std::size_t s = tor::shard_of(key, shards);
      ASSERT_LT(s, shards) << "key " << key << " shards " << shards;
      // Pure function: re-evaluation never moves an event between shards.
      ASSERT_EQ(s, tor::shard_of(key, shards));
    }
    ASSERT_EQ(tor::shard_of(key, 1), 0u);
  }
}

TEST(FuzzTest, ShardKeyGroupsEventsByIdentity) {
  rng r{31337};
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t variant = r.next();
    const std::uint64_t ident = r.below(64);  // force identity collisions
    const tor::event a = make_shard_event(variant, ident);
    const tor::event b = make_shard_event(variant, ident);
    // Same identity, same variant => same key => same shard, always.
    ASSERT_EQ(tor::shard_key_of(a), tor::shard_key_of(b));
  }
}

TEST(FuzzTest, ShardedSlabMergeIsPartitionIndependent) {
  // Property: bucketing a random event stream across S shards, accumulating
  // per-shard slab rows, and merging must reproduce the single-shard slab
  // exactly — for any S, including S > n (guaranteed empty shards) and the
  // all-one-shard skew of an all-equal identity stream.
  rng r{1618};
  constexpr std::size_t counters = 5;
  const std::size_t stride = counters + 1;  // + trash slot
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = r.below(300);
    const bool skew = (trial % 4) == 0;  // every identity equal: one shard
    std::vector<tor::event> events;
    events.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      events.push_back(make_shard_event(skew ? 0 : r.next(),
                                        skew ? 7 : r.below(40)));
    }
    // The "instrument": a fixed per-event contribution, applied to whatever
    // slab row the event's shard owns. Also dirties the trash slot, which
    // merge must drop.
    const auto apply = [&](const tor::event& ev, std::uint64_t* row) {
      row[ev.body.index() % counters] += 1;
      row[static_cast<std::size_t>(ev.at.seconds) % counters] += 3;
      row[counters] += 999;  // trash slot: must never reach the tally
    };
    std::vector<std::uint64_t> base(counters);
    for (auto& b : base) b = r.next();  // blinded starts, wrap-around included

    const auto merged_with = [&](std::size_t shards) {
      std::vector<std::uint64_t> slabs(shards * stride, 0);
      for (const auto& ev : events) {
        const std::size_t s = tor::shard_of(tor::shard_key_of(ev), shards);
        apply(ev, slabs.data() + s * stride);
      }
      std::vector<std::uint64_t> out;
      privcount::merge_slabs(slabs, shards, counters, base, out);
      return out;
    };

    const std::vector<std::uint64_t> reference = merged_with(1);
    for (const std::size_t shards : {2ul, 3ul, 8ul, 17ul, n + 5, 1000ul}) {
      ASSERT_EQ(merged_with(shards), reference)
          << "trial " << trial << " shards " << shards << " n " << n;
    }
  }
}

TEST(FuzzTest, MergeSlabsRejectsShapeMismatches) {
  std::vector<std::uint64_t> out;
  const std::vector<std::uint64_t> base(4);
  // Slab vector not shards x (counters + 1).
  EXPECT_THROW(
      privcount::merge_slabs(std::vector<std::uint64_t>(9), 2, 4, base, out),
      precondition_error);
  // Base not one value per counter.
  EXPECT_THROW(
      privcount::merge_slabs(std::vector<std::uint64_t>(10), 2, 4,
                             std::vector<std::uint64_t>(3), out),
      precondition_error);
}

TEST(FuzzTest, SeededBinInsertsCommuteAcrossBins) {
  // Property behind PSC shard independence: insert_seeded_bin depends only
  // on (bin, seed), and the last insert into a bin wins. Any execution
  // order that preserves per-bin order — exactly what the shard bucketing
  // guarantees, since one bin maps to one shard — must produce a
  // byte-identical table, under random streams, all-one-bin skew, and
  // never-touched (empty) bins.
  const auto group = crypto::make_toy_group();
  const crypto::elgamal scheme{group};
  constexpr std::size_t bins = 32;
  rng r{2718};
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 1 + r.below(120);
    const bool skew = (trial % 3) == 0;
    std::vector<std::pair<std::size_t, std::uint64_t>> inserts;
    inserts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      inserts.emplace_back(skew ? 5 : r.below(bins), r.next());
    }

    const auto table_after = [&](std::size_t shards) {
      // Fresh rng per set: both start from the same all-zero table bytes.
      crypto::deterministic_rng set_rng{90 + static_cast<std::uint64_t>(trial)};
      psc::oblivious_set set{scheme, scheme.generate_keypair(set_rng).pub,
                             bins, set_rng};
      // Replay in shard-bucketed order: per-bin order is preserved because
      // a bin lives on exactly one shard.
      for (std::size_t s = 0; s < shards; ++s) {
        for (const auto& [bin, seed] : inserts) {
          if (bin % shards == s) set.insert_seeded_bin(bin, seed);
        }
      }
      std::vector<byte_buffer> bytes;
      for (const auto& c : set.slots()) bytes.push_back(scheme.encode(c));
      return bytes;
    };

    const std::vector<byte_buffer> reference = table_after(1);
    for (const std::size_t shards : {2ul, 3ul, 7ul, bins, bins * 4}) {
      ASSERT_EQ(table_after(shards), reference)
          << "trial " << trial << " shards " << shards;
    }
  }
}

TEST(FuzzTest, ElgamalCiphertextDecodeBounds) {
  const auto group = crypto::make_toy_group();
  const crypto::elgamal scheme{group};
  rng r{99};
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t len = 1 + r.below(24);
    byte_buffer junk(len);
    for (auto& b : junk) b = static_cast<std::uint8_t>(r.below(256));
    expect_graceful([&] { (void)scheme.decode(junk); });
  }
}

}  // namespace
}  // namespace tormet
