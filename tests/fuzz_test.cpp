// Robustness ("fuzz-ish") property tests: every decoder must reject
// malformed input by throwing a typed error — never crash, hang, or read
// out of bounds. Exercised over systematic truncations and random
// corruptions of valid messages.
#include <gtest/gtest.h>

#include "src/crypto/elgamal.h"
#include "src/net/wire.h"
#include "src/privcount/messages.h"
#include "src/psc/messages.h"
#include "src/tor/consensus_doc.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace tormet {
namespace {

/// Decodes must either succeed or throw wire_error/precondition_error —
/// anything else (crash, other exception) fails the test.
template <typename Fn>
void expect_graceful(Fn&& decode) {
  try {
    decode();
  } catch (const net::wire_error&) {
  } catch (const precondition_error&) {
  } catch (const std::runtime_error&) {
    // Crypto decoders surface OpenSSL failures as runtime_error.
  }
}

TEST(FuzzTest, PrivcountConfigureTruncations) {
  privcount::configure_msg m;
  m.round_id = 3;
  m.counter_names = {"a/b", "c/d", "e"};
  m.sigmas = {1.0, 2.0, 3.0};
  m.noise_weight = 0.5;
  m.share_keepers = {1, 2, 3};
  const net::message full = privcount::encode_configure(0, 1, m);

  for (std::size_t len = 0; len < full.payload.size(); ++len) {
    net::message cut = full;
    cut.payload.resize(len);
    EXPECT_THROW((void)privcount::decode_configure(cut), net::wire_error)
        << "prefix length " << len;
  }
  // The full message decodes.
  EXPECT_NO_THROW((void)privcount::decode_configure(full));
}

TEST(FuzzTest, PrivcountReportCorruption) {
  privcount::dc_report_msg m;
  m.round_id = 9;
  m.values = {1, 2, 3, ~0ULL};
  const net::message full = privcount::encode_dc_report(4, 0, m);

  rng r{101};
  for (int trial = 0; trial < 500; ++trial) {
    net::message corrupt = full;
    const std::size_t pos = static_cast<std::size_t>(
        r.below(corrupt.payload.size()));
    corrupt.payload[pos] ^= static_cast<std::uint8_t>(1 + r.below(255));
    expect_graceful([&] { (void)privcount::decode_dc_report(corrupt); });
  }
}

TEST(FuzzTest, PscVectorTruncationsAndCorruption) {
  const auto group = crypto::make_toy_group();
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng rng_c{7};
  const auto kp = scheme.generate_keypair(rng_c);

  psc::vector_msg m;
  m.round_id = 2;
  std::vector<crypto::elgamal_ciphertext> cts;
  for (int i = 0; i < 8; ++i) cts.push_back(scheme.encrypt_one(kp.pub, rng_c));
  m.ciphertexts = psc::encode_ciphertexts(scheme, cts);
  const net::message full = psc::encode_vector(1, 2, psc::msg_type::mix_pass, m);

  for (std::size_t len = 0; len < full.payload.size(); len += 3) {
    net::message cut = full;
    cut.payload.resize(len);
    expect_graceful([&] {
      const psc::vector_msg decoded = psc::decode_vector(cut);
      (void)psc::decode_ciphertexts(scheme, decoded.ciphertexts);
    });
  }

  rng r{55};
  for (int trial = 0; trial < 300; ++trial) {
    net::message corrupt = full;
    const std::size_t pos =
        static_cast<std::size_t>(r.below(corrupt.payload.size()));
    corrupt.payload[pos] ^= static_cast<std::uint8_t>(1 + r.below(255));
    expect_graceful([&] {
      const psc::vector_msg decoded = psc::decode_vector(corrupt);
      (void)psc::decode_ciphertexts(scheme, decoded.ciphertexts);
    });
  }
}

TEST(FuzzTest, GroupElementDecodeRejectsGarbage) {
  rng r{77};
  for (const auto backend :
       {crypto::group_backend::toy, crypto::group_backend::p256}) {
    const auto group = crypto::make_group(backend);
    for (int trial = 0; trial < 200; ++trial) {
      const std::size_t len = 1 + r.below(40);
      byte_buffer junk(len);
      for (auto& b : junk) b = static_cast<std::uint8_t>(r.below(256));
      expect_graceful([&] { (void)group->decode(junk); });
      expect_graceful([&] { (void)group->decode_scalar(junk); });
    }
  }
}

TEST(FuzzTest, ConsensusDocCorruption) {
  tor::consensus_params params;
  params.num_relays = 30;
  const std::string good =
      tor::serialize_consensus(tor::make_synthetic_consensus(params));
  EXPECT_NO_THROW((void)tor::parse_consensus(good));

  rng r{88};
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupt = good;
    const std::size_t pos = static_cast<std::size_t>(r.below(corrupt.size()));
    corrupt[pos] = static_cast<char>('!' + r.below(90));
    expect_graceful([&] { (void)tor::parse_consensus(corrupt); });
  }
  // Truncations at line granularity.
  for (std::size_t cut = 0; cut < good.size(); cut += 37) {
    expect_graceful([&] { (void)tor::parse_consensus(good.substr(0, cut)); });
  }
}

TEST(FuzzTest, ElgamalCiphertextDecodeBounds) {
  const auto group = crypto::make_toy_group();
  const crypto::elgamal scheme{group};
  rng r{99};
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t len = 1 + r.below(24);
    byte_buffer junk(len);
    for (auto& b : junk) b = static_cast<std::uint8_t>(r.below(256));
    expect_graceful([&] { (void)scheme.decode(junk); });
  }
}

}  // namespace
}  // namespace tormet
