// Big-bin end-to-end PSC round at paper-like scale, kept behind the ctest
// [slow] label (CMake labels every *_slow_test target): CI always runs it,
// the fast dev loop (`ctest -LE slow`) skips it. Everything here goes
// through the pooled batch engine — table init, mix, decrypt, and the
// tally-server batched final decode — at a bin count where the batch paths
// actually dominate.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>

#include "src/net/inproc.h"
#include "src/psc/deployment.h"
#include "src/psc/estimator.h"
#include "src/tor/network.h"
#include "src/util/check.h"

namespace tormet::psc {
namespace {

TEST(PscSlowRoundTest, BigBinRoundWithPaperNoiseParameters) {
  tor::consensus_params params;
  params.num_relays = 200;
  params.seed = 29;
  tor::network net{tor::make_synthetic_consensus(params), 19};
  const auto guards = net.net().eligible(tor::position::guard);
  ASSERT_GE(guards.size(), 3u);

  net::inproc_net bus;
  deployment_config cfg;
  cfg.num_computation_parties = 3;
  cfg.measured_relays.assign(guards.begin(), guards.begin() + 3);
  cfg.round.bins = 1 << 16;
  cfg.round.group = crypto::group_backend::toy;
  cfg.round.noise_enabled = true;
  // The paper's unique-IP bound (4 new IPs/day) at production-grade privacy.
  cfg.round.sensitivity = 4.0;
  cfg.round.privacy = {0.3, 1e-6};
  cfg.worker_threads = 4;
  deployment dep{bus, cfg};
  dep.set_extractor([](const tor::event& ev) -> std::optional<std::string> {
    if (const auto* c = std::get_if<tor::entry_connection_event>(&ev.body)) {
      return std::to_string(c->client_ip);
    }
    return std::nullopt;
  });
  dep.attach(net);

  constexpr std::size_t k_items = 8000;
  const round_outcome out = dep.run_round([&] {
    for (std::size_t i = 0; i < k_items; ++i) {
      tor::client_profile p;
      p.ip = static_cast<std::uint32_t>(100000 + i);
      p.promiscuous = true;  // every measured relay sees every IP
      const tor::client_id c = net.add_client(p);
      net.connect_to_guards(c, sim_time{0});
    }
  });

  EXPECT_GT(out.total_noise_bits, 10000u);  // paper-strength noise really ran
  // raw_count = occupied bins + Binomial(T, 1/2); the estimator removes the
  // T/2 offset and inverts collisions. At 2^16 bins and 8000 items the
  // occupancy correction is small, so the estimate should sit close to the
  // truth: within 6 combined standard deviations (occupancy + noise).
  const double t = static_cast<double>(out.total_noise_bits);
  const double sigma =
      std::sqrt(static_cast<double>(k_items) + t / 4.0);
  EXPECT_NEAR(out.estimate.cardinality, static_cast<double>(k_items),
              6.0 * sigma / (1.0 - static_cast<double>(k_items) /
                                       static_cast<double>(cfg.round.bins)));
}

}  // namespace
}  // namespace tormet::psc
