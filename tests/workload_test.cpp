// Workload-generator tests: suffix handling, Zipf shape, the synthetic
// Alexa list, GeoIP/AS database, ahmia index, population churn, and the
// browsing destination mixture.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <unordered_set>

#include "src/tor/network.h"
#include "src/util/check.h"
#include "src/workload/ahmia.h"
#include "src/workload/alexa.h"
#include "src/workload/browsing.h"
#include "src/workload/geoip.h"
#include "src/workload/onion_activity.h"
#include "src/workload/population.h"
#include "src/workload/scenario.h"
#include "src/workload/suffix_list.h"
#include "src/workload/trace_gen.h"
#include "src/workload/zipf.h"

namespace tormet::workload {
namespace {

TEST(SuffixListTest, SldExtraction) {
  const suffix_list sl = suffix_list::embedded();
  EXPECT_EQ(sl.sld_of("www.example.com"), "example.com");
  EXPECT_EQ(sl.sld_of("example.com"), "example.com");
  EXPECT_EQ(sl.sld_of("a.b.example.co.uk"), "example.co.uk");
  EXPECT_EQ(sl.sld_of("onionoo.torproject.org"), "torproject.org");
  EXPECT_EQ(sl.sld_of("com"), std::nullopt);             // no label above suffix
  EXPECT_EQ(sl.sld_of("abcdef.onion"), std::nullopt);    // .onion not public
  EXPECT_EQ(sl.sld_of("localhost"), std::nullopt);
}

TEST(SuffixListTest, PublicSuffixLongestMatch) {
  const suffix_list sl = suffix_list::embedded();
  EXPECT_EQ(sl.public_suffix_of("shop.example.co.uk"), "co.uk");
  EXPECT_EQ(sl.public_suffix_of("example.de"), "de");
  EXPECT_TRUE(sl.is_public_suffix("com"));
  EXPECT_FALSE(sl.is_public_suffix("example"));
}

TEST(SuffixListTest, TldExtraction) {
  EXPECT_EQ(suffix_list::tld_of("a.b.com"), "com");
  EXPECT_EQ(suffix_list::tld_of("x.ru"), "ru");
  EXPECT_EQ(suffix_list::tld_of("bare"), "bare");
  EXPECT_EQ(suffix_list::tld_of(""), std::nullopt);
}

TEST(ZipfTest, BoundsRespected) {
  rng r{1};
  const zipf_sampler z{1000, 1.2};
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t x = z.sample(r);
    ASSERT_GE(x, 1u);
    ASSERT_LE(x, 1000u);
  }
}

TEST(ZipfTest, ExponentOneGivesFlatDecades) {
  // s = 1 puts equal probability mass in each decade — the property behind
  // the paper's flat Fig 2 rank buckets.
  rng r{2};
  const zipf_sampler z{1'000'000, 1.0};
  std::map<int, int> decade_counts;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t x = z.sample(r);
    int decade = 0;
    for (std::uint64_t v = x; v >= 10; v /= 10) ++decade;
    ++decade_counts[decade];
  }
  // Six decades, ~n/6 each (within 12 %).
  for (int d = 0; d < 6; ++d) {
    EXPECT_NEAR(decade_counts[d], n / 6, n / 6 * 0.12) << "decade " << d;
  }
}

TEST(ZipfTest, HigherExponentConcentratesHead) {
  rng r{3};
  const zipf_sampler flat{10000, 0.7};
  const zipf_sampler steep{10000, 1.5};
  int flat_head = 0;
  int steep_head = 0;
  for (int i = 0; i < 20000; ++i) {
    if (flat.sample(r) <= 10) ++flat_head;
    if (steep.sample(r) <= 10) ++steep_head;
  }
  EXPECT_GT(steep_head, flat_head * 2);
}

class AlexaTest : public ::testing::Test {
 protected:
  static const alexa_list& list() {
    static const alexa_list l =
        alexa_list::make_synthetic({.size = 50'000, .seed = 7});
    return l;
  }
};

TEST_F(AlexaTest, FixedHead) {
  EXPECT_EQ(list().domain_at_rank(1), "google.com");
  EXPECT_EQ(list().domain_at_rank(7), "google.co.in");
  EXPECT_EQ(list().domain_at_rank(10), "amazon.com");
  EXPECT_EQ(list().domain_at_rank(342), "duckduckgo.com");
  EXPECT_EQ(list().domain_at_rank(10244), "torproject.org");
  EXPECT_EQ(list().rank_of("torproject.org"), 10244u);
  EXPECT_EQ(list().rank_of("not-a-site.zz"), std::nullopt);
}

TEST_F(AlexaTest, SiblingFamilies) {
  // google is the largest family (212 entries per the paper); reddit and qq
  // the smallest (3 each).
  EXPECT_EQ(list().sibling_set("google").size(), 212u);
  EXPECT_EQ(list().sibling_set("reddit").size(), 3u);
  EXPECT_EQ(list().sibling_set("qq").size(), 3u);
  EXPECT_EQ(list().sibling_set("amazon").size(), 52u);
  EXPECT_EQ(list().sibling_set("duckduckgo").size(), 1u);
  EXPECT_EQ(list().sibling_set("torproject").size(), 1u);
}

TEST_F(AlexaTest, AllRanksPopulatedAndUnique) {
  std::unordered_set<std::string> seen;
  for (std::uint32_t rank = 1; rank <= list().size(); ++rank) {
    const std::string& d = list().domain_at_rank(rank);
    ASSERT_FALSE(d.empty()) << rank;
    ASSERT_TRUE(seen.insert(d).second) << "duplicate " << d;
  }
}

TEST_F(AlexaTest, CategoriesShapedLikeAlexa) {
  const auto& cats = list().categories();
  EXPECT_GE(cats.size(), 10u);
  bool amazon_in_shopping = false;
  for (const auto& [name, members] : cats) {
    EXPECT_EQ(members.size(), 50u) << name;
    for (const auto& m : members) {
      EXPECT_NE(m, "torproject.org");  // paper: torproject in no category
      if (name == "shopping" && m == "amazon.com") amazon_in_shopping = true;
    }
  }
  EXPECT_TRUE(amazon_in_shopping);
}

TEST(AlexaMatchTest, HostnameMatching) {
  EXPECT_TRUE(hostname_matches_domain("amazon.com", "amazon.com"));
  EXPECT_TRUE(hostname_matches_domain("www.amazon.com", "amazon.com"));
  EXPECT_TRUE(hostname_matches_domain("a.b.amazon.com", "amazon.com"));
  EXPECT_FALSE(hostname_matches_domain("notamazon.com", "amazon.com"));
  EXPECT_FALSE(hostname_matches_domain("amazon.com.evil.net", "amazon.com"));
  EXPECT_FALSE(hostname_matches_domain("amazon.co", "amazon.com"));
}

TEST(GeoipTest, CountryAndAsLookups) {
  geoip_db db = geoip_db::make_synthetic();
  EXPECT_EQ(db.num_countries(), 250u);
  EXPECT_NEAR(db.total_ases(), 59'597, 2000);

  const country_index us = db.index_of("US");
  const std::uint32_t ip = db.allocate_ip(us);
  EXPECT_EQ(db.country_of(ip), us);
  const std::uint32_t asn = db.asn_of(ip);
  EXPECT_GE(asn, 1u);
  EXPECT_LE(asn, db.total_ases());
  EXPECT_THROW((void)db.index_of("XX"), tormet::precondition_error);
}

TEST(GeoipTest, AllocatedIpsAreDistinctAndSpreadOverAses) {
  geoip_db db = geoip_db::make_synthetic();
  const country_index de = db.index_of("DE");
  std::set<std::uint32_t> ips;
  std::set<std::uint32_t> ases;
  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t ip = db.allocate_ip(de);
    EXPECT_TRUE(ips.insert(ip).second);
    ases.insert(db.asn_of(ip));
    EXPECT_EQ(db.country_of(ip), de);
  }
  // DE has hundreds of ASes; allocation should touch many of them.
  EXPECT_GT(ases.size(), 100u);
}

TEST(GeoipTest, SampleCountryFollowsShares) {
  geoip_db db = geoip_db::make_synthetic();
  rng r{8};
  std::map<country_index, int> counts;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[db.sample_country(r)];
  const country_index us = db.index_of("US");
  EXPECT_NEAR(static_cast<double>(counts[us]) / n,
              db.countries()[us].client_share, 0.01);
  // The long tail exists: many distinct countries sampled.
  EXPECT_GT(counts.size(), 100u);
}

TEST(AhmiaTest, IndexCoversRequestedFraction) {
  std::vector<tor::onion_address> addrs;
  for (int i = 0; i < 5000; ++i) {
    addrs.push_back(
        tor::derive_onion_address(as_bytes("svc" + std::to_string(i))));
  }
  rng r{9};
  const ahmia_index index = ahmia_index::make(addrs, 0.57, r);
  EXPECT_NEAR(static_cast<double>(index.size()) / 5000.0, 0.57, 0.03);
}

class PopulationTest : public ::testing::Test {
 protected:
  PopulationTest() {
    tor::consensus_params cparams;
    cparams.num_relays = 400;
    cparams.seed = 31;
    net_ = std::make_unique<tor::network>(
        tor::make_synthetic_consensus(cparams), 77);
    geo_ = std::make_unique<geoip_db>(geoip_db::make_synthetic());
  }

  static population_params small_params() {
    population_params p;
    p.network_scale = 1.0;
    p.selective_clients = 500;
    p.promiscuous_clients = 5;
    p.daily_churn = 0.4;
    p.seed = 3;
    return p;
  }

  std::unique_ptr<tor::network> net_;
  std::unique_ptr<geoip_db> geo_;
};

TEST_F(PopulationTest, InitialPopulationComposition) {
  population pop{*net_, *geo_, small_params()};
  EXPECT_EQ(pop.active().size(), 505u);
  EXPECT_EQ(pop.unique_ips_to_date(), 505u);
  std::size_t promiscuous = 0;
  for (const auto c : pop.active()) {
    if (pop.class_of(c) == client_class::promiscuous) ++promiscuous;
  }
  EXPECT_EQ(promiscuous, 5u);
  EXPECT_EQ(pop.active_of(client_class::promiscuous).size(), 5u);
}

TEST_F(PopulationTest, ChurnGrowsUniqueIps) {
  population pop{*net_, *geo_, small_params()};
  const std::size_t day1 = pop.unique_ips_to_date();
  pop.advance_to_day(2);  // two churn steps (days 1 and 2)
  const std::size_t day3 = pop.unique_ips_to_date();
  // Expected growth: ~2 * churn * selective = 2*0.4*500 = 400 new IPs.
  EXPECT_GT(day3, day1 + 250);
  EXPECT_LT(day3, day1 + 550);
  // Active set size is unchanged; only identities churn.
  EXPECT_EQ(pop.active().size(), 505u);
}

TEST_F(PopulationTest, UaeClientsGetBlockedProfile) {
  population_params p = small_params();
  p.selective_clients = 3000;  // enough for AE representation
  population pop{*net_, *geo_, p};
  const auto uae = pop.active_of(client_class::uae_blocked);
  EXPECT_GT(uae.size(), 10u);
  for (const auto c : uae) {
    EXPECT_EQ(geo_->countries()[net_->profile_of(c).country].code, "AE");
  }
}

TEST_F(PopulationTest, EntryDayGeneratesTraffic) {
  population pop{*net_, *geo_, small_params()};
  pop.run_entry_day(sim_time{0});
  const tor::ground_truth& t = net_->truth();
  EXPECT_GT(t.entry_connections, 500u);  // promiscuous connect to all guards
  EXPECT_GT(t.entry_circuits, 1000u);
  EXPECT_GT(t.entry_bytes, 0u);
}

TEST(BrowsingTest, DestinationMixtureShape) {
  tor::consensus_params cparams;
  cparams.num_relays = 300;
  tor::network net{tor::make_synthetic_consensus(cparams), 5};
  const alexa_list alexa = alexa_list::make_synthetic({.size = 50'000, .seed = 7});
  browsing_params bp;
  bp.seed = 10;
  browsing_driver driver{net, alexa, bp};

  int torproject = 0;
  int amazon = 0;
  int in_alexa = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const std::string host = driver.sample_destination();
    if (hostname_matches_domain(host, "torproject.org")) ++torproject;
    if (host.find("amazon.") != std::string::npos) ++amazon;
    std::string_view rest = host;
    for (;;) {
      if (alexa.contains(rest)) {
        ++in_alexa;
        break;
      }
      const std::size_t dot = rest.find('.');
      if (dot == std::string_view::npos) break;
      rest.remove_prefix(dot + 1);
    }
  }
  EXPECT_NEAR(static_cast<double>(torproject) / n, 0.401, 0.02);
  EXPECT_NEAR(static_cast<double>(amazon) / n, 0.097, 0.02);
  // ~80 % of destinations are Alexa-listed (paper Fig 2 conclusion:
  // "other" = 21.7 %).
  EXPECT_NEAR(static_cast<double>(in_alexa) / n, 0.783, 0.04);
}

TEST(BrowsingTest, VisitProducesExpectedStreamShape) {
  tor::consensus_params cparams;
  cparams.num_relays = 300;
  tor::network net{tor::make_synthetic_consensus(cparams), 6};
  const alexa_list alexa = alexa_list::make_synthetic({.size = 50'000, .seed = 7});
  browsing_params bp;
  bp.seed = 11;
  browsing_driver driver{net, alexa, bp};

  tor::client_profile profile;
  profile.ip = 1;
  const tor::client_id c = net.add_client(profile);
  for (int i = 0; i < 300; ++i) driver.visit_site(c, sim_time{0});

  const tor::ground_truth& t = net.truth();
  EXPECT_EQ(t.exit_streams_initial, 300u);
  // subsequent/initial ratio ~ 19 => total/initial ~ 20.
  const double ratio = static_cast<double>(t.exit_streams_total) / 300.0;
  EXPECT_NEAR(ratio, 20.0, 1.5);
  // Initial streams are overwhelmingly hostname+web.
  EXPECT_GT(t.initial_hostname_web, 290u);
}

TEST(OnionActivityTest, DayReproducesFailureShape) {
  tor::consensus_params cparams;
  cparams.num_relays = 400;
  cparams.seed = 41;
  tor::network net{tor::make_synthetic_consensus(cparams), 7};
  onion_params op;
  op.network_scale = 1e-3;
  op.seed = 12;
  onion_driver driver{net, op};

  tor::client_profile profile;
  profile.ip = 2;
  const tor::client_id c = net.add_client(profile);
  const std::vector<tor::client_id> clients{c};
  driver.run_day(clients, clients, sim_time{0});

  const tor::ground_truth& t = net.truth();
  ASSERT_GT(t.descriptor_fetches, 100'000u);
  const double fail_rate =
      static_cast<double>(t.descriptor_fetch_not_found +
                          t.descriptor_fetch_malformed) /
      static_cast<double>(t.descriptor_fetches);
  EXPECT_NEAR(fail_rate, 0.909, 0.02);

  ASSERT_GT(t.rend_circuits, 100'000u);
  const double success_rate = static_cast<double>(t.rend_succeeded) /
                              static_cast<double>(t.rend_circuits);
  EXPECT_NEAR(success_rate, 0.0808, 0.015);
  // The paper's Table 8 percentages sum to 97.35 % (wide CIs); the model
  // normalizes, putting the residual mass on the dominant expired class.
  const double expired_rate = static_cast<double>(t.rend_expired) /
                              static_cast<double>(t.rend_circuits);
  EXPECT_NEAR(expired_rate, 0.875, 0.02);

  // Services got published and some subset was fetched.
  EXPECT_GT(net.service_count(), 8u);
  EXPECT_GT(driver.unique_fetched(), 0u);
  EXPECT_LE(driver.unique_fetched(), net.service_count());
}

TEST(TraceGenTest, GenerationIsAPureFunctionOfParams) {
  trace_gen_params params;
  params.model = "mixed";
  params.dcs = 3;
  params.scale = 2e-5;
  params.seed = 12;
  const auto a = generate_trace_events(params);
  const auto b = generate_trace_events(params);
  ASSERT_EQ(a.size(), 3u);
  std::size_t total = 0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a[k].size(), b[k].size());
    total += a[k].size();
    for (std::size_t i = 0; i < a[k].size(); ++i) {
      EXPECT_EQ(a[k][i].observer, b[k][i].observer);
      EXPECT_EQ(a[k][i].at.seconds, b[k][i].at.seconds);
      EXPECT_EQ(a[k][i].body.index(), b[k][i].body.index());
    }
  }
  EXPECT_GT(total, 0u);

  params.seed = 13;
  const auto c = generate_trace_events(params);
  std::size_t total_c = 0;
  for (const auto& dc : c) total_c += dc.size();
  EXPECT_NE(total, total_c);  // different seed, different workload volume
}

TEST(TraceGenTest, EveryModelProducesTimeOrderedPartitionedEvents) {
  for (const std::string& model : trace_models()) {
    trace_gen_params params;
    params.model = model;
    params.dcs = 4;
    params.scale = 1e-5;
    params.events = 200;
    const auto per_dc = generate_trace_events(params);
    ASSERT_EQ(per_dc.size(), 4u) << model;
    std::size_t total = 0;
    for (const auto& events : per_dc) {
      total += events.size();
      for (std::size_t i = 1; i < events.size(); ++i) {
        ASSERT_GE(events[i].at.seconds, events[i - 1].at.seconds)
            << model << ": events must be non-decreasing in time";
      }
    }
    EXPECT_GT(total, 0u) << model;
  }
  EXPECT_THROW((void)generate_trace_events({.model = "bogus"}),
               precondition_error);
}

TEST(TraceGenTest, MultiDayTracesSpanDailyWindows) {
  for (const std::string& model : {"zipf", "population", "mixed"}) {
    trace_gen_params params;
    params.model = model;
    params.dcs = 3;
    params.scale = 5e-5;
    params.events = 300;
    params.days = 3;
    params.seed = 21;
    const auto per_dc = generate_trace_events(params);
    // Every simulated day produces events, events stay time-ordered, and
    // nothing lands past the last day's window.
    std::vector<std::size_t> per_day(3, 0);
    for (const auto& events : per_dc) {
      for (std::size_t i = 0; i < events.size(); ++i) {
        ASSERT_GE(events[i].at.seconds, 0) << model;
        ASSERT_LT(events[i].at.seconds, 3 * k_seconds_per_day) << model;
        if (i > 0) {
          ASSERT_GE(events[i].at.seconds, events[i - 1].at.seconds) << model;
        }
        ++per_day[static_cast<std::size_t>(events[i].at.seconds /
                                           k_seconds_per_day)];
      }
    }
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_GT(per_day[d], 0u) << model << " day " << d;
    }
  }
}

TEST(TraceGenTest, SingleDayIsTheDaysEqualsOneSpecialCase) {
  trace_gen_params implicit;
  implicit.model = "zipf";
  implicit.dcs = 2;
  implicit.events = 400;
  implicit.seed = 33;
  trace_gen_params explicit_days = implicit;
  explicit_days.days = 1;
  const auto a = generate_trace_events(implicit);
  const auto b = generate_trace_events(explicit_days);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a[k].size(), b[k].size());
    for (std::size_t i = 0; i < a[k].size(); ++i) {
      EXPECT_EQ(a[k][i].at.seconds, b[k][i].at.seconds);
      EXPECT_EQ(a[k][i].body.index(), b[k][i].body.index());
    }
  }
}

/// Statistical acceptance for the Table 5 driver: multi-day population
/// traces must reproduce the configured multi-day/1-day unique-client
/// ratio. With daily churn c, unique(N days)/unique(1 day) ≈ 1 + (N-1)·c
/// (the relation the paper's 2.15x 4-day turnover follows); the generated
/// traces' *observed* unique IPs at the measured relays must match within
/// sampling tolerance, across seeds.
TEST(TraceGenTest, MultiDayChurnReproducesUniqueClientRatio) {
  constexpr int k_days = 3;
  const double churn = population_params{}.daily_churn;  // 0.382
  const double expected_ratio = 1.0 + (k_days - 1) * churn;
  for (const std::uint64_t seed : {5ull, 6ull}) {
    trace_gen_params params;
    params.model = "population";
    params.dcs = 4;
    params.scale = 5e-4;  // ~4400 selective clients (~220 observed/day)
    params.days = k_days;
    params.seed = seed;
    const auto per_dc = generate_trace_events(params);

    std::vector<std::set<std::uint32_t>> daily(k_days);
    std::set<std::uint32_t> total;
    for (const auto& events : per_dc) {
      for (const auto& ev : events) {
        const auto* conn = std::get_if<tor::entry_connection_event>(&ev.body);
        if (conn == nullptr) continue;
        const auto day =
            static_cast<std::size_t>(ev.at.seconds / k_seconds_per_day);
        daily.at(day).insert(conn->client_ip);
        total.insert(conn->client_ip);
      }
    }
    ASSERT_GT(daily[0].size(), 150u) << "seed " << seed;
    const double ratio = static_cast<double>(total.size()) /
                         static_cast<double>(daily[0].size());
    EXPECT_NEAR(ratio, expected_ratio, 0.25)
        << "seed " << seed << ": " << total.size() << " total unique vs "
        << daily[0].size() << " day-0 unique";
    // And each later day's unique count stays in the same ballpark as day
    // 0's (the active population size is stable; only identities churn).
    for (int d = 1; d < k_days; ++d) {
      EXPECT_NEAR(static_cast<double>(daily[d].size()),
                  static_cast<double>(daily[0].size()),
                  0.2 * static_cast<double>(daily[0].size()))
          << "seed " << seed << " day " << d;
    }
  }
}

// -- scenario golden digests -------------------------------------------------

namespace {

[[nodiscard]] std::string slurp(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Renders `params` into a fresh temp dir and returns every produced file
/// as {name -> bytes} — the scenario's golden digest.
[[nodiscard]] std::map<std::string, std::string> render_digest(
    const scenario_params& params) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("tormet-scn-" + params.name + "-" + std::to_string(params.seed) + "-" +
       std::to_string(::getpid()) + "-" +
       std::to_string(static_cast<unsigned>(params.scale * 1'000)));
  std::filesystem::create_directories(dir);
  const std::vector<std::size_t> counts =
      write_scenario_dir(params, dir.string());
  EXPECT_EQ(counts.size(), params.dcs);
  std::map<std::string, std::string> digest;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    digest[entry.path().filename().string()] = slurp(entry.path());
  }
  std::filesystem::remove_all(dir);
  return digest;
}

}  // namespace

TEST(ScenarioGenTest, GenerationIsAPureFunctionOfParams) {
  for (const auto& name : scenario_names()) {
    scenario_params params;
    params.name = name;
    params.dcs = 3;
    params.scale = 0.25;
    params.events = 200;
    params.seed = 4;
    params.days = 2;
    const auto a = generate_scenario_events(params);
    const auto b = generate_scenario_events(params);
    ASSERT_EQ(a.size(), 3u) << name;
    std::size_t total = 0;
    for (std::size_t k = 0; k < a.size(); ++k) {
      ASSERT_EQ(a[k].size(), b[k].size()) << name;
      total += a[k].size();
      for (std::size_t i = 0; i < a[k].size(); ++i) {
        EXPECT_EQ(a[k][i].at.seconds, b[k][i].at.seconds);
        EXPECT_EQ(a[k][i].body.index(), b[k][i].body.index());
      }
      // Every slice is stably time-sorted, as workload_cursor's zero-copy
      // window fast path requires.
      for (std::size_t i = 1; i < a[k].size(); ++i) {
        EXPECT_LE(a[k][i - 1].at.seconds, a[k][i].at.seconds) << name;
      }
    }
    EXPECT_GT(total, 0u) << name;

    scenario_params other = params;
    other.seed = 5;
    const auto c = generate_scenario_events(other);
    std::size_t total_c = 0;
    for (const auto& dc : c) total_c += dc.size();
    EXPECT_NE(total, total_c) << name;  // different seed, different volume
  }
}

TEST(ScenarioGenTest, ScenarioDirsRenderByteIdenticalAcrossRuns) {
  // Golden-digest determinism: every scenario x {seed, scale} renders the
  // exact same bytes — traces AND the ground_truth.cfg sidecar — on every
  // run, anywhere. This is what makes a scenario name + params citable in
  // a paper artifact.
  for (const auto& name : scenario_names()) {
    for (const std::uint64_t seed : {2u, 9u}) {
      for (const double scale : {0.125, 0.375}) {
        scenario_params params;
        params.name = name;
        params.dcs = 2;
        params.scale = scale;
        params.events = 150;
        params.seed = seed;
        params.days = 2;
        const auto first = render_digest(params);
        const auto second = render_digest(params);
        ASSERT_EQ(first.size(), 3u) << name;  // dc-0, dc-1, ground_truth.cfg
        ASSERT_TRUE(first.count("ground_truth.cfg")) << name;
        EXPECT_EQ(first, second)
            << name << " seed " << seed << " scale " << scale
            << ": renders diverged across two runs";
      }
    }
  }
}

TEST(ScenarioGenTest, UnknownScenarioIsRejected) {
  EXPECT_FALSE(is_known_scenario("flashcrowd"));
  scenario_params params;
  params.name = "no_such_scenario";
  EXPECT_THROW(generate_scenario_events(params), precondition_error);
}

}  // namespace
}  // namespace tormet::workload
