// The relay-agent e2e gate: a 200-relay simulated deployment (4 DC
// processes x 50 embedded stats agents each) streams a 2-day generated
// workload through per-window .pub publishes and many-publisher
// aggregation into the sharded DC ingest plane, and the resulting tally
// must be byte-identical to the single-cursor in-process reference — for
// both protocols at sample_prob 1.0, and for a sampled run against the
// sampling-filtered reference. The sampled run's fleet counters (surfaced
// through the TS `.summary` sidecar) must land inside the analytically
// derived per-circuit binomial band.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/cli/deployment_plan.h"
#include "src/cli/orchestrator.h"
#include "src/cli/workload_source.h"
#include "src/relay/stats_agent.h"
#include "src/tor/event_shard.h"

namespace tormet::cli {
namespace {

[[nodiscard]] std::string node_binary() {
  if (const char* env = std::getenv("TORMET_NODE_BIN")) return env;
  return sibling_node_binary();
}

class workdir_guard {
 public:
  workdir_guard() : path_{make_round_workdir()} {}
  ~workdir_guard() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

constexpr std::uint64_t k_fleet = 200;  // 4 DCs x 50 embedded agents

void set_relays_workload(deployment_plan& plan, double sample_prob) {
  plan.workload.kind = workload_kind::relays;
  plan.workload.relay_count = k_fleet;
  plan.workload.model = "mixed";
  // Miniature mixed-model network (same knob distributed_test uses): ~13k
  // events per DC per 2-day trace — enough to exercise every agent in a
  // 50-per-DC fleet without the full population-scale generation cost.
  plan.workload.scale = 2e-4;
  plan.workload.events = 2'000;
  plan.workload.gen_seed = 41;
  plan.workload.gen_days = 2;
  plan.schedule_rounds = 2;
  plan.round_duration_s = k_seconds_per_day;
  plan.round_gap_s = 0;
  plan.sample_prob = sample_prob;
  plan.dc_shards = 4;
  plan.dc_ingest_threads = 2;
  plan.rng_seed = 1041;
}

[[nodiscard]] distributed_round_result run_relay_round(
    const deployment_plan& base, const std::string& bin,
    const std::string& workdir) {
  deployment_plan plan = base;
  plan.tally_path = workdir + "/tally.out";
  assign_free_ports(plan);
  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir, 180'000);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }
  return result;
}

/// Sums one numeric field across every `dc_stats <id> relay_fleet ...`
/// summary line (returns -1 if no such line exists).
[[nodiscard]] std::int64_t sum_fleet_field(const std::string& summary,
                                           const std::string& field) {
  std::int64_t total = -1;
  std::istringstream in{summary};
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("dc_stats ", 0) != 0 ||
        line.find(" relay_fleet ") == std::string::npos) {
      continue;
    }
    std::istringstream ls{line};
    std::string word;
    while (ls >> word) {
      if (word != field) continue;
      std::int64_t value = 0;
      if (ls >> value) total = (total < 0 ? 0 : total) + value;
      break;
    }
  }
  return total;
}

TEST(RelayE2eSlowTest, PscFleetAtFullSamplingIsByteIdenticalToReference) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  const trace_round_defaults defaults = defaults_for_model("mixed");
  deployment_plan plan = make_psc_plan(4, 2, 512);
  plan.round.group = crypto::group_backend::toy;
  plan.psc_extractor = defaults.psc_extractor;
  set_relays_workload(plan, 1.0);

  workdir_guard workdir;
  const distributed_round_result result =
      run_relay_round(plan, bin, workdir.path());
  deployment_plan ported = plan;
  ported.tally_path = workdir.path() + "/tally.out";
  EXPECT_EQ(result.tally, run_reference_round(ported))
      << "aggregated relay publishes diverge from the cursor-fed reference";

  // At sample_prob 1.0 the whole relay detour must vanish byte-wise: the
  // same plan fed as a plain `generate` workload is the unsampled
  // reference, and the tallies must match it too.
  deployment_plan direct = ported;
  direct.workload.kind = workload_kind::generate;
  direct.workload.relay_count = 0;
  EXPECT_EQ(result.tally, run_reference_round(direct));

  // The fleet accounting reached the summary sidecar: 2 windows x 50
  // agents per DC, nothing missing or rejected on the happy path.
  EXPECT_EQ(sum_fleet_field(result.summary, "relay_fleet"), 200);
  EXPECT_EQ(sum_fleet_field(result.summary, "windows"), 400);
  EXPECT_EQ(sum_fleet_field(result.summary, "missing"), 0);
  EXPECT_EQ(sum_fleet_field(result.summary, "rejected"), 0);
  EXPECT_EQ(sum_fleet_field(result.summary, "duplicates"), 0);
  EXPECT_EQ(sum_fleet_field(result.summary, "observed"),
            sum_fleet_field(result.summary, "sampled"));
}

TEST(RelayE2eSlowTest, PrivcountFleetAtFullSamplingIsByteIdentical) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  const trace_round_defaults defaults = defaults_for_model("mixed");
  deployment_plan plan = make_privcount_plan(4, 2, defaults.counters);
  plan.instruments = defaults.instruments;
  plan.psc_extractor = defaults.psc_extractor;
  set_relays_workload(plan, 1.0);

  workdir_guard workdir;
  const distributed_round_result result =
      run_relay_round(plan, bin, workdir.path());
  deployment_plan ported = plan;
  ported.tally_path = workdir.path() + "/tally.out";
  EXPECT_EQ(result.tally, run_reference_round(ported));

  deployment_plan direct = ported;
  direct.workload.kind = workload_kind::generate;
  direct.workload.relay_count = 0;
  EXPECT_EQ(result.tally, run_reference_round(direct));
}

TEST(RelayE2eSlowTest, SampledFleetMatchesFilteredReferenceAndAnalyticBand) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  const double p = 0.5;
  const trace_round_defaults defaults = defaults_for_model("mixed");
  deployment_plan plan = make_privcount_plan(4, 2, defaults.counters);
  plan.instruments = defaults.instruments;
  plan.psc_extractor = defaults.psc_extractor;
  set_relays_workload(plan, p);

  workdir_guard workdir;
  const distributed_round_result result =
      run_relay_round(plan, bin, workdir.path());
  deployment_plan ported = plan;
  ported.tally_path = workdir.path() + "/tally.out";
  // The sampled distributed run must equal the reference with the same
  // sampling predicate applied inline — publish files, many-publisher
  // merge, and sharded ingest all cancel out byte-wise.
  EXPECT_EQ(result.tally, run_reference_round(ported));

  // Fleet counters vs the analytically derived band. Sampling keeps or
  // drops whole circuits, so S = sum of kept circuits' event counts with
  // E[S] = p*T and Var[S] = p(1-p) * sum n_k^2 over per-circuit counts.
  const auto events = materialize_plan_events(plan);
  ASSERT_NE(events, nullptr);
  std::uint64_t total = 0;
  std::uint64_t expected_sampled = 0;
  std::map<std::uint64_t, std::uint64_t> per_circuit;
  const std::uint64_t seed = relay::sampling_seed_of(plan.rng_seed);
  for (const auto& dc_events : *events) {
    for (const auto& ev : dc_events) {
      ++total;
      ++per_circuit[tor::shard_key_of(ev)];
      if (relay::sample_event(ev, seed, p)) ++expected_sampled;
    }
  }
  double var = 0;
  for (const auto& [key, n_k] : per_circuit) {
    var += p * (1 - p) * static_cast<double>(n_k * n_k);
  }
  const std::int64_t observed = sum_fleet_field(result.summary, "observed");
  const std::int64_t sampled = sum_fleet_field(result.summary, "sampled");
  ASSERT_GE(observed, 0) << result.summary;
  ASSERT_GE(sampled, 0) << result.summary;
  EXPECT_EQ(static_cast<std::uint64_t>(observed), total);
  // Deterministic sampler: the fleet's count equals the predicate's count
  // exactly, and that count sits inside the 6-sigma band around p*T.
  EXPECT_EQ(static_cast<std::uint64_t>(sampled), expected_sampled);
  EXPECT_NEAR(static_cast<double>(sampled), p * static_cast<double>(total),
              6 * std::sqrt(var));
  EXPECT_EQ(sum_fleet_field(result.summary, "missing"), 0);
  EXPECT_EQ(sum_fleet_field(result.summary, "rejected"), 0);
}

}  // namespace
}  // namespace tormet::cli
