// The full scenario acceptance matrix, distributed: every named scenario x
// 3 seeds x {PSC, PrivCount} runs as a real multi-process deployment
// (fork/exec tormet_node per role, TCP fabric, 2 daily rounds), and each
// run must be byte-identical to the in-process reference AND land inside
// the analytically derived noise band of the scenario's ground truth. The
// fast subset (in-process matrix + one distributed run per scenario) lives
// in tests/scenario_test.cpp; this is the [slow] CI gate behind ISSUE 9's
// "all scenarios through the live pipeline for >= 3 seeds each".
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/cli/deployment_plan.h"
#include "src/cli/orchestrator.h"
#include "src/cli/workload_source.h"
#include "src/dp/allocation.h"
#include "src/stats/psc_ci.h"
#include "src/workload/scenario.h"

namespace tormet::cli {
namespace {

[[nodiscard]] std::string node_binary() {
  if (const char* env = std::getenv("TORMET_NODE_BIN")) return env;
  return sibling_node_binary();
}

class workdir_guard {
 public:
  workdir_guard() : path_{make_round_workdir()} {}
  ~workdir_guard() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

constexpr std::uint64_t k_seeds[] = {3, 11, 29};

void set_scenario_workload(deployment_plan& plan, const std::string& name,
                           std::uint64_t seed) {
  plan.workload.kind = workload_kind::scenario;
  plan.workload.model = name;
  plan.workload.scale = 0.25;
  plan.workload.events = 400;
  plan.workload.gen_seed = seed;
  plan.workload.gen_days = 2;
  plan.schedule_rounds = 2;
  plan.round_duration_s = k_seconds_per_day;
  plan.round_gap_s = 0;
  plan.rng_seed = seed * 1'000 + 17;
}

[[nodiscard]] workload::scenario_truth truth_of(const deployment_plan& plan) {
  const workload::scenario_params params = scenario_params_of(plan);
  return workload::compute_scenario_truth(
      params, workload::generate_scenario_events(params), plan.instruments,
      {plan.psc_extractor}, plan.schedule_rounds, plan.round_duration_s,
      plan.round_gap_s);
}

[[nodiscard]] std::string run_and_check_identity(const deployment_plan& base,
                                                 const std::string& bin,
                                                 const std::string& label) {
  deployment_plan plan = base;
  workdir_guard workdir;
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);
  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir.path(), 120'000);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << label << ": node " << n.id << " failed";
  }
  EXPECT_EQ(result.tally, run_reference_round(plan))
      << label << ": distributed tally diverges from in-process reference";
  return result.tally;
}

TEST(ScenarioE2eSlowTest, PrivcountDistributedMatrixTracksGroundTruth) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  for (const auto& name : workload::scenario_names()) {
    for (const std::uint64_t seed : k_seeds) {
      const trace_round_defaults defaults = defaults_for_scenario(name);
      deployment_plan plan = make_privcount_plan(3, 2, defaults.counters);
      plan.instruments = defaults.instruments;
      plan.psc_extractor = defaults.psc_extractor;
      set_scenario_workload(plan, name, seed);
      const std::string label =
          name + "/privcount/seed" + std::to_string(seed);

      const std::string tally = run_and_check_identity(plan, bin, label);
      const workload::scenario_truth truth = truth_of(plan);

      std::vector<dp::counter_request> requests;
      for (const auto& c : plan.counters) {
        requests.push_back({c.name, c.sensitivity, c.expected_value});
      }
      const std::vector<dp::counter_allocation> alloc =
          dp::allocate_budget(plan.privacy, requests);

      // Parse `counter <name> <value> <sigma>` per round and band-check.
      std::istringstream in{tally};
      std::string line;
      std::size_t round = 0;
      bool in_round = false;
      std::size_t checked = 0;
      while (std::getline(in, line)) {
        if (line == "protocol privcount") {
          if (in_round) ++round;
          in_round = true;
          continue;
        }
        if (!in_round || line.rfind("counter ", 0) != 0) continue;
        std::istringstream ls{line};
        std::string key, cname;
        std::int64_t value = 0;
        double sigma = 0.0;
        ls >> key >> cname >> value >> sigma;
        ASSERT_LT(round, truth.rounds.size()) << label;
        std::int64_t tv = -1;
        for (const auto& [n, v] : truth.rounds[round].counters) {
          if (n == cname) tv = static_cast<std::int64_t>(v);
        }
        ASSERT_GE(tv, 0) << label << ": no ground truth for " << cname;
        double expected_sigma = -1.0;
        for (const auto& a : alloc) {
          if (a.name == cname) expected_sigma = a.sigma;
        }
        ASSERT_GE(expected_sigma, 0.0) << label;
        EXPECT_DOUBLE_EQ(sigma, expected_sigma) << label << " " << cname;
        EXPECT_LE(std::abs(static_cast<double>(value - tv)), 6.0 * sigma)
            << label << ": round " << round << " counter " << cname << " = "
            << value << " strays past 6 sigma from truth " << tv;
        ++checked;
      }
      EXPECT_EQ(checked, plan.counters.size() * truth.rounds.size()) << label;
    }
  }
}

TEST(ScenarioE2eSlowTest, PscDistributedMatrixStaysInsideExactDpBand) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  for (const auto& name : workload::scenario_names()) {
    for (const std::uint64_t seed : k_seeds) {
      const trace_round_defaults defaults = defaults_for_scenario(name);
      deployment_plan plan = make_psc_plan(3, 2, 2'048);
      plan.round.group = crypto::group_backend::toy;
      plan.psc_extractor = defaults.psc_extractor;
      set_scenario_workload(plan, name, seed);
      const std::string label = name + "/psc/seed" + std::to_string(seed);

      const std::string tally = run_and_check_identity(plan, bin, label);
      const workload::scenario_truth truth = truth_of(plan);

      std::istringstream in{tally};
      std::string line;
      std::size_t round = 0;
      std::uint64_t raw_count = 0, bins = 0, noise_bits = 0;
      bool have_round = false;
      std::size_t checked = 0;
      const auto flush = [&] {
        if (!have_round) return;
        ASSERT_LT(round, truth.rounds.size()) << label;
        ASSERT_EQ(truth.rounds[round].distinct.size(), 1u) << label;
        const std::uint64_t n_true = truth.rounds[round].distinct[0].second;
        const stats::psc_ci_params p{bins, noise_bits};
        constexpr double alpha = 1e-6;
        EXPECT_GE(stats::psc_cdf(raw_count, n_true, p), alpha)
            << label << ": round " << round << " raw_count " << raw_count
            << " implausibly low for truth " << n_true;
        if (raw_count > 0) {
          EXPECT_GE(1.0 - stats::psc_cdf(raw_count - 1, n_true, p), alpha)
              << label << ": round " << round << " raw_count " << raw_count
              << " implausibly high for truth " << n_true;
        }
        ++round;
        ++checked;
        have_round = false;
      };
      while (std::getline(in, line)) {
        if (line == "protocol psc") {
          flush();
          have_round = true;
          continue;
        }
        std::istringstream ls{line};
        std::string key;
        ls >> key;
        if (key == "raw_count") ls >> raw_count;
        if (key == "bins") ls >> bins;
        if (key == "noise_bits") ls >> noise_bits;
      }
      flush();
      EXPECT_EQ(checked, truth.rounds.size()) << label;
    }
  }
}

/// Extracts DC `id`'s `dc <id> reported ... excluded E rejoined J` line
/// from the summary sidecar (empty string if absent).
[[nodiscard]] std::string dc_summary_line(const std::string& summary,
                                          net::node_id id) {
  const std::string prefix = "dc " + std::to_string(id) + " ";
  const std::size_t at = summary.find(prefix);
  if (at == std::string::npos) return {};
  return summary.substr(at, summary.find('\n', at) - at);
}

/// The relay_churn scenario's dropouts are SCHEDULED darkness, not process
/// faults: with 2 DCs over 4 daily rounds, DC 0 is dark for all of round 2
/// and DC 1 for all of round 4. The TS must exclude each dark DC for
/// exactly its dark round (and re-admit DC 0 at the round-3 boundary), the
/// exclusions must land in the summary sidecar, and the distributed tally
/// must stay byte-identical to the in-process reference applying the same
/// churn — for both protocols.
TEST(ScenarioE2eSlowTest, RelayChurnDropoutsAreExcludedAndReadmitted) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  const trace_round_defaults defaults = defaults_for_scenario("relay_churn");
  for (const std::string protocol : {"psc", "privcount"}) {
    deployment_plan plan = protocol == "psc"
                               ? make_psc_plan(2, 2, 2'048)
                               : make_privcount_plan(2, 2, defaults.counters);
    if (protocol == "psc") {
      plan.round.group = crypto::group_backend::toy;
    } else {
      plan.instruments = defaults.instruments;
    }
    plan.psc_extractor = defaults.psc_extractor;
    set_scenario_workload(plan, "relay_churn", 7);
    plan.workload.gen_days = 4;
    plan.schedule_rounds = 4;

    workdir_guard workdir;
    plan.tally_path = workdir.path() + "/tally.out";
    assign_free_ports(plan);
    const distributed_round_result result =
        run_distributed_round(plan, bin, workdir.path(), 120'000);
    for (const auto& n : result.nodes) {
      EXPECT_EQ(n.exit_code, 0) << protocol << ": node " << n.id << " failed";
    }
    EXPECT_EQ(result.tally, run_reference_round(plan))
        << protocol
        << ": scheduled-churn distributed tally diverges from reference";

    // DC 0 went dark in round 2 and came back for round 3; DC 1 went dark
    // in round 4 and the schedule ended before it could rejoin.
    const std::vector<net::node_id> dc_ids = plan.ids_with(
        protocol == "psc" ? node_role::psc_dc : node_role::privcount_dc);
    ASSERT_EQ(dc_ids.size(), 2u);
    const std::string dc0 = dc_summary_line(result.summary, dc_ids[0]);
    const std::string dc1 = dc_summary_line(result.summary, dc_ids[1]);
    EXPECT_NE(dc0.find("missed 1"), std::string::npos)
        << protocol << ": " << dc0;
    EXPECT_NE(dc0.find("excluded 1"), std::string::npos)
        << protocol << ": " << dc0;
    EXPECT_NE(dc0.find("rejoined 1"), std::string::npos)
        << protocol << ": " << dc0;
    EXPECT_NE(dc1.find("missed 1"), std::string::npos)
        << protocol << ": " << dc1;
    EXPECT_NE(dc1.find("excluded 1"), std::string::npos)
        << protocol << ": " << dc1;
    EXPECT_NE(dc1.find("rejoined 0"), std::string::npos)
        << protocol << ": " << dc1;
  }
}

}  // namespace
}  // namespace tormet::cli
