// Tor network-model tests: ground-truth accounting, event emission rules,
// guard assignment, descriptor store semantics, rendezvous accounting.
#include <gtest/gtest.h>

#include <map>

#include "src/tor/network.h"

namespace tormet::tor {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() {
    consensus_params params;
    params.num_relays = 300;
    params.seed = 21;
    net_ = std::make_unique<network>(make_synthetic_consensus(params), 99);
  }

  client_id add_simple_client(bool promiscuous = false) {
    client_profile p;
    p.ip = next_ip_++;
    p.num_guards = 3;
    p.promiscuous = promiscuous;
    return net_->add_client(p);
  }

  std::unique_ptr<network> net_;
  std::uint32_t next_ip_ = 1000;
};

TEST_F(NetworkTest, GuardAssignment) {
  const client_id c = add_simple_client();
  const auto guards = net_->guards_of(c);
  EXPECT_EQ(guards.size(), 3u);
  std::set<relay_id> unique{guards.begin(), guards.end()};
  EXPECT_EQ(unique.size(), 3u);
  for (const auto g : guards) {
    EXPECT_TRUE(net_->net().relay_at(g).flags.guard);
  }
}

TEST_F(NetworkTest, PromiscuousClientsUseAllGuards) {
  const client_id c = add_simple_client(/*promiscuous=*/true);
  EXPECT_EQ(net_->guards_of(c).size(),
            net_->net().eligible(position::guard).size());
}

TEST_F(NetworkTest, ConnectionsCountedAndObservedOnlyAtObservedRelays) {
  const client_id c = add_simple_client();
  const auto guards = net_->guards_of(c);

  std::vector<event> seen;
  net_->set_observed_relays({guards[0]});
  net_->set_event_sink([&](const event& ev) { seen.push_back(ev); });

  net_->connect_to_guards(c, sim_time{0});
  EXPECT_EQ(net_->truth().entry_connections, 3u);
  // Only the observed guard's event materializes.
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].observer, guards[0]);
  EXPECT_TRUE(std::holds_alternative<entry_connection_event>(seen[0].body));
}

TEST_F(NetworkTest, ExitCircuitStreamTaxonomy) {
  const client_id c = add_simple_client();
  const std::vector<stream_spec> streams{
      {address_kind::hostname, "www.example.com", 443, 1000},
      {address_kind::hostname, "cdn.example.com", 443, 2000},
      {address_kind::hostname, "cdn2.example.com", 80, 500},
  };
  net_->exit_circuit(c, streams, sim_time{5});

  const ground_truth& t = net_->truth();
  EXPECT_EQ(t.exit_streams_total, 3u);
  EXPECT_EQ(t.exit_streams_initial, 1u);
  EXPECT_EQ(t.initial_hostname, 1u);
  EXPECT_EQ(t.initial_hostname_web, 1u);
  EXPECT_EQ(t.initial_ipv4, 0u);
  EXPECT_EQ(t.exit_bytes, 3500u);
  EXPECT_EQ(t.entry_circuits, 1u);
  // Entry bytes include cell overhead: ceil(3500/498)*512.
  EXPECT_EQ(t.entry_bytes, cells_for_payload(3500) * k_cell_total_bytes);
}

TEST_F(NetworkTest, InitialStreamKinds) {
  const client_id c = add_simple_client();
  net_->exit_circuit(c, std::vector<stream_spec>{{address_kind::ipv4, "1.2.3.4", 443, 10}},
                     sim_time{0});
  net_->exit_circuit(
      c, std::vector<stream_spec>{{address_kind::hostname, "x.net", 8080, 10}},
      sim_time{0});
  EXPECT_EQ(net_->truth().initial_ipv4, 1u);
  EXPECT_EQ(net_->truth().initial_hostname_other, 1u);
}

TEST_F(NetworkTest, DescriptorPublishAndFetch) {
  const client_id c = add_simple_client();
  const service_id s = net_->add_onion_service();
  const onion_address& addr = net_->address_of(s);

  // Fetch before publish: not found.
  EXPECT_EQ(net_->fetch_descriptor(c, addr, 0, false, sim_time{0}).outcome,
            fetch_outcome::not_found);

  net_->publish_descriptor(s, 0, sim_time{1});
  EXPECT_GE(net_->truth().descriptor_publishes, 3u);  // one per responsible dir

  EXPECT_EQ(net_->fetch_descriptor(c, addr, 0, false, sim_time{2}).outcome,
            fetch_outcome::success);
  // Different period: not found again.
  EXPECT_EQ(net_->fetch_descriptor(c, addr, 1, false, sim_time{3}).outcome,
            fetch_outcome::not_found);
  // Malformed always fails.
  EXPECT_EQ(net_->fetch_descriptor(c, addr, 0, true, sim_time{4}).outcome,
            fetch_outcome::malformed);

  const ground_truth& t = net_->truth();
  EXPECT_EQ(t.descriptor_fetches, 4u);
  EXPECT_EQ(t.descriptor_fetch_success, 1u);
  EXPECT_EQ(t.descriptor_fetch_not_found, 2u);
  EXPECT_EQ(t.descriptor_fetch_malformed, 1u);
}

TEST_F(NetworkTest, ServiceAddressesAreDistinctAndValid) {
  const service_id s1 = net_->add_onion_service();
  const service_id s2 = net_->add_onion_service();
  EXPECT_NE(net_->address_of(s1), net_->address_of(s2));
  EXPECT_TRUE(is_valid_onion_address(net_->address_of(s1).value));
}

TEST_F(NetworkTest, RendezvousAccounting) {
  const client_id c = add_simple_client();
  net_->rendezvous_attempt(c, rend_outcome::succeeded, 10000, sim_time{0});
  net_->rendezvous_attempt(c, rend_outcome::failed_expired, 0, sim_time{1});
  net_->rendezvous_attempt(c, rend_outcome::failed_conn_closed, 0, sim_time{2});

  const ground_truth& t = net_->truth();
  EXPECT_EQ(t.rend_circuits, 4u);  // success counts as 2 circuits at the RP
  EXPECT_EQ(t.rend_succeeded, 2u);
  EXPECT_EQ(t.rend_expired, 1u);
  EXPECT_EQ(t.rend_conn_closed, 1u);
  EXPECT_EQ(t.rend_payload_bytes, 20000u);
  // Rendezvous client circuits also appear at the guard.
  EXPECT_EQ(t.entry_circuits, 3u);
}

TEST_F(NetworkTest, DirectoryCircuitBytes) {
  const client_id c = add_simple_client();
  net_->directory_circuit(c, 1000, sim_time{0});
  EXPECT_EQ(net_->truth().entry_circuits, 1u);
  EXPECT_EQ(net_->truth().entry_bytes, cells_for_payload(1000) * k_cell_total_bytes);
}

TEST_F(NetworkTest, EventSinkReceivesExitEventsAtObservedExit) {
  // Observe every exit so the sampled exit is guaranteed covered.
  const auto exits = net_->net().eligible(position::exit);
  net_->set_observed_relays({exits.begin(), exits.end()});
  std::map<int, int> kinds;
  net_->set_event_sink([&](const event& ev) {
    kinds[static_cast<int>(ev.body.index())]++;
  });
  const client_id c = add_simple_client();
  net_->exit_circuit(
      c, std::vector<stream_spec>{{address_kind::hostname, "a.com", 443, 100}},
      sim_time{0});
  // exit_stream_event is variant index 3; exit_data_event index 4.
  EXPECT_EQ(kinds[3], 1);
  EXPECT_EQ(kinds[4], 1);
}

TEST(CellTest, PayloadMath) {
  EXPECT_EQ(cells_for_payload(0), 0u);
  EXPECT_EQ(cells_for_payload(1), 1u);
  EXPECT_EQ(cells_for_payload(498), 1u);
  EXPECT_EQ(cells_for_payload(499), 2u);
  EXPECT_EQ(wire_bytes_for_payload(498), 512u);
}

}  // namespace
}  // namespace tormet::tor
