// Statistical-inference tests: CIs and extrapolation, occupancy moments and
// exact pmf, the PSC dynamic-programming CI (with a coverage sweep), the
// Monte-Carlo power-law extrapolation, and the Table 3 guard-model fit.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>

#include "src/stats/confidence.h"
#include "src/stats/extrapolate.h"
#include "src/stats/guard_model.h"
#include "src/stats/metrics_portal.h"
#include "src/stats/occupancy.h"
#include "src/stats/psc_ci.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/workload/zipf.h"

namespace tormet::stats {
namespace {

TEST(ConfidenceTest, NormalEstimate) {
  const estimate e = normal_estimate(100.0, 10.0);
  EXPECT_DOUBLE_EQ(e.value, 100.0);
  EXPECT_NEAR(e.ci.lo, 100.0 - 19.6, 0.01);
  EXPECT_NEAR(e.ci.hi, 100.0 + 19.6, 0.01);
  EXPECT_TRUE(e.ci.contains(100.0));
  EXPECT_FALSE(e.ci.contains(200.0));
}

TEST(ConfidenceTest, PaperExampleExtrapolation) {
  // §3.3: (3.2e7 ± 6.2e6)/0.015 = 2.1e9 ± 4.1e8.
  const estimate local{3.2e7, {3.2e7 - 6.2e6, 3.2e7 + 6.2e6}};
  const estimate network = extrapolate_by_fraction(local, 0.015);
  EXPECT_NEAR(network.value, 2.13e9, 0.01e9);
  EXPECT_NEAR(network.ci.lo, (3.2e7 - 6.2e6) / 0.015, 1.0);
  EXPECT_NEAR(network.ci.hi - network.value, 4.13e8, 0.01e8);
}

TEST(ConfidenceTest, UniqueCountRange) {
  const interval r = unique_count_range(471228, 0.0124);
  EXPECT_DOUBLE_EQ(r.lo, 471228);
  EXPECT_NEAR(r.hi, 471228 / 0.0124, 1.0);
  EXPECT_THROW((void)unique_count_range(10, 0.0), tormet::precondition_error);
}

TEST(ConfidenceTest, IntervalOps) {
  const interval a{1.0, 3.0};
  const interval b{2.5, 4.0};
  const interval c{3.5, 4.0};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_DOUBLE_EQ(a.width(), 2.0);
}

TEST(ConfidenceTest, RatioEstimate) {
  const estimate num{50.0, {40.0, 60.0}};
  const estimate den{100.0, {90.0, 110.0}};
  const estimate r = ratio_estimate(num, den);
  EXPECT_DOUBLE_EQ(r.value, 0.5);
  EXPECT_NEAR(r.ci.lo, 40.0 / 110.0, 1e-12);
  EXPECT_NEAR(r.ci.hi, 60.0 / 90.0, 1e-12);
}

TEST(OccupancyTest, MeanAndVarianceFormulas) {
  EXPECT_DOUBLE_EQ(occupancy_mean(0, 10), 0.0);
  EXPECT_NEAR(occupancy_mean(10, 10), 10.0 * (1 - std::pow(0.9, 10)), 1e-12);
  EXPECT_DOUBLE_EQ(occupancy_variance(0, 10), 0.0);
  EXPECT_GT(occupancy_variance(10, 10), 0.0);
}

TEST(OccupancyTest, PmfMatchesMoments) {
  const std::vector<double> pmf = occupancy_pmf(20, 8);
  double total = 0.0;
  double mean = 0.0;
  double second = 0.0;
  for (std::size_t j = 0; j < pmf.size(); ++j) {
    total += pmf[j];
    mean += static_cast<double>(j) * pmf[j];
    second += static_cast<double>(j) * static_cast<double>(j) * pmf[j];
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(mean, occupancy_mean(20, 8), 1e-9);
  EXPECT_NEAR(second - mean * mean, occupancy_variance(20, 8), 1e-9);
}

TEST(OccupancyTest, PmfMatchesMonteCarlo) {
  constexpr std::uint64_t n = 12;
  constexpr std::uint64_t b = 6;
  const std::vector<double> pmf = occupancy_pmf(n, b);
  rng r{55};
  std::vector<double> empirical(pmf.size(), 0.0);
  constexpr int trials = 100000;
  for (int t = 0; t < trials; ++t) {
    std::uint64_t mask = 0;
    for (std::uint64_t i = 0; i < n; ++i) mask |= 1ULL << r.below(b);
    ++empirical[static_cast<std::size_t>(std::popcount(mask))];
  }
  for (std::size_t j = 0; j < pmf.size(); ++j) {
    EXPECT_NEAR(empirical[j] / trials, pmf[j], 0.006) << "occ=" << j;
  }
}

TEST(OccupancyTest, EdgeCases) {
  const std::vector<double> pmf0 = occupancy_pmf(0, 5);
  ASSERT_EQ(pmf0.size(), 1u);
  EXPECT_DOUBLE_EQ(pmf0[0], 1.0);
  const std::vector<double> pmf1 = occupancy_pmf(1, 5);
  ASSERT_EQ(pmf1.size(), 2u);
  EXPECT_DOUBLE_EQ(pmf1[1], 1.0);
}

TEST(PscCiTest, CdfIsMonotoneInObservationAndCardinality) {
  psc_ci_params params;
  params.bins = 128;
  params.total_noise_bits = 40;
  // CDF rises with the observed value...
  EXPECT_LE(psc_cdf(30, 50, params), psc_cdf(60, 50, params));
  // ...and falls with the true cardinality (more items -> bigger counts).
  EXPECT_GE(psc_cdf(60, 20, params), psc_cdf(60, 80, params));
}

TEST(PscCiTest, ExactAndNormalBranchesAgree) {
  psc_ci_params exact;
  exact.bins = 64;
  exact.total_noise_bits = 30;
  exact.exact_dp_limit = 1'000'000;  // force exact
  psc_ci_params approx = exact;
  approx.exact_dp_limit = 0;  // force normal approximation
  for (const std::uint64_t n : {10ULL, 40ULL, 100ULL}) {
    for (const std::uint64_t r : {20ULL, 40ULL, 60ULL}) {
      EXPECT_NEAR(psc_cdf(r, n, exact), psc_cdf(r, n, approx), 0.05)
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(PscCiTest, IntervalContainsPointEstimate) {
  psc_ci_params params;
  params.bins = 1024;
  params.total_noise_bits = 100;
  const estimate e = psc_confidence_interval(380, params);
  EXPECT_GE(e.value, e.ci.lo);
  EXPECT_LE(e.value, e.ci.hi);
  EXPECT_GT(e.ci.hi, e.ci.lo);
}

// Coverage sweep: simulate the full PSC observation pipeline many times and
// check the 95 % CI covers the true n at least ~90 % of the time (binomial
// slack on 60 trials).
class PscCiCoverage : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PscCiCoverage, CoversTruth) {
  const std::uint64_t true_n = GetParam();
  psc_ci_params params;
  params.bins = 2048;
  params.total_noise_bits = 200;
  rng r{true_n * 7 + 1};
  int covered = 0;
  constexpr int trials = 60;
  for (int t = 0; t < trials; ++t) {
    // Simulate: throw n balls, add Binomial(T, 1/2) noise ones.
    std::set<std::uint64_t> bins_hit;
    for (std::uint64_t i = 0; i < true_n; ++i) bins_hit.insert(r.below(2048));
    std::uint64_t raw = bins_hit.size();
    for (std::uint64_t i = 0; i < params.total_noise_bits; ++i) {
      raw += r.bernoulli(0.5) ? 1 : 0;
    }
    const estimate e = psc_confidence_interval(raw, params);
    if (e.ci.contains(static_cast<double>(true_n))) ++covered;
  }
  EXPECT_GE(covered, 54) << "true_n=" << true_n;  // >= 90 % of 60
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, PscCiCoverage,
                         ::testing::Values(50, 300, 1000, 3000),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(ExtrapolateTest, RecoversNetworkUniquesFromLocalSample) {
  // Ground truth: zipf(1.05) over 50k items, 200k network accesses, 10 %
  // observed. First compute the true local/network uniques, then check the
  // extrapolation (which only sees the local CI) brackets the network value.
  rng r{77};
  const workload::zipf_sampler truth{50'000, 1.05};
  std::set<std::uint64_t> network;
  std::set<std::uint64_t> local;
  for (int i = 0; i < 200'000; ++i) {
    const std::uint64_t item = truth.sample(r);
    network.insert(item);
    if (r.bernoulli(0.1)) local.insert(item);
  }

  powerlaw_extrapolation_params params;
  params.universe = 50'000;
  params.exponent_lo = 0.95;
  params.exponent_hi = 1.15;
  params.network_accesses = 200'000;
  params.observe_fraction = 0.1;
  const double l = static_cast<double>(local.size());
  params.local_uniques_ci = {l * 0.92, l * 1.08};
  params.trials = 80;
  params.seed = 5;

  const powerlaw_extrapolation_result result =
      extrapolate_uniques_powerlaw(params);
  ASSERT_GT(result.accepted, 5u);
  const double n = static_cast<double>(network.size());
  EXPECT_GT(result.network_uniques.ci.hi, n * 0.9);
  EXPECT_LT(result.network_uniques.ci.lo, n * 1.1);
  EXPECT_NEAR(result.network_uniques.value, n, n * 0.15);
}

TEST(ExtrapolateTest, RejectsAllTrialsWhenCiImpossible) {
  powerlaw_extrapolation_params params;
  params.universe = 1000;
  params.network_accesses = 10'000;
  params.observe_fraction = 0.5;
  params.local_uniques_ci = {1e9, 2e9};  // unsatisfiable
  params.trials = 10;
  const powerlaw_extrapolation_result result =
      extrapolate_uniques_powerlaw(params);
  EXPECT_EQ(result.accepted, 0u);
}

TEST(GuardModelTest, RecoversSyntheticPopulation) {
  // Synthetic truth: S = 8.8e6 selective (g = 3), P = 18,000 promiscuous.
  constexpr double s_true = 8.8e6;
  constexpr double p_true = 18'000;
  constexpr int g_true = 3;
  const auto observed = [&](double frac) {
    return s_true * (1.0 - std::pow(1.0 - frac, g_true)) + p_true;
  };
  // The paper's two disjoint measurements: 0.42 % and 0.88 % guard weight,
  // with +-1.5 % measurement CIs.
  const double o1 = observed(0.0042);
  const double o2 = observed(0.0088);
  const guard_measurement m1{{o1 * 0.985, o1 * 1.015}, 0.0042};
  const guard_measurement m2{{o2 * 0.985, o2 * 1.015}, 0.0088};

  guard_model_params params;
  params.max_promiscuous = 1e5;
  const auto rows = fit_guard_model(m1, m2, params);
  ASSERT_EQ(rows.size(), 3u);

  const auto& g3 = rows[0];
  EXPECT_EQ(g3.guards_per_client, 3);
  ASSERT_TRUE(g3.consistent);
  // The true promiscuous count and network IPs lie inside the fitted ranges.
  EXPECT_LE(g3.promiscuous.lo, p_true);
  EXPECT_GE(g3.promiscuous.hi, p_true);
  EXPECT_LE(g3.network_ips.lo, s_true + p_true);
  EXPECT_GE(g3.network_ips.hi, s_true + p_true);

  // Higher g fits imply lower client counts (same observations spread over
  // more guard hits) — the Table 3 trend.
  ASSERT_TRUE(rows[2].consistent);
  EXPECT_LT(rows[2].network_ips.hi, g3.network_ips.hi);
}

TEST(GuardModelTest, InconsistentMeasurementsDetected) {
  // Slopes that no (S, P >= 0) can explain: second observation smaller
  // than first despite double the fraction.
  const guard_measurement m1{{100'000, 101'000}, 0.0042};
  const guard_measurement m2{{50'000, 51'000}, 0.0088};
  guard_model_params params;
  params.max_promiscuous = 1e4;
  const auto rows = fit_guard_model(m1, m2, params);
  for (const auto& row : rows) {
    EXPECT_FALSE(row.consistent) << "g=" << row.guards_per_client;
  }
}

TEST(GuardModelTest, QuickEstimateMatchesPaperHeadline) {
  // 313,213 observed IPs at 1.19 % guard weight with 3 guards per client
  // => ~8.77 M daily users (the paper's abstract headline).
  const double users = quick_user_estimate(313'213, 0.0119, 3);
  EXPECT_NEAR(users, 8.773e6, 0.01e6);
}

TEST(GuardModelTest, RejectsDegenerateInput) {
  const guard_measurement m{{1, 2}, 0.01};
  EXPECT_THROW((void)fit_guard_model(m, m), tormet::precondition_error);
}

TEST(MetricsPortalTest, EstimateAndFactor) {
  // 2.15 M daily users from ~21.5 M directory requests at full coverage.
  EXPECT_NEAR(metrics_portal_user_estimate(21.5e6, 1.0), 2.15e6, 1.0);
  // Observed at 10 % of directory weight.
  EXPECT_NEAR(metrics_portal_user_estimate(2.15e6, 0.1), 2.15e6, 1.0);
  // The paper's headline: direct measurement ~4x the Metrics estimate.
  EXPECT_NEAR(underestimate_factor(8.77e6, 2.15e6), 4.08, 0.01);
  EXPECT_THROW((void)metrics_portal_user_estimate(1.0, 0.0),
               tormet::precondition_error);
  EXPECT_THROW((void)metrics_portal_user_estimate(1.0, 1.0, 0.0),
               tormet::precondition_error);
}

TEST(MetricsPortalTest, UnderestimatesWhenTrueRateBelowAssumption) {
  // 1 M clients each issuing 2.5 directory requests/day, fully observed:
  // the 10-requests/day assumption yields a 4x undercount.
  const double requests = 1e6 * 2.5;
  const double estimate = metrics_portal_user_estimate(requests, 1.0);
  EXPECT_NEAR(underestimate_factor(1e6, estimate), 4.0, 1e-9);
}

}  // namespace
}  // namespace tormet::stats
