// PR-7 soak test [slow]: one hundred million events of a multi-day trace
// pushed through the sharded DC ingest path under round windowing. The
// trace cannot be materialized (100M events is ~6 GiB), so a reusable
// 64K-event block is re-stamped with each window's sim times and streamed
// through privcount::data_collector::ingest in deliberately uneven spans —
// every shard boundary, block boundary, and window boundary is crossed
// millions of times. With noise off and no blinding, each round's report
// must equal the analytically expected counts exactly, shard counts 1 and
// 3 must be byte-identical, and not one event may be lost.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/instruments.h"
#include "src/core/schedule.h"
#include "src/net/inproc.h"
#include "src/privcount/data_collector.h"
#include "src/privcount/messages.h"
#include "src/tor/events.h"

namespace tormet::privcount {
namespace {

constexpr std::uint64_t k_total_events = 100'000'000;
constexpr std::uint32_t k_rounds = 4;
constexpr std::size_t k_block_events = 65'536;

/// The per-block ground truth for the stream_taxonomy counters.
struct block_truth {
  std::uint64_t total = 0;
  std::uint64_t initial = 0;
  std::uint64_t hostname = 0;
  std::uint64_t ipv4 = 0;
  std::uint64_t ipv6 = 0;
  std::uint64_t web = 0;
  std::uint64_t other = 0;
};

/// Builds the reusable event block: a deterministic mix of exit streams
/// (every taxonomy leaf) and entry events (exercising the client-ip shard
/// key), with adversarially uneven shard keys — every 8th event hashes
/// from the same client ip.
[[nodiscard]] std::vector<tor::event> make_block(block_truth& truth) {
  std::vector<tor::event> block;
  block.reserve(k_block_events);
  for (std::size_t i = 0; i < k_block_events; ++i) {
    tor::event ev;
    ev.observer = static_cast<tor::relay_id>(i % 7);
    ev.at = sim_time{0};  // re-stamped per window before every feed
    switch (i % 8) {
      case 0:
        ev.body = tor::entry_connection_event{42};  // all-one-shard skew
        break;
      case 1:
        ev.body = tor::entry_data_event{static_cast<std::uint32_t>(i), i % 997};
        break;
      case 2: {
        tor::exit_stream_event s;
        s.kind = tor::address_kind::ipv4;
        s.is_initial = true;
        s.target = "10.0.0.1";
        ev.body = s;
        ++truth.total;
        ++truth.initial;
        ++truth.ipv4;
        break;
      }
      case 3: {
        tor::exit_stream_event s;
        s.kind = tor::address_kind::ipv6;
        s.is_initial = (i % 16) == 3;
        s.target = "::1";
        ev.body = s;
        ++truth.total;
        if (s.is_initial) {
          ++truth.initial;
          ++truth.ipv6;
        }
        break;
      }
      default: {
        tor::exit_stream_event s;
        s.kind = tor::address_kind::hostname;
        s.is_initial = (i % 2) == 0;
        s.port = (i % 3) == 0 ? 443 : ((i % 3) == 1 ? 80 : 8080);
        s.target = "host" + std::to_string(i % 101) + ".example.com";
        ev.body = s;
        ++truth.total;
        if (s.is_initial) {
          ++truth.initial;
          ++truth.hostname;
          ++((s.port == 80 || s.port == 443) ? truth.web : truth.other);
        }
        break;
      }
    }
    block.push_back(std::move(ev));
  }
  return block;
}

/// One DC wired to an inproc bus that captures its reports. No share
/// keepers and zero sigma: report values are the raw exact counts.
struct soak_dc {
  explicit soak_dc(std::size_t shards)
      : rng{11}, dc{1, 0, bus, rng} {
    bus.register_node(0, [this](const net::message& m) {
      if (static_cast<msg_type>(m.type) == msg_type::dc_report) {
        reports.push_back(decode_dc_report(m));
      }
    });
    dc.add_instrument(core::make_batch_instrument("stream_taxonomy"));
    dc.set_shards(shards);
  }

  void open_round(std::uint32_t round_id) {
    configure_msg cfg;
    cfg.round_id = round_id;
    for (const auto& spec : core::default_specs_for("stream_taxonomy")) {
      cfg.counter_names.push_back(spec.name);
      cfg.sigmas.push_back(0.0);
    }
    dc.handle_message(encode_configure(0, 1, cfg));
    dc.handle_message(
        encode_simple(0, 1, msg_type::start_collection, round_id));
  }

  void close_round(std::uint32_t round_id) {
    dc.handle_message(
        encode_simple(0, 1, msg_type::stop_collection, round_id));
    bus.run_until_quiescent();
  }

  net::inproc_net bus;
  crypto::deterministic_rng rng;
  data_collector dc;
  std::vector<dc_report_msg> reports;
};

TEST(IngestSoakTest, HundredMillionEventsAreExactAndShardIndependent) {
  block_truth truth;
  std::vector<tor::event> block = make_block(truth);

  soak_dc dc1{1};
  soak_dc dc3{3};

  const std::uint64_t per_round = k_total_events / k_rounds;
  const std::uint64_t blocks_per_round =
      (per_round + k_block_events - 1) / k_block_events;
  std::uint64_t fed_total = 0;
  for (std::uint32_t round = 0; round < k_rounds; ++round) {
    const std::int64_t window_start = round * k_seconds_per_day;
    const std::int64_t window_end = (round + 1) * k_seconds_per_day;
    dc1.open_round(round + 1);
    dc3.open_round(round + 1);
    std::uint64_t fed = 0;
    for (std::uint64_t b = 0; b < blocks_per_round; ++b) {
      const std::uint64_t want = std::min<std::uint64_t>(
          k_block_events, per_round - b * k_block_events);
      // Re-stamp the block into this round's window, pinning the first and
      // last event of every round to the exact window boundary seconds.
      for (std::size_t i = 0; i < want; ++i) {
        std::int64_t t = window_start +
                         static_cast<std::int64_t>((b * k_block_events + i) %
                                                   k_seconds_per_day);
        if (b == 0 && i == 0) t = window_start;
        if (b + 1 == blocks_per_round && i + 1 == want) t = window_end - 1;
        block[i].at = sim_time{t};
      }
      // Deliberately uneven spans so ingest boundaries never align with
      // block boundaries: a short head, then the remainder.
      const std::size_t head = 1 + static_cast<std::size_t>(b % 61);
      const std::size_t first = std::min<std::size_t>(head, want);
      dc1.dc.ingest(block.data(), first);
      dc3.dc.ingest(block.data(), first);
      if (want > first) {
        dc1.dc.ingest(block.data() + first, want - first);
        dc3.dc.ingest(block.data() + first, want - first);
      }
      fed += want;
    }
    dc1.close_round(round + 1);
    dc3.close_round(round + 1);
    fed_total += fed;
    ASSERT_EQ(fed, per_round);
  }

  // Zero events lost: every event fed in every round was observed.
  EXPECT_EQ(fed_total, k_total_events);
  EXPECT_EQ(dc1.dc.events_observed(), k_total_events);
  EXPECT_EQ(dc3.dc.events_observed(), k_total_events);

  // The per-round reports: exact, and byte-identical across shard counts.
  ASSERT_EQ(dc1.reports.size(), k_rounds);
  ASSERT_EQ(dc3.reports.size(), k_rounds);
  const std::uint64_t whole_blocks = per_round / k_block_events;
  const std::uint64_t tail = per_round % k_block_events;
  // The truth for the short tail block is a prefix count of the template.
  block_truth prefix;
  {
    block_truth ignored;
    const std::vector<tor::event> scratch = make_block(ignored);
    for (std::size_t i = 0; i < tail; ++i) {
      const auto* s = std::get_if<tor::exit_stream_event>(&scratch[i].body);
      if (s == nullptr) continue;
      ++prefix.total;
      if (!s->is_initial) continue;
      ++prefix.initial;
      switch (s->kind) {
        case tor::address_kind::hostname:
          ++prefix.hostname;
          ++((s->port == 80 || s->port == 443) ? prefix.web : prefix.other);
          break;
        case tor::address_kind::ipv4:
          ++prefix.ipv4;
          break;
        case tor::address_kind::ipv6:
          ++prefix.ipv6;
          break;
      }
    }
  }
  const auto expect_of = [&](std::uint64_t per_block,
                             std::uint64_t tail_count) {
    return whole_blocks * per_block + tail_count;
  };
  std::vector<std::string> names;
  for (const auto& spec : core::default_specs_for("stream_taxonomy")) {
    names.push_back(spec.name);
  }
  for (std::uint32_t round = 0; round < k_rounds; ++round) {
    EXPECT_EQ(dc1.reports[round].values, dc3.reports[round].values)
        << "round " << round << " diverged between 1 and 3 shards";
    const auto& values = dc1.reports[round].values;
    ASSERT_EQ(values.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
      std::uint64_t want = 0;
      if (names[i] == "streams/total") {
        want = expect_of(truth.total, prefix.total);
      } else if (names[i] == "streams/initial") {
        want = expect_of(truth.initial, prefix.initial);
      } else if (names[i] == "streams/initial/hostname") {
        want = expect_of(truth.hostname, prefix.hostname);
      } else if (names[i] == "streams/initial/ipv4") {
        want = expect_of(truth.ipv4, prefix.ipv4);
      } else if (names[i] == "streams/initial/ipv6") {
        want = expect_of(truth.ipv6, prefix.ipv6);
      } else if (names[i] == "streams/initial/hostname/web") {
        want = expect_of(truth.web, prefix.web);
      } else if (names[i] == "streams/initial/hostname/other") {
        want = expect_of(truth.other, prefix.other);
      } else {
        FAIL() << "unexpected counter " << names[i];
      }
      EXPECT_EQ(values[i], want) << "round " << round << " counter "
                                 << names[i];
    }
  }
}

}  // namespace
}  // namespace tormet::privcount
