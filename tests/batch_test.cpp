// Batch-engine layer tests: batch-vs-scalar equivalence for the group and
// ElGamal batch APIs on both backends, thread-pool semantics, worker-count
// determinism of the seeded engine paths, and the encoded shuffle variant.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "src/crypto/batch_engine.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/group.h"
#include "src/crypto/secure_rng.h"
#include "src/crypto/shuffle.h"
#include "src/psc/oblivious_set.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace tormet::crypto {
namespace {

// ---------------------------------------------------------------------------
// thread_pool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  util::thread_pool pool{4};
  constexpr std::size_t n = 10007;  // prime: many ragged chunk edges
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, 64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  util::thread_pool pool{2};
  bool called = false;
  pool.parallel_for(0, 16, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  util::thread_pool pool{3};
  EXPECT_THROW(
      pool.parallel_for(1000, 10,
                        [](std::size_t begin, std::size_t) {
                          if (begin >= 500) throw std::runtime_error{"boom"};
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed batch.
  std::atomic<std::size_t> total{0};
  pool.parallel_for(100, 7, [&](std::size_t begin, std::size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 100u);
}

// ---------------------------------------------------------------------------
// group batch ops vs scalar ops (both backends)
// ---------------------------------------------------------------------------

class GroupBatchTest : public ::testing::TestWithParam<group_backend> {
 protected:
  [[nodiscard]] std::shared_ptr<const group> make() const {
    return make_group(GetParam());
  }
  // Batch sizes that cross the toy comb-table thresholds (8 and 256) while
  // staying affordable on p256.
  [[nodiscard]] std::vector<std::size_t> sizes() const {
    if (GetParam() == group_backend::toy) return {0, 1, 7, 9, 300};
    return {0, 1, 7, 9};
  }
};

void expect_same_elements(const group& g,
                          const std::vector<group_element>& got,
                          const std::vector<group_element>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(g.encode(got[i]), g.encode(want[i])) << "index " << i;
  }
}

TEST_P(GroupBatchTest, MulGeneratorBatchMatchesScalarPath) {
  const auto g = make();
  deterministic_rng rng{1};
  for (const std::size_t n : sizes()) {
    std::vector<scalar> ks;
    for (std::size_t i = 0; i < n; ++i) ks.push_back(g->random_scalar(rng));
    std::vector<group_element> want;
    for (const auto& k : ks) want.push_back(g->mul_generator(k));
    expect_same_elements(*g, g->mul_generator_batch(ks), want);
  }
}

TEST_P(GroupBatchTest, FixedBaseMulBatchMatchesScalarPath) {
  const auto g = make();
  deterministic_rng rng{2};
  const group_element base = g->random_element(rng);
  for (const std::size_t n : sizes()) {
    std::vector<scalar> ks;
    for (std::size_t i = 0; i < n; ++i) ks.push_back(g->random_scalar(rng));
    std::vector<group_element> want;
    for (const auto& k : ks) want.push_back(g->mul(base, k));
    expect_same_elements(*g, g->mul_batch(base, ks), want);
  }
}

TEST_P(GroupBatchTest, FixedScalarMulBatchMatchesScalarPath) {
  const auto g = make();
  deterministic_rng rng{3};
  const scalar k = g->random_scalar(rng);
  for (const std::size_t n : sizes()) {
    std::vector<group_element> pts;
    for (std::size_t i = 0; i < n; ++i) pts.push_back(g->random_element(rng));
    std::vector<group_element> want;
    for (const auto& p : pts) want.push_back(g->mul(p, k));
    expect_same_elements(*g, g->mul_batch(pts, k), want);
  }
}

TEST_P(GroupBatchTest, AddAndSubBatchMatchScalarPath) {
  const auto g = make();
  deterministic_rng rng{4};
  for (const std::size_t n : sizes()) {
    std::vector<group_element> a, b;
    for (std::size_t i = 0; i < n; ++i) {
      a.push_back(g->random_element(rng));
      b.push_back(g->random_element(rng));
    }
    std::vector<group_element> want_add, want_sub;
    for (std::size_t i = 0; i < n; ++i) {
      want_add.push_back(g->add(a[i], b[i]));
      want_sub.push_back(g->sub(a[i], b[i]));
    }
    expect_same_elements(*g, g->add_batch(a, b), want_add);
    expect_same_elements(*g, g->sub_batch(a, b), want_sub);
  }
}

TEST_P(GroupBatchTest, MismatchedSpansRejected) {
  const auto g = make();
  deterministic_rng rng{5};
  const std::vector<group_element> one{g->random_element(rng)};
  const std::vector<group_element> two{g->random_element(rng),
                                       g->random_element(rng)};
  EXPECT_THROW((void)g->add_batch(one, two), precondition_error);
  EXPECT_THROW((void)g->sub_batch(one, two), precondition_error);
}

INSTANTIATE_TEST_SUITE_P(Backends, GroupBatchTest,
                         ::testing::Values(group_backend::toy,
                                           group_backend::p256),
                         [](const auto& info) {
                           return info.param == group_backend::toy ? "Toy"
                                                                   : "P256";
                         });

// ---------------------------------------------------------------------------
// elgamal batch APIs: bit-identical to the serial loops on the same RNG
// stream
// ---------------------------------------------------------------------------

class ElgamalBatchTest : public GroupBatchTest {};

void expect_same_cts(const elgamal& scheme,
                     const std::vector<elgamal_ciphertext>& got,
                     const std::vector<elgamal_ciphertext>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(scheme.encode(got[i]), scheme.encode(want[i])) << "index " << i;
  }
}

TEST_P(ElgamalBatchTest, EncryptZeroBatchBitIdenticalToSerial) {
  const elgamal scheme{make()};
  deterministic_rng rng_a{7}, rng_b{7};
  const auto kp = scheme.generate_keypair(rng_a);
  (void)scheme.generate_keypair(rng_b);  // keep the streams aligned
  for (const std::size_t n : sizes()) {
    std::vector<elgamal_ciphertext> want;
    for (std::size_t i = 0; i < n; ++i) {
      want.push_back(scheme.encrypt_zero(kp.pub, rng_a));
    }
    expect_same_cts(scheme, scheme.encrypt_zero_batch(kp.pub, n, rng_b), want);
  }
}

TEST_P(ElgamalBatchTest, EncryptBitsBatchBitIdenticalToSerial) {
  const elgamal scheme{make()};
  deterministic_rng rng_a{8}, rng_b{8};
  const auto kp = scheme.generate_keypair(rng_a);
  (void)scheme.generate_keypair(rng_b);
  const std::vector<std::uint8_t> bits{1, 0, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1};
  std::vector<elgamal_ciphertext> want;
  for (const auto bit : bits) {
    want.push_back(bit != 0 ? scheme.encrypt_one(kp.pub, rng_a)
                            : scheme.encrypt_zero(kp.pub, rng_a));
  }
  expect_same_cts(scheme, scheme.encrypt_bits_batch(kp.pub, bits, rng_b), want);
}

TEST_P(ElgamalBatchTest, RerandomizeBatchBitIdenticalToSerial) {
  const elgamal scheme{make()};
  deterministic_rng rng_a{9}, rng_b{9};
  const auto kp = scheme.generate_keypair(rng_a);
  (void)scheme.generate_keypair(rng_b);
  for (const std::size_t n : sizes()) {
    // Shared input built from an independent stream so both paths see the
    // same ciphertexts and stay aligned.
    deterministic_rng input_rng{100 + n};
    const auto cts = scheme.encrypt_zero_batch(kp.pub, n, input_rng);
    std::vector<elgamal_ciphertext> want;
    for (const auto& ct : cts) {
      want.push_back(scheme.rerandomize(kp.pub, ct, rng_a));
    }
    expect_same_cts(scheme, scheme.rerandomize_batch(kp.pub, cts, rng_b), want);
  }
}

TEST_P(ElgamalBatchTest, StripShareAndDecryptBatchMatchSerial) {
  const elgamal scheme{make()};
  deterministic_rng rng{10};
  const auto kp = scheme.generate_keypair(rng);
  for (const std::size_t n : sizes()) {
    std::vector<elgamal_ciphertext> cts;
    for (std::size_t i = 0; i < n; ++i) {
      cts.push_back(i % 2 == 0 ? scheme.encrypt_one(kp.pub, rng)
                               : scheme.encrypt_zero(kp.pub, rng));
    }
    std::vector<elgamal_ciphertext> want;
    for (const auto& ct : cts) want.push_back(scheme.strip_share(ct, kp.secret));
    expect_same_cts(scheme, scheme.strip_share_batch(cts, kp.secret), want);

    const std::vector<group_element> plains =
        scheme.decrypt_batch(kp.secret, cts);
    ASSERT_EQ(plains.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(scheme.grp().encode(plains[i]),
                scheme.grp().encode(scheme.decrypt(kp.secret, cts[i])));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ElgamalBatchTest,
                         ::testing::Values(group_backend::toy,
                                           group_backend::p256),
                         [](const auto& info) {
                           return info.param == group_backend::toy ? "Toy"
                                                                   : "P256";
                         });

// ---------------------------------------------------------------------------
// batch_engine: worker-count independence and algebraic correctness
// ---------------------------------------------------------------------------

TEST(BatchEngineTest, SameSeedSameOutputRegardlessOfWorkerCount) {
  const auto group = make_toy_group();
  const elgamal scheme{group};
  deterministic_rng rng{11};
  const auto kp = scheme.generate_keypair(rng);
  const sha256_digest seed = batch_engine::derive_seed(rng);
  const auto input = scheme.encrypt_zero_batch(kp.pub, 1500, rng);
  std::vector<std::uint8_t> bits(1500);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = static_cast<std::uint8_t>(i % 3 == 0);
  }

  // Small shard size so every worker count actually splits the batch.
  const batch_engine reference{group, nullptr, 128};
  const auto want_zero = reference.encrypt_zero_batch(kp.pub, 1500, seed);
  const auto want_bits = reference.encrypt_bits_batch(kp.pub, bits, seed);
  const auto want_rerand = reference.rerandomize_batch(kp.pub, input, seed);

  for (const std::size_t workers : {1u, 2u, 4u}) {
    const auto pool = std::make_shared<util::thread_pool>(workers);
    const batch_engine engine{group, pool, 128};
    expect_same_cts(scheme, engine.encrypt_zero_batch(kp.pub, 1500, seed),
                    want_zero);
    expect_same_cts(scheme, engine.encrypt_bits_batch(kp.pub, bits, seed),
                    want_bits);
    expect_same_cts(scheme, engine.rerandomize_batch(kp.pub, input, seed),
                    want_rerand);
  }
}

TEST(BatchEngineTest, DifferentSeedsDiverge) {
  const auto group = make_toy_group();
  deterministic_rng rng{12};
  const batch_engine engine{group, nullptr, 64};
  const auto kp = engine.scheme().generate_keypair(rng);
  const auto a = engine.encrypt_zero_batch(kp.pub, 10,
                                           batch_engine::derive_seed(rng));
  const auto b = engine.encrypt_zero_batch(kp.pub, 10,
                                           batch_engine::derive_seed(rng));
  EXPECT_NE(engine.scheme().encode(a[0]), engine.scheme().encode(b[0]));
}

TEST(BatchEngineTest, SeededPathsDecryptCorrectly) {
  const auto group = make_toy_group();
  const auto pool = std::make_shared<util::thread_pool>(4);
  const batch_engine engine{group, pool, 64};
  const elgamal& scheme = engine.scheme();
  deterministic_rng rng{13};
  const auto kp = scheme.generate_keypair(rng);
  std::vector<std::uint8_t> bits(700);
  std::size_t ones = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = static_cast<std::uint8_t>(i % 5 == 0);
    ones += bits[i];
  }
  const auto cts =
      engine.encrypt_bits_batch(kp.pub, bits, batch_engine::derive_seed(rng));
  const auto rerand =
      engine.rerandomize_batch(kp.pub, cts, batch_engine::derive_seed(rng));
  const auto stripped = engine.strip_share_batch(rerand, kp.secret);
  std::size_t decrypted_ones = 0;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const bool is_one = !group->is_identity(stripped[i].b);
    EXPECT_EQ(is_one, bits[i] != 0) << "index " << i;
    decrypted_ones += is_one;
  }
  EXPECT_EQ(decrypted_ones, ones);
}

TEST(BatchEngineTest, EmptyAndSingletonBatches) {
  const auto group = make_toy_group();
  const auto pool = std::make_shared<util::thread_pool>(2);
  const batch_engine engine{group, pool};
  const elgamal& scheme = engine.scheme();
  deterministic_rng rng{14};
  const auto kp = scheme.generate_keypair(rng);
  const sha256_digest seed = batch_engine::derive_seed(rng);

  EXPECT_TRUE(engine.encrypt_zero_batch(kp.pub, 0, seed).empty());
  EXPECT_TRUE(engine.rerandomize_batch(kp.pub, {}, seed).empty());
  EXPECT_TRUE(engine.strip_share_batch({}, kp.secret).empty());
  EXPECT_TRUE(scheme.encrypt_zero_batch(kp.pub, 0, rng).empty());
  EXPECT_TRUE(scheme.strip_share_batch({}, kp.secret).empty());

  const auto one = engine.encrypt_zero_batch(kp.pub, 1, seed);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_TRUE(group->is_identity(scheme.decrypt(kp.secret, one[0])));
  const auto rerand = engine.rerandomize_batch(kp.pub, one, seed);
  ASSERT_EQ(rerand.size(), 1u);
  EXPECT_TRUE(group->is_identity(scheme.decrypt(kp.secret, rerand[0])));
}

// ---------------------------------------------------------------------------
// encoded shuffle variant + oblivious set engine init
// ---------------------------------------------------------------------------

TEST(ShuffleEncodedTest, MatchesDigestsAndVerifies) {
  const auto group = make_toy_group();
  const auto pool = std::make_shared<util::thread_pool>(4);
  const batch_engine engine{group, pool, 64};
  const elgamal& scheme = engine.scheme();
  deterministic_rng rng{15};
  const auto kp = scheme.generate_keypair(rng);

  std::vector<elgamal_ciphertext> input;
  for (std::size_t i = 0; i < 200; ++i) {
    input.push_back(i % 4 == 0 ? scheme.encrypt_one(kp.pub, rng)
                               : scheme.encrypt_zero(kp.pub, rng));
  }
  const std::vector<byte_buffer> input_encoded = scheme.encode_batch(input);

  shuffle_transcript transcript;
  shuffle_opening opening;
  const shuffle_result result = shuffle_and_rerandomize_encoded(
      engine, kp.pub, input, input_encoded, rng, transcript, &opening);

  ASSERT_EQ(result.output.size(), input.size());
  ASSERT_EQ(result.output_encoded.size(), input.size());
  for (std::size_t i = 0; i < result.output.size(); ++i) {
    EXPECT_EQ(result.output_encoded[i], scheme.encode(result.output[i]));
  }
  EXPECT_EQ(transcript.input_digest, digest_ciphertexts(scheme, input));
  EXPECT_EQ(transcript.output_digest,
            digest_ciphertexts(scheme, result.output));
  EXPECT_EQ(transcript.input_digest,
            digest_encoded_ciphertexts(input_encoded));

  EXPECT_TRUE(verify_shuffle_structure(scheme, input, result.output, transcript));
  EXPECT_TRUE(verify_shuffle_opening(scheme, kp.secret, input, result.output,
                                     transcript, opening));
}

TEST(ShuffleEncodedTest, PermutationCommitmentBindsPermutation) {
  const byte_buffer seed(32, 0xab);
  const std::vector<std::uint32_t> perm{0, 1, 2, 3};
  const std::vector<std::uint32_t> swapped{0, 1, 3, 2};
  EXPECT_EQ(permutation_commitment(seed, perm),
            permutation_commitment(seed, perm));
  EXPECT_NE(permutation_commitment(seed, perm),
            permutation_commitment(seed, swapped));
  const byte_buffer other_seed(32, 0xac);
  EXPECT_NE(permutation_commitment(seed, perm),
            permutation_commitment(other_seed, perm));
}

TEST(ObliviousSetBatchTest, EngineInitMatchesSerialSemantics) {
  const auto group = make_toy_group();
  const auto pool = std::make_shared<util::thread_pool>(4);
  const batch_engine engine{group, pool, 64};
  const elgamal& scheme = engine.scheme();
  deterministic_rng rng{16};
  const auto kp = scheme.generate_keypair(rng);

  psc::oblivious_set set{engine, kp.pub, 512, rng};
  ASSERT_EQ(set.bins(), 512u);
  // Every bin decrypts to zero before any insert.
  for (const auto& slot : set.slots()) {
    EXPECT_TRUE(group->is_identity(scheme.decrypt(kp.secret, slot)));
  }
  set.insert(as_bytes("client-ip-1"), rng);
  std::size_t ones = 0;
  for (const auto& slot : set.slots()) {
    ones += !group->is_identity(scheme.decrypt(kp.secret, slot));
  }
  EXPECT_EQ(ones, 1u);
}

}  // namespace
}  // namespace tormet::crypto
