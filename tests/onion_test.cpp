// Onion addressing + HSDir ring tests: v2-style address derivation,
// descriptor ring placement, replication, and responsibility fractions.
#include <gtest/gtest.h>

#include <set>

#include "src/tor/hsdir_ring.h"
#include "src/tor/onion.h"
#include "src/util/bytes.h"
#include "src/util/check.h"

namespace tormet::tor {
namespace {

TEST(OnionAddressTest, DerivationIsDeterministicAndValid) {
  const onion_address a = derive_onion_address(as_bytes("key-material-1"));
  const onion_address b = derive_onion_address(as_bytes("key-material-1"));
  const onion_address c = derive_onion_address(as_bytes("key-material-2"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(is_valid_onion_address(a.value));
  EXPECT_TRUE(a.value.ends_with(".onion"));
  EXPECT_EQ(a.value.size(), 16u + 6u);
}

TEST(OnionAddressTest, ValidationRejectsMalformed) {
  EXPECT_FALSE(is_valid_onion_address(""));
  EXPECT_FALSE(is_valid_onion_address("tooshort.onion"));
  EXPECT_FALSE(is_valid_onion_address("UPPERCASEADDRXYZ.onion"));  // not base32 lower
  EXPECT_FALSE(is_valid_onion_address("abcdefghijklmnop.com"));
  EXPECT_FALSE(is_valid_onion_address("abcdefghijklmn0p.onion"));  // '0' invalid
  EXPECT_TRUE(is_valid_onion_address("abcdefghijklmn2p.onion"));
}

TEST(OnionAddressTest, RingPositionVariesByReplicaAndPeriod) {
  const onion_address addr = derive_onion_address(as_bytes("svc"));
  const std::uint64_t p0 = descriptor_ring_position(addr, 0, 1);
  const std::uint64_t p1 = descriptor_ring_position(addr, 1, 1);
  const std::uint64_t p0_next = descriptor_ring_position(addr, 0, 2);
  EXPECT_NE(p0, p1);
  EXPECT_NE(p0, p0_next);
  EXPECT_EQ(p0, descriptor_ring_position(addr, 0, 1));
  EXPECT_THROW((void)descriptor_ring_position(addr, 5, 1),
               tormet::precondition_error);
}

TEST(V3BlindingTest, IdsAreDeterministicOneWayAndUnlinkable) {
  const onion_address a = derive_onion_address(as_bytes("svc-a"));
  const onion_address b = derive_onion_address(as_bytes("svc-b"));
  // Deterministic within a period.
  EXPECT_EQ(v3_blinded_descriptor_id(a, 5), v3_blinded_descriptor_id(a, 5));
  // Distinct services -> distinct ids.
  EXPECT_NE(v3_blinded_descriptor_id(a, 5), v3_blinded_descriptor_id(b, 5));
  // The same service is unlinkable across periods.
  EXPECT_NE(v3_blinded_descriptor_id(a, 5), v3_blinded_descriptor_id(a, 6));
  // The id does not contain the address (one-way derivation).
  EXPECT_EQ(v3_blinded_descriptor_id(a, 5).find(a.value), std::string::npos);
}

TEST(V3BlindingTest, CrossPeriodUniqueCountingOvercounts) {
  // The reason Table 6 is v2-only: counting unique *blinded* ids across p
  // periods counts every service p times, so a PSC-style census cannot
  // estimate the service population.
  std::set<std::string> v2_uniques;
  std::set<std::string> v3_uniques;
  constexpr int services = 50;
  constexpr int periods = 3;
  for (int s = 0; s < services; ++s) {
    const onion_address addr =
        derive_onion_address(as_bytes("svc" + std::to_string(s)));
    for (int p = 0; p < periods; ++p) {
      v2_uniques.insert(addr.value);  // v2: the address itself is visible
      v3_uniques.insert(v3_blinded_descriptor_id(addr, p));
    }
  }
  EXPECT_EQ(v2_uniques.size(), services);
  EXPECT_EQ(v3_uniques.size(), services * periods);
}

TEST(V3BlindingTest, RingPositionsVaryByReplicaAndPeriod) {
  const onion_address a = derive_onion_address(as_bytes("svc-a"));
  EXPECT_NE(v3_blinded_ring_position(a, 0, 1), v3_blinded_ring_position(a, 1, 1));
  EXPECT_NE(v3_blinded_ring_position(a, 0, 1), v3_blinded_ring_position(a, 0, 2));
  EXPECT_THROW((void)v3_blinded_ring_position(a, 9, 1),
               tormet::precondition_error);
}

class HsdirRingTest : public ::testing::Test {
 protected:
  HsdirRingTest() {
    consensus_params params;
    params.num_relays = 500;
    params.hsdir_fraction = 0.5;
    params.seed = 11;
    net_ = std::make_unique<consensus>(make_synthetic_consensus(params));
    ring_ = std::make_unique<hsdir_ring>(*net_);
  }
  std::unique_ptr<consensus> net_;
  std::unique_ptr<hsdir_ring> ring_;
};

TEST_F(HsdirRingTest, ResponsibleSetSizeAndFlags) {
  const onion_address addr = derive_onion_address(as_bytes("svc-a"));
  const std::vector<relay_id> dirs = ring_->responsible_hsdirs(addr, 0);
  EXPECT_LE(dirs.size(), static_cast<std::size_t>(k_responsible_hsdirs));
  EXPECT_GE(dirs.size(), static_cast<std::size_t>(k_descriptor_spread));
  std::set<relay_id> unique{dirs.begin(), dirs.end()};
  EXPECT_EQ(unique.size(), dirs.size()) << "responsible set has duplicates";
  for (const auto id : dirs) {
    EXPECT_TRUE(net_->relay_at(id).flags.hsdir);
  }
}

TEST_F(HsdirRingTest, PlacementIsDeterministic) {
  const onion_address addr = derive_onion_address(as_bytes("svc-b"));
  EXPECT_EQ(ring_->responsible_hsdirs(addr, 3), ring_->responsible_hsdirs(addr, 3));
  EXPECT_NE(ring_->responsible_hsdirs(addr, 3), ring_->responsible_hsdirs(addr, 4));
}

TEST_F(HsdirRingTest, DifferentAddressesSpreadOverTheRing) {
  std::set<relay_id> seen;
  for (int i = 0; i < 200; ++i) {
    const onion_address addr =
        derive_onion_address(as_bytes("svc" + std::to_string(i)));
    for (const auto id : ring_->responsible_hsdirs(addr, 0)) seen.insert(id);
  }
  // 200 addresses x ~6 slots over ~250 HSDirs: most of the ring is touched.
  EXPECT_GT(seen.size(), ring_->size() / 2);
}

TEST_F(HsdirRingTest, ResponsibilityFractionScalesWithSetSize) {
  const std::vector<relay_id> hsdirs = net_->eligible(position::hsdir);
  ASSERT_GE(hsdirs.size(), 20u);
  std::set<relay_id> small{hsdirs.begin(), hsdirs.begin() + 5};
  std::set<relay_id> large{hsdirs.begin(), hsdirs.begin() + 20};
  const double f_small = ring_->responsibility_fraction(small, 0, 4000);
  const double f_large = ring_->responsibility_fraction(large, 0, 4000);
  EXPECT_GT(f_small, 0.0);
  EXPECT_GT(f_large, f_small);
  // Ring positions are uniform hashes: fraction ~ |set| / ring size.
  EXPECT_NEAR(f_small, 5.0 / static_cast<double>(ring_->size()), 0.02);
  EXPECT_NEAR(f_large, 20.0 / static_cast<double>(ring_->size()), 0.03);
}

TEST_F(HsdirRingTest, FullSetOwnsEverything) {
  const std::vector<relay_id> hsdirs = net_->eligible(position::hsdir);
  const std::set<relay_id> all{hsdirs.begin(), hsdirs.end()};
  EXPECT_DOUBLE_EQ(ring_->responsibility_fraction(all, 0, 500), 1.0);
}

}  // namespace
}  // namespace tormet::tor
