// Unit tests for the wire codec: roundtrips, bounds checking, malformed
// input rejection.
#include <gtest/gtest.h>

#include <limits>

#include "src/net/wire.h"

namespace tormet::net {
namespace {

TEST(WireTest, ScalarRoundTrip) {
  wire_writer w;
  w.write_u8(0xab);
  w.write_u16(0xbeef);
  w.write_u32(0xdeadbeef);
  w.write_u64(0x0123456789abcdefULL);
  w.write_i64(-42);
  w.write_f64(3.14159);
  const byte_buffer buf = w.take();

  wire_reader r{buf};
  EXPECT_EQ(r.read_u8(), 0xab);
  EXPECT_EQ(r.read_u16(), 0xbeef);
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_TRUE(r.at_end());
}

TEST(WireTest, VarintRoundTrip) {
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 16383, 16384,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const auto v : values) {
    wire_writer w;
    w.write_varint(v);
    wire_reader r{w.data()};
    EXPECT_EQ(r.read_varint(), v) << v;
    EXPECT_TRUE(r.at_end());
  }
}

TEST(WireTest, VarintCompactness) {
  wire_writer w;
  w.write_varint(5);
  EXPECT_EQ(w.data().size(), 1u);
  wire_writer w2;
  w2.write_varint(300);
  EXPECT_EQ(w2.data().size(), 2u);
}

TEST(WireTest, BytesAndStringRoundTrip) {
  wire_writer w;
  const byte_buffer blob{1, 2, 3, 4, 5};
  w.write_bytes(blob);
  w.write_string("hello world");
  w.write_string("");
  const byte_buffer buf = w.take();

  wire_reader r{buf};
  EXPECT_EQ(r.read_bytes(), blob);
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_NO_THROW(r.expect_end());
}

TEST(WireTest, TruncatedInputThrows) {
  wire_writer w;
  w.write_u64(7);
  byte_buffer buf = w.take();
  buf.pop_back();
  wire_reader r{buf};
  EXPECT_THROW((void)r.read_u64(), wire_error);
}

TEST(WireTest, ByteFieldLongerThanInputThrows) {
  wire_writer w;
  w.write_varint(1000);  // claims 1000 bytes follow
  w.write_u8(1);
  wire_reader r{w.data()};
  EXPECT_THROW((void)r.read_bytes(), wire_error);
}

TEST(WireTest, TrailingBytesDetected) {
  wire_writer w;
  w.write_u8(1);
  w.write_u8(2);
  wire_reader r{w.data()};
  (void)r.read_u8();
  EXPECT_THROW(r.expect_end(), wire_error);
  (void)r.read_u8();
  EXPECT_NO_THROW(r.expect_end());
}

TEST(WireTest, OverlongVarintThrows) {
  // 11 continuation bytes cannot encode a u64.
  byte_buffer buf(11, 0xff);
  buf.push_back(0x01);
  wire_reader r{buf};
  EXPECT_THROW((void)r.read_varint(), wire_error);
}

TEST(WireTest, EmptyReader) {
  wire_reader r{byte_view{}};
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW((void)r.read_u8(), wire_error);
}

}  // namespace
}  // namespace tormet::net
