// Transport tests: deterministic inproc delivery + failure injection, real
// TCP loopback framing (chunked multi-megabyte frames, reconnect after a
// mid-stream disconnect, send-queue backpressure), explicit run_until
// completion, and the two-fabric distributed mode.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "src/net/inproc.h"
#include "src/net/tcp.h"
#include "src/net/wire.h"

namespace tormet::net {
namespace {

TEST(InprocTest, DeliversInFifoOrder) {
  inproc_net bus;
  std::vector<int> received;
  bus.register_node(1, [&](const message& m) {
    received.push_back(static_cast<int>(m.payload[0]));
  });
  for (int i = 0; i < 5; ++i) {
    bus.send(message{0, 1, 7, byte_buffer{static_cast<std::uint8_t>(i)}});
  }
  EXPECT_EQ(bus.run_until_quiescent(), 5u);
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(InprocTest, HandlersMaySendDuringDelivery) {
  inproc_net bus;
  int hops = 0;
  bus.register_node(1, [&](const message& m) {
    ++hops;
    if (m.payload[0] < 3) {
      bus.send(message{1, 2, 0, byte_buffer{m.payload[0]}});
    }
  });
  bus.register_node(2, [&](const message& m) {
    ++hops;
    bus.send(message{2, 1, 0,
                     byte_buffer{static_cast<std::uint8_t>(m.payload[0] + 1)}});
  });
  bus.send(message{0, 1, 0, byte_buffer{0}});
  bus.run_until_quiescent();
  EXPECT_EQ(hops, 7);  // 1,2,1,2,1,2,1 until payload reaches 3
}

TEST(InprocTest, PartitionDropsBothDirections) {
  inproc_net bus;
  int received = 0;
  bus.register_node(1, [&](const message&) { ++received; });
  bus.register_node(2, [&](const message&) { ++received; });
  bus.partition_node(2);
  bus.send(message{1, 2, 0, {}});
  bus.send(message{2, 1, 0, {}});
  bus.send(message{0, 1, 0, {}});
  bus.run_until_quiescent();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(bus.dropped_count(), 2u);

  bus.heal_node(2);
  bus.send(message{1, 2, 0, {}});
  bus.run_until_quiescent();
  EXPECT_EQ(received, 2);
}

TEST(InprocTest, UnknownDestinationCountsAsDropped) {
  inproc_net bus;
  bus.send(message{0, 99, 0, {}});
  bus.run_until_quiescent();
  EXPECT_EQ(bus.dropped_count(), 1u);
}

TEST(InprocTest, RandomDropIsDeterministic) {
  const auto run = [](std::uint64_t seed) {
    inproc_net bus;
    int received = 0;
    bus.register_node(1, [&](const message&) { ++received; });
    bus.set_drop_probability(0.5, seed);
    for (int i = 0; i < 100; ++i) bus.send(message{0, 1, 0, {}});
    bus.run_until_quiescent();
    return received;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_GT(run(9), 20);
  EXPECT_LT(run(9), 80);
}

TEST(TcpTest, RoundTripBetweenNodes) {
  tcp_net bus;
  std::vector<std::string> got;
  bus.register_node(1, [&](const message& m) {
    got.push_back(std::string{m.payload.begin(), m.payload.end()});
    if (got.back() == "ping") {
      bus.send(message{1, 2, 5, byte_buffer{'p', 'o', 'n', 'g'}});
    }
  });
  std::string pong;
  bus.register_node(2, [&](const message& m) {
    pong.assign(m.payload.begin(), m.payload.end());
  });

  bus.send(message{2, 1, 5, byte_buffer{'p', 'i', 'n', 'g'}});
  bus.run_until_quiescent();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "ping");
  EXPECT_EQ(pong, "pong");
}

TEST(TcpTest, LargeMessageSurvivesFraming) {
  tcp_net bus;
  byte_buffer received;
  bus.register_node(1, [&](const message& m) { received = m.payload; });
  byte_buffer big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  }
  bus.register_node(2, [](const message&) {});
  bus.send(message{2, 1, 9, big});
  bus.run_until_quiescent();
  EXPECT_EQ(received, big);
}

TEST(TcpTest, ManySmallMessagesKeepOrderPerSender) {
  tcp_net bus;
  std::vector<int> seq;
  bus.register_node(1, [&](const message& m) {
    seq.push_back(static_cast<int>(m.payload[0]));
  });
  bus.register_node(2, [](const message&) {});
  for (int i = 0; i < 50; ++i) {
    bus.send(message{2, 1, 0, byte_buffer{static_cast<std::uint8_t>(i)}});
  }
  bus.run_until_quiescent();
  ASSERT_EQ(seq.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(seq[static_cast<std::size_t>(i)], i);
}

TEST(TcpTest, PortsAreDistinct) {
  tcp_net bus;
  bus.register_node(1, [](const message&) {});
  bus.register_node(2, [](const message&) {});
  EXPECT_NE(bus.port_of(1), bus.port_of(2));
  EXPECT_GT(bus.port_of(1), 0);
}

[[nodiscard]] byte_buffer patterned_payload(std::size_t size) {
  byte_buffer out(size);
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  }
  return out;
}

TEST(TcpTest, MultiMegabyteMessageIsChunkedAndReassembled) {
  tcp_options opts;
  opts.max_chunk_bytes = 256 * 1024;
  tcp_net bus{opts};
  byte_buffer received;
  bus.register_node(1, [&](const message& m) { received = m.payload; });
  bus.register_node(2, [](const message&) {});

  const byte_buffer big = patterned_payload(5u << 20);  // 5 MiB > 4 MiB
  bus.send(message{2, 1, 9, big});
  bus.run_until_quiescent();
  EXPECT_EQ(received, big);
  // ceil(5 MiB / 256 KiB) = 20 chunks (plus framing of the wire header).
  EXPECT_GE(bus.stats().chunks_sent, 20u);
  EXPECT_EQ(bus.stats().messages_received, 1u);
}

TEST(TcpTest, ReconnectsAfterMidStreamDisconnect) {
  tcp_net bus;
  std::vector<std::string> got;
  bus.register_node(1, [&](const message& m) {
    got.emplace_back(m.payload.begin(), m.payload.end());
  });
  bus.register_node(2, [](const message&) {});

  bus.send(message{2, 1, 0, byte_buffer{'a'}});
  bus.run_until_quiescent();
  ASSERT_EQ(got.size(), 1u);

  // Kill the established connection; the next send must transparently
  // reconnect and deliver.
  bus.drop_connections_to(1);
  bus.send(message{2, 1, 0, byte_buffer{'b'}});
  bus.run_until_quiescent();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1], "b");
}

TEST(TcpTest, LargeMessageSurvivesConnectionCutDuringTransfer) {
  // Cut the link while a multi-megabyte message may be mid-write: the
  // receiver discards any partial frame assembly and the writer re-sends
  // the whole message on a fresh connection — exactly one copy arrives.
  tcp_options opts;
  opts.max_chunk_bytes = 64 * 1024;
  tcp_net bus{opts};
  std::atomic<int> deliveries{0};
  byte_buffer received;
  bus.register_node(1, [&](const message& m) {
    ++deliveries;
    received = m.payload;
  });
  bus.register_node(2, [](const message&) {});

  const byte_buffer big = patterned_payload(8u << 20);
  std::thread sender{[&] { bus.send(message{2, 1, 3, big}); }};
  bus.drop_connections_to(1);  // races the write on purpose
  sender.join();
  bus.run_until_quiescent();
  EXPECT_EQ(deliveries.load(), 1);
  EXPECT_EQ(received, big);
}

/// Reserves a currently free loopback port (bind 0, read it back, close).
[[nodiscard]] std::uint16_t free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  socklen_t len = sizeof addr;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(TcpTest, BackpressureBoundsTheSendQueueOnASlowReader) {
  // Distributed-mode fabric whose peer is not up yet (the slowest possible
  // reader): the writer blocks in connect retry, sends pile into the
  // bounded queue, and the producer thread stalls (backpressure) instead
  // of buffering without limit. Once the receiver comes up everything
  // drains.
  std::map<node_id, tcp_endpoint> map{
      {1, {"127.0.0.1", free_port()}},
      {2, {"127.0.0.1", free_port()}},
  };

  tcp_options opts;
  opts.send_queue_limit_bytes = 64 * 1024;
  opts.connect_deadline_ms = 20'000;
  tcp_net sender{map, opts};

  const std::size_t n_messages = 24;
  const byte_buffer chunk = patterned_payload(32 * 1024);
  std::atomic<bool> all_sent{false};
  std::thread producer{[&] {
    for (std::size_t i = 0; i < n_messages; ++i) {
      sender.send(message{2, 1, 0, chunk});
    }
    all_sent = true;
  }};

  std::this_thread::sleep_for(std::chrono::milliseconds{200});
  EXPECT_FALSE(all_sent.load());  // backpressure held the producer back
  EXPECT_LE(sender.stats().peak_queue_bytes,
            opts.send_queue_limit_bytes + chunk.size() + 64);

  tcp_net receiver{map};
  std::atomic<std::size_t> got{0};
  receiver.register_node(1, [&](const message&) { ++got; });
  receiver.run_until([&] { return got.load() == n_messages; }, 30'000);
  producer.join();
  EXPECT_TRUE(all_sent.load());
  EXPECT_EQ(got.load(), n_messages);
  sender.flush_sends();
}

TEST(TcpTest, SixtyFourChannelsMultiplexThroughOneEventLoop) {
  // One fabric = one epoll loop. 64 sender nodes each hold their own
  // outbound channel to one sink, so the loop multiplexes 64 outbound
  // connections, 64 inbound connections, and 65 listen sockets at once.
  // Per-channel FIFO order must hold under the interleaving.
  tcp_net bus;
  constexpr node_id k_sink = 1000;
  constexpr std::uint32_t k_senders = 64;
  constexpr std::uint8_t k_per_sender = 10;
  std::map<std::uint32_t, std::vector<std::uint8_t>> got;
  std::atomic<std::size_t> total{0};
  bus.register_node(k_sink, [&](const message& m) {
    got[m.from].push_back(m.payload[0]);
    ++total;
  });
  for (std::uint32_t i = 1; i <= k_senders; ++i) {
    bus.register_node(i, [](const message&) {});
  }
  for (std::uint8_t j = 0; j < k_per_sender; ++j) {
    for (std::uint32_t i = 1; i <= k_senders; ++i) {
      bus.send(message{i, k_sink, 0, byte_buffer{j}});
    }
  }
  bus.run_until([&] { return total.load() == k_senders * k_per_sender; },
                30'000);
  ASSERT_EQ(got.size(), k_senders);
  for (std::uint32_t i = 1; i <= k_senders; ++i) {
    ASSERT_EQ(got[i].size(), k_per_sender) << "sender " << i;
    for (std::uint8_t j = 0; j < k_per_sender; ++j) {
      EXPECT_EQ(got[i][j], j) << "sender " << i << " out of order";
    }
  }
}

TEST(TcpTest, HugeSingleChunkResumesAcrossPartialWrites) {
  // A 6 MiB body in ONE chunk cannot fit any socket buffer: the non-
  // blocking writer necessarily hits EAGAIN mid-frame and must resume from
  // its wire offset — byte-exact — across many readiness cycles.
  tcp_options opts;
  opts.max_chunk_bytes = 8u << 20;
  tcp_net bus{opts};
  byte_buffer received;
  bus.register_node(1, [&](const message& m) { received = m.payload; });
  bus.register_node(2, [](const message&) {});

  const byte_buffer big = patterned_payload(6u << 20);  // 6 MiB > 4 MiB
  bus.send(message{2, 1, 9, big});
  bus.run_until_quiescent();
  EXPECT_EQ(received, big);
  EXPECT_EQ(bus.stats().messages_received, 1u);
}

TEST(TcpTest, ReconnectUnderLoadStaysExactlyOnce) {
  // Cut the connection repeatedly while a stream of chunked messages is in
  // flight: the writer re-sends whole messages it cannot prove delivered,
  // and the receiver's (epoch, seq) dedup must collapse every resend —
  // each message arrives exactly once, intact, in order.
  tcp_options opts;
  opts.max_chunk_bytes = 32 * 1024;
  tcp_net bus{opts};
  constexpr std::uint8_t k_messages = 40;
  std::vector<std::uint8_t> order;
  std::atomic<std::size_t> deliveries{0};
  std::atomic<bool> corrupt{false};
  bus.register_node(1, [&](const message& m) {
    const std::uint8_t index = m.payload[0];
    order.push_back(index);
    ++deliveries;
    const byte_buffer expected = patterned_payload(96 * 1024);
    for (std::size_t i = 1; i < m.payload.size(); ++i) {
      if (m.payload[i] != expected[i]) corrupt = true;
    }
  });
  bus.register_node(2, [](const message&) {});

  std::thread sender{[&] {
    for (std::uint8_t i = 0; i < k_messages; ++i) {
      byte_buffer payload = patterned_payload(96 * 1024);
      payload[0] = i;  // message identity for the exactly-once check
      bus.send(message{2, 1, 3, payload});
    }
  }};
  for (int cut = 0; cut < 8; ++cut) {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    bus.drop_connections_to(1);  // races the writes on purpose
  }
  sender.join();
  bus.run_until_quiescent();
  EXPECT_EQ(deliveries.load(), k_messages);  // no loss AND no duplicates
  EXPECT_FALSE(corrupt.load());
  ASSERT_EQ(order.size(), k_messages);
  for (std::uint8_t i = 0; i < k_messages; ++i) EXPECT_EQ(order[i], i);
}

TEST(TcpTest, StalledReaderExertsBackpressureWithoutUnboundedBuffering) {
  // The peer is up and connected but never reads (a stalled reader, not a
  // dead one): the kernel buffers fill, the writer parks on EAGAIN, the
  // bounded send queue fills, and the producer thread stalls instead of
  // buffering without limit. When the reader finally drains, everything
  // flows.
  const std::uint16_t stalled_port = free_port();
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(stalled_port);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);

  std::map<node_id, tcp_endpoint> map{
      {1, {"127.0.0.1", stalled_port}},
      {2, {"127.0.0.1", free_port()}},
  };
  tcp_options opts;
  opts.send_queue_limit_bytes = 64 * 1024;
  tcp_net sender{map, opts};

  std::atomic<int> accepted_fd{-1};
  std::thread acceptor{[&] {
    accepted_fd = ::accept(listen_fd, nullptr, nullptr);  // then stall
  }};

  // Enough data to overrun the kernel's socket buffers (which absorb the
  // first few MiB invisibly) and reach the bounded user-space queue.
  const std::size_t n_messages = 128;
  const byte_buffer chunk = patterned_payload(256 * 1024);
  std::atomic<bool> all_sent{false};
  std::thread producer{[&] {
    for (std::size_t i = 0; i < n_messages; ++i) {
      sender.send(message{2, 1, 0, chunk});
    }
    all_sent = true;
  }};

  std::this_thread::sleep_for(std::chrono::milliseconds{300});
  EXPECT_FALSE(all_sent.load());  // the stalled reader held the producer back
  EXPECT_LE(sender.stats().peak_queue_bytes,
            opts.send_queue_limit_bytes + chunk.size() + 64);

  // Drain: read and discard everything the writer has to say.
  acceptor.join();
  ASSERT_GE(accepted_fd.load(), 0);
  std::thread drainer{[&] {
    std::uint8_t sink[64 * 1024];
    while (::recv(accepted_fd.load(), sink, sizeof sink, 0) > 0) {
    }
  }};
  producer.join();
  EXPECT_TRUE(all_sent.load());
  sender.flush_sends();
  ::shutdown(accepted_fd.load(), SHUT_RDWR);
  drainer.join();
  ::close(accepted_fd.load());
  ::close(listen_fd);
}

TEST(TcpTest, RunUntilDeliversUntilPredicateHolds) {
  tcp_net bus;
  int count = 0;
  bus.register_node(1, [&](const message&) { ++count; });
  bus.register_node(2, [](const message&) {});
  for (int i = 0; i < 5; ++i) bus.send(message{2, 1, 0, byte_buffer{1}});
  bus.run_until([&] { return count >= 5; }, 10'000);
  EXPECT_EQ(count, 5);
}

TEST(TcpTest, RunUntilThrowsOnDeadline) {
  tcp_net bus;
  bus.register_node(1, [](const message&) {});
  EXPECT_THROW(bus.run_until([] { return false; }, 50), transport_error);
}

TEST(TcpTest, DistributedModeConnectsTwoFabrics) {
  // Two fabrics in one process stand in for two OS processes: each hosts
  // one node of a shared peer map and they talk over real sockets with
  // explicit run_until completion.
  std::map<node_id, tcp_endpoint> map{
      {1, {"127.0.0.1", free_port()}},
      {2, {"127.0.0.1", free_port()}},
  };

  tcp_net fabric1{map};
  tcp_net fabric2{map};
  std::string seen;
  fabric1.register_node(1, [&](const message& m) {
    seen.assign(m.payload.begin(), m.payload.end());
    fabric1.send(message{1, 2, 7, byte_buffer{'o', 'k'}});
  });
  std::string reply;
  fabric2.register_node(2, [&](const message& m) {
    reply.assign(m.payload.begin(), m.payload.end());
  });

  fabric2.send(message{2, 1, 7, byte_buffer{'h', 'i'}});
  fabric1.run_until([&] { return !seen.empty(); }, 15'000);
  fabric2.run_until([&] { return !reply.empty(); }, 15'000);
  EXPECT_EQ(seen, "hi");
  EXPECT_EQ(reply, "ok");
}

// -- exactly-once dedup across reconnects ------------------------------------
//
// These tests play the role of a (re)connecting peer writer at the raw
// socket level: each frame carries the writer's epoch and per-channel
// sequence number exactly as tcp_net's own writer emits them, so duplicate
// and stale resends can be injected deterministically. Raw-injected frames
// bypass the fabric's in-flight accounting, so completion is always a
// run_until(count) predicate — never run_until_quiescent().

/// One complete wire frame ([u8 flags=final][u32 len le][body]) for `msg`
/// stamped with `epoch`/`seq` — byte-identical to tcp_net's writer output
/// for a single-chunk message.
[[nodiscard]] byte_buffer raw_frame(const message& msg, std::uint64_t epoch,
                                    std::uint64_t seq) {
  wire_writer w;
  w.write_u64(epoch);
  w.write_u64(seq);
  w.write_u32(msg.from);
  w.write_u32(msg.to);
  w.write_u16(msg.type);
  w.write_bytes(msg.payload);
  const byte_buffer body = w.take();
  byte_buffer out;
  out.push_back(1);  // flags: final chunk
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((body.size() >> (8 * i)) & 0xff));
  }
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

class raw_peer {
 public:
  explicit raw_peer(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof addr),
              0);
  }
  ~raw_peer() {
    if (fd_ >= 0) ::close(fd_);
  }
  void write(const byte_buffer& bytes) const {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

 private:
  int fd_ = -1;
};

TEST(TcpDedupTest, DuplicateAndOutOfOrderResendsAreDropped) {
  tcp_net bus;
  std::vector<char> got;
  bus.register_node(1, [&](const message& m) {
    got.push_back(static_cast<char>(m.payload[0]));
  });

  const auto frame = [](char c, std::uint64_t seq) {
    return raw_frame(message{9, 1, 0, byte_buffer{static_cast<std::uint8_t>(c)}},
                     /*epoch=*/0x5157, seq);
  };
  raw_peer peer{bus.port_of(1)};
  peer.write(frame('a', 1));
  peer.write(frame('a', 1));  // duplicate resend of a delivered message
  peer.write(frame('c', 3));
  peer.write(frame('b', 2));  // out-of-order resend: below the high-water mark
  peer.write(frame('d', 4));

  bus.run_until([&] { return got.size() >= 3; }, 10'000);
  EXPECT_EQ(got, (std::vector<char>{'a', 'c', 'd'}));
  EXPECT_EQ(bus.stats().duplicates_dropped, 2u);
}

TEST(TcpDedupTest, DedupStateSurvivesMultipleReconnects) {
  tcp_net bus;
  std::vector<char> got;
  bus.register_node(1, [&](const message& m) {
    got.push_back(static_cast<char>(m.payload[0]));
  });
  const auto frame = [](char c, std::uint64_t epoch, std::uint64_t seq) {
    return raw_frame(message{9, 1, 0, byte_buffer{static_cast<std::uint8_t>(c)}},
                     epoch, seq);
  };

  // Connection 1: a surviving writer delivers seq 1-2, then the link cuts.
  {
    raw_peer conn{bus.port_of(1)};
    conn.write(frame('a', 0xE1, 1));
    conn.write(frame('b', 0xE1, 2));
  }
  bus.run_until([&] { return got.size() >= 2; }, 10'000);

  // Connection 2 (same epoch = same writer after reconnect): the writer
  // cannot know whether seq 2 landed before the cut, so it resends it —
  // the receiver's dedup state must span connections and drop it.
  {
    raw_peer conn{bus.port_of(1)};
    conn.write(frame('b', 0xE1, 2));
    conn.write(frame('c', 0xE1, 3));
  }
  bus.run_until([&] { return got.size() >= 3; }, 10'000);

  // Connection 3, again resending the tail after another cut.
  {
    raw_peer conn{bus.port_of(1)};
    conn.write(frame('c', 0xE1, 3));
    conn.write(frame('d', 0xE1, 4));
  }
  bus.run_until([&] { return got.size() >= 4; }, 10'000);

  // A *restarted* writer gets a fresh epoch: its seq 1 must not collide
  // with the dead incarnation's dedup state.
  {
    raw_peer conn{bus.port_of(1)};
    conn.write(frame('x', 0xE2, 1));
  }
  bus.run_until([&] { return got.size() >= 5; }, 10'000);

  EXPECT_EQ(got, (std::vector<char>{'a', 'b', 'c', 'd', 'x'}));
  EXPECT_EQ(bus.stats().duplicates_dropped, 2u);
}

TEST(TcpTest, RepairBrokenReArmsAChannelAfterPeerRestart) {
  // A writer that exhausts its connect deadline marks the channel broken.
  // Without repair_broken every later send fails; with it, the next send
  // retries from scratch — the durable deployments' "peer is restarting"
  // mode.
  std::map<node_id, tcp_endpoint> map{
      {1, {"127.0.0.1", free_port()}},
      {2, {"127.0.0.1", free_port()}},
  };
  tcp_options opts;
  opts.connect_deadline_ms = 200;  // fail fast: the peer is not up
  opts.repair_broken = true;
  tcp_net sender{map, opts};

  sender.send(message{2, 1, 0, byte_buffer{'l', 'o', 's', 't'}});
  sender.flush_sends();  // writer gives up; the queued message is dropped

  // Peer comes up (the supervisor restarted it); the channel re-arms.
  tcp_net receiver{map};
  std::vector<std::string> got;
  receiver.register_node(1, [&](const message& m) {
    got.emplace_back(m.payload.begin(), m.payload.end());
  });
  sender.send(message{2, 1, 0, byte_buffer{'b', 'a', 'c', 'k'}});
  receiver.run_until([&] { return !got.empty(); }, 15'000);
  EXPECT_EQ(got, (std::vector<std::string>{"back"}));
  sender.flush_sends();
}

TEST(TcpTest, BrokenChannelStaysBrokenWithoutRepair) {
  std::map<node_id, tcp_endpoint> map{
      {1, {"127.0.0.1", free_port()}},
      {2, {"127.0.0.1", free_port()}},
  };
  tcp_options opts;
  opts.connect_deadline_ms = 200;
  tcp_net sender{map, opts};
  sender.send(message{2, 1, 0, byte_buffer{'x'}});
  sender.flush_sends();
  EXPECT_THROW(sender.send(message{2, 1, 0, byte_buffer{'y'}}),
               transport_error);
}

}  // namespace
}  // namespace tormet::net
