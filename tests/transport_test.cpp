// Transport tests: deterministic inproc delivery + failure injection, and
// real TCP loopback framing.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/net/inproc.h"
#include "src/net/tcp.h"

namespace tormet::net {
namespace {

TEST(InprocTest, DeliversInFifoOrder) {
  inproc_net bus;
  std::vector<int> received;
  bus.register_node(1, [&](const message& m) {
    received.push_back(static_cast<int>(m.payload[0]));
  });
  for (int i = 0; i < 5; ++i) {
    bus.send(message{0, 1, 7, byte_buffer{static_cast<std::uint8_t>(i)}});
  }
  EXPECT_EQ(bus.run_until_quiescent(), 5u);
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(InprocTest, HandlersMaySendDuringDelivery) {
  inproc_net bus;
  int hops = 0;
  bus.register_node(1, [&](const message& m) {
    ++hops;
    if (m.payload[0] < 3) {
      bus.send(message{1, 2, 0, byte_buffer{m.payload[0]}});
    }
  });
  bus.register_node(2, [&](const message& m) {
    ++hops;
    bus.send(message{2, 1, 0,
                     byte_buffer{static_cast<std::uint8_t>(m.payload[0] + 1)}});
  });
  bus.send(message{0, 1, 0, byte_buffer{0}});
  bus.run_until_quiescent();
  EXPECT_EQ(hops, 7);  // 1,2,1,2,1,2,1 until payload reaches 3
}

TEST(InprocTest, PartitionDropsBothDirections) {
  inproc_net bus;
  int received = 0;
  bus.register_node(1, [&](const message&) { ++received; });
  bus.register_node(2, [&](const message&) { ++received; });
  bus.partition_node(2);
  bus.send(message{1, 2, 0, {}});
  bus.send(message{2, 1, 0, {}});
  bus.send(message{0, 1, 0, {}});
  bus.run_until_quiescent();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(bus.dropped_count(), 2u);

  bus.heal_node(2);
  bus.send(message{1, 2, 0, {}});
  bus.run_until_quiescent();
  EXPECT_EQ(received, 2);
}

TEST(InprocTest, UnknownDestinationCountsAsDropped) {
  inproc_net bus;
  bus.send(message{0, 99, 0, {}});
  bus.run_until_quiescent();
  EXPECT_EQ(bus.dropped_count(), 1u);
}

TEST(InprocTest, RandomDropIsDeterministic) {
  const auto run = [](std::uint64_t seed) {
    inproc_net bus;
    int received = 0;
    bus.register_node(1, [&](const message&) { ++received; });
    bus.set_drop_probability(0.5, seed);
    for (int i = 0; i < 100; ++i) bus.send(message{0, 1, 0, {}});
    bus.run_until_quiescent();
    return received;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_GT(run(9), 20);
  EXPECT_LT(run(9), 80);
}

TEST(TcpTest, RoundTripBetweenNodes) {
  tcp_net bus;
  std::vector<std::string> got;
  bus.register_node(1, [&](const message& m) {
    got.push_back(std::string{m.payload.begin(), m.payload.end()});
    if (got.back() == "ping") {
      bus.send(message{1, 2, 5, byte_buffer{'p', 'o', 'n', 'g'}});
    }
  });
  std::string pong;
  bus.register_node(2, [&](const message& m) {
    pong.assign(m.payload.begin(), m.payload.end());
  });

  bus.send(message{2, 1, 5, byte_buffer{'p', 'i', 'n', 'g'}});
  bus.run_until_quiescent();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "ping");
  EXPECT_EQ(pong, "pong");
}

TEST(TcpTest, LargeMessageSurvivesFraming) {
  tcp_net bus;
  byte_buffer received;
  bus.register_node(1, [&](const message& m) { received = m.payload; });
  byte_buffer big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  }
  bus.register_node(2, [](const message&) {});
  bus.send(message{2, 1, 9, big});
  bus.run_until_quiescent();
  EXPECT_EQ(received, big);
}

TEST(TcpTest, ManySmallMessagesKeepOrderPerSender) {
  tcp_net bus;
  std::vector<int> seq;
  bus.register_node(1, [&](const message& m) {
    seq.push_back(static_cast<int>(m.payload[0]));
  });
  bus.register_node(2, [](const message&) {});
  for (int i = 0; i < 50; ++i) {
    bus.send(message{2, 1, 0, byte_buffer{static_cast<std::uint8_t>(i)}});
  }
  bus.run_until_quiescent();
  ASSERT_EQ(seq.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(seq[static_cast<std::size_t>(i)], i);
}

TEST(TcpTest, PortsAreDistinct) {
  tcp_net bus;
  bus.register_node(1, [](const message&) {});
  bus.register_node(2, [](const message&) {});
  EXPECT_NE(bus.port_of(1), bus.port_of(2));
  EXPECT_GT(bus.port_of(1), 0);
}

}  // namespace
}  // namespace tormet::net
