// Consensus tests: weighted selection correctness, position eligibility,
// probability queries, synthetic consensus structure.
#include <gtest/gtest.h>

#include <map>

#include "src/tor/consensus.h"
#include "src/util/check.h"

namespace tormet::tor {
namespace {

[[nodiscard]] std::vector<relay> small_relay_set() {
  std::vector<relay> relays;
  const auto add = [&](double weight, bool guard, bool exit, bool hsdir) {
    relay r;
    r.id = static_cast<relay_id>(relays.size());
    r.nickname = "r" + std::to_string(relays.size());
    r.weight = weight;
    r.flags = {guard, exit, hsdir};
    relays.push_back(std::move(r));
  };
  add(10.0, true, false, true);    // 0: guard+hsdir
  add(30.0, true, true, false);    // 1: guard+exit
  add(60.0, false, true, true);    // 2: exit+hsdir
  add(100.0, false, false, false); // 3: middle only
  return relays;
}

TEST(ConsensusTest, SelectionProbabilities) {
  const consensus net{small_relay_set()};
  // Guard weight = 10 + 30.
  EXPECT_DOUBLE_EQ(net.selection_probability(position::guard, 0), 10.0 / 40.0);
  EXPECT_DOUBLE_EQ(net.selection_probability(position::guard, 1), 30.0 / 40.0);
  EXPECT_DOUBLE_EQ(net.selection_probability(position::guard, 2), 0.0);
  // Exit weight = 30 + 60.
  EXPECT_DOUBLE_EQ(net.selection_probability(position::exit, 2), 60.0 / 90.0);
  // Middle: everyone.
  EXPECT_DOUBLE_EQ(net.selection_probability(position::middle, 3), 100.0 / 200.0);
  EXPECT_DOUBLE_EQ(net.total_weight(position::middle), 200.0);
}

TEST(ConsensusTest, CombinedProbability) {
  const consensus net{small_relay_set()};
  EXPECT_DOUBLE_EQ(net.combined_probability(position::guard, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(net.combined_probability(position::exit, {1}), 30.0 / 90.0);
  EXPECT_DOUBLE_EQ(net.combined_probability(position::exit, {0, 3}), 0.0);
}

TEST(ConsensusTest, SamplingMatchesWeights) {
  const consensus net{small_relay_set()};
  rng r{77};
  std::map<relay_id, int> counts;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[net.sample(position::exit, r)];
  EXPECT_EQ(counts.size(), 2u);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 30.0 / 90.0, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 60.0 / 90.0, 0.01);
}

TEST(ConsensusTest, EligibleLists) {
  const consensus net{small_relay_set()};
  EXPECT_EQ(net.eligible(position::guard), (std::vector<relay_id>{0, 1}));
  EXPECT_EQ(net.eligible(position::hsdir), (std::vector<relay_id>{0, 2}));
  EXPECT_EQ(net.eligible(position::middle).size(), 4u);
  EXPECT_EQ(net.eligible(position::rendezvous).size(), 4u);
}

TEST(ConsensusTest, RejectsBadInput) {
  EXPECT_THROW(consensus{std::vector<relay>{}}, tormet::precondition_error);
  std::vector<relay> sparse = small_relay_set();
  sparse[2].id = 7;  // non-dense ids
  EXPECT_THROW(consensus{std::move(sparse)}, tormet::precondition_error);
}

TEST(ConsensusTest, RelayAtBoundsChecked) {
  const consensus net{small_relay_set()};
  EXPECT_EQ(net.relay_at(0).nickname, "r0");
  EXPECT_THROW((void)net.relay_at(99), tormet::precondition_error);
}

TEST(SyntheticConsensusTest, StructureAndDeterminism) {
  consensus_params params;
  params.num_relays = 2000;
  params.seed = 5;
  const consensus a = make_synthetic_consensus(params);
  const consensus b = make_synthetic_consensus(params);
  ASSERT_EQ(a.size(), 2000u);
  // Deterministic given the seed.
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_DOUBLE_EQ(a.relays()[i].weight, b.relays()[i].weight);
    EXPECT_EQ(a.relays()[i].flags.guard, b.relays()[i].flags.guard);
  }
  // Flag fractions roughly as configured.
  std::size_t guards = 0;
  std::size_t exits = 0;
  for (const auto& r : a.relays()) {
    guards += r.flags.guard ? 1 : 0;
    exits += r.flags.exit ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(guards) / 2000.0, params.guard_fraction, 0.05);
  EXPECT_NEAR(static_cast<double>(exits) / 2000.0, params.exit_fraction, 0.05);
}

TEST(SyntheticConsensusTest, WeightsAreHeavyTailed) {
  consensus_params params;
  params.num_relays = 5000;
  const consensus net = make_synthetic_consensus(params);
  // The top 10% of relays should carry well over 10% of the weight.
  std::vector<double> weights;
  for (const auto& r : net.relays()) weights.push_back(r.weight);
  std::sort(weights.begin(), weights.end(), std::greater<>());
  double total = 0.0;
  for (const auto w : weights) total += w;
  double top = 0.0;
  for (std::size_t i = 0; i < weights.size() / 10; ++i) top += weights[i];
  EXPECT_GT(top / total, 0.3);
}

}  // namespace
}  // namespace tormet::tor
