// Privacy-property tests: statistical checks of the protection claims the
// protocols make about *state an adversary could seize*, plus a PSC round
// over real TCP sockets.
//
//  * PrivCount: a seized DC's counter is `noise − Σ blinds` — with at least
//    one honest SK, the value is uniformly random on Z_{2^64}.
//  * PSC: a seized DC's table is ElGamal ciphertexts under the CPs' joint
//    key — identical item sets produce unlinkable tables, and inserts
//    rerandomize rather than reveal.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>

#include "src/core/instruments.h"
#include "src/crypto/secret_sharing.h"
#include "src/net/inproc.h"
#include "src/net/tcp.h"
#include "src/psc/deployment.h"
#include "src/psc/oblivious_set.h"
#include "src/privcount/deployment.h"
#include "src/tor/network.h"

namespace tormet {
namespace {

TEST(PrivacyTest, BlindedSharesAreBitUniform) {
  // Any proper subset of additive shares must look uniform: check bit
  // balance of the first share across many sharings of the SAME value.
  crypto::deterministic_rng rng{11};
  constexpr int trials = 4000;
  int bit_counts[64] = {};
  for (int t = 0; t < trials; ++t) {
    const auto shares = crypto::additive_shares(/*value=*/42, 3, rng);
    for (int b = 0; b < 64; ++b) {
      bit_counts[b] += static_cast<int>((shares[0] >> b) & 1);
    }
  }
  for (int b = 0; b < 64; ++b) {
    // 6-sigma band around trials/2 for a fair bit.
    EXPECT_NEAR(bit_counts[b], trials / 2, 6 * std::sqrt(trials) / 2)
        << "bit " << b;
  }
}

TEST(PrivacyTest, DcCounterInitializationLooksUniform) {
  // Reconstruct what a DC's in-memory counter would be after blinding:
  // noise + last blind (where blinds sum to zero). The kept blind is
  // uniform, so the counter must be too — even though the true count is 0
  // and the noise is small. Bucket the top byte and sanity-check spread.
  crypto::deterministic_rng rng{13};
  constexpr int trials = 8000;
  int buckets[16] = {};
  for (int t = 0; t < trials; ++t) {
    const auto blinds = crypto::additive_shares(0, 4, rng);
    const std::uint64_t counter = static_cast<std::uint64_t>(7) + blinds.back();
    ++buckets[counter >> 60];
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_NEAR(buckets[i], trials / 16, 6 * std::sqrt(trials / 16.0) + 10)
        << "bucket " << i;
  }
}

TEST(PrivacyTest, ObliviousTablesAreUnlinkableAcrossDcs) {
  // Two DCs with IDENTICAL item sets produce tables with no ciphertext in
  // common (fresh randomness everywhere) — a seizure of both reveals no
  // correlation without the CP keys.
  crypto::deterministic_rng rng{17};
  const auto group = crypto::make_toy_group();
  const crypto::elgamal scheme{group};
  const auto kp = scheme.generate_keypair(rng);

  psc::oblivious_set a{scheme, kp.pub, 128, rng};
  psc::oblivious_set b{scheme, kp.pub, 128, rng};
  for (int i = 0; i < 40; ++i) {
    const std::string item = "item" + std::to_string(i);
    a.insert(as_bytes(item), rng);
    b.insert(as_bytes(item), rng);
  }
  std::set<std::string> enc_a;
  for (const auto& ct : a.slots()) enc_a.insert(to_hex(scheme.encode(ct)));
  for (const auto& ct : b.slots()) {
    EXPECT_FALSE(enc_a.contains(to_hex(scheme.encode(ct))));
  }
}

TEST(PrivacyTest, InsertRerandomizesTheBin) {
  // Observing the table before and after an insert shows a changed bin but
  // not whether the bin was previously set (fresh ciphertext either way).
  crypto::deterministic_rng rng{19};
  const auto group = crypto::make_toy_group();
  const crypto::elgamal scheme{group};
  const auto kp = scheme.generate_keypair(rng);

  psc::oblivious_set set{scheme, kp.pub, 64, rng};
  const std::size_t bin = set.bin_of(as_bytes("x"));
  const byte_buffer before = scheme.encode(set.slots()[bin]);
  set.insert(as_bytes("x"), rng);
  const byte_buffer after_first = scheme.encode(set.slots()[bin]);
  set.insert(as_bytes("x"), rng);
  const byte_buffer after_second = scheme.encode(set.slots()[bin]);
  EXPECT_NE(before, after_first);
  EXPECT_NE(after_first, after_second);  // repeat insert looks like a fresh one
}

TEST(PrivacyTest, PublishedNoiseHidesSmallDifferences) {
  // End-to-end DP sanity: two runs whose true counts differ by exactly the
  // sensitivity produce outputs whose difference is dominated by noise
  // (|Δoutput| is frequently larger than the true difference).
  tor::consensus_params params;
  params.num_relays = 200;
  params.seed = 23;

  const auto run_with_count = [&](int connections, std::uint64_t seed) {
    tor::network net{tor::make_synthetic_consensus(params), 99};
    net::inproc_net bus;
    privcount::deployment_config cfg;
    const auto guards = net.net().eligible(tor::position::guard);
    cfg.measured_relays.assign(guards.begin(), guards.begin() + 4);
    cfg.rng_seed = seed;
    privcount::deployment dep{bus, cfg};
    dep.add_instrument(core::instrument_entry_totals());
    dep.attach(net);
    const auto results = dep.run_round(
        {{"entry/connections", /*sensitivity=*/12.0, 100.0}}, [&] {
          for (int i = 0; i < connections; ++i) {
            tor::client_profile p;
            p.ip = static_cast<std::uint32_t>(i);
            p.promiscuous = true;
            const tor::client_id c = net.add_client(p);
            net.connect_once(c, sim_time{0});
          }
        });
    return static_cast<double>(results[0].value);
  };

  // Adjacent-ish inputs: counts differing by the sensitivity.
  int indistinguishable = 0;
  constexpr int trials = 12;
  for (int t = 0; t < trials; ++t) {
    const double a = run_with_count(60, 1000 + static_cast<std::uint64_t>(t));
    const double b = run_with_count(72, 2000 + static_cast<std::uint64_t>(t));
    // The noise scale (sigma for D=12, eps=0.3) is ~400: most trials the
    // noisy outputs cannot be ordered by their true counts.
    if (b < a) ++indistinguishable;
  }
  EXPECT_GT(indistinguishable, 1);
  EXPECT_LT(indistinguishable, trials - 1);
}

TEST(PrivacyTest, PscRoundOverRealTcpSockets) {
  tor::consensus_params params;
  params.num_relays = 200;
  params.seed = 29;
  tor::network net{tor::make_synthetic_consensus(params), 7};

  net::tcp_net bus;
  psc::deployment_config cfg;
  const auto guards = net.net().eligible(tor::position::guard);
  cfg.measured_relays.assign(guards.begin(), guards.begin() + 3);
  cfg.round.bins = 256;
  cfg.round.group = crypto::group_backend::toy;
  cfg.round.noise_enabled = false;
  psc::deployment dep{bus, cfg};
  dep.set_extractor(core::extract_client_ip());
  dep.attach(net);

  const psc::round_outcome out = dep.run_round([&] {
    for (int i = 0; i < 40; ++i) {
      tor::client_profile p;
      p.ip = static_cast<std::uint32_t>(i);
      p.promiscuous = true;  // every measured relay sees every IP
      const tor::client_id c = net.add_client(p);
      net.connect_to_guards(c, sim_time{0});
    }
  });
  EXPECT_NEAR(out.estimate.cardinality, 40.0, 8.0);
}

}  // namespace
}  // namespace tormet
