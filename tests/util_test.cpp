// Unit tests for src/util: hex codec, contract checks, deterministic rng,
// table formatting, sim time.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/util/bytes.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/sim_time.h"
#include "src/util/table.h"

namespace tormet {
namespace {

TEST(BytesTest, HexRoundTrip) {
  const byte_buffer data{0x00, 0x01, 0xab, 0xff, 0x7e};
  EXPECT_EQ(to_hex(data), "0001abff7e");
  EXPECT_EQ(from_hex("0001abff7e"), data);
  EXPECT_EQ(from_hex("0001ABFF7E"), data);
}

TEST(BytesTest, EmptyHex) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(BytesTest, InvalidHexThrows) {
  EXPECT_THROW((void)from_hex("abc"), precondition_error);   // odd length
  EXPECT_THROW((void)from_hex("zz"), precondition_error);    // non-hex chars
}

TEST(BytesTest, StringViewBytes) {
  const auto view = as_bytes("hi");
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], 'h');
  EXPECT_EQ(to_string(view), "hi");
}

TEST(CheckTest, ExpectsAndEnsures) {
  EXPECT_NO_THROW(expects(true, "fine"));
  EXPECT_THROW(expects(false, "bad"), precondition_error);
  EXPECT_NO_THROW(ensures(true, "fine"));
  EXPECT_THROW(ensures(false, "bad"), invariant_error);
}

TEST(RngTest, DeterministicFromSeed) {
  rng a{42};
  rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  rng a{1};
  rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkDecorrelates) {
  rng parent{7};
  rng f1 = parent.fork("alpha");
  rng f2 = parent.fork("alpha");  // forked later -> different stream
  EXPECT_NE(f1.next(), f2.next());
}

TEST(RngTest, BelowRespectsBound) {
  rng r{3};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
  EXPECT_EQ(r.below(1), 0u);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  rng r{5};
  std::vector<int> counts(10, 0);
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, 500);  // ~5 sigma of binomial
  }
}

TEST(RngTest, BetweenInclusive) {
  rng r{9};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.between(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, UniformInUnitInterval) {
  rng r{11};
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  rng r{13};
  double sum = 0.0;
  double sq = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, PoissonMean) {
  rng r{17};
  for (const double mean : {0.5, 4.0, 30.0, 200.0}) {
    double sum = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, ExponentialMean) {
  rng r{19};
  double sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, BernoulliEdges) {
  rng r{21};
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(ones, 3000, 250);
}

TEST(TableTest, RenderContainsRowsAndTitle) {
  repro_table t{"Table X"};
  t.add("stat-a", "1.0", "1.1", "[0.9; 1.3]", "scaled");
  t.add("stat-b", "2", "2");
  const std::string rendered = t.render();
  EXPECT_NE(rendered.find("Table X"), std::string::npos);
  EXPECT_NE(rendered.find("stat-a"), std::string::npos);
  EXPECT_NE(rendered.find("[0.9; 1.3]"), std::string::npos);
  EXPECT_NE(rendered.find("stat-b"), std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(format_count(1.48e8), "148 million");
  EXPECT_EQ(format_count(2.1e9), "2.1 billion");
  EXPECT_EQ(format_count(313213), "313.2 thousand");
  EXPECT_EQ(format_percent(0.401), "40.1 %");
  EXPECT_EQ(format_bytes(1024.0 * 1024.0), "1 MiB");
}

TEST(SimTimeTest, Arithmetic) {
  sim_time t{100};
  EXPECT_EQ((t + 50).seconds, 150);
  t += 10;
  EXPECT_EQ(t.seconds, 110);
  EXPECT_EQ(t - sim_time{10}, 100);
  EXPECT_LT(sim_time{1}, sim_time{2});
  EXPECT_EQ(k_seconds_per_day, 86400);
}

}  // namespace
}  // namespace tormet
