// Distributed-deployment tests: plan (de)serialization, orchestrator port
// assignment, and the end-to-end guarantee the subsystem exists for — a
// multi-process protocol round over real fork/exec'd tormet_node processes
// and TCP sockets produces a tally byte-identical to the in-process round
// with the same seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <thread>
#include <variant>

#include "src/cli/deployment_plan.h"
#include "src/cli/node_runner.h"
#include "src/cli/orchestrator.h"
#include "src/core/instruments.h"
#include "src/tor/trace_file.h"
#include "src/tor/trace_socket.h"
#include "src/workload/trace_gen.h"

namespace tormet::cli {
namespace {

/// tormet_node binary: ctest exports TORMET_NODE_BIN; fall back to the
/// binary next to this test executable (both live in the build dir).
[[nodiscard]] std::string node_binary() {
  if (const char* env = std::getenv("TORMET_NODE_BIN")) return env;
  return sibling_node_binary();
}

class workdir_guard {
 public:
  workdir_guard() : path_{make_round_workdir()} {}
  ~workdir_guard() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

TEST(DeploymentPlanTest, RoundTripsThroughSerialization) {
  deployment_plan plan = make_psc_plan(4, 3, 2048);
  plan.rng_seed = 99;
  plan.items_per_dc = 13;
  plan.shared_items = 5;
  plan.round.group = crypto::group_backend::toy;
  plan.round.sensitivity = 4.0;
  plan.round.privacy.epsilon = 0.25;
  plan.round.noise_enabled = false;
  plan.tally_path = "/tmp/t.out";
  plan.round_deadline_ms = 5000;
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    plan.nodes[i].port = static_cast<std::uint16_t>(9000 + i);
  }

  const deployment_plan back = parse_plan(serialize_plan(plan));
  EXPECT_EQ(serialize_plan(back), serialize_plan(plan));
  EXPECT_EQ(back.rng_seed, 99u);
  EXPECT_EQ(back.round.bins, 2048u);
  EXPECT_EQ(back.round.sensitivity, 4.0);
  EXPECT_FALSE(back.round.noise_enabled);
  EXPECT_EQ(back.nodes.size(), 8u);
  EXPECT_EQ(back.node(0).role, node_role::psc_ts);
  EXPECT_EQ(back.node(7).port, 9007);
  EXPECT_EQ(back.tally_server_id(), 0u);
}

TEST(DeploymentPlanTest, PrivcountCountersRoundTrip) {
  deployment_plan plan = make_privcount_plan(
      2, 3, {{"entry/connections", 12.0, 100.0}, {"exit/streams", 20.0, 1e6}});
  assign_free_ports(plan);  // parse rejects port-0 nodes by design
  const deployment_plan back = parse_plan(serialize_plan(plan));
  ASSERT_EQ(back.counters.size(), 2u);
  EXPECT_EQ(back.counters[1].name, "exit/streams");
  EXPECT_EQ(back.counters[1].expected_value, 1e6);
  EXPECT_EQ(back.ids_with(node_role::privcount_sk).size(), 3u);
}

TEST(DeploymentPlanTest, MalformedInputIsRejectedWithLineNumbers) {
  EXPECT_THROW(parse_plan("not-a-plan\n"), precondition_error);
  EXPECT_THROW(parse_plan("tormet-plan-v1\nbogus_key 1\n"), precondition_error);
  EXPECT_THROW(parse_plan("tormet-plan-v1\nnode 0 psc_ts\n"), precondition_error);
  EXPECT_THROW(parse_plan("tormet-plan-v1\nprotocol psc\n"), precondition_error);
  // Hand-config footguns rejected at parse time, not as transport timeouts:
  EXPECT_THROW(parse_plan("tormet-plan-v1\nnode 0 psc_ts 127.0.0.1 0\n"),
               precondition_error);
  EXPECT_THROW(parse_plan("tormet-plan-v1\n"
                          "node 0 psc_ts 127.0.0.1 9000\n"
                          "node 0 psc_cp 127.0.0.1 9001\n"),
               precondition_error);
}

TEST(DeploymentPlanTest, RejectsBadNodeTopology) {
  // No tally server at all.
  EXPECT_THROW(parse_plan("tormet-plan-v1\n"
                          "node 0 psc_cp 127.0.0.1 9000\n"
                          "node 1 psc_dc 127.0.0.1 9001\n"),
               precondition_error);
  // Two tally servers.
  EXPECT_THROW(parse_plan("tormet-plan-v1\n"
                          "node 0 psc_ts 127.0.0.1 9000\n"
                          "node 1 psc_ts 127.0.0.1 9001\n"
                          "node 2 psc_dc 127.0.0.1 9002\n"),
               precondition_error);
  // A privcount plan needs counters.
  EXPECT_THROW(parse_plan("tormet-plan-v1\n"
                          "protocol privcount\n"
                          "node 0 privcount_ts 127.0.0.1 9000\n"
                          "node 1 privcount_dc 127.0.0.1 9001\n"),
               precondition_error);
}

TEST(DeploymentPlanTest, RejectsBadWorkloadSections) {
  const std::string base =
      "tormet-plan-v1\nnode 0 psc_ts 127.0.0.1 9000\n"
      "node 1 psc_cp 127.0.0.1 9001\nnode 2 psc_dc 127.0.0.1 9002\n";
  // Unknown workload kind / model; malformed values.
  EXPECT_THROW(parse_plan(base + "workload teleport\n"), precondition_error);
  EXPECT_THROW(parse_plan(base + "workload trace\n"), precondition_error);
  EXPECT_THROW(parse_plan(base + "workload generate nonsense 0.1 100 1\n"),
               precondition_error);
  EXPECT_THROW(parse_plan(base + "workload generate zipf 0 100 1\n"),
               precondition_error);
  EXPECT_THROW(parse_plan(base + "workload socket 0\n"), precondition_error);
  EXPECT_THROW(parse_plan(base + "workload socket 99999\n"), precondition_error);
  // Unknown measurement names are rejected at parse time, not when a node
  // process fails mid-round.
  EXPECT_THROW(parse_plan(base + "psc_extractor magic_oracle\n"),
               precondition_error);
  EXPECT_THROW(parse_plan(base + "instrument quantum_counter\n"),
               precondition_error);
  // A privcount event workload without instruments would count nothing.
  EXPECT_THROW(
      parse_plan("tormet-plan-v1\nprotocol privcount\n"
                 "counter entry/connections 12 100\n"
                 "workload trace /tmp/traces\n"
                 "node 0 privcount_ts 127.0.0.1 9000\n"
                 "node 1 privcount_sk 127.0.0.1 9001\n"
                 "node 2 privcount_dc 127.0.0.1 9002\n"),
      precondition_error);
}

TEST(DeploymentPlanTest, WorkloadSectionsRoundTripThroughSerialization) {
  deployment_plan plan = make_psc_plan(2, 1, 256);
  assign_free_ports(plan);

  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = "/data/my traces/day-1";
  plan.psc_extractor = "published_address";
  plan.pace = 0.25;
  deployment_plan back = parse_plan(serialize_plan(plan));
  EXPECT_EQ(back.workload.kind, workload_kind::trace);
  EXPECT_EQ(back.workload.trace_dir, "/data/my traces/day-1");
  EXPECT_EQ(back.psc_extractor, "published_address");
  EXPECT_EQ(back.pace, 0.25);
  EXPECT_EQ(serialize_plan(back), serialize_plan(plan));

  plan.workload.kind = workload_kind::generate;
  plan.workload.model = "mixed";
  plan.workload.scale = 3e-5;
  plan.workload.events = 1234;
  plan.workload.gen_seed = 99;
  back = parse_plan(serialize_plan(plan));
  EXPECT_EQ(back.workload.kind, workload_kind::generate);
  EXPECT_EQ(back.workload.model, "mixed");
  EXPECT_EQ(back.workload.scale, 3e-5);
  EXPECT_EQ(back.workload.events, 1234u);
  EXPECT_EQ(back.workload.gen_seed, 99u);

  plan.workload.kind = workload_kind::socket;
  plan.workload.event_port_base = 9100;
  back = parse_plan(serialize_plan(plan));
  EXPECT_EQ(back.workload.kind, workload_kind::socket);
  EXPECT_EQ(back.workload.event_port_base, 9100);
}

TEST(DeploymentPlanTest, DcIndexFollowsPlanOrder) {
  deployment_plan plan = make_psc_plan(3, 2, 64);
  const auto dc_ids = plan.ids_with(node_role::psc_dc);
  for (std::size_t i = 0; i < dc_ids.size(); ++i) {
    EXPECT_EQ(dc_index_of(plan, dc_ids[i]), i);
  }
  EXPECT_THROW((void)dc_index_of(plan, plan.tally_server_id()),
               precondition_error);
}

TEST(DeploymentPlanTest, ItemsForDcAreDeterministicAndDisjoint) {
  deployment_plan plan = make_psc_plan(3, 1, 64);
  plan.items_per_dc = 10;
  plan.shared_items = 4;
  const auto dc_ids = plan.ids_with(node_role::psc_dc);
  std::set<std::string> unique_items;
  for (const auto id : dc_ids) {
    const auto items = items_for_dc(plan, id);
    ASSERT_EQ(items.size(), 14u);
    EXPECT_EQ(items, items_for_dc(plan, id));  // pure function of (plan, id)
    unique_items.insert(items.begin(), items.end());
  }
  // 3 DCs x 10 unique + 4 shared inserted by everyone.
  EXPECT_EQ(unique_items.size(), 34u);
}

TEST(OrchestratorTest, AssignsDistinctFreePorts) {
  deployment_plan plan = make_psc_plan(6, 3, 64);
  assign_free_ports(plan);
  std::set<std::uint16_t> ports;
  for (const auto& n : plan.nodes) {
    EXPECT_GT(n.port, 0);
    ports.insert(n.port);
  }
  EXPECT_EQ(ports.size(), plan.nodes.size());
}

// The acceptance check of the whole subsystem: a real multi-process round
// (fork/exec, TCP, chunked frames, DONE/ACK completion) must reproduce the
// deterministic in-process round bit for bit.
TEST(DistributedRoundTest, PscTallyIsByteIdenticalToInprocess) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  deployment_plan plan = make_psc_plan(4, 3, 1024);
  plan.round.group = crypto::group_backend::toy;
  plan.rng_seed = 42;
  plan.items_per_dc = 25;
  plan.shared_items = 6;

  workdir_guard workdir;
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir.path(), 60'000);
  ASSERT_EQ(result.nodes.size(), 8u);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }
  EXPECT_FALSE(result.tally.empty());
  EXPECT_EQ(result.tally, run_reference_round(plan));
  // The tally is real: with noise on, raw_count >= the distinct item count.
  EXPECT_NE(result.tally.find("protocol psc"), std::string::npos);
}

TEST(DistributedRoundTest, PrivcountTallyIsByteIdenticalToInprocess) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  deployment_plan plan = make_privcount_plan(
      3, 2, {{"entry/connections", 12.0, 100.0}, {"entry/circuits", 651.0, 100.0}});
  plan.rng_seed = 7;

  workdir_guard workdir;
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir.path(), 60'000);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }
  EXPECT_EQ(result.tally, run_reference_round(plan));
  EXPECT_NE(result.tally.find("entry/circuits"), std::string::npos);
}

// The PR-4 acceptance check: a round driven by a *generated event trace* —
// DCs replaying per-relay trace files through their observe() pipeline
// across real processes — reproduces the in-process round bit for bit.
TEST(DistributedRoundTest, PscTraceRoundIsByteIdenticalToInprocess) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workdir_guard workdir;
  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 3;
  gen.events = 600;
  gen.seed = 17;
  workload::write_trace_dir(gen, workdir.path());

  deployment_plan plan = make_psc_plan(3, 2, 1024);
  plan.round.group = crypto::group_backend::toy;
  plan.rng_seed = 21;
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.psc_extractor = "primary_sld";
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir.path(), 60'000);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }
  EXPECT_EQ(result.tally, run_reference_round(plan));
  EXPECT_NE(result.tally.find("protocol psc"), std::string::npos);
}

TEST(DistributedRoundTest, PrivcountTraceRoundIsByteIdenticalToInprocess) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workdir_guard workdir;
  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 2;
  gen.events = 500;
  gen.seed = 5;
  workload::write_trace_dir(gen, workdir.path());

  deployment_plan plan = make_privcount_plan(
      2, 2, core::default_specs_for("stream_taxonomy"));
  plan.rng_seed = 23;
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.instruments = {"stream_taxonomy"};
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir.path(), 60'000);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }
  EXPECT_EQ(result.tally, run_reference_round(plan));
  EXPECT_NE(result.tally.find("streams/total"), std::string::npos);

  // The replayed events are real: with noise off the counters must equal a
  // direct count over the generated traces.
  plan.privcount_noise_enabled = false;
  const std::string noiseless = run_reference_round(plan);
  const auto events = workload::generate_trace_events(gen);
  std::size_t total_streams = 0;
  for (const auto& dc_events : events) total_streams += dc_events.size();
  EXPECT_NE(noiseless.find("counter streams/total " +
                           std::to_string(total_streams) + " "),
            std::string::npos)
      << noiseless;
}

// Socket ingestion: the same trace pushed through TCP event sockets by
// feeder threads must land in the exact tally the file-replay round
// produces (the reference round replays the files directly).
TEST(DistributedRoundTest, SocketFedRoundMatchesFileFedReference) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workdir_guard workdir;
  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 2;
  gen.events = 400;
  gen.seed = 77;
  workload::write_trace_dir(gen, workdir.path());

  deployment_plan plan = make_privcount_plan(
      2, 1, core::default_specs_for("stream_taxonomy"));
  plan.rng_seed = 31;
  plan.workload.kind = workload_kind::socket;
  plan.instruments = {"stream_taxonomy"};
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);
  // Reuse the free-port prober for the event sockets: put the bases after
  // the highest fabric port to avoid collisions.
  std::uint16_t base = 0;
  for (const auto& n : plan.nodes) base = std::max(base, n.port);
  plan.workload.event_port_base = static_cast<std::uint16_t>(base + 1);

  // Feeder failures are captured (never thrown out of a std::thread) and
  // the threads are joined on every path, so a failing round reports the
  // real error instead of std::terminate.
  std::vector<std::string> feeder_errors(gen.dcs);
  std::vector<std::thread> feeders;
  for (std::size_t k = 0; k < gen.dcs; ++k) {
    feeders.emplace_back([&, k] {
      try {
        tor::stream_trace_to_socket(
            "127.0.0.1",
            static_cast<std::uint16_t>(plan.workload.event_port_base + k),
            workdir.path() + "/" + tor::trace_file_name(k), 30'000);
      } catch (const std::exception& e) {
        feeder_errors[k] = e.what();
      }
    });
  }
  distributed_round_result result;
  std::string round_error;
  try {
    result = run_distributed_round(plan, bin, workdir.path(), 60'000);
  } catch (const std::exception& e) {
    round_error = e.what();
  }
  for (auto& f : feeders) f.join();
  ASSERT_EQ(round_error, "");
  for (std::size_t k = 0; k < feeder_errors.size(); ++k) {
    EXPECT_EQ(feeder_errors[k], "") << "feeder " << k << " failed";
  }
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }

  deployment_plan file_plan = plan;
  file_plan.workload.kind = workload_kind::trace;
  file_plan.workload.trace_dir = workdir.path();
  EXPECT_EQ(result.tally, run_reference_round(file_plan));
  // And the socket plan itself refuses an (unreproducible) reference round.
  EXPECT_THROW((void)run_reference_round(plan), precondition_error);
}

// `generate` workloads re-materialize the events in every process instead
// of reading files; the reference round must agree with itself and with an
// equivalent trace-file round.
TEST(DistributedRoundTest, GenerateWorkloadMatchesTraceWorkload) {
  workdir_guard workdir;
  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 2;
  gen.events = 300;
  gen.seed = 3;
  workload::write_trace_dir(gen, workdir.path());

  deployment_plan plan = make_psc_plan(2, 1, 512);
  plan.round.group = crypto::group_backend::toy;
  plan.workload.kind = workload_kind::generate;
  plan.workload.model = gen.model;
  plan.workload.events = gen.events;
  plan.workload.gen_seed = gen.seed;
  plan.psc_extractor = "primary_sld";
  const std::string generated = run_reference_round(plan);
  EXPECT_EQ(generated, run_reference_round(plan));

  deployment_plan trace_plan = plan;
  trace_plan.workload.kind = workload_kind::trace;
  trace_plan.workload.trace_dir = workdir.path();
  EXPECT_EQ(generated, run_reference_round(trace_plan));
}

// The PR-5 acceptance check: a multi-round deployment — every process stays
// alive across a schedule of rounds, DCs windowing one continuous multi-day
// trace by sim time — reproduces the in-process multi-round reference bit
// for bit, for both protocols.
TEST(DistributedRoundTest, MultiRoundPscDeploymentIsByteIdenticalToInprocess) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workdir_guard workdir;
  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 2;
  gen.events = 450;
  gen.days = 3;
  gen.seed = 71;
  workload::write_trace_dir(gen, workdir.path());

  deployment_plan plan = make_psc_plan(2, 2, 512);
  plan.round.group = crypto::group_backend::toy;
  plan.rng_seed = 73;
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.psc_extractor = "primary_sld";
  plan.schedule_rounds = 3;
  plan.round_duration_s = k_seconds_per_day;
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir.path(), 90'000);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }
  EXPECT_NE(result.tally.find("tormet-tally-multiround-v1"), std::string::npos);
  EXPECT_NE(result.tally.find("rounds 3"), std::string::npos);
  EXPECT_EQ(result.tally, run_reference_round(plan));
}

TEST(DistributedRoundTest,
     MultiRoundPrivcountDeploymentIsByteIdenticalToInprocess) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workdir_guard workdir;
  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 2;
  gen.events = 450;
  gen.days = 3;
  gen.seed = 79;
  workload::write_trace_dir(gen, workdir.path());

  deployment_plan plan = make_privcount_plan(
      2, 2, core::default_specs_for("stream_taxonomy"));
  plan.rng_seed = 83;
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.instruments = {"stream_taxonomy"};
  plan.schedule_rounds = 3;
  plan.round_duration_s = k_seconds_per_day;
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir.path(), 90'000);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }
  EXPECT_EQ(result.tally, run_reference_round(plan));

  // The windows are real: with noise off, each round's streams/total is
  // exactly the per-day event count of the generated trace.
  plan.privcount_noise_enabled = false;
  const std::string noiseless = run_reference_round(plan);
  const auto per_dc = workload::generate_trace_events(gen);
  std::vector<std::size_t> per_day(3, 0);
  for (const auto& dc_events : per_dc) {
    for (const auto& ev : dc_events) {
      ++per_day.at(static_cast<std::size_t>(ev.at.seconds / k_seconds_per_day));
    }
  }
  for (std::size_t day = 0; day < 3; ++day) {
    EXPECT_NE(noiseless.find("counter streams/total " +
                             std::to_string(per_day[day]) + " "),
              std::string::npos)
        << "day " << day << " of:\n"
        << noiseless;
  }
}

// Registry-gap coverage: parameterized instruments (TLD histogram, domain
// sets, ahmia HSDir classification) declared purely by name in a plan file
// round-trip through a distributed round byte-identical to in-process.
TEST(DistributedRoundTest, ParameterizedInstrumentPlansAreByteIdentical) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  // zipf traces exercise the TLD histogram + domain sets; the onion model
  // exercises the ahmia HSDir classifier.
  {
    workdir_guard workdir;
    workload::trace_gen_params gen;
    gen.model = "zipf";
    gen.dcs = 2;
    gen.events = 400;
    gen.seed = 89;
    workload::write_trace_dir(gen, workdir.path());

    std::vector<privcount::counter_spec> counters;
    for (const auto& name : {"tld_histogram", "domain_sets"}) {
      for (auto& spec : core::default_specs_for(name)) {
        counters.push_back(std::move(spec));
      }
    }
    deployment_plan plan = make_privcount_plan(2, 1, std::move(counters));
    plan.rng_seed = 97;
    plan.workload.kind = workload_kind::trace;
    plan.workload.trace_dir = workdir.path();
    plan.instruments = {"tld_histogram", "domain_sets"};
    plan.tally_path = workdir.path() + "/tally.out";
    assign_free_ports(plan);

    // The plan text itself carries the instrument names (registry lookup on
    // every node).
    const deployment_plan parsed = parse_plan(serialize_plan(plan));
    ASSERT_EQ(parsed.instruments,
              (std::vector<std::string>{"tld_histogram", "domain_sets"}));

    const distributed_round_result result =
        run_distributed_round(plan, bin, workdir.path(), 60'000);
    for (const auto& n : result.nodes) {
      EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
    }
    EXPECT_EQ(result.tally, run_reference_round(plan));
    EXPECT_NE(result.tally.find("tld/com"), std::string::npos);

    // zipf targets are "zipf<rank>.com": noiseless tld/com counts exactly
    // the primary-domain events.
    plan.privcount_noise_enabled = false;
    const std::string noiseless = run_reference_round(plan);
    const auto per_dc = workload::generate_trace_events(gen);
    std::size_t primaries = 0;
    for (const auto& dc_events : per_dc) {
      for (const auto& ev : dc_events) {
        const auto* s = std::get_if<tor::exit_stream_event>(&ev.body);
        if (s != nullptr && s->is_initial &&
            s->kind == tor::address_kind::hostname &&
            (s->port == 80 || s->port == 443)) {
          ++primaries;
        }
      }
    }
    EXPECT_NE(noiseless.find("counter tld/com " + std::to_string(primaries) +
                             " "),
              std::string::npos)
        << noiseless;
  }
  {
    workdir_guard workdir;
    workload::trace_gen_params gen;
    gen.model = "onion";
    gen.dcs = 2;
    gen.scale = 2e-4;
    gen.seed = 101;
    workload::write_trace_dir(gen, workdir.path());

    deployment_plan plan = make_privcount_plan(
        2, 1, core::default_specs_for("hsdir_ahmia"));
    plan.rng_seed = 103;
    plan.workload.kind = workload_kind::trace;
    plan.workload.trace_dir = workdir.path();
    plan.instruments = {"hsdir_ahmia"};
    plan.tally_path = workdir.path() + "/tally.out";
    assign_free_ports(plan);

    const distributed_round_result result =
        run_distributed_round(plan, bin, workdir.path(), 60'000);
    for (const auto& n : result.nodes) {
      EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
    }
    EXPECT_EQ(result.tally, run_reference_round(plan));
    EXPECT_NE(result.tally.find("hsdir/fetch/success/public"),
              std::string::npos);
  }
}

// PR-7/PR-8 acceptance: the DC ingest-shard count and ingest worker count
// are pure throughput knobs. For every tested combination the full
// multi-process pipeline must produce tally bytes AND .summary sidecar
// bytes identical to the 1-shard serial run and to the scalar in-process
// reference — proving the hash partitioning, per-shard slab accumulation,
// pool scheduling, and report-time merge never leak into the output.
namespace {

[[nodiscard]] std::set<std::size_t> shard_count_matrix() {
  return {1, 2, 8,
          std::max<std::size_t>(1, std::thread::hardware_concurrency())};
}

void expect_shard_count_independence(deployment_plan plan,
                                     const std::string& bin,
                                     const std::string& workdir,
                                     const char* summary_marker) {
  plan.dc_shards = 1;
  plan.dc_ingest_threads = 0;
  const std::string reference = run_reference_round(plan);
  std::string summary_baseline;
  for (const std::size_t shards : shard_count_matrix()) {
    plan.dc_shards = shards;
    // Pair each shard count with a different pool size (serial for one
    // shard, 2/4 workers otherwise) so the e2e matrix covers the parallel
    // path without multiplying the number of full distributed rounds; the
    // exhaustive {shards} x {workers} DC-level matrix lives in
    // ingest_parallel_test.
    plan.dc_ingest_threads = shards == 1 ? 0 : (shards == 2 ? 2 : 4);
    const distributed_round_result result =
        run_distributed_round(plan, bin, workdir, 90'000);
    for (const auto& n : result.nodes) {
      EXPECT_EQ(n.exit_code, 0)
          << "node " << n.id << " failed at " << shards << " shards";
    }
    EXPECT_EQ(result.tally, reference) << "tally diverged at " << shards
                                       << " shards";
    EXPECT_NE(result.summary.find(summary_marker), std::string::npos);
    if (summary_baseline.empty()) {
      summary_baseline = result.summary;
    } else {
      EXPECT_EQ(result.summary, summary_baseline)
          << "summary diverged at " << shards << " shards";
    }
  }
}

}  // namespace

TEST(DistributedRoundTest, PscShardCountNeverChangesTallyBytes) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workdir_guard workdir;
  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 2;
  gen.events = 300;
  gen.days = 2;
  gen.seed = 111;
  workload::write_trace_dir(gen, workdir.path());

  deployment_plan plan = make_psc_plan(2, 2, 512);
  plan.round.group = crypto::group_backend::toy;
  plan.rng_seed = 113;
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.psc_extractor = "primary_sld";
  plan.schedule_rounds = 2;
  plan.round_duration_s = k_seconds_per_day;
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  expect_shard_count_independence(plan, bin, workdir.path(),
                                  "tormet-summary-v1");
}

TEST(DistributedRoundTest, PscP256ShardCountNeverChangesTallyBytes) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workdir_guard workdir;
  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 2;
  gen.events = 150;
  gen.seed = 127;
  workload::write_trace_dir(gen, workdir.path());

  deployment_plan plan = make_psc_plan(2, 1, 128);
  // Default group: the production P-256 backend — the seeded-insert path
  // must be byte-stable on real EC ciphertexts, not just the toy group.
  plan.rng_seed = 131;
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.psc_extractor = "primary_sld";
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  plan.dc_shards = 1;
  const std::string reference = run_reference_round(plan);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    plan.dc_shards = shards;
    const distributed_round_result result =
        run_distributed_round(plan, bin, workdir.path(), 90'000);
    for (const auto& n : result.nodes) {
      EXPECT_EQ(n.exit_code, 0)
          << "node " << n.id << " failed at " << shards << " shards";
    }
    EXPECT_EQ(result.tally, reference) << "tally diverged at " << shards
                                       << " shards";
  }
}

TEST(DistributedRoundTest, PrivcountShardCountNeverChangesTallyBytes) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workdir_guard workdir;
  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 2;
  gen.events = 300;
  gen.days = 3;
  gen.seed = 137;
  workload::write_trace_dir(gen, workdir.path());

  deployment_plan plan = make_privcount_plan(
      2, 2, core::default_specs_for("stream_taxonomy"));
  plan.rng_seed = 139;
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.instruments = {"stream_taxonomy"};
  plan.schedule_rounds = 3;
  plan.round_duration_s = k_seconds_per_day;
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  expect_shard_count_independence(plan, bin, workdir.path(),
                                  "tormet-summary-v1");
}

TEST(DeploymentPlanTest, DcShardsRoundTripsAndValidates) {
  deployment_plan plan = make_psc_plan(2, 1, 256);
  assign_free_ports(plan);
  // Default stays off the wire: pre-PR-7 plan files parse unchanged.
  EXPECT_EQ(serialize_plan(plan).find("dc_shards"), std::string::npos);
  EXPECT_EQ(serialize_plan(plan).find("dc_ingest_threads"),
            std::string::npos);
  plan.dc_shards = 16;
  plan.dc_ingest_threads = 4;
  const deployment_plan back = parse_plan(serialize_plan(plan));
  EXPECT_EQ(back.dc_shards, 16u);
  EXPECT_EQ(back.dc_ingest_threads, 4u);
  EXPECT_EQ(serialize_plan(back), serialize_plan(plan));
  EXPECT_THROW(parse_plan(serialize_plan(plan) + "dc_shards 0\n"),
               precondition_error);
  EXPECT_THROW(parse_plan(serialize_plan(plan) + "dc_ingest_threads 257\n"),
               precondition_error);
}

TEST(DistributedRoundTest, SeedChangesTheTally) {
  // Cheap determinism cross-check without processes: the reference round is
  // a pure function of the plan, and the seed actually reaches the nodes.
  deployment_plan plan = make_psc_plan(2, 2, 256);
  plan.round.group = crypto::group_backend::toy;
  plan.items_per_dc = 10;
  const std::string t1 = run_reference_round(plan);
  EXPECT_EQ(t1, run_reference_round(plan));
  // Different seeds draw different noise; a single raw-count collision is
  // possible, two in a row is vanishingly unlikely.
  plan.rng_seed += 1;
  const std::string t2 = run_reference_round(plan);
  plan.rng_seed += 1;
  const std::string t3 = run_reference_round(plan);
  EXPECT_TRUE(t1 != t2 || t1 != t3);
}

}  // namespace
}  // namespace tormet::cli
