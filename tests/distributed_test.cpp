// Distributed-deployment tests: plan (de)serialization, orchestrator port
// assignment, and the end-to-end guarantee the subsystem exists for — a
// multi-process protocol round over real fork/exec'd tormet_node processes
// and TCP sockets produces a tally byte-identical to the in-process round
// with the same seeds.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <set>

#include "src/cli/deployment_plan.h"
#include "src/cli/node_runner.h"
#include "src/cli/orchestrator.h"

namespace tormet::cli {
namespace {

/// tormet_node binary: ctest exports TORMET_NODE_BIN; fall back to the
/// binary next to this test executable (both live in the build dir).
[[nodiscard]] std::string node_binary() {
  if (const char* env = std::getenv("TORMET_NODE_BIN")) return env;
  return sibling_node_binary();
}

class workdir_guard {
 public:
  workdir_guard() : path_{make_round_workdir()} {}
  ~workdir_guard() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

TEST(DeploymentPlanTest, RoundTripsThroughSerialization) {
  deployment_plan plan = make_psc_plan(4, 3, 2048);
  plan.rng_seed = 99;
  plan.items_per_dc = 13;
  plan.shared_items = 5;
  plan.round.group = crypto::group_backend::toy;
  plan.round.sensitivity = 4.0;
  plan.round.privacy.epsilon = 0.25;
  plan.round.noise_enabled = false;
  plan.tally_path = "/tmp/t.out";
  plan.round_deadline_ms = 5000;
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    plan.nodes[i].port = static_cast<std::uint16_t>(9000 + i);
  }

  const deployment_plan back = parse_plan(serialize_plan(plan));
  EXPECT_EQ(serialize_plan(back), serialize_plan(plan));
  EXPECT_EQ(back.rng_seed, 99u);
  EXPECT_EQ(back.round.bins, 2048u);
  EXPECT_EQ(back.round.sensitivity, 4.0);
  EXPECT_FALSE(back.round.noise_enabled);
  EXPECT_EQ(back.nodes.size(), 8u);
  EXPECT_EQ(back.node(0).role, node_role::psc_ts);
  EXPECT_EQ(back.node(7).port, 9007);
  EXPECT_EQ(back.tally_server_id(), 0u);
}

TEST(DeploymentPlanTest, PrivcountCountersRoundTrip) {
  deployment_plan plan = make_privcount_plan(
      2, 3, {{"entry/connections", 12.0, 100.0}, {"exit/streams", 20.0, 1e6}});
  assign_free_ports(plan);  // parse rejects port-0 nodes by design
  const deployment_plan back = parse_plan(serialize_plan(plan));
  ASSERT_EQ(back.counters.size(), 2u);
  EXPECT_EQ(back.counters[1].name, "exit/streams");
  EXPECT_EQ(back.counters[1].expected_value, 1e6);
  EXPECT_EQ(back.ids_with(node_role::privcount_sk).size(), 3u);
}

TEST(DeploymentPlanTest, MalformedInputIsRejectedWithLineNumbers) {
  EXPECT_THROW(parse_plan("not-a-plan\n"), precondition_error);
  EXPECT_THROW(parse_plan("tormet-plan-v1\nbogus_key 1\n"), precondition_error);
  EXPECT_THROW(parse_plan("tormet-plan-v1\nnode 0 psc_ts\n"), precondition_error);
  EXPECT_THROW(parse_plan("tormet-plan-v1\nprotocol psc\n"), precondition_error);
  // Hand-config footguns rejected at parse time, not as transport timeouts:
  EXPECT_THROW(parse_plan("tormet-plan-v1\nnode 0 psc_ts 127.0.0.1 0\n"),
               precondition_error);
  EXPECT_THROW(parse_plan("tormet-plan-v1\n"
                          "node 0 psc_ts 127.0.0.1 9000\n"
                          "node 0 psc_cp 127.0.0.1 9001\n"),
               precondition_error);
}

TEST(DeploymentPlanTest, ItemsForDcAreDeterministicAndDisjoint) {
  deployment_plan plan = make_psc_plan(3, 1, 64);
  plan.items_per_dc = 10;
  plan.shared_items = 4;
  const auto dc_ids = plan.ids_with(node_role::psc_dc);
  std::set<std::string> unique_items;
  for (const auto id : dc_ids) {
    const auto items = items_for_dc(plan, id);
    ASSERT_EQ(items.size(), 14u);
    EXPECT_EQ(items, items_for_dc(plan, id));  // pure function of (plan, id)
    unique_items.insert(items.begin(), items.end());
  }
  // 3 DCs x 10 unique + 4 shared inserted by everyone.
  EXPECT_EQ(unique_items.size(), 34u);
}

TEST(OrchestratorTest, AssignsDistinctFreePorts) {
  deployment_plan plan = make_psc_plan(6, 3, 64);
  assign_free_ports(plan);
  std::set<std::uint16_t> ports;
  for (const auto& n : plan.nodes) {
    EXPECT_GT(n.port, 0);
    ports.insert(n.port);
  }
  EXPECT_EQ(ports.size(), plan.nodes.size());
}

// The acceptance check of the whole subsystem: a real multi-process round
// (fork/exec, TCP, chunked frames, DONE/ACK completion) must reproduce the
// deterministic in-process round bit for bit.
TEST(DistributedRoundTest, PscTallyIsByteIdenticalToInprocess) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  deployment_plan plan = make_psc_plan(4, 3, 1024);
  plan.round.group = crypto::group_backend::toy;
  plan.rng_seed = 42;
  plan.items_per_dc = 25;
  plan.shared_items = 6;

  workdir_guard workdir;
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir.path(), 60'000);
  ASSERT_EQ(result.nodes.size(), 8u);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }
  EXPECT_FALSE(result.tally.empty());
  EXPECT_EQ(result.tally, run_reference_round(plan));
  // The tally is real: with noise on, raw_count >= the distinct item count.
  EXPECT_NE(result.tally.find("protocol psc"), std::string::npos);
}

TEST(DistributedRoundTest, PrivcountTallyIsByteIdenticalToInprocess) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  deployment_plan plan = make_privcount_plan(
      3, 2, {{"entry/connections", 12.0, 100.0}, {"entry/circuits", 651.0, 100.0}});
  plan.rng_seed = 7;

  workdir_guard workdir;
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir.path(), 60'000);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }
  EXPECT_EQ(result.tally, run_reference_round(plan));
  EXPECT_NE(result.tally.find("entry/circuits"), std::string::npos);
}

TEST(DistributedRoundTest, SeedChangesTheTally) {
  // Cheap determinism cross-check without processes: the reference round is
  // a pure function of the plan, and the seed actually reaches the nodes.
  deployment_plan plan = make_psc_plan(2, 2, 256);
  plan.round.group = crypto::group_backend::toy;
  plan.items_per_dc = 10;
  const std::string t1 = run_reference_round(plan);
  EXPECT_EQ(t1, run_reference_round(plan));
  // Different seeds draw different noise; a single raw-count collision is
  // possible, two in a row is vanishingly unlikely.
  plan.rng_seed += 1;
  const std::string t2 = run_reference_round(plan);
  plan.rng_seed += 1;
  const std::string t3 = run_reference_round(plan);
  EXPECT_TRUE(t1 != t2 || t1 != t3);
}

}  // namespace
}  // namespace tormet::cli
