// PSC protocol tests: oblivious sets, full rounds over both group backends,
// union semantics, noise, dropout, estimator inversion, and a parameterized
// accuracy sweep across bin counts and cardinalities.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/net/inproc.h"
#include "src/psc/deployment.h"
#include "src/psc/estimator.h"
#include "src/tor/network.h"
#include "src/util/check.h"

namespace tormet::psc {
namespace {

// One synthetic consensus shared by every case (building it per test was
// pure overhead — tor::network copies it, so tests stay isolated).
[[nodiscard]] const tor::consensus& shared_consensus() {
  static const tor::consensus doc = [] {
    tor::consensus_params params;
    params.num_relays = 200;
    params.seed = 29;
    return tor::make_synthetic_consensus(params);
  }();
  return doc;
}

[[nodiscard]] tor::network make_net(std::uint64_t seed = 19) {
  return tor::network{shared_consensus(), seed};
}

TEST(ObliviousSetTest, BinMappingIsStableAndInRange) {
  crypto::deterministic_rng rng{1};
  const auto group = crypto::make_toy_group();
  const crypto::elgamal scheme{group};
  const auto kp = scheme.generate_keypair(rng);
  oblivious_set set{scheme, kp.pub, 64, rng};
  const std::size_t b1 = set.bin_of(as_bytes("item-a"));
  EXPECT_EQ(b1, set.bin_of(as_bytes("item-a")));
  EXPECT_LT(b1, 64u);
  EXPECT_NE(b1, set.bin_of(as_bytes("item-b")));  // 1/64 collision accepted: seed-stable
}

TEST(ObliviousSetTest, InsertSetsExactlyTheHashedBin) {
  crypto::deterministic_rng rng{2};
  const auto group = crypto::make_toy_group();
  const crypto::elgamal scheme{group};
  const auto kp = scheme.generate_keypair(rng);
  oblivious_set set{scheme, kp.pub, 32, rng};

  set.insert(as_bytes("x"), rng);
  set.insert(as_bytes("x"), rng);  // idempotent by construction
  const std::size_t hot = set.bin_of(as_bytes("x"));
  const auto& slots = set.slots();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const bool is_one = !group->is_identity(scheme.decrypt(kp.secret, slots[i]));
    EXPECT_EQ(is_one, i == hot) << "bin " << i;
  }
}

class PscRoundTest : public ::testing::TestWithParam<crypto::group_backend> {
 protected:
  PscRoundTest() : net_{make_net()} {
    guards_ = net_.net().eligible(tor::position::guard);
  }

  deployment_config config(std::uint64_t bins, bool noise, std::size_t n_dc = 4,
                           std::size_t n_cp = 3) {
    deployment_config cfg;
    cfg.num_computation_parties = n_cp;
    cfg.measured_relays.assign(guards_.begin(),
                               guards_.begin() + static_cast<long>(n_dc));
    cfg.round.bins = bins;
    cfg.round.group = GetParam();
    cfg.round.noise_enabled = noise;
    cfg.round.sensitivity = 4.0;
    return cfg;
  }

  tor::network net_;
  std::vector<tor::relay_id> guards_;
};

TEST_P(PscRoundTest, CountsUnionWithoutNoise) {
  net::inproc_net bus;
  deployment dep{bus, config(256, /*noise=*/false)};
  dep.set_extractor([](const tor::event& ev) -> std::optional<std::string> {
    if (const auto* c = std::get_if<tor::entry_connection_event>(&ev.body)) {
      return std::to_string(c->client_ip);
    }
    return std::nullopt;
  });
  dep.attach(net_);

  std::set<std::uint32_t> observed_ips;
  const round_outcome out = dep.run_round([&] {
    for (int i = 0; i < 100; ++i) {
      tor::client_profile p;
      p.ip = static_cast<std::uint32_t>(1000 + i % 60);  // duplicates across clients
      p.num_guards = 2;
      const tor::client_id c = net_.add_client(p);
      // Two connection rounds: same IP at possibly multiple guards — the
      // union must still count it once.
      net_.connect_to_guards(c, sim_time{0});
      for (const auto g : net_.guards_of(c)) {
        if (dep.measured_relays().contains(g)) observed_ips.insert(p.ip);
      }
    }
  });

  EXPECT_EQ(out.total_noise_bits, 0u);
  // Without noise, raw_count == occupied bins of the union. Collisions can
  // only reduce it.
  EXPECT_LE(out.raw_count, observed_ips.size());
  EXPECT_GE(out.raw_count, observed_ips.size() * 9 / 10);
  // Collision-corrected estimate should be close to the truth.
  EXPECT_NEAR(out.estimate.cardinality, static_cast<double>(observed_ips.size()),
              static_cast<double>(observed_ips.size()) * 0.15 + 3.0);
}

TEST_P(PscRoundTest, NoiseShiftsCountByExpectedAmount) {
  net::inproc_net bus;
  deployment_config cfg = config(128, /*noise=*/true);
  // Light noise so the p256 backend stays fast: ~20 bits/CP still exercises
  // the full noise path, and the T/2 shift assertion below is scale-free.
  // The paper-strength parameters run in the [slow] big-bin round test.
  cfg.round.sensitivity = 1.0;
  cfg.round.privacy = {2.0, 1e-4};
  deployment dep{bus, cfg};
  dep.set_extractor([](const tor::event&) { return std::nullopt; });
  dep.attach(net_);

  const round_outcome out = dep.run_round([] {});
  EXPECT_GT(out.total_noise_bits, 0u);
  // No items: raw count is pure Binomial(T, 1/2) noise.
  const double t = static_cast<double>(out.total_noise_bits);
  EXPECT_NEAR(static_cast<double>(out.raw_count), t / 2.0,
              6.0 * std::sqrt(t) / 2.0 + 1.0);
  // The estimator subtracts the expected offset: estimate near zero.
  EXPECT_LT(out.estimate.cardinality, t);
}

TEST_P(PscRoundTest, DcDropoutExcludesItsItems) {
  net::inproc_net bus;
  deployment dep{bus, config(256, /*noise=*/false, /*n_dc=*/3)};
  dep.set_extractor([](const tor::event& ev) -> std::optional<std::string> {
    if (const auto* c = std::get_if<tor::entry_connection_event>(&ev.body)) {
      return std::to_string(c->client_ip);
    }
    return std::nullopt;
  });
  dep.attach(net_);

  tally_server& ts = dep.ts();
  round_params rp;
  rp.bins = 256;
  rp.group = GetParam();
  rp.noise_enabled = false;
  rp.sensitivity = 4.0;
  ts.begin_round(rp);
  bus.run_until_quiescent();
  ASSERT_TRUE(ts.setup_complete());

  // Traffic at all DCs.
  for (int i = 0; i < 50; ++i) {
    tor::client_profile p;
    p.ip = static_cast<std::uint32_t>(i);
    p.promiscuous = true;  // guarantees every measured relay sees it
    const tor::client_id c = net_.add_client(p);
    net_.connect_to_guards(c, sim_time{0});
  }

  // Kill one DC (first DC node id = 1 + n_cp = 4).
  bus.partition_node(4);
  ts.request_reports();
  bus.run_until_quiescent();
  EXPECT_FALSE(ts.result_ready());
  EXPECT_EQ(ts.reporting_dcs().size(), 2u);

  bus.heal_node(4);     // healing does not resurrect its report
  ts.force_mixing();
  bus.run_until_quiescent();
  ASSERT_TRUE(ts.result_ready());
  // Every IP was seen by every DC (promiscuous), so the union over the two
  // surviving DCs is still all 50 items.
  const cardinality_estimate est =
      estimate_cardinality(ts.raw_count(), 256, ts.total_noise_bits());
  EXPECT_NEAR(est.cardinality, 50.0, 10.0);
}

INSTANTIATE_TEST_SUITE_P(Backends, PscRoundTest,
                         ::testing::Values(crypto::group_backend::toy,
                                           crypto::group_backend::p256),
                         [](const auto& info) {
                           return info.param == crypto::group_backend::toy
                                      ? "toy"
                                      : "p256";
                         });

// Accuracy sweep: bins x cardinality, toy backend (speed). Property: the
// collision-corrected estimate tracks the true distinct count.
struct sweep_case {
  std::uint64_t bins;
  std::size_t items;
};

class PscAccuracySweep : public ::testing::TestWithParam<sweep_case> {};

TEST_P(PscAccuracySweep, EstimatorRecoversCardinality) {
  const auto [bins, items] = GetParam();
  crypto::deterministic_rng rng{42};
  const auto group = crypto::make_toy_group();
  const crypto::elgamal scheme{group};
  const auto kp = scheme.generate_keypair(rng);

  oblivious_set set{scheme, kp.pub, bins, rng};
  for (std::size_t i = 0; i < items; ++i) {
    set.insert(as_bytes("item" + std::to_string(i)), rng);
  }
  std::uint64_t occupied = 0;
  for (const auto& slot : set.slots()) {
    if (!group->is_identity(scheme.decrypt(kp.secret, slot))) ++occupied;
  }
  const cardinality_estimate est = estimate_cardinality(occupied, bins, 0);
  // Within 5 occupancy-standard-deviations plus small absolute slack.
  const double slack =
      5.0 * std::sqrt(static_cast<double>(items) + 1.0) + 8.0;
  EXPECT_NEAR(est.cardinality, static_cast<double>(items), slack)
      << "bins=" << bins << " items=" << items;
}

INSTANTIATE_TEST_SUITE_P(
    BinsByItems, PscAccuracySweep,
    ::testing::Values(sweep_case{256, 20}, sweep_case{256, 100},
                      sweep_case{1024, 100}, sweep_case{1024, 500},
                      sweep_case{4096, 500}, sweep_case{4096, 2000},
                      sweep_case{16384, 2000}, sweep_case{16384, 8000}),
    [](const auto& info) {
      return "b" + std::to_string(info.param.bins) + "_n" +
             std::to_string(info.param.items);
    });

TEST(PscEstimatorTest, ForwardModelAndInversion) {
  EXPECT_DOUBLE_EQ(expected_occupancy(0, 128), 0.0);
  EXPECT_NEAR(expected_occupancy(128, 128), 128 * (1 - std::pow(1 - 1.0 / 128, 128)),
              1e-9);
  // Inversion is the exact inverse of the forward model.
  for (const double n : {5.0, 50.0, 200.0}) {
    const double occ = expected_occupancy(n, 512);
    const cardinality_estimate est =
        estimate_cardinality(static_cast<std::uint64_t>(occ + 0.5), 512, 0);
    EXPECT_NEAR(est.cardinality, n, n * 0.05 + 1.5);
  }
}

TEST(PscEstimatorTest, NoiseSubtractionAndClamping) {
  // Raw below expected noise clamps to zero.
  const cardinality_estimate low = estimate_cardinality(3, 64, 20);
  EXPECT_DOUBLE_EQ(low.cardinality, 0.0);
  // Full table clamps to bins-1 (finite inverse).
  const cardinality_estimate full = estimate_cardinality(64, 64, 0);
  EXPECT_GT(full.cardinality, 100.0);
  EXPECT_THROW((void)estimate_cardinality(1, 1, 0), tormet::precondition_error);
}

TEST(PscMessagesTest, VectorRoundTrip) {
  const auto group = crypto::make_toy_group();
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng rng{3};
  const auto kp = scheme.generate_keypair(rng);

  std::vector<crypto::elgamal_ciphertext> cts;
  for (int i = 0; i < 5; ++i) cts.push_back(scheme.encrypt_one(kp.pub, rng));

  vector_msg m;
  m.round_id = 11;
  m.ciphertexts = encode_ciphertexts(scheme, cts);
  const net::message wire = encode_vector(2, 3, msg_type::mix_pass, m);
  const vector_msg back = decode_vector(wire);
  EXPECT_EQ(back.round_id, 11u);
  const auto decoded = decode_ciphertexts(scheme, back.ciphertexts);
  ASSERT_EQ(decoded.size(), cts.size());
  for (std::size_t i = 0; i < cts.size(); ++i) {
    EXPECT_TRUE(group->equal(scheme.decrypt(kp.secret, decoded[i]),
                             scheme.decrypt(kp.secret, cts[i])));
  }
}

TEST(PscMessagesTest, ConfigureRoundTrips) {
  cp_configure_msg cp;
  cp.round_id = 5;
  cp.bins = 4096;
  cp.noise_bits = 100;
  cp.group = 1;
  cp.cp_chain = {1, 2, 3};
  const cp_configure_msg cp_back = decode_cp_configure(encode_cp_configure(0, 1, cp));
  EXPECT_EQ(cp_back.bins, 4096u);
  EXPECT_EQ(cp_back.cp_chain, cp.cp_chain);

  dc_configure_msg dc;
  dc.round_id = 5;
  dc.bins = 4096;
  dc.group = 1;
  dc.joint_pk = {1, 2, 3, 4, 5, 6, 7, 8};
  const dc_configure_msg dc_back = decode_dc_configure(encode_dc_configure(0, 4, dc));
  EXPECT_EQ(dc_back.joint_pk, dc.joint_pk);
}

}  // namespace
}  // namespace tormet::psc
