// Crypto-layer tests: hash vectors, deterministic DRBG, group law and
// ElGamal algebra over both backends (parameterized), secret sharing, and
// the rerandomizing shuffle.
#include <gtest/gtest.h>

#include "src/crypto/elgamal.h"
#include "src/crypto/group.h"
#include "src/crypto/hmac.h"
#include "src/crypto/secret_sharing.h"
#include "src/crypto/secure_rng.h"
#include "src/crypto/sha256.h"
#include "src/crypto/shuffle.h"
#include "src/util/bytes.h"

namespace tormet::crypto {
namespace {

TEST(Sha256Test, NistVectors) {
  // FIPS 180-2 test vectors.
  EXPECT_EQ(to_hex(sha256(std::string_view{""})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(sha256(std::string_view{"abc"})),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  sha256_hasher h;
  h.update("hello ");
  h.update("world");
  EXPECT_EQ(h.finish(), sha256(std::string_view{"hello world"}));
  // The hasher resets after finish.
  h.update("abc");
  EXPECT_EQ(h.finish(), sha256(std::string_view{"abc"}));
}

TEST(Sha256Test, FramedUpdatePreventsAmbiguity) {
  sha256_hasher h1;
  h1.update_framed(as_bytes("ab"));
  h1.update_framed(as_bytes("c"));
  sha256_hasher h2;
  h2.update_framed(as_bytes("a"));
  h2.update_framed(as_bytes("bc"));
  EXPECT_NE(h1.finish(), h2.finish());
}

TEST(Sha256Test, Trunc64Deterministic) {
  EXPECT_EQ(sha256_trunc64(std::string_view{"x"}),
            sha256_trunc64(std::string_view{"x"}));
  EXPECT_NE(sha256_trunc64(std::string_view{"x"}),
            sha256_trunc64(std::string_view{"y"}));
}

TEST(HmacTest, Rfc4231Vector) {
  // RFC 4231 test case 2: key "Jefe", data "what do ya want for nothing?".
  const auto mac = hmac_sha256(as_bytes("Jefe"),
                               as_bytes("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(byte_view{mac.data(), mac.size()}),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(SecureRngTest, SystemRngProducesBytes) {
  system_rng rng;
  byte_buffer a(32, 0);
  byte_buffer b(32, 0);
  rng.fill(a);
  rng.fill(b);
  EXPECT_NE(a, b);  // 2^-256 failure probability
}

TEST(SecureRngTest, DeterministicReproducible) {
  deterministic_rng a{42};
  deterministic_rng b{42};
  byte_buffer x(100, 0);
  byte_buffer y(100, 0);
  a.fill(x);
  b.fill(y);
  EXPECT_EQ(x, y);
  // Continued output differs from restarting.
  a.fill(x);
  deterministic_rng c{42};
  c.fill(y);
  EXPECT_NE(x, y);
}

TEST(SecureRngTest, BelowUnbiasedSmallBound) {
  deterministic_rng rng{7};
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.below(5)];
  for (const int c : counts) EXPECT_NEAR(c, 10000, 400);
}

// ---------------------------------------------------------------------------
// Group + ElGamal over both backends.
// ---------------------------------------------------------------------------

class GroupTest : public ::testing::TestWithParam<group_backend> {
 protected:
  std::shared_ptr<const group> g_ = make_group(GetParam());
  deterministic_rng rng_{12345};
};

TEST_P(GroupTest, IdentityLaws) {
  const group_element id = g_->identity();
  EXPECT_TRUE(g_->is_identity(id));
  const group_element gen = g_->generator();
  EXPECT_FALSE(g_->is_identity(gen));
  EXPECT_TRUE(g_->equal(g_->add(gen, id), gen));
  EXPECT_TRUE(g_->is_identity(g_->add(gen, g_->negate(gen))));
}

TEST_P(GroupTest, ScalarMultiplicationConsistency) {
  const scalar k2 = g_->scalar_from_u64(2);
  const scalar k3 = g_->scalar_from_u64(3);
  const scalar k5 = g_->scalar_from_u64(5);
  const group_element gen = g_->generator();
  // 2G + 3G == 5G
  EXPECT_TRUE(g_->equal(g_->add(g_->mul(gen, k2), g_->mul(gen, k3)),
                        g_->mul(gen, k5)));
  // mul_generator matches mul(generator, .)
  EXPECT_TRUE(g_->equal(g_->mul_generator(k5), g_->mul(gen, k5)));
}

TEST_P(GroupTest, ScalarAddMatchesPointAdd) {
  const scalar a = g_->random_scalar(rng_);
  const scalar b = g_->random_scalar(rng_);
  const scalar sum = g_->scalar_add(a, b);
  EXPECT_TRUE(g_->equal(g_->mul_generator(sum),
                        g_->add(g_->mul_generator(a), g_->mul_generator(b))));
}

TEST_P(GroupTest, EncodeDecodeRoundTrip) {
  const group_element p = g_->random_element(rng_);
  const byte_buffer enc = g_->encode(p);
  EXPECT_TRUE(g_->equal(g_->decode(enc), p));
  // Identity also roundtrips (toy encodes 1; p256 uses the 1-byte infinity).
  const byte_buffer id_enc = g_->encode(g_->identity());
  EXPECT_TRUE(g_->is_identity(g_->decode(id_enc)));
}

TEST_P(GroupTest, ScalarEncodeDecodeRoundTrip) {
  const scalar k = g_->random_scalar(rng_);
  const byte_buffer enc = g_->encode_scalar(k);
  const scalar back = g_->decode_scalar(enc);
  EXPECT_TRUE(g_->equal(g_->mul_generator(k), g_->mul_generator(back)));
}

TEST_P(GroupTest, RandomScalarsNonZeroAndDistinct) {
  const scalar a = g_->random_scalar(rng_);
  const scalar b = g_->random_scalar(rng_);
  EXPECT_FALSE(g_->is_identity(g_->mul_generator(a)));
  EXPECT_FALSE(g_->equal(g_->mul_generator(a), g_->mul_generator(b)));
}

TEST_P(GroupTest, ElGamalRoundTrip) {
  const elgamal scheme{g_};
  const elgamal_keypair kp = scheme.generate_keypair(rng_);
  const group_element msg = g_->random_element(rng_);
  const elgamal_ciphertext ct = scheme.encrypt(kp.pub, msg, rng_);
  EXPECT_TRUE(g_->equal(scheme.decrypt(kp.secret, ct), msg));
}

TEST_P(GroupTest, ElGamalHomomorphism) {
  const elgamal scheme{g_};
  const elgamal_keypair kp = scheme.generate_keypair(rng_);
  const group_element m1 = g_->random_element(rng_);
  const group_element m2 = g_->random_element(rng_);
  const elgamal_ciphertext sum =
      scheme.add(scheme.encrypt(kp.pub, m1, rng_), scheme.encrypt(kp.pub, m2, rng_));
  EXPECT_TRUE(g_->equal(scheme.decrypt(kp.secret, sum), g_->add(m1, m2)));
}

TEST_P(GroupTest, ElGamalRerandomizePreservesPlaintext) {
  const elgamal scheme{g_};
  const elgamal_keypair kp = scheme.generate_keypair(rng_);
  const group_element msg = g_->random_element(rng_);
  const elgamal_ciphertext ct = scheme.encrypt(kp.pub, msg, rng_);
  const elgamal_ciphertext rr = scheme.rerandomize(kp.pub, ct, rng_);
  // Different ciphertext bytes, same plaintext.
  EXPECT_NE(scheme.encode(ct), scheme.encode(rr));
  EXPECT_TRUE(g_->equal(scheme.decrypt(kp.secret, rr), msg));
}

TEST_P(GroupTest, ElGamalDistributedDecryption) {
  const elgamal scheme{g_};
  // Three parties with key shares; joint pk = sum of pubs.
  const elgamal_keypair kp1 = scheme.generate_keypair(rng_);
  const elgamal_keypair kp2 = scheme.generate_keypair(rng_);
  const elgamal_keypair kp3 = scheme.generate_keypair(rng_);
  const std::vector<group_element> pubs{kp1.pub, kp2.pub, kp3.pub};
  const group_element joint = scheme.combine_public_keys(pubs);

  const group_element msg = g_->random_element(rng_);
  elgamal_ciphertext ct = scheme.encrypt(joint, msg, rng_);
  ct = scheme.strip_share(ct, kp1.secret);
  ct = scheme.strip_share(ct, kp2.secret);
  ct = scheme.strip_share(ct, kp3.secret);
  EXPECT_TRUE(g_->equal(ct.b, msg));
}

TEST_P(GroupTest, ElGamalZeroAndOnePlaintexts) {
  const elgamal scheme{g_};
  const elgamal_keypair kp = scheme.generate_keypair(rng_);
  const elgamal_ciphertext zero = scheme.encrypt_zero(kp.pub, rng_);
  EXPECT_TRUE(g_->is_identity(scheme.decrypt(kp.secret, zero)));
  const elgamal_ciphertext one = scheme.encrypt_one(kp.pub, rng_);
  EXPECT_FALSE(g_->is_identity(scheme.decrypt(kp.secret, one)));
}

TEST_P(GroupTest, ElGamalCiphertextCodec) {
  const elgamal scheme{g_};
  const elgamal_keypair kp = scheme.generate_keypair(rng_);
  const group_element msg = g_->random_element(rng_);
  const elgamal_ciphertext ct = scheme.encrypt(kp.pub, msg, rng_);
  const elgamal_ciphertext back = scheme.decode(scheme.encode(ct));
  EXPECT_TRUE(g_->equal(scheme.decrypt(kp.secret, back), msg));
}

TEST_P(GroupTest, ShuffleIsPermutationWithSamePlaintexts) {
  const elgamal scheme{g_};
  const elgamal_keypair kp = scheme.generate_keypair(rng_);
  std::vector<elgamal_ciphertext> input;
  std::vector<byte_buffer> plain_enc;
  for (int i = 0; i < 20; ++i) {
    const group_element m = g_->random_element(rng_);
    plain_enc.push_back(g_->encode(m));
    input.push_back(scheme.encrypt(kp.pub, m, rng_));
  }
  shuffle_transcript transcript;
  shuffle_opening opening;
  const std::vector<elgamal_ciphertext> output = shuffle_and_rerandomize(
      scheme, kp.pub, input, rng_, transcript, &opening);

  ASSERT_EQ(output.size(), input.size());
  EXPECT_TRUE(verify_shuffle_structure(scheme, input, output, transcript));
  EXPECT_TRUE(verify_shuffle_opening(scheme, kp.secret, input, output,
                                     transcript, opening));

  // Decrypted multiset matches.
  std::multiset<std::string> in_plain;
  std::multiset<std::string> out_plain;
  for (std::size_t i = 0; i < input.size(); ++i) {
    in_plain.insert(to_hex(g_->encode(scheme.decrypt(kp.secret, input[i]))));
    out_plain.insert(to_hex(g_->encode(scheme.decrypt(kp.secret, output[i]))));
  }
  EXPECT_EQ(in_plain, out_plain);
}

TEST_P(GroupTest, ShuffleVerificationRejectsTampering) {
  const elgamal scheme{g_};
  const elgamal_keypair kp = scheme.generate_keypair(rng_);
  std::vector<elgamal_ciphertext> input;
  for (int i = 0; i < 8; ++i) {
    input.push_back(scheme.encrypt_one(kp.pub, rng_));
  }
  shuffle_transcript transcript;
  shuffle_opening opening;
  std::vector<elgamal_ciphertext> output = shuffle_and_rerandomize(
      scheme, kp.pub, input, rng_, transcript, &opening);

  // Replace one output ciphertext: structure check fails (digest mismatch).
  std::vector<elgamal_ciphertext> tampered = output;
  tampered[3] = scheme.encrypt_zero(kp.pub, rng_);
  EXPECT_FALSE(verify_shuffle_structure(scheme, input, tampered, transcript));

  // Tamper with the opening permutation: opening check fails.
  shuffle_opening bad = opening;
  std::swap(bad.permutation[0], bad.permutation[1]);
  EXPECT_FALSE(verify_shuffle_opening(scheme, kp.secret, input, output,
                                      transcript, bad));
}

INSTANTIATE_TEST_SUITE_P(Backends, GroupTest,
                         ::testing::Values(group_backend::toy,
                                           group_backend::p256),
                         [](const auto& info) {
                           return info.param == group_backend::toy ? "toy"
                                                                   : "p256";
                         });

// ---------------------------------------------------------------------------
// Secret sharing.
// ---------------------------------------------------------------------------

TEST(SecretSharingTest, SharesRecombine) {
  deterministic_rng rng{5};
  for (const std::uint64_t value : {0ULL, 1ULL, 123456789ULL, ~0ULL}) {
    for (const std::size_t n : {1u, 2u, 3u, 16u}) {
      const auto shares = additive_shares(value, n, rng);
      ASSERT_EQ(shares.size(), n);
      EXPECT_EQ(combine_shares(shares), value);
    }
  }
}

TEST(SecretSharingTest, ProperSubsetsLookRandom) {
  // The first n-1 shares of value v and of value w are identically
  // distributed; sanity-check that sharing the same value twice gives
  // different shares (they are fresh randomness).
  deterministic_rng rng{6};
  const auto s1 = additive_shares(42, 3, rng);
  const auto s2 = additive_shares(42, 3, rng);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(combine_shares(s1), combine_shares(s2));
}

TEST(SecretSharingTest, SignedMapping) {
  EXPECT_EQ(to_signed_count(0), 0);
  EXPECT_EQ(to_signed_count(5), 5);
  EXPECT_EQ(to_signed_count(static_cast<std::uint64_t>(-7)), -7);
}

TEST(ShuffleTest, RandomPermutationIsBijection) {
  deterministic_rng rng{8};
  const auto perm = random_permutation(100, rng);
  std::vector<bool> seen(100, false);
  for (const auto i : perm) {
    ASSERT_LT(i, 100u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

}  // namespace
}  // namespace tormet::crypto
