// Differential tests across the two group backends and the serial/pooled
// engine paths. The protocol logic is backend-agnostic: for the same
// deployment seed, a full PSC round must walk the same message sequence
// with the same vector arities and produce the same raw count on toy62 and
// p256 (the encodings differ — element widths differ — but nothing about
// the protocol's shape or its result may). Within one backend the stronger
// property holds: the pooled engine run is byte-identical to the inline
// run, because shard boundaries and per-shard RNG streams never depend on
// the worker count.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "src/net/inproc.h"
#include "src/psc/deployment.h"
#include "src/psc/messages.h"
#include "src/tor/network.h"

namespace tormet::psc {
namespace {

/// Transport wrapper that records every message send: the full payload (for
/// within-backend byte comparison) plus the decoded ciphertext count of
/// vector messages (for cross-backend shape comparison).
class recording_net final : public net::transport {
 public:
  struct entry {
    std::uint16_t type = 0;
    net::node_id from = 0;
    net::node_id to = 0;
    std::size_t vector_len = 0;  // 0 for non-vector messages
    byte_buffer payload;
  };

  void register_node(net::node_id id, net::message_handler handler) override {
    inner_.register_node(id, std::move(handler));
  }

  void send(net::message msg) override {
    entry e;
    e.type = msg.type;
    e.from = msg.from;
    e.to = msg.to;
    e.payload = msg.payload;
    switch (static_cast<msg_type>(msg.type)) {
      case msg_type::dc_vector:
      case msg_type::mix_pass:
      case msg_type::decrypt_pass:
      case msg_type::final_vector:
        e.vector_len = decode_vector(msg).ciphertexts.size();
        break;
      default:
        break;
    }
    trace_.push_back(std::move(e));
    inner_.send(std::move(msg));
  }

  std::size_t run_until_quiescent() override {
    return inner_.run_until_quiescent();
  }

  [[nodiscard]] const std::vector<entry>& trace() const noexcept {
    return trace_;
  }

 private:
  net::inproc_net inner_;
  std::vector<entry> trace_;
};

struct round_run {
  std::vector<recording_net::entry> trace;
  round_outcome outcome;
};

/// One fixed workload (60 client IPs, 40 distinct) through a full round.
/// Cross-backend comparisons run noiseless: the two backends consume the
/// session RNG at different rates (different rejection sampling), so noise
/// coin values — though not their count — would legitimately diverge.
[[nodiscard]] round_run run_round(crypto::group_backend backend,
                                  std::size_t worker_threads,
                                  bool noise = false) {
  tor::consensus_params params;
  params.num_relays = 120;
  params.seed = 29;
  tor::network net{tor::make_synthetic_consensus(params), 19};
  const auto guards = net.net().eligible(tor::position::guard);

  recording_net bus;
  deployment_config cfg;
  cfg.num_computation_parties = 3;
  cfg.measured_relays.assign(guards.begin(), guards.begin() + 3);
  cfg.round.bins = 128;
  cfg.round.group = backend;
  cfg.round.noise_enabled = noise;
  cfg.round.sensitivity = 1.0;
  cfg.round.privacy = {2.0, 1e-4};  // ~20 noise bits/CP: fast on p256
  cfg.rng_seed = 777;
  cfg.worker_threads = worker_threads;
  deployment dep{bus, cfg};
  dep.set_extractor([](const tor::event& ev) -> std::optional<std::string> {
    if (const auto* c = std::get_if<tor::entry_connection_event>(&ev.body)) {
      return std::to_string(c->client_ip);
    }
    return std::nullopt;
  });
  dep.attach(net);

  round_run run;
  run.outcome = dep.run_round([&] {
    for (int i = 0; i < 60; ++i) {
      tor::client_profile p;
      p.ip = static_cast<std::uint32_t>(5000 + i % 40);
      p.promiscuous = true;  // every DC sees every IP: workload is
                             // independent of guard assignment
      const tor::client_id c = net.add_client(p);
      net.connect_to_guards(c, sim_time{0});
    }
  });
  run.trace = bus.trace();
  return run;
}

void expect_same_shape(const round_run& a, const round_run& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].type, b.trace[i].type) << "message " << i;
    EXPECT_EQ(a.trace[i].from, b.trace[i].from) << "message " << i;
    EXPECT_EQ(a.trace[i].to, b.trace[i].to) << "message " << i;
    EXPECT_EQ(a.trace[i].vector_len, b.trace[i].vector_len) << "message " << i;
  }
  EXPECT_EQ(a.outcome.raw_count, b.outcome.raw_count);
  EXPECT_EQ(a.outcome.total_noise_bits, b.outcome.total_noise_bits);
  EXPECT_DOUBLE_EQ(a.outcome.estimate.cardinality, b.outcome.estimate.cardinality);
}

void expect_identical_bytes(const round_run& a, const round_run& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].payload, b.trace[i].payload) << "message " << i;
  }
  EXPECT_EQ(a.outcome.raw_count, b.outcome.raw_count);
}

TEST(BackendDifferentialTest, ToyAndP256ProduceTheSameProtocolTranscript) {
  const round_run toy_serial = run_round(crypto::group_backend::toy, 0);
  const round_run p256_serial = run_round(crypto::group_backend::p256, 0);
  expect_same_shape(toy_serial, p256_serial);

  const round_run toy_pooled = run_round(crypto::group_backend::toy, 4);
  const round_run p256_pooled = run_round(crypto::group_backend::p256, 4);
  expect_same_shape(toy_pooled, p256_pooled);
}

TEST(BackendDifferentialTest, PooledRunIsByteIdenticalToSerialRun) {
  // Same backend, same seed, noise enabled: worker count must not leak into
  // the transcript at all (the engine's determinism contract, end to end).
  expect_identical_bytes(run_round(crypto::group_backend::toy, 0, true),
                         run_round(crypto::group_backend::toy, 4, true));
  expect_identical_bytes(run_round(crypto::group_backend::p256, 0, true),
                         run_round(crypto::group_backend::p256, 4, true));
}

}  // namespace
}  // namespace tormet::psc
