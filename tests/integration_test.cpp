// End-to-end integration tests: measurement_study + deployments + workload
// drivers + inference, mirroring miniature versions of the paper's
// experiments, plus a PrivCount round over real TCP loopback sockets.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/instruments.h"
#include "src/core/measurement_study.h"
#include "src/net/inproc.h"
#include "src/net/tcp.h"
#include "src/stats/confidence.h"
#include "src/stats/guard_model.h"
#include "src/stats/psc_ci.h"
#include "src/workload/browsing.h"
#include "src/workload/population.h"

namespace tormet {
namespace {

[[nodiscard]] core::study_config small_study() {
  core::study_config cfg;
  cfg.consensus.num_relays = 1500;
  cfg.consensus.seed = 101;
  cfg.target_exit_fraction = 0.05;   // larger fractions shrink test noise
  cfg.target_guard_fraction = 0.04;
  cfg.seed = 99;
  return cfg;
}

TEST(StudyTest, MeasuredRelaySelection) {
  core::measurement_study study{small_study()};
  EXPECT_FALSE(study.measured_relays().empty());
  EXPECT_FALSE(study.measured_exits().empty());
  EXPECT_FALSE(study.measured_guards().empty());
  // Fractions should be near the configured targets.
  EXPECT_NEAR(study.fraction(tor::position::exit, study.measured_exits()), 0.05,
              0.03);
  EXPECT_GT(study.fraction(tor::position::guard), 0.0);
  EXPECT_GT(study.hsdir_fraction(), 0.0);
}

TEST(IntegrationTest, StreamTaxonomyInferenceMatchesGroundTruth) {
  core::measurement_study study{small_study()};
  tor::network& net = study.network();

  net::inproc_net bus;
  privcount::deployment_config cfg = study.privcount_config();
  cfg.noise_enabled = false;  // isolate sampling error from DP noise
  privcount::deployment dep{bus, cfg};
  dep.add_instrument(core::instrument_stream_taxonomy());
  dep.attach(net);

  const auto alexa = std::make_shared<const workload::alexa_list>(
      workload::alexa_list::make_synthetic({.size = 20'000, .seed = 3}));
  workload::browsing_params bp;
  bp.seed = 17;
  workload::browsing_driver browser{net, *alexa, bp};

  std::vector<tor::client_id> clients;
  for (int i = 0; i < 400; ++i) {
    tor::client_profile p;
    p.ip = static_cast<std::uint32_t>(i);
    clients.push_back(net.add_client(p));
  }

  const std::vector<privcount::counter_spec> specs{
      {"streams/total", 20, 1000},
      {"streams/initial", 20, 100},
      {"streams/initial/hostname", 20, 100},
      {"streams/initial/ipv4", 20, 10},
      {"streams/initial/ipv6", 20, 10},
      {"streams/initial/hostname/web", 20, 100},
      {"streams/initial/hostname/other", 20, 10},
  };
  const auto results = dep.run_round(specs, [&] {
    browser.run_day(clients, sim_time{0});
  });

  std::map<std::string, double> r;
  for (const auto& c : results) r[c.name] = static_cast<double>(c.value);

  // Infer network totals by dividing by the measured exit fraction and
  // compare with the simulator's ground truth.
  const double p = study.fraction(tor::position::exit, study.measured_exits());
  const tor::ground_truth& t = net.truth();
  EXPECT_GT(r["streams/total"], 0.0);
  EXPECT_NEAR(r["streams/total"] / p, static_cast<double>(t.exit_streams_total),
              static_cast<double>(t.exit_streams_total) * 0.25);
  EXPECT_NEAR(r["streams/initial"] / p,
              static_cast<double>(t.exit_streams_initial),
              static_cast<double>(t.exit_streams_initial) * 0.3);
  // The Fig 1 shape: ~5 % of streams are initial; hostname+web dominates.
  EXPECT_NEAR(r["streams/initial"] / r["streams/total"], 0.05, 0.015);
  EXPECT_GT(r["streams/initial/hostname"], 0.9 * r["streams/initial"]);
  EXPECT_GT(r["streams/initial/hostname/web"],
            0.9 * r["streams/initial/hostname"]);
}

TEST(IntegrationTest, PscUniqueClientIpsTrackTruth) {
  core::measurement_study study{small_study()};
  tor::network& net = study.network();
  auto geo = std::make_shared<workload::geoip_db>(workload::geoip_db::make_synthetic());

  net::inproc_net bus;
  psc::deployment_config cfg = study.psc_config();
  cfg.measured_relays = study.measured_guards();
  cfg.round.bins = 8192;
  cfg.round.group = crypto::group_backend::toy;
  cfg.round.noise_enabled = false;
  psc::deployment dep{bus, cfg};
  dep.set_extractor(core::extract_client_ip());
  dep.attach(net);

  workload::population_params pp;
  pp.network_scale = 1.0;
  pp.selective_clients = 3000;
  pp.promiscuous_clients = 10;
  pp.seed = 23;
  // Keep entry days connection-only for speed.
  pp.web_rates = {3.0, 0.0, 0.0, 0.0, 0.0};
  pp.chat_rates = {3.0, 0.0, 0.0, 0.0, 0.0};
  pp.bot_rates = {10.0, 0.0, 0.0, 0.0, 0.0};
  pp.idle_rates = {1.0, 0.0, 0.0, 0.0, 0.0};
  pp.uae_rates = {3.0, 0.0, 0.0, 0.0, 0.0};
  pp.promiscuous_rates = {0.0, 0.0, 0.0, 0.0, 0.0};
  workload::population pop{net, *geo, pp};

  const psc::round_outcome out = dep.run_round([&] {
    pop.run_entry_day(sim_time{0});
  });

  // Expected uniques: clients with at least one measured guard (their daily
  // connections make observation near-certain for rates >= 1; the band
  // below is tolerant of the Poisson zero-connection cases).
  std::size_t with_measured_guard = 0;
  for (std::uint32_t c = 0; c < net.client_count(); ++c) {
    for (const auto g : net.guards_of(c)) {
      if (dep.measured_relays().contains(g)) {
        ++with_measured_guard;
        break;
      }
    }
  }
  ASSERT_GT(with_measured_guard, 50u);
  EXPECT_GT(out.estimate.cardinality, 0.3 * static_cast<double>(with_measured_guard));
  EXPECT_LT(out.estimate.cardinality, 1.2 * static_cast<double>(with_measured_guard));

  // The exact CI machinery brackets the point estimate.
  stats::psc_ci_params ci_params;
  ci_params.bins = out.bins;
  ci_params.total_noise_bits = out.total_noise_bits;
  const stats::estimate e = stats::psc_confidence_interval(out.raw_count, ci_params);
  EXPECT_LE(e.ci.lo, out.estimate.cardinality * 1.05 + 5);
  EXPECT_GE(e.ci.hi, out.estimate.cardinality * 0.95 - 5);
}

TEST(IntegrationTest, PrivcountRoundOverRealTcpSockets) {
  core::measurement_study study{small_study()};
  tor::network& net = study.network();

  net::tcp_net bus;
  privcount::deployment_config cfg = study.privcount_config();
  cfg.noise_enabled = false;
  // Keep the node count modest for socket churn.
  cfg.measured_relays.resize(4);
  privcount::deployment dep{bus, cfg};
  dep.add_instrument(core::instrument_entry_totals());
  dep.attach(net);

  const std::vector<privcount::counter_spec> specs{
      {"entry/connections", 12, 100},
      {"entry/circuits", 651, 100},
      {"entry/bytes", 407e6, 1e6},
  };
  const auto results = dep.run_round(specs, [&] {
    for (int i = 0; i < 100; ++i) {
      tor::client_profile p;
      p.ip = static_cast<std::uint32_t>(i);
      p.promiscuous = true;  // ensures measured guards see connections
      const tor::client_id c = net.add_client(p);
      net.connect_to_guards(c, sim_time{0});
    }
  });

  std::map<std::string, std::int64_t> r;
  for (const auto& c : results) r[c.name] = c.value;
  // Each of the 100 promiscuous clients connects to every guard, so each of
  // the 4 measured relays (all guard-flagged or not) sees <=100 connections;
  // exact expectation: 100 per measured *guard* relay.
  std::int64_t expected = 0;
  for (const auto id : cfg.measured_relays) {
    if (net.net().relay_at(id).flags.guard) expected += 100;
  }
  EXPECT_EQ(r["entry/connections"], expected);
}

TEST(IntegrationTest, GuardModelEndToEnd) {
  // Run two disjoint-DC-set PSC measurements at different guard fractions
  // over the same population and feed them to the Table 3 fit.
  core::study_config scfg = small_study();
  scfg.consensus.num_relays = 2000;
  core::measurement_study study{scfg};
  tor::network& net = study.network();
  auto geo = std::make_shared<workload::geoip_db>(workload::geoip_db::make_synthetic());

  workload::population_params pp;
  pp.network_scale = 1.0;
  pp.selective_clients = 4000;
  pp.promiscuous_clients = 20;
  pp.seed = 31;
  pp.web_rates = {3.0, 0.0, 0.0, 0.0, 0.0};
  pp.chat_rates = {3.0, 0.0, 0.0, 0.0, 0.0};
  pp.bot_rates = {6.0, 0.0, 0.0, 0.0, 0.0};
  pp.idle_rates = {2.0, 0.0, 0.0, 0.0, 0.0};
  pp.uae_rates = {3.0, 0.0, 0.0, 0.0, 0.0};
  pp.promiscuous_rates = {0.0, 0.0, 0.0, 0.0, 0.0};
  workload::population pop{net, *geo, pp};

  // Two disjoint guard sets from the eligible pool.
  const auto guards = net.net().eligible(tor::position::guard);
  std::vector<tor::relay_id> set1(guards.begin() + 50, guards.begin() + 65);
  std::vector<tor::relay_id> set2(guards.begin() + 100, guards.begin() + 140);

  const auto run_measurement = [&](const std::vector<tor::relay_id>& relays) {
    net::inproc_net bus;
    psc::deployment_config cfg;
    cfg.measured_relays = relays;
    cfg.round.bins = 8192;
    cfg.round.group = crypto::group_backend::toy;
    cfg.round.noise_enabled = false;
    psc::deployment dep{bus, cfg};
    dep.set_extractor(core::extract_client_ip());
    dep.attach(net);
    return dep.run_round([&] { pop.run_entry_day(sim_time{0}); });
  };

  const psc::round_outcome o1 = run_measurement(set1);
  const psc::round_outcome o2 = run_measurement(set2);
  const double f1 = study.fraction(tor::position::guard, set1);
  const double f2 = study.fraction(tor::position::guard, set2);
  ASSERT_NE(f1, f2);

  const auto ci = [&](const psc::round_outcome& o) {
    stats::psc_ci_params p;
    p.bins = o.bins;
    p.total_noise_bits = o.total_noise_bits;
    const stats::estimate e = stats::psc_confidence_interval(o.raw_count, p);
    // Widen by 10 % for workload stochasticity.
    return stats::interval{e.ci.lo * 0.9, e.ci.hi * 1.1};
  };
  const auto rows = stats::fit_guard_model({ci(o1), f1}, {ci(o2), f2},
                                           {.candidate_g = {3},
                                            .max_promiscuous = 500,
                                            .grid_steps = 256});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].consistent);
  // The fitted network-IP range must include the true active population.
  const double truth = static_cast<double>(pop.active().size());
  EXPECT_LE(rows[0].network_ips.lo, truth * 1.3);
  EXPECT_GE(rows[0].network_ips.hi, truth * 0.7);
}

}  // namespace
}  // namespace tormet
