// The ROADMAP scale gate, at the paper's deployment shape: a 16-DC
// PrivCount deployment fed by trace_gen population traces modeling ~2M
// daily clients (network_scale 0.227 of the paper's 8.8M daily users)
// completing a multi-round schedule at paper noise strength. Every DC
// process runs the PR-8 parallel ingest plane (hash-sharded slabs on a
// worker pool), and the resulting multi-round tally must still be
// byte-identical to the scalar in-process reference round.
//
// This is a [slow] test (ctest -L slow): trace generation alone renders
// ~10M events across two simulated days, and the round spawns 19 real
// node processes over TCP.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <numeric>

#include "src/cli/deployment_plan.h"
#include "src/cli/node_runner.h"
#include "src/cli/orchestrator.h"
#include "src/core/instruments.h"
#include "src/workload/trace_gen.h"

namespace tormet::cli {
namespace {

[[nodiscard]] std::string node_binary() {
  if (const char* env = std::getenv("TORMET_NODE_BIN")) return env;
  return sibling_node_binary();
}

class workdir_guard {
 public:
  workdir_guard() : path_{make_round_workdir()} {}
  ~workdir_guard() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

TEST(ScaleE2eTest, SixteenDcPopulationRoundAtTwoMillionDailyClients) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workdir_guard workdir;
  workload::trace_gen_params gen;
  gen.model = "population";
  gen.dcs = 16;
  // 0.227 x the paper's 8.8M daily selective clients ~= 2.0M modeled
  // clients per day; two days of churn drive two 24h measurement rounds.
  gen.scale = 0.227;
  gen.days = 2;
  gen.seed = 227;
  const std::vector<std::size_t> per_dc =
      workload::write_trace_dir(gen, workdir.path());
  ASSERT_EQ(per_dc.size(), 16u);
  const std::size_t total =
      std::accumulate(per_dc.begin(), per_dc.end(), std::size_t{0});
  // Scale guard: the population model at this scale renders ~10M entry
  // events over two days. A silent collapse of the client population
  // would pass byte-identity (both sides would shrink together), so pin
  // the workload volume itself.
  EXPECT_GE(total, 8'000'000u) << "population model lost its scale";
  // Events land at measured entry relays and relays map to DCs by sorted
  // index mod 16, so a couple of DC slots can legitimately come up empty
  // (a noise-only DC still participates in every round). Most must be fed.
  const std::size_t fed = static_cast<std::size_t>(
      std::count_if(per_dc.begin(), per_dc.end(),
                    [](std::size_t c) { return c > 0; }));
  EXPECT_GE(fed, 12u) << "relay->DC mapping starved most DCs";

  deployment_plan plan = make_privcount_plan(
      16, 2, core::default_specs_for("entry_totals"));
  plan.rng_seed = 229;
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.instruments = {"entry_totals"};
  // Paper noise strength: noise on, with entry_totals' paper-derived
  // sensitivities and the default privacy allocation.
  plan.privcount_noise_enabled = true;
  plan.schedule_rounds = 2;
  plan.round_duration_s = k_seconds_per_day;
  // The PR-8 ingest plane, on in every DC process: 8 hash shards spread
  // over 4 pool workers. Byte-identity against the reference proves the
  // parallel plane is invisible in the output even at population scale.
  plan.dc_shards = 8;
  plan.dc_ingest_threads = 4;
  plan.tally_path = workdir.path() + "/tally.out";
  plan.round_deadline_ms = 300'000;
  assign_free_ports(plan);

  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir.path(), 300'000);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }
  EXPECT_NE(result.tally.find("tormet-tally-multiround-v1"), std::string::npos);
  EXPECT_NE(result.tally.find("rounds 2"), std::string::npos);
  EXPECT_EQ(result.tally, run_reference_round(plan));
}

}  // namespace
}  // namespace tormet::cli
