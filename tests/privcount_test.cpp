// PrivCount protocol tests: exact blinded aggregation, noise behaviour,
// DC dropout recovery, malformed-message tolerance, histograms via
// instruments, multi-round reuse.
#include <gtest/gtest.h>

#include "src/crypto/secret_sharing.h"
#include "src/net/inproc.h"
#include "src/net/wire.h"
#include "src/privcount/deployment.h"
#include "src/privcount/share_keeper.h"
#include "src/tor/network.h"
#include "src/util/check.h"

namespace tormet::privcount {
namespace {

[[nodiscard]] tor::network make_net(std::uint64_t seed = 17) {
  tor::consensus_params params;
  params.num_relays = 200;
  params.seed = 23;
  return tor::network{tor::make_synthetic_consensus(params), seed};
}

/// Instrument counting entry connections into "conns".
[[nodiscard]] data_collector::instrument count_connections() {
  return [](const tor::event& ev, const auto& incr) {
    if (std::holds_alternative<tor::entry_connection_event>(ev.body)) {
      incr("conns", 1);
    }
  };
}

[[nodiscard]] std::map<std::string, counter_result> by_name(
    const std::vector<counter_result>& results) {
  std::map<std::string, counter_result> out;
  for (const auto& r : results) out[r.name] = r;
  return out;
}

class PrivcountRoundTest : public ::testing::Test {
 protected:
  PrivcountRoundTest() : net_{make_net()} {
    guards_ = net_.net().eligible(tor::position::guard);
  }

  deployment_config config(bool noise, std::size_t n_dc = 4,
                           std::size_t n_sk = 3) {
    deployment_config cfg;
    cfg.num_share_keepers = n_sk;
    cfg.measured_relays.assign(guards_.begin(),
                               guards_.begin() + static_cast<long>(n_dc));
    cfg.noise_enabled = noise;
    return cfg;
  }

  tor::network net_;
  std::vector<tor::relay_id> guards_;
};

TEST_F(PrivcountRoundTest, ExactAggregationWithoutNoise) {
  net::inproc_net bus;
  deployment dep{bus, config(/*noise=*/false)};
  dep.add_instrument(count_connections());
  dep.attach(net_);

  const std::vector<counter_spec> specs{{"conns", 12.0, 1000.0}};
  const auto results = dep.run_round(specs, [&] {
    // Generate traffic: clients connecting to guards; only measured guards'
    // events reach DCs.
    for (int i = 0; i < 500; ++i) {
      tor::client_profile p;
      p.ip = static_cast<std::uint32_t>(i);
      p.num_guards = 3;
      const tor::client_id c = net_.add_client(p);
      net_.connect_to_guards(c, sim_time{0});
    }
  });
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].name, "conns");
  EXPECT_EQ(results[0].sigma, 0.0);

  // Expected: exactly the number of connections whose guard is measured.
  std::uint64_t expected = 0;
  // Count directly from ground truth is total; recount via guards_of.
  for (std::uint32_t c = 0; c < net_.client_count(); ++c) {
    for (const auto g : net_.guards_of(c)) {
      if (dep.measured_relays().contains(g)) ++expected;
    }
  }
  EXPECT_EQ(results[0].value, static_cast<std::int64_t>(expected));
}

TEST_F(PrivcountRoundTest, NoiseIsAppliedAtConfiguredSigma) {
  net::inproc_net bus;
  deployment_config cfg = config(/*noise=*/true);
  cfg.privacy = {0.3, 1e-11};
  deployment dep{bus, cfg};
  dep.add_instrument(count_connections());
  dep.attach(net_);

  const double sensitivity = 12.0;
  const std::vector<counter_spec> specs{{"conns", sensitivity, 10000.0}};
  const auto results = dep.run_round(specs, [] {});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].sigma, 0.0);
  // True count is zero: the result is pure Gaussian noise; 6 sigma bound
  // fails with probability ~2e-9.
  EXPECT_LT(std::abs(static_cast<double>(results[0].value)),
            6.0 * results[0].sigma);
  // A second run draws fresh noise.
  const auto again = dep.run_round(specs, [] {});
  EXPECT_NE(results[0].value, again[0].value);
}

TEST_F(PrivcountRoundTest, HistogramCountersAreIndependent) {
  net::inproc_net bus;
  deployment dep{bus, config(/*noise=*/false)};
  dep.add_instrument([](const tor::event& ev, const auto& incr) {
    if (const auto* c = std::get_if<tor::entry_circuit_event>(&ev.body)) {
      incr(std::string{"kind/"} +
               (c->kind == tor::circuit_kind::directory ? "dir" : "other"),
           1);
    }
  });
  dep.attach(net_);

  // A single-guard client pinned (by rejection) to a measured guard sees
  // all of its circuits observed — histogram counts are then exact.
  tor::client_id pinned = 0;
  for (;;) {
    tor::client_profile p;
    p.ip = 7;
    p.num_guards = 1;
    pinned = net_.add_client(p);
    if (dep.measured_relays().contains(net_.guards_of(pinned)[0])) break;
  }

  const std::vector<counter_spec> specs =
      histogram_specs("kind", {"dir", "other"}, 651.0, 100.0);
  const auto results = by_name(dep.run_round(specs, [&] {
    for (int i = 0; i < 10; ++i) net_.directory_circuit(pinned, 100, sim_time{0});
    for (int i = 0; i < 4; ++i) {
      net_.non_exit_circuit(pinned, tor::circuit_kind::general, 0, sim_time{0});
    }
  }));
  ASSERT_TRUE(results.contains("kind/dir"));
  ASSERT_TRUE(results.contains("kind/other"));
  EXPECT_EQ(results.at("kind/dir").value, 10);
  EXPECT_EQ(results.at("kind/other").value, 4);
}

TEST_F(PrivcountRoundTest, DcDropoutIsRecoverable) {
  net::inproc_net bus;
  deployment dep{bus, config(/*noise=*/false, /*n_dc=*/4)};
  dep.add_instrument(count_connections());
  dep.attach(net_);

  const std::vector<counter_spec> specs{{"conns", 12.0, 1000.0}};
  tally_server& ts = dep.ts();
  ts.begin_round(specs, {});
  bus.run_until_quiescent();
  ASSERT_TRUE(ts.all_dcs_ready());
  ts.start_collection();
  bus.run_until_quiescent();

  // One DC dies before reporting (node id of the first DC = 1 + n_sk).
  const net::node_id dead_dc = 1 + 3;
  bus.partition_node(dead_dc);

  ts.stop_collection();
  bus.run_until_quiescent();
  EXPECT_EQ(ts.reporting_dcs().size(), 3u);

  ts.request_reveal();
  bus.run_until_quiescent();
  ASSERT_TRUE(ts.results_ready());
  // Blinds of the dead DC are excluded on both sides: the aggregate is the
  // exact count over surviving DCs (0 here), not garbage.
  EXPECT_EQ(ts.results()[0].value, 0);
}

TEST_F(PrivcountRoundTest, ResultsNotReadyWithoutAllShareKeepers) {
  net::inproc_net bus;
  deployment dep{bus, config(/*noise=*/false)};
  dep.add_instrument(count_connections());
  dep.attach(net_);

  tally_server& ts = dep.ts();
  ts.begin_round({{"conns", 12.0, 1000.0}}, {});
  bus.run_until_quiescent();
  ts.start_collection();
  ts.stop_collection();
  bus.run_until_quiescent();

  // Partition one SK: reveal cannot complete.
  bus.partition_node(1);
  ts.request_reveal();
  bus.run_until_quiescent();
  EXPECT_FALSE(ts.results_ready());
  EXPECT_THROW((void)ts.results(), tormet::precondition_error);
}

TEST_F(PrivcountRoundTest, StaleAndMalformedMessagesIgnored) {
  net::inproc_net bus;
  deployment dep{bus, config(/*noise=*/false)};
  dep.add_instrument(count_connections());
  dep.attach(net_);

  const auto results = dep.run_round({{"conns", 12.0, 1000.0}}, [&] {
    // Inject a stale DC report (wrong round id) and a wrong-arity report.
    dc_report_msg stale;
    stale.round_id = 999;
    stale.values = {123};
    bus.send(encode_dc_report(4, 0, stale));
    dc_report_msg bad;
    bad.round_id = dep.ts().round_id();
    bad.values = {1, 2, 3};  // arity mismatch
    bus.send(encode_dc_report(5, 0, bad));
  });
  EXPECT_EQ(results[0].value, 0);
}

TEST_F(PrivcountRoundTest, SequentialRoundsAreIndependent) {
  net::inproc_net bus;
  deployment dep{bus, config(/*noise=*/false)};
  dep.add_instrument(count_connections());
  dep.attach(net_);

  const std::vector<counter_spec> specs{{"conns", 12.0, 1000.0}};
  const auto r1 = dep.run_round(specs, [&] {
    tor::client_profile p;
    p.ip = 1;
    p.promiscuous = true;  // hits every guard incl. all measured ones
    const tor::client_id c = net_.add_client(p);
    net_.connect_to_guards(c, sim_time{0});
  });
  EXPECT_EQ(r1[0].value, 4);  // one connection per measured relay (4 DCs)

  const auto r2 = dep.run_round(specs, [] {});
  EXPECT_EQ(r2[0].value, 0);  // counters were reset between rounds
}

TEST(PrivcountTallyServerTest, ShardedCombineMatchesSerialOnHugeCounterVectors) {
  // Above the parallel threshold (2^16 counters — a per-domain census), the
  // pooled TS shards its combine loop; results must be identical to the
  // inline path. Driven directly via handle_message so the report size is
  // under test control.
  constexpr std::size_t n = std::size_t{1} << 16;
  std::vector<counter_spec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs.push_back({"c" + std::to_string(i), 1.0, 10.0});
  }
  dc_report_msg dc;
  dc.round_id = 1;
  dc.values.resize(n);
  sk_report_msg sk;
  sk.round_id = 1;
  sk.sums.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    dc.values[i] = i * 3 + 1;
    sk.sums[i] = ~std::uint64_t{0} - i;  // exercises ring wraparound
  }

  const auto run = [&](std::shared_ptr<util::thread_pool> pool) {
    net::inproc_net bus;  // configure messages stay queued; TS is driven directly
    tally_server ts{0, bus, {4}, {1}};
    ts.set_noise_enabled(false);
    ts.set_thread_pool(std::move(pool));
    ts.begin_round(specs, {1.0, 1e-6});
    ts.handle_message(encode_dc_report(4, 0, dc));
    ts.handle_message(encode_sk_report(1, 0, sk));
    EXPECT_TRUE(ts.results_ready());
    return ts.results();
  };

  const std::vector<counter_result> serial = run(nullptr);
  const std::vector<counter_result> sharded =
      run(std::make_shared<util::thread_pool>(4));
  ASSERT_EQ(serial.size(), n);
  ASSERT_EQ(sharded.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(serial[i].value, sharded[i].value) << "counter " << i;
  }
  // Spot-check the ring arithmetic itself.
  EXPECT_EQ(serial[0].value, crypto::to_signed_count(1 + ~std::uint64_t{0}));
}

// Regression tests for two message races a distributed deployment exposes
// (DC->SK shares, TS->SK configure/reveal travel on independent TCP
// channels, so arrival order across channels is arbitrary). Both were
// invisible over the synchronous inproc bus.
TEST(ShareKeeperRaceTest, RevealArrivingBeforeSharesIsDeferred) {
  net::inproc_net bus;
  share_keeper sk{1, 0, bus};
  sk_report_msg got;
  bool reported = false;
  bus.register_node(0, [&](const net::message& m) {
    got = decode_sk_report(m);
    reported = true;
  });

  configure_msg cfg;
  cfg.round_id = 1;
  cfg.counter_names = {"a", "b"};
  cfg.sigmas = {0.0, 0.0};
  sk.handle_message(encode_configure(0, 1, cfg));
  // Reveal names DCs 5 and 6, but share 6 is still "in flight": the SK
  // must hold the reveal instead of publishing a partial (wrong) sum.
  sk.handle_message(encode_blinding_share(5, 1, {1, {10, 20}}));
  sk.handle_message(encode_sk_reveal(0, 1, {1, {5, 6}}));
  bus.run_until_quiescent();
  EXPECT_FALSE(reported);

  sk.handle_message(encode_blinding_share(6, 1, {1, {1, 2}}));
  bus.run_until_quiescent();
  ASSERT_TRUE(reported);
  EXPECT_EQ(got.sums, (std::vector<std::uint64_t>{11, 22}));
}

TEST(ShareKeeperRaceTest, ShareArrivingBeforeConfigureIsBuffered) {
  net::inproc_net bus;
  share_keeper sk{1, 0, bus};
  sk_report_msg got;
  bool reported = false;
  bus.register_node(0, [&](const net::message& m) {
    got = decode_sk_report(m);
    reported = true;
  });

  // The DC's share for round 1 beats the SK's own configure through the
  // fabric; it must be buffered, not dropped as stale.
  sk.handle_message(encode_blinding_share(5, 1, {1, {7, 9}}));
  configure_msg cfg;
  cfg.round_id = 1;
  cfg.counter_names = {"a", "b"};
  cfg.sigmas = {0.0, 0.0};
  sk.handle_message(encode_configure(0, 1, cfg));
  sk.handle_message(encode_sk_reveal(0, 1, {1, {5}}));
  bus.run_until_quiescent();
  ASSERT_TRUE(reported);
  EXPECT_EQ(got.sums, (std::vector<std::uint64_t>{7, 9}));
}

TEST(PrivcountMessagesTest, ConfigureRoundTrip) {
  configure_msg m;
  m.round_id = 7;
  m.counter_names = {"a", "b"};
  m.sigmas = {1.5, 2.5};
  m.noise_weight = 0.25;
  m.share_keepers = {1, 2, 3};
  const net::message wire = encode_configure(0, 9, m);
  EXPECT_EQ(wire.to, 9u);
  const configure_msg back = decode_configure(wire);
  EXPECT_EQ(back.round_id, 7u);
  EXPECT_EQ(back.counter_names, m.counter_names);
  EXPECT_EQ(back.sigmas, m.sigmas);
  EXPECT_DOUBLE_EQ(back.noise_weight, 0.25);
  EXPECT_EQ(back.share_keepers, m.share_keepers);
}

TEST(PrivcountMessagesTest, MalformedConfigureThrows) {
  configure_msg m;
  m.round_id = 1;
  m.counter_names = {"a"};
  m.sigmas = {1.0, 2.0};  // arity mismatch
  const net::message wire = encode_configure(0, 1, m);
  EXPECT_THROW((void)decode_configure(wire), net::wire_error);

  net::message junk;
  junk.payload = {0x01};
  EXPECT_THROW((void)decode_configure(junk), net::wire_error);
}

TEST(PrivcountMessagesTest, ReportRoundTrips) {
  dc_report_msg dc;
  dc.round_id = 3;
  dc.values = {~0ULL, 0, 42};
  EXPECT_EQ(decode_dc_report(encode_dc_report(1, 0, dc)).values, dc.values);

  sk_report_msg sk;
  sk.round_id = 3;
  sk.sums = {7, 8};
  EXPECT_EQ(decode_sk_report(encode_sk_report(1, 0, sk)).sums, sk.sums);

  sk_reveal_msg rv;
  rv.round_id = 3;
  rv.reporting_dcs = {4, 5, 6};
  EXPECT_EQ(decode_sk_reveal(encode_sk_reveal(0, 1, rv)).reporting_dcs,
            rv.reporting_dcs);
}

}  // namespace
}  // namespace tormet::privcount
