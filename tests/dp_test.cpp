// Differential-privacy machinery tests: action bounds (Table 1), Gaussian
// and binomial mechanisms, and privacy-budget allocation.
#include <gtest/gtest.h>

#include <cmath>

#include "src/crypto/secure_rng.h"
#include "src/dp/action_bounds.h"
#include "src/dp/allocation.h"
#include "src/dp/noise.h"
#include "src/util/check.h"

namespace tormet::dp {
namespace {

TEST(ActionBoundsTest, PaperDefaults) {
  const action_bounds b = action_bounds::paper_defaults();
  EXPECT_DOUBLE_EQ(b.bound(action::connect_to_domain), 20.0);
  EXPECT_DOUBLE_EQ(b.bound(action::exit_data_bytes), 400e6);
  EXPECT_DOUBLE_EQ(b.bound(action::connect_from_new_ip), 4.0);
  EXPECT_DOUBLE_EQ(b.bound(action::create_tcp_connection), 12.0);
  EXPECT_DOUBLE_EQ(b.bound(action::create_entry_circuit), 651.0);
  EXPECT_DOUBLE_EQ(b.bound(action::entry_data_bytes), 407e6);
  EXPECT_DOUBLE_EQ(b.bound(action::upload_descriptor), 450.0);
  EXPECT_DOUBLE_EQ(b.bound(action::upload_new_onion_address), 3.0);
  EXPECT_DOUBLE_EQ(b.bound(action::fetch_descriptor), 30.0);
  EXPECT_DOUBLE_EQ(b.bound(action::create_rendezvous_connection), 180.0);
  EXPECT_DOUBLE_EQ(b.bound(action::rendezvous_data_bytes), 400e6);
  EXPECT_EQ(b.rows().size(), 12u);
}

TEST(ActionBoundsTest, MultiDayNewIpSpecialCase) {
  const action_bounds b = action_bounds::paper_defaults();
  // Paper: 4 IPs the first day, 3 per additional day. A 4-day measurement
  // protects 4 + 3*3 = 13 new IPs.
  EXPECT_DOUBLE_EQ(b.bound_over_days(action::connect_from_new_ip, 1), 4.0);
  EXPECT_DOUBLE_EQ(b.bound_over_days(action::connect_from_new_ip, 4), 13.0);
  // Ordinary actions scale linearly.
  EXPECT_DOUBLE_EQ(b.bound_over_days(action::fetch_descriptor, 2), 60.0);
}

TEST(ActionBoundsTest, Scaling) {
  const action_bounds b = action_bounds::paper_defaults().scaled(1e-3);
  EXPECT_DOUBLE_EQ(b.bound(action::connect_to_domain), 0.02);
  EXPECT_THROW(action_bounds::paper_defaults().scaled(0.0),
               tormet::precondition_error);
}

TEST(ActionBoundsTest, DefiningActivities) {
  const action_bounds b = action_bounds::paper_defaults();
  for (const auto& row : b.rows()) {
    EXPECT_FALSE(row.defining_activity.empty());
  }
  EXPECT_EQ(to_string(action::create_entry_circuit), "create-entry-circuit");
}

TEST(NoiseTest, GaussianSigmaFormula) {
  // sigma = D * sqrt(2 ln(1.25/delta)) / eps
  const double sigma = gaussian_sigma(20.0, 0.3, 1e-11);
  EXPECT_NEAR(sigma, 20.0 * std::sqrt(2.0 * std::log(1.25e11)) / 0.3, 1e-9);
  EXPECT_THROW((void)gaussian_sigma(1.0, 0.0, 0.5), tormet::precondition_error);
  EXPECT_THROW((void)gaussian_sigma(1.0, 0.3, 1.5), tormet::precondition_error);
}

TEST(NoiseTest, GaussianSampleMoments) {
  crypto::deterministic_rng rng{1};
  const double sigma = 10.0;
  double sum = 0.0;
  double sq = 0.0;
  constexpr int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double x = sample_gaussian(sigma, rng);
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.25);
  EXPECT_NEAR(std::sqrt(sq / n), sigma, 0.25);
  EXPECT_EQ(sample_gaussian(0.0, rng), 0.0);
}

TEST(NoiseTest, BinomialBitsShape) {
  const std::uint64_t bits = binomial_noise_bits(4.0, 0.3, 1e-11);
  EXPECT_EQ(bits % 2, 0u);
  EXPECT_GT(bits, 0u);
  // More sensitivity -> more bits; more epsilon -> fewer bits.
  EXPECT_GT(binomial_noise_bits(8.0, 0.3, 1e-11), bits);
  EXPECT_LT(binomial_noise_bits(4.0, 0.6, 1e-11), bits);
  EXPECT_EQ(binomial_noise_bits(0.0, 0.3, 1e-11), 0u);
}

TEST(NoiseTest, BinomialSampleMoments) {
  crypto::deterministic_rng rng{2};
  constexpr std::uint64_t bits = 1000;
  double sum = 0.0;
  constexpr int n = 5000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(sample_binomial_half(bits, rng));
  }
  EXPECT_NEAR(sum / n, 500.0, 2.0);
  EXPECT_EQ(sample_binomial_half(0, rng), 0u);
  EXPECT_LE(sample_binomial_half(7, rng), 7u);
}

TEST(AllocationTest, BudgetComposesExactly) {
  const privacy_params params{0.3, 1e-11};
  const std::vector<counter_request> reqs{
      {"streams", 20.0, 2e9}, {"circuits", 651.0, 1.3e9}, {"bytes", 407e6, 5e14}};
  const auto alloc = allocate_budget(params, reqs);
  ASSERT_EQ(alloc.size(), 3u);
  double eps = 0.0;
  double delta = 0.0;
  for (const auto& a : alloc) {
    eps += a.epsilon;
    delta += a.delta;
    EXPECT_GT(a.sigma, 0.0);
  }
  EXPECT_NEAR(eps, params.epsilon, 1e-9);
  EXPECT_NEAR(delta, params.delta, 1e-22);
}

TEST(AllocationTest, EqualRelativeNoise) {
  const privacy_params params{0.3, 1e-11};
  const std::vector<counter_request> reqs{
      {"a", 5.0, 1e6}, {"b", 100.0, 1e9}, {"c", 1.0, 500.0}};
  const auto alloc = allocate_budget(params, reqs);
  const double r0 = alloc[0].sigma / 1e6;
  EXPECT_NEAR(alloc[1].sigma / 1e9, r0, r0 * 1e-9);
  EXPECT_NEAR(alloc[2].sigma / 500.0, r0, r0 * 1e-9);
}

TEST(AllocationTest, UniformBaselineWastesBudgetOnBigCounters) {
  const privacy_params params{0.3, 1e-11};
  const std::vector<counter_request> reqs{{"small", 1.0, 100.0},
                                          {"large", 1.0, 1e9}};
  const auto smart = allocate_budget(params, reqs);
  const auto uniform = allocate_budget_uniform(params, reqs);
  // Relative noise of the small counter should be better under the
  // equal-relative-noise rule than under the uniform split.
  EXPECT_LT(smart[0].sigma / 100.0, uniform[0].sigma / 100.0);
}

TEST(AllocationTest, RejectsInvalidInput) {
  const privacy_params params{0.3, 1e-11};
  EXPECT_THROW((void)allocate_budget(params, {}), tormet::precondition_error);
  EXPECT_THROW((void)allocate_budget(params, {{"x", -1.0, 10.0}}),
               tormet::precondition_error);
  EXPECT_THROW((void)allocate_budget(params, {{"x", 1.0, 0.0}}),
               tormet::precondition_error);
}

TEST(AllocationTest, SingleCounterGetsFullBudget) {
  const privacy_params params{0.3, 1e-11};
  const auto alloc = allocate_budget(params, {{"only", 4.0, 1e5}});
  ASSERT_EQ(alloc.size(), 1u);
  EXPECT_NEAR(alloc[0].epsilon, 0.3, 1e-12);
  EXPECT_NEAR(alloc[0].sigma, gaussian_sigma(4.0, 0.3, 1e-11), 1e-9);
}

}  // namespace
}  // namespace tormet::dp
