// Parallel-ingest tests: the {shards} x {workers} differential matrix the
// event_sink contract promises — a DC's report bytes are a function of the
// event stream alone, never of how the stream was partitioned across
// ingest shards or which pool workers executed them. The baseline for
// every combination is the strictest one: observe() per event through the
// polymorphic core::event_sink surface, serial, single shard. Also pins
// the between-rounds-only reconfiguration guard in both protocols and
// soaks the threaded path (the ASan/TSan CI legs run this binary).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "src/core/event_sink.h"
#include "src/core/instruments.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/group.h"
#include "src/crypto/secure_rng.h"
#include "src/net/inproc.h"
#include "src/privcount/data_collector.h"
#include "src/privcount/messages.h"
#include "src/psc/data_collector.h"
#include "src/psc/messages.h"
#include "src/tor/trace_socket.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"
#include "src/workload/scenario.h"
#include "src/workload/trace_gen.h"

namespace tormet {
namespace {

[[nodiscard]] std::vector<tor::event> zipf_events(std::uint64_t n,
                                                  std::uint64_t seed) {
  workload::trace_gen_params params;
  params.model = "zipf";
  params.dcs = 1;
  params.events = n;
  params.seed = seed;
  return workload::generate_trace_events(params).front();
}

[[nodiscard]] std::vector<std::size_t> shard_matrix() {
  return {1, 2, 8,
          std::max<std::size_t>(1, std::thread::hardware_concurrency())};
}

/// Worker counts per the issue's matrix; 0 is the serial no-pool baseline
/// axis value exercised by the reference run itself.
[[nodiscard]] std::vector<std::size_t> worker_matrix() { return {1, 2, 4}; }

// -- PrivCount ---------------------------------------------------------------

/// Runs one PrivCount collection round over `events` with the given ingest
/// plane and returns the blinded report's wire payload. `chunk` == 0 feeds
/// through observe() per event via the core::event_sink interface; any
/// other value feeds ingest() spans of that size. A fixed rng seed makes
/// noise + blinding identical across calls, so the payloads are comparable
/// byte for byte.
[[nodiscard]] std::vector<std::uint8_t> privcount_report_bytes(
    const std::vector<tor::event>& events, std::size_t shards,
    std::size_t workers, std::size_t chunk) {
  net::inproc_net bus;
  std::vector<std::uint8_t> report;
  bus.register_node(0, [&](const net::message& m) {
    if (m.type == static_cast<std::uint16_t>(privcount::msg_type::dc_report)) {
      report = m.payload;
    }
  });
  crypto::deterministic_rng rng{4242};
  privcount::data_collector dc{1, 0, bus, rng};
  // One compiled instrument and one string-callback instrument: the
  // adapter must be just as safe under concurrent shard workers.
  dc.add_instrument(core::make_batch_instrument("stream_taxonomy"));
  dc.add_instrument(core::instrument_by_name("entry_totals"));
  dc.set_shards(shards);
  if (workers > 0) {
    dc.set_thread_pool(std::make_shared<util::thread_pool>(workers));
  }

  privcount::configure_msg cfg;
  cfg.round_id = 1;
  for (const auto& instrument : {"stream_taxonomy", "entry_totals"}) {
    for (const auto& spec : core::default_specs_for(instrument)) {
      cfg.counter_names.push_back(spec.name);
      cfg.sigmas.push_back(1.5);
    }
  }
  cfg.noise_weight = 1.0;
  dc.handle_message(privcount::encode_configure(0, 1, cfg));
  dc.handle_message(
      privcount::encode_simple(0, 1, privcount::msg_type::start_collection, 1));

  core::event_sink& sink = dc;
  if (chunk == 0) {
    for (const tor::event& ev : events) sink.observe(ev);
  } else {
    for (std::size_t i = 0; i < events.size(); i += chunk) {
      sink.ingest(events.data() + i, std::min(chunk, events.size() - i));
    }
  }
  EXPECT_EQ(sink.events_observed(), events.size());

  dc.handle_message(
      privcount::encode_simple(0, 1, privcount::msg_type::stop_collection, 1));
  bus.run_until_quiescent();
  EXPECT_FALSE(report.empty());
  return report;
}

TEST(ParallelIngestTest, PrivcountShardWorkerMatrixIsByteIdentical) {
  const std::vector<tor::event> events = zipf_events(20'000, 17);
  // Strictest baseline: per-event observe() through the event_sink
  // interface, one shard, no pool.
  const std::vector<std::uint8_t> reference =
      privcount_report_bytes(events, 1, 0, 0);
  for (const std::size_t shards : shard_matrix()) {
    for (const std::size_t workers : worker_matrix()) {
      EXPECT_EQ(privcount_report_bytes(events, shards, workers, 4096),
                reference)
          << "report diverged at " << shards << " shards x " << workers
          << " workers";
    }
    // Serial sharded path stays pinned too (no pool attached).
    EXPECT_EQ(privcount_report_bytes(events, shards, 0, 4096), reference)
        << "serial report diverged at " << shards << " shards";
  }
  // Span boundaries are invisible: odd chunk sizes cannot change bytes.
  EXPECT_EQ(privcount_report_bytes(events, 8, 4, 777), reference);
}

TEST(ParallelIngestTest, PrivcountShardChangeBetweenConfigureAndStartIsSafe) {
  // Regression: set_shards between configure (which sizes the slabs) and
  // start_collection used to leave the slab stride stale — increments for
  // shard s >= 1 landed out of bounds. The re-size on set_shards makes the
  // late change equivalent to having configured with that count.
  const std::vector<tor::event> events = zipf_events(5'000, 23);
  const std::vector<std::uint8_t> reference =
      privcount_report_bytes(events, 8, 2, 1024);

  net::inproc_net bus;
  std::vector<std::uint8_t> report;
  bus.register_node(0, [&](const net::message& m) {
    if (m.type == static_cast<std::uint16_t>(privcount::msg_type::dc_report)) {
      report = m.payload;
    }
  });
  crypto::deterministic_rng rng{4242};
  privcount::data_collector dc{1, 0, bus, rng};
  dc.add_instrument(core::make_batch_instrument("stream_taxonomy"));
  dc.add_instrument(core::instrument_by_name("entry_totals"));
  dc.set_shards(2);
  dc.set_thread_pool(std::make_shared<util::thread_pool>(2));
  privcount::configure_msg cfg;
  cfg.round_id = 1;
  for (const auto& instrument : {"stream_taxonomy", "entry_totals"}) {
    for (const auto& spec : core::default_specs_for(instrument)) {
      cfg.counter_names.push_back(spec.name);
      cfg.sigmas.push_back(1.5);
    }
  }
  cfg.noise_weight = 1.0;
  dc.handle_message(privcount::encode_configure(0, 1, cfg));
  dc.set_shards(8);  // after configure, before start: must re-size slabs
  dc.handle_message(
      privcount::encode_simple(0, 1, privcount::msg_type::start_collection, 1));
  for (std::size_t i = 0; i < events.size(); i += 1024) {
    dc.ingest(events.data() + i, std::min<std::size_t>(1024, events.size() - i));
  }
  dc.handle_message(
      privcount::encode_simple(0, 1, privcount::msg_type::stop_collection, 1));
  bus.run_until_quiescent();
  EXPECT_EQ(report, reference);
}

TEST(ParallelIngestTest, PrivcountRejectsIngestPlaneChangesWhileCollecting) {
  net::inproc_net bus;
  bus.register_node(0, [](const net::message&) {});
  crypto::deterministic_rng rng{7};
  privcount::data_collector dc{1, 0, bus, rng};
  dc.add_instrument(core::make_batch_instrument("stream_taxonomy"));
  privcount::configure_msg cfg;
  cfg.round_id = 1;
  for (const auto& spec : core::default_specs_for("stream_taxonomy")) {
    cfg.counter_names.push_back(spec.name);
    cfg.sigmas.push_back(0.0);
  }
  dc.handle_message(privcount::encode_configure(0, 1, cfg));
  dc.handle_message(
      privcount::encode_simple(0, 1, privcount::msg_type::start_collection, 1));
  ASSERT_TRUE(dc.collecting());
  EXPECT_THROW(dc.set_shards(4), precondition_error);
  EXPECT_THROW(dc.set_thread_pool(std::make_shared<util::thread_pool>(2)),
               precondition_error);
  // Between rounds the knobs open up again.
  dc.handle_message(
      privcount::encode_simple(0, 1, privcount::msg_type::stop_collection, 1));
  EXPECT_FALSE(dc.collecting());
  dc.set_shards(4);
  dc.set_thread_pool(nullptr);
  EXPECT_EQ(dc.shards(), 4u);
}

// -- PSC ---------------------------------------------------------------------

/// Runs one PSC collection over `events` and returns the encrypted table's
/// wire payload. Same comparability argument as the PrivCount helper: a
/// fixed rng seed pins table-init and insert randomness, so any divergence
/// is the partition leaking into the bytes.
[[nodiscard]] std::vector<std::uint8_t> psc_table_bytes(
    crypto::group_backend backend, const std::vector<tor::event>& events,
    std::uint64_t bins, std::size_t shards, std::size_t workers,
    std::size_t chunk) {
  net::inproc_net bus;
  std::vector<std::uint8_t> table;
  bus.register_node(0, [&](const net::message& m) {
    if (m.type == static_cast<std::uint16_t>(psc::msg_type::dc_vector)) {
      table = m.payload;
    }
  });
  crypto::deterministic_rng rng{999};
  psc::data_collector dc{1, 0, bus, rng};
  dc.set_extractor(core::extractor_by_name("primary_sld"));
  dc.set_shards(shards);
  if (workers > 0) {
    dc.set_thread_pool(std::make_shared<util::thread_pool>(workers));
  }

  const std::shared_ptr<const crypto::group> group = crypto::make_group(backend);
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng key_rng{5};
  const crypto::elgamal_keypair kp = scheme.generate_keypair(key_rng);
  psc::dc_configure_msg cfg;
  cfg.round_id = 1;
  cfg.bins = bins;
  cfg.group = static_cast<std::uint8_t>(backend);
  cfg.joint_pk = group->encode(kp.pub);
  dc.handle_message(psc::encode_dc_configure(0, 1, cfg));

  core::event_sink& sink = dc;
  if (chunk == 0) {
    for (const tor::event& ev : events) sink.observe(ev);
  } else {
    for (std::size_t i = 0; i < events.size(); i += chunk) {
      sink.ingest(events.data() + i, std::min(chunk, events.size() - i));
    }
  }
  EXPECT_EQ(sink.events_observed(), events.size());

  dc.handle_message(psc::encode_report_request(0, 1, 1));
  bus.run_until_quiescent();
  EXPECT_FALSE(table.empty());
  return table;
}

TEST(ParallelIngestTest, PscToyShardWorkerMatrixIsByteIdentical) {
  const std::vector<tor::event> events = zipf_events(4'000, 29);
  const std::vector<std::uint8_t> reference =
      psc_table_bytes(crypto::group_backend::toy, events, 256, 1, 0, 0);
  for (const std::size_t shards : shard_matrix()) {
    for (const std::size_t workers : worker_matrix()) {
      EXPECT_EQ(psc_table_bytes(crypto::group_backend::toy, events, 256,
                                shards, workers, 1024),
                reference)
          << "table diverged at " << shards << " shards x " << workers
          << " workers";
    }
    EXPECT_EQ(
        psc_table_bytes(crypto::group_backend::toy, events, 256, shards, 0, 1024),
        reference)
        << "serial table diverged at " << shards << " shards";
  }
}

TEST(ParallelIngestTest, PscP256ShardWorkerMatrixIsByteIdentical) {
  // The production backend: parallel seeded inserts must be byte-stable on
  // real EC ciphertexts (thread_local scratch, comb tables), not just the
  // toy group. Smaller stream — every insert is a real encryption.
  const std::vector<tor::event> events = zipf_events(600, 31);
  const std::vector<std::uint8_t> reference =
      psc_table_bytes(crypto::group_backend::p256, events, 64, 1, 0, 0);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
    for (const std::size_t workers : worker_matrix()) {
      EXPECT_EQ(psc_table_bytes(crypto::group_backend::p256, events, 64,
                                shards, workers, 256),
                reference)
          << "table diverged at " << shards << " shards x " << workers
          << " workers";
    }
  }
}

TEST(ParallelIngestTest, PscRejectsIngestPlaneChangesWhileTableIsLive) {
  net::inproc_net bus;
  bus.register_node(0, [](const net::message&) {});
  crypto::deterministic_rng rng{11};
  psc::data_collector dc{1, 0, bus, rng};
  dc.set_extractor(core::extractor_by_name("primary_sld"));
  dc.set_shards(2);  // open before configure

  const auto group = crypto::make_group(crypto::group_backend::toy);
  const crypto::elgamal scheme{group};
  crypto::deterministic_rng key_rng{5};
  const crypto::elgamal_keypair kp = scheme.generate_keypair(key_rng);
  psc::dc_configure_msg cfg;
  cfg.round_id = 1;
  cfg.bins = 64;
  cfg.group = static_cast<std::uint8_t>(crypto::group_backend::toy);
  cfg.joint_pk = group->encode(kp.pub);
  dc.handle_message(psc::encode_dc_configure(0, 1, cfg));
  ASSERT_TRUE(dc.configured());
  EXPECT_THROW(dc.set_shards(4), precondition_error);
  EXPECT_THROW(dc.set_thread_pool(std::make_shared<util::thread_pool>(2)),
               precondition_error);
  // Shipping the table closes the round; the knobs open up again.
  dc.handle_message(psc::encode_report_request(0, 1, 1));
  bus.run_until_quiescent();
  EXPECT_FALSE(dc.configured());
  dc.set_shards(4);
  dc.set_thread_pool(nullptr);
  EXPECT_EQ(dc.shards(), 4u);
}

// -- threaded soak -----------------------------------------------------------

TEST(ParallelIngestTest, ThreadedIngestSoakStaysConsistentAcrossRounds) {
  // Multi-round churn over the parallel path with maximum hardware
  // parallelism — the sanitizer CI legs (ASan and TSan) run this binary,
  // so any cross-worker race in bucketing, slab writes, or seeded inserts
  // surfaces here.
  const std::size_t hw =
      std::max<std::size_t>(2, std::thread::hardware_concurrency());
  const std::vector<tor::event> events = zipf_events(60'000, 37);
  std::vector<std::uint8_t> first;
  for (int round = 0; round < 3; ++round) {
    const std::vector<std::uint8_t> report =
        privcount_report_bytes(events, 2 * hw, hw, 913);
    if (first.empty()) {
      first = report;
    } else {
      EXPECT_EQ(report, first) << "soak round " << round << " diverged";
    }
  }
  const std::vector<std::uint8_t> psc_first =
      psc_table_bytes(crypto::group_backend::toy, events, 512, 2 * hw, hw, 913);
  EXPECT_EQ(
      psc_table_bytes(crypto::group_backend::toy, events, 512, 3, 2, 4096),
      psc_first);
}

// -- flash-crowd socket-feeder stress ----------------------------------------

/// A loopback port that is free right now (bind 0, read it back, release).
[[nodiscard]] std::uint16_t free_loopback_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  expects(fd >= 0, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  expects(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
          "bind() failed");
  socklen_t len = sizeof addr;
  expects(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
          "getsockname() failed");
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(ParallelIngestTest, FlashCrowdSurgeThroughSocketFeederLosesNothing) {
  // A full flash-crowd surge day streamed live through the trace socket
  // into a sharded, threaded DC. The stream is far larger than the
  // receiver's 64 KiB recv chunk and any default kernel socket buffer, so
  // the feeder's sends block on the receiver's ingest pace (the bounded
  // send queue engaging) — and despite that backpressure churn, every
  // single event must arrive and the report bytes must equal the serial
  // direct-ingest baseline.
  workload::scenario_params params;
  params.name = "flash_crowd";
  params.dcs = 1;
  params.scale = 1.0;
  params.events = 4'000;
  params.seed = 13;
  params.days = 1;
  const std::vector<tor::event> events =
      workload::generate_scenario_events(params).front();
  ASSERT_GT(events.size(), 30'000u);  // surge volume dwarfs socket buffers

  const std::vector<std::uint8_t> reference =
      privcount_report_bytes(events, 1, 0, 0);

  const std::uint16_t port = free_loopback_port();
  tor::event_socket_source source{port, 30'000};
  std::size_t sent = 0;
  std::thread feeder{[&] {
    sent = tor::stream_events_to_socket("127.0.0.1", port, events);
  }};

  // Receiving DC: same round wiring as privcount_report_bytes, but fed
  // from the live socket in spans, concurrently with the feeder.
  net::inproc_net bus;
  std::vector<std::uint8_t> report;
  bus.register_node(0, [&](const net::message& m) {
    if (m.type == static_cast<std::uint16_t>(privcount::msg_type::dc_report)) {
      report = m.payload;
    }
  });
  crypto::deterministic_rng rng{4242};
  privcount::data_collector dc{1, 0, bus, rng};
  dc.add_instrument(core::make_batch_instrument("stream_taxonomy"));
  dc.add_instrument(core::instrument_by_name("entry_totals"));
  dc.set_shards(8);
  dc.set_thread_pool(std::make_shared<util::thread_pool>(4));

  privcount::configure_msg cfg;
  cfg.round_id = 1;
  for (const auto& instrument : {"stream_taxonomy", "entry_totals"}) {
    for (const auto& spec : core::default_specs_for(instrument)) {
      cfg.counter_names.push_back(spec.name);
      cfg.sigmas.push_back(1.5);
    }
  }
  cfg.noise_weight = 1.0;
  dc.handle_message(privcount::encode_configure(0, 1, cfg));
  dc.handle_message(
      privcount::encode_simple(0, 1, privcount::msg_type::start_collection, 1));

  core::event_sink& sink = dc;
  std::vector<tor::event> block;
  constexpr std::size_t k_block = 2'048;
  block.reserve(k_block);
  std::size_t received = 0;
  for (;;) {
    std::optional<tor::event> ev = source.next();
    if (ev.has_value()) {
      block.push_back(*std::move(ev));
      ++received;
    }
    if (block.size() == k_block || (!ev.has_value() && !block.empty())) {
      sink.ingest(block.data(), block.size());
      block.clear();
    }
    if (!ev.has_value()) break;
  }
  feeder.join();

  EXPECT_EQ(sent, events.size());
  EXPECT_EQ(received, events.size()) << "events lost in the surge";
  EXPECT_EQ(sink.events_observed(), events.size());

  dc.handle_message(
      privcount::encode_simple(0, 1, privcount::msg_type::stop_collection, 1));
  bus.run_until_quiescent();
  EXPECT_EQ(report, reference)
      << "socket-fed sharded report diverged from direct serial ingest";
}

}  // namespace
}  // namespace tormet
