// Relay-embedded stats agent tests: the .pub codec and its file naming,
// the aggregator's whole fault matrix (truncated publish rejected cleanly,
// duplicate publish ingested exactly once, late windows within/past the
// grace, missing publishers counted), the per-circuit sampling predicate,
// and the relay_plane determinism contracts — at sample_prob 1.0 the
// aggregated span is byte-identical to the direct feed, and a sampled run
// is the order-preserving filtered subsequence whose size lands inside the
// analytically derived binomial band. Plan-key round trips for the new
// `workload relays`, `sample_prob`, and `max_restarts` keys ride along.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/cli/deployment_plan.h"
#include "src/net/wire.h"
#include "src/relay/aggregator.h"
#include "src/relay/publish.h"
#include "src/relay/relay_plane.h"
#include "src/relay/stats_agent.h"
#include "src/tor/event_codec.h"
#include "src/tor/event_shard.h"
#include "src/util/check.h"

namespace tormet::relay {
namespace {

class tmpdir_guard {
 public:
  tmpdir_guard() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "tormet-relay-XXXXXX")
            .string();
    expects(::mkdtemp(tmpl.data()) != nullptr, "mkdtemp failed");
    path_ = tmpl;
  }
  ~tmpdir_guard() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// Event sink that records every ingested event in arrival order.
class collecting_sink final : public core::event_sink {
 public:
  void observe(const tor::event& ev) override { events.push_back(ev); }
  void ingest(const tor::event* evs, std::size_t n) override {
    events.insert(events.end(), evs, evs + n);
    ++spans;
  }
  void set_shards(std::size_t) override {}
  [[nodiscard]] std::size_t shards() const noexcept override { return 1; }
  void set_thread_pool(std::shared_ptr<util::thread_pool>) override {}
  [[nodiscard]] std::uint64_t events_observed() const noexcept override {
    return events.size();
  }

  std::vector<tor::event> events;
  std::size_t spans = 0;
};

[[nodiscard]] tor::event entry_event(std::uint32_t client_ip, std::int64_t t) {
  tor::event ev;
  ev.observer = 1;
  ev.at = sim_time{t};
  ev.body = tor::entry_connection_event{client_ip};
  return ev;
}

[[nodiscard]] byte_buffer encoded(const tor::event& ev) {
  net::wire_writer w;
  tor::encode_event(w, ev);
  return w.take();
}

/// Byte-level stream equality: the property the whole subsystem exists
/// for (field-wise comparison could miss a codec divergence).
void expect_same_stream(const std::vector<tor::event>& got,
                        const std::vector<tor::event>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(encoded(got[i]), encoded(want[i])) << "event " << i;
  }
}

// -- publish codec -----------------------------------------------------------

TEST(RelayPublishTest, WindowRoundTripsThroughCodec) {
  pub_window w;
  w.header = {7, 3, 100, 4};
  for (std::uint64_t i = 0; i < 4; ++i) {
    w.events.emplace_back(10 * i + 2,
                          entry_event(static_cast<std::uint32_t>(i), 50 + i));
  }
  const byte_buffer bytes = encode_pub_window(w);
  const pub_window back = decode_pub_window(bytes);
  EXPECT_EQ(back.header.relay, 7u);
  EXPECT_EQ(back.header.epoch, 3u);
  EXPECT_EQ(back.header.observed, 100u);
  EXPECT_EQ(back.header.sampled, 4u);
  ASSERT_EQ(back.events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(back.events[i].first, w.events[i].first);
    EXPECT_EQ(encoded(back.events[i].second), encoded(w.events[i].second));
  }
  // Deterministic bytes: re-encoding the decoded window is the identity.
  EXPECT_EQ(encode_pub_window(back), bytes);
}

TEST(RelayPublishTest, EmptyWindowRoundTrips) {
  pub_window w;
  w.header = {0, 12, 55, 0};
  const pub_window back = decode_pub_window(encode_pub_window(w));
  EXPECT_EQ(back.header.observed, 55u);
  EXPECT_TRUE(back.events.empty());
}

TEST(RelayPublishTest, FileNameRoundTripsAndRejectsNonCanonical) {
  std::uint64_t relay = 0, epoch = 0;
  EXPECT_EQ(pub_file_name(3, 17), "relay-3-window-17.pub");
  EXPECT_TRUE(parse_pub_file_name("relay-3-window-17.pub", relay, epoch));
  EXPECT_EQ(relay, 3u);
  EXPECT_EQ(epoch, 17u);
  for (const char* bad :
       {"relay-3-window-17.pub.tmp", "relay--window-17.pub",
        "relay-3-window-.pub", "relay-x-window-17.pub", "window-17.pub",
        "relay-3-window-17", "notes.txt", "relay-3-window-1x7.pub"}) {
    EXPECT_FALSE(parse_pub_file_name(bad, relay, epoch)) << bad;
  }
}

TEST(RelayPublishTest, CorruptBytesThrowPublishError) {
  pub_window w;
  w.header = {1, 0, 2, 2};
  w.events.emplace_back(0, entry_event(9, 1));
  w.events.emplace_back(1, entry_event(10, 2));
  byte_buffer bytes = encode_pub_window(w);

  // Truncation at any cut inside the framed records must throw, never
  // return a partial window.
  for (const std::size_t cut : {bytes.size() - 1, bytes.size() / 2}) {
    EXPECT_THROW((void)decode_pub_window(byte_view{bytes.data(), cut}),
                 publish_error);
  }
  // A flipped payload byte breaks the frame CRC.
  byte_buffer flipped = bytes;
  flipped[flipped.size() - 3] ^= 0x40;
  EXPECT_THROW((void)decode_pub_window(flipped), publish_error);
  EXPECT_THROW((void)decode_pub_window(as_bytes("not a pub file")),
               publish_error);
}

// -- aggregator fault matrix -------------------------------------------------

TEST(RelayAggregatorTest, TruncatedPublishIsRejectedWithoutPoisoningOthers) {
  tmpdir_guard dir;
  stats_agent good{0, 1, 1.0};
  stats_agent torn{1, 1, 1.0};
  good.offer(0, entry_event(1, 10));
  good.offer(1, entry_event(2, 11));
  torn.offer(2, entry_event(3, 12));
  (void)good.publish(0, dir.path());
  const std::string torn_path = torn.publish(0, dir.path());
  // Simulate a publisher that died mid-write without the atomic rename
  // protecting it: chop the file in half.
  const auto full = std::filesystem::file_size(torn_path);
  std::filesystem::resize_file(torn_path, full / 2);

  aggregator agg{dir.path(), 2};
  collecting_sink sink;
  EXPECT_EQ(agg.collect_epoch(0, sink), 2u);
  expect_same_stream(sink.events, {entry_event(1, 10), entry_event(2, 11)});
  EXPECT_EQ(agg.totals().rejected, 1u);
  EXPECT_EQ(agg.totals().windows_ingested, 1u);
  EXPECT_EQ(agg.totals().missing, 0u);  // the torn relay DID publish
  // Both consumed and rejected files are deleted.
  EXPECT_TRUE(std::filesystem::is_empty(dir.path()));
}

TEST(RelayAggregatorTest, DuplicatePublishIsIngestedExactlyOnce) {
  tmpdir_guard dir;
  pub_window w;
  w.header = {0, 0, 1, 1};
  w.events.emplace_back(0, entry_event(42, 5));
  (void)write_pub_file_atomic(w, dir.path());

  aggregator agg{dir.path(), 1};
  collecting_sink sink;
  EXPECT_EQ(agg.collect_epoch(0, sink), 1u);

  // A crashed publisher retries after the aggregator already consumed its
  // window: the re-publish lands as a duplicate at the next epoch's scan
  // and must not be ingested again.
  (void)write_pub_file_atomic(w, dir.path());
  EXPECT_EQ(agg.collect_epoch(1, sink), 0u);
  EXPECT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(agg.totals().duplicates, 1u);
  EXPECT_EQ(agg.totals().missing, 1u);  // no window-1 publish either
  EXPECT_TRUE(std::filesystem::is_empty(dir.path()));
}

TEST(RelayAggregatorTest, LateWindowWithinGraceIsIngested) {
  tmpdir_guard dir;
  pub_window w;
  w.header = {0, 0, 1, 1};  // window 0 arriving while epoch 1 is collected
  w.events.emplace_back(0, entry_event(7, 1));
  (void)write_pub_file_atomic(w, dir.path());
  pub_window now;
  now.header = {0, 1, 1, 1};
  now.events.emplace_back(0, entry_event(8, 100));
  (void)write_pub_file_atomic(now, dir.path());

  aggregator agg{dir.path(), 1, /*grace_epochs=*/1};
  collecting_sink sink;
  EXPECT_EQ(agg.collect_epoch(1, sink), 2u);
  // The late window replays whole, BEFORE the current one: epoch-major
  // merge order, since sequence numbers reset per window.
  expect_same_stream(sink.events, {entry_event(7, 1), entry_event(8, 100)});
  EXPECT_EQ(agg.totals().late, 1u);
  EXPECT_EQ(agg.totals().late_dropped, 0u);
  EXPECT_EQ(agg.totals().windows_ingested, 2u);
}

TEST(RelayAggregatorTest, LateWindowPastGraceIsCountedAndDropped) {
  tmpdir_guard dir;
  pub_window w;
  w.header = {0, 0, 1, 1};
  w.events.emplace_back(0, entry_event(7, 1));
  (void)write_pub_file_atomic(w, dir.path());

  aggregator agg{dir.path(), 1, /*grace_epochs=*/1};
  collecting_sink sink;
  EXPECT_EQ(agg.collect_epoch(2, sink), 0u);
  EXPECT_TRUE(sink.events.empty());
  EXPECT_EQ(agg.totals().late_dropped, 1u);
  EXPECT_EQ(agg.totals().windows_ingested, 0u);
  EXPECT_TRUE(std::filesystem::is_empty(dir.path()));  // dropped = deleted
}

TEST(RelayAggregatorTest, MissingPublishersAreCounted) {
  tmpdir_guard dir;
  stats_agent a{0, 1, 1.0};
  a.offer(0, entry_event(1, 1));
  (void)a.publish(0, dir.path());

  aggregator agg{dir.path(), 3};  // fleet of 3, only one published
  collecting_sink sink;
  EXPECT_EQ(agg.collect_epoch(0, sink), 1u);
  EXPECT_EQ(agg.totals().missing, 2u);
}

TEST(RelayAggregatorTest, NonCanonicalEntriesAreLeftInPlace) {
  tmpdir_guard dir;
  std::ofstream{dir.path() + "/README"} << "not a window\n";
  aggregator agg{dir.path(), 1};
  collecting_sink sink;
  EXPECT_EQ(agg.collect_epoch(0, sink), 0u);
  EXPECT_EQ(agg.totals().rejected, 0u);
  EXPECT_TRUE(std::filesystem::exists(dir.path() + "/README"));
}

// -- sampling ----------------------------------------------------------------

TEST(RelaySamplingTest, DecisionIsPerCircuitAndDeterministic) {
  const std::uint64_t seed = sampling_seed_of(99);
  // Same circuit key -> same decision, regardless of observer/time.
  for (std::uint32_t ip = 0; ip < 64; ++ip) {
    tor::event a = entry_event(ip, 1);
    tor::event b = entry_event(ip, 999);
    b.observer = 5;
    EXPECT_EQ(sample_event(a, seed, 0.5), sample_event(b, seed, 0.5));
  }
  // Edge probabilities short-circuit.
  EXPECT_TRUE(sample_event(entry_event(1, 1), seed, 1.0));
  EXPECT_FALSE(sample_event(entry_event(1, 1), seed, 0.0));
  // The kept fraction over many distinct circuits tracks p.
  std::size_t kept = 0;
  const std::size_t circuits = 4000;
  for (std::uint32_t ip = 0; ip < circuits; ++ip) {
    if (sample_event(entry_event(ip, 1), seed, 0.3)) ++kept;
  }
  const double expect = 0.3 * circuits;
  const double sd = std::sqrt(0.3 * 0.7 * circuits);
  EXPECT_NEAR(static_cast<double>(kept), expect, 6 * sd);
}

// -- relay plane determinism -------------------------------------------------

[[nodiscard]] std::vector<tor::event> mixed_stream(std::size_t n) {
  std::vector<tor::event> evs;
  evs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // ~60 circuits, interleaved, several events each.
    evs.push_back(entry_event(static_cast<std::uint32_t>(i % 61),
                              static_cast<std::int64_t>(i)));
  }
  return evs;
}

TEST(RelayPlaneTest, FullSamplingIsByteIdenticalToDirectFeed) {
  tmpdir_guard dir;
  const std::vector<tor::event> evs = mixed_stream(500);
  relay_plane plane{8, 1.0, sampling_seed_of(7), dir.path()};
  plane.route(evs.data(), evs.size());
  collecting_sink sink;
  EXPECT_EQ(plane.close_window(0, sink), evs.size());
  // The merged publish directory reconstructs the DC arrival order
  // exactly — the property the byte-identity gate rests on.
  expect_same_stream(sink.events, evs);
  // One contiguous span per window: the sharded ingest plane sees the
  // same call shape as a cursor fast-path delivery.
  EXPECT_EQ(sink.spans, 1u);
  EXPECT_EQ(plane.totals().observed, evs.size());
  EXPECT_EQ(plane.totals().sampled, evs.size());
  EXPECT_EQ(plane.totals().missing, 0u);
  EXPECT_TRUE(std::filesystem::is_empty(dir.path()));
}

TEST(RelayPlaneTest, SampledRunIsTheFilteredSubsequence) {
  tmpdir_guard dir;
  const double p = 0.5;
  const std::uint64_t seed = sampling_seed_of(7);
  const std::vector<tor::event> evs = mixed_stream(600);
  relay_plane plane{8, p, seed, dir.path()};
  plane.route(evs.data(), evs.size());
  collecting_sink sink;
  (void)plane.close_window(0, sink);

  std::vector<tor::event> expected;
  for (const auto& ev : evs) {
    if (sample_event(ev, seed, p)) expected.push_back(ev);
  }
  expect_same_stream(sink.events, expected);
  EXPECT_EQ(plane.totals().observed, evs.size());
  EXPECT_EQ(plane.totals().sampled, expected.size());
}

TEST(RelayPlaneTest, SampledCountLandsInsideTheAnalyticBand) {
  // Per-circuit sampling keeps or drops each circuit's whole event bundle,
  // so S = sum over kept circuits of n_k with Var = p(1-p) * sum n_k^2.
  tmpdir_guard dir;
  const double p = 0.4;
  std::vector<tor::event> evs;
  std::map<std::uint32_t, std::uint64_t> per_circuit;
  for (std::uint32_t c = 0; c < 400; ++c) {
    const std::uint64_t n_k = 1 + c % 5;
    per_circuit[c] = n_k;
    for (std::uint64_t i = 0; i < n_k; ++i) {
      evs.push_back(entry_event(c, static_cast<std::int64_t>(evs.size())));
    }
  }
  relay_plane plane{16, p, sampling_seed_of(21), dir.path()};
  plane.route(evs.data(), evs.size());
  collecting_sink sink;
  const std::size_t sampled = plane.close_window(0, sink);

  double var = 0;
  for (const auto& [c, n_k] : per_circuit) {
    var += p * (1 - p) * static_cast<double>(n_k * n_k);
  }
  const double expect = p * static_cast<double>(evs.size());
  EXPECT_NEAR(static_cast<double>(sampled), expect, 6 * std::sqrt(var));
  EXPECT_EQ(sampled, sink.events.size());
}

TEST(RelayPlaneTest, SequenceNumbersResetAcrossWindows) {
  tmpdir_guard dir;
  const std::vector<tor::event> w0 = mixed_stream(50);
  const std::vector<tor::event> w1 = mixed_stream(70);
  relay_plane plane{4, 1.0, sampling_seed_of(3), dir.path()};
  collecting_sink sink;
  plane.route(w0.data(), w0.size());
  EXPECT_EQ(plane.close_window(0, sink), w0.size());
  plane.route(w1.data(), w1.size());
  EXPECT_EQ(plane.close_window(1, sink), w1.size());
  std::vector<tor::event> expected = w0;
  expected.insert(expected.end(), w1.begin(), w1.end());
  expect_same_stream(sink.events, expected);
}

}  // namespace
}  // namespace tormet::relay

// -- plan keys ---------------------------------------------------------------

namespace tormet::cli {
namespace {

TEST(DeploymentPlanTest, RelaysWorkloadRoundTripsAndValidates) {
  deployment_plan plan = make_psc_plan(4, 1, 256);
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    plan.nodes[i].port = static_cast<std::uint16_t>(9100 + i);
  }
  plan.workload.kind = workload_kind::relays;
  plan.workload.relay_count = 200;
  plan.workload.model = "mixed";
  plan.workload.scale = 0.25;
  plan.workload.events = 999;
  plan.workload.gen_seed = 5;
  plan.workload.gen_days = 2;
  const deployment_plan back = parse_plan(serialize_plan(plan));
  EXPECT_EQ(back.workload.kind, workload_kind::relays);
  EXPECT_EQ(back.workload.relay_count, 200u);
  EXPECT_EQ(back.workload.model, "mixed");
  EXPECT_EQ(back.workload.events, 999u);
  EXPECT_EQ(back.workload.gen_days, 2u);
  EXPECT_EQ(serialize_plan(back), serialize_plan(plan));

  // The fleet must split evenly across the DCs (4 here).
  deployment_plan bad = plan;
  bad.workload.relay_count = 201;
  EXPECT_THROW((void)parse_plan(serialize_plan(bad)), precondition_error);
}

TEST(DeploymentPlanTest, SampleProbAndMaxRestartsRoundTrip) {
  deployment_plan plan = make_psc_plan(2, 1, 256);
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    plan.nodes[i].port = static_cast<std::uint16_t>(9200 + i);
  }
  // Defaults stay off the wire: existing plan files parse unchanged.
  EXPECT_EQ(serialize_plan(plan).find("sample_prob"), std::string::npos);
  EXPECT_EQ(serialize_plan(plan).find("max_restarts"), std::string::npos);
  plan.sample_prob = 0.25;
  plan.max_restarts = 9;
  const deployment_plan back = parse_plan(serialize_plan(plan));
  EXPECT_EQ(back.sample_prob, 0.25);
  EXPECT_EQ(back.max_restarts, 9);
  EXPECT_EQ(serialize_plan(back), serialize_plan(plan));
  EXPECT_THROW((void)parse_plan(serialize_plan(plan) + "sample_prob 0\n"),
               precondition_error);
  EXPECT_THROW((void)parse_plan(serialize_plan(plan) + "sample_prob 1.5\n"),
               precondition_error);
  EXPECT_THROW((void)parse_plan(serialize_plan(plan) + "max_restarts 1001\n"),
               precondition_error);
}

}  // namespace
}  // namespace tormet::cli
