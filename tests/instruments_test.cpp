// Direct unit tests for the core instrument/extractor catalogue: every
// event-to-counter mapping and every PSC item extractor.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/core/instruments.h"

namespace tormet::core {
namespace {

using counter_map = std::map<std::string, std::uint64_t>;

[[nodiscard]] counter_map run_instrument(const privcount::data_collector::instrument& fn,
                                const tor::event& ev) {
  counter_map out;
  fn(ev, [&](const std::string& name, std::uint64_t n) { out[name] += n; });
  return out;
}

[[nodiscard]] tor::event stream_event(std::string host, bool initial = true,
                                      std::uint16_t port = 443,
                                      tor::address_kind kind =
                                          tor::address_kind::hostname) {
  tor::event ev;
  ev.body = tor::exit_stream_event{kind, initial, port, std::move(host)};
  return ev;
}

TEST(StreamTaxonomyTest, CountsAllCategories) {
  const auto fn = instrument_stream_taxonomy();

  counter_map m = run_instrument(fn, stream_event("a.com"));
  EXPECT_EQ(m["streams/total"], 1u);
  EXPECT_EQ(m["streams/initial"], 1u);
  EXPECT_EQ(m["streams/initial/hostname"], 1u);
  EXPECT_EQ(m["streams/initial/hostname/web"], 1u);

  m = run_instrument(fn, stream_event("a.com", /*initial=*/false));
  EXPECT_EQ(m["streams/total"], 1u);
  EXPECT_EQ(m.count("streams/initial"), 0u);

  m = run_instrument(fn, stream_event("9.9.9.9", true, 443, tor::address_kind::ipv4));
  EXPECT_EQ(m["streams/initial/ipv4"], 1u);

  m = run_instrument(fn, stream_event("a.com", true, 8080));
  EXPECT_EQ(m["streams/initial/hostname/other"], 1u);

  // Non-stream events contribute nothing.
  tor::event other;
  other.body = tor::entry_connection_event{1};
  EXPECT_TRUE(run_instrument(fn, other).empty());
}

TEST(DomainSetsTest, FirstMatchWinsAndSubdomainsMatch) {
  const auto fn = instrument_domain_sets(
      "s", {{"tor", {"torproject.org"}},
            {"amz", {"amazon.com", "amazon.de"}},
            {"dup", {"amazon.com"}}});  // shadowed by "amz"

  EXPECT_EQ(run_instrument(fn, stream_event("onionoo.torproject.org"))["s/tor"], 1u);
  EXPECT_EQ(run_instrument(fn, stream_event("www.amazon.com"))["s/amz"], 1u);
  EXPECT_EQ(run_instrument(fn, stream_event("amazon.de"))["s/amz"], 1u);
  EXPECT_EQ(run_instrument(fn, stream_event("unknown.net"))["s/other"], 1u);
  // The duplicated domain stays with the first set that registered it.
  EXPECT_EQ(run_instrument(fn, stream_event("amazon.com")).count("s/dup"), 0u);
}

TEST(DomainSetsTest, OnlyPrimaryDomainsCount) {
  const auto fn = instrument_domain_sets("s", {{"tor", {"torproject.org"}}});
  EXPECT_TRUE(run_instrument(fn, stream_event("torproject.org", /*initial=*/false)).empty());
  EXPECT_TRUE(run_instrument(fn, stream_event("torproject.org", true, 9001)).empty());
  EXPECT_TRUE(
      run_instrument(fn, stream_event("1.2.3.4", true, 443, tor::address_kind::ipv4))
          .empty());
}

TEST(TldHistogramTest, CountsByTld) {
  const auto suffixes =
      std::make_shared<const workload::suffix_list>(workload::suffix_list::embedded());
  const auto fn = instrument_tld_histogram("tld", {"com", "ru"}, nullptr,
                                           /*separate_torproject=*/false,
                                           suffixes);
  EXPECT_EQ(run_instrument(fn, stream_event("a.b.com"))["tld/com"], 1u);
  EXPECT_EQ(run_instrument(fn, stream_event("x.ru"))["tld/ru"], 1u);
  EXPECT_EQ(run_instrument(fn, stream_event("y.de"))["tld/other"], 1u);
}

TEST(TldHistogramTest, TorprojectSeparationAndAlexaFilter) {
  const auto suffixes =
      std::make_shared<const workload::suffix_list>(workload::suffix_list::embedded());
  const auto alexa = std::make_shared<const workload::alexa_list>(
      workload::alexa_list::make_synthetic({.size = 20'000, .seed = 5}));
  const auto fn = instrument_tld_histogram("tld", {"com", "org"}, alexa,
                                           /*separate_torproject=*/true,
                                           suffixes);
  EXPECT_EQ(run_instrument(fn, stream_event("onionoo.torproject.org"))["tld/torproject.org"],
            1u);
  // Alexa-listed .com counts; unlisted domains are skipped entirely.
  EXPECT_EQ(run_instrument(fn, stream_event("www.google.com"))["tld/com"], 1u);
  EXPECT_TRUE(run_instrument(fn, stream_event("definitely-not-listed.com")).empty());
}

TEST(EntryTotalsTest, CountsConnectionsCircuitsBytes) {
  const auto fn = instrument_entry_totals();
  tor::event conn;
  conn.body = tor::entry_connection_event{1};
  EXPECT_EQ(run_instrument(fn, conn)["entry/connections"], 1u);

  tor::event circ;
  circ.body = tor::entry_circuit_event{1, tor::circuit_kind::directory};
  EXPECT_EQ(run_instrument(fn, circ)["entry/circuits"], 1u);

  tor::event data;
  data.body = tor::entry_data_event{1, 4096};
  EXPECT_EQ(run_instrument(fn, data)["entry/bytes"], 4096u);
}

TEST(CountryUsageTest, MapsIpsToCountries) {
  const auto geo = std::make_shared<const workload::geoip_db>(
      workload::geoip_db::make_synthetic());
  const auto fn = instrument_country_usage(geo, {"US", "DE"});

  // Build IPs in the US and DE blocks via a mutable copy (allocate_ip is
  // stateful); country_of is what the instrument consults.
  workload::geoip_db mutable_geo = workload::geoip_db::make_synthetic();
  const std::uint32_t us_ip = mutable_geo.allocate_ip(mutable_geo.index_of("US"));
  const std::uint32_t de_ip = mutable_geo.allocate_ip(mutable_geo.index_of("DE"));
  const std::uint32_t fr_ip = mutable_geo.allocate_ip(mutable_geo.index_of("FR"));

  tor::event ev;
  ev.body = tor::entry_connection_event{us_ip};
  EXPECT_EQ(run_instrument(fn, ev)["country/US/connections"], 1u);
  ev.body = tor::entry_data_event{de_ip, 100};
  EXPECT_EQ(run_instrument(fn, ev)["country/DE/bytes"], 100u);
  ev.body = tor::entry_circuit_event{de_ip, tor::circuit_kind::general};
  EXPECT_EQ(run_instrument(fn, ev)["country/DE/circuits"], 1u);
  // FR is not measured: nothing is counted.
  ev.body = tor::entry_connection_event{fr_ip};
  EXPECT_TRUE(run_instrument(fn, ev).empty());
}

TEST(AsSplitTest, TopVsOther) {
  const auto geo = std::make_shared<const workload::geoip_db>(
      workload::geoip_db::make_synthetic());
  workload::geoip_db mutable_geo = workload::geoip_db::make_synthetic();
  const std::uint32_t ip = mutable_geo.allocate_ip(mutable_geo.index_of("US"));
  const std::uint32_t asn = geo->asn_of(ip);

  const auto top_fn = instrument_as_split(geo, {asn});
  const auto other_fn = instrument_as_split(geo, {asn + 999999});
  tor::event ev;
  ev.body = tor::entry_connection_event{ip};
  EXPECT_EQ(run_instrument(top_fn, ev)["as/top1000/connections"], 1u);
  EXPECT_EQ(run_instrument(other_fn, ev)["as/other/connections"], 1u);
}

TEST(HsdirInstrumentTest, FetchOutcomesAndAhmiaMembership) {
  std::vector<tor::onion_address> addrs{
      tor::derive_onion_address(as_bytes("a")),
      tor::derive_onion_address(as_bytes("b"))};
  rng r{1};
  // Index everything -> "public"; empty index -> "unknown".
  const auto all = std::make_shared<const workload::ahmia_index>(
      workload::ahmia_index::make(addrs, 1.0, r));
  const auto none = std::make_shared<const workload::ahmia_index>(
      workload::ahmia_index::make(addrs, 0.0, r));

  tor::event publish;
  publish.body = tor::hsdir_publish_event{addrs[0]};
  EXPECT_EQ(run_instrument(instrument_hsdir_descriptors(all), publish)["hsdir/publishes"],
            1u);

  tor::event ok;
  ok.body = tor::hsdir_fetch_event{addrs[0], tor::fetch_outcome::success};
  counter_map m = run_instrument(instrument_hsdir_descriptors(all), ok);
  EXPECT_EQ(m["hsdir/fetch/total"], 1u);
  EXPECT_EQ(m["hsdir/fetch/success"], 1u);
  EXPECT_EQ(m["hsdir/fetch/success/public"], 1u);
  m = run_instrument(instrument_hsdir_descriptors(none), ok);
  EXPECT_EQ(m["hsdir/fetch/success/unknown"], 1u);

  tor::event missing;
  missing.body = tor::hsdir_fetch_event{addrs[1], tor::fetch_outcome::not_found};
  m = run_instrument(instrument_hsdir_descriptors(all), missing);
  EXPECT_EQ(m["hsdir/fetch/failed"], 1u);
  EXPECT_EQ(m.count("hsdir/fetch/success"), 0u);
}

TEST(RendezvousInstrumentTest, OutcomesAndCells) {
  const auto fn = instrument_rendezvous();
  tor::event ok;
  ok.body = tor::rend_circuit_event{tor::rend_outcome::succeeded, 1500};
  counter_map m = run_instrument(fn, ok);
  EXPECT_EQ(m["rend/circuits"], 1u);
  EXPECT_EQ(m["rend/succeeded"], 1u);
  EXPECT_EQ(m["rend/cells"], 1500u);

  tor::event expired;
  expired.body = tor::rend_circuit_event{tor::rend_outcome::failed_expired, 0};
  m = run_instrument(fn, expired);
  EXPECT_EQ(m["rend/expired"], 1u);
  EXPECT_EQ(m.count("rend/cells"), 0u);

  tor::event closed;
  closed.body = tor::rend_circuit_event{tor::rend_outcome::failed_conn_closed, 0};
  EXPECT_EQ(run_instrument(fn, closed)["rend/conn-closed"], 1u);
}

// -- name registry (plan-file instruments) -----------------------------------

TEST(RegistryTest, EveryRegisteredInstrumentResolvesAndHasSpecs) {
  for (const auto& name : instrument_names()) {
    EXPECT_NO_THROW((void)instrument_by_name(name)) << name;
    const auto specs = default_specs_for(name);
    EXPECT_FALSE(specs.empty()) << name;
    for (const auto& spec : specs) {
      EXPECT_GT(spec.sensitivity, 0.0) << name << "/" << spec.name;
    }
  }
  EXPECT_THROW((void)instrument_by_name("nonexistent"), precondition_error);
  EXPECT_THROW((void)default_specs_for("nonexistent"), precondition_error);
}

/// The registry contract the distributed byte-identity gates depend on:
/// two independent resolutions of one name must classify an event batch
/// identically (same counters, same increments) — the canonical auxiliary
/// inputs (Alexa list, ahmia index, suffix list) rebuild deterministically.
TEST(RegistryTest, ParameterizedInstrumentsResolveDeterministically) {
  std::vector<tor::event> batch;
  for (int i = 0; i < 50; ++i) {
    batch.push_back(stream_event("host" + std::to_string(i) + ".com"));
    batch.push_back(stream_event("x.site" + std::to_string(i) + ".ru"));
  }
  for (int i = 0; i < 20; ++i) {
    const tor::onion_address addr = tor::derive_onion_address(
        as_bytes("tormet.service.key." + std::to_string(i)));
    tor::event fetch;
    fetch.body = tor::hsdir_fetch_event{addr, tor::fetch_outcome::success};
    batch.push_back(fetch);
  }
  for (const auto& name : instrument_names()) {
    const auto a = instrument_by_name(name);
    const auto b = instrument_by_name(name);
    counter_map counts_a, counts_b;
    for (const auto& ev : batch) {
      a(ev, [&](const std::string& c, std::uint64_t n) { counts_a[c] += n; });
      b(ev, [&](const std::string& c, std::uint64_t n) { counts_b[c] += n; });
    }
    EXPECT_EQ(counts_a, counts_b) << name;
  }
}

TEST(RegistryTest, TldHistogramCountsCanonicalTlds) {
  const auto fn = instrument_by_name("tld_histogram");
  EXPECT_EQ(run_instrument(fn, stream_event("a.b.com"))["tld/com"], 1u);
  EXPECT_EQ(run_instrument(fn, stream_event("x.ru"))["tld/ru"], 1u);
  EXPECT_EQ(run_instrument(fn, stream_event("foo.example"))["tld/other"], 1u);
  EXPECT_EQ(run_instrument(fn, stream_event("onionoo.torproject.org"))
                ["tld/torproject.org"],
            1u);
  // Every counter it can emit has a default spec.
  std::set<std::string> spec_names;
  for (const auto& s : default_specs_for("tld_histogram")) {
    spec_names.insert(s.name);
  }
  EXPECT_TRUE(spec_names.contains("tld/com"));
  EXPECT_TRUE(spec_names.contains("tld/other"));
  EXPECT_TRUE(spec_names.contains("tld/torproject.org"));
}

TEST(RegistryTest, DomainSetsBucketsCanonicalAlexaRanks) {
  const auto fn = instrument_by_name("domain_sets");
  // Rank-bucket membership over the canonical list: unknown domains land
  // in sites/other; torproject.org is separated.
  EXPECT_EQ(run_instrument(fn, stream_event("torproject.org"))
                ["sites/torproject.org"],
            1u);
  EXPECT_EQ(run_instrument(fn, stream_event("never-in-any-list.zz"))
                ["sites/other"],
            1u);
  // Default specs cover each emitted bucket.
  std::set<std::string> spec_names;
  for (const auto& s : default_specs_for("domain_sets")) {
    spec_names.insert(s.name);
  }
  EXPECT_TRUE(spec_names.contains("sites/torproject.org"));
  EXPECT_TRUE(spec_names.contains("sites/(0,10]"));
  EXPECT_TRUE(spec_names.contains("sites/other"));
}

TEST(RegistryTest, HsdirAhmiaClassifiesCanonicalServiceUniverse) {
  const auto fn = instrument_by_name("hsdir_ahmia");
  // The canonical index covers ~56.8 % of the synthetic service universe
  // (tor::network's deterministic per-index addresses); fetching the first
  // 200 services must classify a plausible public/unknown split.
  std::uint64_t public_hits = 0, unknown_hits = 0;
  for (int i = 0; i < 200; ++i) {
    const tor::onion_address addr = tor::derive_onion_address(
        as_bytes("tormet.service.key." + std::to_string(i)));
    tor::event fetch;
    fetch.body = tor::hsdir_fetch_event{addr, tor::fetch_outcome::success};
    const counter_map m = run_instrument(fn, fetch);
    public_hits += m.count("hsdir/fetch/success/public");
    unknown_hits += m.count("hsdir/fetch/success/unknown");
  }
  EXPECT_EQ(public_hits + unknown_hits, 200u);
  EXPECT_GT(public_hits, 70u);   // ~113 expected
  EXPECT_GT(unknown_hits, 40u);  // ~87 expected
}

// -- extractors --------------------------------------------------------------

TEST(ExtractorTest, ClientIp) {
  const auto fn = extract_client_ip();
  tor::event ev;
  ev.body = tor::entry_connection_event{12345};
  EXPECT_EQ(fn(ev), "ip:12345");
  ev.body = tor::entry_circuit_event{12345, tor::circuit_kind::general};
  EXPECT_EQ(fn(ev), std::nullopt);  // only connections identify clients
}

TEST(ExtractorTest, CountryAndAsn) {
  const auto geo = std::make_shared<const workload::geoip_db>(
      workload::geoip_db::make_synthetic());
  workload::geoip_db mutable_geo = workload::geoip_db::make_synthetic();
  const std::uint32_t ip = mutable_geo.allocate_ip(mutable_geo.index_of("RU"));
  tor::event ev;
  ev.body = tor::entry_connection_event{ip};
  EXPECT_EQ(extract_client_country(geo)(ev), "cc:RU");
  EXPECT_EQ(extract_client_asn(geo)(ev),
            "as:" + std::to_string(geo->asn_of(ip)));
}

TEST(ExtractorTest, PrimarySld) {
  const auto suffixes =
      std::make_shared<const workload::suffix_list>(workload::suffix_list::embedded());
  const auto alexa = std::make_shared<const workload::alexa_list>(
      workload::alexa_list::make_synthetic({.size = 20'000, .seed = 5}));

  const auto all = extract_primary_sld(suffixes, nullptr);
  EXPECT_EQ(all(stream_event("www.example.com")), "sld:example.com");
  EXPECT_EQ(all(stream_event("a.b.shop.co.uk")), "sld:shop.co.uk");
  EXPECT_EQ(all(stream_event("example.com", false)), std::nullopt);
  EXPECT_EQ(all(stream_event("noSuffixHost")), std::nullopt);

  const auto listed = extract_primary_sld(suffixes, alexa);
  EXPECT_EQ(listed(stream_event("www.google.com")), "sld:google.com");
  EXPECT_EQ(listed(stream_event("never-listed-domain.com")), std::nullopt);
}

TEST(ExtractorTest, OnionAddresses) {
  const tor::onion_address addr = tor::derive_onion_address(as_bytes("svc"));
  tor::event pub;
  pub.body = tor::hsdir_publish_event{addr};
  EXPECT_EQ(extract_published_address()(pub), "pub:" + addr.value);
  EXPECT_EQ(extract_fetched_address()(pub), std::nullopt);

  tor::event fetched;
  fetched.body = tor::hsdir_fetch_event{addr, tor::fetch_outcome::success};
  EXPECT_EQ(extract_fetched_address()(fetched), "fetch:" + addr.value);

  tor::event failed;
  failed.body = tor::hsdir_fetch_event{addr, tor::fetch_outcome::not_found};
  EXPECT_EQ(extract_fetched_address()(failed), std::nullopt);
}

}  // namespace
}  // namespace tormet::core
