// Multi-round live-pipeline tests: sim-time window partitioning of a
// continuously ingested event stream, multi-round distributed rounds that
// keep every process alive across the schedule, and the fault-injection
// harness — a feeder socket killed mid-round, a DC whose stream is delayed
// past the round boundary, and a DC process dropped between rounds. Later
// rounds must still complete, dropped DCs must be excluded, and surviving
// counters must stay exact in noiseless mode.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>
#include <thread>

#include "src/cli/deployment_plan.h"
#include "src/cli/node_runner.h"
#include "src/cli/orchestrator.h"
#include "src/cli/workload_source.h"
#include "src/core/instruments.h"
#include "src/tor/event_codec.h"
#include "src/tor/trace_file.h"
#include "src/tor/trace_socket.h"
#include "src/workload/trace_gen.h"

namespace tormet::cli {
namespace {

[[nodiscard]] std::string node_binary() {
  if (const char* env = std::getenv("TORMET_NODE_BIN")) return env;
  return sibling_node_binary();
}

class workdir_guard {
 public:
  workdir_guard() : path_{make_round_workdir()} {}
  ~workdir_guard() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// Scoped TORMET_FAULT injection for the spawned node processes (the
/// orchestrator's fork/exec children inherit this test's environment).
class fault_env {
 public:
  explicit fault_env(const std::string& spec) {
    ::setenv("TORMET_FAULT", spec.c_str(), 1);
  }
  ~fault_env() { ::unsetenv("TORMET_FAULT"); }
};

/// Scoped supervisor restart delay: holds a crashed node down long enough
/// for the TS to exhaust its retries and exclude it (the rejoin path).
class restart_delay_env {
 public:
  explicit restart_delay_env(int ms) {
    ::setenv("TORMET_RESTART_DELAY_MS", std::to_string(ms).c_str(), 1);
  }
  ~restart_delay_env() { ::unsetenv("TORMET_RESTART_DELAY_MS"); }
};

[[nodiscard]] int restarts_of(const distributed_round_result& result,
                              net::node_id id) {
  for (const auto& n : result.nodes) {
    if (n.id == id) return n.restarts;
  }
  return -1;
}

[[nodiscard]] tor::event stream_event_at(std::int64_t t, std::size_t observer) {
  tor::event ev;
  ev.observer = static_cast<tor::relay_id>(observer);
  ev.at = sim_time{t};
  ev.body = tor::exit_stream_event{tor::address_kind::hostname, true, 443,
                                   "site" + std::to_string(t) + ".com"};
  return ev;
}

/// Parses a (multi-round) privcount tally into per-round counter maps.
[[nodiscard]] std::vector<std::map<std::string, std::int64_t>>
parse_privcount_rounds(const std::string& tally) {
  std::vector<std::map<std::string, std::int64_t>> rounds;
  std::istringstream in{tally};
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("round ", 0) == 0) {
      rounds.emplace_back();
      continue;
    }
    if (line == "protocol privcount" && rounds.empty()) {
      rounds.emplace_back();  // single-round tally: no "round i" markers
      continue;
    }
    if (line.rfind("counter ", 0) != 0 || rounds.empty()) continue;
    std::istringstream ls{line};
    std::string key, name;
    std::int64_t value = 0;
    ls >> key >> name >> value;
    rounds.back()[name] = value;
  }
  return rounds;
}

/// Reads one numeric field from a DC's `dc_stats <id> <key> <value>`
/// summary-sidecar line (-1 if the line is absent).
[[nodiscard]] std::int64_t summary_stat(const std::string& summary,
                                        net::node_id id,
                                        const std::string& key) {
  const std::string prefix = "dc_stats " + std::to_string(id) + " " + key + " ";
  const std::size_t at = summary.find(prefix);
  if (at == std::string::npos) return -1;
  return std::strtoll(summary.c_str() + at + prefix.size(), nullptr, 10);
}

// -- cursor window semantics -------------------------------------------------

TEST(WorkloadCursorTest, PartitionsStreamIntoWindowsAndCountsGapEvents) {
  workdir_guard workdir;
  {
    tor::trace_writer writer{workdir.path() + "/" + tor::trace_file_name(0)};
    for (const std::int64_t t : {10, 99, 120, 160, 300}) {
      writer.write(stream_event_at(t, 0));
    }
    writer.close();
  }
  deployment_plan plan = make_psc_plan(1, 1, 64);
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  // Schedule: [0,100) and [150,250); 120 falls in the gap, 300 after.
  plan.schedule_rounds = 2;
  plan.round_duration_s = 100;
  plan.round_gap_s = 50;

  workload_cursor cursor{plan, 0};
  std::vector<std::int64_t> seen;
  const auto sink = [&](const tor::event* evs, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) seen.push_back(evs[i].at.seconds);
  };

  EXPECT_EQ(cursor.stream_window(sim_time{0}, sim_time{100}, sink), 2u);
  EXPECT_EQ(seen, (std::vector<std::int64_t>{10, 99}));

  seen.clear();
  // The gap event (120) is counted-but-dropped; 300 is held as lookahead.
  EXPECT_EQ(cursor.stream_window(sim_time{150}, sim_time{250}, sink), 1u);
  EXPECT_EQ(seen, (std::vector<std::int64_t>{160}));
  EXPECT_EQ(cursor.dropped_outside_windows(), 1u);

  // Trailing events drain as dropped.
  EXPECT_EQ(cursor.drain(), 1u);
  EXPECT_EQ(cursor.dropped_outside_windows(), 2u);
  EXPECT_FALSE(cursor.stream_failed());
}

TEST(WorkloadCursorTest, SingleRoundPlansReplayTheWholeStream) {
  workdir_guard workdir;
  {
    tor::trace_writer writer{workdir.path() + "/" + tor::trace_file_name(0)};
    for (const std::int64_t t : {5, 200'000, 900'000}) {
      writer.write(stream_event_at(t, 0));
    }
    writer.close();
  }
  deployment_plan plan = make_psc_plan(1, 1, 64);
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  std::size_t n = 0;
  EXPECT_EQ(stream_dc_workload(
                plan, 0, [&](const tor::event*, std::size_t k) { n += k; }),
            3u);
  EXPECT_EQ(n, 3u);
}

// Hand-crafted event slices through the scenario/generated zero-copy fast
// path: the cursor constructor accepts a pre-materialized stream, so the
// window logic can be exercised against exact timestamps.
[[nodiscard]] std::shared_ptr<const std::vector<std::vector<tor::event>>>
one_dc_events(const std::vector<std::int64_t>& times) {
  std::vector<std::vector<tor::event>> per_dc{{}};
  for (const std::int64_t t : times) {
    per_dc[0].push_back(stream_event_at(t, 0));
  }
  return std::make_shared<const std::vector<std::vector<tor::event>>>(
      std::move(per_dc));
}

TEST(WorkloadCursorTest, EmptyWindowsInsideScheduleDeliverNothing) {
  deployment_plan plan = make_psc_plan(1, 1, 64);
  plan.workload.kind = workload_kind::scenario;
  workload_cursor cursor{plan, 0, one_dc_events({10, 500, 510, 900})};
  std::size_t n = 0;
  const auto sink = [&](const tor::event*, std::size_t k) { n += k; };

  EXPECT_EQ(cursor.stream_window(sim_time{0}, sim_time{100}, sink), 1u);
  // Two windows with no events at all: empty delivery, nothing dropped,
  // the cursor keeps its position for the later windows.
  EXPECT_EQ(cursor.stream_window(sim_time{200}, sim_time{300}, sink), 0u);
  EXPECT_EQ(cursor.stream_window(sim_time{320}, sim_time{400}, sink), 0u);
  EXPECT_EQ(cursor.dropped_outside_windows(), 0u);
  EXPECT_EQ(cursor.stream_window(sim_time{450}, sim_time{600}, sink), 2u);
  EXPECT_EQ(cursor.stream_window(sim_time{850}, sim_time{1'000}, sink), 1u);
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(cursor.dropped_outside_windows(), 0u);
}

TEST(WorkloadCursorTest, SurgeBurstStraddlingBoundaryDropsOnlyGapEvents) {
  // A flash-crowd-style burst of one event per second across a round
  // boundary: [0,100) collects the front of the burst, the gap [100,150)
  // swallows the middle (counted-but-dropped, collection never pauses),
  // and [150,250) collects the tail.
  std::vector<std::int64_t> burst;
  for (std::int64_t t = 80; t < 180; ++t) burst.push_back(t);
  deployment_plan plan = make_psc_plan(1, 1, 64);
  plan.workload.kind = workload_kind::scenario;
  workload_cursor cursor{plan, 0, one_dc_events(burst)};
  std::size_t n = 0;
  const auto sink = [&](const tor::event*, std::size_t k) { n += k; };

  EXPECT_EQ(cursor.stream_window(sim_time{0}, sim_time{100}, sink), 20u);
  EXPECT_EQ(cursor.stream_window(sim_time{150}, sim_time{250}, sink), 30u);
  EXPECT_EQ(cursor.dropped_outside_windows(), 50u);  // exactly the gap slice
  EXPECT_EQ(n, 50u);
  EXPECT_EQ(cursor.drain(), 0u);
}

TEST(WorkloadCursorTest, GiantSpanWindowDeliversWholeScenarioInOneSpan) {
  // A single window covering all of sim time must hand the entire
  // materialized scenario slice to the sink as one zero-copy span.
  deployment_plan plan = make_psc_plan(2, 1, 64);
  plan.workload.kind = workload_kind::scenario;
  plan.workload.model = "botnet_surge";
  plan.workload.scale = 0.25;
  plan.workload.events = 200;
  plan.workload.gen_seed = 3;
  plan.workload.gen_days = 2;
  const auto generated = materialize_plan_events(plan);
  ASSERT_EQ(generated->size(), 2u);
  ASSERT_GT((*generated)[0].size(), 0u);

  workload_cursor cursor{plan, 0, generated};
  std::size_t calls = 0, n = 0;
  const auto sink = [&](const tor::event*, std::size_t k) {
    ++calls;
    n += k;
  };
  constexpr sim_time lo{std::numeric_limits<std::int64_t>::min()};
  constexpr sim_time hi{std::numeric_limits<std::int64_t>::max()};
  EXPECT_EQ(cursor.stream_window(lo, hi, sink), (*generated)[0].size());
  EXPECT_EQ(n, (*generated)[0].size());
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(cursor.dropped_outside_windows(), 0u);
  EXPECT_EQ(cursor.drain(), 0u);  // nothing left past a giant window
}

TEST(RoundScheduleTest, PlanScheduleDrivesWindowing) {
  deployment_plan plan = make_privcount_plan(2, 1, {{"entry/connections", 12.0, 100.0}});
  plan.schedule_rounds = 3;
  plan.round_duration_s = k_seconds_per_day;
  plan.round_gap_s = 3600;
  const core::measurement_schedule sched = round_schedule_of(plan);
  ASSERT_EQ(sched.rounds().size(), 3u);
  EXPECT_EQ(sched.round_of(sim_time{0}), 0u);
  EXPECT_EQ(sched.round_of(sim_time{k_seconds_per_day - 1}), 0u);
  // Gap hour between rounds: no window.
  EXPECT_EQ(sched.round_of(sim_time{k_seconds_per_day + 1800}), std::nullopt);
  EXPECT_EQ(sched.round_of(sim_time{k_seconds_per_day + 3600}), 1u);
}

TEST(DeploymentPlanTest, ScheduleAndGraceFieldsRoundTrip) {
  deployment_plan plan = make_privcount_plan(2, 1, {{"entry/connections", 12.0, 100.0}});
  assign_free_ports(plan);
  plan.schedule_rounds = 4;
  plan.round_duration_s = 7200;
  plan.round_gap_s = 600;
  plan.dc_grace_ms = 1500;
  plan.workload.kind = workload_kind::generate;
  plan.workload.model = "population";
  plan.workload.scale = 5e-5;
  plan.workload.gen_days = 4;
  plan.instruments = {"entry_totals"};

  const deployment_plan back = parse_plan(serialize_plan(plan));
  EXPECT_EQ(back.schedule_rounds, 4u);
  EXPECT_EQ(back.round_duration_s, 7200);
  EXPECT_EQ(back.round_gap_s, 600);
  EXPECT_EQ(back.dc_grace_ms, 1500);
  EXPECT_EQ(back.workload.gen_days, 4u);
  EXPECT_EQ(serialize_plan(back), serialize_plan(plan));

  // Malformed schedule lines are parse errors, not silent defaults.
  const std::string base =
      "tormet-plan-v1\nnode 0 psc_ts 127.0.0.1 9000\n"
      "node 1 psc_cp 127.0.0.1 9001\nnode 2 psc_dc 127.0.0.1 9002\n";
  EXPECT_THROW(parse_plan(base + "schedule rounds 0 duration 60 gap 0\n"),
               precondition_error);
  EXPECT_THROW(parse_plan(base + "schedule rounds 2 duration 0 gap 0\n"),
               precondition_error);
  EXPECT_THROW(parse_plan(base + "schedule rounds 2 duration 60 gap -5\n"),
               precondition_error);
  EXPECT_THROW(parse_plan(base + "schedule 2 60 0\n"), precondition_error);
  EXPECT_THROW(parse_plan(base + "dc_grace_ms 0\n"), precondition_error);
}

// -- fault injection over real processes -------------------------------------

/// Expected noiseless streams/total per round for the zipf trace: events of
/// `dc` with sim time inside round r's daily window.
[[nodiscard]] std::vector<std::uint64_t> expected_streams_per_round(
    const std::vector<std::vector<tor::event>>& per_dc, std::size_t rounds,
    const std::function<bool(std::size_t dc, std::size_t round)>& counted) {
  std::vector<std::uint64_t> totals(rounds, 0);
  for (std::size_t dc = 0; dc < per_dc.size(); ++dc) {
    for (const tor::event& ev : per_dc[dc]) {
      const auto r = static_cast<std::size_t>(ev.at.seconds / k_seconds_per_day);
      if (r < rounds && counted(dc, r)) ++totals[r];
    }
  }
  return totals;
}

/// Raw feeder that pushes `bytes` to the DC's event socket and then closes
/// abruptly — the "killed mid-round" feeder (a truncated record on the
/// wire).
void feed_raw_bytes(std::uint16_t port, const byte_buffer& bytes) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::seconds{30};
  int fd = -1;
  for (;;) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      break;
    }
    ::close(fd);
    ASSERT_LT(clock::now(), deadline) << "feeder could not connect";
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
  ::close(fd);  // abrupt close: no trailing record boundary
}

/// A killed feeder socket mid-round and a cleanly-closing feeder mid-stream:
/// both DCs stay alive, later rounds complete, and every counter is exactly
/// the number of events that made it onto the wire inside each window.
TEST(MultiRoundFaultTest, FeederSocketKilledMidRoundKeepsPipelineExact) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 3;
  gen.events = 360;  // 120/day, 40 per DC per day
  gen.days = 3;
  gen.seed = 41;
  const std::vector<std::vector<tor::event>> per_dc =
      workload::generate_trace_events(gen);

  workdir_guard workdir;
  deployment_plan plan = make_privcount_plan(
      3, 1, core::default_specs_for("stream_taxonomy"));
  plan.rng_seed = 19;
  plan.privcount_noise_enabled = false;
  plan.workload.kind = workload_kind::socket;
  plan.instruments = {"stream_taxonomy"};
  plan.schedule_rounds = 3;
  plan.round_duration_s = k_seconds_per_day;
  plan.dc_grace_ms = 1500;
  plan.round_deadline_ms = 30'000;
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);
  std::uint16_t base = 0;
  for (const auto& n : plan.nodes) base = std::max(base, n.port);
  plan.workload.event_port_base = static_cast<std::uint16_t>(base + 1);

  // DC 0: healthy feeder, full 3-day stream. DC 1: feeder killed mid-round
  // (day-0 records plus a truncated day-1 record, then an abrupt close).
  // DC 2: feeder closes cleanly after day 0 (EOF at a record boundary).
  byte_buffer dc1_bytes;
  tor::append_trace_header(dc1_bytes);
  for (const tor::event& ev : per_dc[1]) {
    if (ev.at.seconds < k_seconds_per_day) tor::append_event_record(dc1_bytes, ev);
  }
  {
    byte_buffer one;
    for (const tor::event& ev : per_dc[1]) {
      if (ev.at.seconds >= k_seconds_per_day) {
        tor::append_event_record(one, ev);
        break;
      }
    }
    ASSERT_GT(one.size(), 2u);
    dc1_bytes.insert(dc1_bytes.end(), one.begin(),
                     one.begin() + static_cast<std::ptrdiff_t>(one.size() / 2));
  }
  std::vector<tor::event> dc2_day0;
  for (const tor::event& ev : per_dc[2]) {
    if (ev.at.seconds < k_seconds_per_day) dc2_day0.push_back(ev);
  }

  std::vector<std::thread> feeders;
  feeders.emplace_back([&] {
    tor::stream_events_to_socket("127.0.0.1", plan.workload.event_port_base,
                                 per_dc[0], 30'000);
  });
  feeders.emplace_back([&] {
    feed_raw_bytes(static_cast<std::uint16_t>(plan.workload.event_port_base + 1),
                   dc1_bytes);
  });
  feeders.emplace_back([&] {
    tor::stream_events_to_socket(
        "127.0.0.1",
        static_cast<std::uint16_t>(plan.workload.event_port_base + 2),
        dc2_day0, 30'000);
  });

  distributed_round_result result;
  std::string round_error;
  try {
    result = run_distributed_round(plan, bin, workdir.path(), 90'000);
  } catch (const std::exception& e) {
    round_error = e.what();
  }
  for (auto& f : feeders) f.join();
  ASSERT_EQ(round_error, "");
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }

  // Later rounds completed, and every round's counters are exact: DC 1 and
  // DC 2 contribute only their day-0 events, DC 0 contributes every day.
  const std::vector<std::map<std::string, std::int64_t>> rounds =
      parse_privcount_rounds(result.tally);
  ASSERT_EQ(rounds.size(), 3u);
  const std::vector<std::uint64_t> expected = expected_streams_per_round(
      per_dc, 3, [](std::size_t dc, std::size_t round) {
        return dc == 0 || round == 0;
      });
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(rounds[r].at("streams/total"),
              static_cast<std::int64_t>(expected[r]))
        << "round " << r;
  }

  // The mid-stream failure is visible in the operational sidecar: the DC
  // whose feeder died abruptly reports stream_failed 1, the clean-EOF and
  // healthy DCs report 0.
  const std::vector<net::node_id> dc_ids =
      plan.ids_with(node_role::privcount_dc);
  EXPECT_EQ(summary_stat(result.summary, dc_ids[0], "stream_failed"), 0)
      << result.summary;
  EXPECT_EQ(summary_stat(result.summary, dc_ids[1], "stream_failed"), 1)
      << result.summary;
  EXPECT_EQ(summary_stat(result.summary, dc_ids[2], "stream_failed"), 0)
      << result.summary;
}

/// Sharded-ingest regression: a DC running with dc_shards > 1 must survive
/// a feeder killed mid-round exactly like the scalar path — sharding
/// buffers events per window, so a stream failure must not lose or
/// double-count anything already bucketed. Every later round of the live
/// run must be byte-identical to a reference round replaying the truncated
/// trace from files with the scalar observe path.
TEST(MultiRoundFaultTest, ShardedDcSurvivesFeederDeathMatchingTruncatedTrace) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 2;
  gen.events = 240;  // 80/day, 40 per DC per day
  gen.days = 3;
  gen.seed = 47;
  const std::vector<std::vector<tor::event>> per_dc =
      workload::generate_trace_events(gen);

  workdir_guard workdir;
  deployment_plan plan = make_privcount_plan(
      2, 1, core::default_specs_for("stream_taxonomy"));
  plan.rng_seed = 53;
  plan.privcount_noise_enabled = false;
  plan.workload.kind = workload_kind::socket;
  plan.instruments = {"stream_taxonomy"};
  plan.schedule_rounds = 3;
  plan.round_duration_s = k_seconds_per_day;
  plan.dc_grace_ms = 1500;
  plan.round_deadline_ms = 30'000;
  plan.dc_shards = 3;  // the regression under test
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);
  std::uint16_t base = 0;
  for (const auto& n : plan.nodes) base = std::max(base, n.port);
  plan.workload.event_port_base = static_cast<std::uint16_t>(base + 1);

  // DC 0: healthy feeder, full 3-day stream. DC 1: day-0 records, then half
  // of the first day-1 record and an abrupt close — killed mid-round 1.
  byte_buffer dc1_bytes;
  tor::append_trace_header(dc1_bytes);
  for (const tor::event& ev : per_dc[1]) {
    if (ev.at.seconds < k_seconds_per_day) {
      tor::append_event_record(dc1_bytes, ev);
    }
  }
  {
    byte_buffer one;
    for (const tor::event& ev : per_dc[1]) {
      if (ev.at.seconds >= k_seconds_per_day) {
        tor::append_event_record(one, ev);
        break;
      }
    }
    ASSERT_GT(one.size(), 2u);
    dc1_bytes.insert(dc1_bytes.end(), one.begin(),
                     one.begin() + static_cast<std::ptrdiff_t>(one.size() / 2));
  }

  std::vector<std::thread> feeders;
  feeders.emplace_back([&] {
    tor::stream_events_to_socket("127.0.0.1", plan.workload.event_port_base,
                                 per_dc[0], 30'000);
  });
  feeders.emplace_back([&] {
    feed_raw_bytes(static_cast<std::uint16_t>(plan.workload.event_port_base + 1),
                   dc1_bytes);
  });

  distributed_round_result result;
  std::string round_error;
  try {
    result = run_distributed_round(plan, bin, workdir.path(), 90'000);
  } catch (const std::exception& e) {
    round_error = e.what();
  }
  for (auto& f : feeders) f.join();
  ASSERT_EQ(round_error, "");
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }

  // Reference: the same deployment replaying the *truncated* trace from
  // files — DC 1's file simply ends where its feeder died. run_reference_
  // round uses the scalar observe path, so byte-equality also re-proves
  // shard independence on the fault path.
  const std::string ref_dir = workdir.path() + "/truncated";
  std::filesystem::create_directories(ref_dir);
  {
    tor::trace_writer w0{ref_dir + "/" + tor::trace_file_name(0)};
    for (const tor::event& ev : per_dc[0]) w0.write(ev);
    w0.close();
    tor::trace_writer w1{ref_dir + "/" + tor::trace_file_name(1)};
    for (const tor::event& ev : per_dc[1]) {
      if (ev.at.seconds < k_seconds_per_day) w1.write(ev);
    }
    w1.close();
  }
  deployment_plan ref_plan = plan;
  ref_plan.workload.kind = workload_kind::trace;
  ref_plan.workload.trace_dir = ref_dir;
  ref_plan.dc_shards = 1;
  EXPECT_EQ(result.tally, run_reference_round(ref_plan));

  // All three rounds completed; rounds after the kill count only DC 0.
  const std::vector<std::map<std::string, std::int64_t>> rounds =
      parse_privcount_rounds(result.tally);
  ASSERT_EQ(rounds.size(), 3u);
  const std::vector<std::uint64_t> expected = expected_streams_per_round(
      per_dc, 3, [](std::size_t dc, std::size_t round) {
        return dc == 0 || round == 0;
      });
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(rounds[r].at("streams/total"),
              static_cast<std::int64_t>(expected[r]))
        << "round " << r;
  }
}

/// A DC process that exits cleanly between rounds: later rounds complete
/// without it, it is excluded from the deployment, and surviving counters
/// stay exact.
TEST(MultiRoundFaultTest, DcDropoutBetweenRoundsIsExcludedAndExact) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 3;
  gen.events = 300;
  gen.days = 3;
  gen.seed = 43;
  workdir_guard workdir;
  workload::write_trace_dir(gen, workdir.path());
  const std::vector<std::vector<tor::event>> per_dc =
      workload::generate_trace_events(gen);

  deployment_plan plan = make_privcount_plan(
      3, 2, core::default_specs_for("stream_taxonomy"));
  plan.rng_seed = 29;
  plan.privcount_noise_enabled = false;
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.instruments = {"stream_taxonomy"};
  plan.schedule_rounds = 3;
  plan.round_duration_s = k_seconds_per_day;
  plan.dc_grace_ms = 1500;
  plan.round_deadline_ms = 30'000;
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  // The last DC node (plan DC index 2) dies after the first round.
  const net::node_id victim = plan.ids_with(node_role::privcount_dc).back();
  fault_env fault{std::to_string(victim) + " exit_after_round 0"};

  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir.path(), 90'000);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }

  const std::vector<std::map<std::string, std::int64_t>> rounds =
      parse_privcount_rounds(result.tally);
  ASSERT_EQ(rounds.size(), 3u);
  const std::vector<std::uint64_t> expected = expected_streams_per_round(
      per_dc, 3, [](std::size_t dc, std::size_t round) {
        return dc != 2 || round == 0;
      });
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(rounds[r].at("streams/total"),
              static_cast<std::int64_t>(expected[r]))
        << "round " << r;
  }
}

/// PSC under dropout: the faulted multi-process run must still be
/// byte-identical to an in-process reference in which the dropped DC's
/// trace simply ends after its last completed round — a present-but-empty
/// oblivious table combines to the identical union.
TEST(MultiRoundFaultTest, PscDropoutMatchesTruncatedTraceReference) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 2;
  gen.events = 240;
  gen.days = 3;
  gen.seed = 47;
  workdir_guard workdir;
  workload::write_trace_dir(gen, workdir.path());
  const std::vector<std::vector<tor::event>> per_dc =
      workload::generate_trace_events(gen);

  deployment_plan plan = make_psc_plan(2, 2, 512);
  plan.round.group = crypto::group_backend::toy;
  plan.rng_seed = 53;
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.psc_extractor = "primary_sld";
  plan.schedule_rounds = 3;
  plan.round_duration_s = k_seconds_per_day;
  plan.dc_grace_ms = 1500;
  plan.round_deadline_ms = 30'000;
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  const net::node_id victim = plan.ids_with(node_role::psc_dc).back();
  distributed_round_result result;
  {
    fault_env fault{std::to_string(victim) + " exit_after_round 0"};
    result = run_distributed_round(plan, bin, workdir.path(), 90'000);
  }
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }

  // Reference: same plan over a trace dir where the victim DC's file holds
  // only its day-0 events.
  const std::string ref_dir = workdir.path() + "/ref";
  std::filesystem::create_directories(ref_dir);
  std::filesystem::copy_file(workdir.path() + "/" + tor::trace_file_name(0),
                             ref_dir + "/" + tor::trace_file_name(0));
  {
    tor::trace_writer writer{ref_dir + "/" + tor::trace_file_name(1)};
    for (const tor::event& ev : per_dc[1]) {
      if (ev.at.seconds < k_seconds_per_day) writer.write(ev);
    }
    writer.close();
  }
  deployment_plan ref_plan = plan;
  ref_plan.workload.trace_dir = ref_dir;
  EXPECT_EQ(result.tally, run_reference_round(ref_plan));
}

/// A DC whose stream is delayed past the round boundary misses the grace
/// window: the round completes without it, it is excluded from later
/// rounds, and surviving counters stay exact.
TEST(MultiRoundFaultTest, DelayedDcStreamIsExcludedAfterGrace) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 3;
  gen.events = 300;
  gen.days = 3;
  gen.seed = 59;
  workdir_guard workdir;
  workload::write_trace_dir(gen, workdir.path());
  const std::vector<std::vector<tor::event>> per_dc =
      workload::generate_trace_events(gen);

  deployment_plan plan = make_privcount_plan(
      3, 1, core::default_specs_for("stream_taxonomy"));
  plan.rng_seed = 61;
  plan.privcount_noise_enabled = false;
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.instruments = {"stream_taxonomy"};
  plan.schedule_rounds = 3;
  plan.round_duration_s = k_seconds_per_day;
  plan.dc_grace_ms = 1200;
  plan.round_deadline_ms = 30'000;
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  // DC index 1's collection stalls 4 s into round 0 — far past the grace.
  const net::node_id victim = plan.ids_with(node_role::privcount_dc)[1];
  fault_env fault{std::to_string(victim) + " delay_round 0 4000"};

  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir.path(), 90'000);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }

  const std::vector<std::map<std::string, std::int64_t>> rounds =
      parse_privcount_rounds(result.tally);
  ASSERT_EQ(rounds.size(), 3u);
  // The delayed DC contributes to no round at all: round 0's report missed
  // the grace (and is dropped by the TS's reveal guard), and later rounds
  // exclude it entirely.
  const std::vector<std::uint64_t> expected = expected_streams_per_round(
      per_dc, 3,
      [](std::size_t dc, std::size_t /*round*/) { return dc != 1; });
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(rounds[r].at("streams/total"),
              static_cast<std::int64_t>(expected[r]))
        << "round " << r;
  }
}

// -- durable rounds: kill-and-restart recovery -------------------------------

/// PrivCount with every role killed and restarted mid-schedule: the TS at
/// the start of round 2 (op-log replay of a committed round), the SK right
/// after round 1's reveal, and a DC at round 3's collection start. The
/// supervisor restarts each crashed process, the TS retries the
/// interrupted round, and the final multi-round tally must be
/// byte-identical to an uninterrupted in-process reference run.
TEST(DurableRoundTest, PrivcountKillRestartEveryRoleIsExact) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 3;
  gen.events = 300;
  gen.days = 3;
  gen.seed = 67;
  workdir_guard workdir;
  workload::write_trace_dir(gen, workdir.path());

  deployment_plan plan = make_privcount_plan(
      3, 1, core::default_specs_for("stream_taxonomy"));
  plan.rng_seed = 73;
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.instruments = {"stream_taxonomy"};
  plan.schedule_rounds = 3;
  plan.round_duration_s = k_seconds_per_day;
  plan.dc_grace_ms = 1500;
  plan.round_deadline_ms = 30'000;
  plan.durable_dir = workdir.path() + "/durable";
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  // Node layout: TS=0, SK=1, DCs 2-4. Crash the TS entering round 2, the
  // SK after round 1's reveal, and DC 3 at round 3's collection start
  // (the ':' clause spelling exercises the parser's normalizer).
  fault_env fault{"0 crash_in_round:1;1 crash_after_round:0;3 crash_in_round:2"};
  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir.path(), 150'000);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }
  EXPECT_GE(restarts_of(result, 0), 1);
  EXPECT_GE(restarts_of(result, 1), 1);
  EXPECT_GE(restarts_of(result, 3), 1);

  // Byte-identity is the whole point: noise included, every recovery path
  // must reproduce the uninterrupted run exactly.
  EXPECT_EQ(result.tally, run_reference_round(plan));
  // The privacy-safe summary rides in a sidecar, never in the tally bytes.
  EXPECT_NE(result.summary.find("tormet-summary-v1"), std::string::npos);
  EXPECT_NE(result.summary.find("rounds 3"), std::string::npos);
}

/// PSC with every role killed and restarted: the TS right after committing
/// round 1, a CP at round 2's configure (before its key share), and a DC
/// at round 3's configure. Recovery must reproduce the reference bytes —
/// the mix-chain RNG streams are re-derived per round, so a retried round
/// is byte-identical to the interrupted attempt.
TEST(DurableRoundTest, PscKillRestartEveryRoleIsExact) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 2;
  gen.events = 240;
  gen.days = 3;
  gen.seed = 71;
  workdir_guard workdir;
  workload::write_trace_dir(gen, workdir.path());

  deployment_plan plan = make_psc_plan(2, 2, 512);
  plan.round.group = crypto::group_backend::toy;
  plan.rng_seed = 79;
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.psc_extractor = "primary_sld";
  plan.schedule_rounds = 3;
  plan.round_duration_s = k_seconds_per_day;
  plan.dc_grace_ms = 1500;
  plan.round_deadline_ms = 30'000;
  plan.durable_dir = workdir.path() + "/durable";
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  // Node layout: TS=0, CPs 1-2, DCs 3-4.
  fault_env fault{"0 crash_after_round 0;1 crash_in_round 1;3 crash_in_round 2"};
  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir.path(), 150'000);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }
  EXPECT_GE(restarts_of(result, 0), 1);
  EXPECT_GE(restarts_of(result, 1), 1);
  EXPECT_GE(restarts_of(result, 3), 1);
  EXPECT_EQ(result.tally, run_reference_round(plan));
}

/// A DC whose restart is held back past the TS's retry budget: the round
/// is completed without it (exclusion), later rounds run degraded, and
/// once the restarted DC announces itself the TS re-admits it at a round
/// boundary — the final rounds count its events again. Which intermediate
/// rounds run degraded depends on restart timing, so the assertions pin
/// the first/crash/last rounds and require each round to be exactly one of
/// the two possible participation shapes.
TEST(DurableRoundTest, ExcludedDcRejoinsAfterDelayedRestart) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 3;
  gen.events = 700;
  gen.days = 7;
  gen.seed = 83;
  workdir_guard workdir;
  workload::write_trace_dir(gen, workdir.path());
  const std::vector<std::vector<tor::event>> per_dc =
      workload::generate_trace_events(gen);

  deployment_plan plan = make_privcount_plan(
      3, 1, core::default_specs_for("stream_taxonomy"));
  plan.rng_seed = 89;
  plan.privcount_noise_enabled = false;  // exact counters for shape checks
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.instruments = {"stream_taxonomy"};
  plan.schedule_rounds = 7;
  plan.round_duration_s = k_seconds_per_day;
  plan.dc_grace_ms = 1200;
  plan.round_deadline_ms = 30'000;
  plan.durable_dir = workdir.path() + "/durable";
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  // The last DC (plan DC index 2, node id 4) crashes at round 2's
  // collection start and stays down for 6 s — past the TS's ~4.5 s retry
  // budget (2 fail-fast graces + drains + the final exclusion grace), so
  // the TS excludes it before the supervisor brings it back.
  const net::node_id victim = plan.ids_with(node_role::privcount_dc).back();
  distributed_round_result result;
  {
    fault_env fault{std::to_string(victim) + " crash_in_round 1"};
    restart_delay_env delay{6000};
    result = run_distributed_round(plan, bin, workdir.path(), 180'000);
  }
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }
  EXPECT_GE(restarts_of(result, victim), 1);

  const std::vector<std::map<std::string, std::int64_t>> rounds =
      parse_privcount_rounds(result.tally);
  ASSERT_EQ(rounds.size(), 7u);
  const std::vector<std::uint64_t> full = expected_streams_per_round(
      per_dc, 7, [](std::size_t, std::size_t) { return true; });
  const std::vector<std::uint64_t> degraded = expected_streams_per_round(
      per_dc, 7, [](std::size_t dc, std::size_t) { return dc != 2; });
  std::size_t degraded_rounds = 0;
  for (std::size_t r = 0; r < 7; ++r) {
    const auto total = rounds[r].at("streams/total");
    EXPECT_TRUE(total == static_cast<std::int64_t>(full[r]) ||
                total == static_cast<std::int64_t>(degraded[r]))
        << "round " << r << " total " << total;
    if (total == static_cast<std::int64_t>(degraded[r])) ++degraded_rounds;
  }
  // Round 1 precedes the crash; round 2 is completed without the victim;
  // by the last round the victim has long rejoined.
  EXPECT_EQ(rounds[0].at("streams/total"), static_cast<std::int64_t>(full[0]));
  EXPECT_EQ(rounds[1].at("streams/total"),
            static_cast<std::int64_t>(degraded[1]));
  EXPECT_EQ(rounds[6].at("streams/total"), static_cast<std::int64_t>(full[6]));
  EXPECT_GE(degraded_rounds, 1u);

  // The summary sidecar records the victim's exclusion and rejoin.
  const std::string dc_line_prefix = "dc " + std::to_string(victim);
  const std::size_t at = result.summary.find(dc_line_prefix);
  ASSERT_NE(at, std::string::npos) << result.summary;
  const std::string dc_line =
      result.summary.substr(at, result.summary.find('\n', at) - at);
  EXPECT_NE(dc_line.find("excluded 1"), std::string::npos) << dc_line;
  EXPECT_NE(dc_line.find("rejoined 1"), std::string::npos) << dc_line;
  EXPECT_NE(result.summary.find("round_retries"), std::string::npos);
}

/// Inter-round gap events were always counted by the cursor but never
/// surfaced: with a short duty cycle (the zipf trace packs each day's
/// events into its first 40 seconds, so a 20-second window catches exactly
/// half) every DC must report exactly its outside-window event count as
/// `dc_stats <id> window_dropped N` in the summary sidecar — and the tally
/// still byte-matches the reference over the same windows.
TEST(MultiRoundFaultTest, GapEventsSurfaceAsWindowDroppedInSummary) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 2;
  gen.events = 240;
  gen.days = 3;
  gen.seed = 91;
  workdir_guard workdir;
  workload::write_trace_dir(gen, workdir.path());
  const std::vector<std::vector<tor::event>> per_dc =
      workload::generate_trace_events(gen);

  deployment_plan plan = make_privcount_plan(
      2, 1, core::default_specs_for("stream_taxonomy"));
  plan.rng_seed = 97;
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.instruments = {"stream_taxonomy"};
  plan.schedule_rounds = 3;
  plan.round_duration_s = 20;  // catches offsets [0, 20) of each day
  plan.round_gap_s = k_seconds_per_day - 20;
  plan.round_deadline_ms = 30'000;
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir.path(), 90'000);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }
  EXPECT_EQ(result.tally, run_reference_round(plan));

  // Expected drop count per DC: everything outside the three collection
  // windows [d, d + 20 s) — the inter-round gaps plus the post-schedule
  // drain.
  const std::vector<net::node_id> dc_ids =
      plan.ids_with(node_role::privcount_dc);
  ASSERT_EQ(dc_ids.size(), per_dc.size());
  for (std::size_t k = 0; k < per_dc.size(); ++k) {
    std::int64_t outside = 0;
    for (const tor::event& ev : per_dc[k]) {
      const std::int64_t day = ev.at.seconds / k_seconds_per_day;
      const bool in_window =
          day < 3 && ev.at.seconds - day * k_seconds_per_day < 20;
      if (!in_window) ++outside;
    }
    EXPECT_GT(outside, 0) << "degenerate trace: no gap events for DC " << k;
    EXPECT_EQ(summary_stat(result.summary, dc_ids[k], "window_dropped"),
              outside)
        << result.summary;
    EXPECT_EQ(summary_stat(result.summary, dc_ids[k], "stream_failed"), 0);
  }
}

/// Crash markers are scoped per (node, action, round): one node scheduled
/// to crash in TWO different rounds fires both injections — the second
/// round's marker is distinct, so the respawned incarnation crashes again
/// — and the doubly-recovered run is still byte-identical.
TEST(DurableRoundTest, SameNodeCrashingInTwoRoundsRecoversTwice) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 2;
  gen.events = 240;
  gen.days = 3;
  gen.seed = 101;
  workdir_guard workdir;
  workload::write_trace_dir(gen, workdir.path());

  deployment_plan plan = make_psc_plan(2, 2, 512);
  plan.round.group = crypto::group_backend::toy;
  plan.rng_seed = 103;
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.psc_extractor = "primary_sld";
  plan.schedule_rounds = 3;
  plan.round_duration_s = k_seconds_per_day;
  plan.dc_grace_ms = 1500;
  plan.round_deadline_ms = 30'000;
  plan.durable_dir = workdir.path() + "/durable";
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  // Node layout: TS=0, CPs 1-2, DCs 3-4. DC 3 crashes at round 1's AND
  // round 3's collection start (accumulated clauses for one node).
  const net::node_id victim = plan.ids_with(node_role::psc_dc).front();
  const std::string spec = std::to_string(victim) + " crash_in_round 0;" +
                           std::to_string(victim) + " crash_in_round 2";
  fault_env fault{spec};
  const distributed_round_result result =
      run_distributed_round(plan, bin, workdir.path(), 150'000);
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.exit_code, 0) << "node " << n.id << " failed";
  }
  EXPECT_GE(restarts_of(result, victim), 2);
  EXPECT_EQ(result.tally, run_reference_round(plan));
}

/// The supervisor's restart budget is a plan key, not a constant: with
/// max_restarts 0 a crashed durable node is never respawned and the round
/// fails outright instead of recovering.
TEST(DurableRoundTest, MaxRestartsZeroTurnsACrashIntoARoundFailure) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  workload::trace_gen_params gen;
  gen.model = "zipf";
  gen.dcs = 2;
  gen.events = 160;
  gen.days = 2;
  gen.seed = 107;
  workdir_guard workdir;
  workload::write_trace_dir(gen, workdir.path());

  deployment_plan plan = make_privcount_plan(
      2, 1, core::default_specs_for("stream_taxonomy"));
  plan.rng_seed = 109;
  plan.workload.kind = workload_kind::trace;
  plan.workload.trace_dir = workdir.path();
  plan.instruments = {"stream_taxonomy"};
  plan.schedule_rounds = 2;
  plan.round_duration_s = k_seconds_per_day;
  plan.round_deadline_ms = 30'000;
  plan.durable_dir = workdir.path() + "/durable";
  plan.max_restarts = 0;
  plan.tally_path = workdir.path() + "/tally.out";
  assign_free_ports(plan);

  const net::node_id victim = plan.ids_with(node_role::privcount_dc).front();
  fault_env fault{std::to_string(victim) + " crash_in_round 1"};
  EXPECT_THROW(run_distributed_round(plan, bin, workdir.path(), 90'000),
               net::transport_error);
}

}  // namespace
}  // namespace tormet::cli
