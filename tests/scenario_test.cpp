// Scenario acceptance harness: the repo's first *statistical* end-to-end
// layer. Each named time-varying scenario (workload::scenario) runs through
// the multi-round pipeline and the measured statistics must track the
// machine-readable ground truth the generator emits:
//
//   PrivCount noisy     — |value - truth| <= 6 sigma, with the published
//                         sigma equal to the independently re-derived
//                         dp::allocate_budget allocation (the analytically
//                         known noise bound; per-check alpha ~ 2e-9);
//   PrivCount noiseless — exact equality to ground truth;
//   PSC                 — the observed raw_count must not land in either
//                         1e-6 tail of the exact-DP distribution
//                         R(n_true) = Occupancy(n, b) + Binomial(T, 1/2)
//                         (stats::psc_cdf, the paper's §3.3 machinery);
//   PSC noiseless       — additionally raw_count <= n_true exactly
//                         (occupancy can only undercount).
//
// All checks run per scenario x per seed x per round, against deterministic
// seeds, so a pass is stable, and one distributed multi-process run per
// scenario pins byte-identity to the in-process reference (the full
// 5 x 3-seed x 2-protocol distributed matrix lives in
// tests/scenario_e2e_slow_test.cpp behind the [slow] label).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/cli/deployment_plan.h"
#include "src/cli/node_runner.h"
#include "src/cli/orchestrator.h"
#include "src/cli/workload_source.h"
#include "src/dp/allocation.h"
#include "src/stats/psc_ci.h"
#include "src/workload/scenario.h"

namespace tormet::cli {
namespace {

[[nodiscard]] std::string node_binary() {
  if (const char* env = std::getenv("TORMET_NODE_BIN")) return env;
  return sibling_node_binary();
}

class workdir_guard {
 public:
  workdir_guard() : path_{make_round_workdir()} {}
  ~workdir_guard() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

constexpr std::uint64_t k_seeds[] = {3, 11, 29};

// -- tally parsing -----------------------------------------------------------

struct psc_round_tally {
  std::uint64_t raw_count = 0;
  std::uint64_t bins = 0;
  std::uint64_t noise_bits = 0;
};

[[nodiscard]] std::vector<psc_round_tally> parse_psc_rounds(
    const std::string& tally) {
  std::vector<psc_round_tally> rounds;
  std::istringstream in{tally};
  std::string line;
  while (std::getline(in, line)) {
    if (line == "protocol psc") {
      rounds.emplace_back();
      continue;
    }
    if (rounds.empty()) continue;
    std::istringstream ls{line};
    std::string key;
    ls >> key;
    if (key == "raw_count") ls >> rounds.back().raw_count;
    if (key == "bins") ls >> rounds.back().bins;
    if (key == "noise_bits") ls >> rounds.back().noise_bits;
  }
  return rounds;
}

struct counter_entry {
  std::int64_t value = 0;
  double sigma = 0.0;
};

[[nodiscard]] std::vector<std::map<std::string, counter_entry>>
parse_privcount_rounds(const std::string& tally) {
  std::vector<std::map<std::string, counter_entry>> rounds;
  std::istringstream in{tally};
  std::string line;
  while (std::getline(in, line)) {
    if (line == "protocol privcount") {
      rounds.emplace_back();
      continue;
    }
    if (line.rfind("counter ", 0) != 0 || rounds.empty()) continue;
    std::istringstream ls{line};
    std::string key, name;
    counter_entry e;
    ls >> key >> name >> e.value >> e.sigma;
    rounds.back()[name] = e;
  }
  return rounds;
}

// -- plan + truth construction -----------------------------------------------

/// A small 2-day scenario deployment: 3 DCs, daily rounds, deterministic
/// seeds — large enough that every scenario's dynamics register (hundreds
/// of distinct clients, thousands of events) and small enough that the
/// whole matrix stays in the fast suite.
void set_scenario_workload(deployment_plan& plan, const std::string& name,
                           std::uint64_t seed) {
  plan.workload.kind = workload_kind::scenario;
  plan.workload.model = name;
  plan.workload.scale = 0.25;  // 64 resident clients
  plan.workload.events = 400;  // baseline actions/day
  plan.workload.gen_seed = seed;
  plan.workload.gen_days = 2;
  plan.schedule_rounds = 2;
  plan.round_duration_s = k_seconds_per_day;
  plan.round_gap_s = 0;
  plan.rng_seed = seed * 1'000 + 17;
}

[[nodiscard]] deployment_plan privcount_scenario_plan(const std::string& name,
                                                      std::uint64_t seed,
                                                      bool noise) {
  const trace_round_defaults defaults = defaults_for_scenario(name);
  deployment_plan plan = make_privcount_plan(3, 2, defaults.counters);
  plan.instruments = defaults.instruments;
  plan.psc_extractor = defaults.psc_extractor;
  plan.privcount_noise_enabled = noise;
  set_scenario_workload(plan, name, seed);
  return plan;
}

[[nodiscard]] deployment_plan psc_scenario_plan(const std::string& name,
                                                std::uint64_t seed,
                                                bool noise) {
  const trace_round_defaults defaults = defaults_for_scenario(name);
  deployment_plan plan = make_psc_plan(3, 2, 2'048);
  plan.round.group = crypto::group_backend::toy;
  plan.round.noise_enabled = noise;
  plan.psc_extractor = defaults.psc_extractor;
  set_scenario_workload(plan, name, seed);
  return plan;
}

/// The sidecar ground truth for a scenario plan, computed independently of
/// the pipeline under test.
[[nodiscard]] workload::scenario_truth truth_of(const deployment_plan& plan) {
  const workload::scenario_params params = scenario_params_of(plan);
  return workload::compute_scenario_truth(
      params, workload::generate_scenario_events(params), plan.instruments,
      {plan.psc_extractor}, plan.schedule_rounds, plan.round_duration_s,
      plan.round_gap_s);
}

[[nodiscard]] std::uint64_t truth_counter(
    const workload::scenario_round_truth& rt, const std::string& name) {
  for (const auto& [n, v] : rt.counters) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "ground truth has no counter " << name;
  return 0;
}

// -- acceptance checks -------------------------------------------------------

void check_privcount_tracks_truth(const deployment_plan& plan,
                                  const std::string& tally,
                                  const std::string& label) {
  const workload::scenario_truth truth = truth_of(plan);
  const std::vector<std::map<std::string, counter_entry>> rounds =
      parse_privcount_rounds(tally);
  ASSERT_EQ(rounds.size(), truth.rounds.size()) << label;

  // Re-derive the noise bound independently: the published sigma must be
  // exactly the equal-relative-noise allocation of the plan's budget.
  std::vector<dp::counter_request> requests;
  for (const auto& c : plan.counters) {
    requests.push_back({c.name, c.sensitivity, c.expected_value});
  }
  const std::vector<dp::counter_allocation> alloc =
      dp::allocate_budget(plan.privacy, requests);

  for (std::size_t r = 0; r < rounds.size(); ++r) {
    for (std::size_t i = 0; i < plan.counters.size(); ++i) {
      const std::string& name = plan.counters[i].name;
      const auto it = rounds[r].find(name);
      ASSERT_NE(it, rounds[r].end()) << label << ": round " << r
                                     << " tally has no counter " << name;
      const auto tv =
          static_cast<std::int64_t>(truth_counter(truth.rounds[r], name));
      if (!plan.privcount_noise_enabled) {
        EXPECT_EQ(it->second.value, tv)
            << label << ": noiseless round " << r << " counter " << name;
        EXPECT_EQ(it->second.sigma, 0.0) << label;
        continue;
      }
      EXPECT_DOUBLE_EQ(it->second.sigma, alloc[i].sigma)
          << label << ": published sigma diverges from the re-derived "
          << "allocation for " << name;
      const double band = 6.0 * alloc[i].sigma;  // per-check alpha ~ 2e-9
      EXPECT_LE(std::abs(static_cast<double>(it->second.value - tv)), band)
          << label << ": round " << r << " counter " << name << " = "
          << it->second.value << " strays past 6 sigma from truth " << tv;
    }
  }
}

void check_psc_tracks_truth(const deployment_plan& plan,
                            const std::string& tally,
                            const std::string& label) {
  const workload::scenario_truth truth = truth_of(plan);
  const std::vector<psc_round_tally> rounds = parse_psc_rounds(tally);
  ASSERT_EQ(rounds.size(), truth.rounds.size()) << label;
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    ASSERT_EQ(truth.rounds[r].distinct.size(), 1u);
    const std::uint64_t n_true = truth.rounds[r].distinct[0].second;
    const psc_round_tally& t = rounds[r];
    EXPECT_EQ(t.bins, plan.round.bins) << label;
    const stats::psc_ci_params p{t.bins, t.noise_bits};
    // Two-sided exact-DP test: under the true cardinality, the observed
    // raw count must not land in either extreme tail.
    constexpr double alpha = 1e-6;
    EXPECT_GE(stats::psc_cdf(t.raw_count, n_true, p), alpha)
        << label << ": round " << r << " raw_count " << t.raw_count
        << " implausibly low for true distinct count " << n_true;
    if (t.raw_count > 0) {
      EXPECT_GE(1.0 - stats::psc_cdf(t.raw_count - 1, n_true, p), alpha)
          << label << ": round " << r << " raw_count " << t.raw_count
          << " implausibly high for true distinct count " << n_true;
    }
    if (!plan.round.noise_enabled) {
      EXPECT_EQ(t.noise_bits, 0u) << label;
      // Bin occupancy can only undercount the true distinct total.
      EXPECT_LE(t.raw_count, n_true) << label << ": round " << r;
    }
  }
}

// -- the in-process acceptance matrix ----------------------------------------

TEST(ScenarioAcceptanceTest, PrivcountNoisedTracksGroundTruth) {
  for (const auto& name : workload::scenario_names()) {
    for (const std::uint64_t seed : k_seeds) {
      const deployment_plan plan = privcount_scenario_plan(name, seed, true);
      const std::string label = name + "/seed" + std::to_string(seed);
      check_privcount_tracks_truth(plan, run_reference_round(plan), label);
    }
  }
}

TEST(ScenarioAcceptanceTest, PrivcountNoiselessMatchesGroundTruthExactly) {
  for (const auto& name : workload::scenario_names()) {
    const deployment_plan plan = privcount_scenario_plan(name, 7, false);
    check_privcount_tracks_truth(plan, run_reference_round(plan), name);
  }
}

TEST(ScenarioAcceptanceTest, PscNoisedStaysInsideExactDpBand) {
  for (const auto& name : workload::scenario_names()) {
    for (const std::uint64_t seed : k_seeds) {
      const deployment_plan plan = psc_scenario_plan(name, seed, true);
      const std::string label = name + "/seed" + std::to_string(seed);
      check_psc_tracks_truth(plan, run_reference_round(plan), label);
    }
  }
}

TEST(ScenarioAcceptanceTest, PscNoiselessStaysWithinOccupancyBound) {
  for (const auto& name : workload::scenario_names()) {
    const deployment_plan plan = psc_scenario_plan(name, 7, false);
    check_psc_tracks_truth(plan, run_reference_round(plan), name);
  }
}

// Scenario dynamics must actually register in the measurements — a flat
// generator would pass the band checks trivially.
TEST(ScenarioAcceptanceTest, SurgeScenariosMoveRoundTotals) {
  for (const std::string name : {"botnet_surge", "flash_crowd"}) {
    const deployment_plan plan = privcount_scenario_plan(name, 7, false);
    const workload::scenario_truth truth = truth_of(plan);
    ASSERT_EQ(truth.rounds.size(), 2u);
    const std::uint64_t base =
        truth_counter(truth.rounds[0], "entry/connections");
    const std::uint64_t surged =
        truth_counter(truth.rounds[1], "entry/connections");
    EXPECT_GT(surged, base + base / 2)
        << name << ": surge day did not lift entry connections";
  }
  // country_block: the censored population vanishes after day 0, so day 1
  // has fewer distinct clients even with the late migration inflow.
  const deployment_plan plan = psc_scenario_plan("country_block", 7, false);
  const workload::scenario_truth truth = truth_of(plan);
  ASSERT_EQ(truth.rounds.size(), 2u);
  EXPECT_LT(truth.rounds[1].distinct[0].second,
            truth.rounds[0].distinct[0].second);
}

// DC-side ingest parallelism is an execution detail: the tally bytes must
// not depend on how a DC shards or threads its event plane.
TEST(ScenarioAcceptanceTest, TallyInvariantUnderShardingAndIngestThreads) {
  for (const auto& name : workload::scenario_names()) {
    deployment_plan plan = privcount_scenario_plan(name, 11, true);
    const std::string baseline = run_reference_round(plan);
    for (const auto& [shards, threads] :
         std::vector<std::pair<std::size_t, std::size_t>>{{4, 0}, {4, 2}}) {
      plan.dc_shards = shards;
      plan.dc_ingest_threads = threads;
      EXPECT_EQ(run_reference_round(plan), baseline)
          << name << ": tally changed under dc_shards=" << shards
          << " dc_ingest_threads=" << threads;
    }
  }
}

// -- sidecar + plan format ---------------------------------------------------

TEST(ScenarioGroundTruthTest, SidecarRoundTripsAndMatchesDirectComputation) {
  workload::scenario_params params;
  params.name = "country_block";
  params.dcs = 3;
  params.scale = 0.25;
  params.events = 300;
  params.seed = 5;
  params.days = 2;

  workdir_guard dir;
  const std::vector<std::size_t> counts =
      workload::write_scenario_dir(params, dir.path());
  ASSERT_EQ(counts.size(), 3u);
  const workload::scenario_truth loaded =
      workload::load_ground_truth(dir.path() + "/ground_truth.cfg");
  EXPECT_EQ(loaded.scenario, "country_block");
  EXPECT_EQ(loaded.seed, 5u);
  ASSERT_EQ(loaded.rounds.size(), 2u);

  const workload::scenario_measurements m =
      workload::measurements_for_scenario(params.name);
  const workload::scenario_truth direct = workload::compute_scenario_truth(
      params, workload::generate_scenario_events(params), m.instruments,
      {m.psc_extractor}, 2, k_seconds_per_day, 0);
  EXPECT_EQ(serialize_ground_truth(loaded), serialize_ground_truth(direct));

  // serialize -> parse is lossless.
  const workload::scenario_truth reparsed =
      workload::parse_ground_truth(serialize_ground_truth(loaded));
  EXPECT_EQ(serialize_ground_truth(reparsed), serialize_ground_truth(loaded));
}

TEST(ScenarioPlanTest, ScenarioWorkloadRoundTripsThroughPlanText) {
  deployment_plan plan = privcount_scenario_plan("flash_crowd", 9, true);
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    plan.nodes[i].port = static_cast<std::uint16_t>(9'400 + i);
  }
  const std::string text = serialize_plan(plan);
  EXPECT_NE(text.find("workload scenario flash_crowd,"), std::string::npos);
  const deployment_plan reparsed = parse_plan(text);
  EXPECT_EQ(serialize_plan(reparsed), text);
  EXPECT_EQ(reparsed.workload.kind, workload_kind::scenario);
  EXPECT_EQ(reparsed.workload.model, "flash_crowd");
  EXPECT_EQ(reparsed.workload.gen_days, 2u);

  // days == 1 stays an omitted trailing field, like generate's.
  plan.workload.gen_days = 1;
  plan.schedule_rounds = 1;
  const deployment_plan single = parse_plan(serialize_plan(plan));
  EXPECT_EQ(single.workload.gen_days, 1u);
}

// -- one distributed multi-process run per scenario --------------------------

TEST(ScenarioDistributedTest, EveryScenarioRunsDistributedByteIdentical) {
  const std::string bin = node_binary();
  if (bin.empty()) GTEST_SKIP() << "tormet_node binary not found";

  for (const auto& name : workload::scenario_names()) {
    deployment_plan plan = privcount_scenario_plan(name, 3, true);
    workdir_guard workdir;
    plan.tally_path = workdir.path() + "/tally.out";
    assign_free_ports(plan);

    const distributed_round_result result =
        run_distributed_round(plan, bin, workdir.path(), 60'000);
    for (const auto& n : result.nodes) {
      EXPECT_EQ(n.exit_code, 0) << name << ": node " << n.id << " failed";
    }
    EXPECT_EQ(result.tally, run_reference_round(plan)) << name;
    check_privcount_tracks_truth(plan, result.tally, name + "/distributed");
  }
}

}  // namespace
}  // namespace tormet::cli
