// Event codec + trace stream tests: exact round-trips for every event
// variant, incremental decoding across arbitrary chunk boundaries, file
// round-trips, and — the property the format exists for — rejection of
// truncated or corrupt input with wire_error instead of crashes or
// out-of-bounds reads (including a randomized corruption fuzz pass).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>

#include "src/tor/event_codec.h"
#include "src/tor/trace_file.h"
#include "src/tor/trace_socket.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace tormet::tor {
namespace {

[[nodiscard]] std::vector<event> sample_events() {
  std::vector<event> events;
  events.push_back({7, sim_time{0}, entry_connection_event{0xc0a80101}});
  events.push_back(
      {7, sim_time{1}, entry_circuit_event{42, circuit_kind::directory}});
  events.push_back({9, sim_time{1}, entry_data_event{42, 123'456'789}});
  events.push_back({9, sim_time{2},
                    exit_stream_event{address_kind::hostname, true, 443,
                                      "www.example.co.uk"}});
  events.push_back(
      {9, sim_time{2}, exit_stream_event{address_kind::ipv4, false, 80,
                                         "192.0.2.7"}});
  events.push_back({11, sim_time{3}, exit_data_event{1 << 20}});
  events.push_back(
      {13, sim_time{4}, hsdir_publish_event{onion_address{"abcdef.onion"}}});
  events.push_back({13, sim_time{5},
                    hsdir_fetch_event{onion_address{"ghijkl.onion"},
                                      fetch_outcome::not_found}});
  events.push_back({13, sim_time{5},
                    hsdir_fetch_event{onion_address{""},
                                      fetch_outcome::malformed}});
  events.push_back({15, sim_time{6},
                    rend_circuit_event{rend_outcome::failed_expired, 0}});
  events.push_back(
      {15, sim_time{9}, rend_circuit_event{rend_outcome::succeeded, 1477}});
  return events;
}

void expect_equal(const event& a, const event& b) {
  EXPECT_EQ(a.observer, b.observer);
  EXPECT_EQ(a.at.seconds, b.at.seconds);
  ASSERT_EQ(a.body.index(), b.body.index());
  std::visit(
      [&b]<typename T>(const T& lhs) {
        const T& rhs = std::get<T>(b.body);
        if constexpr (std::is_same_v<T, entry_connection_event>) {
          EXPECT_EQ(lhs.client_ip, rhs.client_ip);
        } else if constexpr (std::is_same_v<T, entry_circuit_event>) {
          EXPECT_EQ(lhs.client_ip, rhs.client_ip);
          EXPECT_EQ(lhs.kind, rhs.kind);
        } else if constexpr (std::is_same_v<T, entry_data_event>) {
          EXPECT_EQ(lhs.client_ip, rhs.client_ip);
          EXPECT_EQ(lhs.bytes, rhs.bytes);
        } else if constexpr (std::is_same_v<T, exit_stream_event>) {
          EXPECT_EQ(lhs.kind, rhs.kind);
          EXPECT_EQ(lhs.is_initial, rhs.is_initial);
          EXPECT_EQ(lhs.port, rhs.port);
          EXPECT_EQ(lhs.target, rhs.target);
        } else if constexpr (std::is_same_v<T, exit_data_event>) {
          EXPECT_EQ(lhs.bytes, rhs.bytes);
        } else if constexpr (std::is_same_v<T, hsdir_publish_event>) {
          EXPECT_EQ(lhs.address.value, rhs.address.value);
        } else if constexpr (std::is_same_v<T, hsdir_fetch_event>) {
          EXPECT_EQ(lhs.address.value, rhs.address.value);
          EXPECT_EQ(lhs.outcome, rhs.outcome);
        } else if constexpr (std::is_same_v<T, rend_circuit_event>) {
          EXPECT_EQ(lhs.outcome, rhs.outcome);
          EXPECT_EQ(lhs.payload_cells, rhs.payload_cells);
        }
      },
      a.body);
}

[[nodiscard]] byte_buffer encode_stream(const std::vector<event>& events) {
  byte_buffer buf;
  append_trace_header(buf);
  for (const event& ev : events) append_event_record(buf, ev);
  return buf;
}

class temp_dir {
 public:
  temp_dir() {
    char tmpl[] = "/tmp/tormet-codec-XXXXXX";
    path_ = mkdtemp(tmpl);
  }
  ~temp_dir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

TEST(EventCodecTest, EveryVariantRoundTrips) {
  for (const event& ev : sample_events()) {
    net::wire_writer out;
    encode_event(out, ev);
    net::wire_reader in{out.data()};
    expect_equal(decode_event(in), ev);
  }
}

TEST(EventCodecTest, DecoderHandlesArbitraryChunkBoundaries) {
  const std::vector<event> events = sample_events();
  const byte_buffer stream = encode_stream(events);
  // Feed in every chunk size from 1 byte (worst case: records split across
  // header, length prefix, and payload) to the whole stream.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{17}, stream.size()}) {
    event_decoder decoder;
    std::vector<event> decoded;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const std::size_t n = std::min(chunk, stream.size() - off);
      decoder.feed(byte_view{stream.data() + off, n});
      while (const std::optional<event> ev = decoder.next()) {
        decoded.push_back(*ev);
      }
    }
    ASSERT_EQ(decoded.size(), events.size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < events.size(); ++i) {
      expect_equal(decoded[i], events[i]);
    }
    EXPECT_TRUE(decoder.at_record_boundary());
  }
}

TEST(EventCodecTest, RejectsBadMagicAndVersion) {
  byte_buffer stream = encode_stream(sample_events());
  {
    byte_buffer bad = stream;
    bad[0] ^= 0xff;
    event_decoder decoder;
    decoder.feed(bad);
    EXPECT_THROW((void)decoder.next(), net::wire_error);
  }
  {
    byte_buffer bad = stream;
    bad[k_trace_header_bytes - 1] = k_trace_version + 1;
    event_decoder decoder;
    decoder.feed(bad);
    EXPECT_THROW((void)decoder.next(), net::wire_error);
  }
}

TEST(EventCodecTest, RejectsOutOfRangeEnumsAndTags) {
  event ev{3, sim_time{1}, entry_circuit_event{1, circuit_kind::general}};
  net::wire_writer out;
  encode_event(out, ev);
  byte_buffer payload = out.data();

  // Byte layout: varint observer (1) + i64 time (8) + tag (1) + ip (4) +
  // kind (1). Corrupt the tag and the trailing enum.
  {
    byte_buffer bad = payload;
    bad[9] = 200;  // body tag
    net::wire_reader in{bad};
    EXPECT_THROW((void)decode_event(in), net::wire_error);
  }
  {
    byte_buffer bad = payload;
    bad.back() = 99;  // circuit kind
    net::wire_reader in{bad};
    EXPECT_THROW((void)decode_event(in), net::wire_error);
  }
  {
    byte_buffer bad = payload;
    bad.push_back(0);  // trailing garbage
    net::wire_reader in{bad};
    EXPECT_THROW((void)decode_event(in), net::wire_error);
  }
}

TEST(EventCodecTest, RejectsOversizedRecordLengthWithoutBuffering) {
  byte_buffer stream;
  append_trace_header(stream);
  // Record claiming ~1 GiB: must throw as soon as the prefix is complete,
  // not wait for a gigabyte of input.
  net::wire_writer prefix;
  prefix.write_varint(1ull << 30);
  stream.insert(stream.end(), prefix.data().begin(), prefix.data().end());
  event_decoder decoder;
  decoder.feed(stream);
  EXPECT_THROW((void)decoder.next(), net::wire_error);
}

TEST(EventCodecTest, CorruptionFuzzNeverCrashes) {
  const byte_buffer stream = encode_stream(sample_events());
  rng r{2024};
  for (int round = 0; round < 500; ++round) {
    byte_buffer fuzzed = stream;
    const std::size_t flips = 1 + r.below(8);
    for (std::size_t i = 0; i < flips; ++i) {
      fuzzed[r.below(fuzzed.size())] ^= static_cast<std::uint8_t>(1 + r.below(255));
    }
    if (r.bernoulli(0.3)) fuzzed.resize(r.below(fuzzed.size()) + 1);
    event_decoder decoder;
    decoder.feed(fuzzed);
    try {
      while (decoder.next().has_value()) {
      }
      // Either a clean partial decode (remaining bytes form an incomplete
      // record) or full decode — both acceptable; no crash, no hang.
    } catch (const net::wire_error&) {
      // Rejected — the expected outcome for most corruptions.
    }
  }
}

TEST(TraceFileTest, WritesAndReadsBack) {
  const temp_dir dir;
  const std::vector<event> events = sample_events();
  {
    trace_writer writer{dir.file("t.trace")};
    for (const event& ev : events) writer.write(ev);
    writer.close();
    EXPECT_EQ(writer.events_written(), events.size());
  }
  trace_reader reader{dir.file("t.trace")};
  std::vector<event> decoded;
  while (const std::optional<event> ev = reader.next()) decoded.push_back(*ev);
  ASSERT_EQ(decoded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    expect_equal(decoded[i], events[i]);
  }
}

TEST(TraceFileTest, WriterEnforcesTimeOrder) {
  const temp_dir dir;
  trace_writer writer{dir.file("t.trace")};
  writer.write({1, sim_time{10}, exit_data_event{1}});
  EXPECT_THROW(writer.write({1, sim_time{9}, exit_data_event{1}}),
               precondition_error);
}

TEST(TraceFileTest, ReaderRejectsTruncatedFile) {
  const temp_dir dir;
  {
    trace_writer writer{dir.file("t.trace")};
    for (const event& ev : sample_events()) writer.write(ev);
    writer.close();
  }
  const auto full_size = std::filesystem::file_size(dir.file("t.trace"));
  std::filesystem::resize_file(dir.file("t.trace"), full_size - 3);
  trace_reader reader{dir.file("t.trace")};
  EXPECT_THROW(
      [&] {
        while (reader.next().has_value()) {
        }
      }(),
      net::wire_error);
}

TEST(TraceFileTest, ReaderRejectsTimestampRegression) {
  const temp_dir dir;
  // Build a stream with a regression by hand (the writer refuses to).
  byte_buffer stream;
  append_trace_header(stream);
  append_event_record(stream, {1, sim_time{5}, exit_data_event{1}});
  append_event_record(stream, {1, sim_time{4}, exit_data_event{1}});
  {
    std::FILE* f = std::fopen(dir.file("t.trace").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(stream.data(), 1, stream.size(), f), stream.size());
    std::fclose(f);
  }
  trace_reader reader{dir.file("t.trace")};
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_THROW((void)reader.next(), net::wire_error);
}

TEST(TraceFileTest, ReplayPacesAgainstSimTime) {
  const temp_dir dir;
  {
    trace_writer writer{dir.file("t.trace")};
    writer.write({1, sim_time{100}, exit_data_event{1}});
    writer.write({1, sim_time{101}, exit_data_event{2}});
    writer.write({1, sim_time{102}, exit_data_event{3}});
    writer.close();
  }
  trace_reader reader{dir.file("t.trace")};
  const auto start = std::chrono::steady_clock::now();
  std::size_t n = 0;
  // 2 simulated seconds after the first event at 0.01 wall s/sim s >= 20 ms.
  // Pacing is relative to the first event, so the t=100 start does not stall.
  replay_events(reader, [&n](const event&) { ++n; },
                replay_options{.pace = 0.01});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(n, 3u);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            20);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            5'000);
}

TEST(TraceSocketTest, StreamsEventsOverTcp) {
  const std::vector<event> events = sample_events();
  // Receiver listens on an OS-assigned-free-ish port; retry a few ports to
  // dodge collisions on busy CI machines.
  std::unique_ptr<event_socket_source> source;
  std::uint16_t port = 0;
  for (std::uint16_t candidate = 19'473; candidate < 19'573; ++candidate) {
    try {
      source = std::make_unique<event_socket_source>(candidate);
      port = candidate;
      break;
    } catch (const precondition_error&) {
    }
  }
  ASSERT_NE(source, nullptr);

  std::thread feeder{[&events, port] {
    stream_events_to_socket("127.0.0.1", port, events);
  }};
  std::vector<event> received;
  while (const std::optional<event> ev = source->next()) {
    received.push_back(*ev);
  }
  feeder.join();
  ASSERT_EQ(received.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    expect_equal(received[i], events[i]);
  }
}

}  // namespace
}  // namespace tormet::tor
