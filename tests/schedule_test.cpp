// Tests for the §3.1 measurement-scheduling discipline and the consensus
// document codec.
#include <gtest/gtest.h>

#include "src/core/schedule.h"
#include "src/tor/consensus_doc.h"
#include "src/util/check.h"

namespace tormet {
namespace {

using core::measurement_schedule;
using core::planned_round;

TEST(ScheduleTest, AcceptsWellSpacedPlan) {
  measurement_schedule s;
  s.add({"streams", sim_time{0}});
  // Distinct statistic: >= 24 h after the first round *ends*.
  s.add({"domains", sim_time{2 * k_seconds_per_day}});
  s.add({"clients", sim_time{4 * k_seconds_per_day}});
  EXPECT_EQ(s.rounds().size(), 3u);
}

TEST(ScheduleTest, RejectsParallelRounds) {
  measurement_schedule s;
  s.add({"streams", sim_time{0}});
  EXPECT_THROW(s.add({"domains", sim_time{k_seconds_per_day / 2}}),
               precondition_error);
  // Even identical statistics may not overlap.
  EXPECT_THROW(s.add({"streams", sim_time{k_seconds_per_day - 1}}),
               precondition_error);
}

TEST(ScheduleTest, RejectsInsufficientGapBetweenDistinctStatistics) {
  measurement_schedule s;
  s.add({"streams", sim_time{0}});  // ends at 24 h
  // Starting 12 h after the previous round ends: too close.
  EXPECT_THROW(
      s.add({"domains", sim_time{k_seconds_per_day + k_seconds_per_day / 2}}),
      precondition_error);
  // Exactly 24 h after it ends: admissible.
  EXPECT_NO_THROW(s.add({"domains", sim_time{2 * k_seconds_per_day}}));
}

TEST(ScheduleTest, RepeatedStatisticMayBeAdjacent) {
  // The paper repeated the descriptor-failure measurement on consecutive
  // days to confirm the anomaly.
  measurement_schedule s;
  s.add({"hsdir-failures", sim_time{0}});
  EXPECT_NO_THROW(s.add({"hsdir-failures", sim_time{k_seconds_per_day}}));
}

TEST(ScheduleTest, ViolationsForReportsAllConflicts) {
  measurement_schedule s;
  s.add({"streams", sim_time{0}});
  s.add({"domains", sim_time{2 * k_seconds_per_day}});
  const auto violations =
      s.violations_for({"clients", sim_time{k_seconds_per_day}});
  EXPECT_EQ(violations.size(), 2u);  // too close to both existing rounds
  EXPECT_TRUE(s.violations_for({"clients", sim_time{4 * k_seconds_per_day}})
                  .empty());
}

TEST(ScheduleTest, InWindow) {
  measurement_schedule s;
  s.add({"streams", sim_time{100}});
  EXPECT_TRUE(s.in_window(0, sim_time{100}));
  EXPECT_TRUE(s.in_window(0, sim_time{100 + k_seconds_per_day - 1}));
  EXPECT_FALSE(s.in_window(0, sim_time{100 + k_seconds_per_day}));
  EXPECT_THROW((void)s.in_window(5, sim_time{0}), precondition_error);
}

TEST(ScheduleTest, EarliestStartSkipsConflicts) {
  measurement_schedule s;
  s.add({"streams", sim_time{0}});
  // Same statistic can start right when the round ends.
  EXPECT_EQ(s.earliest_start("streams", sim_time{0}).seconds,
            k_seconds_per_day);
  // A distinct statistic needs the additional 24 h gap.
  EXPECT_EQ(s.earliest_start("domains", sim_time{0}).seconds,
            2 * k_seconds_per_day);
  // A request after all conflicts is returned unchanged.
  EXPECT_EQ(s.earliest_start("domains", sim_time{10 * k_seconds_per_day}).seconds,
            10 * k_seconds_per_day);
}

TEST(ScheduleTest, EarliestStartIsAdmissible) {
  measurement_schedule s;
  s.add({"a", sim_time{0}});
  s.add({"b", sim_time{2 * k_seconds_per_day}});
  s.add({"a", sim_time{4 * k_seconds_per_day}});
  for (const char* stat : {"a", "b", "c"}) {
    const sim_time start = s.earliest_start(stat, sim_time{0});
    EXPECT_TRUE(s.violations_for({stat, start}).empty()) << stat;
  }
}

TEST(ScheduleTest, RoundOfPartitionsTimeIntoWindowsAndGaps) {
  measurement_schedule s;
  s.add({"streams", sim_time{100}, 200});
  s.add({"streams", sim_time{400}, 100});
  EXPECT_EQ(s.round_of(sim_time{0}), std::nullopt);   // before the plan
  EXPECT_EQ(s.round_of(sim_time{100}), 0u);           // window start inclusive
  EXPECT_EQ(s.round_of(sim_time{299}), 0u);
  EXPECT_EQ(s.round_of(sim_time{300}), std::nullopt); // window end exclusive
  EXPECT_EQ(s.round_of(sim_time{350}), std::nullopt); // inter-round gap
  EXPECT_EQ(s.round_of(sim_time{400}), 1u);
  EXPECT_EQ(s.round_of(sim_time{499}), 1u);
  EXPECT_EQ(s.round_of(sim_time{500}), std::nullopt); // after the plan
}

TEST(ScheduleTest, UniformScheduleMatchesPlanShape) {
  const measurement_schedule s =
      core::make_uniform_schedule("psc/client_ip", 3, k_seconds_per_day, 3600);
  ASSERT_EQ(s.rounds().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(s.rounds()[i].start.seconds,
              static_cast<std::int64_t>(i) * (k_seconds_per_day + 3600));
    EXPECT_EQ(s.rounds()[i].duration_seconds, k_seconds_per_day);
    EXPECT_EQ(s.round_of(s.rounds()[i].start), i);
  }
  EXPECT_THROW((void)core::make_uniform_schedule("x", 0, 60, 0),
               precondition_error);
  EXPECT_THROW((void)core::make_uniform_schedule("x", 2, 0, 0),
               precondition_error);
  EXPECT_THROW((void)core::make_uniform_schedule("x", 2, 60, -1),
               precondition_error);
}

TEST(ConsensusDocTest, RoundTrip) {
  tor::consensus_params params;
  params.num_relays = 200;
  params.seed = 77;
  const tor::consensus original = tor::make_synthetic_consensus(params);
  const std::string text = tor::serialize_consensus(original);
  const tor::consensus parsed = tor::parse_consensus(text);

  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const tor::relay& a = original.relays()[i];
    const tor::relay& b = parsed.relays()[i];
    EXPECT_EQ(a.nickname, b.nickname);
    EXPECT_NEAR(a.weight, b.weight, 1e-5);
    EXPECT_EQ(a.flags.guard, b.flags.guard);
    EXPECT_EQ(a.flags.exit, b.flags.exit);
    EXPECT_EQ(a.flags.hsdir, b.flags.hsdir);
  }
  // Selection probabilities survive the round trip.
  EXPECT_NEAR(parsed.total_weight(tor::position::guard),
              original.total_weight(tor::position::guard), 1e-2);
}

TEST(ConsensusDocTest, RejectsMalformedInput) {
  EXPECT_THROW((void)tor::parse_consensus(""), precondition_error);
  EXPECT_THROW((void)tor::parse_consensus("not-a-consensus\n"),
               precondition_error);
  const std::string bad_keyword = "tormet-consensus 1\nnode 0 r0 1.0 G\n";
  EXPECT_THROW((void)tor::parse_consensus(bad_keyword), precondition_error);
  const std::string bad_flags = "tormet-consensus 1\nrelay 0 r0 1.0 GXZ\n";
  EXPECT_THROW((void)tor::parse_consensus(bad_flags), precondition_error);
  const std::string sparse_ids =
      "tormet-consensus 1\nrelay 0 r0 1.0 G\nrelay 5 r5 1.0 E\n";
  EXPECT_THROW((void)tor::parse_consensus(sparse_ids), precondition_error);
}

TEST(ConsensusDocTest, FlagSubsets) {
  const std::string text =
      "tormet-consensus 1\n"
      "relay 0 alpha 2.500000 GEH\n"
      "relay 1 beta 1.000000 -\n"
      "relay 2 gamma 3.000000 E\n";
  const tor::consensus net = tor::parse_consensus(text);
  EXPECT_TRUE(net.relays()[0].flags.guard);
  EXPECT_TRUE(net.relays()[0].flags.exit);
  EXPECT_TRUE(net.relays()[0].flags.hsdir);
  EXPECT_FALSE(net.relays()[1].flags.guard);
  EXPECT_TRUE(net.relays()[2].flags.exit);
  EXPECT_FALSE(net.relays()[2].flags.hsdir);
}

}  // namespace
}  // namespace tormet
