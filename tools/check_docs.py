#!/usr/bin/env python3
"""Stale-pointer check for the documentation.

Scans README.md, ROADMAP.md, and docs/*.md for (a) relative markdown
links and (b) repository path references (src/..., apps/..., tests/...,
bench/..., docs/..., tools/..., examples/...), expands {a,b} brace
groups, and fails when a referenced file or directory does not exist.
CI runs this as the docs job, so documentation that names a file which
was moved or deleted fails the build instead of rotting.

Usage: python3 tools/check_docs.py  (from anywhere; repo root is derived
from this script's location)
"""

import itertools
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [REPO / "README.md", REPO / "ROADMAP.md"] + list((REPO / "docs").glob("*.md"))
)

# Repo-path tokens: a known top-level directory followed by path
# characters, with at most one {a,b,...} brace group.
PATH_RE = re.compile(
    r"\b(?:src|apps|tests|bench|docs|tools|examples)/"
    r"[\w./-]*(?:\{[\w.,]+\}[\w./-]*)?"
)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BRACE_RE = re.compile(r"\{([\w.,]+)\}")


def expand_braces(token: str) -> list[str]:
    m = BRACE_RE.search(token)
    if not m:
        return [token]
    alternatives = m.group(1).split(",")
    return list(
        itertools.chain.from_iterable(
            expand_braces(token[: m.start()] + alt + token[m.end() :])
            for alt in alternatives
        )
    )


def check_file(doc: Path) -> list[str]:
    errors = []
    text = doc.read_text(encoding="utf-8")

    def missing(path_str: str) -> bool:
        return not (REPO / path_str).exists()

    for match in PATH_RE.finditer(text):
        token = match.group(0).rstrip(".,:;")
        for candidate in expand_braces(token):
            if missing(candidate.rstrip("/")):
                errors.append(f"{doc.relative_to(REPO)}: stale path '{candidate}'")

    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "#", "mailto:")):
            continue
        target = target.split("#")[0]
        if not target:
            continue
        resolved = (doc.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{doc.relative_to(REPO)}: broken link '{match.group(1)}'")
    return errors


def main() -> int:
    all_errors = []
    for doc in DOC_FILES:
        if not doc.exists():
            all_errors.append(f"missing doc file: {doc.relative_to(REPO)}")
            continue
        all_errors.extend(check_file(doc))
    if all_errors:
        print("documentation check FAILED:", file=sys.stderr)
        for err in all_errors:
            print(f"  {err}", file=sys.stderr)
        return 1
    print(f"documentation check passed ({len(DOC_FILES)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
