// Example: which sites do Tor users visit? (the §4 methodology)
//
// Measures primary-domain membership in a handful of Alexa-style sets with
// PrivCount histogram counters, reproducing the paper's headline mixture in
// miniature: ~40 % torproject.org, ~10 % amazon, ~80 % of destinations in
// the top-sites list.
#include <cstdio>

#include "src/core/instruments.h"
#include "src/core/measurement_study.h"
#include "src/net/inproc.h"
#include "src/workload/browsing.h"

using namespace tormet;

int main() {
  core::study_config config;
  config.consensus.num_relays = 2000;
  config.target_exit_fraction = 0.03;
  core::measurement_study study{config};
  tor::network& net = study.network();

  const auto alexa =
      workload::alexa_list::make_synthetic({.size = 100'000, .seed = 1});

  // Membership sets: torproject, the amazon sibling family, and the top
  // 1000 ranks; everything else falls into "<base>/other".
  std::vector<core::domain_set> sets;
  sets.push_back({"torproject", {"torproject.org"}});
  sets.push_back({"amazon", alexa.sibling_set("amazon")});
  core::domain_set top1000{"top1000", {}};
  for (std::uint32_t rank = 1; rank <= 1000; ++rank) {
    top1000.domains.push_back(alexa.domain_at_rank(rank));
  }
  sets.push_back(std::move(top1000));

  net::inproc_net bus;
  privcount::deployment_config cfg = study.privcount_config();
  cfg.measured_relays = study.measured_exits();
  privcount::deployment dep{bus, cfg};
  dep.add_instrument(core::instrument_domain_sets("sites", sets));
  dep.attach(net);

  workload::browsing_driver browser{net, alexa, workload::browsing_params{}};
  std::vector<tor::client_id> clients;
  for (int i = 0; i < 20'000; ++i) {
    clients.push_back(net.add_client({.ip = static_cast<std::uint32_t>(i)}));
  }

  const double d20 = 20.0 * 0.02;  // Table 1 domain bound, simulation-scaled
  const auto results = dep.run_round(
      {
          {"sites/torproject", d20, 2000.0},
          {"sites/amazon", d20, 500.0},
          {"sites/top1000", d20, 700.0},
          {"sites/other", d20, 1100.0},
      },
      [&] { browser.run_day(clients, sim_time{0}); });

  double total = 0.0;
  for (const auto& c : results) total += static_cast<double>(c.value);
  std::printf("primary domains observed at our exits: %.0f\n\n", total);
  for (const auto& c : results) {
    std::printf("  %-18s %7lld  (%.1f %%)\n", c.name.c_str(),
                static_cast<long long>(c.value),
                100.0 * static_cast<double>(c.value) / total);
  }
  std::printf("\npaper shape: torproject ~40 %%, amazon ~10 %%, ~80 %% "
              "of visits inside the Alexa list\n");
  return 0;
}
