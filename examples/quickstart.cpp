// Quickstart: the smallest complete tormet measurement.
//
// Sets up a simulated Tor network with 16 instrumented relays, runs one
// differentially-private PrivCount round counting exit streams while a web
// workload executes, and infers the network-wide total with a 95 % CI —
// the §3.3 inference pipeline end to end.
//
//   $ ./quickstart
#include <cstdio>

#include "src/core/instruments.h"
#include "src/core/measurement_study.h"
#include "src/net/inproc.h"
#include "src/stats/confidence.h"
#include "src/workload/browsing.h"

using namespace tormet;

int main() {
  // 1. A synthetic Tor consensus with measured relays at paper-like weight.
  core::study_config config;
  config.consensus.num_relays = 2000;
  config.target_exit_fraction = 0.03;
  core::measurement_study study{config};
  tor::network& net = study.network();

  // 2. A PrivCount deployment (1 tally server, 3 share keepers, 16 data
  //    collectors) over the in-process transport, instrumented to count
  //    exit streams.
  net::inproc_net bus;
  privcount::deployment_config dc = study.privcount_config();
  dc.measured_relays = study.measured_exits();
  privcount::deployment privcount{bus, dc};
  privcount.add_instrument(core::instrument_stream_taxonomy());
  privcount.attach(net);

  // 3. A web-browsing workload: 500 Tor Browser users for one day.
  const auto alexa =
      workload::alexa_list::make_synthetic({.size = 20'000, .seed = 1});
  workload::browsing_driver browser{net, alexa, workload::browsing_params{}};
  std::vector<tor::client_id> clients;
  for (int i = 0; i < 500; ++i) {
    clients.push_back(net.add_client({.ip = static_cast<std::uint32_t>(i)}));
  }

  // 4. One measurement round: counter specs carry the sensitivity (Table-1
  //    action bounds, scaled to this small simulation — see DESIGN.md §6)
  //    and an expected magnitude for the noise allocation.
  const std::vector<privcount::counter_spec> specs{
      {"streams/total", 8.0, 2500.0},
      {"streams/initial", 0.4, 125.0},
  };
  const auto results = privcount.run_round(specs, [&] {
    browser.run_day(clients, sim_time{0});
  });

  // 5. Inference: divide by the measured exit fraction.
  const double p = study.fraction(tor::position::exit, study.measured_exits());
  std::printf("measured exit fraction: %.2f %%\n\n", p * 100);
  for (const auto& counter : results) {
    const stats::estimate network = stats::extrapolate_by_fraction(
        stats::normal_estimate(static_cast<double>(counter.value),
                               counter.sigma),
        p);
    std::printf("%-18s local %8lld (sigma %6.1f)  ->  network %10.0f  "
                "95%% CI [%.0f; %.0f]\n",
                counter.name.c_str(), static_cast<long long>(counter.value),
                counter.sigma, network.value, network.ci.lo, network.ci.hi);
  }
  std::printf("\nsimulated ground truth: %llu total streams, %llu initial\n",
              static_cast<unsigned long long>(net.truth().exit_streams_total),
              static_cast<unsigned long long>(net.truth().exit_streams_initial));
  return 0;
}
