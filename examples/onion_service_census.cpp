// Example: a privacy-preserving onion-service census (the §6 methodology).
//
// Counts unique published onion addresses with PSC at the HSDir-flagged
// measured relays and measures descriptor-fetch outcomes with PrivCount —
// including the paper's headline 90 % fetch-failure shape — then
// extrapolates by HSDir-ring responsibility.
#include <cstdio>

#include "src/core/instruments.h"
#include "src/core/measurement_study.h"
#include "src/net/inproc.h"
#include "src/stats/confidence.h"
#include "src/stats/psc_ci.h"
#include "src/workload/onion_activity.h"

using namespace tormet;

int main() {
  core::study_config config;
  config.consensus.num_relays = 2000;
  core::measurement_study study{config};
  tor::network& net = study.network();

  // Onion-service workload: ~700 services, fetch traffic dominated by
  // stale botnet address lists (paper: 90.9 % of fetches fail).
  workload::onion_params op;
  op.network_scale = 0.01;
  op.fetch_attempts = 3e7;  // enough observed volume for the usage round
  workload::onion_driver onions{net, op};
  const auto index = std::make_shared<const workload::ahmia_index>(onions.index());

  const tor::client_id client = net.add_client({.ip = 7});
  const std::vector<tor::client_id> clients{client};

  const std::vector<tor::relay_id> hsdirs = study.measured_hsdirs();
  const std::set<tor::relay_id> hsdir_set{hsdirs.begin(), hsdirs.end()};

  // -- census: unique published addresses (PSC) -----------------------------
  net::inproc_net psc_bus;
  psc::deployment_config pcfg;
  pcfg.measured_relays = hsdirs;
  pcfg.round.bins = 1 << 14;
  pcfg.round.group = crypto::group_backend::toy;
  // Table 1 bound: 3 new onion addresses/day, scaled to the simulation.
  pcfg.round.sensitivity = 3.0 * 0.02;
  psc::deployment census{psc_bus, pcfg};
  census.set_extractor(core::extract_published_address());
  census.attach(net);

  const psc::round_outcome out = census.run_round([&] {
    onions.run_day(clients, clients, sim_time{0});
  });
  stats::psc_ci_params ci;
  ci.bins = out.bins;
  ci.total_noise_bits = out.total_noise_bits;
  const stats::estimate local = stats::psc_confidence_interval(out.raw_count, ci);
  const double publish_weight =
      net.ring().publish_observation_probability(hsdir_set, 0);
  const stats::estimate network =
      stats::extrapolate_by_fraction(local, publish_weight);

  std::printf("publish weight:          %.2f %%\n", publish_weight * 100);
  std::printf("unique addresses seen:   %.0f  CI [%.0f; %.0f]\n", local.value,
              local.ci.lo, local.ci.hi);
  std::printf("network-wide estimate:   %.0f  CI [%.0f; %.0f]  (truth %zu)\n\n",
              network.value, network.ci.lo, network.ci.hi, net.service_count());

  // -- usage: fetch outcomes (PrivCount) -------------------------------------
  net::inproc_net pc_bus;
  privcount::deployment_config ccfg = study.privcount_config();
  ccfg.measured_relays = hsdirs;
  privcount::deployment usage{pc_bus, ccfg};
  usage.add_instrument(core::instrument_hsdir_descriptors(index));
  usage.attach(net);

  const double d30 = 30.0 * 0.02;  // Table 1 fetch bound, simulation-scaled
  const auto results = usage.run_round(
      {
          {"hsdir/fetch/total", d30, 5200.0},
          {"hsdir/fetch/success", d30, 470.0},
          {"hsdir/fetch/failed", d30, 4700.0},
          {"hsdir/fetch/success/public", d30, 270.0},
      },
      [&] { onions.run_day(clients, clients, sim_time{k_seconds_per_day}); });

  std::map<std::string, double> v;
  for (const auto& c : results) v[c.name] = static_cast<double>(c.value);
  std::printf("descriptor fetches seen: %.0f, of which %.1f %% failed "
              "(paper: 90.9 %%)\n",
              v["hsdir/fetch/total"],
              100.0 * v["hsdir/fetch/failed"] / v["hsdir/fetch/total"]);
  std::printf("successful fetches to publicly indexed sites: %.1f %% "
              "(paper: 56.8 %%)\n",
              100.0 * v["hsdir/fetch/success/public"] /
                  std::max(1.0, v["hsdir/fetch/success"]));
  return 0;
}
