// Example: counting unique Tor clients with PSC (the §5.1 methodology).
//
// PrivCount can count *connections*, but "how many unique clients?" needs
// the private set-union cardinality protocol: each data collector feeds
// client IPs into an oblivious encrypted table (never storing an address),
// the computation parties add binomial noise, mix, and jointly decrypt, and
// the tally server learns only the noisy distinct count. The example
// finishes with the paper's quick user inference (observed / fraction / 3
// guards).
#include <cstdio>

#include "src/core/instruments.h"
#include "src/core/measurement_study.h"
#include "src/net/inproc.h"
#include "src/stats/guard_model.h"
#include "src/stats/psc_ci.h"
#include "src/workload/geoip.h"
#include "src/workload/population.h"

using namespace tormet;

int main() {
  core::study_config config;
  config.consensus.num_relays = 2000;
  config.target_guard_fraction = 0.03;
  core::measurement_study study{config};
  tor::network& net = study.network();
  auto geo = std::make_shared<workload::geoip_db>(workload::geoip_db::make_synthetic());

  // A small client population with promiscuous members (tor2web/bridges).
  workload::population_params pp;
  pp.network_scale = 1.0;
  pp.selective_clients = 3000;
  pp.promiscuous_clients = 15;
  workload::population pop{net, *geo, pp};

  // PSC deployment: 3 computation parties, DCs at the measured guards.
  net::inproc_net bus;
  psc::deployment_config cfg = study.psc_config();
  cfg.measured_relays = study.measured_guards();
  cfg.round.bins = 1 << 14;
  cfg.round.group = crypto::group_backend::toy;  // p256 for production
  // Table 1 bound: 4 new IPs per protected day, scaled to this small
  // simulation (DESIGN.md §6) so the noise matches the deployment's
  // signal-to-noise ratio.
  cfg.round.sensitivity = 4.0 * 0.05;
  psc::deployment psc_dep{bus, cfg};
  psc_dep.set_extractor(core::extract_client_ip());
  psc_dep.attach(net);

  const psc::round_outcome out = psc_dep.run_round([&] {
    pop.run_entry_day(sim_time{0});
  });

  stats::psc_ci_params ci;
  ci.bins = out.bins;
  ci.total_noise_bits = out.total_noise_bits;
  const stats::estimate unique = stats::psc_confidence_interval(out.raw_count, ci);

  const double frac = study.fraction(tor::position::guard, study.measured_guards());
  std::printf("raw decrypted count:    %llu (includes %llu expected noise ones)\n",
              static_cast<unsigned long long>(out.raw_count),
              static_cast<unsigned long long>(out.total_noise_bits / 2));
  std::printf("unique client IPs seen: %.0f  95%% CI [%.0f; %.0f]\n",
              unique.value, unique.ci.lo, unique.ci.hi);
  std::printf("guard weight fraction:  %.2f %%\n", frac * 100);
  std::printf("quick user estimate:    %.0f clients (observed/fraction/3)\n",
              stats::quick_user_estimate(unique.value, frac, 3));
  std::printf("population truth:       %zu active clients\n",
              pop.active().size());
  return 0;
}
