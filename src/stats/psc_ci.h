// Exact confidence intervals for PSC unique counts — the paper's §3.3:
// "we adjust for these errors by computing 95 % confidence intervals using
// an exact algorithm based on dynamic programming."
//
// The decrypted count R is distributed as
//     R(n) = Occupancy(n, b) + Binomial(T, 1/2)
// for true cardinality n, b bins, and T total noise bits. The 95 % CI is
// the set of n whose R-distribution does not place the observation in
// either 2.5 % tail:
//     CI = { n : P(R(n) <= R_obs) > 0.025  and  P(R(n) >= R_obs) > 0.025 }.
// Tail probabilities come from the exact DP convolution when n·b is small
// enough and a moment-matched normal approximation otherwise; interval
// endpoints are located by monotone bisection (both tails are monotone in
// n).
#pragma once

#include <cstdint>

#include "src/stats/confidence.h"

namespace tormet::stats {

struct psc_ci_params {
  std::uint64_t bins = 0;
  std::uint64_t total_noise_bits = 0;
  /// Above this n·bins product the exact DP hands over to the normal
  /// approximation (the DP is O(n·b) per candidate n).
  std::uint64_t exact_dp_limit = 4'000'000;
  /// Upper bound for the bisection search over n.
  std::uint64_t max_cardinality = 1'000'000'000;
};

/// P(R(n) <= r_obs) under the model above.
[[nodiscard]] double psc_cdf(std::uint64_t r_obs, std::uint64_t n,
                             const psc_ci_params& params);

/// Point estimate plus exact 95 % CI for the union cardinality given the
/// decrypted raw count.
[[nodiscard]] estimate psc_confidence_interval(std::uint64_t raw_count,
                                               const psc_ci_params& params);

}  // namespace tormet::stats
