// The Tor Metrics Portal user-estimation heuristic (Loesing et al., FC'10)
// — the baseline the paper's §5 compares against. Tor Metrics counts
// directory requests at reporting directory mirrors, extrapolates by the
// reporting fraction, and divides by an assumed ~10 requests per client per
// day:
//
//     users ≈ (observed dir requests / reporting fraction) / 10.
//
// The paper's finding — Tor Metrics reported 2.15 M daily users while
// direct unique-IP measurement implies ~8-11 M — falls out of this
// heuristic whenever clients issue fewer directory requests than assumed
// (modern clients bundle directory traffic over guards), and the UAE
// anomaly (§5.2) inverts it: directory-looping clients inflate their
// country's Metrics estimate without using Tor at all.
#pragma once

#include "src/stats/confidence.h"

namespace tormet::stats {

/// Tor Metrics' published assumption: a client issues about 10 directory
/// requests per day.
inline constexpr double k_metrics_assumed_requests_per_day = 10.0;

/// The Metrics-Portal-style user estimate from directory-request counts.
/// `observed_dir_requests` at relays holding `fraction` of the directory
/// position weight.
[[nodiscard]] double metrics_portal_user_estimate(
    double observed_dir_requests, double fraction,
    double assumed_requests_per_day = k_metrics_assumed_requests_per_day);

/// Ratio between a directly measured user count and the Metrics-style
/// estimate (the paper's "factor of four more than previously believed").
[[nodiscard]] double underestimate_factor(double direct_users,
                                          double metrics_users);

}  // namespace tormet::stats
