#include "src/stats/occupancy.h"

#include <cmath>

#include "src/util/check.h"

namespace tormet::stats {

double occupancy_mean(std::uint64_t n, std::uint64_t bins) {
  expects(bins >= 1, "need at least one bin");
  const double b = static_cast<double>(bins);
  return b * (1.0 - std::pow(1.0 - 1.0 / b, static_cast<double>(n)));
}

double occupancy_variance(std::uint64_t n, std::uint64_t bins) {
  expects(bins >= 1, "need at least one bin");
  const double b = static_cast<double>(bins);
  const double nn = static_cast<double>(n);
  const double p1 = std::pow(1.0 - 1.0 / b, nn);        // P(bin empty)
  const double p2 = bins >= 2 ? std::pow(1.0 - 2.0 / b, nn) : 0.0;
  // Var = b(b-1)p2 + b p1 - b^2 p1^2  (empty-bin indicator covariance).
  const double var = b * (b - 1.0) * p2 + b * p1 - b * b * p1 * p1;
  return var < 0.0 ? 0.0 : var;
}

std::vector<double> occupancy_pmf(std::uint64_t n, std::uint64_t bins) {
  expects(bins >= 1, "need at least one bin");
  const std::size_t max_occ =
      static_cast<std::size_t>(std::min<std::uint64_t>(n, bins));
  std::vector<double> pmf(max_occ + 1, 0.0);
  pmf[0] = 1.0;  // zero balls -> zero occupied
  const double b = static_cast<double>(bins);
  for (std::uint64_t ball = 0; ball < n; ++ball) {
    // Throw one more ball: occupied j stays j (hit an occupied bin, prob
    // j/b) or becomes j+1 (hit an empty bin, prob (b-j)/b).
    for (std::size_t j = std::min<std::size_t>(max_occ, ball + 1); j > 0; --j) {
      pmf[j] = pmf[j] * (static_cast<double>(j) / b) +
               pmf[j - 1] * ((b - static_cast<double>(j - 1)) / b);
    }
    pmf[0] = 0.0;  // after >=1 ball, zero occupancy is impossible
  }
  return pmf;
}

}  // namespace tormet::stats
