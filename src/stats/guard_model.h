// The paper's §5.1 guard-connection model fit (Table 3). Two unique-client-
// IP measurements from *disjoint* relay sets with guard-weight fractions
// p1 != p2 identify the client/guard model
//
//     observed(p) = S·(1 − (1 − p)^g) + P
//
// where S = selective clients (connect to g guards each), P = promiscuous
// clients (connect to all guards: bridges, tor2web, NATed crowds). For each
// candidate g, the fit finds every P for which the two measurements' CIs
// admit a common S, and reports the resulting promiscuous-count range and
// network-wide client-IP range (S + P).
#pragma once

#include <cstdint>
#include <vector>

#include "src/stats/confidence.h"

namespace tormet::stats {

/// One PSC unique-IP measurement.
struct guard_measurement {
  interval uniques_ci{};     // 95 % CI on unique client IPs observed
  double guard_fraction = 0; // measuring relays' share of guard weight
};

struct guard_model_row {
  int guards_per_client = 0;
  bool consistent = false;       // some P reconciles both measurements
  interval promiscuous{};        // feasible promiscuous-client range
  interval network_ips{};        // S + P over all feasible (S, P)
};

struct guard_model_params {
  std::vector<int> candidate_g{3, 4, 5};  // paper: directory guards imply >= 3
  double max_promiscuous = 1e6;           // search bound for P
  std::size_t grid_steps = 4096;          // P-grid resolution
};

[[nodiscard]] std::vector<guard_model_row> fit_guard_model(
    const guard_measurement& m1, const guard_measurement& m2,
    const guard_model_params& params = {});

/// Convenience for the paper's single-g inference: observed / (g·p) — the
/// quick approximation used for the "~8 million daily users" headline.
[[nodiscard]] double quick_user_estimate(double observed_uniques,
                                         double guard_fraction, int g);

}  // namespace tormet::stats
