#include "src/stats/metrics_portal.h"

#include "src/util/check.h"

namespace tormet::stats {

double metrics_portal_user_estimate(double observed_dir_requests,
                                    double fraction,
                                    double assumed_requests_per_day) {
  expects(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1]");
  expects(assumed_requests_per_day > 0.0,
          "assumed request rate must be positive");
  expects(observed_dir_requests >= 0.0, "request count must be non-negative");
  return observed_dir_requests / fraction / assumed_requests_per_day;
}

double underestimate_factor(double direct_users, double metrics_users) {
  expects(metrics_users > 0.0, "metrics estimate must be positive");
  return direct_users / metrics_users;
}

}  // namespace tormet::stats
