#include "src/stats/confidence.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace tormet::stats {

estimate normal_estimate(double value, double sigma) {
  expects(sigma >= 0.0, "sigma must be non-negative");
  return {value, {value - k_z95 * sigma, value + k_z95 * sigma}};
}

estimate extrapolate_by_fraction(const estimate& local, double fraction) {
  expects(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1]");
  return {local.value / fraction,
          {local.ci.lo / fraction, local.ci.hi / fraction}};
}

interval unique_count_range(double local_count, double fraction) {
  expects(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1]");
  expects(local_count >= 0.0, "count must be non-negative");
  return {local_count, local_count / fraction};
}

estimate ratio_estimate(const estimate& numerator, const estimate& denominator) {
  expects(denominator.value != 0.0, "denominator must be nonzero");
  estimate out;
  out.value = numerator.value / denominator.value;
  // Conservative endpoints over the CI corner combinations; guard against
  // denominators whose CI crosses zero.
  const double den_lo = denominator.ci.lo <= 0.0 && denominator.value > 0.0
                            ? denominator.value * 1e-9
                            : denominator.ci.lo;
  const double a = numerator.ci.lo / denominator.ci.hi;
  const double b = numerator.ci.lo / den_lo;
  const double c = numerator.ci.hi / denominator.ci.hi;
  const double d = numerator.ci.hi / den_lo;
  out.ci.lo = std::min(std::min(a, b), std::min(c, d));
  out.ci.hi = std::max(std::max(a, b), std::max(c, d));
  return out;
}

}  // namespace tormet::stats
