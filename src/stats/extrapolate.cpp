#include "src/stats/extrapolate.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "src/util/check.h"
#include "src/workload/zipf.h"

namespace tormet::stats {

powerlaw_extrapolation_result extrapolate_uniques_powerlaw(
    const powerlaw_extrapolation_params& params) {
  expects(params.network_accesses > 0, "need a positive access volume");
  expects(params.observe_fraction > 0.0 && params.observe_fraction <= 1.0,
          "observe fraction must be in (0,1]");
  expects(params.trials >= 1, "need at least one trial");
  expects(params.exponent_hi >= params.exponent_lo, "exponent range inverted");

  rng r{params.seed};
  std::vector<double> accepted_networks;
  double exp_lo = 0.0;
  double exp_hi = 0.0;

  for (std::size_t trial = 0; trial < params.trials; ++trial) {
    const double exponent =
        params.exponent_lo +
        r.uniform() * (params.exponent_hi - params.exponent_lo);
    const workload::zipf_sampler sampler{params.universe, exponent};

    std::unordered_set<std::uint64_t> network_seen;
    std::unordered_set<std::uint64_t> local_seen;
    for (std::uint64_t i = 0; i < params.network_accesses; ++i) {
      const std::uint64_t item = sampler.sample(r);
      network_seen.insert(item);
      // Each access lands at our relays with the observation probability.
      if (r.bernoulli(params.observe_fraction)) local_seen.insert(item);
    }

    const auto local = static_cast<double>(local_seen.size());
    if (!params.local_uniques_ci.contains(local)) continue;

    if (accepted_networks.empty()) {
      exp_lo = exp_hi = exponent;
    } else {
      exp_lo = std::min(exp_lo, exponent);
      exp_hi = std::max(exp_hi, exponent);
    }
    accepted_networks.push_back(static_cast<double>(network_seen.size()));
  }

  powerlaw_extrapolation_result out;
  out.trials = params.trials;
  out.accepted = accepted_networks.size();
  out.exponent_range = {exp_lo, exp_hi};
  if (!accepted_networks.empty()) {
    std::sort(accepted_networks.begin(), accepted_networks.end());
    const auto quantile = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(accepted_networks.size() - 1));
      return accepted_networks[idx];
    };
    double sum = 0.0;
    for (const auto v : accepted_networks) sum += v;
    out.network_uniques.value = sum / static_cast<double>(accepted_networks.size());
    out.network_uniques.ci = {quantile(0.025), quantile(0.975)};
  }
  return out;
}

}  // namespace tormet::stats
