#include "src/stats/psc_ci.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/psc/estimator.h"
#include "src/stats/occupancy.h"
#include "src/util/check.h"

namespace tormet::stats {

namespace {

/// Standard normal CDF.
[[nodiscard]] double phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

/// Binomial(T, 1/2) pmf over [0, T], computed in log space for stability.
[[nodiscard]] std::vector<double> binomial_half_pmf(std::uint64_t t) {
  std::vector<double> pmf(t + 1, 0.0);
  // log C(t, k) accumulated incrementally.
  double log_c = 0.0;
  const double log_half = std::log(0.5) * static_cast<double>(t);
  for (std::uint64_t k = 0; k <= t; ++k) {
    pmf[k] = std::exp(log_c + log_half);
    if (k < t) {
      log_c += std::log(static_cast<double>(t - k)) -
               std::log(static_cast<double>(k + 1));
    }
  }
  return pmf;
}

}  // namespace

double psc_cdf(std::uint64_t r_obs, std::uint64_t n, const psc_ci_params& params) {
  expects(params.bins >= 2, "need at least two bins");
  const std::uint64_t b = params.bins;
  const std::uint64_t t = params.total_noise_bits;

  const bool exact = n * b <= params.exact_dp_limit && t <= 20'000;
  if (exact) {
    const std::vector<double> occ = occupancy_pmf(n, b);
    const std::vector<double> noise = binomial_half_pmf(t);
    // P(R <= r_obs) = sum_{j} occ[j] * P(noise <= r_obs - j).
    // Precompute the noise CDF.
    std::vector<double> noise_cdf(noise.size());
    double acc = 0.0;
    for (std::size_t k = 0; k < noise.size(); ++k) {
      acc += noise[k];
      noise_cdf[k] = acc;
    }
    double total = 0.0;
    for (std::size_t j = 0; j < occ.size(); ++j) {
      if (occ[j] == 0.0) continue;
      if (j > r_obs) continue;  // noise cannot be negative
      const std::uint64_t budget = r_obs - j;
      const double nc =
          budget >= t ? 1.0 : noise_cdf[static_cast<std::size_t>(budget)];
      total += occ[j] * nc;
    }
    return std::min(total, 1.0);
  }

  // Moment-matched normal approximation with continuity correction.
  const double mu =
      occupancy_mean(n, b) + static_cast<double>(t) / 2.0;
  const double var =
      occupancy_variance(n, b) + static_cast<double>(t) / 4.0;
  if (var <= 0.0) return static_cast<double>(r_obs) >= mu ? 1.0 : 0.0;
  return phi((static_cast<double>(r_obs) + 0.5 - mu) / std::sqrt(var));
}

estimate psc_confidence_interval(std::uint64_t raw_count,
                                 const psc_ci_params& params) {
  expects(params.bins >= 2, "need at least two bins");
  constexpr double k_alpha = 0.025;

  const psc::cardinality_estimate point = psc::estimate_cardinality(
      raw_count, params.bins, params.total_noise_bits);

  // Lower endpoint: smallest n with P(R(n) >= r_obs) > alpha, i.e.
  // 1 - P(R <= r_obs - 1) > alpha. The tail is nondecreasing in n.
  const auto upper_tail_ok = [&](std::uint64_t n) {
    const double cdf_below =
        raw_count == 0 ? 0.0 : psc_cdf(raw_count - 1, n, params);
    return 1.0 - cdf_below > k_alpha;
  };
  // Upper endpoint: largest n with P(R(n) <= r_obs) > alpha; this
  // probability is nonincreasing in n.
  const auto lower_tail_ok = [&](std::uint64_t n) {
    return psc_cdf(raw_count, n, params) > k_alpha;
  };

  // Bisection for the smallest n satisfying upper_tail_ok.
  std::uint64_t lo = 0;
  std::uint64_t hi = params.max_cardinality;
  if (upper_tail_ok(0)) {
    lo = 0;
  } else {
    std::uint64_t a = 0;
    std::uint64_t b = 1;
    while (b < hi && !upper_tail_ok(b)) {
      a = b;
      b *= 2;
    }
    b = std::min(b, hi);
    while (a + 1 < b) {
      const std::uint64_t mid = a + (b - a) / 2;
      if (upper_tail_ok(mid)) {
        b = mid;
      } else {
        a = mid;
      }
    }
    lo = b;
  }

  // Bisection for the largest n satisfying lower_tail_ok.
  if (!lower_tail_ok(lo)) {
    hi = lo;  // degenerate: observation pinned
  } else {
    std::uint64_t a = lo;
    std::uint64_t b = std::max<std::uint64_t>(lo * 2, 16);
    while (b < params.max_cardinality && lower_tail_ok(b)) {
      a = b;
      b *= 2;
    }
    b = std::min(b, params.max_cardinality);
    while (a + 1 < b) {
      const std::uint64_t mid = a + (b - a) / 2;
      if (lower_tail_ok(mid)) {
        a = mid;
      } else {
        b = mid;
      }
    }
    hi = a;
  }

  estimate out;
  out.value = point.cardinality;
  out.ci = {static_cast<double>(lo), static_cast<double>(hi)};
  return out;
}

}  // namespace tormet::stats
