// Balls-in-bins occupancy statistics: the distribution of occupied bins
// after n uniform throws into b bins. PSC's hash table makes the measured
// count a function of occupancy, so CIs need both its moments and (for the
// exact DP algorithm) its full distribution.
#pragma once

#include <cstdint>
#include <vector>

namespace tormet::stats {

/// E[occupied] = b·(1 − (1 − 1/b)^n).
[[nodiscard]] double occupancy_mean(std::uint64_t n, std::uint64_t bins);

/// Var[occupied] = b·(b−1)·(1−2/b)^n + b·(1−1/b)^n − b²·(1−1/b)^{2n}.
[[nodiscard]] double occupancy_variance(std::uint64_t n, std::uint64_t bins);

/// Exact occupancy pmf by dynamic programming: result[j] = P(occupied = j)
/// for j in [0, min(n, bins)]. O(n·bins) time — intended for the moderate
/// sizes where exactness matters; large cases use the normal approximation.
[[nodiscard]] std::vector<double> occupancy_pmf(std::uint64_t n,
                                                std::uint64_t bins);

}  // namespace tormet::stats
