#include "src/stats/guard_model.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace tormet::stats {

namespace {
/// Probability a selective client with g weighted guard choices touches the
/// measuring set (fraction p of guard weight).
[[nodiscard]] double hit_probability(double p, int g) {
  return 1.0 - std::pow(1.0 - p, g);
}

/// Inverts one measurement for S given P: S = (obs − P) / hit_probability.
[[nodiscard]] interval selective_interval(const guard_measurement& m, double promiscuous,
                                          int g) {
  const double hit = hit_probability(m.guard_fraction, g);
  const double lo = std::max(0.0, (m.uniques_ci.lo - promiscuous) / hit);
  const double hi = std::max(0.0, (m.uniques_ci.hi - promiscuous) / hit);
  return {lo, hi};
}
}  // namespace

std::vector<guard_model_row> fit_guard_model(const guard_measurement& m1,
                                             const guard_measurement& m2,
                                             const guard_model_params& params) {
  expects(m1.guard_fraction > 0.0 && m1.guard_fraction < 1.0,
          "guard fraction must be in (0,1)");
  expects(m2.guard_fraction > 0.0 && m2.guard_fraction < 1.0,
          "guard fraction must be in (0,1)");
  expects(m1.guard_fraction != m2.guard_fraction,
          "measurements must differ in guard fraction");
  expects(params.grid_steps >= 2, "grid needs at least two steps");

  std::vector<guard_model_row> rows;
  for (const int g : params.candidate_g) {
    guard_model_row row;
    row.guards_per_client = g;
    bool first = true;
    for (std::size_t step = 0; step <= params.grid_steps; ++step) {
      const double promiscuous = params.max_promiscuous *
                                 static_cast<double>(step) /
                                 static_cast<double>(params.grid_steps);
      const interval s1 = selective_interval(m1, promiscuous, g);
      const interval s2 = selective_interval(m2, promiscuous, g);
      if (!s1.intersects(s2)) continue;
      const interval s{std::max(s1.lo, s2.lo), std::min(s1.hi, s2.hi)};

      row.consistent = true;
      const interval ips{s.lo + promiscuous, s.hi + promiscuous};
      if (first) {
        row.promiscuous = {promiscuous, promiscuous};
        row.network_ips = ips;
        first = false;
      } else {
        row.promiscuous.lo = std::min(row.promiscuous.lo, promiscuous);
        row.promiscuous.hi = std::max(row.promiscuous.hi, promiscuous);
        row.network_ips.lo = std::min(row.network_ips.lo, ips.lo);
        row.network_ips.hi = std::max(row.network_ips.hi, ips.hi);
      }
    }
    rows.push_back(row);
  }
  return rows;
}

double quick_user_estimate(double observed_uniques, double guard_fraction, int g) {
  expects(guard_fraction > 0.0 && guard_fraction <= 1.0,
          "guard fraction must be in (0,1]");
  expects(g >= 1, "g must be positive");
  return observed_uniques / guard_fraction / static_cast<double>(g);
}

}  // namespace tormet::stats
