// Confidence intervals and network-wide inference (§3.3). PrivCount values
// carry Gaussian noise of known sigma, so 95 % CIs are value ± 1.96·sigma;
// network totals are inferred by dividing by the fraction of observations
// the measuring relays make.
#pragma once

namespace tormet::stats {

inline constexpr double k_z95 = 1.959963984540054;  // two-sided 95 % quantile

/// A closed interval.
struct interval {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] bool contains(double x) const noexcept {
    return x >= lo && x <= hi;
  }
  [[nodiscard]] bool intersects(const interval& other) const noexcept {
    return lo <= other.hi && other.lo <= hi;
  }
  [[nodiscard]] double width() const noexcept { return hi - lo; }
};

/// A point estimate with its 95 % CI.
struct estimate {
  double value = 0.0;
  interval ci{};
};

/// Gaussian 95 % CI around a noisy value.
[[nodiscard]] estimate normal_estimate(double value, double sigma);

/// Infers the network-wide total from a local observation made by relays
/// holding `fraction` of the position weight: divides value and CI by the
/// fraction (§3.3's running example: (3.2e7 ± 6.2e6)/0.015).
[[nodiscard]] estimate extrapolate_by_fraction(const estimate& local,
                                               double fraction);

/// The paper's fallback when no frequency distribution is known for a
/// unique count: the network-wide value lies in [x, x/p].
[[nodiscard]] interval unique_count_range(double local_count, double fraction);

/// Ratio of two estimates (a/b) with a conservative interval (extremes of
/// the endpoint combinations). Used for percentage rows like Table 7/8.
[[nodiscard]] estimate ratio_estimate(const estimate& numerator,
                                      const estimate& denominator);

}  // namespace tormet::stats
