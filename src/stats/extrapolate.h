// Monte-Carlo power-law extrapolation of unique counts (§3.3, §4.3): when a
// frequency distribution is known for the observed items (SLD visits follow
// a power law), simulate clients visiting random destinations under
// candidate exponents, keep the trials whose *local* unique count matches
// the measurement, and read the network-wide unique count off the kept
// trials. This is exactly the paper's procedure for the 513,342
// network-wide Alexa-SLD estimate.
#pragma once

#include <cstdint>

#include "src/stats/confidence.h"
#include "src/util/rng.h"

namespace tormet::stats {

struct powerlaw_extrapolation_params {
  std::uint64_t universe = 1'000'000;   // candidate item universe size
  double exponent_lo = 0.8;             // exponent prior (uniform range)
  double exponent_hi = 1.4;
  std::uint64_t network_accesses = 0;   // total network-wide accesses
  double observe_fraction = 0.0;        // our relays' share of accesses
  interval local_uniques_ci{};          // measured local unique count CI
  std::size_t trials = 100;             // the paper ran 100 simulations
  std::uint64_t seed = 31337;
};

struct powerlaw_extrapolation_result {
  estimate network_uniques{};   // over accepted trials
  std::size_t accepted = 0;     // trials whose local count matched
  std::size_t trials = 0;
  interval exponent_range{};    // exponents of accepted trials
};

[[nodiscard]] powerlaw_extrapolation_result extrapolate_uniques_powerlaw(
    const powerlaw_extrapolation_params& params);

}  // namespace tormet::stats
