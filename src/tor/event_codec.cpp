#include "src/tor/event_codec.h"

#include <algorithm>
#include <array>
#include <limits>
#include <type_traits>

namespace tormet::tor {

namespace {

constexpr std::array<std::uint8_t, 7> k_magic = {'T', 'M', 'T', 'R',
                                                 'A', 'C', 'E'};
static_assert(k_magic.size() + 1 == k_trace_header_bytes);

/// Body tags are the variant indices of tor::event_body — the variant order
/// in events.h is part of the wire format.
enum class body_tag : std::uint8_t {
  entry_connection = 0,
  entry_circuit = 1,
  entry_data = 2,
  exit_stream = 3,
  exit_data = 4,
  hsdir_publish = 5,
  hsdir_fetch = 6,
  rend_circuit = 7,
};
constexpr std::uint8_t k_max_body_tag = 7;

// encode_event writes ev.body.index() while decode_event switches on the
// tags above — pin the mapping so reordering the variant in events.h is a
// compile error, not silent wire corruption.
template <body_tag Tag, typename Body>
inline constexpr bool tag_matches =
    std::is_same_v<std::variant_alternative_t<static_cast<std::size_t>(Tag),
                                              event_body>,
                   Body>;
static_assert(tag_matches<body_tag::entry_connection, entry_connection_event>);
static_assert(tag_matches<body_tag::entry_circuit, entry_circuit_event>);
static_assert(tag_matches<body_tag::entry_data, entry_data_event>);
static_assert(tag_matches<body_tag::exit_stream, exit_stream_event>);
static_assert(tag_matches<body_tag::exit_data, exit_data_event>);
static_assert(tag_matches<body_tag::hsdir_publish, hsdir_publish_event>);
static_assert(tag_matches<body_tag::hsdir_fetch, hsdir_fetch_event>);
static_assert(tag_matches<body_tag::rend_circuit, rend_circuit_event>);
static_assert(std::variant_size_v<event_body> == k_max_body_tag + 1,
              "new event variants need a codec tag, body encoding, and a "
              "docs/EVENTS.md row");

[[nodiscard]] std::uint8_t checked_enum(net::wire_reader& in,
                                        std::uint8_t max_value,
                                        const char* what) {
  const std::uint8_t v = in.read_u8();
  if (v > max_value) {
    throw net::wire_error{std::string{"event decode: out-of-range "} + what};
  }
  return v;
}

}  // namespace

void append_trace_header(byte_buffer& out) {
  out.insert(out.end(), k_magic.begin(), k_magic.end());
  out.push_back(k_trace_version);
}

void encode_event(net::wire_writer& out, const event& ev) {
  out.write_varint(ev.observer);
  out.write_i64(ev.at.seconds);
  out.write_u8(static_cast<std::uint8_t>(ev.body.index()));
  std::visit(
      [&out](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, entry_connection_event>) {
          out.write_u32(body.client_ip);
        } else if constexpr (std::is_same_v<T, entry_circuit_event>) {
          out.write_u32(body.client_ip);
          out.write_u8(static_cast<std::uint8_t>(body.kind));
        } else if constexpr (std::is_same_v<T, entry_data_event>) {
          out.write_u32(body.client_ip);
          out.write_varint(body.bytes);
        } else if constexpr (std::is_same_v<T, exit_stream_event>) {
          out.write_u8(static_cast<std::uint8_t>(body.kind));
          out.write_u8(body.is_initial ? 1 : 0);
          out.write_u16(body.port);
          out.write_string(body.target);
        } else if constexpr (std::is_same_v<T, exit_data_event>) {
          out.write_varint(body.bytes);
        } else if constexpr (std::is_same_v<T, hsdir_publish_event>) {
          out.write_string(body.address.value);
        } else if constexpr (std::is_same_v<T, hsdir_fetch_event>) {
          out.write_string(body.address.value);
          out.write_u8(static_cast<std::uint8_t>(body.outcome));
        } else if constexpr (std::is_same_v<T, rend_circuit_event>) {
          out.write_u8(static_cast<std::uint8_t>(body.outcome));
          out.write_varint(body.payload_cells);
        }
      },
      ev.body);
}

event decode_event(net::wire_reader& in) {
  event ev;
  const std::uint64_t observer = in.read_varint();
  if (observer > std::numeric_limits<relay_id>::max()) {
    throw net::wire_error{"event decode: observer id out of range"};
  }
  ev.observer = static_cast<relay_id>(observer);
  ev.at.seconds = in.read_i64();
  const std::uint8_t tag = checked_enum(in, k_max_body_tag, "body tag");
  switch (static_cast<body_tag>(tag)) {
    case body_tag::entry_connection: {
      entry_connection_event b;
      b.client_ip = in.read_u32();
      ev.body = b;
      break;
    }
    case body_tag::entry_circuit: {
      entry_circuit_event b;
      b.client_ip = in.read_u32();
      b.kind = static_cast<circuit_kind>(checked_enum(
          in, static_cast<std::uint8_t>(circuit_kind::rendezvous),
          "circuit kind"));
      ev.body = b;
      break;
    }
    case body_tag::entry_data: {
      entry_data_event b;
      b.client_ip = in.read_u32();
      b.bytes = in.read_varint();
      ev.body = b;
      break;
    }
    case body_tag::exit_stream: {
      exit_stream_event b;
      b.kind = static_cast<address_kind>(checked_enum(
          in, static_cast<std::uint8_t>(address_kind::ipv6), "address kind"));
      b.is_initial = checked_enum(in, 1, "is_initial flag") == 1;
      b.port = in.read_u16();
      b.target = in.read_string();
      ev.body = std::move(b);
      break;
    }
    case body_tag::exit_data: {
      exit_data_event b;
      b.bytes = in.read_varint();
      ev.body = b;
      break;
    }
    case body_tag::hsdir_publish: {
      hsdir_publish_event b;
      b.address.value = in.read_string();
      ev.body = std::move(b);
      break;
    }
    case body_tag::hsdir_fetch: {
      hsdir_fetch_event b;
      b.address.value = in.read_string();
      b.outcome = static_cast<fetch_outcome>(checked_enum(
          in, static_cast<std::uint8_t>(fetch_outcome::malformed),
          "fetch outcome"));
      ev.body = std::move(b);
      break;
    }
    case body_tag::rend_circuit: {
      rend_circuit_event b;
      b.outcome = static_cast<rend_outcome>(checked_enum(
          in, static_cast<std::uint8_t>(rend_outcome::failed_expired),
          "rend outcome"));
      b.payload_cells = in.read_varint();
      ev.body = b;
      break;
    }
  }
  in.expect_end();
  return ev;
}

void append_event_record(byte_buffer& out, const event& ev) {
  net::wire_writer payload;
  encode_event(payload, ev);
  net::wire_writer prefix;
  prefix.write_varint(payload.data().size());
  out.insert(out.end(), prefix.data().begin(), prefix.data().end());
  out.insert(out.end(), payload.data().begin(), payload.data().end());
}

void event_decoder::feed(byte_view chunk) {
  // Compact before growing: everything before pos_ has been consumed.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (64 << 10)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
}

std::optional<event> event_decoder::next() {
  if (!saw_header_) {
    if (buf_.size() - pos_ < k_trace_header_bytes) return std::nullopt;
    if (!std::equal(k_magic.begin(), k_magic.end(), buf_.begin() + pos_)) {
      throw net::wire_error{"trace stream: bad magic"};
    }
    const std::uint8_t version = buf_[pos_ + k_magic.size()];
    if (version != k_trace_version) {
      throw net::wire_error{"trace stream: unsupported version " +
                            std::to_string(version)};
    }
    pos_ += k_trace_header_bytes;
    saw_header_ = true;
  }

  // Peek the varint length prefix without committing the position.
  const byte_view avail{buf_.data() + pos_, buf_.size() - pos_};
  std::uint64_t len = 0;
  std::size_t prefix_bytes = 0;
  {
    // Mirrors wire_reader::read_varint, but returns "need more bytes"
    // instead of throwing on truncation.
    int shift = 0;
    for (;;) {
      if (prefix_bytes >= avail.size()) return std::nullopt;  // need more
      const std::uint8_t byte = avail[prefix_bytes++];
      if (shift >= 63 && (byte & 0x7f) > 1) {
        throw net::wire_error{"trace stream: varint length overflow"};
      }
      len |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      if (shift > 63) {
        throw net::wire_error{"trace stream: varint length too long"};
      }
    }
  }
  if (len > k_max_event_record_bytes) {
    throw net::wire_error{"trace stream: record length " + std::to_string(len) +
                          " exceeds cap"};
  }
  if (avail.size() - prefix_bytes < len) return std::nullopt;  // need more

  net::wire_reader payload{
      byte_view{avail.data() + prefix_bytes, static_cast<std::size_t>(len)}};
  event ev = decode_event(payload);
  pos_ += prefix_bytes + static_cast<std::size_t>(len);
  return ev;
}

}  // namespace tormet::tor
