// The consensus: the network view Tor clients use for relay selection.
// Provides bandwidth-weighted sampling per position (guard / middle / exit /
// HSDir / rendezvous point) and the position-probability queries the
// paper's inference divides by ("our relays held 1.5 % of the exit weight").
#pragma once

#include <set>
#include <vector>

#include "src/tor/relay.h"
#include "src/util/rng.h"

namespace tormet::tor {

/// Relay positions a selection can target.
enum class position { guard, middle, exit, hsdir, rendezvous };

class consensus {
 public:
  /// Builds a consensus over `relays`. Relay ids must be dense [0, n) and
  /// unique; at least one relay must be eligible for every position.
  explicit consensus(std::vector<relay> relays);

  [[nodiscard]] const std::vector<relay>& relays() const noexcept {
    return relays_;
  }
  [[nodiscard]] const relay& relay_at(relay_id id) const;
  [[nodiscard]] std::size_t size() const noexcept { return relays_.size(); }

  /// Bandwidth-weighted sample of a relay eligible for `pos`.
  [[nodiscard]] relay_id sample(position pos, rng& r) const;

  /// Probability that a single weighted selection for `pos` picks `id`
  /// (zero when the relay is not eligible).
  [[nodiscard]] double selection_probability(position pos, relay_id id) const;

  /// Combined selection probability of a set of relays for `pos` — the
  /// "fraction of observations" p used to infer network totals (§3.3).
  [[nodiscard]] double combined_probability(position pos,
                                            const std::set<relay_id>& ids) const;

  /// Total weight eligible for a position.
  [[nodiscard]] double total_weight(position pos) const;

  /// All relays eligible for `pos`, in id order.
  [[nodiscard]] std::vector<relay_id> eligible(position pos) const;

 private:
  struct position_index {
    std::vector<relay_id> ids;       // eligible relays
    std::vector<double> cumulative;  // prefix sums of weights over `ids`
    double total = 0.0;
  };

  [[nodiscard]] const position_index& index_for(position pos) const;
  [[nodiscard]] static bool eligible_for(const relay& r, position pos);

  std::vector<relay> relays_;
  position_index guard_, middle_, exit_, hsdir_, rendezvous_;
};

/// Construction parameters for a synthetic consensus shaped like Tor's
/// (power-law-ish weight distribution, realistic flag fractions).
struct consensus_params {
  std::size_t num_relays = 6500;
  double guard_fraction = 0.35;   // relays with the Guard flag
  double exit_fraction = 0.15;    // relays with the Exit flag
  double hsdir_fraction = 0.45;   // relays with the HSDir flag
  /// Pareto shape for relay weights (heavier tail = fewer big relays).
  double weight_alpha = 1.3;
  std::uint64_t seed = 42;
};

/// Builds a synthetic consensus. Deterministic given params.seed.
[[nodiscard]] consensus make_synthetic_consensus(const consensus_params& params);

}  // namespace tormet::tor
