// Hash partitioning of measurement events across DC ingest shards. A
// sharded data collector buckets each observed event by a stable per-event
// key — the client identity when the event carries one, the stream target
// or onion address otherwise — so all events of one client (or one
// circuit's streams) land on the same shard. Correctness never depends on
// the partition: counter slabs merge by commutative addition and PSC bin
// inserts are keyed per bin, so tally bytes are identical for every shard
// count. The partition only buys cache locality and future parallelism.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/tor/events.h"

namespace tormet::tor {

/// splitmix64 finalizer: a cheap, well-mixed 64->64 bijection. Client IPs
/// and variant indices are tiny integers; without mixing, `% shards` would
/// put every event in shard 0.
[[nodiscard]] constexpr std::uint64_t shard_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Stable shard key of one event: client_ip for entry events, an FNV-1a
/// hash of the target/onion address for exit-stream and HSDir events, and
/// the (variant index, observer) pair for events with no finer identity.
[[nodiscard]] std::uint64_t shard_key_of(const event& ev) noexcept;

/// Maps a key onto [0, shards) via multiply-shift on the mixed key (no
/// modulo bias, no division). shards must be >= 1.
[[nodiscard]] inline std::size_t shard_of(std::uint64_t key,
                                          std::size_t shards) noexcept {
  return static_cast<std::size_t>(
      (static_cast<unsigned __int128>(shard_mix(key)) * shards) >> 64);
}

}  // namespace tormet::tor
