// Event streaming over TCP: the same trace stream (header + records) a
// trace file holds, carried over a socket so a data collector can ingest
// live events from a separate feeder process. The receiving side listens,
// accepts exactly one feeder, and decodes incrementally with the bounded
// event_decoder; the feeding side connects (with retry, so start order
// does not matter) and streams a trace file or an in-memory event batch.
// End of stream is the feeder closing its side at a record boundary.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "src/tor/event_codec.h"
#include "src/tor/trace_file.h"

namespace tormet::tor {

/// Receiving side of one event socket. Bind/listen happens in the
/// constructor (so a feeder's connect retry can land even before the first
/// next() call); accept happens lazily on the first next().
class event_socket_source {
 public:
  /// Listens on 127.0.0.1:`port`. Throws net::transport-style
  /// precondition_error when the port cannot be bound. `timeout_ms` bounds
  /// the wait for the feeder to connect and for each recv (0 = wait
  /// forever); on expiry next() throws, so an ingesting node honors its
  /// round deadline instead of hanging when no feeder ever shows up.
  explicit event_socket_source(std::uint16_t port, int timeout_ms = 0);
  ~event_socket_source();
  event_socket_source(const event_socket_source&) = delete;
  event_socket_source& operator=(const event_socket_source&) = delete;

  /// Next event, or nullopt once the feeder closed the stream cleanly.
  /// Throws net::wire_error on corrupt input or a stream that ends
  /// mid-record.
  [[nodiscard]] std::optional<event> next();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  static constexpr std::size_t k_chunk_bytes = 64 << 10;

  int listen_fd_ = -1;
  int conn_fd_ = -1;
  std::uint16_t port_ = 0;
  int timeout_ms_ = 0;
  event_decoder decoder_;
  bool eof_ = false;
};

/// Feeder: connects to host:port (retrying until `connect_timeout_ms`
/// elapses) and streams `events` as one trace stream, then closes. Returns
/// the number of events sent. Throws on connect timeout or send failure.
std::size_t stream_events_to_socket(const std::string& host, std::uint16_t port,
                                    std::span<const event> events,
                                    int connect_timeout_ms = 10'000);

/// Feeder from a trace file: streams the file's events over the socket
/// (re-encoding through the codec, which also validates the file).
std::size_t stream_trace_to_socket(const std::string& host, std::uint16_t port,
                                   const std::string& trace_path,
                                   int connect_timeout_ms = 10'000);

}  // namespace tormet::tor
