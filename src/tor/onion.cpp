#include "src/tor/onion.h"

#include "src/crypto/sha256.h"
#include "src/util/check.h"

namespace tormet::tor {

namespace {
constexpr char k_base32_alphabet[] = "abcdefghijklmnopqrstuvwxyz234567";
constexpr std::size_t k_address_chars = 16;  // 80 bits / 5 bits per char

[[nodiscard]] std::string base32_80bits(byte_view ten_bytes) {
  // 10 bytes = 80 bits = exactly 16 base32 characters.
  std::string out;
  out.reserve(k_address_chars);
  std::uint32_t acc = 0;
  int bits = 0;
  for (const auto b : ten_bytes) {
    acc = (acc << 8) | b;
    bits += 8;
    while (bits >= 5) {
      bits -= 5;
      out.push_back(k_base32_alphabet[(acc >> bits) & 0x1f]);
    }
  }
  return out;
}
}  // namespace

onion_address derive_onion_address(byte_view public_key) {
  const crypto::sha256_digest digest = crypto::sha256(public_key);
  return {base32_80bits(byte_view{digest.data(), 10}) + ".onion"};
}

bool is_valid_onion_address(const std::string& value) {
  constexpr std::string_view suffix = ".onion";
  if (value.size() != k_address_chars + suffix.size()) return false;
  if (value.substr(k_address_chars) != suffix) return false;
  for (std::size_t i = 0; i < k_address_chars; ++i) {
    const char c = value[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '2' && c <= '7');
    if (!ok) return false;
  }
  return true;
}

std::string v3_blinded_descriptor_id(const onion_address& addr,
                                     std::int64_t period) {
  // H(domain-sep || period || address): one-way in the address and
  // unlinkable across periods — structurally what Ed25519 key blinding
  // gives real v3 services.
  crypto::sha256_hasher h;
  h.update("tormet.v3.blinded-id.v1");
  const std::uint8_t p[8] = {
      static_cast<std::uint8_t>(period),       static_cast<std::uint8_t>(period >> 8),
      static_cast<std::uint8_t>(period >> 16), static_cast<std::uint8_t>(period >> 24),
      static_cast<std::uint8_t>(period >> 32), static_cast<std::uint8_t>(period >> 40),
      static_cast<std::uint8_t>(period >> 48), static_cast<std::uint8_t>(period >> 56)};
  h.update(byte_view{p, sizeof p});
  h.update_framed(as_bytes(addr.value));
  const crypto::sha256_digest d = h.finish();
  return to_hex(byte_view{d.data(), d.size()});
}

std::uint64_t v3_blinded_ring_position(const onion_address& addr, int replica,
                                       std::int64_t period) {
  expects(replica >= 0 && replica < k_descriptor_replicas,
          "replica index out of range");
  crypto::sha256_hasher h;
  h.update("tormet.v3.ring-position.v1");
  h.update_framed(as_bytes(v3_blinded_descriptor_id(addr, period)));
  h.update(byte_view{reinterpret_cast<const std::uint8_t*>(&replica), 1});
  const crypto::sha256_digest d = h.finish();
  std::uint64_t pos = 0;
  for (int i = 0; i < 8; ++i) pos = (pos << 8) | d[static_cast<std::size_t>(i)];
  return pos;
}

std::uint64_t descriptor_ring_position(const onion_address& addr, int replica,
                                       std::int64_t period) {
  expects(replica >= 0 && replica < k_descriptor_replicas,
          "replica index out of range");
  crypto::sha256_hasher h;
  h.update("tormet.descriptor-id.v1");
  h.update_framed(as_bytes(addr.value));
  const std::uint8_t meta[9] = {
      static_cast<std::uint8_t>(replica),
      static_cast<std::uint8_t>(period), static_cast<std::uint8_t>(period >> 8),
      static_cast<std::uint8_t>(period >> 16), static_cast<std::uint8_t>(period >> 24),
      static_cast<std::uint8_t>(period >> 32), static_cast<std::uint8_t>(period >> 40),
      static_cast<std::uint8_t>(period >> 48), static_cast<std::uint8_t>(period >> 56)};
  h.update(byte_view{meta, sizeof meta});
  const crypto::sha256_digest d = h.finish();
  std::uint64_t pos = 0;
  for (int i = 0; i < 8; ++i) pos = (pos << 8) | d[static_cast<std::size_t>(i)];
  return pos;
}

}  // namespace tormet::tor
