// Text serialization of the consensus — a minimal cousin of Tor's
// cached-consensus format, so deployments can persist and share the network
// view (and tests can fixture specific topologies). Line-oriented:
//
//   tormet-consensus 1
//   relay <id> <nickname> <weight> <flags>
//   ...
//
// where <flags> is a subset string of "GEH" (Guard/Exit/HSDir), "-" if none.
#pragma once

#include <string>

#include "src/tor/consensus.h"

namespace tormet::tor {

/// Renders the consensus to the text format above.
[[nodiscard]] std::string serialize_consensus(const consensus& net);

/// Parses the text format. Throws precondition_error on malformed input
/// (unknown header, bad relay lines, non-dense ids).
[[nodiscard]] consensus parse_consensus(const std::string& text);

}  // namespace tormet::tor
