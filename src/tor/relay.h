// Relay descriptors: the per-relay data a Tor consensus carries that our
// model needs (weights, position flags, measurement membership).
#pragma once

#include <cstdint>
#include <string>

namespace tormet::tor {

using relay_id = std::uint32_t;

/// Position eligibility flags (a simplification of consensus flags: Guard,
/// Exit, HSDir).
struct relay_flags {
  bool guard = false;
  bool exit = false;
  bool hsdir = false;
};

/// One relay as listed in the consensus.
struct relay {
  relay_id id = 0;
  std::string nickname;
  /// Consensus bandwidth weight (arbitrary units; selection probability is
  /// weight divided by the position's total weight).
  double weight = 0.0;
  relay_flags flags;
};

}  // namespace tormet::tor
