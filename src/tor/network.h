// The Tor network model: clients with guard sets, circuit/stream creation,
// onion-service publish/fetch through the HSDir ring, and rendezvous —
// everything the paper's measurements observe. The model is driven by the
// workload generators (src/workload) through the primitives below; each
// primitive performs consensus-weighted relay selection and emits events at
// whichever relays observed the action.
//
// Scale: events are only materialized for relays in the observed set (the
// deployment's 16 measurement relays); all-network totals are tracked in a
// cheap ground_truth tally used to validate inference (EXPERIMENTS.md
// compares measured estimates against these true simulated values — in the
// real deployment the ground truth is of course unknown).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "src/tor/cell.h"
#include "src/tor/consensus.h"
#include "src/tor/events.h"
#include "src/tor/hsdir_ring.h"
#include "src/tor/onion.h"
#include "src/util/rng.h"
#include "src/util/sim_time.h"

namespace tormet::tor {

using client_id = std::uint32_t;
using service_id = std::uint32_t;

/// Static description of a simulated client.
struct client_profile {
  std::uint32_t ip = 0;
  std::uint32_t asn = 0;
  std::uint16_t country = 0;  // index into the workload's country table
  /// Guards this client uses (paper §5.1: 1 data guard + 2 directory guards
  /// = 3 for typical clients; promiscuous clients contact all guards).
  int num_guards = 3;
  bool promiscuous = false;
};

/// One stream to be attached to a circuit.
struct stream_spec {
  address_kind kind = address_kind::hostname;
  std::string target;           // hostname for address_kind::hostname
  std::uint16_t port = 443;
  std::uint64_t bytes = 0;      // application payload up+down
};

/// Result of a descriptor fetch.
struct fetch_result {
  fetch_outcome outcome = fetch_outcome::success;
};

/// All-network true tallies (no sampling, no noise).
struct ground_truth {
  // entry side
  std::uint64_t entry_connections = 0;
  std::uint64_t entry_circuits = 0;
  std::uint64_t entry_dir_circuits = 0;  // directory-request circuits (subset)
  std::uint64_t entry_bytes = 0;
  // exit side (stream taxonomy of Fig 1)
  std::uint64_t exit_streams_total = 0;
  std::uint64_t exit_streams_initial = 0;
  std::uint64_t initial_hostname = 0;
  std::uint64_t initial_ipv4 = 0;
  std::uint64_t initial_ipv6 = 0;
  std::uint64_t initial_hostname_web = 0;
  std::uint64_t initial_hostname_other = 0;
  std::uint64_t exit_bytes = 0;
  // onion services
  std::uint64_t descriptor_publishes = 0;
  std::uint64_t descriptor_fetches = 0;
  std::uint64_t descriptor_fetch_success = 0;
  std::uint64_t descriptor_fetch_not_found = 0;
  std::uint64_t descriptor_fetch_malformed = 0;
  // rendezvous
  std::uint64_t rend_circuits = 0;
  std::uint64_t rend_succeeded = 0;
  std::uint64_t rend_conn_closed = 0;
  std::uint64_t rend_expired = 0;
  std::uint64_t rend_payload_bytes = 0;
};

class network {
 public:
  /// Event callback: invoked for every event observed at an observed relay.
  using event_sink = std::function<void(const event&)>;

  network(consensus net, std::uint64_t seed);

  [[nodiscard]] const consensus& net() const noexcept { return consensus_; }
  [[nodiscard]] const hsdir_ring& ring() const noexcept { return ring_; }
  [[nodiscard]] const ground_truth& truth() const noexcept { return truth_; }

  /// Declares which relays are instrumented; only their events are emitted.
  void set_observed_relays(std::set<relay_id> observed);
  [[nodiscard]] const std::set<relay_id>& observed_relays() const noexcept {
    return observed_;
  }
  void set_event_sink(event_sink sink);

  // -- clients --------------------------------------------------------------
  /// Registers a client and samples its guard set (weighted, without
  /// replacement). Promiscuous clients use every guard in the consensus.
  client_id add_client(const client_profile& profile);
  [[nodiscard]] const client_profile& profile_of(client_id c) const;
  [[nodiscard]] std::span<const relay_id> guards_of(client_id c) const;
  [[nodiscard]] std::size_t client_count() const noexcept { return clients_.size(); }

  /// Client opens TCP connections: one to each of its guards (the daily
  /// reconnect behaviour is decided by the workload, which calls this the
  /// appropriate number of times).
  void connect_to_guards(client_id c, sim_time t);
  /// One TCP connection to one (uniformly chosen) guard of the client.
  void connect_once(client_id c, sim_time t);

  /// Builds a directory circuit through a random directory guard of the
  /// client and transfers `bytes` of consensus data.
  void directory_circuit(client_id c, std::uint64_t bytes, sim_time t);

  /// Builds a non-exit circuit of the given kind (chat/intro/etc.) through a
  /// random guard of the client, carrying `bytes` of payload.
  void non_exit_circuit(client_id c, circuit_kind kind, std::uint64_t bytes,
                        sim_time t);

  /// Builds a general exit circuit through the client's data guard, attaches
  /// `streams` in order (the first is the circuit's initial stream), and
  /// accounts entry/exit data. Returns the exit relay chosen.
  relay_id exit_circuit(client_id c, std::span<const stream_spec> streams,
                        sim_time t);

  // -- onion services ---------------------------------------------------------
  /// Registers an onion service; the address derives from a synthetic key.
  service_id add_onion_service();
  [[nodiscard]] const onion_address& address_of(service_id s) const;
  [[nodiscard]] std::size_t service_count() const noexcept { return services_.size(); }

  /// Publishes the service's descriptor to its 6 responsible HSDirs.
  void publish_descriptor(service_id s, std::int64_t period, sim_time t);

  /// Client fetches a descriptor by address from one responsible HSDir.
  /// `malformed` models bogus requests (they fail regardless of presence).
  fetch_result fetch_descriptor(client_id c, const onion_address& addr,
                                std::int64_t period, bool malformed, sim_time t);

  /// A rendezvous attempt at a weighted-sampled RP. Success emits two
  /// circuits at the RP (client + service side, §6.3) carrying the payload;
  /// failures emit one circuit with the failing outcome and no payload.
  void rendezvous_attempt(client_id c, rend_outcome outcome,
                          std::uint64_t payload_bytes, sim_time t);

  /// The model's internal rng (workloads may fork it for decorrelated use).
  [[nodiscard]] rng& model_rng() noexcept { return rng_; }

 private:
  struct client_state {
    client_profile profile;
    std::vector<relay_id> guards;  // guards[0] is the data guard
  };
  struct service_state {
    onion_address address;
  };

  void emit(relay_id observer, sim_time t, event_body body);
  [[nodiscard]] bool observed(relay_id id) const {
    return observed_.contains(id);
  }
  [[nodiscard]] const client_state& client_at(client_id c) const;

  consensus consensus_;
  hsdir_ring ring_;
  rng rng_;
  std::set<relay_id> observed_;
  event_sink sink_;
  std::vector<client_state> clients_;
  std::vector<service_state> services_;
  /// Descriptor store: address -> latest published period (present = active).
  std::set<std::pair<std::string, std::int64_t>> published_;
  ground_truth truth_;
};

}  // namespace tormet::tor
