// Tor cell constants (§2.1 of the paper). The unit of transport in circuits
// is the fixed-size cell: 512 bytes on the wire carrying 498 bytes of data
// after the circuit header.
#pragma once

#include <cstdint>

namespace tormet::tor {

inline constexpr std::uint64_t k_cell_total_bytes = 512;
inline constexpr std::uint64_t k_cell_payload_bytes = 498;

/// Cells needed to carry `payload_bytes` of application data.
[[nodiscard]] constexpr std::uint64_t cells_for_payload(
    std::uint64_t payload_bytes) noexcept {
  return (payload_bytes + k_cell_payload_bytes - 1) / k_cell_payload_bytes;
}

/// On-the-wire bytes (including cell overhead) for `payload_bytes` of
/// application data — the paper notes client payload is 2-3% below the
/// measured byte totals because of this overhead.
[[nodiscard]] constexpr std::uint64_t wire_bytes_for_payload(
    std::uint64_t payload_bytes) noexcept {
  return cells_for_payload(payload_bytes) * k_cell_total_bytes;
}

}  // namespace tormet::tor
