#include "src/tor/event_shard.h"

#include <string_view>

namespace tormet::tor {

namespace {

/// FNV-1a over the bytes of a string key (stream targets, onion
/// addresses). Not cryptographic — the shard partition carries no privacy
/// property; the slabs it feeds are merged before anything leaves the DC.
[[nodiscard]] std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct key_visitor {
  const event& ev;

  std::uint64_t operator()(const entry_connection_event& e) const noexcept {
    return e.client_ip;
  }
  std::uint64_t operator()(const entry_circuit_event& e) const noexcept {
    return e.client_ip;
  }
  std::uint64_t operator()(const entry_data_event& e) const noexcept {
    return e.client_ip;
  }
  std::uint64_t operator()(const exit_stream_event& e) const noexcept {
    return fnv1a(e.target);
  }
  std::uint64_t operator()(const hsdir_publish_event& e) const noexcept {
    return fnv1a(e.address.value);
  }
  std::uint64_t operator()(const hsdir_fetch_event& e) const noexcept {
    return fnv1a(e.address.value);
  }
  std::uint64_t operator()(const exit_data_event&) const noexcept {
    return anonymous();
  }
  std::uint64_t operator()(const rend_circuit_event&) const noexcept {
    return anonymous();
  }

  /// Events with no client/target identity spread by (variant, observer).
  [[nodiscard]] std::uint64_t anonymous() const noexcept {
    return (static_cast<std::uint64_t>(ev.body.index()) << 32) | ev.observer;
  }
};

}  // namespace

std::uint64_t shard_key_of(const event& ev) noexcept {
  return std::visit(key_visitor{ev}, ev.body);
}

}  // namespace tormet::tor
