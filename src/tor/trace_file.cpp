#include "src/tor/trace_file.h"

#include <chrono>
#include <thread>

#include "src/util/check.h"

namespace tormet::tor {

std::string trace_file_name(std::size_t dc_index) {
  return "dc-" + std::to_string(dc_index) + ".trace";
}

// -- trace_writer ------------------------------------------------------------

trace_writer::trace_writer(const std::string& path) : path_{path} {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw precondition_error{"cannot create trace file " + path};
  }
  append_trace_header(buf_);
}

trace_writer::~trace_writer() {
  if (file_ != nullptr) std::fclose(file_);
}

void trace_writer::write(const event& ev) {
  expects(file_ != nullptr, "trace writer is closed");
  expects(count_ == 0 || ev.at.seconds >= last_seconds_,
          "trace events must be non-decreasing in sim time");
  last_seconds_ = ev.at.seconds;
  append_event_record(buf_, ev);
  ++count_;
  if (buf_.size() >= (256 << 10)) flush_buffer();
}

void trace_writer::flush_buffer() {
  if (buf_.empty()) return;
  const std::size_t written = std::fwrite(buf_.data(), 1, buf_.size(), file_);
  if (written != buf_.size()) {
    throw precondition_error{"short write on trace file " + path_};
  }
  buf_.clear();
}

void trace_writer::close() {
  expects(file_ != nullptr, "trace writer already closed");
  flush_buffer();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) throw precondition_error{"close failed on trace file " + path_};
}

// -- trace_reader ------------------------------------------------------------

trace_reader::trace_reader(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    throw precondition_error{"cannot open trace file " + path};
  }
}

trace_reader::~trace_reader() {
  if (file_ != nullptr) std::fclose(file_);
}

std::optional<event> trace_reader::next() {
  for (;;) {
    std::optional<event> ev = decoder_.next();
    if (ev.has_value()) {
      if (saw_event_ && ev->at.seconds < last_seconds_) {
        throw net::wire_error{"trace file: timestamp regression"};
      }
      saw_event_ = true;
      last_seconds_ = ev->at.seconds;
      ++count_;
      return ev;
    }
    if (eof_) {
      if (!decoder_.at_record_boundary()) {
        throw net::wire_error{"trace file: truncated (ends mid-record)"};
      }
      return std::nullopt;
    }
    std::uint8_t chunk[k_chunk_bytes];
    const std::size_t n = std::fread(chunk, 1, sizeof chunk, file_);
    if (n == 0) {
      if (std::ferror(file_) != 0) {
        throw net::wire_error{"trace file: read error"};
      }
      eof_ = true;
      continue;
    }
    decoder_.feed(byte_view{chunk, n});
  }
}

// -- replay ------------------------------------------------------------------

std::size_t replay_events(trace_reader& reader,
                          const std::function<void(const event&)>& sink,
                          const replay_options& options) {
  using clock = std::chrono::steady_clock;
  std::size_t delivered = 0;
  std::optional<std::int64_t> first_seconds;
  const clock::time_point start = clock::now();
  while (const std::optional<event> ev = reader.next()) {
    if (options.pace > 0.0) {
      if (!first_seconds.has_value()) first_seconds = ev->at.seconds;
      const double sim_elapsed =
          static_cast<double>(ev->at.seconds - *first_seconds);
      const auto due = start + std::chrono::duration_cast<clock::duration>(
                                   std::chrono::duration<double>{
                                       sim_elapsed * options.pace});
      std::this_thread::sleep_until(due);
    }
    sink(*ev);
    ++delivered;
  }
  return delivered;
}

}  // namespace tormet::tor
