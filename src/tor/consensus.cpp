#include "src/tor/consensus.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace tormet::tor {

bool consensus::eligible_for(const relay& r, position pos) {
  switch (pos) {
    case position::guard: return r.flags.guard;
    case position::exit: return r.flags.exit;
    case position::hsdir: return r.flags.hsdir;
    case position::middle:
    case position::rendezvous:
      // Any relay can serve as a middle or rendezvous point.
      return true;
  }
  return false;
}

consensus::consensus(std::vector<relay> relays) : relays_{std::move(relays)} {
  expects(!relays_.empty(), "consensus requires at least one relay");
  for (std::size_t i = 0; i < relays_.size(); ++i) {
    expects(relays_[i].id == static_cast<relay_id>(i),
            "relay ids must be dense and in order");
    expects(relays_[i].weight >= 0.0, "relay weight must be non-negative");
  }

  const auto build = [this](position pos) {
    position_index idx;
    for (const auto& r : relays_) {
      if (!eligible_for(r, pos) || r.weight <= 0.0) continue;
      idx.ids.push_back(r.id);
      idx.total += r.weight;
      idx.cumulative.push_back(idx.total);
    }
    expects(idx.total > 0.0, "every position needs eligible weight");
    return idx;
  };
  guard_ = build(position::guard);
  middle_ = build(position::middle);
  exit_ = build(position::exit);
  hsdir_ = build(position::hsdir);
  rendezvous_ = build(position::rendezvous);
}

const relay& consensus::relay_at(relay_id id) const {
  expects(id < relays_.size(), "relay id out of range");
  return relays_[id];
}

const consensus::position_index& consensus::index_for(position pos) const {
  switch (pos) {
    case position::guard: return guard_;
    case position::middle: return middle_;
    case position::exit: return exit_;
    case position::hsdir: return hsdir_;
    case position::rendezvous: return rendezvous_;
  }
  throw precondition_error{"unknown position"};
}

relay_id consensus::sample(position pos, rng& r) const {
  const position_index& idx = index_for(pos);
  const double target = r.uniform() * idx.total;
  const auto it =
      std::upper_bound(idx.cumulative.begin(), idx.cumulative.end(), target);
  const std::size_t i = it == idx.cumulative.end()
                            ? idx.cumulative.size() - 1
                            : static_cast<std::size_t>(it - idx.cumulative.begin());
  return idx.ids[i];
}

double consensus::selection_probability(position pos, relay_id id) const {
  const relay& r = relay_at(id);
  if (!eligible_for(r, pos) || r.weight <= 0.0) return 0.0;
  return r.weight / index_for(pos).total;
}

double consensus::combined_probability(position pos,
                                       const std::set<relay_id>& ids) const {
  double p = 0.0;
  for (const auto id : ids) p += selection_probability(pos, id);
  return p;
}

double consensus::total_weight(position pos) const {
  return index_for(pos).total;
}

std::vector<relay_id> consensus::eligible(position pos) const {
  return index_for(pos).ids;
}

consensus make_synthetic_consensus(const consensus_params& params) {
  expects(params.num_relays >= 4, "need at least a handful of relays");
  rng r{params.seed};
  std::vector<relay> relays;
  relays.reserve(params.num_relays);
  for (std::size_t i = 0; i < params.num_relays; ++i) {
    relay rel;
    rel.id = static_cast<relay_id>(i);
    rel.nickname = "relay" + std::to_string(i);
    // Pareto(alpha) weights, truncated: matches Tor's heavy-tailed capacity
    // distribution (few fast relays carry much of the traffic).
    const double u = std::max(r.uniform(), 1e-12);
    rel.weight = std::min(std::pow(u, -1.0 / params.weight_alpha), 1e4);
    rel.flags.guard = r.bernoulli(params.guard_fraction);
    rel.flags.exit = r.bernoulli(params.exit_fraction);
    rel.flags.hsdir = r.bernoulli(params.hsdir_fraction);
    relays.push_back(std::move(rel));
  }
  // Guarantee position coverage even for tiny consensuses.
  relays[0].flags.guard = true;
  relays[1].flags.exit = true;
  relays[2].flags.hsdir = true;
  return consensus{std::move(relays)};
}

}  // namespace tormet::tor
