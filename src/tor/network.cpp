#include "src/tor/network.h"

#include <algorithm>

#include "src/crypto/sha256.h"
#include "src/util/check.h"

namespace tormet::tor {

network::network(consensus net, std::uint64_t seed)
    : consensus_{std::move(net)}, ring_{consensus_}, rng_{seed} {}

void network::set_observed_relays(std::set<relay_id> observed) {
  for (const auto id : observed) {
    expects(id < consensus_.size(), "observed relay id out of range");
  }
  observed_ = std::move(observed);
}

void network::set_event_sink(event_sink sink) { sink_ = std::move(sink); }

void network::emit(relay_id observer, sim_time t, event_body body) {
  if (sink_ == nullptr || !observed(observer)) return;
  sink_(event{observer, t, std::move(body)});
}

const network::client_state& network::client_at(client_id c) const {
  expects(c < clients_.size(), "client id out of range");
  return clients_[c];
}

client_id network::add_client(const client_profile& profile) {
  expects(profile.num_guards >= 1, "clients need at least one guard");
  client_state state;
  state.profile = profile;
  if (profile.promiscuous) {
    state.guards = consensus_.eligible(position::guard);
  } else {
    // Weighted sampling without replacement (rejection; guard counts are
    // tiny relative to the consensus, so retries are rare).
    while (state.guards.size() < static_cast<std::size_t>(profile.num_guards)) {
      const relay_id g = consensus_.sample(position::guard, rng_);
      if (std::find(state.guards.begin(), state.guards.end(), g) ==
          state.guards.end()) {
        state.guards.push_back(g);
      }
    }
  }
  clients_.push_back(std::move(state));
  return static_cast<client_id>(clients_.size() - 1);
}

const client_profile& network::profile_of(client_id c) const {
  return client_at(c).profile;
}

std::span<const relay_id> network::guards_of(client_id c) const {
  return client_at(c).guards;
}

void network::connect_to_guards(client_id c, sim_time t) {
  const client_state& state = client_at(c);
  for (const relay_id g : state.guards) {
    ++truth_.entry_connections;
    emit(g, t, entry_connection_event{state.profile.ip});
  }
}

void network::connect_once(client_id c, sim_time t) {
  const client_state& state = client_at(c);
  const std::size_t i = static_cast<std::size_t>(rng_.below(state.guards.size()));
  ++truth_.entry_connections;
  emit(state.guards[i], t, entry_connection_event{state.profile.ip});
}

void network::directory_circuit(client_id c, std::uint64_t bytes, sim_time t) {
  non_exit_circuit(c, circuit_kind::directory, bytes, t);
}

void network::non_exit_circuit(client_id c, circuit_kind kind,
                               std::uint64_t bytes, sim_time t) {
  const client_state& state = client_at(c);
  // Non-exit circuits go through any of the client's guards (directory
  // circuits use up to 3 dir guards; promiscuous clients spread over all).
  const std::size_t i = static_cast<std::size_t>(rng_.below(state.guards.size()));
  const relay_id g = state.guards[i];
  ++truth_.entry_circuits;
  if (kind == circuit_kind::directory) ++truth_.entry_dir_circuits;
  emit(g, t, entry_circuit_event{state.profile.ip, kind});
  if (bytes > 0) {
    const std::uint64_t wire = wire_bytes_for_payload(bytes);
    truth_.entry_bytes += wire;
    emit(g, t, entry_data_event{state.profile.ip, wire});
  }
}

relay_id network::exit_circuit(client_id c, std::span<const stream_spec> streams,
                               sim_time t) {
  const client_state& state = client_at(c);
  const relay_id guard = state.guards[0];  // all user data uses the data guard
  const relay_id exit = consensus_.sample(position::exit, rng_);

  ++truth_.entry_circuits;
  emit(guard, t, entry_circuit_event{state.profile.ip, circuit_kind::general});

  std::uint64_t circuit_payload = 0;
  bool first = true;
  for (const auto& s : streams) {
    ++truth_.exit_streams_total;
    if (first) {
      ++truth_.exit_streams_initial;
      switch (s.kind) {
        case address_kind::hostname:
          ++truth_.initial_hostname;
          if (s.port == 80 || s.port == 443) {
            ++truth_.initial_hostname_web;
          } else {
            ++truth_.initial_hostname_other;
          }
          break;
        case address_kind::ipv4: ++truth_.initial_ipv4; break;
        case address_kind::ipv6: ++truth_.initial_ipv6; break;
      }
    }
    emit(exit, t, exit_stream_event{s.kind, first, s.port, s.target});
    truth_.exit_bytes += s.bytes;
    emit(exit, t, exit_data_event{s.bytes});
    circuit_payload += s.bytes;
    first = false;
  }

  const std::uint64_t wire = wire_bytes_for_payload(circuit_payload);
  truth_.entry_bytes += wire;
  emit(guard, t, entry_data_event{state.profile.ip, wire});
  return exit;
}

service_id network::add_onion_service() {
  // Synthesize a distinct "public key" per service; the address derives
  // from it exactly as v2 addresses derive from real keys.
  const std::string key_material =
      "tormet.service.key." + std::to_string(services_.size());
  service_state state;
  state.address = derive_onion_address(as_bytes(key_material));
  services_.push_back(std::move(state));
  return static_cast<service_id>(services_.size() - 1);
}

const onion_address& network::address_of(service_id s) const {
  expects(s < services_.size(), "service id out of range");
  return services_[s].address;
}

void network::publish_descriptor(service_id s, std::int64_t period, sim_time t) {
  const onion_address& addr = address_of(s);
  published_.insert({addr.value, period});
  for (const relay_id dir : ring_.responsible_hsdirs(addr, period)) {
    ++truth_.descriptor_publishes;
    emit(dir, t, hsdir_publish_event{addr});
  }
}

fetch_result network::fetch_descriptor(client_id c, const onion_address& addr,
                                       std::int64_t period, bool malformed,
                                       sim_time t) {
  // The fetch rides an hsdir circuit through the client's guard; only the
  // guard learns the client IP, only the HSDir sees the request.
  non_exit_circuit(c, circuit_kind::hsdir, 2048, t);
  const std::vector<relay_id> dirs = ring_.responsible_hsdirs(addr, period);
  const relay_id dir = dirs[static_cast<std::size_t>(rng_.below(dirs.size()))];

  fetch_result result;
  ++truth_.descriptor_fetches;
  if (malformed) {
    result.outcome = fetch_outcome::malformed;
    ++truth_.descriptor_fetch_malformed;
    // Malformed requests carry no (valid) address.
    emit(dir, t, hsdir_fetch_event{onion_address{}, fetch_outcome::malformed});
    return result;
  }
  if (published_.contains({addr.value, period})) {
    result.outcome = fetch_outcome::success;
    ++truth_.descriptor_fetch_success;
  } else {
    result.outcome = fetch_outcome::not_found;
    ++truth_.descriptor_fetch_not_found;
  }
  emit(dir, t, hsdir_fetch_event{addr, result.outcome});
  return result;
}

void network::rendezvous_attempt(client_id c, rend_outcome outcome,
                                 std::uint64_t payload_bytes, sim_time t) {
  // Client-side rendezvous circuit passes through the client's guard. (The
  // service side's guard events are omitted — entry totals are dominated by
  // client traffic and the RP measurements are position-local.)
  non_exit_circuit(c, circuit_kind::rendezvous, payload_bytes, t);
  const relay_id rp = consensus_.sample(position::rendezvous, rng_);
  if (outcome == rend_outcome::succeeded) {
    // A successful rendezvous is two circuits at the RP (§6.3); payload
    // cells traverse both (the same cells are relayed in and out).
    const std::uint64_t cells = cells_for_payload(payload_bytes);
    truth_.rend_circuits += 2;
    truth_.rend_succeeded += 2;
    truth_.rend_payload_bytes += 2 * payload_bytes;
    emit(rp, t, rend_circuit_event{outcome, cells});
    emit(rp, t, rend_circuit_event{outcome, cells});
    return;
  }
  ++truth_.rend_circuits;
  if (outcome == rend_outcome::failed_conn_closed) {
    ++truth_.rend_conn_closed;
  } else {
    ++truth_.rend_expired;
  }
  emit(rp, t, rend_circuit_event{outcome, 0});
}

}  // namespace tormet::tor
