// Event-trace files: streaming reader/writer over the event_codec record
// format. A trace file is one trace stream (header + records) whose events
// are non-decreasing in sim time — the writer enforces the ordering, the
// reader validates it, and replay_events() can pace delivery against the
// timestamps (sim-time pacing). Reading is incremental with a bounded
// buffer (fixed-size file chunks feeding an event_decoder), so multi-GB
// traces never need to fit in memory.
#pragma once

#include <cstdio>
#include <functional>
#include <optional>
#include <string>

#include "src/tor/event_codec.h"

namespace tormet::tor {

/// Canonical per-DC trace file name inside a trace directory: the
/// orchestration layer maps DC index k to "<dir>/dc-<k>.trace".
[[nodiscard]] std::string trace_file_name(std::size_t dc_index);

class trace_writer {
 public:
  /// Opens `path` (truncating) and writes the stream header. Throws
  /// precondition_error when the file cannot be created.
  explicit trace_writer(const std::string& path);
  ~trace_writer();
  trace_writer(const trace_writer&) = delete;
  trace_writer& operator=(const trace_writer&) = delete;

  /// Appends one record. Events must arrive in non-decreasing sim time
  /// (throws precondition_error otherwise — trace order is part of the
  /// format contract).
  void write(const event& ev);

  /// Flushes and closes; throws precondition_error on a short write. The
  /// destructor closes silently for the unwind path.
  void close();

  [[nodiscard]] std::size_t events_written() const noexcept { return count_; }

 private:
  void flush_buffer();

  std::FILE* file_ = nullptr;
  std::string path_;
  byte_buffer buf_;
  std::size_t count_ = 0;
  std::int64_t last_seconds_ = 0;
};

class trace_reader {
 public:
  /// Opens `path`. Throws precondition_error when the file cannot be read.
  explicit trace_reader(const std::string& path);
  ~trace_reader();
  trace_reader(const trace_reader&) = delete;
  trace_reader& operator=(const trace_reader&) = delete;

  /// Next event, or nullopt at clean end of stream. Throws net::wire_error
  /// on corrupt records, a timestamp regression, or a file that ends inside
  /// a record (truncation).
  [[nodiscard]] std::optional<event> next();

  [[nodiscard]] std::size_t events_read() const noexcept { return count_; }

 private:
  static constexpr std::size_t k_chunk_bytes = 64 << 10;

  std::FILE* file_ = nullptr;
  event_decoder decoder_;
  bool eof_ = false;
  std::size_t count_ = 0;
  bool saw_event_ = false;
  std::int64_t last_seconds_ = 0;
};

/// Sim-time pacing for replay: `pace` is wall-clock seconds slept per
/// simulated second (0 = replay as fast as possible). Pacing follows the
/// gap to the trace's first event, so a trace starting at hour 12 does not
/// stall for 12 simulated hours.
struct replay_options {
  double pace = 0.0;
};

/// Streams every event of `reader` into `sink`, pacing per `options`.
/// Returns the number of events delivered.
std::size_t replay_events(trace_reader& reader,
                          const std::function<void(const event&)>& sink,
                          const replay_options& options = {});

}  // namespace tormet::tor
