#include "src/tor/trace_socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/util/check.h"

namespace tormet::tor {

namespace {

[[nodiscard]] sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

void send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw precondition_error{"event socket: send failed"};
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Connects to host:port, retrying until the deadline (feeder and receiver
/// may start in either order).
[[nodiscard]] int connect_with_retry(const std::string& host,
                                     std::uint16_t port, int timeout_ms) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::milliseconds{timeout_ms};
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    expects(fd >= 0, "event socket: socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      throw precondition_error{"event socket: bad host " + host};
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      return fd;
    }
    ::close(fd);
    if (clock::now() >= deadline) {
      throw precondition_error{"event socket: connect to " + host + ":" +
                               std::to_string(port) + " timed out"};
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
  }
}

}  // namespace

event_socket_source::event_socket_source(std::uint16_t port, int timeout_ms)
    : port_{port}, timeout_ms_{timeout_ms} {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  expects(listen_fd_ >= 0, "event socket: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  const sockaddr_in addr = loopback_addr(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 1) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw precondition_error{"event socket: cannot listen on port " +
                             std::to_string(port)};
  }
}

event_socket_source::~event_socket_source() {
  if (conn_fd_ >= 0) ::close(conn_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::optional<event> event_socket_source::next() {
  if (conn_fd_ < 0) {
    if (timeout_ms_ > 0) {
      pollfd waiter{listen_fd_, POLLIN, 0};
      const int ready = ::poll(&waiter, 1, timeout_ms_);
      if (ready <= 0) {
        throw precondition_error{
            "event socket: no feeder connected to port " +
            std::to_string(port_) + " within " + std::to_string(timeout_ms_) +
            " ms"};
      }
    }
    conn_fd_ = ::accept(listen_fd_, nullptr, nullptr);
    expects(conn_fd_ >= 0, "event socket: accept failed");
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (timeout_ms_ > 0) {
      timeval tv{};
      tv.tv_sec = timeout_ms_ / 1000;
      tv.tv_usec = (timeout_ms_ % 1000) * 1000;
      ::setsockopt(conn_fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    }
  }
  for (;;) {
    std::optional<event> ev = decoder_.next();
    if (ev.has_value()) return ev;
    if (eof_) {
      if (!decoder_.at_record_boundary()) {
        throw net::wire_error{"event socket: stream ended mid-record"};
      }
      return std::nullopt;
    }
    std::uint8_t chunk[k_chunk_bytes];
    const ssize_t n = ::recv(conn_fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw net::wire_error{"event socket: feeder stalled beyond " +
                              std::to_string(timeout_ms_) + " ms"};
      }
      throw net::wire_error{"event socket: recv failed"};
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    decoder_.feed(byte_view{chunk, static_cast<std::size_t>(n)});
  }
}

std::size_t stream_events_to_socket(const std::string& host, std::uint16_t port,
                                    std::span<const event> events,
                                    int connect_timeout_ms) {
  const int fd = connect_with_retry(host, port, connect_timeout_ms);
  try {
    byte_buffer buf;
    append_trace_header(buf);
    for (const event& ev : events) {
      append_event_record(buf, ev);
      if (buf.size() >= (256 << 10)) {
        send_all(fd, buf.data(), buf.size());
        buf.clear();
      }
    }
    send_all(fd, buf.data(), buf.size());
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return events.size();
}

std::size_t stream_trace_to_socket(const std::string& host, std::uint16_t port,
                                   const std::string& trace_path,
                                   int connect_timeout_ms) {
  trace_reader reader{trace_path};
  const int fd = connect_with_retry(host, port, connect_timeout_ms);
  std::size_t sent = 0;
  try {
    byte_buffer buf;
    append_trace_header(buf);
    while (const std::optional<event> ev = reader.next()) {
      append_event_record(buf, *ev);
      ++sent;
      if (buf.size() >= (256 << 10)) {
        send_all(fd, buf.data(), buf.size());
        buf.clear();
      }
    }
    send_all(fd, buf.data(), buf.size());
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return sent;
}

}  // namespace tormet::tor
