// The onion-service directory hash ring (the DHT of §2.1). HSDir-flagged
// relays occupy ring positions derived from their identity; a descriptor is
// stored on the `k_descriptor_spread` relays clockwise of each replica's
// descriptor-ID position. Responsibility fractions drive the Table 6
// publish/fetch extrapolation.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "src/tor/consensus.h"
#include "src/tor/onion.h"

namespace tormet::tor {

class hsdir_ring {
 public:
  /// Indexes the HSDir-flagged relays of `net` by ring position.
  explicit hsdir_ring(const consensus& net);

  /// The 6 relays responsible for `addr` in `period` (2 replicas x spread 3;
  /// duplicates collapse when replicas land close together, matching Tor).
  [[nodiscard]] std::vector<relay_id> responsible_hsdirs(
      const onion_address& addr, std::int64_t period) const;

  /// Fraction of (address, replica) slots a relay set is responsible for —
  /// estimated by uniform sampling of the ring (ring positions are hashes,
  /// so this converges fast). Since clients fetch from ONE of an address's
  /// responsible directories, this is also the probability a fetch lands on
  /// the set — the paper's "HSDir fetch weight" (Table 6).
  [[nodiscard]] double responsibility_fraction(const std::set<relay_id>& ids,
                                               std::int64_t period,
                                               std::size_t samples = 20000) const;

  /// Probability that a *published* address is observed by the set: the
  /// descriptor goes to all ~6 responsible directories, so this is the
  /// fraction of addresses with at least one responsible directory in the
  /// set — the paper's "HSDir publish weight".
  [[nodiscard]] double publish_observation_probability(
      const std::set<relay_id>& ids, std::int64_t period,
      std::size_t samples = 20000) const;

  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }

 private:
  struct entry {
    std::uint64_t position;
    relay_id id;
  };
  [[nodiscard]] std::size_t first_at_or_after(std::uint64_t position) const;

  std::vector<entry> positions_;  // sorted by position
};

}  // namespace tormet::tor
