// Onion-service addressing and v2 descriptors (§2.1, §6 of the paper).
//
// A v2 onion address is derived from the service's public key: the first 10
// bytes of SHA-1(pubkey) in base32 (we substitute SHA-256, which only
// changes the hash function, not the structure). Descriptor IDs place the
// descriptor on the HSDir hash ring per replica and time period — the
// property the measurements rely on (replication factor determines the
// publish/fetch extrapolation in Table 6).
#pragma once

#include <cstdint>
#include <string>

#include "src/util/bytes.h"

namespace tormet::tor {

/// A v2 onion address ("<16 base32 chars>.onion").
struct onion_address {
  std::string value;

  friend bool operator==(const onion_address&, const onion_address&) = default;
  friend auto operator<=>(const onion_address&, const onion_address&) = default;
};

/// Derives the v2-style address from a service public key.
[[nodiscard]] onion_address derive_onion_address(byte_view public_key);

/// True when `value` parses as a well-formed v2 onion address.
[[nodiscard]] bool is_valid_onion_address(const std::string& value);

/// Number of descriptor replicas (v2 uses 2 replicas...).
inline constexpr int k_descriptor_replicas = 2;
/// ...each stored on a spread of 3 consecutive ring positions = 6 HSDirs
/// (the paper: "six or eight relays depending on Tor version"; we model 6).
inline constexpr int k_descriptor_spread = 3;
inline constexpr int k_responsible_hsdirs =
    k_descriptor_replicas * k_descriptor_spread;

/// Ring position of a descriptor: H(address || replica || period).
[[nodiscard]] std::uint64_t descriptor_ring_position(const onion_address& addr,
                                                     int replica,
                                                     std::int64_t period);

/// A published v2 descriptor (the fields our measurements observe).
struct onion_descriptor {
  onion_address address;
  std::int64_t time_period = 0;  // descriptor validity period index
};

// -- v3 extension -------------------------------------------------------------
// Version 3 onion services (rend-spec-v3) publish descriptors under a
// *blinded* key derived from the identity key and the time period. An HSDir
// observes only the blinded ID: it cannot recover the onion address, and
// the same service yields unlinkable IDs in different periods. This is why
// the paper's Table 6 measures v2 only ("we don't measure v3 ... because
// the onion address is obscured using key blinding") — counting unique
// blinded IDs across periods counts each service once *per period*.
// We model the blinding as a one-way keyed derivation with the same
// unlinkability structure.

/// The blinded descriptor identifier a v3 HSDir stores for `addr` in
/// `period` (hex string; one-way, period-dependent).
[[nodiscard]] std::string v3_blinded_descriptor_id(const onion_address& addr,
                                                   std::int64_t period);

/// v3 ring position for a replica of a blinded descriptor.
[[nodiscard]] std::uint64_t v3_blinded_ring_position(const onion_address& addr,
                                                     int replica,
                                                     std::int64_t period);

}  // namespace tormet::tor
