#include "src/tor/hsdir_ring.h"

#include <algorithm>

#include "src/crypto/sha256.h"
#include "src/util/check.h"

namespace tormet::tor {

namespace {
[[nodiscard]] std::uint64_t relay_ring_position(const relay& r) {
  crypto::sha256_hasher h;
  h.update("tormet.hsdir-ring.relay.v1");
  h.update_framed(as_bytes(r.nickname));
  const crypto::sha256_digest d = h.finish();
  std::uint64_t pos = 0;
  for (int i = 0; i < 8; ++i) pos = (pos << 8) | d[static_cast<std::size_t>(i)];
  return pos;
}
}  // namespace

hsdir_ring::hsdir_ring(const consensus& net) {
  for (const auto& r : net.relays()) {
    if (!r.flags.hsdir) continue;
    positions_.push_back({relay_ring_position(r), r.id});
  }
  expects(positions_.size() >= k_responsible_hsdirs,
          "ring needs at least 6 HSDirs");
  std::sort(positions_.begin(), positions_.end(),
            [](const entry& a, const entry& b) { return a.position < b.position; });
}

std::size_t hsdir_ring::first_at_or_after(std::uint64_t position) const {
  const auto it = std::lower_bound(
      positions_.begin(), positions_.end(), position,
      [](const entry& e, std::uint64_t p) { return e.position < p; });
  if (it == positions_.end()) return 0;  // wrap around the ring
  return static_cast<std::size_t>(it - positions_.begin());
}

std::vector<relay_id> hsdir_ring::responsible_hsdirs(const onion_address& addr,
                                                     std::int64_t period) const {
  std::vector<relay_id> out;
  out.reserve(k_responsible_hsdirs);
  for (int replica = 0; replica < k_descriptor_replicas; ++replica) {
    const std::uint64_t target = descriptor_ring_position(addr, replica, period);
    std::size_t idx = first_at_or_after(target);
    for (int s = 0; s < k_descriptor_spread; ++s) {
      const relay_id id = positions_[idx].id;
      // Collapse duplicates across replicas (ring wrap / close replicas),
      // as Tor does: a relay stores one copy.
      if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
      idx = (idx + 1) % positions_.size();
    }
  }
  return out;
}

double hsdir_ring::publish_observation_probability(const std::set<relay_id>& ids,
                                                   std::int64_t period,
                                                   std::size_t samples) const {
  expects(samples > 0, "need at least one sample");
  std::size_t observed = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const onion_address addr{"pubsample" + std::to_string(i) + ".onion"};
    for (const relay_id id : responsible_hsdirs(addr, period)) {
      if (ids.contains(id)) {
        ++observed;
        break;
      }
    }
  }
  return static_cast<double>(observed) / static_cast<double>(samples);
}

double hsdir_ring::responsibility_fraction(const std::set<relay_id>& ids,
                                           std::int64_t period,
                                           std::size_t samples) const {
  expects(samples > 0, "need at least one sample");
  // Sample synthetic addresses; measure the share of (address, replica)
  // slots owned by `ids`. Each address has k_responsible_hsdirs slots.
  std::size_t owned = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const onion_address addr{"sample" + std::to_string(i) + ".onion"};
    for (const relay_id id : responsible_hsdirs(addr, period)) {
      ++total;
      if (ids.contains(id)) ++owned;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(owned) / static_cast<double>(total);
}

}  // namespace tormet::tor
