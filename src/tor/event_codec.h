// Binary (de)serialization for tor::event — the wire/disk format that lets
// measurement events cross process boundaries. One encoded *record* is a
// varint length prefix followed by the event payload (observer, timestamp,
// body tag, body fields); a *trace stream* is an 8-byte versioned header
// followed by records. The same byte format serves trace files
// (src/tor/trace_file.h) and TCP event sockets (src/tor/trace_socket.h):
// anything that can deliver bytes can deliver events.
//
// Decoding is fuzz-tolerant by construction: every primitive read is
// bounds-checked through net::wire_reader, record lengths are capped at
// k_max_event_record_bytes, enum fields are range-validated, and trailing
// payload bytes are rejected — malformed input raises net::wire_error, it
// never crashes or reads out of bounds (tests/event_codec_test.cpp fuzzes
// this). See docs/EVENTS.md for the full format specification.
#pragma once

#include <cstddef>
#include <optional>

#include "src/net/wire.h"
#include "src/tor/events.h"
#include "src/util/bytes.h"

namespace tormet::tor {

/// Trace stream header: magic "TMTRACE" + one version byte. Bump the
/// version on any incompatible record-format change.
inline constexpr std::uint8_t k_trace_version = 1;
inline constexpr std::size_t k_trace_header_bytes = 8;

/// Upper bound on one encoded event payload (generous: the largest field is
/// an exit-stream hostname). Decoders reject larger length prefixes before
/// buffering, so a corrupt length cannot cause an unbounded allocation.
inline constexpr std::size_t k_max_event_record_bytes = 1 << 16;

/// Appends the 8-byte stream header to `out`.
void append_trace_header(byte_buffer& out);

/// Encodes the event payload (no length prefix) into `out`.
void encode_event(net::wire_writer& out, const event& ev);

/// Decodes one event payload and requires the reader to be fully consumed.
/// Throws net::wire_error on truncation, unknown body tags, out-of-range
/// enum values, or trailing bytes.
[[nodiscard]] event decode_event(net::wire_reader& in);

/// Appends one length-prefixed record (varint payload length + payload).
void append_event_record(byte_buffer& out, const event& ev);

/// Incremental record decoder: feed() arbitrary byte chunks (file blocks,
/// socket reads), pop events with next(). The buffer is compacted as
/// records complete, so memory stays bounded by the chunk size plus one
/// partial record. Expects the stream header first.
class event_decoder {
 public:
  void feed(byte_view chunk);

  /// Next complete event, or nullopt when more bytes are needed. Throws
  /// net::wire_error on a malformed header, oversized record, or corrupt
  /// payload.
  [[nodiscard]] std::optional<event> next();

  /// True when every fed byte has been consumed — the only clean place for
  /// a stream to end. A partial record at EOF is a truncation error.
  [[nodiscard]] bool at_record_boundary() const noexcept {
    return pos_ == buf_.size() && saw_header_;
  }
  /// True once the stream header has been consumed and validated.
  [[nodiscard]] bool saw_header() const noexcept { return saw_header_; }

 private:
  byte_buffer buf_;
  std::size_t pos_ = 0;
  bool saw_header_ = false;
};

}  // namespace tormet::tor
