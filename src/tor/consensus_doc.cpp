#include "src/tor/consensus_doc.h"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace tormet::tor {

namespace {
constexpr std::string_view k_header = "tormet-consensus 1";

[[nodiscard]] std::string flags_to_string(const relay_flags& flags) {
  std::string out;
  if (flags.guard) out.push_back('G');
  if (flags.exit) out.push_back('E');
  if (flags.hsdir) out.push_back('H');
  return out.empty() ? "-" : out;
}

[[nodiscard]] relay_flags flags_from_string(std::string_view s) {
  relay_flags flags;
  if (s == "-") return flags;
  for (const char c : s) {
    switch (c) {
      case 'G': flags.guard = true; break;
      case 'E': flags.exit = true; break;
      case 'H': flags.hsdir = true; break;
      default:
        throw precondition_error{"unknown relay flag in consensus document"};
    }
  }
  return flags;
}
}  // namespace

std::string serialize_consensus(const consensus& net) {
  std::ostringstream out;
  out << k_header << '\n';
  for (const relay& r : net.relays()) {
    char weight[32];
    std::snprintf(weight, sizeof weight, "%.6f", r.weight);
    out << "relay " << r.id << ' ' << r.nickname << ' ' << weight << ' '
        << flags_to_string(r.flags) << '\n';
  }
  return out.str();
}

consensus parse_consensus(const std::string& text) {
  std::istringstream in{text};
  std::string line;
  expects(std::getline(in, line) && line == k_header,
          "missing or unsupported consensus header");

  std::vector<relay> relays;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields{line};
    std::string keyword;
    fields >> keyword;
    expects(keyword == "relay", "unknown keyword in consensus document");
    relay r;
    std::string flags;
    fields >> r.id >> r.nickname >> r.weight >> flags;
    expects(!fields.fail(), "malformed relay line");
    expects(r.id == relays.size(), "relay ids must be dense and in order");
    expects(r.weight >= 0.0, "negative relay weight");
    r.flags = flags_from_string(flags);
    relays.push_back(std::move(r));
  }
  return consensus{std::move(relays)};
}

}  // namespace tormet::tor
