// PrivCount-style measurement events. The enhanced Tor of the paper emits
// typed events to its data collector whenever an observable action happens
// at an instrumented relay; this header is that event vocabulary. Every
// measurement in §4-§6 is a function over these events.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "src/tor/onion.h"
#include "src/tor/relay.h"
#include "src/util/sim_time.h"

namespace tormet::tor {

/// How a client named its stream target (Fig 1b).
enum class address_kind : std::uint8_t { hostname, ipv4, ipv6 };

/// Outcome of an HSDir descriptor fetch (Table 7): the descriptor was
/// served, was absent from the directory's cache, or the request itself was
/// malformed.
enum class fetch_outcome : std::uint8_t { success, not_found, malformed };

/// Outcome of a rendezvous circuit at the RP (Table 8).
enum class rend_outcome : std::uint8_t {
  succeeded,           // carried >= 1 application payload cell
  failed_conn_closed,  // connection closed before the service completed
  failed_expired,      // circuit timed out before the service completed
};

/// Circuit purpose as visible at the entry guard.
enum class circuit_kind : std::uint8_t { general, directory, hsdir, intro, rendezvous };

// -- event bodies -----------------------------------------------------------

/// A TCP connection from a client IP arrived at a guard.
struct entry_connection_event {
  std::uint32_t client_ip = 0;
};

/// A circuit was created through a guard.
struct entry_circuit_event {
  std::uint32_t client_ip = 0;
  circuit_kind kind = circuit_kind::general;
};

/// Bytes relayed for a client at the entry position (cell overhead included).
struct entry_data_event {
  std::uint32_t client_ip = 0;
  std::uint64_t bytes = 0;
};

/// A stream was attached at an exit relay.
struct exit_stream_event {
  address_kind kind = address_kind::hostname;
  bool is_initial = false;   // first stream of its circuit (§4.1)
  std::uint16_t port = 443;
  std::string target;        // hostname (or textual IP for ipv4/ipv6 kinds)
};

/// Bytes relayed on exit streams.
struct exit_data_event {
  std::uint64_t bytes = 0;
};

/// A v2 descriptor was published to this HSDir.
struct hsdir_publish_event {
  onion_address address;
};

/// A v2 descriptor fetch was attempted at this HSDir.
struct hsdir_fetch_event {
  onion_address address;  // empty for malformed requests
  fetch_outcome outcome = fetch_outcome::success;
};

/// A rendezvous circuit terminated at this RP.
struct rend_circuit_event {
  rend_outcome outcome = rend_outcome::succeeded;
  std::uint64_t payload_cells = 0;
};

using event_body =
    std::variant<entry_connection_event, entry_circuit_event, entry_data_event,
                 exit_stream_event, exit_data_event, hsdir_publish_event,
                 hsdir_fetch_event, rend_circuit_event>;

/// One observed action: which relay saw it, when, and what it was.
struct event {
  relay_id observer = 0;
  sim_time at;
  event_body body;
};

}  // namespace tormet::tor
