// Additive secret sharing over Z_{2^64} — the blinding scheme PrivCount uses
// to split a data collector's counter among share keepers. The natural
// wraparound of unsigned 64-bit arithmetic *is* the modular reduction.
#pragma once

#include <cstdint>
#include <vector>

#include "src/crypto/secure_rng.h"

namespace tormet::crypto {

/// Splits `value` into `n` additive shares: shares sum to `value` mod 2^64.
/// Every proper subset of shares is uniformly random (information-
/// theoretically hiding). n must be >= 1.
[[nodiscard]] std::vector<std::uint64_t> additive_shares(std::uint64_t value,
                                                         std::size_t n,
                                                         secure_rng& rng);

/// Recombines shares: sum mod 2^64.
[[nodiscard]] std::uint64_t combine_shares(std::span<const std::uint64_t> shares) noexcept;

/// Maps a mod-2^64 aggregate back to a signed count. PrivCount counters hold
/// count + noise, both small relative to 2^63, so values in the top half of
/// the ring are negative results (noise can push small counts below zero).
[[nodiscard]] std::int64_t to_signed_count(std::uint64_t ring_value) noexcept;

}  // namespace tormet::crypto
