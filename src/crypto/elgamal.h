// ElGamal over an abstract group, written additively:
//   Enc(Y, M; r) = (r·G, M + r·Y)
// with public key Y, generator G, message element M. Supports the
// operations PSC needs:
//   * homomorphic combination: Enc(M1) ⊕ Enc(M2) = Enc(M1 + M2)
//   * rerandomization:        Enc(M; r) → Enc(M; r + r') (same plaintext)
//   * distributed decryption: parties holding shares x_i of x = Σ x_i
//     (Y = Σ x_i·G) each strip their share; the final B component is M.
#pragma once

#include <memory>
#include <vector>

#include "src/crypto/group.h"
#include "src/crypto/secure_rng.h"

namespace tormet::crypto {

/// An ElGamal ciphertext (pair of group elements).
struct elgamal_ciphertext {
  group_element a;  // r·G
  group_element b;  // M + r·Y
};

/// A private/public keypair (or one party's share of a distributed key).
struct elgamal_keypair {
  scalar secret;
  group_element pub;
};

/// Stateless ElGamal operations bound to one group instance.
class elgamal {
 public:
  explicit elgamal(std::shared_ptr<const group> g);

  [[nodiscard]] const group& grp() const noexcept { return *group_; }
  [[nodiscard]] std::shared_ptr<const group> group_ptr() const noexcept {
    return group_;
  }

  /// Generates a fresh keypair.
  [[nodiscard]] elgamal_keypair generate_keypair(secure_rng& rng) const;

  /// Combines public-key shares into the joint key Y = Σ Y_i.
  [[nodiscard]] group_element combine_public_keys(
      std::span<const group_element> shares) const;

  /// Encrypts message element `m` under public key `pub`.
  [[nodiscard]] elgamal_ciphertext encrypt(const group_element& pub,
                                           const group_element& m,
                                           secure_rng& rng) const;

  /// Encrypts the identity (PSC's "bit = 0").
  [[nodiscard]] elgamal_ciphertext encrypt_zero(const group_element& pub,
                                                secure_rng& rng) const;

  /// Encrypts a uniformly random non-identity element (PSC's "bit = 1";
  /// sums of such messages are non-identity except with negligible
  /// probability).
  [[nodiscard]] elgamal_ciphertext encrypt_one(const group_element& pub,
                                               secure_rng& rng) const;

  /// Homomorphic combination: decrypts to the sum of the two plaintexts.
  [[nodiscard]] elgamal_ciphertext add(const elgamal_ciphertext& c1,
                                       const elgamal_ciphertext& c2) const;

  /// Fresh randomness, same plaintext. Unlinkable to the input without the
  /// secret key.
  [[nodiscard]] elgamal_ciphertext rerandomize(const group_element& pub,
                                               const elgamal_ciphertext& c,
                                               secure_rng& rng) const;

  /// One party's distributed-decryption step: removes x_i·A from B.
  /// After every shareholder has applied theirs, `b` equals the plaintext.
  [[nodiscard]] elgamal_ciphertext strip_share(const elgamal_ciphertext& c,
                                               const scalar& secret_share) const;

  /// Single-key decryption (for tests and non-distributed use).
  [[nodiscard]] group_element decrypt(const scalar& secret,
                                      const elgamal_ciphertext& c) const;

  // -- batch operations ----------------------------------------------------
  // Vector forms built on the group's batch API. Randomness is drawn from
  // `rng` in index order before any group math, so each batch call consumes
  // the RNG stream exactly like the equivalent serial loop and produces
  // bit-identical ciphertexts — serial and batched protocol paths are
  // interchangeable. Empty batches are no-ops.

  /// `count` independent encryptions of zero (PSC bulk bin initialization).
  [[nodiscard]] std::vector<elgamal_ciphertext> encrypt_zero_batch(
      const group_element& pub, std::size_t count, secure_rng& rng) const;

  /// Per index: encrypt_one when bits[i] != 0, else encrypt_zero (the CP
  /// binomial-noise vector).
  [[nodiscard]] std::vector<elgamal_ciphertext> encrypt_bits_batch(
      const group_element& pub, std::span<const std::uint8_t> bits,
      secure_rng& rng) const;

  /// Elementwise homomorphic combination (tally-server table merge).
  [[nodiscard]] std::vector<elgamal_ciphertext> add_batch(
      std::span<const elgamal_ciphertext> c1,
      std::span<const elgamal_ciphertext> c2) const;

  /// Rerandomizes every ciphertext (the mix pass hot loop).
  [[nodiscard]] std::vector<elgamal_ciphertext> rerandomize_batch(
      const group_element& pub, std::span<const elgamal_ciphertext> cts,
      secure_rng& rng) const;

  /// Strips one decryption share from every ciphertext (the decrypt pass).
  [[nodiscard]] std::vector<elgamal_ciphertext> strip_share_batch(
      std::span<const elgamal_ciphertext> cts,
      const scalar& secret_share) const;

  /// Single-key decryption of every ciphertext.
  [[nodiscard]] std::vector<group_element> decrypt_batch(
      const scalar& secret, std::span<const elgamal_ciphertext> cts) const;

  /// Serialized ciphertext (length-prefixed a || b), and its inverse.
  [[nodiscard]] byte_buffer encode(const elgamal_ciphertext& c) const;
  [[nodiscard]] elgamal_ciphertext decode(byte_view data) const;

  /// The two component encodings inside one wire ciphertext (views into the
  /// caller's buffer — no copy). Validates the framing exactly like
  /// decode(); component validity is checked only when the views are
  /// actually decoded.
  struct ciphertext_views {
    byte_view a;
    byte_view b;
  };
  [[nodiscard]] static ciphertext_views split_encoding(byte_view data);

  /// Batch forms of encode/decode (one call site, one pass). decode_batch
  /// runs through the group's arena decoder: one element arena per
  /// component vector instead of a heap node per element.
  [[nodiscard]] std::vector<byte_buffer> encode_batch(
      std::span<const elgamal_ciphertext> cts) const;
  [[nodiscard]] std::vector<elgamal_ciphertext> decode_batch(
      std::span<const byte_buffer> data) const;

  /// The tally decode: decodes only each ciphertext's b component (after
  /// every shareholder stripped, b IS the plaintext) and counts non-identity
  /// results, with zero per-element allocations. Framing and the b encoding
  /// are validated exactly like decode(); the a component — dead weight once
  /// stripping finished — is only length-checked, so a wire vector whose a
  /// bytes are corrupt still tallies (full decode() would throw on it).
  [[nodiscard]] std::size_t count_non_identity_plaintexts(
      std::span<const byte_buffer> data) const;

 private:
  std::shared_ptr<const group> group_;
};

}  // namespace tormet::crypto
