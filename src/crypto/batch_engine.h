// Multi-threaded front end for the bulk ElGamal work in a PSC round. The
// engine shards a batch into fixed-size slices, runs each slice through the
// elgamal/group batch APIs on a shared thread pool, and derives every
// slice's randomness from a caller-supplied 32-byte seed:
//
//     shard s's DRBG = HMAC-DRBG( SHA256("tormet.batch.shard.v1" ‖ seed ‖ s) )
//
// Shard boundaries depend only on the configured shard size — never on the
// worker count or scheduling — so a given (inputs, seed) pair yields
// bit-identical ciphertexts whether the engine runs inline, on one worker,
// or on sixteen. Operations that need no randomness (strip/decrypt) shard
// the same way for parallelism alone.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/crypto/elgamal.h"
#include "src/crypto/sha256.h"
#include "src/util/thread_pool.h"

namespace tormet::crypto {

class batch_engine {
 public:
  /// `pool == nullptr` runs every shard inline (still batched, still
  /// seeded-deterministic). `shard_size` fixes both the parallel grain and
  /// the RNG stream boundaries; changing it changes outputs, so it is part
  /// of a deployment's protocol configuration.
  explicit batch_engine(std::shared_ptr<const group> g,
                        std::shared_ptr<util::thread_pool> pool = nullptr,
                        std::size_t shard_size = 512);

  [[nodiscard]] const elgamal& scheme() const noexcept { return scheme_; }
  [[nodiscard]] const group& grp() const noexcept { return scheme_.grp(); }
  [[nodiscard]] std::size_t shard_size() const noexcept { return shard_size_; }
  [[nodiscard]] std::size_t workers() const noexcept {
    return pool_ == nullptr ? 1 : pool_->size();
  }

  /// Draws a fresh 32-byte batch seed from a session RNG (one fill, so the
  /// caller's stream advances identically no matter the batch size).
  [[nodiscard]] static sha256_digest derive_seed(secure_rng& rng);

  /// `count` encryptions of zero under `pub`.
  [[nodiscard]] std::vector<elgamal_ciphertext> encrypt_zero_batch(
      const group_element& pub, std::size_t count,
      const sha256_digest& seed) const;

  /// Per index: encrypt_one when bits[i] != 0, else encrypt_zero.
  [[nodiscard]] std::vector<elgamal_ciphertext> encrypt_bits_batch(
      const group_element& pub, std::span<const std::uint8_t> bits,
      const sha256_digest& seed) const;

  /// Rerandomizes every ciphertext under `pub`.
  [[nodiscard]] std::vector<elgamal_ciphertext> rerandomize_batch(
      const group_element& pub, std::span<const elgamal_ciphertext> cts,
      const sha256_digest& seed) const;

  /// Strips one decryption share from every ciphertext.
  [[nodiscard]] std::vector<elgamal_ciphertext> strip_share_batch(
      std::span<const elgamal_ciphertext> cts, const scalar& share) const;

  /// Single-key decryption of every ciphertext.
  [[nodiscard]] std::vector<group_element> decrypt_batch(
      const scalar& secret, std::span<const elgamal_ciphertext> cts) const;

  /// Elementwise homomorphic combination (the tally server's table merge).
  [[nodiscard]] std::vector<elgamal_ciphertext> add_batch(
      std::span<const elgamal_ciphertext> c1,
      std::span<const elgamal_ciphertext> c2) const;

  /// Wire-format decode/encode of a ciphertext vector, sharded across the
  /// pool (deterministic: pure per-index functions of the inputs).
  [[nodiscard]] std::vector<elgamal_ciphertext> decode_batch(
      std::span<const byte_buffer> data) const;
  [[nodiscard]] std::vector<byte_buffer> encode_batch(
      std::span<const elgamal_ciphertext> cts) const;

  /// The tally server's final decode: decodes every wire ciphertext's
  /// plaintext (b) component and counts non-identity bins, sharded across
  /// the pool with zero per-element allocations inside each shard.
  [[nodiscard]] std::uint64_t tally_decode_count(
      std::span<const byte_buffer> data) const;

 private:
  /// Runs fn(shard_index, begin, end) over [0, n) in shard_size_ slices,
  /// parallel when a pool is attached.
  template <typename Fn>
  void run_sharded(std::size_t n, Fn&& fn) const;

  /// Stitches per-shard slices into one output vector of length n:
  /// per_shard(shard_index, begin, end) returns the std::vector<T> for
  /// [begin, end), moved into place. Every batch op above is one of these.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> map_sharded(std::size_t n, Fn&& per_shard) const;

  /// ChaCha20 stream key for shard `shard_index` of a batch seeded by
  /// `seed` — the per-index RNG streams that make sharded output
  /// reproducible.
  [[nodiscard]] static sha256_digest shard_stream_key(const sha256_digest& seed,
                                                      std::size_t shard_index);

  elgamal scheme_;
  std::shared_ptr<util::thread_pool> pool_;
  std::size_t shard_size_;
};

}  // namespace tormet::crypto
