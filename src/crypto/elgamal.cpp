#include "src/crypto/elgamal.h"

#include "src/util/check.h"

namespace tormet::crypto {

elgamal::elgamal(std::shared_ptr<const group> g) : group_{std::move(g)} {
  expects(group_ != nullptr, "elgamal requires a group");
}

elgamal_keypair elgamal::generate_keypair(secure_rng& rng) const {
  elgamal_keypair kp;
  kp.secret = group_->random_scalar(rng);
  kp.pub = group_->mul_generator(kp.secret);
  return kp;
}

group_element elgamal::combine_public_keys(
    std::span<const group_element> shares) const {
  expects(!shares.empty(), "need at least one public-key share");
  group_element joint = shares[0];
  for (std::size_t i = 1; i < shares.size(); ++i) {
    joint = group_->add(joint, shares[i]);
  }
  return joint;
}

elgamal_ciphertext elgamal::encrypt(const group_element& pub,
                                    const group_element& m,
                                    secure_rng& rng) const {
  const scalar r = group_->random_scalar(rng);
  return {group_->mul_generator(r), group_->add(m, group_->mul(pub, r))};
}

elgamal_ciphertext elgamal::encrypt_zero(const group_element& pub,
                                         secure_rng& rng) const {
  return encrypt(pub, group_->identity(), rng);
}

elgamal_ciphertext elgamal::encrypt_one(const group_element& pub,
                                        secure_rng& rng) const {
  return encrypt(pub, group_->random_element(rng), rng);
}

elgamal_ciphertext elgamal::add(const elgamal_ciphertext& c1,
                                const elgamal_ciphertext& c2) const {
  return {group_->add(c1.a, c2.a), group_->add(c1.b, c2.b)};
}

elgamal_ciphertext elgamal::rerandomize(const group_element& pub,
                                        const elgamal_ciphertext& c,
                                        secure_rng& rng) const {
  return add(c, encrypt_zero(pub, rng));
}

elgamal_ciphertext elgamal::strip_share(const elgamal_ciphertext& c,
                                        const scalar& secret_share) const {
  return {c.a, group_->sub(c.b, group_->mul(c.a, secret_share))};
}

group_element elgamal::decrypt(const scalar& secret,
                               const elgamal_ciphertext& c) const {
  return group_->sub(c.b, group_->mul(c.a, secret));
}

namespace {

// Splits a ciphertext span into its component vectors (handle copies are a
// refcount bump each) so the group batch ops can run over flat spans.
void split_components(std::span<const elgamal_ciphertext> cts,
                      std::vector<group_element>& as,
                      std::vector<group_element>& bs) {
  as.reserve(cts.size());
  bs.reserve(cts.size());
  for (const auto& ct : cts) {
    as.push_back(ct.a);
    bs.push_back(ct.b);
  }
}

[[nodiscard]] std::vector<elgamal_ciphertext> zip_components(
    std::vector<group_element> as, std::vector<group_element> bs) {
  std::vector<elgamal_ciphertext> out;
  out.reserve(as.size());
  for (std::size_t i = 0; i < as.size(); ++i) {
    out.push_back({std::move(as[i]), std::move(bs[i])});
  }
  return out;
}

}  // namespace

std::vector<elgamal_ciphertext> elgamal::encrypt_zero_batch(
    const group_element& pub, std::size_t count, secure_rng& rng) const {
  std::vector<scalar> rs;
  rs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    rs.push_back(group_->random_scalar(rng));
  }
  // b = identity + r·Y = r·Y, so the identity add is skipped outright.
  return zip_components(group_->mul_generator_batch(rs),
                        group_->mul_batch(pub, rs));
}

std::vector<elgamal_ciphertext> elgamal::encrypt_bits_batch(
    const group_element& pub, std::span<const std::uint8_t> bits,
    secure_rng& rng) const {
  // Draw (message scalar, nonce) per index in the order the serial loop
  // would: encrypt_one draws its random message element before its nonce.
  std::vector<scalar> rs, ms;
  rs.reserve(bits.size());
  for (const auto bit : bits) {
    if (bit != 0) ms.push_back(group_->random_scalar(rng));
    rs.push_back(group_->random_scalar(rng));
  }
  std::vector<group_element> as = group_->mul_generator_batch(rs);
  std::vector<group_element> bs = group_->mul_batch(pub, rs);
  if (!ms.empty()) {
    const std::vector<group_element> msgs = group_->mul_generator_batch(ms);
    // Gather the one-bit positions, add their messages, scatter back.
    std::vector<group_element> gathered;
    gathered.reserve(msgs.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (bits[i] != 0) gathered.push_back(bs[i]);
    }
    std::vector<group_element> summed = group_->add_batch(msgs, gathered);
    std::size_t j = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (bits[i] != 0) bs[i] = std::move(summed[j++]);
    }
  }
  return zip_components(std::move(as), std::move(bs));
}

std::vector<elgamal_ciphertext> elgamal::add_batch(
    std::span<const elgamal_ciphertext> c1,
    std::span<const elgamal_ciphertext> c2) const {
  expects(c1.size() == c2.size(), "add_batch spans must have equal length");
  std::vector<group_element> a1, b1, a2, b2;
  split_components(c1, a1, b1);
  split_components(c2, a2, b2);
  return zip_components(group_->add_batch(a1, a2), group_->add_batch(b1, b2));
}

std::vector<elgamal_ciphertext> elgamal::rerandomize_batch(
    const group_element& pub, std::span<const elgamal_ciphertext> cts,
    secure_rng& rng) const {
  const std::vector<elgamal_ciphertext> zeros =
      encrypt_zero_batch(pub, cts.size(), rng);
  return add_batch(cts, zeros);
}

std::vector<elgamal_ciphertext> elgamal::strip_share_batch(
    std::span<const elgamal_ciphertext> cts, const scalar& secret_share) const {
  std::vector<group_element> as, bs;
  split_components(cts, as, bs);
  const std::vector<group_element> shares = group_->mul_batch(as, secret_share);
  return zip_components(std::move(as), group_->sub_batch(bs, shares));
}

std::vector<group_element> elgamal::decrypt_batch(
    const scalar& secret, std::span<const elgamal_ciphertext> cts) const {
  std::vector<group_element> as, bs;
  split_components(cts, as, bs);
  return group_->sub_batch(bs, group_->mul_batch(as, secret));
}

byte_buffer elgamal::encode(const elgamal_ciphertext& c) const {
  const byte_buffer ea = group_->encode(c.a);
  const byte_buffer eb = group_->encode(c.b);
  expects(ea.size() <= 0xff && eb.size() <= 0xff, "element encoding too large");
  byte_buffer out;
  out.reserve(2 + ea.size() + eb.size());
  out.push_back(static_cast<std::uint8_t>(ea.size()));
  out.insert(out.end(), ea.begin(), ea.end());
  out.push_back(static_cast<std::uint8_t>(eb.size()));
  out.insert(out.end(), eb.begin(), eb.end());
  return out;
}

elgamal::ciphertext_views elgamal::split_encoding(byte_view data) {
  expects(!data.empty(), "ciphertext encoding must be non-empty");
  const std::size_t len_a = data[0];
  expects(data.size() >= 1 + len_a + 1, "ciphertext encoding truncated");
  const byte_view ea = data.subspan(1, len_a);
  const std::size_t len_b = data[1 + len_a];
  expects(data.size() == 2 + len_a + len_b, "ciphertext encoding length mismatch");
  const byte_view eb = data.subspan(2 + len_a, len_b);
  return {ea, eb};
}

elgamal_ciphertext elgamal::decode(byte_view data) const {
  const ciphertext_views views = split_encoding(data);
  return {group_->decode(views.a), group_->decode(views.b)};
}

std::vector<byte_buffer> elgamal::encode_batch(
    std::span<const elgamal_ciphertext> cts) const {
  std::vector<byte_buffer> out;
  out.reserve(cts.size());
  for (const auto& ct : cts) out.push_back(encode(ct));
  return out;
}

std::vector<elgamal_ciphertext> elgamal::decode_batch(
    std::span<const byte_buffer> data) const {
  std::vector<byte_view> as, bs;
  as.reserve(data.size());
  bs.reserve(data.size());
  for (const auto& d : data) {
    const ciphertext_views views = split_encoding(d);
    as.push_back(views.a);
    bs.push_back(views.b);
  }
  return zip_components(group_->decode_batch(as), group_->decode_batch(bs));
}

std::size_t elgamal::count_non_identity_plaintexts(
    std::span<const byte_buffer> data) const {
  std::vector<byte_view> bs;
  bs.reserve(data.size());
  for (const auto& d : data) bs.push_back(split_encoding(d).b);
  return group_->count_non_identity(bs);
}

}  // namespace tormet::crypto
