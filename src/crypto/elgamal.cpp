#include "src/crypto/elgamal.h"

#include "src/util/check.h"

namespace tormet::crypto {

elgamal::elgamal(std::shared_ptr<const group> g) : group_{std::move(g)} {
  expects(group_ != nullptr, "elgamal requires a group");
}

elgamal_keypair elgamal::generate_keypair(secure_rng& rng) const {
  elgamal_keypair kp;
  kp.secret = group_->random_scalar(rng);
  kp.pub = group_->mul_generator(kp.secret);
  return kp;
}

group_element elgamal::combine_public_keys(
    std::span<const group_element> shares) const {
  expects(!shares.empty(), "need at least one public-key share");
  group_element joint = shares[0];
  for (std::size_t i = 1; i < shares.size(); ++i) {
    joint = group_->add(joint, shares[i]);
  }
  return joint;
}

elgamal_ciphertext elgamal::encrypt(const group_element& pub,
                                    const group_element& m,
                                    secure_rng& rng) const {
  const scalar r = group_->random_scalar(rng);
  return {group_->mul_generator(r), group_->add(m, group_->mul(pub, r))};
}

elgamal_ciphertext elgamal::encrypt_zero(const group_element& pub,
                                         secure_rng& rng) const {
  return encrypt(pub, group_->identity(), rng);
}

elgamal_ciphertext elgamal::encrypt_one(const group_element& pub,
                                        secure_rng& rng) const {
  return encrypt(pub, group_->random_element(rng), rng);
}

elgamal_ciphertext elgamal::add(const elgamal_ciphertext& c1,
                                const elgamal_ciphertext& c2) const {
  return {group_->add(c1.a, c2.a), group_->add(c1.b, c2.b)};
}

elgamal_ciphertext elgamal::rerandomize(const group_element& pub,
                                        const elgamal_ciphertext& c,
                                        secure_rng& rng) const {
  return add(c, encrypt_zero(pub, rng));
}

elgamal_ciphertext elgamal::strip_share(const elgamal_ciphertext& c,
                                        const scalar& secret_share) const {
  return {c.a, group_->sub(c.b, group_->mul(c.a, secret_share))};
}

group_element elgamal::decrypt(const scalar& secret,
                               const elgamal_ciphertext& c) const {
  return group_->sub(c.b, group_->mul(c.a, secret));
}

byte_buffer elgamal::encode(const elgamal_ciphertext& c) const {
  const byte_buffer ea = group_->encode(c.a);
  const byte_buffer eb = group_->encode(c.b);
  expects(ea.size() <= 0xff && eb.size() <= 0xff, "element encoding too large");
  byte_buffer out;
  out.reserve(2 + ea.size() + eb.size());
  out.push_back(static_cast<std::uint8_t>(ea.size()));
  out.insert(out.end(), ea.begin(), ea.end());
  out.push_back(static_cast<std::uint8_t>(eb.size()));
  out.insert(out.end(), eb.begin(), eb.end());
  return out;
}

elgamal_ciphertext elgamal::decode(byte_view data) const {
  expects(!data.empty(), "ciphertext encoding must be non-empty");
  const std::size_t len_a = data[0];
  expects(data.size() >= 1 + len_a + 1, "ciphertext encoding truncated");
  const byte_view ea = data.subspan(1, len_a);
  const std::size_t len_b = data[1 + len_a];
  expects(data.size() == 2 + len_a + len_b, "ciphertext encoding length mismatch");
  const byte_view eb = data.subspan(2 + len_a, len_b);
  return {group_->decode(ea), group_->decode(eb)};
}

}  // namespace tormet::crypto
