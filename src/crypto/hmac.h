// HMAC-SHA256, used by the deterministic DRBG and by keyed hashing in the
// HSDir ring (descriptor-ID derivation uses keyed hashes in our model).
#pragma once

#include "src/crypto/sha256.h"
#include "src/util/bytes.h"

namespace tormet::crypto {

/// HMAC-SHA256(key, data).
[[nodiscard]] sha256_digest hmac_sha256(byte_view key, byte_view data);

}  // namespace tormet::crypto
