#include "src/crypto/secure_rng.h"

#include <openssl/evp.h>
#include <openssl/rand.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "src/crypto/hmac.h"
#include "src/util/check.h"

namespace tormet::crypto {

std::uint64_t secure_rng::next_u64() {
  std::uint8_t buf[8];
  fill(buf);
  std::uint64_t out = 0;
  for (int i = 7; i >= 0; --i) out = (out << 8) | buf[i];
  return out;
}

std::uint64_t secure_rng::below(std::uint64_t bound) {
  expects(bound > 0, "below() requires bound > 0");
  if (bound == 1) return 0;
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

void system_rng::fill(std::span<std::uint8_t> out) {
  if (out.empty()) return;
  if (RAND_bytes(out.data(), static_cast<int>(out.size())) != 1) {
    throw std::runtime_error{"RAND_bytes failed"};
  }
}

sha256_digest derive_node_seed(std::uint64_t deployment_seed,
                               std::uint32_t node_id) {
  sha256_hasher h;
  h.update("tormet.node-rng.v1");
  std::uint8_t buf[12];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(deployment_seed >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    buf[8 + i] = static_cast<std::uint8_t>(node_id >> (8 * i));
  }
  h.update(byte_view{buf, sizeof buf});
  return h.finish();
}

deterministic_rng make_node_rng(std::uint64_t deployment_seed,
                                std::uint32_t node_id) {
  const sha256_digest d = derive_node_seed(deployment_seed, node_id);
  return deterministic_rng{byte_view{d.data(), d.size()}};
}

sha256_digest derive_node_round_seed(std::uint64_t deployment_seed,
                                     std::uint32_t node_id,
                                     std::uint32_t round_id) {
  sha256_hasher h;
  h.update("tormet.node-round-rng.v1");
  std::uint8_t buf[16];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(deployment_seed >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    buf[8 + i] = static_cast<std::uint8_t>(node_id >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    buf[12 + i] = static_cast<std::uint8_t>(round_id >> (8 * i));
  }
  h.update(byte_view{buf, sizeof buf});
  return h.finish();
}

deterministic_rng make_node_round_rng(std::uint64_t deployment_seed,
                                      std::uint32_t node_id,
                                      std::uint32_t round_id) {
  const sha256_digest d = derive_node_round_seed(deployment_seed, node_id, round_id);
  return deterministic_rng{byte_view{d.data(), d.size()}};
}

deterministic_rng::deterministic_rng(byte_view seed) {
  key_ = sha256(seed);
}

deterministic_rng::deterministic_rng(std::uint64_t seed) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  key_ = sha256(byte_view{buf, 8});
}

void deterministic_rng::fill(std::span<std::uint8_t> out) {
  std::size_t produced = 0;
  while (produced < out.size()) {
    if (block_used_ == k_sha256_size) {
      std::uint8_t ctr[8];
      for (int i = 0; i < 8; ++i) {
        ctr[i] = static_cast<std::uint8_t>(counter_ >> (8 * i));
      }
      ++counter_;
      block_ = hmac_sha256(byte_view{key_.data(), key_.size()}, byte_view{ctr, 8});
      block_used_ = 0;
    }
    const std::size_t take =
        std::min(out.size() - produced, k_sha256_size - block_used_);
    std::memcpy(out.data() + produced, block_.data() + block_used_, take);
    produced += take;
    block_used_ += take;
  }
}

stream_rng::stream_rng(const sha256_digest& seed) {
  EVP_CIPHER_CTX* ctx = EVP_CIPHER_CTX_new();
  if (ctx == nullptr) throw std::runtime_error{"EVP_CIPHER_CTX_new failed"};
  // Zero IV: every stream gets a unique key (derived per shard), so the
  // nonce carries no distinguishing duty.
  const std::uint8_t iv[16] = {};
  if (EVP_EncryptInit_ex(ctx, EVP_chacha20(), nullptr, seed.data(), iv) != 1) {
    EVP_CIPHER_CTX_free(ctx);
    throw std::runtime_error{"EVP_EncryptInit_ex(chacha20) failed"};
  }
  ctx_ = ctx;
}

stream_rng::~stream_rng() {
  EVP_CIPHER_CTX_free(static_cast<EVP_CIPHER_CTX*>(ctx_));
}

void stream_rng::refill() {
  static constexpr std::uint8_t k_zeros[sizeof(buf_)] = {};
  int out_len = 0;
  if (EVP_EncryptUpdate(static_cast<EVP_CIPHER_CTX*>(ctx_), buf_.data(),
                        &out_len, k_zeros, static_cast<int>(sizeof(buf_))) != 1 ||
      out_len != static_cast<int>(sizeof(buf_))) {
    throw std::runtime_error{"EVP_EncryptUpdate(chacha20) failed"};
  }
  used_ = 0;
}

void stream_rng::fill(std::span<std::uint8_t> out) {
  std::size_t produced = 0;
  while (produced < out.size()) {
    if (used_ == buf_.size()) refill();
    const std::size_t take = std::min(out.size() - produced, buf_.size() - used_);
    std::memcpy(out.data() + produced, buf_.data() + used_, take);
    produced += take;
    used_ += take;
  }
}

}  // namespace tormet::crypto
