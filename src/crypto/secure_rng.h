// Cryptographic randomness. Protocol code (key generation, blinding values,
// ElGamal nonces, shuffle permutations) draws from a secure_rng so that
// production uses the OS entropy pool while tests use a deterministic
// HMAC-DRBG with identical behaviour.
#pragma once

#include <cstdint>
#include <memory>

#include "src/crypto/sha256.h"
#include "src/util/bytes.h"

namespace tormet::crypto {

/// Interface for cryptographic random byte generation.
class secure_rng {
 public:
  virtual ~secure_rng() = default;

  /// Fills `out` with random bytes.
  virtual void fill(std::span<std::uint8_t> out) = 0;

  /// Uniform random 64-bit value.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform value in [0, bound), bound > 0. Rejection-sampled (no bias).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound);
};

/// Production generator backed by OpenSSL RAND_bytes.
class system_rng final : public secure_rng {
 public:
  void fill(std::span<std::uint8_t> out) override;
};

/// Deterministic per-node RNG seed: a pure function of (deployment seed,
/// node id). Deployments give every node its own stream derived this way,
/// so an in-process round and a multi-process distributed round draw
/// identical randomness per node regardless of how message delivery
/// interleaves across nodes — the property the distributed byte-identical
/// tally check rests on.
[[nodiscard]] sha256_digest derive_node_seed(std::uint64_t deployment_seed,
                                             std::uint32_t node_id);

class deterministic_rng;
/// The node's deterministic stream, seeded via derive_node_seed. Single
/// factory shared by the in-process deployments and the distributed node
/// runner — the byte-identity guarantee requires every construction site
/// to frame the seed identically.
[[nodiscard]] deterministic_rng make_node_rng(std::uint64_t deployment_seed,
                                              std::uint32_t node_id);

/// Per-(node, round) seed: a pure function of (deployment seed, node id,
/// round id). Deployments reseed every node's stream from this at each
/// round boundary, making a round's protocol randomness independent of how
/// many rounds (or partial, crashed round attempts) preceded it — the
/// property that lets a restarted process, or a tally server retrying a
/// round, reproduce byte-identical messages.
[[nodiscard]] sha256_digest derive_node_round_seed(std::uint64_t deployment_seed,
                                                   std::uint32_t node_id,
                                                   std::uint32_t round_id);
/// The node's deterministic stream for one round, seeded via
/// derive_node_round_seed.
[[nodiscard]] deterministic_rng make_node_round_rng(std::uint64_t deployment_seed,
                                                    std::uint32_t node_id,
                                                    std::uint32_t round_id);

/// Deterministic generator: HMAC-SHA256 in counter mode keyed by a seed.
/// NIST-DRBG-shaped (not certified); used for reproducible protocol runs in
/// tests, simulations, and benches.
class deterministic_rng final : public secure_rng {
 public:
  explicit deterministic_rng(byte_view seed);
  explicit deterministic_rng(std::uint64_t seed);

  void fill(std::span<std::uint8_t> out) override;

 private:
  sha256_digest key_{};
  std::uint64_t counter_ = 0;
  sha256_digest block_{};
  std::size_t block_used_ = k_sha256_size;  // forces generation on first use
};

/// Deterministic bulk generator: a ChaCha20 keystream keyed by a 32-byte
/// seed, buffered in 4 KiB blocks. Same reproducibility contract as
/// deterministic_rng (the stream depends only on the seed) but an order of
/// magnitude faster for the bulk nonce draws of the crypto batch engine,
/// where every shard gets its own derived stream.
class stream_rng final : public secure_rng {
 public:
  explicit stream_rng(const sha256_digest& seed);
  ~stream_rng() override;
  stream_rng(const stream_rng&) = delete;
  stream_rng& operator=(const stream_rng&) = delete;

  void fill(std::span<std::uint8_t> out) override;

 private:
  void refill();

  void* ctx_ = nullptr;  // EVP_CIPHER_CTX (void* keeps OpenSSL out of headers)
  std::array<std::uint8_t, 4096> buf_{};
  std::size_t used_ = sizeof(buf_);  // forces generation on first use
};

}  // namespace tormet::crypto
