#include "src/crypto/shuffle.h"

#include <algorithm>

#include "src/util/check.h"

namespace tormet::crypto {

std::vector<std::uint32_t> random_permutation(std::size_t n, secure_rng& rng) {
  expects(n <= 0xffffffffULL, "permutation too large for 32-bit indices");
  std::vector<std::uint32_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<std::uint32_t>(i);
  // Fisher–Yates with unbiased index draws.
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

sha256_digest digest_encoded_ciphertexts(std::span<const byte_buffer> encoded) {
  sha256_hasher h;
  h.update("tormet.shuffle.ciphertexts.v1");
  for (const auto& enc : encoded) {
    h.update_framed(enc);
  }
  return h.finish();
}

sha256_digest digest_ciphertexts(const elgamal& scheme,
                                 std::span<const elgamal_ciphertext> cts) {
  sha256_hasher h;
  h.update("tormet.shuffle.ciphertexts.v1");
  for (const auto& ct : cts) {
    const byte_buffer enc = scheme.encode(ct);
    h.update_framed(enc);
  }
  return h.finish();
}

sha256_digest permutation_commitment(byte_view seed,
                                     std::span<const std::uint32_t> perm) {
  sha256_hasher commit;
  commit.update("tormet.shuffle.commitment.v1");
  commit.update_framed(seed);
  for (const auto idx : perm) {
    const std::uint8_t le[4] = {
        static_cast<std::uint8_t>(idx), static_cast<std::uint8_t>(idx >> 8),
        static_cast<std::uint8_t>(idx >> 16), static_cast<std::uint8_t>(idx >> 24)};
    commit.update(byte_view{le, 4});
  }
  return commit.finish();
}

namespace {

[[nodiscard]] std::vector<elgamal_ciphertext> apply_permutation(
    std::span<const elgamal_ciphertext> input,
    std::span<const std::uint32_t> perm) {
  std::vector<elgamal_ciphertext> out;
  out.reserve(input.size());
  for (const auto idx : perm) out.push_back(input[idx]);
  return out;
}

}  // namespace

std::vector<elgamal_ciphertext> shuffle_and_rerandomize(
    const elgamal& scheme, const group_element& joint_pub,
    std::span<const elgamal_ciphertext> input, secure_rng& rng,
    shuffle_transcript& transcript, shuffle_opening* opening) {
  const std::vector<std::uint32_t> perm = random_permutation(input.size(), rng);

  byte_buffer seed(32);
  rng.fill(seed);

  // rerandomize_batch draws its nonces in index order, so this consumes the
  // RNG stream exactly like the historical per-element loop did.
  const std::vector<elgamal_ciphertext> permuted = apply_permutation(input, perm);
  std::vector<elgamal_ciphertext> output =
      scheme.rerandomize_batch(joint_pub, permuted, rng);

  transcript.input_digest = digest_ciphertexts(scheme, input);
  transcript.output_digest = digest_ciphertexts(scheme, output);
  transcript.commitment = permutation_commitment(seed, perm);

  if (opening != nullptr) {
    opening->permutation = perm;
    opening->seed = std::move(seed);
  }
  return output;
}

shuffle_result shuffle_and_rerandomize_encoded(
    const batch_engine& engine, const group_element& joint_pub,
    std::span<const elgamal_ciphertext> input,
    std::span<const byte_buffer> input_encoded, secure_rng& rng,
    shuffle_transcript& transcript, shuffle_opening* opening) {
  expects(input.size() == input_encoded.size(),
          "input and encoded input must have equal length");
  const std::vector<std::uint32_t> perm = random_permutation(input.size(), rng);

  byte_buffer seed(32);
  rng.fill(seed);

  const std::vector<elgamal_ciphertext> permuted = apply_permutation(input, perm);
  shuffle_result result;
  result.output = engine.rerandomize_batch(joint_pub, permuted,
                                           batch_engine::derive_seed(rng));
  result.output_encoded = engine.scheme().encode_batch(result.output);

  transcript.input_digest = digest_encoded_ciphertexts(input_encoded);
  transcript.output_digest = digest_encoded_ciphertexts(result.output_encoded);
  transcript.commitment = permutation_commitment(seed, perm);

  if (opening != nullptr) {
    opening->permutation = perm;
    opening->seed = std::move(seed);
  }
  return result;
}

bool verify_shuffle_structure(const elgamal& scheme,
                              std::span<const elgamal_ciphertext> input,
                              std::span<const elgamal_ciphertext> output,
                              const shuffle_transcript& transcript) {
  if (input.size() != output.size()) return false;
  if (digest_ciphertexts(scheme, input) != transcript.input_digest) return false;
  if (digest_ciphertexts(scheme, output) != transcript.output_digest) return false;
  return true;
}

bool verify_shuffle_opening(const elgamal& scheme, const scalar& joint_secret,
                            std::span<const elgamal_ciphertext> input,
                            std::span<const elgamal_ciphertext> output,
                            const shuffle_transcript& transcript,
                            const shuffle_opening& opening) {
  if (!verify_shuffle_structure(scheme, input, output, transcript)) return false;
  if (opening.permutation.size() != input.size()) return false;

  // Commitment check.
  if (permutation_commitment(opening.seed, opening.permutation) !=
      transcript.commitment) {
    return false;
  }

  // Bijection check.
  std::vector<bool> seen(input.size(), false);
  for (const auto idx : opening.permutation) {
    if (idx >= input.size() || seen[idx]) return false;
    seen[idx] = true;
  }

  // Plaintext-equality check (auditor role: needs the joint secret). Both
  // vectors decrypt through the batch path — one pass each instead of
  // 2n serial strip-and-subtract calls.
  const auto& grp = scheme.grp();
  const std::vector<elgamal_ciphertext> permuted =
      apply_permutation(input, opening.permutation);
  const std::vector<group_element> expected =
      scheme.decrypt_batch(joint_secret, permuted);
  const std::vector<group_element> actual =
      scheme.decrypt_batch(joint_secret, output);
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (!grp.equal(expected[i], actual[i])) return false;
  }
  return true;
}

}  // namespace tormet::crypto
