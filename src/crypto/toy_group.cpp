// Toy 62-bit Schnorr group: the subgroup of quadratic residues modulo the
// safe prime p = 0x3fffffffffffd6bb (order q = (p-1)/2, also prime).
// Generator 4 = 2^2 is a quadratic residue, hence generates the q-order
// subgroup. All arithmetic uses unsigned __int128.
//
// SECURITY: a 62-bit discrete log is trivially breakable. This backend
// exists so tests and large simulations can run the identical protocol code
// fast; production uses p256_group.
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "src/crypto/group.h"
#include "src/util/check.h"

namespace tormet::crypto {

namespace {

constexpr std::uint64_t k_p = 0x3fffffffffffd6bbULL;  // safe prime
constexpr std::uint64_t k_q = 0x1fffffffffffeb5dULL;  // (p-1)/2, prime
constexpr std::uint64_t k_g = 4;                      // generator of QR subgroup

// p = 2^62 - c with c = 10565, so 2^62 ≡ c (mod p) and a 124-bit product
// folds to the range with two multiply-and-shift steps instead of a 128-bit
// division (~3x faster; mod_pow dominates every exponentiation path).
constexpr std::uint64_t k_c = (std::uint64_t{1} << 62) - k_p;
constexpr std::uint64_t k_mask62 = (std::uint64_t{1} << 62) - 1;

[[nodiscard]] std::uint64_t mod_mul(std::uint64_t a, std::uint64_t b) noexcept {
  unsigned __int128 x = static_cast<unsigned __int128>(a) * b;  // < 2^124
  // Fold twice: hi*2^62 + lo ≡ hi*c + lo. After the first fold x < 2^76,
  // after the second the high part is < 2^14, so one conditional subtract
  // finishes the reduction.
  x = (x >> 62) * k_c + (static_cast<std::uint64_t>(x) & k_mask62);
  std::uint64_t r = static_cast<std::uint64_t>(x >> 62) * k_c +
                    (static_cast<std::uint64_t>(x) & k_mask62);
  if (r >= k_p) r -= k_p;
  return r;
}

[[nodiscard]] std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp) noexcept {
  std::uint64_t result = 1;
  std::uint64_t acc = base % k_p;
  while (exp != 0) {
    if (exp & 1) result = mod_mul(result, acc);
    acc = mod_mul(acc, acc);
    exp >>= 1;
  }
  return result;
}

// Inverse via Fermat: a^(p-2) mod p.
[[nodiscard]] std::uint64_t mod_inv(std::uint64_t a) noexcept {
  return mod_pow(a, k_p - 2);
}

struct element_box {
  std::uint64_t value;
};

// Fixed-base comb table: rows[j][d] = base^(d << (width*j)), so an
// exponentiation is one table lookup + multiply per nonzero window and no
// squarings at all. Build cost is windows * 2^width multiplies, amortized
// across a batch (and paid exactly once for the generator).
struct comb_table {
  unsigned width = 0;
  std::vector<std::uint64_t> rows;  // windows * 2^width entries
};

[[nodiscard]] comb_table build_comb(std::uint64_t base, unsigned width) {
  comb_table t;
  t.width = width;
  const std::size_t row_size = std::size_t{1} << width;
  const unsigned windows = (64 + width - 1) / width;
  t.rows.assign(windows * row_size, 1);
  std::uint64_t window_base = base % k_p;  // base^(2^(width*j))
  for (unsigned j = 0; j < windows; ++j) {
    std::uint64_t* row = &t.rows[j * row_size];
    for (std::size_t d = 1; d < row_size; ++d) {
      row[d] = mod_mul(row[d - 1], window_base);
    }
    window_base = mod_mul(row[row_size - 1], window_base);
  }
  return t;
}

[[nodiscard]] std::uint64_t comb_pow(const comb_table& t, std::uint64_t e) noexcept {
  const std::size_t row_size = std::size_t{1} << t.width;
  const std::uint64_t mask = row_size - 1;
  std::uint64_t r = 1;
  for (std::size_t j = 0; e != 0; ++j, e >>= t.width) {
    const std::uint64_t d = e & mask;
    if (d != 0) r = mod_mul(r, t.rows[j * row_size + d]);
  }
  return r;
}

[[nodiscard]] const comb_table& generator_comb() {
  static const comb_table t = build_comb(k_g, 8);
  return t;
}

// Four independent square-and-multiply chains in lockstep over one shared
// exponent. Each chain is latency-bound on its sequential squarings;
// interleaving four lets the CPU overlap them, which roughly triples
// throughput on the fixed-scalar (decrypt-share) batch path.
void mod_pow_lanes4(const std::uint64_t* bases, std::uint64_t exp,
                    std::uint64_t* out) noexcept {
  std::uint64_t r0 = 1, r1 = 1, r2 = 1, r3 = 1;
  std::uint64_t a0 = bases[0] % k_p, a1 = bases[1] % k_p;
  std::uint64_t a2 = bases[2] % k_p, a3 = bases[3] % k_p;
  while (exp != 0) {
    if (exp & 1) {
      r0 = mod_mul(r0, a0);
      r1 = mod_mul(r1, a1);
      r2 = mod_mul(r2, a2);
      r3 = mod_mul(r3, a3);
    }
    a0 = mod_mul(a0, a0);
    a1 = mod_mul(a1, a1);
    a2 = mod_mul(a2, a2);
    a3 = mod_mul(a3, a3);
    exp >>= 1;
  }
  out[0] = r0;
  out[1] = r1;
  out[2] = r2;
  out[3] = r3;
}

}  // namespace

class toy_group final : public group {
 public:
  [[nodiscard]] std::string name() const override { return "toy62"; }

  [[nodiscard]] scalar random_scalar(secure_rng& rng) const override {
    // Uniform in [1, q).
    return make_scalar(1 + rng.below(k_q - 1));
  }

  [[nodiscard]] scalar scalar_from_u64(std::uint64_t value) const override {
    return make_scalar(value % k_q);
  }

  [[nodiscard]] scalar scalar_add(const scalar& a, const scalar& b) const override {
    return make_scalar((scalar_value(a) + scalar_value(b)) % k_q);
  }

  [[nodiscard]] group_element identity() const override { return wrap(1); }

  [[nodiscard]] group_element generator() const override { return wrap(k_g); }

  [[nodiscard]] group_element mul_generator(const scalar& k) const override {
    return wrap(mod_pow(k_g, scalar_value(k)));
  }

  [[nodiscard]] group_element mul(const group_element& p, const scalar& k) const override {
    return wrap(mod_pow(unwrap(p), scalar_value(k)));
  }

  [[nodiscard]] group_element add(const group_element& a, const group_element& b) const override {
    return wrap(mod_mul(unwrap(a), unwrap(b)));
  }

  [[nodiscard]] group_element negate(const group_element& a) const override {
    return wrap(mod_inv(unwrap(a)));
  }

  [[nodiscard]] bool is_identity(const group_element& a) const override {
    return unwrap(a) == 1;
  }

  [[nodiscard]] bool equal(const group_element& a, const group_element& b) const override {
    return unwrap(a) == unwrap(b);
  }

  [[nodiscard]] byte_buffer encode(const group_element& a) const override {
    const std::uint64_t v = unwrap(a);
    byte_buffer out(8);
    for (int i = 0; i < 8; ++i) out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
    return out;
  }

  [[nodiscard]] group_element decode(byte_view data) const override {
    return wrap(decode_value(data));
  }

  // Batch fast paths: operate on raw std::uint64_t vectors (one aliased
  // arena allocation for the whole batch instead of a shared_ptr per
  // element) and amortize fixed-base comb tables across the batch.
  [[nodiscard]] std::vector<group_element> mul_generator_batch(
      std::span<const scalar> ks) const override {
    const comb_table& t = generator_comb();
    std::vector<std::uint64_t> out(ks.size());
    for (std::size_t i = 0; i < ks.size(); ++i) {
      out[i] = comb_pow(t, scalar_value(ks[i]));
    }
    return wrap_batch(out);
  }

  [[nodiscard]] std::vector<group_element> mul_batch(
      const group_element& base, std::span<const scalar> ks) const override {
    const std::uint64_t b = unwrap(base);
    std::vector<std::uint64_t> out(ks.size());
    // Table build is windows * 2^width multiplies; only worth it when the
    // batch amortizes it below the ~91 multiplies of a plain square-and-
    // multiply exponentiation. Tables are cached per base, so repeated
    // batches against the same point (the joint public key, across every
    // engine shard of every round) build it once.
    if (ks.size() >= 16) {
      const std::shared_ptr<const comb_table> t = cached_comb(b);
      for (std::size_t i = 0; i < ks.size(); ++i) {
        out[i] = comb_pow(*t, scalar_value(ks[i]));
      }
    } else {
      for (std::size_t i = 0; i < ks.size(); ++i) {
        out[i] = mod_pow(b, scalar_value(ks[i]));
      }
    }
    return wrap_batch(out);
  }

  [[nodiscard]] std::vector<group_element> mul_batch(
      std::span<const group_element> pts, const scalar& k) const override {
    const std::uint64_t e = scalar_value(k);
    const std::size_t n = pts.size();
    std::vector<std::uint64_t> out(n);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const std::uint64_t bases[4] = {unwrap(pts[i]), unwrap(pts[i + 1]),
                                      unwrap(pts[i + 2]), unwrap(pts[i + 3])};
      mod_pow_lanes4(bases, e, &out[i]);
    }
    for (; i < n; ++i) out[i] = mod_pow(unwrap(pts[i]), e);
    return wrap_batch(out);
  }

  [[nodiscard]] std::vector<group_element> add_batch(
      std::span<const group_element> a,
      std::span<const group_element> b) const override {
    expects(a.size() == b.size(), "add_batch spans must have equal length");
    std::vector<std::uint64_t> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      out[i] = mod_mul(unwrap(a[i]), unwrap(b[i]));
    }
    return wrap_batch(out);
  }

  [[nodiscard]] std::vector<group_element> sub_batch(
      std::span<const group_element> a,
      std::span<const group_element> b) const override {
    expects(a.size() == b.size(), "sub_batch spans must have equal length");
    const std::size_t n = a.size();
    if (n == 0) return {};
    // Montgomery batch inversion: one Fermat inversion for the whole batch,
    // three multiplies per element. b^(-1) is unique mod p, so results match
    // the serial a + (-b) path bit for bit.
    std::vector<std::uint64_t> prefix(n);
    prefix[0] = unwrap(b[0]);
    for (std::size_t i = 1; i < n; ++i) {
      prefix[i] = mod_mul(prefix[i - 1], unwrap(b[i]));
    }
    std::uint64_t inv_running = mod_inv(prefix[n - 1]);
    std::vector<std::uint64_t> out(n);
    for (std::size_t i = n - 1; i > 0; --i) {
      const std::uint64_t inv_bi = mod_mul(inv_running, prefix[i - 1]);
      inv_running = mod_mul(inv_running, unwrap(b[i]));
      out[i] = mod_mul(unwrap(a[i]), inv_bi);
    }
    out[0] = mod_mul(unwrap(a[0]), inv_running);
    return wrap_batch(out);
  }

  [[nodiscard]] scalar decode_scalar(byte_view data) const override {
    expects(data.size() == 8, "toy scalar must be 8 bytes");
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data[static_cast<std::size_t>(i)];
    expects(v < k_q, "toy scalar out of range");
    return make_scalar(v);
  }

  [[nodiscard]] std::vector<group_element> decode_batch(
      std::span<const byte_view> data) const override {
    std::vector<std::uint64_t> out(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      out[i] = decode_value(data[i]);
    }
    return wrap_batch(out);
  }

  [[nodiscard]] std::size_t count_non_identity(
      std::span<const byte_view> encodings) const override {
    std::size_t count = 0;
    for (const auto& e : encodings) {
      if (decode_value(e) != 1) ++count;
    }
    return count;
  }

 private:
  /// Finds or builds the width-8 comb table for `base`. The cache holds the
  /// handful of fixed bases a process ever batches against (joint public
  /// keys); a tiny FIFO bound keeps adversarial base churn from growing it.
  [[nodiscard]] std::shared_ptr<const comb_table> cached_comb(
      std::uint64_t base) const {
    std::lock_guard<std::mutex> lock{comb_mutex_};
    for (const auto& [cached_base, table] : comb_cache_) {
      if (cached_base == base) return table;
    }
    auto table = std::make_shared<const comb_table>(build_comb(base, 8));
    if (comb_cache_.size() >= 8) comb_cache_.erase(comb_cache_.begin());
    comb_cache_.emplace_back(base, table);
    return table;
  }

  mutable std::mutex comb_mutex_;
  mutable std::vector<std::pair<std::uint64_t, std::shared_ptr<const comb_table>>>
      comb_cache_;

  /// Shared decode validation, without wrapping a handle (the batch decode
  /// and tally-count paths stay allocation-free per element).
  [[nodiscard]] static std::uint64_t decode_value(byte_view data) {
    expects(data.size() == 8, "toy element must be 8 bytes");
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data[static_cast<std::size_t>(i)];
    expects(v != 0 && v < k_p, "toy element out of range");
    return v;
  }

  [[nodiscard]] static group_element wrap(std::uint64_t value) {
    return group_element{
        std::shared_ptr<const void>{std::make_shared<element_box>(element_box{value})}};
  }

  /// One arena allocation for the whole batch; each handle aliases the
  /// arena's control block, so wrapping is a refcount bump per element.
  [[nodiscard]] static std::vector<group_element> wrap_batch(
      std::span<const std::uint64_t> values) {
    auto arena = std::make_shared<std::vector<element_box>>();
    arena->reserve(values.size());
    for (const auto v : values) arena->push_back(element_box{v});
    std::vector<group_element> out;
    out.reserve(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      out.push_back(group_element{
          std::shared_ptr<const void>{arena, &(*arena)[i]}});
    }
    return out;
  }

  [[nodiscard]] static std::uint64_t unwrap(const group_element& e) {
    expects(e.valid(), "group element must be valid");
    return static_cast<const element_box*>(e.impl_.get())->value;
  }

  [[nodiscard]] static scalar make_scalar(std::uint64_t value) {
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] =
        static_cast<std::uint8_t>(value >> (8 * i));
    return scalar{byte_view{bytes, 8}};  // inline storage, no heap
  }

  [[nodiscard]] static std::uint64_t scalar_value(const scalar& k) {
    expects(k.valid() && k.bytes().size() == 8, "toy scalar must be 8 bytes");
    const byte_view bytes = k.bytes();
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
    return v;
  }
};

std::shared_ptr<const group> make_toy_group() {
  return std::make_shared<toy_group>();
}

}  // namespace tormet::crypto
