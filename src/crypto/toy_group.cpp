// Toy 62-bit Schnorr group: the subgroup of quadratic residues modulo the
// safe prime p = 0x3fffffffffffd6bb (order q = (p-1)/2, also prime).
// Generator 4 = 2^2 is a quadratic residue, hence generates the q-order
// subgroup. All arithmetic uses unsigned __int128.
//
// SECURITY: a 62-bit discrete log is trivially breakable. This backend
// exists so tests and large simulations can run the identical protocol code
// fast; production uses p256_group.
#include <stdexcept>

#include "src/crypto/group.h"
#include "src/util/check.h"

namespace tormet::crypto {

namespace {

constexpr std::uint64_t k_p = 0x3fffffffffffd6bbULL;  // safe prime
constexpr std::uint64_t k_q = 0x1fffffffffffeb5dULL;  // (p-1)/2, prime
constexpr std::uint64_t k_g = 4;                      // generator of QR subgroup

[[nodiscard]] std::uint64_t mod_mul(std::uint64_t a, std::uint64_t b) noexcept {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(a) * b % k_p);
}

[[nodiscard]] std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp) noexcept {
  std::uint64_t result = 1;
  std::uint64_t acc = base % k_p;
  while (exp != 0) {
    if (exp & 1) result = mod_mul(result, acc);
    acc = mod_mul(acc, acc);
    exp >>= 1;
  }
  return result;
}

// Inverse via Fermat: a^(p-2) mod p.
[[nodiscard]] std::uint64_t mod_inv(std::uint64_t a) noexcept {
  return mod_pow(a, k_p - 2);
}

struct element_box {
  std::uint64_t value;
};

}  // namespace

class toy_group final : public group {
 public:
  [[nodiscard]] std::string name() const override { return "toy62"; }

  [[nodiscard]] scalar random_scalar(secure_rng& rng) const override {
    // Uniform in [1, q).
    return make_scalar(1 + rng.below(k_q - 1));
  }

  [[nodiscard]] scalar scalar_from_u64(std::uint64_t value) const override {
    return make_scalar(value % k_q);
  }

  [[nodiscard]] scalar scalar_add(const scalar& a, const scalar& b) const override {
    return make_scalar((scalar_value(a) + scalar_value(b)) % k_q);
  }

  [[nodiscard]] group_element identity() const override { return wrap(1); }

  [[nodiscard]] group_element generator() const override { return wrap(k_g); }

  [[nodiscard]] group_element mul_generator(const scalar& k) const override {
    return wrap(mod_pow(k_g, scalar_value(k)));
  }

  [[nodiscard]] group_element mul(const group_element& p, const scalar& k) const override {
    return wrap(mod_pow(unwrap(p), scalar_value(k)));
  }

  [[nodiscard]] group_element add(const group_element& a, const group_element& b) const override {
    return wrap(mod_mul(unwrap(a), unwrap(b)));
  }

  [[nodiscard]] group_element negate(const group_element& a) const override {
    return wrap(mod_inv(unwrap(a)));
  }

  [[nodiscard]] bool is_identity(const group_element& a) const override {
    return unwrap(a) == 1;
  }

  [[nodiscard]] bool equal(const group_element& a, const group_element& b) const override {
    return unwrap(a) == unwrap(b);
  }

  [[nodiscard]] byte_buffer encode(const group_element& a) const override {
    const std::uint64_t v = unwrap(a);
    byte_buffer out(8);
    for (int i = 0; i < 8; ++i) out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
    return out;
  }

  [[nodiscard]] group_element decode(byte_view data) const override {
    expects(data.size() == 8, "toy element must be 8 bytes");
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data[static_cast<std::size_t>(i)];
    expects(v != 0 && v < k_p, "toy element out of range");
    return wrap(v);
  }

  [[nodiscard]] scalar decode_scalar(byte_view data) const override {
    expects(data.size() == 8, "toy scalar must be 8 bytes");
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data[static_cast<std::size_t>(i)];
    expects(v < k_q, "toy scalar out of range");
    return make_scalar(v);
  }

 private:
  [[nodiscard]] static group_element wrap(std::uint64_t value) {
    return group_element{
        std::shared_ptr<const void>{std::make_shared<element_box>(element_box{value})}};
  }

  [[nodiscard]] static std::uint64_t unwrap(const group_element& e) {
    expects(e.valid(), "group element must be valid");
    return static_cast<const element_box*>(e.impl_.get())->value;
  }

  [[nodiscard]] static scalar make_scalar(std::uint64_t value) {
    byte_buffer bytes(8);
    for (int i = 0; i < 8; ++i) bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
    return scalar{std::move(bytes)};
  }

  [[nodiscard]] static std::uint64_t scalar_value(const scalar& k) {
    expects(k.valid() && k.bytes().size() == 8, "toy scalar must be 8 bytes");
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | k.bytes()[static_cast<std::size_t>(i)];
    return v;
  }
};

std::shared_ptr<const group> make_toy_group() {
  return std::make_shared<toy_group>();
}

}  // namespace tormet::crypto
