// Cyclic-group abstraction for the PSC cryptography (EC-ElGamal, shuffles,
// distributed decryption). Two backends share this interface:
//
//  * p256_group — NIST P-256 via OpenSSL EC. The production backend; all
//    security claims refer to this one.
//  * toy_group  — a 62-bit Schnorr group (quadratic residues modulo a safe
//    prime). Cryptographically weak by construction, but ~100x faster and
//    algebraically identical, so unit tests and large simulated deployments
//    can exercise the exact protocol code paths.
//
// Elements and scalars are opaque handles; only a group instance can create
// or combine them, and handles from different backends must not be mixed
// (checked where cheap).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/crypto/secure_rng.h"
#include "src/util/bytes.h"
#include "src/util/check.h"

namespace tormet::crypto {

class group;

/// Opaque group element handle (immutable, cheaply copyable).
class group_element {
 public:
  group_element() = default;

  /// True when this handle refers to an element (default-constructed handles
  /// do not and may only be assigned to).
  [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }

 private:
  friend class p256_group;
  friend class toy_group;
  explicit group_element(std::shared_ptr<const void> impl) noexcept
      : impl_{std::move(impl)} {}
  std::shared_ptr<const void> impl_;
};

/// Opaque scalar (exponent modulo the group order). Stored as canonical
/// big-endian bytes of backend-defined width. Encodings up to 32 bytes —
/// every supported backend — live inline with no heap allocation, which
/// keeps the bulk encrypt paths (one nonce scalar per ciphertext)
/// allocation-free per element; wider encodings fall back to a shared heap
/// buffer.
class scalar {
 public:
  scalar() = default;
  scalar(const scalar&) = default;
  scalar& operator=(const scalar&) = default;
  // User-defined moves so a moved-from scalar reports invalid instead of
  // keeping a stale size over a nulled heap buffer.
  scalar(scalar&& other) noexcept
      : inline_{other.inline_}, heap_{std::move(other.heap_)},
        size_{other.size_} {
    other.size_ = 0;
  }
  scalar& operator=(scalar&& other) noexcept {
    if (this != &other) {
      inline_ = other.inline_;
      heap_ = std::move(other.heap_);
      size_ = other.size_;
      other.size_ = 0;
    }
    return *this;
  }

  [[nodiscard]] bool valid() const noexcept { return size_ != 0; }
  [[nodiscard]] byte_view bytes() const noexcept { return {data(), size_}; }
  /// True when the encoding fits the inline buffer (diagnostics/tests).
  [[nodiscard]] bool is_inline() const noexcept {
    return size_ <= k_inline_bytes;
  }

 private:
  friend class p256_group;
  friend class toy_group;
  friend struct scalar_test_access;
  static constexpr std::size_t k_inline_bytes = 32;

  explicit scalar(byte_view bytes)
      : size_{static_cast<std::uint16_t>(bytes.size())} {
    expects(bytes.size() <= 0xffff, "scalar encoding too wide");
    if (bytes.size() <= k_inline_bytes) {
      std::copy(bytes.begin(), bytes.end(), inline_.begin());
    } else {
      auto heap = std::shared_ptr<std::uint8_t[]>{new std::uint8_t[bytes.size()]};
      std::copy(bytes.begin(), bytes.end(), heap.get());
      heap_ = std::move(heap);
    }
  }

  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return size_ <= k_inline_bytes ? inline_.data() : heap_.get();
  }

  std::array<std::uint8_t, k_inline_bytes> inline_{};
  std::shared_ptr<std::uint8_t[]> heap_;  // only when size_ > k_inline_bytes
  std::uint16_t size_ = 0;
};

/// Abstract prime-order cyclic group.
class group {
 public:
  virtual ~group() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  // -- scalars ------------------------------------------------------------
  /// Uniform scalar in [1, order) — never zero, so "random element" messages
  /// are never the identity.
  [[nodiscard]] virtual scalar random_scalar(secure_rng& rng) const = 0;
  [[nodiscard]] virtual scalar scalar_from_u64(std::uint64_t value) const = 0;
  /// Scalar addition modulo the group order (used by distributed keygen
  /// sanity checks and tests).
  [[nodiscard]] virtual scalar scalar_add(const scalar& a, const scalar& b) const = 0;

  // -- elements -----------------------------------------------------------
  [[nodiscard]] virtual group_element identity() const = 0;
  [[nodiscard]] virtual group_element generator() const = 0;
  /// generator * k (fast path: backends precompute generator tables).
  [[nodiscard]] virtual group_element mul_generator(const scalar& k) const = 0;
  /// point * k.
  [[nodiscard]] virtual group_element mul(const group_element& p,
                                          const scalar& k) const = 0;
  /// Group operation (written additively).
  [[nodiscard]] virtual group_element add(const group_element& a,
                                          const group_element& b) const = 0;
  [[nodiscard]] virtual group_element negate(const group_element& a) const = 0;
  [[nodiscard]] virtual bool is_identity(const group_element& a) const = 0;
  [[nodiscard]] virtual bool equal(const group_element& a,
                                   const group_element& b) const = 0;

  // -- batch operations ----------------------------------------------------
  // Vector forms of the element operations, for the bulk homogeneous work
  // that dominates PSC rounds (bin init, rerandomize-and-mix, decrypt
  // passes). Contract, binding on every override:
  //
  //  * out[i] is the same group element the scalar operation would return
  //    for index i — batch and serial paths are interchangeable and their
  //    encodings are bit-identical;
  //  * out[i] depends only on inputs at index i (no cross-element mixing),
  //    so callers may split a batch into sub-batches at any boundary without
  //    changing results — this is what makes multi-threaded sharding safe;
  //  * paired spans must have equal length (checked);
  //  * empty batches return empty vectors;
  //  * calls are safe concurrently on one (const) instance from multiple
  //    threads.
  //
  // Implementations may amortize allocation and precomputation across the
  // batch: the defaults loop over the scalar ops; p256 reuses one BN_CTX and
  // scratch BIGNUM arena per batch instead of allocating per call; the toy
  // backend uses fixed-base comb tables, a single-allocation element arena,
  // and Montgomery batch inversion for sub_batch.
  //
  // Lifetime note: batch results may share one arena per batch — every
  // returned handle keeps the whole batch's storage alive. Retaining a few
  // elements from a huge batch pins the rest; copy out via encode/decode if
  // that matters.

  /// generator * ks[i] for every i (fixed-base precomputation amortized).
  [[nodiscard]] virtual std::vector<group_element> mul_generator_batch(
      std::span<const scalar> ks) const;
  /// base * ks[i] for every i (one base, many scalars — e.g. pk * nonce).
  [[nodiscard]] virtual std::vector<group_element> mul_batch(
      const group_element& base, std::span<const scalar> ks) const;
  /// pts[i] * k for every i (many points, one scalar — e.g. decrypt shares).
  [[nodiscard]] virtual std::vector<group_element> mul_batch(
      std::span<const group_element> pts, const scalar& k) const;
  /// a[i] + b[i] for every i.
  [[nodiscard]] virtual std::vector<group_element> add_batch(
      std::span<const group_element> a, std::span<const group_element> b) const;
  /// a[i] - b[i] for every i (toy backend: Montgomery batch inversion).
  [[nodiscard]] virtual std::vector<group_element> sub_batch(
      std::span<const group_element> a, std::span<const group_element> b) const;

  // -- serialization ------------------------------------------------------
  [[nodiscard]] virtual byte_buffer encode(const group_element& a) const = 0;
  [[nodiscard]] virtual group_element decode(byte_view data) const = 0;
  [[nodiscard]] virtual byte_buffer encode_scalar(const scalar& k) const;
  [[nodiscard]] virtual scalar decode_scalar(byte_view data) const = 0;

  /// decode() for every encoding, with allocation amortized across the
  /// batch (backends share one element arena instead of one heap node per
  /// element). Same validation and same per-index results as decode().
  [[nodiscard]] virtual std::vector<group_element> decode_batch(
      std::span<const byte_view> data) const;
  /// Decodes every encoding and returns how many are NOT the identity — the
  /// tally server's occupied-bin check — without materializing element
  /// handles at all (zero allocations per element in both backends).
  [[nodiscard]] virtual std::size_t count_non_identity(
      std::span<const byte_view> encodings) const;

  // -- derived helpers ----------------------------------------------------
  /// Uniform non-identity element (generator * random nonzero scalar).
  [[nodiscard]] group_element random_element(secure_rng& rng) const;
  /// a + (-b).
  [[nodiscard]] group_element sub(const group_element& a,
                                  const group_element& b) const;
};

/// NIST P-256 backend (OpenSSL). Thread-compatible: distinct instances may
/// be used concurrently; a single instance is safe for concurrent reads.
[[nodiscard]] std::shared_ptr<const group> make_p256_group();

/// 62-bit Schnorr-group backend. NOT cryptographically secure; for tests and
/// large-scale simulation only.
[[nodiscard]] std::shared_ptr<const group> make_toy_group();

/// Backend selector used by configuration code. Instances are immutable and
/// thread-safe, so make_group returns a process-wide shared instance per
/// backend: repeated rounds (and test cases) reuse the same group object and
/// its internal precompute caches instead of rebuilding them.
enum class group_backend { p256, toy };
[[nodiscard]] std::shared_ptr<const group> make_group(group_backend backend);

}  // namespace tormet::crypto
