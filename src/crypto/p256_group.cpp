// NIST P-256 group backend over OpenSSL's EC_POINT API.
//
// Elements are heap EC_POINTs held by shared_ptr; scalars are 32-byte
// big-endian integers reduced modulo the curve order, stored inline in the
// scalar's small buffer. A thread_local BN_CTX avoids per-operation
// allocation; the batch paths go further and write results into a per-batch
// EC_POINT arena (one control block for the whole batch, handles alias into
// it) with scratch BIGNUM/EC_POINT state hoisted into thread_local storage
// and reused across batch calls.
#include <openssl/bn.h>
#include <openssl/ec.h>
#include <openssl/obj_mac.h>

#include <array>
#include <mutex>
#include <stdexcept>

#include "src/crypto/group.h"
#include "src/util/check.h"

namespace tormet::crypto {

namespace {

constexpr std::size_t k_scalar_bytes = 32;
// Compressed point is 33 bytes; the point at infinity serializes to the
// single byte 0x00.
constexpr std::size_t k_point_bytes = 33;

void ossl_check(int rc, const char* what) {
  if (rc != 1) throw std::runtime_error{std::string{"openssl failure in "} + what};
}

template <typename T>
T* ossl_require(T* p, const char* what) {
  if (p == nullptr) throw std::runtime_error{std::string{"openssl alloc failure in "} + what};
  return p;
}

struct bn_ctx_holder {
  BN_CTX* ctx = nullptr;
  bn_ctx_holder() : ctx{ossl_require(BN_CTX_new(), "BN_CTX_new")} {}
  ~bn_ctx_holder() { BN_CTX_free(ctx); }
};

BN_CTX* tls_bn_ctx() {
  thread_local bn_ctx_holder holder;
  return holder.ctx;
}

struct bignum {
  BIGNUM* bn = nullptr;
  bignum() : bn{ossl_require(BN_new(), "BN_new")} {}
  explicit bignum(BIGNUM* owned) : bn{owned} {}
  ~bignum() { BN_free(bn); }
  bignum(const bignum&) = delete;
  bignum& operator=(const bignum&) = delete;
};

struct point_deleter {
  void operator()(EC_POINT* p) const noexcept { EC_POINT_free(p); }
};
using point_ptr = std::shared_ptr<EC_POINT>;

/// Per-batch output arena: owns every EC_POINT of one batch through a single
/// shared control block. Handles alias into it, so wrapping a batch result
/// costs one refcount bump per element instead of one shared_ptr control
/// block allocation each.
struct point_arena {
  std::vector<EC_POINT*> pts;
  point_arena() = default;
  point_arena(const point_arena&) = delete;
  point_arena& operator=(const point_arena&) = delete;
  ~point_arena() {
    for (EC_POINT* p : pts) EC_POINT_free(p);
  }
};

/// Thread-local scratch reused across batch calls on one curve: a BIGNUM for
/// scalar conversions and an EC_POINT for intermediates (negation in
/// sub_batch, the decode of count_non_identity). Lazily bound to the curve —
/// make_group() hands out one group instance per backend, so in practice the
/// binding happens once per thread.
struct batch_scratch {
  const EC_GROUP* curve = nullptr;
  BIGNUM* bn = nullptr;
  EC_POINT* tmp = nullptr;
  ~batch_scratch() {
    BN_free(bn);
    EC_POINT_free(tmp);
  }
};

[[nodiscard]] batch_scratch& tls_scratch(const EC_GROUP* curve) {
  thread_local batch_scratch scratch;
  if (scratch.curve != curve) {
    BN_free(scratch.bn);
    EC_POINT_free(scratch.tmp);
    scratch.curve = curve;
    scratch.bn = ossl_require(BN_new(), "BN_new");
    scratch.tmp = ossl_require(EC_POINT_new(curve), "EC_POINT_new");
  }
  return scratch;
}

}  // namespace

class p256_group final : public group {
 public:
  p256_group()
      : curve_{ossl_require(EC_GROUP_new_by_curve_name(NID_X9_62_prime256v1),
                            "EC_GROUP_new_by_curve_name")} {
    order_ = EC_GROUP_get0_order(curve_);
    if (order_ == nullptr) throw std::runtime_error{"EC_GROUP_get0_order failed"};
    // Note: no EC_GROUP_precompute_mult — OpenSSL 3 named curves already use
    // constant-time fixed-point generator multiplication internally.
  }

  ~p256_group() override { EC_GROUP_free(curve_); }
  p256_group(const p256_group&) = delete;
  p256_group& operator=(const p256_group&) = delete;

  [[nodiscard]] std::string name() const override { return "p256"; }

  [[nodiscard]] scalar random_scalar(secure_rng& rng) const override {
    // Rejection-sample 32-byte strings below the order; skip zero.
    byte_buffer buf(k_scalar_bytes);
    bignum candidate;
    for (;;) {
      rng.fill(buf);
      ossl_require(BN_bin2bn(buf.data(), static_cast<int>(buf.size()), candidate.bn),
                   "BN_bin2bn");
      if (BN_cmp(candidate.bn, order_) < 0 && !BN_is_zero(candidate.bn)) {
        return make_scalar_from_bn(candidate.bn);
      }
    }
  }

  [[nodiscard]] scalar scalar_from_u64(std::uint64_t value) const override {
    bignum bn;
    ossl_check(BN_set_word(bn.bn, value), "BN_set_word");
    return make_scalar_from_bn(bn.bn);
  }

  [[nodiscard]] scalar scalar_add(const scalar& a, const scalar& b) const override {
    bignum bn_a, bn_b, bn_r;
    to_bn(a, bn_a.bn);
    to_bn(b, bn_b.bn);
    ossl_check(BN_mod_add(bn_r.bn, bn_a.bn, bn_b.bn, order_, tls_bn_ctx()),
               "BN_mod_add");
    return make_scalar_from_bn(bn_r.bn);
  }

  [[nodiscard]] group_element identity() const override {
    point_ptr p = new_point();
    ossl_check(EC_POINT_set_to_infinity(curve_, p.get()), "EC_POINT_set_to_infinity");
    return wrap(std::move(p));
  }

  [[nodiscard]] group_element generator() const override {
    point_ptr p = new_point();
    ossl_check(EC_POINT_copy(p.get(), EC_GROUP_get0_generator(curve_)),
               "EC_POINT_copy");
    return wrap(std::move(p));
  }

  [[nodiscard]] group_element mul_generator(const scalar& k) const override {
    bignum bn;
    to_bn(k, bn.bn);
    point_ptr p = new_point();
    ossl_check(EC_POINT_mul(curve_, p.get(), bn.bn, nullptr, nullptr, tls_bn_ctx()),
               "EC_POINT_mul(gen)");
    return wrap(std::move(p));
  }

  [[nodiscard]] group_element mul(const group_element& p, const scalar& k) const override {
    bignum bn;
    to_bn(k, bn.bn);
    point_ptr r = new_point();
    ossl_check(EC_POINT_mul(curve_, r.get(), nullptr, unwrap(p), bn.bn, tls_bn_ctx()),
               "EC_POINT_mul");
    return wrap(std::move(r));
  }

  [[nodiscard]] group_element add(const group_element& a, const group_element& b) const override {
    point_ptr r = new_point();
    ossl_check(EC_POINT_add(curve_, r.get(), unwrap(a), unwrap(b), tls_bn_ctx()),
               "EC_POINT_add");
    return wrap(std::move(r));
  }

  [[nodiscard]] group_element negate(const group_element& a) const override {
    point_ptr r = new_point();
    ossl_check(EC_POINT_copy(r.get(), unwrap(a)), "EC_POINT_copy");
    ossl_check(EC_POINT_invert(curve_, r.get(), tls_bn_ctx()), "EC_POINT_invert");
    return wrap(std::move(r));
  }

  [[nodiscard]] bool is_identity(const group_element& a) const override {
    return EC_POINT_is_at_infinity(curve_, unwrap(a)) == 1;
  }

  [[nodiscard]] bool equal(const group_element& a, const group_element& b) const override {
    const int rc = EC_POINT_cmp(curve_, unwrap(a), unwrap(b), tls_bn_ctx());
    if (rc < 0) throw std::runtime_error{"EC_POINT_cmp failed"};
    return rc == 0;
  }

  [[nodiscard]] byte_buffer encode(const group_element& a) const override {
    byte_buffer out(k_point_bytes);
    const std::size_t written =
        EC_POINT_point2oct(curve_, unwrap(a), POINT_CONVERSION_COMPRESSED,
                           out.data(), out.size(), tls_bn_ctx());
    if (written == 0) throw std::runtime_error{"EC_POINT_point2oct failed"};
    out.resize(written);  // infinity serializes to 1 byte
    return out;
  }

  [[nodiscard]] group_element decode(byte_view data) const override {
    expects(!data.empty(), "encoded point must be non-empty");
    point_ptr p = new_point();
    ossl_check(EC_POINT_oct2point(curve_, p.get(), data.data(), data.size(),
                                  tls_bn_ctx()),
               "EC_POINT_oct2point");
    return wrap(std::move(p));
  }

  // Batch fast paths: one BN_CTX and the thread_local scratch (BIGNUM +
  // EC_POINT, reused across calls) instead of fresh allocations per call,
  // and every output point lives in a per-batch arena — one shared control
  // block for the whole batch, zero per-element heap nodes on our side
  // (OpenSSL still allocates inside EC_POINT_new, which the public EC API
  // cannot avoid).
  [[nodiscard]] std::vector<group_element> mul_generator_batch(
      std::span<const scalar> ks) const override {
    BN_CTX* ctx = tls_bn_ctx();
    batch_scratch& scratch = tls_scratch(curve_);
    auto arena = new_arena(ks.size());
    for (std::size_t i = 0; i < ks.size(); ++i) {
      to_bn(ks[i], scratch.bn);
      ossl_check(EC_POINT_mul(curve_, arena->pts[i], scratch.bn, nullptr,
                              nullptr, ctx),
                 "EC_POINT_mul(gen)");
    }
    return wrap_arena(std::move(arena));
  }

  [[nodiscard]] std::vector<group_element> mul_batch(
      const group_element& base, std::span<const scalar> ks) const override {
    BN_CTX* ctx = tls_bn_ctx();
    batch_scratch& scratch = tls_scratch(curve_);
    const EC_POINT* b = unwrap(base);
    auto arena = new_arena(ks.size());
    for (std::size_t i = 0; i < ks.size(); ++i) {
      to_bn(ks[i], scratch.bn);
      ossl_check(EC_POINT_mul(curve_, arena->pts[i], nullptr, b, scratch.bn, ctx),
                 "EC_POINT_mul");
    }
    return wrap_arena(std::move(arena));
  }

  [[nodiscard]] std::vector<group_element> mul_batch(
      std::span<const group_element> pts, const scalar& k) const override {
    BN_CTX* ctx = tls_bn_ctx();
    batch_scratch& scratch = tls_scratch(curve_);
    to_bn(k, scratch.bn);  // converted once for the whole batch
    auto arena = new_arena(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      ossl_check(EC_POINT_mul(curve_, arena->pts[i], nullptr, unwrap(pts[i]),
                              scratch.bn, ctx),
                 "EC_POINT_mul");
    }
    return wrap_arena(std::move(arena));
  }

  [[nodiscard]] std::vector<group_element> add_batch(
      std::span<const group_element> a,
      std::span<const group_element> b) const override {
    expects(a.size() == b.size(), "add_batch spans must have equal length");
    BN_CTX* ctx = tls_bn_ctx();
    auto arena = new_arena(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ossl_check(EC_POINT_add(curve_, arena->pts[i], unwrap(a[i]), unwrap(b[i]),
                              ctx),
                 "EC_POINT_add");
    }
    return wrap_arena(std::move(arena));
  }

  [[nodiscard]] std::vector<group_element> sub_batch(
      std::span<const group_element> a,
      std::span<const group_element> b) const override {
    expects(a.size() == b.size(), "sub_batch spans must have equal length");
    BN_CTX* ctx = tls_bn_ctx();
    batch_scratch& scratch = tls_scratch(curve_);
    auto arena = new_arena(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ossl_check(EC_POINT_copy(scratch.tmp, unwrap(b[i])), "EC_POINT_copy");
      ossl_check(EC_POINT_invert(curve_, scratch.tmp, ctx), "EC_POINT_invert");
      ossl_check(EC_POINT_add(curve_, arena->pts[i], unwrap(a[i]), scratch.tmp,
                              ctx),
                 "EC_POINT_add");
    }
    return wrap_arena(std::move(arena));
  }

  [[nodiscard]] std::vector<group_element> decode_batch(
      std::span<const byte_view> data) const override {
    BN_CTX* ctx = tls_bn_ctx();
    auto arena = new_arena(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      expects(!data[i].empty(), "encoded point must be non-empty");
      ossl_check(EC_POINT_oct2point(curve_, arena->pts[i], data[i].data(),
                                    data[i].size(), ctx),
                 "EC_POINT_oct2point");
    }
    return wrap_arena(std::move(arena));
  }

  [[nodiscard]] std::size_t count_non_identity(
      std::span<const byte_view> encodings) const override {
    BN_CTX* ctx = tls_bn_ctx();
    batch_scratch& scratch = tls_scratch(curve_);
    std::size_t count = 0;
    for (const auto& e : encodings) {
      expects(!e.empty(), "encoded point must be non-empty");
      ossl_check(EC_POINT_oct2point(curve_, scratch.tmp, e.data(), e.size(), ctx),
                 "EC_POINT_oct2point");
      if (EC_POINT_is_at_infinity(curve_, scratch.tmp) != 1) ++count;
    }
    return count;
  }

  [[nodiscard]] scalar decode_scalar(byte_view data) const override {
    expects(data.size() == k_scalar_bytes, "p256 scalar must be 32 bytes");
    bignum bn;
    ossl_require(BN_bin2bn(data.data(), static_cast<int>(data.size()), bn.bn),
                 "BN_bin2bn");
    expects(BN_cmp(bn.bn, order_) < 0, "scalar must be below group order");
    return make_scalar_from_bn(bn.bn);
  }

 private:
  [[nodiscard]] point_ptr new_point() const {
    return {ossl_require(EC_POINT_new(curve_), "EC_POINT_new"), point_deleter{}};
  }

  /// Arena with `n` fresh points, ready for batch outputs.
  [[nodiscard]] std::shared_ptr<point_arena> new_arena(std::size_t n) const {
    auto arena = std::make_shared<point_arena>();
    arena->pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      arena->pts.push_back(ossl_require(EC_POINT_new(curve_), "EC_POINT_new"));
    }
    return arena;
  }

  /// Handles aliasing the arena's control block (refcount bump per element).
  [[nodiscard]] static std::vector<group_element> wrap_arena(
      std::shared_ptr<point_arena> arena) {
    std::vector<group_element> out;
    out.reserve(arena->pts.size());
    for (EC_POINT* p : arena->pts) {
      out.push_back(group_element{std::shared_ptr<const void>{arena, p}});
    }
    return out;
  }

  [[nodiscard]] static group_element wrap(point_ptr p) {
    return group_element{std::shared_ptr<const void>{std::move(p)}};
  }

  [[nodiscard]] const EC_POINT* unwrap(const group_element& e) const {
    expects(e.valid(), "group element must be valid");
    return static_cast<const EC_POINT*>(e.impl_.get());
  }

  [[nodiscard]] scalar make_scalar_from_bn(const BIGNUM* bn) const {
    std::array<std::uint8_t, k_scalar_bytes> bytes;
    const int rc = BN_bn2binpad(bn, bytes.data(), static_cast<int>(bytes.size()));
    if (rc < 0) throw std::runtime_error{"BN_bn2binpad failed"};
    return scalar{byte_view{bytes}};  // inline storage, no heap
  }

  void to_bn(const scalar& k, BIGNUM* out) const {
    expects(k.valid(), "scalar must be valid");
    ossl_require(
        BN_bin2bn(k.bytes().data(), static_cast<int>(k.bytes().size()), out),
        "BN_bin2bn");
  }

  EC_GROUP* curve_;
  const BIGNUM* order_ = nullptr;
};

std::shared_ptr<const group> make_p256_group() {
  return std::make_shared<p256_group>();
}

}  // namespace tormet::crypto
