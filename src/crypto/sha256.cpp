#include "src/crypto/sha256.h"

#include <openssl/evp.h>

#include <stdexcept>
#include <utility>

#include "src/util/check.h"

namespace tormet::crypto {

namespace {
void evp_check(int rc, const char* what) {
  if (rc != 1) throw std::runtime_error{std::string{"openssl failure in "} + what};
}
}  // namespace

sha256_digest sha256(byte_view data) {
  sha256_digest out{};
  unsigned int len = 0;
  evp_check(EVP_Digest(data.data(), data.size(), out.data(), &len, EVP_sha256(),
                       nullptr),
            "EVP_Digest");
  ensures(len == k_sha256_size, "sha256 digest length");
  return out;
}

sha256_digest sha256(std::string_view data) { return sha256(as_bytes(data)); }

sha256_hasher::sha256_hasher() {
  EVP_MD_CTX* ctx = EVP_MD_CTX_new();
  if (ctx == nullptr) throw std::bad_alloc{};
  evp_check(EVP_DigestInit_ex(ctx, EVP_sha256(), nullptr), "EVP_DigestInit_ex");
  ctx_ = ctx;
}

sha256_hasher::~sha256_hasher() {
  if (ctx_ != nullptr) EVP_MD_CTX_free(static_cast<EVP_MD_CTX*>(ctx_));
}

sha256_hasher::sha256_hasher(sha256_hasher&& other) noexcept
    : ctx_{std::exchange(other.ctx_, nullptr)} {}

sha256_hasher& sha256_hasher::operator=(sha256_hasher&& other) noexcept {
  if (this != &other) {
    if (ctx_ != nullptr) EVP_MD_CTX_free(static_cast<EVP_MD_CTX*>(ctx_));
    ctx_ = std::exchange(other.ctx_, nullptr);
  }
  return *this;
}

sha256_hasher& sha256_hasher::update(byte_view data) {
  expects(ctx_ != nullptr, "hasher has been moved from");
  evp_check(EVP_DigestUpdate(static_cast<EVP_MD_CTX*>(ctx_), data.data(),
                             data.size()),
            "EVP_DigestUpdate");
  return *this;
}

sha256_hasher& sha256_hasher::update(std::string_view data) {
  return update(as_bytes(data));
}

sha256_hasher& sha256_hasher::update_framed(byte_view data) {
  std::uint8_t len_bytes[8];
  std::uint64_t n = data.size();
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(n >> (8 * i));
  }
  update(byte_view{len_bytes, 8});
  return update(data);
}

sha256_digest sha256_hasher::finish() {
  expects(ctx_ != nullptr, "hasher has been moved from");
  sha256_digest out{};
  unsigned int len = 0;
  auto* ctx = static_cast<EVP_MD_CTX*>(ctx_);
  evp_check(EVP_DigestFinal_ex(ctx, out.data(), &len), "EVP_DigestFinal_ex");
  ensures(len == k_sha256_size, "sha256 digest length");
  evp_check(EVP_DigestInit_ex(ctx, EVP_sha256(), nullptr), "EVP_DigestInit_ex");
  return out;
}

std::uint64_t sha256_trunc64(byte_view data) {
  const sha256_digest d = sha256(data);
  std::uint64_t out = 0;
  for (int i = 7; i >= 0; --i) out = (out << 8) | d[static_cast<std::size_t>(i)];
  return out;
}

std::uint64_t sha256_trunc64(std::string_view data) {
  return sha256_trunc64(as_bytes(data));
}

}  // namespace tormet::crypto
