#include "src/crypto/secret_sharing.h"

#include "src/util/check.h"

namespace tormet::crypto {

std::vector<std::uint64_t> additive_shares(std::uint64_t value, std::size_t n,
                                           secure_rng& rng) {
  expects(n >= 1, "need at least one share");
  std::vector<std::uint64_t> shares(n);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    shares[i] = rng.next_u64();
    sum += shares[i];
  }
  shares[n - 1] = value - sum;  // mod 2^64 by unsigned wraparound
  return shares;
}

std::uint64_t combine_shares(std::span<const std::uint64_t> shares) noexcept {
  std::uint64_t sum = 0;
  for (const auto s : shares) sum += s;
  return sum;
}

std::int64_t to_signed_count(std::uint64_t ring_value) noexcept {
  // Two's-complement reinterpretation: values >= 2^63 are negative.
  return static_cast<std::int64_t>(ring_value);
}

}  // namespace tormet::crypto
