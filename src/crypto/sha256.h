// SHA-256 wrapper over OpenSSL's EVP interface. Used for onion descriptor
// IDs, PSC item hashing, shuffle transcripts, and the deterministic DRBG.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "src/util/bytes.h"

namespace tormet::crypto {

inline constexpr std::size_t k_sha256_size = 32;
using sha256_digest = std::array<std::uint8_t, k_sha256_size>;

/// One-shot SHA-256 of `data`.
[[nodiscard]] sha256_digest sha256(byte_view data);

/// Convenience overload hashing the bytes of a string.
[[nodiscard]] sha256_digest sha256(std::string_view data);

/// Incremental hasher for multi-part inputs (domain-separated hashing,
/// transcript hashing). Not copyable: it owns an OpenSSL EVP context.
class sha256_hasher {
 public:
  sha256_hasher();
  ~sha256_hasher();
  sha256_hasher(const sha256_hasher&) = delete;
  sha256_hasher& operator=(const sha256_hasher&) = delete;
  sha256_hasher(sha256_hasher&& other) noexcept;
  sha256_hasher& operator=(sha256_hasher&& other) noexcept;

  sha256_hasher& update(byte_view data);
  sha256_hasher& update(std::string_view data);
  /// Appends a length-prefixed chunk, preventing concatenation ambiguity.
  sha256_hasher& update_framed(byte_view data);

  /// Finalizes and resets the hasher for reuse.
  [[nodiscard]] sha256_digest finish();

 private:
  void* ctx_ = nullptr;  // EVP_MD_CTX, kept opaque to avoid OpenSSL headers here
};

/// First 8 bytes of SHA-256(data) as a little-endian integer — the item
/// hashing primitive used by PSC's bin mapping and the workload generators.
[[nodiscard]] std::uint64_t sha256_trunc64(byte_view data);
[[nodiscard]] std::uint64_t sha256_trunc64(std::string_view data);

}  // namespace tormet::crypto
