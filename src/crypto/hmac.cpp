#include "src/crypto/hmac.h"

#include <openssl/hmac.h>

#include <stdexcept>

#include "src/util/check.h"

namespace tormet::crypto {

sha256_digest hmac_sha256(byte_view key, byte_view data) {
  sha256_digest out{};
  unsigned int len = 0;
  const unsigned char* result =
      HMAC(EVP_sha256(), key.data(), static_cast<int>(key.size()), data.data(),
           data.size(), out.data(), &len);
  if (result == nullptr) throw std::runtime_error{"openssl failure in HMAC"};
  ensures(len == k_sha256_size, "hmac output length");
  return out;
}

}  // namespace tormet::crypto
