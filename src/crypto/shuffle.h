// Rerandomizing shuffle of ElGamal ciphertext vectors — the mixing step each
// PSC computation party applies before decryption so that no party can link
// decrypted bins back to data collectors or hash positions.
//
// SUBSTITUTION NOTE (see DESIGN.md §1): the deployed PSC uses a
// zero-knowledge *verifiable* shuffle. We implement the shuffle +
// rerandomization exactly, and replace the ZK proof with a hash-chain
// transcript (input digest, output digest, permutation commitment) that a
// verifier with the permutation opening can check. This preserves every
// data-flow and failure path of the protocol while keeping the proof system
// out of scope.
#pragma once

#include <cstdint>
#include <vector>

#include "src/crypto/batch_engine.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/sha256.h"
#include "src/crypto/secure_rng.h"

namespace tormet::crypto {

/// Transcript emitted alongside a shuffle.
struct shuffle_transcript {
  sha256_digest input_digest{};
  sha256_digest output_digest{};
  /// Commitment H(perm_seed) to the permutation/rerandomization opening.
  sha256_digest commitment{};
};

/// Opening a mixer can reveal to an auditor (breaks unlinkability for that
/// hop, so only used in dispute resolution / tests).
struct shuffle_opening {
  std::vector<std::uint32_t> permutation;  // output[i] = rerand(input[perm[i]])
  byte_buffer seed;                        // commitment preimage
};

/// Uniform random permutation of [0, n) (Fisher–Yates over secure bits).
[[nodiscard]] std::vector<std::uint32_t> random_permutation(std::size_t n,
                                                            secure_rng& rng);

/// Digest of a ciphertext vector (framed, order-sensitive). Encodes each
/// ciphertext; when the encodings already exist (wire messages carry them),
/// use digest_encoded_ciphertexts instead of re-serializing.
[[nodiscard]] sha256_digest digest_ciphertexts(
    const elgamal& scheme, std::span<const elgamal_ciphertext> cts);

/// Same digest, computed from pre-encoded ciphertexts.
[[nodiscard]] sha256_digest digest_encoded_ciphertexts(
    std::span<const byte_buffer> encoded);

/// Commitment H(seed ‖ permutation) binding a shuffle opening (shared by
/// the commit and verify sides).
[[nodiscard]] sha256_digest permutation_commitment(
    byte_view seed, std::span<const std::uint32_t> perm);

/// Applies a uniform permutation and rerandomizes every ciphertext under
/// `joint_pub`. Returns the mixed vector; fills `transcript` and, if
/// `opening` is non-null, the audit opening.
[[nodiscard]] std::vector<elgamal_ciphertext> shuffle_and_rerandomize(
    const elgamal& scheme, const group_element& joint_pub,
    std::span<const elgamal_ciphertext> input, secure_rng& rng,
    shuffle_transcript& transcript, shuffle_opening* opening = nullptr);

/// Mix output with its serialized form: mixers sit between two wire
/// messages, so producing the encodings once here lets the caller reuse
/// them for both the transcript digest and the outgoing message.
struct shuffle_result {
  std::vector<elgamal_ciphertext> output;
  std::vector<byte_buffer> output_encoded;  // output_encoded[i] = encode(output[i])
};

/// Batched + threaded mix pass: permutes, rerandomizes via `engine` (the
/// permutation, batch seed, and commitment seed come from `rng`; group math
/// runs on the engine's pool), and fills `transcript` from `input_encoded`
/// and the freshly encoded output without re-serializing either vector.
/// `input_encoded[i]` must equal scheme.encode(input[i]) (digest-checked
/// protocols would reject a mismatch downstream, not here).
[[nodiscard]] shuffle_result shuffle_and_rerandomize_encoded(
    const batch_engine& engine, const group_element& joint_pub,
    std::span<const elgamal_ciphertext> input,
    std::span<const byte_buffer> input_encoded, secure_rng& rng,
    shuffle_transcript& transcript, shuffle_opening* opening = nullptr);

/// Structural verification available to every party: transcript digests
/// match the actual vectors and sizes are preserved.
[[nodiscard]] bool verify_shuffle_structure(
    const elgamal& scheme, std::span<const elgamal_ciphertext> input,
    std::span<const elgamal_ciphertext> output,
    const shuffle_transcript& transcript);

/// Full audit with the opening: checks the commitment, the permutation
/// being a bijection, and that each output decrypts-equal to its claimed
/// input under rerandomization (requires the joint secret in tests).
[[nodiscard]] bool verify_shuffle_opening(const elgamal& scheme,
                                          const scalar& joint_secret,
                                          std::span<const elgamal_ciphertext> input,
                                          std::span<const elgamal_ciphertext> output,
                                          const shuffle_transcript& transcript,
                                          const shuffle_opening& opening);

}  // namespace tormet::crypto
