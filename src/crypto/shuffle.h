// Rerandomizing shuffle of ElGamal ciphertext vectors — the mixing step each
// PSC computation party applies before decryption so that no party can link
// decrypted bins back to data collectors or hash positions.
//
// SUBSTITUTION NOTE (see DESIGN.md §1): the deployed PSC uses a
// zero-knowledge *verifiable* shuffle. We implement the shuffle +
// rerandomization exactly, and replace the ZK proof with a hash-chain
// transcript (input digest, output digest, permutation commitment) that a
// verifier with the permutation opening can check. This preserves every
// data-flow and failure path of the protocol while keeping the proof system
// out of scope.
#pragma once

#include <cstdint>
#include <vector>

#include "src/crypto/elgamal.h"
#include "src/crypto/sha256.h"
#include "src/crypto/secure_rng.h"

namespace tormet::crypto {

/// Transcript emitted alongside a shuffle.
struct shuffle_transcript {
  sha256_digest input_digest{};
  sha256_digest output_digest{};
  /// Commitment H(perm_seed) to the permutation/rerandomization opening.
  sha256_digest commitment{};
};

/// Opening a mixer can reveal to an auditor (breaks unlinkability for that
/// hop, so only used in dispute resolution / tests).
struct shuffle_opening {
  std::vector<std::uint32_t> permutation;  // output[i] = rerand(input[perm[i]])
  byte_buffer seed;                        // commitment preimage
};

/// Uniform random permutation of [0, n) (Fisher–Yates over secure bits).
[[nodiscard]] std::vector<std::uint32_t> random_permutation(std::size_t n,
                                                            secure_rng& rng);

/// Digest of a ciphertext vector (framed, order-sensitive).
[[nodiscard]] sha256_digest digest_ciphertexts(
    const elgamal& scheme, std::span<const elgamal_ciphertext> cts);

/// Applies a uniform permutation and rerandomizes every ciphertext under
/// `joint_pub`. Returns the mixed vector; fills `transcript` and, if
/// `opening` is non-null, the audit opening.
[[nodiscard]] std::vector<elgamal_ciphertext> shuffle_and_rerandomize(
    const elgamal& scheme, const group_element& joint_pub,
    std::span<const elgamal_ciphertext> input, secure_rng& rng,
    shuffle_transcript& transcript, shuffle_opening* opening = nullptr);

/// Structural verification available to every party: transcript digests
/// match the actual vectors and sizes are preserved.
[[nodiscard]] bool verify_shuffle_structure(
    const elgamal& scheme, std::span<const elgamal_ciphertext> input,
    std::span<const elgamal_ciphertext> output,
    const shuffle_transcript& transcript);

/// Full audit with the opening: checks the commitment, the permutation
/// being a bijection, and that each output decrypts-equal to its claimed
/// input under rerandomization (requires the joint secret in tests).
[[nodiscard]] bool verify_shuffle_opening(const elgamal& scheme,
                                          const scalar& joint_secret,
                                          std::span<const elgamal_ciphertext> input,
                                          std::span<const elgamal_ciphertext> output,
                                          const shuffle_transcript& transcript,
                                          const shuffle_opening& opening);

}  // namespace tormet::crypto
