#include "src/crypto/batch_engine.h"

#include <utility>

#include "src/util/check.h"

namespace tormet::crypto {

batch_engine::batch_engine(std::shared_ptr<const group> g,
                           std::shared_ptr<util::thread_pool> pool,
                           std::size_t shard_size)
    : scheme_{std::move(g)}, pool_{std::move(pool)}, shard_size_{shard_size} {
  expects(shard_size_ > 0, "batch_engine shard size must be positive");
}

sha256_digest batch_engine::derive_seed(secure_rng& rng) {
  sha256_digest seed{};
  rng.fill(seed);
  return seed;
}

sha256_digest batch_engine::shard_stream_key(const sha256_digest& seed,
                                             std::size_t shard_index) {
  sha256_hasher h;
  h.update("tormet.batch.shard.v1");
  h.update_framed(byte_view{seed.data(), seed.size()});
  std::uint8_t idx[8];
  for (int i = 0; i < 8; ++i) {
    idx[i] = static_cast<std::uint8_t>(std::uint64_t{shard_index} >> (8 * i));
  }
  h.update(byte_view{idx, 8});
  return h.finish();
}

template <typename Fn>
void batch_engine::run_sharded(std::size_t n, Fn&& fn) const {
  if (n == 0) return;
  const auto shard_fn = [&](std::size_t begin, std::size_t end) {
    // parallel_for's grain equals shard_size_, so every chunk is exactly one
    // shard (the last may be short).
    fn(begin / shard_size_, begin, end);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(n, shard_size_, shard_fn);
    return;
  }
  for (std::size_t begin = 0; begin < n; begin += shard_size_) {
    shard_fn(begin, std::min(begin + shard_size_, n));
  }
}

std::vector<elgamal_ciphertext> batch_engine::encrypt_zero_batch(
    const group_element& pub, std::size_t count,
    const sha256_digest& seed) const {
  std::vector<elgamal_ciphertext> out(count);
  run_sharded(count, [&](std::size_t shard, std::size_t begin, std::size_t end) {
    stream_rng rng{shard_stream_key(seed, shard)};
    std::vector<elgamal_ciphertext> slice =
        scheme_.encrypt_zero_batch(pub, end - begin, rng);
    std::move(slice.begin(), slice.end(), out.begin() + begin);
  });
  return out;
}

std::vector<elgamal_ciphertext> batch_engine::encrypt_bits_batch(
    const group_element& pub, std::span<const std::uint8_t> bits,
    const sha256_digest& seed) const {
  std::vector<elgamal_ciphertext> out(bits.size());
  run_sharded(bits.size(),
              [&](std::size_t shard, std::size_t begin, std::size_t end) {
    stream_rng rng{shard_stream_key(seed, shard)};
    std::vector<elgamal_ciphertext> slice =
        scheme_.encrypt_bits_batch(pub, bits.subspan(begin, end - begin), rng);
    std::move(slice.begin(), slice.end(), out.begin() + begin);
  });
  return out;
}

std::vector<elgamal_ciphertext> batch_engine::rerandomize_batch(
    const group_element& pub, std::span<const elgamal_ciphertext> cts,
    const sha256_digest& seed) const {
  std::vector<elgamal_ciphertext> out(cts.size());
  run_sharded(cts.size(),
              [&](std::size_t shard, std::size_t begin, std::size_t end) {
    stream_rng rng{shard_stream_key(seed, shard)};
    std::vector<elgamal_ciphertext> slice = scheme_.rerandomize_batch(
        pub, cts.subspan(begin, end - begin), rng);
    std::move(slice.begin(), slice.end(), out.begin() + begin);
  });
  return out;
}

std::vector<elgamal_ciphertext> batch_engine::strip_share_batch(
    std::span<const elgamal_ciphertext> cts, const scalar& share) const {
  std::vector<elgamal_ciphertext> out(cts.size());
  run_sharded(cts.size(),
              [&](std::size_t, std::size_t begin, std::size_t end) {
    std::vector<elgamal_ciphertext> slice =
        scheme_.strip_share_batch(cts.subspan(begin, end - begin), share);
    std::move(slice.begin(), slice.end(), out.begin() + begin);
  });
  return out;
}

std::vector<group_element> batch_engine::decrypt_batch(
    const scalar& secret, std::span<const elgamal_ciphertext> cts) const {
  std::vector<group_element> out(cts.size());
  run_sharded(cts.size(),
              [&](std::size_t, std::size_t begin, std::size_t end) {
    std::vector<group_element> slice =
        scheme_.decrypt_batch(secret, cts.subspan(begin, end - begin));
    std::move(slice.begin(), slice.end(), out.begin() + begin);
  });
  return out;
}

}  // namespace tormet::crypto
