#include "src/crypto/batch_engine.h"

#include <atomic>
#include <utility>

#include "src/util/check.h"

namespace tormet::crypto {

batch_engine::batch_engine(std::shared_ptr<const group> g,
                           std::shared_ptr<util::thread_pool> pool,
                           std::size_t shard_size)
    : scheme_{std::move(g)}, pool_{std::move(pool)}, shard_size_{shard_size} {
  expects(shard_size_ > 0, "batch_engine shard size must be positive");
}

sha256_digest batch_engine::derive_seed(secure_rng& rng) {
  sha256_digest seed{};
  rng.fill(seed);
  return seed;
}

sha256_digest batch_engine::shard_stream_key(const sha256_digest& seed,
                                             std::size_t shard_index) {
  sha256_hasher h;
  h.update("tormet.batch.shard.v1");
  h.update_framed(byte_view{seed.data(), seed.size()});
  std::uint8_t idx[8];
  for (int i = 0; i < 8; ++i) {
    idx[i] = static_cast<std::uint8_t>(std::uint64_t{shard_index} >> (8 * i));
  }
  h.update(byte_view{idx, 8});
  return h.finish();
}

template <typename Fn>
void batch_engine::run_sharded(std::size_t n, Fn&& fn) const {
  if (n == 0) return;
  const auto shard_fn = [&](std::size_t begin, std::size_t end) {
    // parallel_for's grain equals shard_size_, so every chunk is exactly one
    // shard (the last may be short).
    fn(begin / shard_size_, begin, end);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(n, shard_size_, shard_fn);
    return;
  }
  for (std::size_t begin = 0; begin < n; begin += shard_size_) {
    shard_fn(begin, std::min(begin + shard_size_, n));
  }
}

template <typename T, typename Fn>
std::vector<T> batch_engine::map_sharded(std::size_t n, Fn&& per_shard) const {
  std::vector<T> out(n);
  run_sharded(n, [&](std::size_t shard, std::size_t begin, std::size_t end) {
    std::vector<T> slice = per_shard(shard, begin, end);
    std::move(slice.begin(), slice.end(), out.begin() + begin);
  });
  return out;
}

std::vector<elgamal_ciphertext> batch_engine::encrypt_zero_batch(
    const group_element& pub, std::size_t count,
    const sha256_digest& seed) const {
  return map_sharded<elgamal_ciphertext>(
      count, [&](std::size_t shard, std::size_t begin, std::size_t end) {
        stream_rng rng{shard_stream_key(seed, shard)};
        return scheme_.encrypt_zero_batch(pub, end - begin, rng);
      });
}

std::vector<elgamal_ciphertext> batch_engine::encrypt_bits_batch(
    const group_element& pub, std::span<const std::uint8_t> bits,
    const sha256_digest& seed) const {
  return map_sharded<elgamal_ciphertext>(
      bits.size(), [&](std::size_t shard, std::size_t begin, std::size_t end) {
        stream_rng rng{shard_stream_key(seed, shard)};
        return scheme_.encrypt_bits_batch(pub, bits.subspan(begin, end - begin),
                                          rng);
      });
}

std::vector<elgamal_ciphertext> batch_engine::rerandomize_batch(
    const group_element& pub, std::span<const elgamal_ciphertext> cts,
    const sha256_digest& seed) const {
  return map_sharded<elgamal_ciphertext>(
      cts.size(), [&](std::size_t shard, std::size_t begin, std::size_t end) {
        stream_rng rng{shard_stream_key(seed, shard)};
        return scheme_.rerandomize_batch(pub, cts.subspan(begin, end - begin),
                                         rng);
      });
}

std::vector<elgamal_ciphertext> batch_engine::strip_share_batch(
    std::span<const elgamal_ciphertext> cts, const scalar& share) const {
  return map_sharded<elgamal_ciphertext>(
      cts.size(), [&](std::size_t, std::size_t begin, std::size_t end) {
        return scheme_.strip_share_batch(cts.subspan(begin, end - begin), share);
      });
}

std::vector<group_element> batch_engine::decrypt_batch(
    const scalar& secret, std::span<const elgamal_ciphertext> cts) const {
  return map_sharded<group_element>(
      cts.size(), [&](std::size_t, std::size_t begin, std::size_t end) {
        return scheme_.decrypt_batch(secret, cts.subspan(begin, end - begin));
      });
}

std::vector<elgamal_ciphertext> batch_engine::add_batch(
    std::span<const elgamal_ciphertext> c1,
    std::span<const elgamal_ciphertext> c2) const {
  expects(c1.size() == c2.size(), "add_batch spans must have equal length");
  return map_sharded<elgamal_ciphertext>(
      c1.size(), [&](std::size_t, std::size_t begin, std::size_t end) {
        return scheme_.add_batch(c1.subspan(begin, end - begin),
                                 c2.subspan(begin, end - begin));
      });
}

std::vector<elgamal_ciphertext> batch_engine::decode_batch(
    std::span<const byte_buffer> data) const {
  return map_sharded<elgamal_ciphertext>(
      data.size(), [&](std::size_t, std::size_t begin, std::size_t end) {
        return scheme_.decode_batch(data.subspan(begin, end - begin));
      });
}

std::vector<byte_buffer> batch_engine::encode_batch(
    std::span<const elgamal_ciphertext> cts) const {
  return map_sharded<byte_buffer>(
      cts.size(), [&](std::size_t, std::size_t begin, std::size_t end) {
        return scheme_.encode_batch(cts.subspan(begin, end - begin));
      });
}

std::uint64_t batch_engine::tally_decode_count(
    std::span<const byte_buffer> data) const {
  std::atomic<std::uint64_t> count{0};
  run_sharded(data.size(),
              [&](std::size_t, std::size_t begin, std::size_t end) {
    count.fetch_add(scheme_.count_non_identity_plaintexts(
                        data.subspan(begin, end - begin)),
                    std::memory_order_relaxed);
  });
  return count.load();
}

}  // namespace tormet::crypto
