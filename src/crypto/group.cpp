#include "src/crypto/group.h"

#include "src/util/check.h"

namespace tormet::crypto {

byte_buffer group::encode_scalar(const scalar& k) const {
  expects(k.valid(), "scalar must be valid");
  const byte_view bytes = k.bytes();
  return {bytes.begin(), bytes.end()};
}

std::vector<group_element> group::mul_generator_batch(
    std::span<const scalar> ks) const {
  std::vector<group_element> out;
  out.reserve(ks.size());
  for (const auto& k : ks) out.push_back(mul_generator(k));
  return out;
}

std::vector<group_element> group::mul_batch(const group_element& base,
                                            std::span<const scalar> ks) const {
  std::vector<group_element> out;
  out.reserve(ks.size());
  for (const auto& k : ks) out.push_back(mul(base, k));
  return out;
}

std::vector<group_element> group::mul_batch(std::span<const group_element> pts,
                                            const scalar& k) const {
  std::vector<group_element> out;
  out.reserve(pts.size());
  for (const auto& p : pts) out.push_back(mul(p, k));
  return out;
}

std::vector<group_element> group::add_batch(
    std::span<const group_element> a, std::span<const group_element> b) const {
  expects(a.size() == b.size(), "add_batch spans must have equal length");
  std::vector<group_element> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(add(a[i], b[i]));
  return out;
}

std::vector<group_element> group::sub_batch(
    std::span<const group_element> a, std::span<const group_element> b) const {
  expects(a.size() == b.size(), "sub_batch spans must have equal length");
  std::vector<group_element> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(sub(a[i], b[i]));
  return out;
}

std::vector<group_element> group::decode_batch(
    std::span<const byte_view> data) const {
  std::vector<group_element> out;
  out.reserve(data.size());
  for (const auto& d : data) out.push_back(decode(d));
  return out;
}

std::size_t group::count_non_identity(
    std::span<const byte_view> encodings) const {
  std::size_t count = 0;
  for (const auto& e : encodings) {
    if (!is_identity(decode(e))) ++count;
  }
  return count;
}

group_element group::random_element(secure_rng& rng) const {
  return mul_generator(random_scalar(rng));
}

group_element group::sub(const group_element& a, const group_element& b) const {
  return add(a, negate(b));
}

std::shared_ptr<const group> make_group(group_backend backend) {
  // Groups are immutable and safe for concurrent use, so one instance per
  // backend serves the whole process: every round and every test case share
  // the same comb-table/scratch caches instead of rebuilding them.
  switch (backend) {
    case group_backend::p256: {
      static const std::shared_ptr<const group> instance = make_p256_group();
      return instance;
    }
    case group_backend::toy: {
      static const std::shared_ptr<const group> instance = make_toy_group();
      return instance;
    }
  }
  throw precondition_error{"unknown group backend"};
}

}  // namespace tormet::crypto
