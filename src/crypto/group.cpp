#include "src/crypto/group.h"

#include "src/util/check.h"

namespace tormet::crypto {

byte_buffer group::encode_scalar(const scalar& k) const {
  expects(k.valid(), "scalar must be valid");
  return k.bytes();
}

group_element group::random_element(secure_rng& rng) const {
  return mul_generator(random_scalar(rng));
}

group_element group::sub(const group_element& a, const group_element& b) const {
  return add(a, negate(b));
}

std::shared_ptr<const group> make_group(group_backend backend) {
  switch (backend) {
    case group_backend::p256: return make_p256_group();
    case group_backend::toy: return make_toy_group();
  }
  throw precondition_error{"unknown group backend"};
}

}  // namespace tormet::crypto
