// One DC's simulated relay deployment: a fleet of stats_agents, the
// publish directory they write into, and the aggregator that drains it.
// The DC's windowed cursor stream is routed event-by-assignment onto the
// fleet (stable per-circuit hash, like every partition in the repo), each
// event stamped with a DC-local sequence number; at the window boundary
// every agent publishes its `.pub` file and the aggregator merges the
// directory back into one ordered ingest span for the sharded DC plane.
//
//   cursor window ──route()──> N stats_agents (sample + accumulate)
//                                   │ publish (atomic .pub per relay)
//                              publish dir
//                                   │ collect_epoch (scan/merge/delete)
//                              core::event_sink (sharded DC ingest)
//
// The whole detour is deterministic: at sample_prob 1.0 the merged span
// IS the cursor window (every event kept, order reconstructed), and at
// p < 1.0 it is the order-preserving sampled subsequence — identical to
// filtering the cursor feed directly, which is how the orchestrator's
// reference path checks it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/event_sink.h"
#include "src/relay/aggregator.h"
#include "src/relay/stats_agent.h"

namespace tormet::relay {

class relay_plane {
 public:
  /// A fleet of `relays` agents publishing into `publish_dir` (created if
  /// absent). `sampling_seed` comes from sampling_seed_of(plan.rng_seed);
  /// `grace_epochs` is forwarded to the aggregator.
  relay_plane(std::uint64_t relays, double sample_prob,
              std::uint64_t sampling_seed, const std::string& publish_dir,
              std::uint64_t grace_epochs = 1);

  /// Routes a span of observed events onto the fleet: each event goes to
  /// agent shard_of(shard_key_of(ev), relays) carrying the next DC-local
  /// sequence number.
  void route(const tor::event* evs, std::size_t n);

  /// Closes collection window `epoch`: every agent publishes (empty
  /// windows included — absence signals a missing publisher), the
  /// aggregator collects the directory into `sink`, and the sequence
  /// counter resets for the next window. Returns events ingested.
  std::size_t close_window(std::uint64_t epoch, core::event_sink& sink);

  [[nodiscard]] const aggregate_stats& totals() const noexcept {
    return aggregator_.totals();
  }
  [[nodiscard]] std::uint64_t relays() const noexcept {
    return agents_.size();
  }

 private:
  std::string dir_;
  std::vector<stats_agent> agents_;
  aggregator aggregator_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tormet::relay
