// The relay-embedded always-on stats agent (the moneTor mt_stats shape):
// a lightweight module living conceptually *inside* a relay process that
// samples a configurable fraction of circuits, accumulates one collection
// window of sampled events in RAM, and publishes the window as an atomic
// `.pub` file for a central aggregation service to consume and delete
// (src/relay/aggregator.h).
//
// Sampling is per circuit key, not per event: the decision hashes
// tor::shard_key_of(ev) — the client identity / stream target key every
// other partition in the repo uses — against a seed-derived threshold, so
// all events of one client either pass or fail together (a sampled
// cardinality estimate stays unbiased) and the decision is identical no
// matter which relay of the fleet observes the event. sample_prob 1.0
// short-circuits to "keep everything", byte-identical to an unsampled
// feed, which is what the repo's standing byte-identity gate checks.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/relay/publish.h"
#include "src/tor/event_shard.h"
#include "src/tor/events.h"

namespace tormet::relay {

/// Derives the deployment-wide sampling seed from the plan's rng_seed.
/// One extra mix with a fixed salt keeps the sampling hash stream disjoint
/// from the shard partitioner, which hashes the same keys.
[[nodiscard]] constexpr std::uint64_t sampling_seed_of(
    std::uint64_t rng_seed) noexcept {
  return tor::shard_mix(rng_seed ^ 0x72656c61792d7361ULL);  // "relay-sa"
}

/// The per-circuit sampling predicate: true iff `ev`'s circuit key is in
/// the kept fraction. Deterministic in (seed, key) alone — every relay,
/// every incarnation, and the in-process reference path agree event by
/// event. prob >= 1.0 keeps everything (no hash evaluated).
[[nodiscard]] inline bool sample_event(const tor::event& ev,
                                       std::uint64_t sampling_seed,
                                       double prob) noexcept {
  if (prob >= 1.0) return true;
  if (prob <= 0.0) return false;
  const std::uint64_t h =
      tor::shard_mix(sampling_seed ^ tor::shard_mix(tor::shard_key_of(ev)));
  // Map prob onto a 64-bit threshold: keep iff h < prob * 2^64.
  const auto threshold = static_cast<std::uint64_t>(
      prob * 18446744073709551616.0 /* 2^64 */);
  return h < threshold;
}

/// One relay's stats accumulator. offer() runs the sampler and buffers the
/// survivors with their DC-local sequence numbers; publish() writes the
/// window atomically and resets the accumulator for the next one.
class stats_agent {
 public:
  stats_agent(std::uint64_t relay, std::uint64_t sampling_seed,
              double sample_prob)
      : relay_{relay}, seed_{sampling_seed}, prob_{sample_prob} {}

  /// Offers one observed event; `seq` is the DC-local ingest sequence
  /// number (assigned by relay_plane in arrival order across the fleet).
  void offer(std::uint64_t seq, const tor::event& ev) {
    ++observed_;
    if (!sample_event(ev, seed_, prob_)) return;
    events_.emplace_back(seq, ev);
  }

  /// Publishes the accumulated window as `dir`/relay-<id>-window-<epoch>.pub
  /// (atomic tmp + rename) and resets the accumulator. Every agent
  /// publishes every window, even an empty one: an absent file is how the
  /// aggregator detects a missing publisher. Returns the written path.
  std::string publish(std::uint64_t epoch, const std::string& dir) {
    pub_window w;
    w.header.relay = relay_;
    w.header.epoch = epoch;
    w.header.observed = observed_;
    w.header.sampled = events_.size();
    w.events = std::move(events_);
    const std::string path = write_pub_file_atomic(w, dir);
    events_.clear();
    observed_ = 0;
    return path;
  }

  [[nodiscard]] std::uint64_t relay() const noexcept { return relay_; }
  [[nodiscard]] std::uint64_t observed() const noexcept { return observed_; }
  [[nodiscard]] std::size_t sampled() const noexcept { return events_.size(); }

 private:
  std::uint64_t relay_;
  std::uint64_t seed_;
  double prob_;
  std::uint64_t observed_ = 0;
  std::vector<std::pair<std::uint64_t, tor::event>> events_;
};

}  // namespace tormet::relay
