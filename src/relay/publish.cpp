#include "src/relay/publish.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/net/wire.h"
#include "src/tor/event_codec.h"
#include "src/util/op_log.h"

namespace tormet::relay {

namespace {

constexpr std::string_view k_pub_magic = "tormet-relay-pub-v1\n";

/// Soft cap on one event record's payload: a new record starts once the
/// current one crosses this, so a torn write near the file tail loses at
/// most ~1 MiB of frames (and the CRC catches the tear regardless).
constexpr std::size_t k_record_soft_bytes = 1u << 20;

void append_framed(byte_buffer& out, byte_view payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = util::crc32(payload);
  const auto put_u32 = [&out](std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
  };
  put_u32(len);
  put_u32(crc);
  out.insert(out.end(), payload.begin(), payload.end());
}

[[noreturn]] void pub_fail(const std::string& what) {
  throw publish_error{"relay publish: " + what};
}

/// Reads the next [len][crc][payload] frame starting at `pos`; advances
/// `pos` past it. Throws publish_error on truncation or CRC mismatch.
[[nodiscard]] byte_view next_frame(byte_view data, std::size_t& pos) {
  const auto get_u32 = [&](std::size_t at) {
    return static_cast<std::uint32_t>(data[at]) |
           (static_cast<std::uint32_t>(data[at + 1]) << 8) |
           (static_cast<std::uint32_t>(data[at + 2]) << 16) |
           (static_cast<std::uint32_t>(data[at + 3]) << 24);
  };
  if (data.size() - pos < 8) pub_fail("truncated record frame");
  const std::uint32_t len = get_u32(pos);
  const std::uint32_t crc = get_u32(pos + 4);
  if (len > (64u << 20)) pub_fail("oversized record");
  if (data.size() - pos - 8 < len) pub_fail("truncated record payload");
  const byte_view payload = data.subspan(pos + 8, len);
  if (util::crc32(payload) != crc) pub_fail("record CRC mismatch");
  pos += 8 + len;
  return payload;
}

}  // namespace

std::string pub_file_name(std::uint64_t relay, std::uint64_t epoch) {
  std::ostringstream out;
  out << "relay-" << relay << "-window-" << epoch << ".pub";
  return out.str();
}

bool parse_pub_file_name(const std::string& name, std::uint64_t& relay,
                         std::uint64_t& epoch) {
  constexpr std::string_view prefix = "relay-";
  constexpr std::string_view suffix = ".pub";
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::string body =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  const std::size_t sep = body.find("-window-");
  if (sep == std::string::npos) return false;
  const std::string relay_str = body.substr(0, sep);
  const std::string epoch_str = body.substr(sep + std::strlen("-window-"));
  const auto parse_u64 = [](const std::string& s, std::uint64_t& out) {
    if (s.empty() || s.size() > 19) return false;
    std::uint64_t v = 0;
    for (const char c : s) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = v;
    return true;
  };
  return parse_u64(relay_str, relay) && parse_u64(epoch_str, epoch);
}

byte_buffer encode_pub_window(const pub_window& w) {
  byte_buffer out;
  out.insert(out.end(), k_pub_magic.begin(), k_pub_magic.end());
  {
    net::wire_writer header;
    header.write_u64(w.header.relay);
    header.write_u64(w.header.epoch);
    header.write_u64(w.header.observed);
    header.write_u64(w.header.sampled);
    append_framed(out, header.data());
  }
  net::wire_writer batch;
  std::size_t batch_count = 0;
  const auto flush_batch = [&] {
    if (batch_count == 0) return;
    net::wire_writer record;
    record.write_varint(batch_count);
    // Raw append (no length prefix): the varint count delimits the batch
    // and each entry is self-delimiting.
    const byte_buffer body = batch.take();
    byte_buffer payload = record.take();
    payload.insert(payload.end(), body.begin(), body.end());
    append_framed(out, payload);
    batch = net::wire_writer{};
    batch_count = 0;
  };
  for (const auto& [seq, ev] : w.events) {
    batch.write_varint(seq);
    net::wire_writer body;
    tor::encode_event(body, ev);
    batch.write_bytes(body.data());
    ++batch_count;
    if (batch.data().size() >= k_record_soft_bytes) flush_batch();
  }
  flush_batch();
  return out;
}

pub_window decode_pub_window(byte_view data) {
  if (data.size() < k_pub_magic.size() ||
      std::memcmp(data.data(), k_pub_magic.data(), k_pub_magic.size()) != 0) {
    pub_fail("bad magic");
  }
  std::size_t pos = k_pub_magic.size();
  pub_window w;
  {
    const byte_view payload = next_frame(data, pos);
    net::wire_reader in{payload};
    try {
      w.header.relay = in.read_u64();
      w.header.epoch = in.read_u64();
      w.header.observed = in.read_u64();
      w.header.sampled = in.read_u64();
      in.expect_end();
    } catch (const net::wire_error& e) {
      pub_fail(std::string{"malformed header: "} + e.what());
    }
  }
  while (pos < data.size()) {
    const byte_view payload = next_frame(data, pos);
    net::wire_reader in{payload};
    try {
      const std::uint64_t count = in.read_varint();
      if (count > w.header.sampled) pub_fail("batch count exceeds header");
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t seq = in.read_varint();
        const byte_buffer body = in.read_bytes();
        net::wire_reader ev_in{body};
        w.events.emplace_back(seq, tor::decode_event(ev_in));
      }
      in.expect_end();
    } catch (const net::wire_error& e) {
      pub_fail(std::string{"malformed event batch: "} + e.what());
    }
  }
  if (w.events.size() != w.header.sampled) {
    pub_fail("sampled count does not match event records");
  }
  return w;
}

std::string write_pub_file_atomic(const pub_window& w,
                                  const std::string& dir) {
  const std::string path = dir + "/" + pub_file_name(w.header.relay,
                                                     w.header.epoch);
  const std::string tmp = path + ".tmp";
  const byte_buffer bytes = encode_pub_window(w);
  {
    std::ofstream out{tmp, std::ios::trunc | std::ios::binary};
    if (!out.good()) pub_fail("cannot open publish temp file " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) pub_fail("short write on publish temp file " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    pub_fail("atomic rename of publish file failed: " + path);
  }
  return path;
}

pub_window load_pub_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in.good()) pub_fail("cannot open publish file " + path);
  byte_buffer bytes{std::istreambuf_iterator<char>{in},
                    std::istreambuf_iterator<char>{}};
  return decode_pub_window(bytes);
}

}  // namespace tormet::relay
