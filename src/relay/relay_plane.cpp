#include "src/relay/relay_plane.h"

#include <filesystem>

#include "src/tor/event_shard.h"
#include "src/util/check.h"

namespace tormet::relay {

relay_plane::relay_plane(std::uint64_t relays, double sample_prob,
                         std::uint64_t sampling_seed,
                         const std::string& publish_dir,
                         std::uint64_t grace_epochs)
    : dir_{publish_dir}, aggregator_{publish_dir, relays, grace_epochs} {
  expects(relays >= 1, "relay_plane needs at least one relay");
  std::filesystem::create_directories(dir_);
  agents_.reserve(relays);
  for (std::uint64_t r = 0; r < relays; ++r) {
    agents_.emplace_back(r, sampling_seed, sample_prob);
  }
}

void relay_plane::route(const tor::event* evs, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r =
        tor::shard_of(tor::shard_key_of(evs[i]), agents_.size());
    agents_[r].offer(next_seq_++, evs[i]);
  }
}

std::size_t relay_plane::close_window(std::uint64_t epoch,
                                      core::event_sink& sink) {
  for (auto& agent : agents_) agent.publish(epoch, dir_);
  next_seq_ = 0;
  return aggregator_.collect_epoch(epoch, sink);
}

}  // namespace tormet::relay
