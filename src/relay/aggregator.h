// The central aggregation service for relay publish directories (the
// moneTor central.sh/combine.py shape): each collection epoch it scans
// the directory, ingests every accepted window into the DC's sharded
// ingest plane as contiguous spans (core::event_sink::ingest, never
// per-event observe), deletes the consumed files, and accounts explicitly
// for every fault the fleet can throw at it — missing publishers, windows
// arriving late, duplicate publishes, and torn/corrupt files.
//
// Ordering: PSC ingest is order-dependent (per-event seed pre-draws), so
// the aggregator merge-sorts the accepted windows by the per-event
// sequence numbers the relay_plane stamped at observation time. The merged
// stream is exactly the DC-local arrival order restricted to the sampled
// subset — which is why the aggregated path is byte-identical to feeding
// the sampled subsequence straight into the sink, and at sample_prob 1.0
// byte-identical to the plain cursor feed.
//
// Lifecycle of a directory entry at collect_epoch(e):
//   * not a canonical pub name ............ ignored (left in place)
//   * (relay, epoch) already consumed ..... duplicates++, deleted
//   * epoch + grace < e ................... late_dropped++, deleted
//   * undecodable (torn write, bad CRC) ... rejected++, deleted
//   * epoch < e (within grace) ............ late++, accepted
//   * epoch == e .......................... accepted
//   * expected relay with no epoch-e file . missing++ (a rejected epoch-e
//     file still counts as published: its fault is booked once, under
//     `rejected`)
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>

#include "src/core/event_sink.h"

namespace tormet::relay {

/// Cumulative aggregation accounting across epochs — operational counters
/// only (like the TS summary), never measurement data.
struct aggregate_stats {
  std::uint64_t windows_ingested = 0;  ///< accepted windows
  std::uint64_t events_ingested = 0;   ///< sampled events delivered to sink
  std::uint64_t observed = 0;          ///< pre-sampling events (from headers)
  std::uint64_t sampled = 0;           ///< post-sampling events (from headers)
  std::uint64_t missing = 0;           ///< expected publishers with no window
  std::uint64_t duplicates = 0;        ///< re-published consumed windows
  std::uint64_t late = 0;              ///< accepted within the grace
  std::uint64_t late_dropped = 0;      ///< past grace: counted and dropped
  std::uint64_t rejected = 0;          ///< torn/corrupt publishes
};

class aggregator {
 public:
  /// Aggregates `relays` publishers out of `dir`. `grace_epochs` is how
  /// many epochs behind the current one a late window may trail and still
  /// be ingested (0 = only the current epoch is acceptable).
  aggregator(std::string dir, std::uint64_t relays,
             std::uint64_t grace_epochs = 1);

  /// Collects epoch `epoch`: scans the directory, classifies every entry
  /// per the lifecycle above, merges the accepted windows into DC arrival
  /// order, and delivers them to `sink` as one contiguous ingest span.
  /// Consumed (and dropped) files are deleted. Returns the number of
  /// events ingested this call.
  std::size_t collect_epoch(std::uint64_t epoch, core::event_sink& sink);

  [[nodiscard]] const aggregate_stats& totals() const noexcept {
    return totals_;
  }

 private:
  std::string dir_;
  std::uint64_t relays_;
  std::uint64_t grace_epochs_;
  aggregate_stats totals_;
  /// (relay, epoch) pairs already ingested, pruned once past the grace.
  std::set<std::pair<std::uint64_t, std::uint64_t>> consumed_;
};

}  // namespace tormet::relay
