// On-disk publish format for relay stats windows. A relay-embedded stats
// agent accumulates one collection window in RAM and publishes it as a
// single `relay-<relay>-window-<epoch>.pub` file: a versioned magic line
// followed by CRC-framed records, the same `[u32 len][u32 crc][payload]`
// framing the durable op-log uses (src/util/op_log.h), so torn or
// corrupted publishes are rejected loudly instead of silently skewing a
// tally. Record 0 is the window header (relay id, epoch, observed/sampled
// accounting); every later record carries a batch of sampled events, each
// tagged with the relay-local ingest sequence number so the aggregation
// service can merge many relays' windows back into the DC's original
// event order (PSC ingest is order-dependent; see src/relay/aggregator.h).
//
// The per-relay observed/sampled counters ride the header, OUTSIDE the
// event payload: like the TS `.summary` sidecar they are privacy-safe
// operational accounting, never measurement data, and they never perturb
// the tally bytes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/tor/events.h"
#include "src/util/bytes.h"

namespace tormet::relay {

/// Structured publish-file failure: bad magic, truncated record, CRC
/// mismatch, or malformed payload. The aggregator catches this to count a
/// publisher that died mid-write as rejected (never partially ingested).
class publish_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-window accounting carried in record 0, outside the event bytes.
struct pub_header {
  std::uint64_t relay = 0;     ///< publishing relay's id within its DC fleet
  std::uint64_t epoch = 0;     ///< 0-based collection-window index
  std::uint64_t observed = 0;  ///< events offered to the sampler this window
  std::uint64_t sampled = 0;   ///< events that passed the sampler (== size)
};

/// One publishable window: the header plus the sampled events, each paired
/// with its DC-local ingest sequence number (assignment order across the
/// whole fleet, reset per window).
struct pub_window {
  pub_header header;
  std::vector<std::pair<std::uint64_t, tor::event>> events;
};

/// Canonical publish file name: "relay-<relay>-window-<epoch>.pub".
[[nodiscard]] std::string pub_file_name(std::uint64_t relay,
                                        std::uint64_t epoch);

/// Parses a publish file name back into (relay, epoch). Returns false for
/// anything that is not a canonical pub_file_name (the aggregator skips
/// such directory entries).
[[nodiscard]] bool parse_pub_file_name(const std::string& name,
                                       std::uint64_t& relay,
                                       std::uint64_t& epoch);

/// Serializes a window into the framed on-disk byte format.
[[nodiscard]] byte_buffer encode_pub_window(const pub_window& w);

/// Parses framed publish bytes. Throws publish_error on bad magic,
/// truncation, CRC mismatch, or malformed event payloads.
[[nodiscard]] pub_window decode_pub_window(byte_view data);

/// Writes `w` to `dir`/pub_file_name(...) atomically (tmp file + rename):
/// a reader never sees a half-written window, and a crashed publisher's
/// retry simply overwrites with identical bytes. Returns the final path.
std::string write_pub_file_atomic(const pub_window& w, const std::string& dir);

/// Reads and decodes one publish file. Throws publish_error on any
/// malformed content and std::runtime_error if the file cannot be read.
[[nodiscard]] pub_window load_pub_file(const std::string& path);

}  // namespace tormet::relay
