#include "src/relay/aggregator.h"

#include <algorithm>
#include <filesystem>
#include <vector>

#include "src/relay/publish.h"
#include "src/util/logging.h"

namespace tormet::relay {

namespace fs = std::filesystem;

aggregator::aggregator(std::string dir, std::uint64_t relays,
                       std::uint64_t grace_epochs)
    : dir_{std::move(dir)}, relays_{relays}, grace_epochs_{grace_epochs} {}

std::size_t aggregator::collect_epoch(std::uint64_t epoch,
                                      core::event_sink& sink) {
  const std::uint64_t oldest_acceptable =
      epoch >= grace_epochs_ ? epoch - grace_epochs_ : 0;
  std::vector<pub_window> accepted;
  std::set<std::uint64_t> present_now;  // relays with an epoch-`epoch` window
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator{dir_, ec}) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    std::uint64_t relay = 0;
    std::uint64_t window = 0;
    if (!parse_pub_file_name(name, relay, window)) continue;
    if (window > epoch) continue;  // future window: next epoch's business
    if (consumed_.contains({relay, window})) {
      ++totals_.duplicates;
      fs::remove(entry.path(), ec);
      continue;
    }
    if (window < oldest_acceptable) {
      ++totals_.late_dropped;
      log_line{log_level::warn}
          << "relay aggregator: window " << window << " from relay " << relay
          << " is past the grace (current epoch " << epoch << "); dropping";
      fs::remove(entry.path(), ec);
      continue;
    }
    pub_window w;
    try {
      w = load_pub_file(entry.path().string());
    } catch (const publish_error& e) {
      ++totals_.rejected;
      // The relay DID publish this epoch; its fault is fully accounted in
      // `rejected` — counting it missing too would double-book one fault.
      if (window == epoch) present_now.insert(relay);
      log_line{log_level::warn}
          << "relay aggregator: rejecting " << name << ": " << e.what();
      fs::remove(entry.path(), ec);
      continue;
    }
    if (w.header.relay != relay || w.header.epoch != window) {
      ++totals_.rejected;
      if (window == epoch) present_now.insert(relay);
      log_line{log_level::warn}
          << "relay aggregator: rejecting " << name
          << ": header does not match file name";
      fs::remove(entry.path(), ec);
      continue;
    }
    if (window < epoch) ++totals_.late;
    if (window == epoch) present_now.insert(relay);
    consumed_.insert({relay, window});
    totals_.observed += w.header.observed;
    totals_.sampled += w.header.sampled;
    ++totals_.windows_ingested;
    accepted.push_back(std::move(w));
    fs::remove(entry.path(), ec);
  }
  totals_.missing += relays_ > present_now.size()
                         ? relays_ - present_now.size()
                         : 0;

  // Merge the fleet's windows back into DC arrival order. Sequence numbers
  // were assigned once per event at observation time and reset per window,
  // so ordering by (window epoch, seq) reconstructs the original
  // sampled-subset order — late windows replay whole, before the current
  // one. This is the property PSC's order-dependent ingest relies on.
  struct merged_event {
    std::uint64_t epoch;
    std::uint64_t seq;
    tor::event ev;
  };
  std::vector<merged_event> merged;
  for (auto& w : accepted) {
    for (auto& [seq, ev] : w.events) {
      merged.push_back({w.header.epoch, seq, std::move(ev)});
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const merged_event& a, const merged_event& b) {
              return a.epoch != b.epoch ? a.epoch < b.epoch : a.seq < b.seq;
            });
  std::vector<tor::event> span;
  span.reserve(merged.size());
  for (auto& m : merged) span.push_back(m.ev);
  if (!span.empty()) sink.ingest(span.data(), span.size());
  totals_.events_ingested += span.size();

  // Prune the consumed set: a window past the grace can never be accepted
  // again (its re-publish hits the late_dropped branch without needing the
  // dedup set), so the set stays bounded by relays * (grace + 1).
  for (auto it = consumed_.begin(); it != consumed_.end();) {
    it = it->second < oldest_acceptable ? consumed_.erase(it) : std::next(it);
  }
  return span.size();
}

}  // namespace tormet::relay
