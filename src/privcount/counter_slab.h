// Flat counter slabs for the sharded DC observe path. Each ingest shard
// owns one contiguous row of uint64 increment slots — one per configured
// counter plus a trailing trash slot that absorbs increments to names not
// measured this round — and instruments are compiled against slot indices
// once per round instead of doing a string lookup per increment. At report
// time the rows merge by plain mod-2^64 addition onto the blinded base
// values, so the reported bytes are independent of the shard count and of
// how events were partitioned across shards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/tor/events.h"

namespace tormet::privcount {

/// Maps a counter name to its slab slot at bind time; names not measured
/// this round resolve to the trash slot (index == number of counters).
using slot_resolver = std::function<std::size_t(const std::string&)>;

/// An instrument compiled to direct slab increments: `bind` resolves its
/// counter names to slots once per round, `ingest` then increments the
/// given shard's slab for a batch of events with no per-event name lookup.
class batch_instrument {
 public:
  virtual ~batch_instrument() = default;
  virtual void bind(const slot_resolver& slot_of) = 0;
  virtual void ingest(const tor::event* const* evs, std::size_t n,
                      std::uint64_t* slab) = 0;
  /// Contiguous-span form: the single-shard hot path calls this directly so
  /// no per-event pointer array is ever built. Overridden by the compiled
  /// instruments; the base implementation delegates event by event.
  virtual void ingest_span(const tor::event* evs, std::size_t n,
                           std::uint64_t* slab) {
    for (std::size_t i = 0; i < n; ++i) {
      const tor::event* p = evs + i;
      ingest(&p, 1, slab);
    }
  }
};

/// The string-callback instrument shape (kept as the extension point for
/// instruments without a compiled fast path). Defined here, aliased by
/// data_collector::instrument, so the adapter below needs no circular
/// include.
using legacy_instrument = std::function<void(
    const tor::event&,
    const std::function<void(const std::string& counter, std::uint64_t amount)>&)>;

/// Wraps a string-callback instrument as a batch_instrument, memoizing the
/// name -> slot resolution per round.
[[nodiscard]] std::unique_ptr<batch_instrument> adapt_instrument(
    legacy_instrument fn);

/// Report-time merge: out[i] = base[i] + Σ over shards of
/// slabs[s * (counters + 1) + i], mod 2^64, for i in [0, counters). The
/// per-shard trash slot is dropped. Addition on the ring is commutative
/// and associative, so the result is identical for every shard count and
/// every partition of the same event stream — the property the
/// shard-count-independence tests pin.
void merge_slabs(const std::vector<std::uint64_t>& slabs, std::size_t shards,
                 std::size_t counters, const std::vector<std::uint64_t>& base,
                 std::vector<std::uint64_t>& out);

}  // namespace tormet::privcount
