// PrivCount tally server (TS): configures rounds, splits the privacy budget
// into per-counter noise levels, and aggregates DC reports with SK blinding
// sums. The TS learns only the blinded aggregates — the final value it
// publishes is `true count + Gaussian noise`, never anything per-relay.
//
// Round life cycle (driven by the deployment or a test):
//   begin_round() -> [transport] -> all_dcs_ready()
//   start_collection() ... events flow into DCs ... stop_collection()
//   -> [transport] -> request_reveal()   (names the DCs that reported,
//                                         making DC dropout recoverable)
//   -> [transport] -> results_ready() -> results()
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include <memory>

#include "src/dp/action_bounds.h"
#include "src/net/transport.h"
#include "src/privcount/messages.h"
#include "src/util/thread_pool.h"

namespace tormet::privcount {

class tally_server {
 public:
  tally_server(net::node_id self, net::transport& transport,
               std::vector<net::node_id> data_collectors,
               std::vector<net::node_id> share_keepers);

  void handle_message(const net::message& msg);

  /// Disables noise (sigma = 0) — for tests that verify exact blinded
  /// aggregation. Production rounds always add noise.
  void set_noise_enabled(bool enabled) noexcept { noise_enabled_ = enabled; }

  /// Shards the report-combine loop across `pool` when a round carries a
  /// large counter vector (per-domain/per-country censuses run to 10^5+
  /// counters). nullptr (the default) combines inline; results are
  /// identical — the ring addition is per-index.
  void set_thread_pool(std::shared_ptr<util::thread_pool> pool) {
    pool_ = std::move(pool);
  }

  /// Configures a new round: allocates (ε, δ) across `specs` with the
  /// equal-relative-noise rule and sends configure messages.
  void begin_round(const std::vector<counter_spec>& specs,
                   const dp::privacy_params& params);

  [[nodiscard]] bool all_dcs_ready() const;
  void start_collection();
  void stop_collection();

  /// Crash recovery: positions the round counter so the next begin_round
  /// runs as round `next_round` (1-based). Used by a restarted TS resuming
  /// its schedule after op-log replay, and by a durable TS retrying the
  /// same round after a peer crash (per-round RNG reseeding makes a re-run
  /// byte-identical to the interrupted attempt).
  void resume_at_round(std::uint32_t next_round);

  /// After DC reports have arrived: asks SKs to reveal blinding sums over
  /// exactly the DCs that reported.
  void request_reveal();

  [[nodiscard]] bool results_ready() const;
  /// Aggregated (noisy) results. Throws unless results_ready().
  [[nodiscard]] std::vector<counter_result> results() const;

  /// DCs that reported this round (diagnostics; equals all DCs absent
  /// failures).
  [[nodiscard]] const std::set<net::node_id>& reporting_dcs() const noexcept {
    return dc_reports_seen_;
  }
  /// DCs that acknowledged this round's configure.
  [[nodiscard]] const std::set<net::node_id>& ready_dcs() const noexcept {
    return dcs_ready_;
  }
  /// The DCs this TS still drives (initial list minus exclusions).
  [[nodiscard]] const std::vector<net::node_id>& data_collectors()
      const noexcept {
    return dcs_;
  }
  /// Permanently drops a DC from the deployment (live-pipeline fault
  /// handling): it receives no further configures or collection controls
  /// and no longer counts toward readiness/report completeness. Published
  /// sigmas still reflect the noise weights of the round's *configured* DC
  /// count, so mid-round exclusion keeps CIs honest. At least one DC must
  /// remain.
  void exclude_dc(net::node_id id);
  /// Rejoin handshake: re-admits a previously excluded (or restarted) DC at
  /// a round boundary — from the next begin_round it is configured again
  /// and counts toward sigma/DC accounting (round_dc_count_ snapshots at
  /// begin_round, so re-admission never skews an in-flight round's noise
  /// fraction). No-op if the DC is already a member.
  void readmit_dc(net::node_id id);
  [[nodiscard]] std::uint32_t round_id() const noexcept { return round_id_; }

 private:
  /// True when `dc` is still part of the deployment (not excluded).
  [[nodiscard]] bool is_member(net::node_id dc) const;
  /// aggregate_[i] += values[i] over the whole report, sharded across the
  /// pool when the counter vector is large enough to amortize the fan-out.
  void combine_report(std::span<const std::uint64_t> values);

  net::node_id self_;
  net::transport& transport_;
  std::vector<net::node_id> dcs_;
  std::vector<net::node_id> sks_;
  std::shared_ptr<util::thread_pool> pool_;
  bool noise_enabled_ = true;

  std::uint32_t round_id_ = 0;
  std::vector<std::string> counter_names_;
  std::vector<double> sigmas_;
  /// DC count the round was configured with (noise_weight = 1/this); kept
  /// apart from dcs_.size() so mid-round exclusion cannot skew the realized
  /// noise fraction in results().
  std::size_t round_dc_count_ = 0;
  bool reveal_requested_ = false;
  std::set<net::node_id> dcs_ready_;
  std::set<net::node_id> dc_reports_seen_;
  std::set<net::node_id> sk_reports_seen_;
  std::vector<std::uint64_t> aggregate_;  // ring sum of DC values + SK sums
};

}  // namespace tormet::privcount
