#include "src/privcount/counter_slab.h"

#include <utility>

#include "src/util/check.h"

namespace tormet::privcount {

namespace {

// The adapter keeps no mutable state between calls: concurrent shard
// workers run ingest() on the same instance with disjoint slabs, so each
// increment resolves through slot_of_ directly (a read-only lookup into
// the round's counter index) instead of a shared memo map.
class legacy_adapter final : public batch_instrument {
 public:
  explicit legacy_adapter(legacy_instrument fn) : fn_{std::move(fn)} {}

  void bind(const slot_resolver& slot_of) override { slot_of_ = slot_of; }

  void ingest(const tor::event* const* evs, std::size_t n,
              std::uint64_t* slab) override {
    const auto incr = make_incr(slab);
    for (std::size_t i = 0; i < n; ++i) fn_(*evs[i], incr);
  }

  void ingest_span(const tor::event* evs, std::size_t n,
                   std::uint64_t* slab) override {
    const auto incr = make_incr(slab);
    for (std::size_t i = 0; i < n; ++i) fn_(evs[i], incr);
  }

 private:
  [[nodiscard]] std::function<void(const std::string&, std::uint64_t)>
  make_incr(std::uint64_t* slab) const {
    return [this, slab](const std::string& counter, std::uint64_t amount) {
      slab[slot_of_(counter)] += amount;
    };
  }

  legacy_instrument fn_;
  slot_resolver slot_of_;
};

}  // namespace

std::unique_ptr<batch_instrument> adapt_instrument(legacy_instrument fn) {
  expects(fn != nullptr, "instrument must be callable");
  return std::make_unique<legacy_adapter>(std::move(fn));
}

void merge_slabs(const std::vector<std::uint64_t>& slabs, std::size_t shards,
                 std::size_t counters, const std::vector<std::uint64_t>& base,
                 std::vector<std::uint64_t>& out) {
  expects(base.size() == counters, "merge: one base value per counter");
  const std::size_t stride = counters + 1;
  expects(slabs.size() == shards * stride,
          "merge: slabs must be shards x (counters + 1)");
  out = base;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::uint64_t* row = slabs.data() + s * stride;
    for (std::size_t i = 0; i < counters; ++i) out[i] += row[i];
  }
}

}  // namespace tormet::privcount
