#include "src/privcount/data_collector.h"

#include <cmath>

#include "src/crypto/secret_sharing.h"
#include "src/dp/noise.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace tormet::privcount {

data_collector::data_collector(net::node_id self, net::node_id tally_server,
                               net::transport& transport,
                               crypto::secure_rng& rng)
    : self_{self}, tally_server_{tally_server}, transport_{transport}, rng_{rng} {}

void data_collector::add_instrument(instrument fn) {
  expects(fn != nullptr, "instrument must be callable");
  instruments_.push_back(std::move(fn));
}

void data_collector::on_configure(const configure_msg& m) {
  expects(m.sigmas.size() == m.counter_names.size(),
          "configure message must carry one sigma per counter");
  round_id_ = m.round_id;
  counter_names_ = m.counter_names;
  counter_index_.clear();
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    counter_index_[counter_names_[i]] = i;
  }
  counters_.assign(counter_names_.size(), 0);
  collecting_ = false;

  // Per-counter: noise share + blinding. This DC adds Gaussian noise with
  // variance noise_weight * sigma^2 so the DC noises sum to sigma^2 total.
  // Blinds are drawn straight into the per-SK vectors — the whole counter
  // batch needs no per-counter share allocation. Each SK's blind is uniform
  // and the DC keeps their negated sum, so counter + Σ sk_blinds == noise
  // (mod 2^64), exactly additive_shares(0, n_sk + 1) without the temp
  // vector.
  std::vector<std::vector<std::uint64_t>> per_sk_shares(
      m.share_keepers.size(),
      std::vector<std::uint64_t>(counter_names_.size(), 0));
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    const double sigma_share = m.sigmas[i] * std::sqrt(m.noise_weight);
    const std::int64_t noise = dp::sample_gaussian_integer(sigma_share, rng_);
    std::uint64_t blind_sum = 0;
    for (std::size_t s = 0; s < m.share_keepers.size(); ++s) {
      const std::uint64_t blind = rng_.next_u64();
      per_sk_shares[s][i] = blind;
      blind_sum += blind;
    }
    counters_[i] = static_cast<std::uint64_t>(noise) - blind_sum;
  }
  for (std::size_t s = 0; s < m.share_keepers.size(); ++s) {
    blinding_share_msg share;
    share.round_id = round_id_;
    share.shares = std::move(per_sk_shares[s]);
    transport_.send(
        encode_blinding_share(self_, m.share_keepers[s], share));
  }
  transport_.send(encode_simple(self_, tally_server_, msg_type::dc_ready, round_id_));
}

void data_collector::handle_message(const net::message& msg) {
  switch (static_cast<msg_type>(msg.type)) {
    case msg_type::configure:
      on_configure(decode_configure(msg));
      return;
    case msg_type::start_collection:
      // A round-id mismatch is a stale control from a previous round
      // attempt reaching a restarted DC (the writer resends its queued
      // suffix on reconnect). Crash recovery makes that a drop, not a
      // protocol violation: the TS re-drives the round from configure.
      if (decode_round_id(msg) != round_id_) {
        log_line{log_level::warn}
            << "DC " << self_ << ": stale start_collection; dropping";
        return;
      }
      collecting_ = true;
      return;
    case msg_type::stop_collection: {
      if (decode_round_id(msg) != round_id_) {
        log_line{log_level::warn}
            << "DC " << self_ << ": stale stop_collection; dropping";
        return;
      }
      collecting_ = false;
      dc_report_msg report;
      report.round_id = round_id_;
      report.values = counters_;
      transport_.send(encode_dc_report(self_, tally_server_, report));
      // Forget the round's state: the report is blinded; keeping counters
      // would weaken the "nothing to seize" property.
      counters_.assign(counters_.size(), 0);
      return;
    }
    default:
      log_line{log_level::warn} << "DC " << self_ << ": unexpected message type "
                                << msg.type;
  }
}

void data_collector::increment(const std::string& counter, std::uint64_t amount) {
  const auto it = counter_index_.find(counter);
  if (it == counter_index_.end()) return;  // not measured this round
  counters_[it->second] += amount;         // mod 2^64 wraparound is the ring
}

void data_collector::observe(const tor::event& ev) {
  if (!collecting_) return;
  ++events_observed_;
  const auto incr = [this](const std::string& counter, std::uint64_t amount) {
    increment(counter, amount);
  };
  for (const auto& fn : instruments_) fn(ev, incr);
}

}  // namespace tormet::privcount
