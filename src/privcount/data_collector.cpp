#include "src/privcount/data_collector.h"

#include <cmath>

#include "src/crypto/secret_sharing.h"
#include "src/dp/noise.h"
#include "src/tor/event_shard.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace tormet::privcount {

data_collector::data_collector(net::node_id self, net::node_id tally_server,
                               net::transport& transport,
                               crypto::secure_rng& rng)
    : self_{self}, tally_server_{tally_server}, transport_{transport}, rng_{rng} {}

void data_collector::add_instrument(instrument fn) {
  add_instrument(adapt_instrument(std::move(fn)));
}

void data_collector::add_instrument(std::unique_ptr<batch_instrument> ins) {
  expects(ins != nullptr, "instrument must be callable");
  instruments_.push_back(std::move(ins));
}

void data_collector::set_shards(std::size_t n) {
  expects(n >= 1, "a DC needs at least one ingest shard");
  expects(!collecting_, "shard count is fixed while a round is collecting");
  if (n == shards_) return;
  shards_ = n;
  // Keep the slab layout in lockstep with the shard count. Between rounds
  // the slabs are all zero (configure zeroes them, stop_collection wipes
  // them), so re-sizing here loses nothing — it only prevents a stale
  // stride if the shard count changes between configure and start.
  if (!counter_names_.empty()) {
    slabs_.assign(shards_ * (counter_names_.size() + 1), 0);
  }
}

void data_collector::set_thread_pool(std::shared_ptr<util::thread_pool> pool) {
  expects(!collecting_, "ingest pool is fixed while a round is collecting");
  pool_ = std::move(pool);
}

void data_collector::on_configure(const configure_msg& m) {
  expects(m.sigmas.size() == m.counter_names.size(),
          "configure message must carry one sigma per counter");
  round_id_ = m.round_id;
  counter_names_ = m.counter_names;
  counter_index_.clear();
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    counter_index_[counter_names_[i]] = i;
  }
  base_.assign(counter_names_.size(), 0);
  // One slab row per shard, with a trailing trash slot absorbing
  // increments to counters not measured this round.
  slabs_.assign(shards_ * (counter_names_.size() + 1), 0);
  collecting_ = false;

  // Compile every instrument against this round's slot layout (unknown
  // names land in the trash slot and never reach the report).
  const slot_resolver slot_of = [this](const std::string& name) -> std::size_t {
    const auto it = counter_index_.find(name);
    return it == counter_index_.end() ? counter_names_.size() : it->second;
  };
  for (const auto& ins : instruments_) ins->bind(slot_of);

  // Per-counter: noise share + blinding. This DC adds Gaussian noise with
  // variance noise_weight * sigma^2 so the DC noises sum to sigma^2 total.
  // Blinds are drawn straight into the per-SK vectors — the whole counter
  // batch needs no per-counter share allocation. Each SK's blind is uniform
  // and the DC keeps their negated sum, so base + Σ sk_blinds == noise
  // (mod 2^64), exactly additive_shares(0, n_sk + 1) without the temp
  // vector.
  std::vector<std::vector<std::uint64_t>> per_sk_shares(
      m.share_keepers.size(),
      std::vector<std::uint64_t>(counter_names_.size(), 0));
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    const double sigma_share = m.sigmas[i] * std::sqrt(m.noise_weight);
    const std::int64_t noise = dp::sample_gaussian_integer(sigma_share, rng_);
    std::uint64_t blind_sum = 0;
    for (std::size_t s = 0; s < m.share_keepers.size(); ++s) {
      const std::uint64_t blind = rng_.next_u64();
      per_sk_shares[s][i] = blind;
      blind_sum += blind;
    }
    base_[i] = static_cast<std::uint64_t>(noise) - blind_sum;
  }
  for (std::size_t s = 0; s < m.share_keepers.size(); ++s) {
    blinding_share_msg share;
    share.round_id = round_id_;
    share.shares = std::move(per_sk_shares[s]);
    transport_.send(
        encode_blinding_share(self_, m.share_keepers[s], share));
  }
  transport_.send(encode_simple(self_, tally_server_, msg_type::dc_ready, round_id_));
}

void data_collector::handle_message(const net::message& msg) {
  switch (static_cast<msg_type>(msg.type)) {
    case msg_type::configure:
      on_configure(decode_configure(msg));
      return;
    case msg_type::start_collection:
      // A round-id mismatch is a stale control from a previous round
      // attempt reaching a restarted DC (the writer resends its queued
      // suffix on reconnect). Crash recovery makes that a drop, not a
      // protocol violation: the TS re-drives the round from configure.
      if (decode_round_id(msg) != round_id_) {
        log_line{log_level::warn}
            << "DC " << self_ << ": stale start_collection; dropping";
        return;
      }
      collecting_ = true;
      return;
    case msg_type::stop_collection: {
      if (decode_round_id(msg) != round_id_) {
        log_line{log_level::warn}
            << "DC " << self_ << ": stale stop_collection; dropping";
        return;
      }
      collecting_ = false;
      dc_report_msg report;
      report.round_id = round_id_;
      merge_slabs(slabs_, shards_, counter_names_.size(), base_, report.values);
      transport_.send(encode_dc_report(self_, tally_server_, report));
      // Forget the round's state: the report is blinded; keeping the base
      // and increments would weaken the "nothing to seize" property.
      base_.assign(base_.size(), 0);
      slabs_.assign(slabs_.size(), 0);
      return;
    }
    default:
      log_line{log_level::warn} << "DC " << self_ << ": unexpected message type "
                                << msg.type;
  }
}

void data_collector::observe(const tor::event& ev) { ingest(&ev, 1); }

void data_collector::ingest(const tor::event* evs, std::size_t n) {
  if (!collecting_ || n == 0) return;
  events_observed_ += n;
  if (shards_ == 1) {
    // Single shard: the contiguous span goes straight to the instruments —
    // no shard keys, no pointer bucketing.
    for (const auto& ins : instruments_) {
      ins->ingest_span(evs, n, slabs_.data());
    }
    return;
  }
  buckets_.resize(shards_);
  for (auto& b : buckets_) b.clear();
  if (pool_ != nullptr) {
    // One chunk of shards per party (workers + the calling thread). Each
    // chunk scans the whole span, keeps only the events whose shard key
    // lands in its range, and runs the instruments into its own slab rows.
    // No two chunks touch the same bucket or slab row, so the output is
    // byte-identical to the serial path for every worker count; the
    // parallel_for return is the window-end merge barrier.
    const std::size_t parties = pool_->size() + 1;
    const std::size_t grain = (shards_ + parties - 1) / parties;
    pool_->parallel_for(shards_, grain, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t s = tor::shard_of(tor::shard_key_of(evs[i]), shards_);
        if (s >= begin && s < end) buckets_[s].push_back(evs + i);
      }
      for (std::size_t s = begin; s < end; ++s) ingest_shard(s);
    });
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = tor::shard_of(tor::shard_key_of(evs[i]), shards_);
    buckets_[s].push_back(evs + i);
  }
  for (std::size_t s = 0; s < shards_; ++s) ingest_shard(s);
}

void data_collector::ingest_shard(std::size_t s) {
  if (buckets_[s].empty()) return;
  std::uint64_t* slab = slabs_.data() + s * (counter_names_.size() + 1);
  for (const auto& ins : instruments_) {
    ins->ingest(buckets_[s].data(), buckets_[s].size(), slab);
  }
}

}  // namespace tormet::privcount
