#include "src/privcount/deployment.h"

#include "src/util/check.h"

namespace tormet::privcount {

deployment::deployment(net::transport& transport, const deployment_config& config)
    : transport_{transport}, config_{config} {
  expects(!config_.measured_relays.empty(), "deployment needs measured relays");
  expects(config_.num_share_keepers >= 1, "deployment needs a share keeper");

  if (config_.worker_threads > 0) {
    pool_ = std::make_shared<util::thread_pool>(config_.worker_threads);
  }

  const net::node_id ts_id = 0;
  std::vector<net::node_id> sk_ids;
  for (std::size_t i = 0; i < config_.num_share_keepers; ++i) {
    sk_ids.push_back(static_cast<net::node_id>(1 + i));
  }
  std::vector<net::node_id> dc_ids;
  for (std::size_t i = 0; i < config_.measured_relays.size(); ++i) {
    dc_ids.push_back(static_cast<net::node_id>(1 + config_.num_share_keepers + i));
  }

  ts_ = std::make_unique<tally_server>(ts_id, transport_, dc_ids, sk_ids);
  ts_->set_noise_enabled(config_.noise_enabled);
  ts_->set_thread_pool(pool_);
  transport_.register_node(ts_id,
                           [this](const net::message& m) { ts_->handle_message(m); });

  for (const auto sk_id : sk_ids) {
    auto sk = std::make_unique<share_keeper>(sk_id, ts_id, transport_);
    share_keeper* raw = sk.get();
    transport_.register_node(sk_id,
                             [raw](const net::message& m) { raw->handle_message(m); });
    sks_.push_back(std::move(sk));
  }

  for (std::size_t i = 0; i < config_.measured_relays.size(); ++i) {
    // Per-node stream: deterministic in (seed, node id) only, so the same
    // seed reproduces identical noise/blinding in a distributed round.
    // run_round reseeds per (node, round) at each boundary.
    rng_node_ids_.push_back(dc_ids[i]);
    node_rngs_.push_back(std::make_unique<crypto::deterministic_rng>(
        crypto::make_node_rng(config_.rng_seed, dc_ids[i])));
    auto dc = std::make_unique<data_collector>(dc_ids[i], ts_id, transport_,
                                               *node_rngs_.back());
    data_collector* raw = dc.get();
    transport_.register_node(dc_ids[i],
                             [raw](const net::message& m) { raw->handle_message(m); });
    dc_by_relay_[config_.measured_relays[i]] = raw;
    measured_set_.insert(config_.measured_relays[i]);
    dcs_.push_back(std::move(dc));
  }
}

void deployment::add_instrument(data_collector::instrument fn) {
  for (const auto& dc : dcs_) dc->add_instrument(fn);
}

void deployment::attach(tor::network& net) {
  net.set_observed_relays(measured_set_);
  net.set_event_sink([this](const tor::event& ev) {
    const auto it = dc_by_relay_.find(ev.observer);
    if (it != dc_by_relay_.end()) it->second->observe(ev);
  });
}

std::vector<counter_result> deployment::run_round(
    const std::vector<counter_spec>& specs,
    const std::function<void()>& workload) {
  // Reseed each DC's stream for the upcoming round id, mirroring
  // cli::node_runner in a distributed round (byte-identity contract).
  const std::uint32_t next_round = ts_->round_id() + 1;
  for (std::size_t i = 0; i < node_rngs_.size(); ++i) {
    *node_rngs_[i] =
        crypto::make_node_round_rng(config_.rng_seed, rng_node_ids_[i], next_round);
  }
  ts_->begin_round(specs, config_.privacy);
  transport_.run_until_quiescent();
  expects(ts_->all_dcs_ready(), "not all data collectors became ready");

  ts_->start_collection();
  transport_.run_until_quiescent();

  workload();

  ts_->stop_collection();
  transport_.run_until_quiescent();
  ts_->request_reveal();
  transport_.run_until_quiescent();
  ensures(ts_->results_ready(), "share keepers did not all report");
  return ts_->results();
}

}  // namespace tormet::privcount
