#include "src/privcount/tally_server.h"

#include <cmath>

#include "src/crypto/secret_sharing.h"
#include "src/dp/allocation.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace tormet::privcount {

tally_server::tally_server(net::node_id self, net::transport& transport,
                           std::vector<net::node_id> data_collectors,
                           std::vector<net::node_id> share_keepers)
    : self_{self}, transport_{transport}, dcs_{std::move(data_collectors)},
      sks_{std::move(share_keepers)} {
  expects(!dcs_.empty(), "need at least one data collector");
  expects(!sks_.empty(), "need at least one share keeper");
}

void tally_server::begin_round(const std::vector<counter_spec>& specs,
                               const dp::privacy_params& params) {
  expects(!specs.empty(), "round needs at least one counter");
  ++round_id_;
  counter_names_.clear();
  sigmas_.clear();
  dcs_ready_.clear();
  dc_reports_seen_.clear();
  sk_reports_seen_.clear();
  aggregate_.assign(specs.size(), 0);

  std::vector<dp::counter_request> requests;
  requests.reserve(specs.size());
  for (const auto& s : specs) {
    requests.push_back({s.name, s.sensitivity, s.expected_value});
  }
  const std::vector<dp::counter_allocation> alloc =
      dp::allocate_budget(params, requests);
  for (const auto& a : alloc) {
    counter_names_.push_back(a.name);
    sigmas_.push_back(noise_enabled_ ? a.sigma : 0.0);
  }

  configure_msg cfg;
  cfg.round_id = round_id_;
  cfg.counter_names = counter_names_;
  cfg.sigmas = sigmas_;
  cfg.noise_weight = 1.0 / static_cast<double>(dcs_.size());
  cfg.share_keepers = sks_;
  for (const auto dc : dcs_) {
    transport_.send(encode_configure(self_, dc, cfg));
  }
  configure_msg sk_cfg = cfg;
  sk_cfg.noise_weight = 0.0;  // SKs hold no noise
  for (const auto sk : sks_) {
    transport_.send(encode_configure(self_, sk, sk_cfg));
  }
}

bool tally_server::all_dcs_ready() const {
  return dcs_ready_.size() == dcs_.size();
}

void tally_server::start_collection() {
  for (const auto dc : dcs_) {
    transport_.send(encode_simple(self_, dc, msg_type::start_collection, round_id_));
  }
}

void tally_server::stop_collection() {
  for (const auto dc : dcs_) {
    transport_.send(encode_simple(self_, dc, msg_type::stop_collection, round_id_));
  }
}

void tally_server::request_reveal() {
  sk_reveal_msg m;
  m.round_id = round_id_;
  m.reporting_dcs.assign(dc_reports_seen_.begin(), dc_reports_seen_.end());
  for (const auto sk : sks_) {
    transport_.send(encode_sk_reveal(self_, sk, m));
  }
}

void tally_server::handle_message(const net::message& msg) {
  switch (static_cast<msg_type>(msg.type)) {
    case msg_type::dc_ready:
      if (decode_round_id(msg) == round_id_) dcs_ready_.insert(msg.from);
      return;
    case msg_type::dc_report: {
      const dc_report_msg m = decode_dc_report(msg);
      if (m.round_id != round_id_) return;
      if (m.values.size() != counter_names_.size()) {
        log_line{log_level::warn}
            << "TS: DC " << msg.from << " report has wrong arity; dropping";
        return;
      }
      if (!dc_reports_seen_.insert(msg.from).second) return;  // duplicate
      combine_report(m.values);
      return;
    }
    case msg_type::sk_report: {
      const sk_report_msg m = decode_sk_report(msg);
      if (m.round_id != round_id_) return;
      if (m.sums.size() != counter_names_.size()) {
        log_line{log_level::warn}
            << "TS: SK " << msg.from << " report has wrong arity; dropping";
        return;
      }
      if (!sk_reports_seen_.insert(msg.from).second) return;  // duplicate
      combine_report(m.sums);
      return;
    }
    default:
      log_line{log_level::warn} << "TS: unexpected message type " << msg.type;
  }
}

void tally_server::combine_report(std::span<const std::uint64_t> values) {
  expects(values.size() == aggregate_.size(), "report arity mismatch");
  // Ring addition is per-index, so shard boundaries cannot change results.
  // Below ~64k counters the fan-out overhead beats any parallelism win.
  constexpr std::size_t k_parallel_threshold = 1 << 16;
  if (pool_ != nullptr && values.size() >= k_parallel_threshold) {
    pool_->parallel_for(values.size(), 1 << 14,
                        [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) aggregate_[i] += values[i];
    });
    return;
  }
  for (std::size_t i = 0; i < values.size(); ++i) aggregate_[i] += values[i];
}

bool tally_server::results_ready() const {
  return !counter_names_.empty() && sk_reports_seen_.size() == sks_.size();
}

std::vector<counter_result> tally_server::results() const {
  expects(results_ready(), "results requested before all SK reports arrived");
  std::vector<counter_result> out;
  out.reserve(counter_names_.size());
  // With d of n DCs reporting, realized noise variance is (d/n)·sigma²; the
  // published sigma reflects that so CIs stay honest under dropout.
  const double noise_fraction = static_cast<double>(dc_reports_seen_.size()) /
                                static_cast<double>(dcs_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    counter_result r;
    r.name = counter_names_[i];
    r.value = crypto::to_signed_count(aggregate_[i]);
    r.sigma = sigmas_[i] * std::sqrt(noise_fraction);
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace tormet::privcount
