#include "src/privcount/tally_server.h"

#include <algorithm>
#include <cmath>

#include "src/crypto/secret_sharing.h"
#include "src/dp/allocation.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace tormet::privcount {

tally_server::tally_server(net::node_id self, net::transport& transport,
                           std::vector<net::node_id> data_collectors,
                           std::vector<net::node_id> share_keepers)
    : self_{self}, transport_{transport}, dcs_{std::move(data_collectors)},
      sks_{std::move(share_keepers)} {
  expects(!dcs_.empty(), "need at least one data collector");
  expects(!sks_.empty(), "need at least one share keeper");
}

void tally_server::begin_round(const std::vector<counter_spec>& specs,
                               const dp::privacy_params& params) {
  expects(!specs.empty(), "round needs at least one counter");
  ++round_id_;
  counter_names_.clear();
  sigmas_.clear();
  dcs_ready_.clear();
  dc_reports_seen_.clear();
  sk_reports_seen_.clear();
  aggregate_.assign(specs.size(), 0);
  round_dc_count_ = dcs_.size();
  reveal_requested_ = false;

  std::vector<dp::counter_request> requests;
  requests.reserve(specs.size());
  for (const auto& s : specs) {
    requests.push_back({s.name, s.sensitivity, s.expected_value});
  }
  const std::vector<dp::counter_allocation> alloc =
      dp::allocate_budget(params, requests);
  for (const auto& a : alloc) {
    counter_names_.push_back(a.name);
    sigmas_.push_back(noise_enabled_ ? a.sigma : 0.0);
  }

  configure_msg cfg;
  cfg.round_id = round_id_;
  cfg.counter_names = counter_names_;
  cfg.sigmas = sigmas_;
  cfg.noise_weight = 1.0 / static_cast<double>(dcs_.size());
  cfg.share_keepers = sks_;
  for (const auto dc : dcs_) {
    transport_.send(encode_configure(self_, dc, cfg));
  }
  configure_msg sk_cfg = cfg;
  sk_cfg.noise_weight = 0.0;  // SKs hold no noise
  for (const auto sk : sks_) {
    transport_.send(encode_configure(self_, sk, sk_cfg));
  }
}

bool tally_server::all_dcs_ready() const {
  return dcs_ready_.size() == dcs_.size();
}

void tally_server::resume_at_round(std::uint32_t next_round) {
  expects(next_round >= 1, "rounds are 1-based");
  round_id_ = next_round - 1;
}

void tally_server::start_collection() {
  for (const auto dc : dcs_) {
    transport_.send(encode_simple(self_, dc, msg_type::start_collection, round_id_));
  }
}

void tally_server::stop_collection() {
  for (const auto dc : dcs_) {
    transport_.send(encode_simple(self_, dc, msg_type::stop_collection, round_id_));
  }
}

void tally_server::request_reveal() {
  reveal_requested_ = true;
  sk_reveal_msg m;
  m.round_id = round_id_;
  m.reporting_dcs.assign(dc_reports_seen_.begin(), dc_reports_seen_.end());
  for (const auto sk : sks_) {
    transport_.send(encode_sk_reveal(self_, sk, m));
  }
}

void tally_server::handle_message(const net::message& msg) {
  switch (static_cast<msg_type>(msg.type)) {
    case msg_type::dc_ready:
      if (decode_round_id(msg) == round_id_ && is_member(msg.from)) {
        dcs_ready_.insert(msg.from);
      }
      return;
    case msg_type::dc_report: {
      const dc_report_msg m = decode_dc_report(msg);
      if (m.round_id != round_id_) return;
      if (!is_member(msg.from)) {
        // Excluded (or foreign) DCs cannot contribute: their report would
        // re-admit dropped data and satisfy the survivors' completeness
        // check, and the SKs' reveal would not cancel its blinds.
        log_line{log_level::warn}
            << "TS: dropping report from non-member DC " << msg.from;
        return;
      }
      if (reveal_requested_) {
        // A straggler's report after the reveal was requested: the SKs'
        // blinding sums already name the reporting set, so folding this in
        // would leave uncancelled blinds in the aggregate.
        log_line{log_level::warn}
            << "TS: DC " << msg.from
            << " report arrived after the reveal request; dropping";
        return;
      }
      if (m.values.size() != counter_names_.size()) {
        log_line{log_level::warn}
            << "TS: DC " << msg.from << " report has wrong arity; dropping";
        return;
      }
      if (!dc_reports_seen_.insert(msg.from).second) return;  // duplicate
      combine_report(m.values);
      return;
    }
    case msg_type::sk_report: {
      const sk_report_msg m = decode_sk_report(msg);
      if (m.round_id != round_id_) return;
      if (m.sums.size() != counter_names_.size()) {
        log_line{log_level::warn}
            << "TS: SK " << msg.from << " report has wrong arity; dropping";
        return;
      }
      if (!sk_reports_seen_.insert(msg.from).second) return;  // duplicate
      combine_report(m.sums);
      return;
    }
    default:
      log_line{log_level::warn} << "TS: unexpected message type " << msg.type;
  }
}

bool tally_server::is_member(net::node_id dc) const {
  return std::find(dcs_.begin(), dcs_.end(), dc) != dcs_.end();
}

void tally_server::combine_report(std::span<const std::uint64_t> values) {
  expects(values.size() == aggregate_.size(), "report arity mismatch");
  // Ring addition is per-index, so shard boundaries cannot change results.
  // Below ~64k counters the fan-out overhead beats any parallelism win.
  constexpr std::size_t k_parallel_threshold = 1 << 16;
  if (pool_ != nullptr && values.size() >= k_parallel_threshold) {
    pool_->parallel_for(values.size(), 1 << 14,
                        [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) aggregate_[i] += values[i];
    });
    return;
  }
  for (std::size_t i = 0; i < values.size(); ++i) aggregate_[i] += values[i];
}

void tally_server::exclude_dc(net::node_id id) {
  const auto it = std::find(dcs_.begin(), dcs_.end(), id);
  if (it == dcs_.end()) return;
  expects(dcs_.size() > 1, "cannot exclude the last data collector");
  dcs_.erase(it);
  dcs_ready_.erase(id);
  log_line{log_level::warn} << "TS: excluding DC " << id
                            << " from the deployment";
}

void tally_server::readmit_dc(net::node_id id) {
  if (is_member(id)) return;
  dcs_.push_back(id);
  log_line{log_level::info} << "TS: re-admitting DC " << id
                            << " from the next round";
}

bool tally_server::results_ready() const {
  return !counter_names_.empty() && sk_reports_seen_.size() == sks_.size();
}

std::vector<counter_result> tally_server::results() const {
  expects(results_ready(), "results requested before all SK reports arrived");
  std::vector<counter_result> out;
  out.reserve(counter_names_.size());
  // With d of n configured DCs reporting, realized noise variance is
  // (d/n)·sigma²; the published sigma reflects that so CIs stay honest
  // under dropout (n is the round's configured count — exclusions during
  // the round do not shrink it).
  const double noise_fraction = static_cast<double>(dc_reports_seen_.size()) /
                                static_cast<double>(round_dc_count_);
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    counter_result r;
    r.name = counter_names_[i];
    r.value = crypto::to_signed_count(aggregate_[i]);
    r.sigma = sigmas_[i] * std::sqrt(noise_fraction);
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace tormet::privcount
