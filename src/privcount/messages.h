// PrivCount protocol messages (TS <-> DC <-> SK), serialized with the wire
// codec. The round structure follows PrivCount: configure -> blind ->
// collect -> report, with the TS naming the reporting DC set before SKs
// reveal blinding sums (that is what makes DC dropout recoverable).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/transport.h"
#include "src/privcount/counter.h"

namespace tormet::privcount {

enum class msg_type : std::uint16_t {
  configure = 1,      // TS -> DC, TS -> SK: round config
  blinding_share = 2, // DC -> SK: one blinding value per counter
  dc_ready = 3,       // DC -> TS: blinded and ready to collect
  start_collection = 4,  // TS -> DC
  stop_collection = 5,   // TS -> DC: send your report
  dc_report = 6,      // DC -> TS: final ring values
  sk_reveal = 7,      // TS -> SK: reveal blinding sums for this DC set
  sk_report = 8,      // SK -> TS: per-counter blinding sums
};

/// Round configuration sent to DCs and SKs.
struct configure_msg {
  std::uint32_t round_id = 0;
  std::vector<std::string> counter_names;
  std::vector<double> sigmas;        // per-counter aggregate noise std-dev
  double noise_weight = 0.0;         // this DC's share of noise variance
  std::vector<net::node_id> share_keepers;
};

/// Blinding values from one DC to one SK (one value per counter, in
/// counter_names order).
struct blinding_share_msg {
  std::uint32_t round_id = 0;
  std::vector<std::uint64_t> shares;
};

/// DC's final counter report (ring values, counter_names order).
struct dc_report_msg {
  std::uint32_t round_id = 0;
  std::vector<std::uint64_t> values;
};

/// TS -> SK: reveal sums over exactly this DC set (the DCs that reported).
struct sk_reveal_msg {
  std::uint32_t round_id = 0;
  std::vector<net::node_id> reporting_dcs;
};

/// SK's blinding sums (counter_names order, over the requested DC set).
struct sk_report_msg {
  std::uint32_t round_id = 0;
  std::vector<std::uint64_t> sums;
};

// Encode/decode. Decoders validate framing and throw net::wire_error on
// malformed input.
[[nodiscard]] net::message encode_configure(net::node_id from, net::node_id to,
                                            const configure_msg& m);
[[nodiscard]] configure_msg decode_configure(const net::message& msg);

[[nodiscard]] net::message encode_blinding_share(net::node_id from, net::node_id to,
                                                 const blinding_share_msg& m);
[[nodiscard]] blinding_share_msg decode_blinding_share(const net::message& msg);

[[nodiscard]] net::message encode_simple(net::node_id from, net::node_id to,
                                         msg_type type, std::uint32_t round_id);
[[nodiscard]] std::uint32_t decode_round_id(const net::message& msg);

[[nodiscard]] net::message encode_dc_report(net::node_id from, net::node_id to,
                                            const dc_report_msg& m);
[[nodiscard]] dc_report_msg decode_dc_report(const net::message& msg);

[[nodiscard]] net::message encode_sk_reveal(net::node_id from, net::node_id to,
                                            const sk_reveal_msg& m);
[[nodiscard]] sk_reveal_msg decode_sk_reveal(const net::message& msg);

[[nodiscard]] net::message encode_sk_report(net::node_id from, net::node_id to,
                                            const sk_report_msg& m);
[[nodiscard]] sk_report_msg decode_sk_report(const net::message& msg);

}  // namespace tormet::privcount
