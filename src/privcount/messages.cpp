#include "src/privcount/messages.h"

#include "src/net/wire.h"

namespace tormet::privcount {

namespace {
[[nodiscard]] net::message make(net::node_id from, net::node_id to, msg_type type,
                                net::wire_writer& w) {
  net::message msg;
  msg.from = from;
  msg.to = to;
  msg.type = static_cast<std::uint16_t>(type);
  msg.payload = w.take();
  return msg;
}

void write_u64_vector(net::wire_writer& w, const std::vector<std::uint64_t>& v) {
  w.write_varint(v.size());
  for (const auto x : v) w.write_u64(x);
}

[[nodiscard]] std::vector<std::uint64_t> read_u64_vector(net::wire_reader& r) {
  const std::uint64_t n = r.read_varint();
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.read_u64());
  return v;
}
}  // namespace

net::message encode_configure(net::node_id from, net::node_id to,
                              const configure_msg& m) {
  net::wire_writer w;
  w.write_u32(m.round_id);
  w.write_varint(m.counter_names.size());
  for (const auto& name : m.counter_names) w.write_string(name);
  w.write_varint(m.sigmas.size());
  for (const auto s : m.sigmas) w.write_f64(s);
  w.write_f64(m.noise_weight);
  w.write_varint(m.share_keepers.size());
  for (const auto sk : m.share_keepers) w.write_u32(sk);
  return make(from, to, msg_type::configure, w);
}

configure_msg decode_configure(const net::message& msg) {
  net::wire_reader r{msg.payload};
  configure_msg m;
  m.round_id = r.read_u32();
  const std::uint64_t n_names = r.read_varint();
  m.counter_names.reserve(n_names);
  for (std::uint64_t i = 0; i < n_names; ++i) m.counter_names.push_back(r.read_string());
  const std::uint64_t n_sigmas = r.read_varint();
  m.sigmas.reserve(n_sigmas);
  for (std::uint64_t i = 0; i < n_sigmas; ++i) m.sigmas.push_back(r.read_f64());
  m.noise_weight = r.read_f64();
  const std::uint64_t n_sk = r.read_varint();
  m.share_keepers.reserve(n_sk);
  for (std::uint64_t i = 0; i < n_sk; ++i) m.share_keepers.push_back(r.read_u32());
  r.expect_end();
  if (m.counter_names.size() != m.sigmas.size()) {
    throw net::wire_error{"configure: names/sigmas size mismatch"};
  }
  return m;
}

net::message encode_blinding_share(net::node_id from, net::node_id to,
                                   const blinding_share_msg& m) {
  net::wire_writer w;
  w.write_u32(m.round_id);
  write_u64_vector(w, m.shares);
  return make(from, to, msg_type::blinding_share, w);
}

blinding_share_msg decode_blinding_share(const net::message& msg) {
  net::wire_reader r{msg.payload};
  blinding_share_msg m;
  m.round_id = r.read_u32();
  m.shares = read_u64_vector(r);
  r.expect_end();
  return m;
}

net::message encode_simple(net::node_id from, net::node_id to, msg_type type,
                           std::uint32_t round_id) {
  net::wire_writer w;
  w.write_u32(round_id);
  return make(from, to, type, w);
}

std::uint32_t decode_round_id(const net::message& msg) {
  net::wire_reader r{msg.payload};
  const std::uint32_t round_id = r.read_u32();
  // Simple messages carry only the round id, but allow richer messages'
  // round ids to be peeked without consuming the rest.
  return round_id;
}

net::message encode_dc_report(net::node_id from, net::node_id to,
                              const dc_report_msg& m) {
  net::wire_writer w;
  w.write_u32(m.round_id);
  write_u64_vector(w, m.values);
  return make(from, to, msg_type::dc_report, w);
}

dc_report_msg decode_dc_report(const net::message& msg) {
  net::wire_reader r{msg.payload};
  dc_report_msg m;
  m.round_id = r.read_u32();
  m.values = read_u64_vector(r);
  r.expect_end();
  return m;
}

net::message encode_sk_reveal(net::node_id from, net::node_id to,
                              const sk_reveal_msg& m) {
  net::wire_writer w;
  w.write_u32(m.round_id);
  w.write_varint(m.reporting_dcs.size());
  for (const auto dc : m.reporting_dcs) w.write_u32(dc);
  return make(from, to, msg_type::sk_reveal, w);
}

sk_reveal_msg decode_sk_reveal(const net::message& msg) {
  net::wire_reader r{msg.payload};
  sk_reveal_msg m;
  m.round_id = r.read_u32();
  const std::uint64_t n = r.read_varint();
  m.reporting_dcs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) m.reporting_dcs.push_back(r.read_u32());
  r.expect_end();
  return m;
}

net::message encode_sk_report(net::node_id from, net::node_id to,
                              const sk_report_msg& m) {
  net::wire_writer w;
  w.write_u32(m.round_id);
  write_u64_vector(w, m.sums);
  return make(from, to, msg_type::sk_report, w);
}

sk_report_msg decode_sk_report(const net::message& msg) {
  net::wire_reader r{msg.payload};
  sk_report_msg m;
  m.round_id = r.read_u32();
  m.sums = read_u64_vector(r);
  r.expect_end();
  return m;
}

}  // namespace tormet::privcount
