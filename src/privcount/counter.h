// PrivCount counter specifications. A measurement round publishes a set of
// named counters; each has a sensitivity (from the action bounds) and an
// operator-estimated expected value (for the equal-relative-noise budget
// split). Histograms — the paper's §3.1 set-membership enhancement used for
// the Alexa/TLD/country measurements — are families of independent counters
// sharing one sensitivity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tormet::privcount {

/// One published statistic.
struct counter_spec {
  std::string name;
  double sensitivity = 1.0;     // Δ: max change from one protected user-day
  double expected_value = 1.0;  // E: operator's magnitude estimate
};

/// Helper: expands a histogram into per-bin counter specs named
/// "<base>/<bin>". One user's bounded activity can touch up to
/// `sensitivity` increments across all bins, so each bin inherits the full
/// sensitivity (a user could concentrate activity in one bin).
[[nodiscard]] inline std::vector<counter_spec> histogram_specs(
    const std::string& base, const std::vector<std::string>& bins,
    double sensitivity, double expected_per_bin) {
  std::vector<counter_spec> out;
  out.reserve(bins.size());
  for (const auto& bin : bins) {
    out.push_back({base + "/" + bin, sensitivity, expected_per_bin});
  }
  return out;
}

/// A counter's aggregated (noisy) result.
struct counter_result {
  std::string name;
  std::int64_t value = 0;  // true count + Gaussian noise
  double sigma = 0.0;      // total noise std-dev (for confidence intervals)
};

}  // namespace tormet::privcount
