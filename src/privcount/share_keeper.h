// PrivCount share keeper (SK): holds the blinding values the DCs split off.
// Privacy holds as long as one SK is honest (its shares keep every other
// party's view uniformly random). The SK reveals only *sums over the DC set
// the tally server names* — which is how rounds survive DC dropout: blinds
// of non-reporting DCs are simply left out of the sum on both sides.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/net/transport.h"
#include "src/privcount/messages.h"

namespace tormet::privcount {

class share_keeper {
 public:
  share_keeper(net::node_id self, net::node_id tally_server,
               net::transport& transport);

  void handle_message(const net::message& msg);

  [[nodiscard]] net::node_id id() const noexcept { return self_; }

 private:
  net::node_id self_;
  net::node_id tally_server_;
  net::transport& transport_;

  std::uint32_t round_id_ = 0;
  std::size_t n_counters_ = 0;
  /// Per-DC blinding vectors for the current round.
  std::map<net::node_id, std::vector<std::uint64_t>> shares_by_dc_;
};

}  // namespace tormet::privcount
