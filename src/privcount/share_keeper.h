// PrivCount share keeper (SK): holds the blinding values the DCs split off.
// Privacy holds as long as one SK is honest (its shares keep every other
// party's view uniformly random). The SK reveals only *sums over the DC set
// the tally server names* — which is how rounds survive DC dropout: blinds
// of non-reporting DCs are simply left out of the sum on both sides.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/net/transport.h"
#include "src/privcount/messages.h"

namespace tormet::privcount {

class share_keeper {
 public:
  share_keeper(net::node_id self, net::node_id tally_server,
               net::transport& transport);

  void handle_message(const net::message& msg);

  [[nodiscard]] net::node_id id() const noexcept { return self_; }

 private:
  /// Answers the pending reveal once every named reporting DC's blinding
  /// share has arrived. In a distributed deployment DC->SK shares and
  /// DC->TS readiness travel on independent TCP channels, so the TS's
  /// reveal request can overtake a share that is still in flight; revealing
  /// immediately would publish sums whose blinds do not cancel. A DC the TS
  /// names has reported, hence has causally sent its shares — deferring
  /// until they arrive cannot wedge dropout recovery (dropped-out DCs are
  /// simply never named).
  void maybe_reveal();

  net::node_id self_;
  net::node_id tally_server_;
  net::transport& transport_;

  std::uint32_t round_id_ = 0;
  std::size_t n_counters_ = 0;
  /// Per-DC blinding vectors for the current round.
  std::map<net::node_id, std::vector<std::uint64_t>> shares_by_dc_;
  /// Shares that arrived for a round this SK has not been configured for
  /// yet. DC->SK shares and TS->SK configure travel on independent
  /// channels in a distributed deployment, so a share can beat the
  /// configure; dropping it as stale would lose it silently (and wedge
  /// the deferred reveal). Adopted (and validated) at configure time.
  std::map<std::uint32_t, std::map<net::node_id, std::vector<std::uint64_t>>>
      early_shares_;
  /// Reveal request waiting for in-flight blinding shares (empty: none).
  std::vector<net::node_id> pending_reveal_dcs_;
  bool reveal_pending_ = false;
};

}  // namespace tormet::privcount
