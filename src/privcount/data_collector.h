// PrivCount data collector (DC): runs beside one instrumented Tor relay.
// On configure it samples its Gaussian noise share and one blinding value
// per (counter, share keeper); its in-memory counters start at
// noise − Σ blinds (mod 2^64), so a seized DC reveals nothing (every proper
// subset of {DC value, blinds} is uniformly random). Events increment
// counters during collection; the final report is still blinded.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/crypto/secure_rng.h"
#include "src/net/transport.h"
#include "src/privcount/messages.h"
#include "src/tor/events.h"

namespace tormet::privcount {

class data_collector {
 public:
  /// An instrument maps an observed Tor event to counter increments by name
  /// (the `increment` callback may be invoked any number of times).
  using instrument =
      std::function<void(const tor::event&,
                         const std::function<void(const std::string& counter,
                                                  std::uint64_t amount)>&)>;

  data_collector(net::node_id self, net::node_id tally_server,
                 net::transport& transport, crypto::secure_rng& rng);

  /// Registers an instrument (before or between rounds).
  void add_instrument(instrument fn);

  /// Transport handler (register with the transport for `self`).
  void handle_message(const net::message& msg);

  /// Feeds one observed event (only counted while a round is collecting).
  void observe(const tor::event& ev);

  [[nodiscard]] net::node_id id() const noexcept { return self_; }
  [[nodiscard]] bool collecting() const noexcept { return collecting_; }
  /// Events counted while collecting, across all rounds — observability
  /// for trace-replay deployments (only the total is kept; the blinded
  /// counters reveal nothing per-event).
  [[nodiscard]] std::uint64_t events_observed() const noexcept {
    return events_observed_;
  }

 private:
  void on_configure(const configure_msg& m);
  void increment(const std::string& counter, std::uint64_t amount);

  net::node_id self_;
  net::node_id tally_server_;
  net::transport& transport_;
  crypto::secure_rng& rng_;
  std::vector<instrument> instruments_;

  std::uint32_t round_id_ = 0;
  std::vector<std::string> counter_names_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::vector<std::uint64_t> counters_;  // ring values
  bool collecting_ = false;
  std::uint64_t events_observed_ = 0;
};

}  // namespace tormet::privcount
