// PrivCount data collector (DC): runs beside one instrumented Tor relay.
// On configure it samples its Gaussian noise share and one blinding value
// per (counter, share keeper); the blinded base values start at
// noise − Σ blinds (mod 2^64), so a seized DC reveals nothing (every proper
// subset of {DC value, blinds} is uniformly random). Events increment flat
// per-shard counter slabs during collection — the observe path is sharded
// by client/circuit hash and optionally runs the shards on a worker pool,
// each worker owning its shard's slab row exclusively — and the final
// report merges base + slabs deterministically, so its bytes never depend
// on the shard count or the worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/event_sink.h"
#include "src/crypto/secure_rng.h"
#include "src/net/transport.h"
#include "src/privcount/counter_slab.h"
#include "src/privcount/messages.h"
#include "src/tor/events.h"
#include "src/util/thread_pool.h"

namespace tormet::privcount {

class data_collector final : public core::event_sink {
 public:
  /// An instrument maps an observed Tor event to counter increments by name
  /// (the `increment` callback may be invoked any number of times).
  using instrument = legacy_instrument;

  data_collector(net::node_id self, net::node_id tally_server,
                 net::transport& transport, crypto::secure_rng& rng);

  /// Registers a string-callback instrument (before or between rounds),
  /// wrapped in the slot-memoizing batch adapter.
  void add_instrument(instrument fn);
  /// Registers a slot-compiled instrument (the fast path for hot counters).
  void add_instrument(std::unique_ptr<batch_instrument> ins);

  /// Number of ingest shards (>= 1). A between-rounds operation: changing
  /// it re-sizes the (all-zero) counter slabs immediately so the slab
  /// layout and the shard count can never disagree, and is rejected while
  /// a round is collecting. Tally bytes are identical for every value —
  /// sharding buys locality and parallelism, not semantics.
  void set_shards(std::size_t n) override;
  [[nodiscard]] std::size_t shards() const noexcept override { return shards_; }

  /// Worker pool the ingest shards run on (nullptr = calling thread only).
  /// Each worker owns its shard's slab row exclusively and the merge order
  /// is fixed, so report bytes are identical for every pool size. Rejected
  /// while a round is collecting, like set_shards.
  void set_thread_pool(std::shared_ptr<util::thread_pool> pool) override;

  /// Transport handler (register with the transport for `self`).
  void handle_message(const net::message& msg);

  /// Feeds one observed event (only counted while a round is collecting).
  void observe(const tor::event& ev) override;

  /// Feeds a contiguous batch of observed events: partitions them across
  /// the ingest shards and runs every instrument per shard over flat
  /// slabs, one pool worker per shard when a pool is attached. Equivalent
  /// to observe() per event, at a fraction of the cost.
  void ingest(const tor::event* evs, std::size_t n) override;

  [[nodiscard]] net::node_id id() const noexcept { return self_; }
  [[nodiscard]] bool collecting() const noexcept { return collecting_; }
  /// Events counted while collecting, across all rounds — observability
  /// for trace-replay deployments (only the total is kept; the blinded
  /// counters reveal nothing per-event).
  [[nodiscard]] std::uint64_t events_observed() const noexcept override {
    return events_observed_;
  }

 private:
  void on_configure(const configure_msg& m);
  /// Runs every instrument over shard `s`'s bucket into its slab row.
  void ingest_shard(std::size_t s);

  net::node_id self_;
  net::node_id tally_server_;
  net::transport& transport_;
  crypto::secure_rng& rng_;
  std::vector<std::unique_ptr<batch_instrument>> instruments_;

  std::uint32_t round_id_ = 0;
  std::vector<std::string> counter_names_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::vector<std::uint64_t> base_;   // blinded start values (noise − blinds)
  std::vector<std::uint64_t> slabs_;  // shards_ rows of (counters + 1) slots
  std::size_t shards_ = 1;
  std::shared_ptr<util::thread_pool> pool_;  // ingest workers (may be null)
  std::vector<std::vector<const tor::event*>> buckets_;  // ingest scratch
  bool collecting_ = false;
  std::uint64_t events_observed_ = 0;
};

}  // namespace tormet::privcount
