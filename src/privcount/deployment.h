// Convenience wrapper assembling a full PrivCount deployment (1 TS, k SKs,
// n DCs) over a transport, wiring DCs to the relays of a tor::network, and
// running measurement rounds end to end. This is the object the paper's
// §3.1 deployment corresponds to (1 TS, 3 SKs, 16 DCs).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/crypto/secure_rng.h"
#include "src/net/transport.h"
#include "src/privcount/data_collector.h"
#include "src/privcount/share_keeper.h"
#include "src/privcount/tally_server.h"
#include "src/tor/network.h"
#include "src/util/thread_pool.h"

namespace tormet::privcount {

struct deployment_config {
  std::size_t num_share_keepers = 3;
  /// The measurement relays; one DC runs beside each.
  std::vector<tor::relay_id> measured_relays;
  dp::privacy_params privacy{};
  bool noise_enabled = true;
  /// Deployment seed. Each DC draws from its own stream derived as
  /// crypto::derive_node_seed(rng_seed, node_id), so noise/blinding are
  /// identical in-process and across a distributed multi-process round.
  std::uint64_t rng_seed = 2718;
  /// Workers in the TS's combine thread pool (0 = inline). Only worth > 0
  /// for per-domain/per-country censuses with 10^5+ counters; results are
  /// identical either way.
  std::size_t worker_threads = 0;
};

class deployment {
 public:
  /// Builds all nodes and registers them with `transport`. Node ids are
  /// assigned: TS=0, SKs=1..k, DCs=k+1..k+n (in measured_relays order).
  deployment(net::transport& transport, const deployment_config& config);

  /// Installs an instrument on every DC.
  void add_instrument(data_collector::instrument fn);

  /// Hooks the DCs into `net`: sets its observed-relay set and event sink
  /// (events route to the DC of the observing relay).
  void attach(tor::network& net);

  /// Runs one full round: configure -> collect (caller generates traffic in
  /// `workload`) -> report -> aggregate. Returns the noisy counters.
  std::vector<counter_result> run_round(
      const std::vector<counter_spec>& specs,
      const std::function<void()>& workload);

  [[nodiscard]] tally_server& ts() noexcept { return *ts_; }
  /// Direct DC access (index follows measured_relays order) for workloads
  /// that feed events without going through a tor::network — e.g. the
  /// orchestrator's in-process reference round replaying per-DC traces.
  [[nodiscard]] data_collector& dc_at(std::size_t i) { return *dcs_.at(i); }
  [[nodiscard]] const std::set<tor::relay_id>& measured_relays() const noexcept {
    return measured_set_;
  }

 private:
  net::transport& transport_;
  deployment_config config_;
  /// One RNG per DC node, seeded via crypto::derive_node_seed at
  /// construction and crypto::derive_node_round_seed at round boundaries.
  std::vector<std::unique_ptr<crypto::deterministic_rng>> node_rngs_;
  std::vector<net::node_id> rng_node_ids_;  // parallel to node_rngs_
  std::shared_ptr<util::thread_pool> pool_;
  std::unique_ptr<tally_server> ts_;
  std::vector<std::unique_ptr<share_keeper>> sks_;
  std::vector<std::unique_ptr<data_collector>> dcs_;
  std::map<tor::relay_id, data_collector*> dc_by_relay_;
  std::set<tor::relay_id> measured_set_;
};

}  // namespace tormet::privcount
