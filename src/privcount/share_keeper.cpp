#include "src/privcount/share_keeper.h"

#include "src/util/check.h"
#include "src/util/logging.h"

namespace tormet::privcount {

share_keeper::share_keeper(net::node_id self, net::node_id tally_server,
                           net::transport& transport)
    : self_{self}, tally_server_{tally_server}, transport_{transport} {}

void share_keeper::handle_message(const net::message& msg) {
  switch (static_cast<msg_type>(msg.type)) {
    case msg_type::configure: {
      const configure_msg m = decode_configure(msg);
      round_id_ = m.round_id;
      n_counters_ = m.counter_names.size();
      shares_by_dc_.clear();
      return;
    }
    case msg_type::blinding_share: {
      const blinding_share_msg m = decode_blinding_share(msg);
      if (m.round_id != round_id_) return;  // stale round
      if (m.shares.size() != n_counters_) {
        log_line{log_level::warn}
            << "SK " << self_ << ": DC " << msg.from
            << " sent malformed share vector; ignoring";
        return;
      }
      shares_by_dc_[msg.from] = m.shares;
      return;
    }
    case msg_type::sk_reveal: {
      const sk_reveal_msg m = decode_sk_reveal(msg);
      if (m.round_id != round_id_) return;
      sk_report_msg report;
      report.round_id = round_id_;
      report.sums.assign(n_counters_, 0);
      for (const auto dc : m.reporting_dcs) {
        const auto it = shares_by_dc_.find(dc);
        if (it == shares_by_dc_.end()) continue;  // DC never blinded with us
        for (std::size_t i = 0; i < n_counters_; ++i) {
          report.sums[i] += it->second[i];  // mod 2^64
        }
      }
      transport_.send(encode_sk_report(self_, tally_server_, report));
      shares_by_dc_.clear();  // forget blinds after the round
      return;
    }
    default:
      log_line{log_level::warn} << "SK " << self_ << ": unexpected message type "
                                << msg.type;
  }
}

}  // namespace tormet::privcount
