#include "src/privcount/share_keeper.h"

#include "src/util/check.h"
#include "src/util/logging.h"

namespace tormet::privcount {

share_keeper::share_keeper(net::node_id self, net::node_id tally_server,
                           net::transport& transport)
    : self_{self}, tally_server_{tally_server}, transport_{transport} {}

void share_keeper::handle_message(const net::message& msg) {
  switch (static_cast<msg_type>(msg.type)) {
    case msg_type::configure: {
      const configure_msg m = decode_configure(msg);
      // A re-configure for the round we are already in is a durable TS
      // retrying the attempt. DC blinds are byte-identical across attempts
      // (per-round RNG reseeding), so shares already held stay valid; a
      // DC's re-sent share could even have arrived before this configure,
      // and wiping it here would lose it for good.
      const bool rerun = m.round_id == round_id_ &&
                         m.counter_names.size() == n_counters_;
      round_id_ = m.round_id;
      n_counters_ = m.counter_names.size();
      if (!rerun) shares_by_dc_.clear();
      pending_reveal_dcs_.clear();
      reveal_pending_ = false;
      // Adopt shares that raced ahead of this configure, dropping any for
      // rounds now in the past.
      const auto early = early_shares_.find(round_id_);
      if (early != early_shares_.end()) {
        for (auto& [dc, shares] : early->second) {
          if (shares.size() == n_counters_) {
            shares_by_dc_[dc] = std::move(shares);
          } else {
            log_line{log_level::warn}
                << "SK " << self_ << ": DC " << dc
                << " sent malformed early share vector; ignoring";
          }
        }
      }
      early_shares_.erase(early_shares_.begin(),
                          early_shares_.upper_bound(round_id_));
      return;
    }
    case msg_type::blinding_share: {
      const blinding_share_msg m = decode_blinding_share(msg);
      if (m.round_id != round_id_) {
        // A share for a round we have not been configured for yet (the
        // DC's configure beat ours through the fabric): hold it until our
        // configure arrives. Genuinely stale rounds are dropped, and the
        // buffer is bounded — rounds advance one at a time, so anything
        // far ahead (or flooding the buffer) is a misbehaving peer, not a
        // race.
        constexpr std::uint32_t k_max_rounds_ahead = 4;
        constexpr std::size_t k_max_early_shares = 256;
        const bool plausible = m.round_id > round_id_ &&
                               m.round_id - round_id_ <= k_max_rounds_ahead;
        std::size_t buffered = 0;
        for (const auto& [round, by_dc] : early_shares_) buffered += by_dc.size();
        if (plausible && buffered < k_max_early_shares) {
          early_shares_[m.round_id][msg.from] = m.shares;
        } else if (m.round_id > round_id_) {
          log_line{log_level::warn}
              << "SK " << self_ << ": dropping implausible early share from DC "
              << msg.from << " (round " << m.round_id << ", current "
              << round_id_ << ")";
        }
        return;
      }
      if (m.shares.size() != n_counters_) {
        log_line{log_level::warn}
            << "SK " << self_ << ": DC " << msg.from
            << " sent malformed share vector; ignoring";
        return;
      }
      shares_by_dc_[msg.from] = m.shares;
      maybe_reveal();  // a deferred reveal may now be satisfiable
      return;
    }
    case msg_type::sk_reveal: {
      const sk_reveal_msg m = decode_sk_reveal(msg);
      if (m.round_id != round_id_) return;
      pending_reveal_dcs_ = m.reporting_dcs;
      reveal_pending_ = true;
      maybe_reveal();
      return;
    }
    default:
      log_line{log_level::warn} << "SK " << self_ << ": unexpected message type "
                                << msg.type;
  }
}

void share_keeper::maybe_reveal() {
  if (!reveal_pending_) return;
  for (const auto dc : pending_reveal_dcs_) {
    if (!shares_by_dc_.contains(dc)) return;  // share still in flight
  }
  sk_report_msg report;
  report.round_id = round_id_;
  report.sums.assign(n_counters_, 0);
  for (const auto dc : pending_reveal_dcs_) {
    const auto& shares = shares_by_dc_.at(dc);
    for (std::size_t i = 0; i < n_counters_; ++i) {
      report.sums[i] += shares[i];  // mod 2^64
    }
  }
  transport_.send(encode_sk_report(self_, tally_server_, report));
  shares_by_dc_.clear();  // forget blinds after the round
  pending_reveal_dcs_.clear();
  reveal_pending_ = false;
}

}  // namespace tormet::privcount
