// Synthetic ahmia.fi onion-site index (substitute for the live search
// index — see DESIGN.md §1). The paper checked every successfully fetched
// descriptor address against ahmia's public index and found 56.8 % present;
// we build an index covering a configurable fraction of the service
// population so the same Table 7 classification runs.
#pragma once

#include <set>
#include <span>
#include <string>

#include "src/tor/onion.h"
#include "src/util/rng.h"

namespace tormet::workload {

class ahmia_index {
 public:
  /// Indexes each address independently with probability `public_fraction`.
  [[nodiscard]] static ahmia_index make(
      std::span<const tor::onion_address> addresses, double public_fraction,
      rng& r);

  [[nodiscard]] bool contains(const tor::onion_address& addr) const {
    return indexed_.contains(addr.value);
  }
  [[nodiscard]] std::size_t size() const noexcept { return indexed_.size(); }

 private:
  std::set<std::string> indexed_;
};

}  // namespace tormet::workload
