#include "src/workload/geoip.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace tormet::workload {

namespace {
/// Head of the client-share distribution (Fig 4 shape). The remainder of
/// the 250 countries share the leftover weight geometrically.
struct share_row {
  const char* code;
  double share;
};
constexpr share_row k_major_countries[] = {
    {"US", 0.170}, {"RU", 0.130}, {"DE", 0.110}, {"UA", 0.050}, {"FR", 0.048},
    {"GB", 0.040}, {"CA", 0.032}, {"NL", 0.025}, {"PL", 0.022}, {"ES", 0.020},
    {"IT", 0.020}, {"SE", 0.018}, {"BR", 0.018}, {"AE", 0.016}, {"MX", 0.014},
    {"AR", 0.012}, {"SK", 0.012}, {"VE", 0.012}, {"NZ", 0.010}, {"CZ", 0.010},
    {"AT", 0.010}, {"CH", 0.010}, {"JP", 0.010}, {"IN", 0.010}, {"AU", 0.008},
    {"BE", 0.008}, {"DK", 0.008}, {"FI", 0.008}, {"NO", 0.008}, {"PT", 0.007},
    {"RO", 0.007}, {"GR", 0.007}, {"HU", 0.007}, {"TR", 0.007}, {"IR", 0.007},
    {"CN", 0.006}, {"KR", 0.006}, {"TW", 0.005}, {"HK", 0.005}, {"SG", 0.005},
    {"ID", 0.005}, {"TH", 0.005}, {"MY", 0.004}, {"VN", 0.004}, {"IL", 0.004},
    {"ZA", 0.004}, {"CL", 0.004}, {"CO", 0.004}, {"EG", 0.003}, {"NG", 0.003},
};
}  // namespace

geoip_db geoip_db::make_synthetic() {
  geoip_db db;
  constexpr std::size_t k_num_countries = 250;
  db.countries_.reserve(k_num_countries);

  double used = 0.0;
  for (const auto& row : k_major_countries) {
    db.countries_.push_back({row.code, row.share, 0});
    used += row.share;
  }
  // Long tail: geometric decay over the remaining countries.
  const std::size_t tail = k_num_countries - std::size(k_major_countries);
  const double remaining = 1.0 - used;
  double tail_total = 0.0;
  std::vector<double> tail_weights(tail);
  for (std::size_t i = 0; i < tail; ++i) {
    tail_weights[i] = std::pow(0.97, static_cast<double>(i));
    tail_total += tail_weights[i];
  }
  for (std::size_t i = 0; i < tail; ++i) {
    // Synthetic ISO-like codes T0A..T9Z for the tail.
    std::string code = "T";
    code += static_cast<char>('0' + (i / 26) % 10);
    code += static_cast<char>('A' + i % 26);
    db.countries_.push_back({code, remaining * tail_weights[i] / tail_total, 0});
  }

  // AS allocation: ~59,597 total (CAIDA's count at measurement time),
  // proportional to client share with a minimum of 3 per country.
  constexpr std::uint32_t k_total_as_target = 59'597;
  db.as_base_.resize(db.countries_.size());
  std::uint32_t next_as = 1;
  for (std::size_t i = 0; i < db.countries_.size(); ++i) {
    auto count = static_cast<std::uint32_t>(db.countries_[i].client_share *
                                            k_total_as_target);
    count = std::max<std::uint32_t>(count, 3);
    db.countries_[i].as_count = count;
    db.as_base_[i] = next_as;
    next_as += count;
  }
  db.total_ases_ = next_as - 1;

  db.cumulative_share_.reserve(db.countries_.size());
  double acc = 0.0;
  for (const auto& c : db.countries_) {
    acc += c.client_share;
    db.cumulative_share_.push_back(acc);
  }
  db.next_ip_.assign(db.countries_.size(), 0);
  return db;
}

country_index geoip_db::country_of(std::uint32_t ip) const {
  const std::uint32_t block = ip >> k_block_bits;
  expects(block < countries_.size(), "ip outside the synthetic address plan");
  return static_cast<country_index>(block);
}

std::uint32_t geoip_db::asn_of(std::uint32_t ip) const {
  const country_index c = country_of(ip);
  const std::uint32_t offset = ip & ((1u << k_block_bits) - 1);
  const std::uint32_t block_size = 1u << k_block_bits;
  const std::uint32_t as_count = countries_[c].as_count;
  // Contiguous AS ranges inside the country block.
  const auto local_as = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(offset) * as_count) / block_size);
  return as_base_[c] + local_as;
}

country_index geoip_db::sample_country(rng& r) const {
  const double target = r.uniform() * cumulative_share_.back();
  const auto it = std::upper_bound(cumulative_share_.begin(),
                                   cumulative_share_.end(), target);
  const auto idx = it == cumulative_share_.end()
                       ? cumulative_share_.size() - 1
                       : static_cast<std::size_t>(it - cumulative_share_.begin());
  return static_cast<country_index>(idx);
}

country_index geoip_db::index_of(const std::string& code) const {
  for (std::size_t i = 0; i < countries_.size(); ++i) {
    if (countries_[i].code == code) return static_cast<country_index>(i);
  }
  throw precondition_error{"unknown country code: " + code};
}

std::uint32_t geoip_db::allocate_ip(country_index country) {
  expects(country < countries_.size(), "country index out of range");
  const std::uint32_t block_size = 1u << k_block_bits;
  const std::uint32_t counter = next_ip_[country]++;
  expects(counter < block_size, "country address block exhausted");
  // Multiplicative spread (odd constant => bijection mod 2^22) so
  // consecutive clients land in different AS ranges.
  const std::uint32_t offset = (counter * 2654435761u) & (block_size - 1);
  return (static_cast<std::uint32_t>(country) << k_block_bits) | offset;
}

}  // namespace tormet::workload
