// Web-browsing workload: generates the exit-side traffic of §4. Each web
// client builds per-site circuits (Tor Browser's one-circuit-per-domain
// behaviour) whose initial stream carries the intended destination; the
// destination mixture is calibrated to the paper's measured shape:
//
//   * ~40 % torproject.org (the Onionoo anomaly, §4.3),
//   * ~9.7 % amazon siblings (www.amazon.com-dominated),
//   * ~39 % other Alexa sites, Zipf over rank (exponent 1 makes the Fig 2
//     rank-decade buckets flat, as measured),
//   * remainder: a non-Alexa long tail (the Table 2 unique-SLD tail).
//
// Within the Alexa tail, only every `alexa_active_stride`-th site is
// visited by Tor users (mass snaps to one representative per stride
// bucket): this keeps the per-decade access shares flat while reproducing
// the paper's small unique-Alexa-SLD count relative to total accesses.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>

#include "src/tor/network.h"
#include "src/workload/alexa.h"
#include "src/workload/zipf.h"

namespace tormet::workload {

struct browsing_params {
  // destination mixture (fractions of initial streams). The remainder
  // (~0.217 with the defaults, matching Fig 2's "other" bar) is the
  // non-Alexa long tail; torproject + amazon + alexa ≈ 78 % total Alexa
  // membership — the paper's "~80 % of sites are in the top-1M list".
  double torproject_share = 0.401;
  double amazon_share = 0.097;
  double alexa_share = 0.285;          // other Alexa-listed sites
  double www_amazon_fraction = 0.886;  // of amazon-share hits: www.amazon.com

  // Alexa tail shape
  double alexa_zipf_exponent = 1.0;
  std::uint32_t alexa_active_stride = 25;

  // non-Alexa long tail
  std::uint64_t tail_universe = 5'000'000;
  double tail_zipf_exponent = 0.75;

  // stream taxonomy (Fig 1 shape)
  double subsequent_streams_per_initial = 19.0;  // total/initial ≈ 20 (5 %)
  double ip_literal_fraction = 0.002;            // initial streams naming an IP
  double nonweb_port_fraction = 0.004;           // hostname streams, port != 80/443
  double port_443_fraction = 0.75;               // remainder uses port 80

  // volume
  double circuits_per_web_client = 9.0;          // site visits per client-day
  double stream_bytes_mean = 250e3;              // exponential payload per stream

  std::uint64_t seed = 99;
};

class browsing_driver {
 public:
  browsing_driver(tor::network& net, const alexa_list& alexa,
                  browsing_params params);

  /// One day of browsing for the given web clients.
  void run_day(std::span<const tor::client_id> web_clients, sim_time day_start);

  /// Samples one destination hostname from the mixture (exposed for tests
  /// and for the Monte-Carlo extrapolation to re-use the exact model).
  [[nodiscard]] std::string sample_destination();

  /// One full site visit (circuit with initial + subsequent streams) for an
  /// arbitrary client — building block of run_day.
  void visit_site(tor::client_id c, sim_time t);

  /// Ground truth for Table 2 validation: distinct Alexa ranks / long-tail
  /// ids visited network-wide so far.
  [[nodiscard]] std::size_t unique_alexa_sites_visited() const noexcept {
    return visited_alexa_ranks_.size();
  }
  [[nodiscard]] std::size_t unique_tail_sites_visited() const noexcept {
    return visited_tail_ids_.size();
  }

 private:
  tor::network& net_;
  const alexa_list& alexa_;
  browsing_params params_;
  zipf_sampler alexa_ranks_;
  zipf_sampler tail_ranks_;
  rng rng_;
  std::vector<std::string> amazon_siblings_;  // cached: building it scans the list
  std::unordered_set<std::uint64_t> visited_alexa_ranks_;
  std::unordered_set<std::uint64_t> visited_tail_ids_;
};

}  // namespace tormet::workload
