// Onion-service workload: the service population, descriptor publish/fetch
// traffic, and rendezvous activity of §6. Calibrated to the paper's
// network-wide inferences:
//
//   Table 6 — ~70.8k unique v2 addresses published; a subset fetched.
//   Table 7 — 134 M descriptor fetches/day, 90.9 % failing (outdated botnet
//             address lists and malformed requests); 56.8 % of successful
//             fetches hit ahmia-indexed (public) addresses.
//   Table 8 — 366 M rendezvous circuits/day, only 8.08 % succeeding (84.9 %
//             expire, 4.37 % lose their connection); successful circuits
//             average ~730 KiB of cell payload.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/tor/network.h"
#include "src/workload/ahmia.h"
#include "src/workload/zipf.h"

namespace tormet::workload {

struct onion_params {
  double network_scale = 1e-3;

  // -- service population (network-wide) -----------------------------------
  double services = 70'826;
  double publishes_per_service = 24.0;     // hourly republish
  /// Fraction of services that clients actually fetch (paper: "between 45 %
  /// and 100 % of active onion services are used"; we model ~75 %).
  double fetched_service_fraction = 0.75;
  double service_popularity_exponent = 1.0;  // Zipf over fetched services
  /// Fraction of the service population in the public (ahmia) index.
  double public_index_fraction = 0.57;

  // -- descriptor fetch traffic (network-wide, per day) --------------------
  double fetch_attempts = 134e6;
  double fetch_fail_fraction = 0.909;
  /// Of failing fetches: share that are malformed requests (rest target
  /// missing descriptors — outdated botnet lists).
  double malformed_share_of_failures = 0.12;
  /// Distinct stale addresses the failing fetchers cycle through.
  std::uint64_t stale_address_pool = 500'000;

  // -- rendezvous traffic (network-wide, per day) ---------------------------
  /// Rendezvous attempts. A successful attempt is 2 RP circuits, failures
  /// are 1, so circuits = attempts*(2*s + (1-s)) with s below; 351 M
  /// attempts at s = 0.042 reproduces the paper's 366 M circuits.
  double rend_attempts = 351e6;
  /// Fraction of attempts that succeed (chosen so succeeded *circuits* are
  /// ~8.08 % of all RP circuits, Table 8).
  double rend_attempt_success = 0.0421;
  /// Of failing attempts: share failing with a closed connection (rest
  /// expire). 0.0476 yields the paper's 4.37 % / 84.9 % circuit split.
  double conn_closed_share_of_failures = 0.0476;
  double rend_payload_mean = 730.0 * 1024;  // bytes per successful attempt

  std::uint64_t seed = 4242;
};

class onion_driver {
 public:
  /// Creates the (scaled) service population in `net` and the ahmia index.
  onion_driver(tor::network& net, onion_params params);

  /// One day of onion-service activity: publishes, fetch traffic from
  /// `fetch_clients` (bots and users), rendezvous attempts from
  /// `rend_clients` (chat and web-to-onion users).
  void run_day(std::span<const tor::client_id> fetch_clients,
               std::span<const tor::client_id> rend_clients, sim_time day_start);

  [[nodiscard]] const ahmia_index& index() const noexcept { return index_; }
  [[nodiscard]] const std::vector<tor::service_id>& services() const noexcept {
    return services_;
  }
  /// Ground truth: distinct addresses in successful fetches so far.
  [[nodiscard]] std::size_t unique_fetched() const noexcept {
    return fetched_addresses_.size();
  }

 private:
  tor::network& net_;
  onion_params params_;
  rng rng_;
  std::vector<tor::service_id> services_;
  std::vector<tor::onion_address> addresses_;
  std::size_t fetched_pool_;  // services [0, fetched_pool_) receive fetches
  zipf_sampler popularity_;
  ahmia_index index_;
  std::set<std::string> fetched_addresses_;
};

}  // namespace tormet::workload
