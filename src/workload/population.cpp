#include "src/workload/population.h"

#include <algorithm>

#include "src/util/check.h"

namespace tormet::workload {

population::population(tor::network& net, geoip_db& geo,
                       population_params params)
    : net_{net}, geo_{geo}, params_{std::move(params)}, rng_{params_.seed},
      uae_index_{geo.index_of("AE")} {
  expects(params_.network_scale > 0.0 && params_.network_scale <= 1.0,
          "network scale must be in (0,1]");
  const auto selective = static_cast<std::size_t>(params_.selective_clients *
                                                  params_.network_scale);
  const auto promiscuous = static_cast<std::size_t>(
      std::max(1.0, params_.promiscuous_clients * params_.network_scale));
  expects(selective >= 10, "population too small at this scale");

  active_.reserve(selective + promiscuous);
  for (std::size_t i = 0; i < selective; ++i) {
    active_.push_back(spawn_client(/*promiscuous=*/false));
  }
  for (std::size_t i = 0; i < promiscuous; ++i) {
    active_.push_back(spawn_client(/*promiscuous=*/true));
  }
}

tor::client_id population::spawn_client(bool promiscuous) {
  const country_index country = geo_.sample_country(rng_);
  tor::client_profile profile;
  profile.country = country;
  profile.ip = geo_.allocate_ip(country);
  profile.asn = geo_.asn_of(profile.ip);
  profile.promiscuous = promiscuous;
  profile.num_guards = params_.guards_per_selective;
  const tor::client_id id = net_.add_client(profile);

  client_class k = client_class::promiscuous;
  if (!promiscuous) {
    if (country == uae_index_) {
      k = client_class::uae_blocked;
    } else {
      const double u = rng_.uniform();
      if (u < params_.web_share) {
        k = client_class::web;
      } else if (u < params_.web_share + params_.chat_share) {
        k = client_class::chat;
      } else if (u < params_.web_share + params_.chat_share + params_.bot_share) {
        k = client_class::bot;
      } else {
        k = client_class::idle;
      }
    }
  }
  // Other drivers (onion bots, plain browsing clients) may interleave their
  // own net_.add_client calls with churn spawns, so ids are not necessarily
  // dense in population spawns; foreign ids are backfilled as idle and never
  // appear in active_.
  if (static_cast<std::size_t>(id) >= classes_.size()) {
    classes_.resize(static_cast<std::size_t>(id) + 1, client_class::idle);
  }
  classes_[id] = k;
  ++spawned_;
  return id;
}

client_class population::class_of(tor::client_id c) const {
  expects(c < classes_.size(), "client id out of range");
  return classes_[c];
}

std::vector<tor::client_id> population::active_of(client_class k) const {
  std::vector<tor::client_id> out;
  for (const auto c : active_) {
    if (classes_[c] == k) out.push_back(c);
  }
  return out;
}

void population::advance_to_day(int day) {
  expects(day >= current_day_, "days must advance monotonically");
  while (current_day_ < day) {
    ++current_day_;
    // Churn: each selective client is replaced with a fresh-IP client with
    // probability daily_churn. Promiscuous clients are stable (bridges and
    // tor2web instances persist).
    for (auto& c : active_) {
      if (classes_[c] == client_class::promiscuous) continue;
      if (rng_.bernoulli(params_.daily_churn)) {
        c = spawn_client(/*promiscuous=*/false);
      }
    }
  }
}

void population::run_client_day(tor::client_id c, const class_rates& rates,
                                sim_time t) {
  // A live client contacts all of its guards daily (data traffic to the
  // data guard, directory updates to the dir guards — the g-guards-per-
  // client model of §5.1); rates.connections above that baseline are
  // additional reconnects to random guards.
  const std::size_t baseline = net_.guards_of(c).size();
  net_.connect_to_guards(c, t);
  const double extra_rate =
      std::max(0.0, rates.connections - static_cast<double>(baseline));
  const std::uint64_t connections = rng_.poisson(extra_rate);
  for (std::uint64_t i = 0; i < connections; ++i) {
    net_.connect_once(c, t + static_cast<std::int64_t>(rng_.below(k_seconds_per_day)));
  }
  const std::uint64_t dir = rng_.poisson(rates.dir_circuits);
  for (std::uint64_t i = 0; i < dir; ++i) {
    net_.directory_circuit(c, static_cast<std::uint64_t>(rates.dir_bytes),
                           t + static_cast<std::int64_t>(rng_.below(k_seconds_per_day)));
  }
  const std::uint64_t other = rng_.poisson(rates.other_circuits);
  for (std::uint64_t i = 0; i < other; ++i) {
    net_.non_exit_circuit(c, tor::circuit_kind::general, 0,
                          t + static_cast<std::int64_t>(rng_.below(k_seconds_per_day)));
  }
  if (rates.extra_bytes > 0.0) {
    // Spread non-web payload over a handful of circuits.
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(rng_.exponential(1.0 / rates.extra_bytes));
    if (bytes > 0) {
      net_.non_exit_circuit(c, tor::circuit_kind::general, bytes,
                            t + static_cast<std::int64_t>(rng_.below(k_seconds_per_day)));
    }
  }
}

void population::run_entry_day(sim_time day_start) {
  for (const auto c : active_) {
    const client_class k = classes_[c];
    switch (k) {
      case client_class::web:
        run_client_day(c, params_.web_rates, day_start);
        break;
      case client_class::chat:
        run_client_day(c, params_.chat_rates, day_start);
        break;
      case client_class::bot:
        run_client_day(c, params_.bot_rates, day_start);
        break;
      case client_class::idle:
        run_client_day(c, params_.idle_rates, day_start);
        break;
      case client_class::uae_blocked:
        run_client_day(c, params_.uae_rates, day_start);
        break;
      case client_class::promiscuous:
        // run_client_day's baseline connect covers every guard (that is
        // what promiscuity means), then the heavy circuit schedule spreads
        // across all of them.
        run_client_day(c, params_.promiscuous_rates, day_start);
        break;
    }
  }
}

}  // namespace tormet::workload
