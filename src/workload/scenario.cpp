#include "src/workload/scenario.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "src/core/instruments.h"
#include "src/tor/trace_file.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/sim_time.h"
#include "src/workload/zipf.h"

namespace tormet::workload {

namespace {

constexpr std::string_view k_truth_magic = "tormet-ground-truth-v1";
constexpr std::int64_t k_bucket_s = 3'600;  // generation granularity

// Disjoint IP ranges per client population, so unique-client measurements
// see set swaps as distinct clients (the country_block migration, the
// Mevade bot influx, the flash-crowd audience).
constexpr std::uint32_t k_base_net = 0x0a00'0000u;      // resident clients
constexpr std::uint32_t k_surge_net = 0x0b00'0000u;     // flash-crowd audience
constexpr std::uint32_t k_bot_net = 0x0c00'0000u;       // botnet clients
constexpr std::uint32_t k_blocked_net = 0x0d00'0000u;   // censored country
constexpr std::uint32_t k_migrated_net = 0x0e00'0000u;  // post-block returns

[[nodiscard]] std::size_t base_clients(const scenario_params& p) {
  return static_cast<std::size_t>(
      std::max<long long>(32, std::llround(256.0 * p.scale)));
}

/// One client population: a contiguous IP range active over [from, until).
struct client_set {
  std::uint32_t net = 0;
  std::size_t count = 0;
  std::int64_t from = std::numeric_limits<std::int64_t>::min();
  std::int64_t until = std::numeric_limits<std::int64_t>::max();

  [[nodiscard]] bool active_at(std::int64_t t) const {
    return count > 0 && t >= from && t < until;
  }
  [[nodiscard]] std::uint32_t pick(rng& r) const {
    return net + static_cast<std::uint32_t>(r.below(count));
  }
};

/// Everything generate() needs beyond the rate envelope: which populations
/// exist, when surge populations dominate, and where surge traffic goes.
struct scenario_recipe {
  scenario_shape shape;
  client_set base;
  client_set surge;          // flash_crowd / botnet_surge extra population
  double surge_share = 0.0;  // P(action comes from surge set while active)
  std::string surge_target;  // non-empty: surge streams hit this hostname
  double surge_target_share = 0.0;
  client_set blocked;   // country_block: censored-country residents
  client_set migrated;  // country_block: returnees on fresh IPs
};

[[nodiscard]] scenario_recipe recipe_of(const scenario_params& p) {
  const std::int64_t span =
      static_cast<std::int64_t>(std::max<std::uint64_t>(1, p.days)) *
      k_seconds_per_day;
  const std::size_t b = base_clients(p);
  scenario_recipe r;
  r.base = {k_base_net, b, std::numeric_limits<std::int64_t>::min(),
            std::numeric_limits<std::int64_t>::max()};
  if (p.name == "diurnal") {
    r.shape.rate.sin_amplitude = 0.75;
    r.shape.rate.sin_period_s = k_seconds_per_day;
  } else if (p.name == "flash_crowd") {
    // An 8x surge for the middle fifth of the middle day: a mostly-fresh
    // audience (3x the resident population) piling onto one target.
    const std::int64_t day0 =
        static_cast<std::int64_t>(p.days / 2) * k_seconds_per_day;
    const std::int64_t start = day0 + (k_seconds_per_day * 2) / 5;
    const std::int64_t end = day0 + (k_seconds_per_day * 3) / 5;
    r.shape.rate.segments.push_back({start, end, 8.0});
    r.surge = {k_surge_net, 3 * b, start, end};
    r.surge_share = 7.0 / 8.0;  // the rate excess is all surge clients
    r.surge_target = "crowd.example.com";
    r.surge_target_share = 0.8;
  } else if (p.name == "botnet_surge") {
    // The Mevade shape: from mid-span the event rate doubles, the excess
    // being bots (a population the size of the resident one) polling C&C.
    r.shape.rate.segments.push_back({span / 2, span, 2.0});
    r.surge = {k_bot_net, b, span / 2, span};
    r.surge_share = 0.5;
    r.surge_target = "cc.botnet.example.com";
    r.surge_target_share = 1.0;
  } else if (p.name == "relay_churn") {
    // Staggered per-DC outages: DC k is dark for the second half of its
    // 1/dcs slice of the span, so every round sees some capacity missing
    // but never all of it at once.
    for (std::size_t k = 0; k < p.dcs; ++k) {
      const std::int64_t slot = span / static_cast<std::int64_t>(p.dcs);
      const std::int64_t slot_start = static_cast<std::int64_t>(k) * slot;
      r.shape.dropouts.push_back({k, slot_start + slot / 2, slot_start + slot});
    }
  } else if (p.name == "country_block") {
    // A censorship event: 3/7 of the resident count live in the blocked
    // country and vanish at mid-span; at 3/4-span 60% of them return on
    // fresh IPs (the migration unique-client measurements must see).
    const std::size_t blocked = std::max<std::size_t>(8, (b * 3) / 7);
    r.blocked = {k_blocked_net, blocked,
                 std::numeric_limits<std::int64_t>::min(), span / 2};
    r.migrated = {k_migrated_net, (blocked * 3) / 5, (span * 3) / 4,
                  std::numeric_limits<std::int64_t>::max()};
  } else {
    throw precondition_error{"unknown scenario: " + p.name};
  }
  return r;
}

}  // namespace

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names{
      "flash_crowd", "diurnal", "botnet_surge", "relay_churn", "country_block"};
  return names;
}

bool is_known_scenario(std::string_view name) {
  const auto& names = scenario_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

double rate_envelope::at(std::int64_t t) const {
  double m = base;
  if (sin_amplitude != 0.0 && sin_period_s > 0) {
    const double phase = 2.0 * M_PI *
                         static_cast<double>(t % sin_period_s) /
                         static_cast<double>(sin_period_s);
    m *= 1.0 + sin_amplitude * std::sin(phase);
  }
  for (const envelope_segment& s : segments) {
    if (t >= s.start && t < s.end) m *= s.multiplier;
  }
  return std::max(0.0, m);
}

scenario_shape shape_of(const scenario_params& params) {
  return recipe_of(params).shape;
}

std::vector<std::vector<tor::event>> generate_scenario_events(
    const scenario_params& params) {
  expects(params.dcs >= 1, "scenario generation needs at least one DC");
  if (!is_known_scenario(params.name)) {
    throw precondition_error{"unknown scenario: " + params.name};
  }
  const scenario_recipe recipe = recipe_of(params);
  const std::uint64_t days = std::max<std::uint64_t>(1, params.days);
  const double per_bucket =
      static_cast<double>(params.events) /
      (static_cast<double>(k_seconds_per_day) / k_bucket_s);

  rng r{params.seed};
  const zipf_sampler ranks{10'000, 1.0};
  std::vector<std::vector<tor::event>> out{params.dcs};

  const auto dc_down = [&](std::size_t dc, std::int64_t t) {
    for (const dropout_window& w : recipe.shape.dropouts) {
      if (w.dc == dc && t >= w.start && t < w.end) return true;
    }
    return false;
  };

  const std::int64_t span =
      static_cast<std::int64_t>(days) * k_seconds_per_day;
  for (std::int64_t t0 = 0; t0 < span; t0 += k_bucket_s) {
    const double m = recipe.shape.rate.at(t0 + k_bucket_s / 2);
    const double expected = per_bucket * m;
    std::uint64_t actions = static_cast<std::uint64_t>(expected);
    if (r.bernoulli(expected - static_cast<double>(actions))) ++actions;
    for (std::uint64_t i = 0; i < actions; ++i) {
      const std::int64_t t = t0 + static_cast<std::int64_t>(
                                      r.below(static_cast<std::uint64_t>(
                                          k_bucket_s)));
      // Pick the acting client: surge population while its window is open,
      // otherwise uniformly over whoever is resident at t.
      bool from_surge = false;
      std::uint32_t ip = 0;
      if (recipe.surge.active_at(t) && r.bernoulli(recipe.surge_share)) {
        from_surge = true;
        ip = recipe.surge.pick(r);
      } else {
        const bool blocked_live = recipe.blocked.active_at(t);
        const bool migrated_live = recipe.migrated.active_at(t);
        std::size_t pool = recipe.base.count +
                           (blocked_live ? recipe.blocked.count : 0) +
                           (migrated_live ? recipe.migrated.count : 0);
        std::uint64_t pick = r.below(pool);
        if (pick < recipe.base.count) {
          ip = recipe.base.net + static_cast<std::uint32_t>(pick);
        } else if (blocked_live &&
                   pick < recipe.base.count + recipe.blocked.count) {
          ip = recipe.blocked.net +
               static_cast<std::uint32_t>(pick - recipe.base.count);
        } else {
          ip = recipe.migrated.net +
               static_cast<std::uint32_t>(pick - recipe.base.count -
                                          (blocked_live ? recipe.blocked.count
                                                        : 0));
        }
      }
      // Stable client -> DC pinning (a client keeps its guard), so churn
      // dropouts dark a consistent slice of the population.
      const std::size_t dc = ip % params.dcs;
      if (dc_down(dc, t)) continue;  // relay dark: the action goes unobserved

      const auto observer = static_cast<tor::relay_id>(dc);
      const sim_time at{t};
      const auto emit = [&](tor::event_body body) {
        out[dc].push_back(tor::event{observer, at, std::move(body)});
      };
      emit(tor::entry_connection_event{ip});
      emit(tor::entry_circuit_event{ip, tor::circuit_kind::general});
      emit(tor::entry_data_event{
          ip, 600 + static_cast<std::uint64_t>(r.below(1'400))});
      tor::exit_stream_event stream;
      stream.is_initial = true;
      stream.port = r.bernoulli(0.8) ? 443 : 80;
      if (from_surge && !recipe.surge_target.empty() &&
          r.bernoulli(recipe.surge_target_share)) {
        stream.target = recipe.surge_target;
      } else {
        stream.target = "site" + std::to_string(ranks.sample(r)) + ".com";
      }
      emit(std::move(stream));
    }
  }
  // Per-DC time order (stable: generation order breaks timestamp ties).
  for (auto& events : out) {
    std::stable_sort(events.begin(), events.end(),
                     [](const tor::event& a, const tor::event& b) {
                       return a.at.seconds < b.at.seconds;
                     });
  }
  return out;
}

scenario_truth compute_scenario_truth(
    const scenario_params& params,
    const std::vector<std::vector<tor::event>>& per_dc,
    const std::vector<std::string>& instruments,
    const std::vector<std::string>& extractors, std::uint32_t rounds,
    std::int64_t round_duration_s, std::int64_t round_gap_s) {
  scenario_truth truth;
  truth.scenario = params.name;
  truth.seed = params.seed;

  // The registry closures ARE the measurement: running them here over the
  // raw events guarantees a noiseless pipeline round reproduces these
  // numbers exactly (same code, no alternate arithmetic to drift).
  std::vector<privcount::data_collector::instrument> fns;
  std::vector<std::vector<std::string>> counter_names;
  for (const auto& name : instruments) {
    fns.push_back(core::instrument_by_name(name));
    std::vector<std::string> specs;
    for (const auto& spec : core::default_specs_for(name)) {
      specs.push_back(spec.name);
    }
    counter_names.push_back(std::move(specs));
  }
  std::vector<psc::data_collector::extractor> exs;
  for (const auto& name : extractors) {
    exs.push_back(core::extractor_by_name(name));
  }

  const std::uint32_t n_rounds = std::max<std::uint32_t>(1, rounds);
  for (std::uint32_t i = 0; i < n_rounds; ++i) {
    // Mirror cli::round_window_for: single-round plans replay the whole
    // stream unwindowed.
    std::int64_t start = std::numeric_limits<std::int64_t>::min();
    std::int64_t end = std::numeric_limits<std::int64_t>::max();
    if (rounds > 1) {
      start = static_cast<std::int64_t>(i) * (round_duration_s + round_gap_s);
      end = start + round_duration_s;
    }
    scenario_round_truth rt;
    std::map<std::string, std::uint64_t> counters;
    for (const auto& names : counter_names) {
      for (const auto& n : names) counters.emplace(n, 0);
    }
    std::vector<std::set<std::string>> distinct{exs.size()};
    const auto tally = [&](const std::string& counter, std::uint64_t amount) {
      counters[counter] += amount;
    };
    for (const auto& events : per_dc) {
      for (const tor::event& ev : events) {
        if (ev.at.seconds < start || ev.at.seconds >= end) continue;
        ++rt.events;
        for (const auto& fn : fns) fn(ev, tally);
        for (std::size_t e = 0; e < exs.size(); ++e) {
          if (auto item = exs[e](ev)) distinct[e].insert(*std::move(item));
        }
      }
    }
    for (const auto& [name, value] : counters) {
      rt.counters.emplace_back(name, value);
    }
    for (std::size_t e = 0; e < exs.size(); ++e) {
      rt.distinct.emplace_back(extractors[e], distinct[e].size());
    }
    truth.rounds.push_back(std::move(rt));
  }
  return truth;
}

std::string serialize_ground_truth(const scenario_truth& truth) {
  std::ostringstream out;
  out << k_truth_magic << "\n";
  out << "scenario " << truth.scenario << "\n";
  out << "seed " << truth.seed << "\n";
  out << "rounds " << truth.rounds.size() << "\n";
  for (std::size_t i = 0; i < truth.rounds.size(); ++i) {
    const scenario_round_truth& rt = truth.rounds[i];
    out << "round " << i << "\n";
    out << "events " << rt.events << "\n";
    for (const auto& [name, value] : rt.counters) {
      out << "counter " << name << " " << value << "\n";
    }
    for (const auto& [name, value] : rt.distinct) {
      out << "distinct " << name << " " << value << "\n";
    }
  }
  return out.str();
}

scenario_truth parse_ground_truth(std::string_view text) {
  scenario_truth truth;
  std::istringstream in{std::string{text}};
  std::string line;
  int line_no = 0;
  bool saw_magic = false;
  std::size_t declared_rounds = 0;
  const auto fail = [&](const std::string& why) {
    throw precondition_error{"ground truth line " + std::to_string(line_no) +
                             ": " + why};
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (!saw_magic) {
      if (line != k_truth_magic) {
        fail("expected header '" + std::string{k_truth_magic} + "'");
      }
      saw_magic = true;
      continue;
    }
    std::istringstream ls{line};
    std::string key;
    ls >> key;
    const auto want = [&](bool ok) {
      if (!ok || ls.fail()) fail("malformed '" + key + "' entry");
    };
    if (key == "scenario") {
      ls >> truth.scenario;
      want(is_known_scenario(truth.scenario));
    } else if (key == "seed") {
      ls >> truth.seed;
      want(true);
    } else if (key == "rounds") {
      ls >> declared_rounds;
      want(declared_rounds >= 1 && declared_rounds <= 100'000);
    } else if (key == "round") {
      std::size_t index = 0;
      ls >> index;
      want(index == truth.rounds.size());
      if (truth.rounds.size() >= declared_rounds) {
        fail("more round blocks than the declared count");
      }
      truth.rounds.emplace_back();
    } else if (key == "events") {
      if (truth.rounds.empty()) fail("'events' before any round");
      ls >> truth.rounds.back().events;
      want(true);
    } else if (key == "counter" || key == "distinct") {
      if (truth.rounds.empty()) fail("'" + key + "' before any round");
      std::string name;
      std::uint64_t value = 0;
      ls >> name >> value;
      want(!name.empty());
      auto& dest = key == "counter" ? truth.rounds.back().counters
                                    : truth.rounds.back().distinct;
      dest.emplace_back(std::move(name), value);
    } else {
      fail("unknown key '" + key + "'");
    }
  }
  if (!saw_magic) throw precondition_error{"ground truth: missing header"};
  if (truth.rounds.size() != declared_rounds) {
    throw precondition_error{"ground truth: expected " +
                             std::to_string(declared_rounds) +
                             " rounds, parsed " +
                             std::to_string(truth.rounds.size())};
  }
  return truth;
}

scenario_truth load_ground_truth(const std::string& path) {
  std::ifstream in{path};
  expects(in.good(), "cannot open ground-truth file");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_ground_truth(buf.str());
}

void save_ground_truth(const scenario_truth& truth, const std::string& path) {
  std::ofstream out{path, std::ios::trunc};
  expects(out.good(), "cannot write ground-truth file");
  out << serialize_ground_truth(truth);
  expects(out.good(), "short write on ground-truth file");
}

std::vector<std::size_t> write_scenario_dir(const scenario_params& params,
                                            const std::string& dir) {
  const std::vector<std::vector<tor::event>> per_dc =
      generate_scenario_events(params);
  std::vector<std::size_t> counts;
  for (std::size_t k = 0; k < per_dc.size(); ++k) {
    tor::trace_writer writer{dir + "/" + tor::trace_file_name(k)};
    for (const tor::event& ev : per_dc[k]) writer.write(ev);
    writer.close();
    counts.push_back(writer.events_written());
  }
  const scenario_measurements m = measurements_for_scenario(params.name);
  const scenario_truth truth = compute_scenario_truth(
      params, per_dc, m.instruments, {m.psc_extractor},
      static_cast<std::uint32_t>(std::max<std::uint64_t>(1, params.days)),
      k_seconds_per_day, 0);
  save_ground_truth(truth, dir + "/ground_truth.cfg");
  return counts;
}

scenario_measurements measurements_for_scenario(std::string_view name) {
  if (!is_known_scenario(name)) {
    throw precondition_error{"unknown scenario: " + std::string{name}};
  }
  // Every scenario moves entry-side totals and the exit stream taxonomy,
  // and its client-set dynamics show up in unique client IPs.
  return {{"entry_totals", "stream_taxonomy"}, "client_ip"};
}

}  // namespace tormet::workload
