#include "src/workload/trace_gen.h"

#include <algorithm>
#include <map>
#include <optional>

#include "src/core/measurement_study.h"
#include "src/tor/trace_file.h"
#include "src/util/check.h"
#include "src/workload/alexa.h"
#include "src/workload/browsing.h"
#include "src/workload/geoip.h"
#include "src/workload/onion_activity.h"
#include "src/workload/population.h"
#include "src/workload/zipf.h"

namespace tormet::workload {

namespace {

/// The zipf model needs no simulation: a pure stream of exit_stream events
/// whose hostnames follow a Zipf rank distribution over a synthetic domain
/// universe ("zipf<rank>.com" — distinct SLD per rank, so both counter and
/// unique-SLD measurements have signal). Observers are the DC indices
/// themselves.
[[nodiscard]] std::vector<std::vector<tor::event>> generate_zipf(
    const trace_gen_params& params) {
  std::vector<std::vector<tor::event>> out{params.dcs};
  rng r{params.seed};
  const zipf_sampler ranks{1'000'000, 1.0};
  // The event budget splits evenly across days (early days absorb the
  // remainder); day d's events get sim times inside day d's window. With
  // days == 1 this is exactly the original single-day generation.
  const std::uint64_t days = std::max<std::uint64_t>(1, params.days);
  for (std::uint64_t d = 0; d < days; ++d) {
    const std::uint64_t quota =
        params.events / days + (d < params.events % days ? 1 : 0);
    const std::int64_t day_start =
        static_cast<std::int64_t>(d) * k_seconds_per_day;
    for (std::uint64_t i = 0; i < quota; ++i) {
      tor::exit_stream_event body;
      body.is_initial = r.bernoulli(0.25);
      body.kind = r.bernoulli(0.002) ? tor::address_kind::ipv4
                                     : tor::address_kind::hostname;
      body.port = r.bernoulli(0.75) ? 443 : 80;
      body.target = body.kind == tor::address_kind::hostname
                        ? "zipf" + std::to_string(ranks.sample(r)) + ".com"
                        : "192.0.2." + std::to_string(r.below(256));
      tor::event ev;
      ev.observer = static_cast<tor::relay_id>(i % params.dcs);
      // One event per DC per simulated second, clamped to the day window so
      // an oversized budget piles up at the day's end instead of leaking
      // into the next day's round (the header's [d·86400, (d+1)·86400)
      // contract, which multi-round partitioning relies on).
      const std::int64_t offset = std::min<std::int64_t>(
          static_cast<std::int64_t>(i / params.dcs), k_seconds_per_day - 1);
      ev.at = sim_time{day_start + offset};
      ev.body = std::move(body);
      out[i % params.dcs].push_back(std::move(ev));
    }
  }
  return out;
}

/// Simulation models: run the workload drivers against a canonical
/// measurement study and capture events at its 16 measured relays,
/// partitioned onto DCs by sorted relay index.
[[nodiscard]] std::vector<std::vector<tor::event>> generate_simulated(
    const trace_gen_params& params) {
  core::study_config study_cfg;
  study_cfg.seed = params.seed;
  core::measurement_study study{study_cfg};
  tor::network& net = study.network();

  // relay -> DC partition over the sorted measured set.
  std::map<tor::relay_id, std::size_t> dc_of;
  {
    std::vector<tor::relay_id> measured = study.measured_relays();
    std::sort(measured.begin(), measured.end());
    for (std::size_t i = 0; i < measured.size(); ++i) {
      dc_of[measured[i]] = i % params.dcs;
    }
    net.set_observed_relays({measured.begin(), measured.end()});
  }

  std::vector<std::vector<tor::event>> out{params.dcs};
  net.set_event_sink([&](const tor::event& ev) {
    out[dc_of.at(ev.observer)].push_back(ev);
  });

  const bool mixed = params.model == "mixed";
  const std::uint64_t days = std::max<std::uint64_t>(1, params.days);

  // Drivers are created once and persist across days: their RNG streams,
  // the churned client population, and the onion-service universe carry
  // over day to day — exactly like a real multi-day deployment.
  std::optional<geoip_db> geo;
  std::optional<population> pop;
  std::optional<alexa_list> alexa;
  std::optional<browsing_driver> browser;
  std::vector<tor::client_id> browsing_clients;  // non-mixed browsing model
  std::optional<onion_driver> onion;
  std::vector<tor::client_id> bots;

  if (mixed || params.model == "population") {
    geo.emplace(geoip_db::make_synthetic());
    population_params pp;
    pp.network_scale = params.scale;
    pp.seed = params.seed;
    pop.emplace(net, *geo, pp);
  }
  if (mixed || params.model == "browsing") {
    alexa.emplace(
        alexa_list::make_synthetic({.size = 50'000, .seed = params.seed}));
    browsing_params bp;
    bp.seed = params.seed;
    browser.emplace(net, *alexa, bp);
    if (!mixed) {
      const auto n =
          static_cast<std::size_t>(std::max(20.0, 6.9e6 * params.scale));
      for (std::size_t i = 0; i < n; ++i) {
        tor::client_profile p;
        p.ip = static_cast<std::uint32_t>(i + 1);
        browsing_clients.push_back(net.add_client(p));
      }
    }
  }
  if (mixed || params.model == "onion") {
    onion_params op;
    op.network_scale = params.scale;
    op.seed = params.seed;
    onion.emplace(net, op);
    for (std::size_t i = 0; i < 32; ++i) {
      tor::client_profile p;
      p.ip = 0xc0000000u + static_cast<std::uint32_t>(i);
      bots.push_back(net.add_client(p));
    }
  }

  for (std::uint64_t d = 0; d < days; ++d) {
    const sim_time day_start{static_cast<std::int64_t>(d) * k_seconds_per_day};
    if (pop.has_value()) {
      pop->advance_to_day(static_cast<int>(d));  // churn between days
      pop->run_entry_day(day_start);
    }
    if (browser.has_value()) {
      browser->run_day(
          mixed ? pop->active_of(client_class::web) : browsing_clients,
          day_start);
    }
    if (onion.has_value()) onion->run_day(bots, bots, day_start);
  }

  // Per-DC time order (stable: generation order breaks timestamp ties).
  for (auto& events : out) {
    std::stable_sort(events.begin(), events.end(),
                     [](const tor::event& a, const tor::event& b) {
                       return a.at.seconds < b.at.seconds;
                     });
  }
  return out;
}

}  // namespace

const std::vector<std::string>& trace_models() {
  static const std::vector<std::string> models{"zipf", "browsing", "onion",
                                               "population", "mixed"};
  return models;
}

bool is_known_trace_model(std::string_view model) {
  const auto& models = trace_models();
  return std::find(models.begin(), models.end(), model) != models.end();
}

std::vector<std::vector<tor::event>> generate_trace_events(
    const trace_gen_params& params) {
  expects(params.dcs >= 1, "trace generation needs at least one DC");
  if (!is_known_trace_model(params.model)) {
    throw precondition_error{"unknown trace model: " + params.model};
  }
  if (params.model == "zipf") return generate_zipf(params);
  return generate_simulated(params);
}

std::vector<std::size_t> write_trace_dir(const trace_gen_params& params,
                                         const std::string& dir) {
  const std::vector<std::vector<tor::event>> per_dc =
      generate_trace_events(params);
  std::vector<std::size_t> counts;
  for (std::size_t k = 0; k < per_dc.size(); ++k) {
    tor::trace_writer writer{dir + "/" + tor::trace_file_name(k)};
    for (const tor::event& ev : per_dc[k]) writer.write(ev);
    writer.close();
    counts.push_back(writer.events_written());
  }
  return counts;
}

}  // namespace tormet::workload
