// Synthetic Alexa top-sites list (substitute for the proprietary 2018
// snapshot — see DESIGN.md §1). The generated list reproduces the structure
// the paper's Fig 2/3 measurements depend on:
//   * the 2018 top-10 head (google, youtube, facebook, baidu, wikipedia,
//     yahoo, google.co.in, reddit, qq, amazon),
//   * duckduckgo at rank 342 and torproject.org at rank 10,244,
//   * sibling families (e.g. ~212 google.* entries, 3 reddit/qq entries),
//   * a TLD mix dominated by .com/.org/.net with the Fig 3 ccTLDs,
//   * category lists capped at 50 sites (the Alexa-categories measurement).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tormet::workload {

class alexa_list {
 public:
  struct params {
    std::size_t size = 1'000'000;
    std::uint64_t seed = 7;
  };

  [[nodiscard]] static alexa_list make_synthetic(const params& p);

  [[nodiscard]] std::size_t size() const noexcept { return domains_.size(); }

  /// Domain at 1-based rank.
  [[nodiscard]] const std::string& domain_at_rank(std::uint32_t rank) const;

  /// 1-based rank of a domain, if listed.
  [[nodiscard]] std::optional<std::uint32_t> rank_of(std::string_view domain) const;

  [[nodiscard]] bool contains(std::string_view domain) const {
    return rank_of(domain).has_value();
  }

  /// All list entries whose first label contains `basename` — the paper's
  /// "Alexa siblings" set construction (google -> google.com, google.de, ...).
  [[nodiscard]] std::vector<std::string> sibling_set(std::string_view basename) const;

  /// Category lists (50 sites per category, like Alexa's): category name ->
  /// member domains. amazon.com is in "shopping"; torproject.org is in no
  /// category (matching the paper's 90.6 % "no category" observation).
  [[nodiscard]] const std::vector<std::pair<std::string, std::vector<std::string>>>&
  categories() const noexcept {
    return categories_;
  }

 private:
  std::vector<std::string> domains_;  // index 0 = rank 1
  std::unordered_map<std::string, std::uint32_t> rank_index_;
  std::vector<std::pair<std::string, std::vector<std::string>>> categories_;
};

/// True when `hostname` matches `domain` exactly or is a subdomain of it
/// (www.amazon.com matches amazon.com) — the membership rule used by the
/// histogram matchers.
[[nodiscard]] bool hostname_matches_domain(std::string_view hostname,
                                           std::string_view domain);

}  // namespace tormet::workload
