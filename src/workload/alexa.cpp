#include "src/workload/alexa.h"

#include <algorithm>
#include <set>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace tormet::workload {

namespace {

/// TLD mix for generated tail entries, weighted roughly like the 2018 list
/// (the Fig 3 ccTLDs all present).
struct tld_weight {
  const char* tld;
  double weight;
};
constexpr tld_weight k_tlds[] = {
    {"com", 0.50}, {"org", 0.05},  {"net", 0.05},  {"ru", 0.040}, {"de", 0.035},
    {"uk", 0.030}, {"br", 0.025},  {"cn", 0.025},  {"jp", 0.020}, {"fr", 0.020},
    {"in", 0.020}, {"it", 0.015},  {"pl", 0.015},  {"ir", 0.010}, {"ua", 0.010},
    {"nl", 0.010}, {"es", 0.010},  {"ca", 0.010},  {"au", 0.010}, {"io", 0.015},
    {"info", 0.015}, {"biz", 0.010}, {"us", 0.010}, {"se", 0.005}, {"cz", 0.005},
    {"kr", 0.005}, {"tr", 0.005},  {"mx", 0.005},  {"xyz", 0.010}, {"top", 0.005},
};

[[nodiscard]] std::string pick_tld(rng& r) {
  double total = 0.0;
  for (const auto& t : k_tlds) total += t.weight;
  double target = r.uniform() * total;
  for (const auto& t : k_tlds) {
    target -= t.weight;
    if (target <= 0.0) return t.tld;
  }
  return "com";
}

/// Sibling family sizes from the paper's §4.3 (google largest at 212
/// entries; reddit and qq smallest at 3; duckduckgo/torproject at 1).
struct sibling_family {
  const char* basename;
  const char* home_tld;
  int count;
};
constexpr sibling_family k_families[] = {
    {"google", "com", 212}, {"youtube", "com", 24}, {"facebook", "com", 30},
    {"baidu", "com", 3},    {"wikipedia", "org", 12}, {"yahoo", "com", 22},
    {"reddit", "com", 3},   {"qq", "com", 3},       {"amazon", "com", 52},
};

constexpr const char* k_sibling_tlds[] = {
    "de", "fr", "it", "es", "ru", "pl", "nl", "se", "cz", "br", "cn", "jp",
    "in", "ca", "au", "mx", "ar", "tr", "kr", "ua", "ch", "at", "be", "dk",
    "fi", "gr", "hu", "id", "il", "pt", "ro", "sk", "vn", "za", "nz", "ae",
    "sg", "hk", "th", "my", "cl", "co", "ve", "co.uk", "co.jp", "co.in",
    "com.br", "com.cn", "com.au", "com.mx", "com.ar", "com.tr", "co.kr",
    "co.za", "com.sg", "com.hk", "co.nz", "com.tw", "com.ua", "com.ve",
};

}  // namespace

alexa_list alexa_list::make_synthetic(const params& p) {
  expects(p.size >= 11'000, "list must be large enough for the fixed head");
  rng r{p.seed};
  alexa_list list;
  list.domains_.assign(p.size, {});

  // Fixed head: the 2018 top 10 plus the two special ranks the paper names.
  const std::pair<std::uint32_t, const char*> fixed[] = {
      {1, "google.com"},    {2, "youtube.com"}, {3, "facebook.com"},
      {4, "baidu.com"},     {5, "wikipedia.org"}, {6, "yahoo.com"},
      {7, "google.co.in"},  {8, "reddit.com"},  {9, "qq.com"},
      {10, "amazon.com"},   {342, "duckduckgo.com"}, {10244, "torproject.org"},
  };
  for (const auto& [rank, domain] : fixed) {
    list.domains_[rank - 1] = domain;
  }

  // Sibling families: scatter basename.tld entries over the list. Counts
  // include the fixed-head home entries, so generate (count - already),
  // skipping any candidate that duplicates an existing entry (e.g.
  // google.co.in already sits at rank 7).
  std::set<std::string> used;
  for (const auto& [rank, domain] : fixed) used.insert(domain);
  for (const auto& fam : k_families) {
    int have = 0;
    for (const auto& [rank, domain] : fixed) {
      if (std::string_view{domain}.starts_with(std::string{fam.basename} + ".")) {
        ++have;
      }
    }
    int tld_i = 0;
    int produced = have;
    while (produced < fam.count) {
      std::string domain = std::string{fam.basename} + ".";
      if (tld_i < static_cast<int>(std::size(k_sibling_tlds))) {
        domain += k_sibling_tlds[tld_i++];
      } else {
        // More entries than distinct TLDs: use subdomain-style list entries
        // (Alexa lists popular subdomains as separate sites).
        domain = "m" + std::to_string(tld_i - std::size(k_sibling_tlds)) + "." +
                 fam.basename + ".com";
        ++tld_i;
      }
      if (!used.insert(domain).second) continue;  // duplicate candidate
      // Place at a random free rank in [11, size/10) — sibling sites are
      // popular but not all top-10.
      for (;;) {
        const auto rank = static_cast<std::size_t>(
            11 + r.below(static_cast<std::uint64_t>(p.size / 10 - 11)));
        if (list.domains_[rank].empty()) {
          list.domains_[rank] = std::move(domain);
          break;
        }
      }
      ++produced;
    }
  }

  // Generated tail: unique basenames with the weighted TLD mix.
  for (std::size_t i = 0; i < p.size; ++i) {
    if (!list.domains_[i].empty()) continue;
    list.domains_[i] = "site" + std::to_string(i + 1) + "." + pick_tld(r);
  }

  list.rank_index_.reserve(p.size);
  for (std::size_t i = 0; i < p.size; ++i) {
    list.rank_index_.emplace(list.domains_[i], static_cast<std::uint32_t>(i + 1));
  }

  // Category lists: 50 sites each, sampled from the top 20k. amazon.com
  // anchors "shopping"; torproject.org is deliberately in no category.
  const char* category_names[] = {"search",  "video",   "social", "shopping",
                                  "news",    "science", "sports", "reference",
                                  "games",   "music",   "travel", "health",
                                  "finance", "education", "technology", "recreation"};
  for (const auto* name : category_names) {
    std::vector<std::string> members;
    members.reserve(50);
    if (std::string_view{name} == "shopping") members.emplace_back("amazon.com");
    while (members.size() < 50) {
      const auto rank = static_cast<std::size_t>(r.below(20'000));
      const std::string& d = list.domains_[rank];
      if (d == "torproject.org") continue;
      if (std::find(members.begin(), members.end(), d) == members.end()) {
        members.push_back(d);
      }
    }
    list.categories_.emplace_back(name, std::move(members));
  }
  return list;
}

const std::string& alexa_list::domain_at_rank(std::uint32_t rank) const {
  expects(rank >= 1 && rank <= domains_.size(), "rank out of range");
  return domains_[rank - 1];
}

std::optional<std::uint32_t> alexa_list::rank_of(std::string_view domain) const {
  const auto it = rank_index_.find(std::string{domain});
  if (it == rank_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> alexa_list::sibling_set(std::string_view basename) const {
  std::vector<std::string> out;
  for (const auto& d : domains_) {
    // First label must contain the basename (paper: "entries ... that
    // contained the basename"), matching e.g. google.de and m0.google.com.
    const std::size_t dot = d.find('.');
    const std::string_view head = std::string_view{d}.substr(0, dot);
    if (head.find(basename) != std::string_view::npos ||
        d.find("." + std::string{basename} + ".") != std::string::npos) {
      out.push_back(d);
    }
  }
  return out;
}

bool hostname_matches_domain(std::string_view hostname, std::string_view domain) {
  if (hostname == domain) return true;
  if (hostname.size() <= domain.size() + 1) return false;
  if (!hostname.ends_with(domain)) return false;
  return hostname[hostname.size() - domain.size() - 1] == '.';
}

}  // namespace tormet::workload
