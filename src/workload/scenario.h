// Scenario layer: named, time-varying adversarial workloads composed on top
// of the stationary trace models — the dynamics the paper's deployment
// actually faced (diurnal cycles, the 2013 Mevade botnet doubling Tor's
// user count, censorship-event client migrations, flash crowds, relay
// churn). Each scenario is a deterministic composition of
//
//   * a rate envelope  — base events/day shaped by a sinusoidal diurnal
//     term and piecewise-constant surge multipliers,
//   * client-set swaps — surge/bot/migrated client populations with
//     disjoint IP ranges entering or leaving mid-schedule,
//   * popularity shifts — surge traffic concentrating on one target, and
//   * per-DC dropout windows — relays going dark for part of the span,
//
// and emits, next to the events, a machine-readable ground-truth sidecar:
// the per-round true value of every instrument counter and extractor
// distinct-count, computed over exactly the events the pipeline will
// observe. Acceptance tests (tests/scenario_test.cpp) replay the events
// through the full distributed pipeline and assert the noised measurement
// lands inside the analytically derived noise band around this truth.
//
// Determinism contract: generate_scenario_events() is a pure function of
// its params — same params, same per-DC sequences, on every host. Plans
// declare scenarios as `workload scenario <name>,<scale>,<events>,<seed>
// [,<days>]` (cli::deployment_plan) and every process materializes the
// identical stream. See docs/SCENARIOS.md for the envelope math.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/tor/events.h"

namespace tormet::workload {

struct scenario_params {
  /// One of scenario_names(): "flash_crowd", "diurnal", "botnet_surge",
  /// "relay_churn", "country_block".
  std::string name = "diurnal";
  /// Number of data collectors (events partition onto DCs by client).
  std::size_t dcs = 4;
  /// Client-population scale: the base set holds max(32, 256 * scale)
  /// clients. Surge/bot/migrated sets size relative to the base set.
  double scale = 1.0;
  /// Baseline actions per day at envelope multiplier 1.0. Each action
  /// emits an entry connection + circuit + data record and one exit
  /// stream, so the rendered event count is ~4x this per day, scaled by
  /// the envelope.
  std::uint64_t events = 5'000;
  std::uint64_t seed = 1;
  /// Days of activity; day d's events carry sim times in
  /// [d*86400, (d+1)*86400), matching the daily round windows.
  std::uint64_t days = 1;
};

[[nodiscard]] const std::vector<std::string>& scenario_names();
[[nodiscard]] bool is_known_scenario(std::string_view name);

/// One piecewise-constant multiplier over sim-time [start, end).
/// Overlapping segments multiply.
struct envelope_segment {
  std::int64_t start = 0;
  std::int64_t end = 0;
  double multiplier = 1.0;
};

/// Deterministic time-varying rate: m(t) = base
///   * (1 + sin_amplitude * sin(2*pi * t / sin_period_s))
///   * prod{ seg.multiplier : seg.start <= t < seg.end }.
struct rate_envelope {
  double base = 1.0;
  double sin_amplitude = 0.0;  // 0 = flat (no diurnal term)
  std::int64_t sin_period_s = 86'400;
  std::vector<envelope_segment> segments;

  [[nodiscard]] double at(std::int64_t t) const;
};

/// A relay-churn outage: DC `dc` observes nothing in [start, end).
struct dropout_window {
  std::size_t dc = 0;
  std::int64_t start = 0;
  std::int64_t end = 0;
};

/// The composed shape of one named scenario — exposed so tests and docs
/// can assert against the same envelope the generator samples from.
struct scenario_shape {
  rate_envelope rate;
  std::vector<dropout_window> dropouts;
};
[[nodiscard]] scenario_shape shape_of(const scenario_params& params);

/// Renders the scenario into per-DC event sequences (index = DC, each
/// stably time-ordered). Pure function of `params`.
[[nodiscard]] std::vector<std::vector<tor::event>> generate_scenario_events(
    const scenario_params& params);

/// Writes the per-DC traces as `<dir>/dc-<k>.trace` plus the ground-truth
/// sidecar `<dir>/ground_truth.cfg` for `rounds` daily windows (rounds = 0
/// means one round per generated day). The directory must exist. Returns
/// per-DC event counts.
std::vector<std::size_t> write_scenario_dir(const scenario_params& params,
                                            const std::string& dir);

// ---------------------------------------------------------------------------
// Ground truth: what a noiseless pipeline must measure, per round.
// ---------------------------------------------------------------------------

/// True values for one collection window, computed by running the named
/// registry instruments/extractors (src/core/instruments.h) over the
/// generated events — the identical code path the DCs run, so a noiseless
/// round must match these exactly.
struct scenario_round_truth {
  /// Events inside the window, across all DCs.
  std::uint64_t events = 0;
  /// PrivCount: counter name -> true increment total.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// PSC: extractor name -> true distinct-item count.
  std::vector<std::pair<std::string, std::uint64_t>> distinct;
};

struct scenario_truth {
  std::string scenario;
  std::uint64_t seed = 0;
  std::vector<scenario_round_truth> rounds;
};

/// Computes per-round truth over `per_dc` using the same windowing as
/// cli::round_window_for: `rounds` windows of `round_duration_s` separated
/// by `round_gap_s`, except rounds <= 1 which is one unbounded window (the
/// legacy whole-stream replay).
[[nodiscard]] scenario_truth compute_scenario_truth(
    const scenario_params& params,
    const std::vector<std::vector<tor::event>>& per_dc,
    const std::vector<std::string>& instruments,
    const std::vector<std::string>& extractors, std::uint32_t rounds,
    std::int64_t round_duration_s, std::int64_t round_gap_s);

/// Sidecar text format (`tormet-ground-truth-v1`); serialize -> parse is
/// lossless.
[[nodiscard]] std::string serialize_ground_truth(const scenario_truth& truth);
/// Throws precondition_error with a line-numbered message on malformed
/// input.
[[nodiscard]] scenario_truth parse_ground_truth(std::string_view text);
[[nodiscard]] scenario_truth load_ground_truth(const std::string& path);
void save_ground_truth(const scenario_truth& truth, const std::string& path);

/// Measurement wiring with signal on every scenario's event mix: the
/// instruments scenario plans default to and the extractor unique-client
/// dynamics show up in.
struct scenario_measurements {
  std::vector<std::string> instruments;
  std::string psc_extractor;
};
[[nodiscard]] scenario_measurements measurements_for_scenario(
    std::string_view name);

}  // namespace tormet::workload
