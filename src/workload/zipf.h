// Power-law (Zipf) rank sampling. The paper relies on the observation that
// web-site popularity follows a power law [Adamic & Huberman; Krashakov et
// al.] both to model domain visits and to extrapolate unique-SLD counts via
// Monte-Carlo simulation (§3.3, §4.3).
#pragma once

#include <cstdint>

#include "src/util/rng.h"

namespace tormet::workload {

/// Samples ranks in [1, n] with P(rank = k) ∝ k^(-s).
///
/// Uses the continuous inverse-CDF approximation, which is accurate for the
/// large n used here and O(1) per sample with no per-n precomputation:
///   s = 1:  rank = n^u           (equal mass per decade — this is why the
///                                 paper's Fig 2 rank buckets are flat)
///   s ≠ 1:  rank = [1 + u·(n^(1-s) - 1)]^(1/(1-s))
class zipf_sampler {
 public:
  zipf_sampler(std::uint64_t n, double exponent);

  [[nodiscard]] std::uint64_t sample(rng& r) const;

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double exponent() const noexcept { return s_; }

 private:
  std::uint64_t n_;
  double s_;
  double pow_term_;  // n^(1-s) - 1, cached for the s != 1 branch
};

}  // namespace tormet::workload
