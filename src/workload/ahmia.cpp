#include "src/workload/ahmia.h"

#include "src/util/check.h"

namespace tormet::workload {

ahmia_index ahmia_index::make(std::span<const tor::onion_address> addresses,
                              double public_fraction, rng& r) {
  expects(public_fraction >= 0.0 && public_fraction <= 1.0,
          "fraction must be in [0,1]");
  ahmia_index index;
  for (const auto& addr : addresses) {
    if (r.bernoulli(public_fraction)) index.indexed_.insert(addr.value);
  }
  return index;
}

}  // namespace tormet::workload
