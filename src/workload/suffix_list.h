// Public-suffix handling (the paper's SLD measurements use the Mozilla
// public suffix list to find registered domains). We embed a representative
// suffix set: the generic TLDs, the country TLDs the paper's Fig 3 measures,
// and common two-label suffixes (co.uk, com.br, ...), which is sufficient
// for the synthetic domain universe.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <string_view>

namespace tormet::workload {

class suffix_list {
 public:
  /// The embedded suffix set described above.
  [[nodiscard]] static suffix_list embedded();

  /// True when `suffix` (without leading dot) is a public suffix.
  [[nodiscard]] bool is_public_suffix(std::string_view suffix) const;

  /// Longest public suffix of `hostname`, or nullopt when none matches
  /// (e.g., .onion addresses and bare IPs are not in the list).
  [[nodiscard]] std::optional<std::string> public_suffix_of(
      std::string_view hostname) const;

  /// Second-level domain = registered domain: one label plus the public
  /// suffix ("foo.bar.example.co.uk" -> "example.co.uk"). nullopt when the
  /// hostname has no public suffix or no label above it.
  [[nodiscard]] std::optional<std::string> sld_of(std::string_view hostname) const;

  /// Top-level domain (final label), e.g. "com" — used by the Fig 3
  /// wildcard TLD counters. nullopt for empty/trailing-dot input.
  [[nodiscard]] static std::optional<std::string> tld_of(std::string_view hostname);

 private:
  std::set<std::string, std::less<>> suffixes_;
};

}  // namespace tormet::workload
