// Synthetic GeoIP + autonomous-system database (substitute for MaxMind
// GeoLite2 and CAIDA pfx2as — see DESIGN.md §1). The 32-bit IP space is
// partitioned into per-country prefix blocks, each subdivided into AS
// ranges, so IP -> country and IP -> ASN lookups behave like the real
// databases. Country client-share weights follow the paper's Fig 4 shape
// (US, RU, DE lead; UAE present for the circuit anomaly; a long tail of
// small countries).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace tormet::workload {

/// Index into geoip_db::countries().
using country_index = std::uint16_t;

struct country_info {
  std::string code;       // ISO-like 2-letter code
  double client_share;    // fraction of Tor clients originating here
  std::uint32_t as_count; // ASes allocated to this country
};

class geoip_db {
 public:
  /// Builds the synthetic database: 250 countries (matching the paper's
  /// "at most 250"), ~60k ASes total (the paper's upper bound 59,597).
  [[nodiscard]] static geoip_db make_synthetic();

  [[nodiscard]] const std::vector<country_info>& countries() const noexcept {
    return countries_;
  }
  [[nodiscard]] std::size_t num_countries() const noexcept {
    return countries_.size();
  }
  [[nodiscard]] std::uint32_t total_ases() const noexcept { return total_ases_; }

  /// Country of an IP (reverse of allocate_ip).
  [[nodiscard]] country_index country_of(std::uint32_t ip) const;

  /// ASN of an IP.
  [[nodiscard]] std::uint32_t asn_of(std::uint32_t ip) const;

  /// Samples a country by client share.
  [[nodiscard]] country_index sample_country(rng& r) const;

  /// Index of a country code (throws if unknown).
  [[nodiscard]] country_index index_of(const std::string& code) const;

  /// Returns a fresh, never-before-returned IP inside the country's block
  /// (distinctness is what the unique-IP measurements count). Spread over
  /// the country's ASes by a multiplicative hash.
  [[nodiscard]] std::uint32_t allocate_ip(country_index country);

 private:
  static constexpr std::uint32_t k_block_bits = 22;  // 4M IPs per country

  std::vector<country_info> countries_;
  std::vector<double> cumulative_share_;
  std::vector<std::uint32_t> as_base_;   // first global ASN per country
  std::vector<std::uint32_t> next_ip_;   // allocation counters
  std::uint32_t total_ases_ = 0;
};

}  // namespace tormet::workload
