// The client population model: who connects to Tor, from where, through how
// many guards, and with what daily entry-side behaviour. Parameters are
// expressed as *network-wide* (unscaled) targets calibrated to the paper's
// §5 measurements, then multiplied by `network_scale`; benches scale
// measured values back up when printing comparisons.
//
// Client classes:
//   * web       — Tor Browser users: few connections, browsing circuits
//                 (driven by browsing_driver), moderate directory traffic.
//   * chat      — Ricochet-style P2P onion chat: many non-exit circuits
//                 (the paper's 651-circuit action bound is chat-defined).
//   * bot       — crawlers/botnet nodes: many connections and circuits,
//                 heavy HSDir fetch traffic (drives Table 7's failures).
//   * idle      — dormant clients that connect and do little.
//   * uae_blocked — the paper's UAE anomaly (§5.2): clients that can build
//                 directory circuits but not regular circuits, so they loop
//                 directory fetches. Applied to clients in AE.
//   * promiscuous — bridges / tor2web / NAT aggregation points: contact all
//                 guards (the Table 3 "promiscuous" population).
#pragma once

#include <cstdint>
#include <vector>

#include "src/tor/network.h"
#include "src/util/sim_time.h"
#include "src/workload/geoip.h"

namespace tormet::workload {

enum class client_class : std::uint8_t { web, chat, bot, idle, uae_blocked, promiscuous };

/// Per-class daily entry-side behaviour rates (means of Poisson draws).
struct class_rates {
  double connections = 4.0;       // TCP connections to guards
  double dir_circuits = 8.0;      // directory circuits
  double other_circuits = 12.0;   // preemptive/measurement/pre-built circuits
  double dir_bytes = 600e3;       // consensus+descriptor bytes per dir circuit
  double extra_bytes = 0.0;       // non-web entry payload per day
};

struct population_params {
  double network_scale = 1e-3;

  // -- §5.1 calibration (network-wide, per day) ---------------------------
  double selective_clients = 8.8e6;  // distinct selective client IPs per day
  double promiscuous_clients = 18'000;
  int guards_per_selective = 3;      // 1 data guard + 2 directory guards
  /// Fraction of the selective population replaced with fresh IPs each
  /// day. 0.382 reproduces the paper's 4-day/1-day unique ratio of ~2.15
  /// (unique(4d) = N·(1 + 3·churn)).
  double daily_churn = 0.382;

  // -- class mix over selective clients ------------------------------------
  double web_share = 0.78;
  double chat_share = 0.05;
  double bot_share = 0.10;
  double idle_share = 0.07;

  // Directory rates are deliberately *below* Tor Metrics' assumed 10
  // requests/client/day (modern clients bundle directory pulls through
  // their guards) — this is what makes the Metrics-Portal baseline
  // (stats/metrics_portal.h) underestimate the userbase by the paper's
  // factor of ~4.
  class_rates web_rates{4.0, 2.5, 25.0, 600e3, 2e6};
  class_rates chat_rates{4.0, 2.5, 605.0, 600e3, 5e6};
  class_rates bot_rates{100.0, 3.0, 605.0, 600e3, 2e6};
  class_rates idle_rates{1.0, 1.0, 6.0, 600e3, 1e5};
  /// UAE anomaly: directory loops instead of regular circuits. The repeated
  /// fetches are small (failed consensus pulls), so AE leads in circuits
  /// but not in bytes or connections — the Fig 4 signature.
  class_rates uae_rates{12.0, 500.0, 0.0, 25e3, 0.0};
  /// Promiscuous: one connection per guard (connect_to_guards) plus heavy
  /// circuit building spread across all guards.
  class_rates promiscuous_rates{0.0, 50.0, 2000.0, 600e3, 50e6};

  std::uint64_t seed = 1234;
};

class population {
 public:
  /// Registers the day-1 population into `net` (guard sampling happens per
  /// client inside the network model).
  population(tor::network& net, geoip_db& geo, population_params params);

  /// Applies churn to produce day `day`'s active set (day 0 = first day).
  /// Days must be advanced in order.
  void advance_to_day(int day);

  /// Runs the entry-side behaviour (connections, directory circuits,
  /// non-exit circuits, entry-only payload) for every active client.
  void run_entry_day(sim_time day_start);

  /// Clients active on the current day (web clients first is NOT
  /// guaranteed; filter by class_of).
  [[nodiscard]] const std::vector<tor::client_id>& active() const noexcept {
    return active_;
  }
  [[nodiscard]] client_class class_of(tor::client_id c) const;

  /// Active clients of one class (for the browsing / onion drivers).
  [[nodiscard]] std::vector<tor::client_id> active_of(client_class k) const;

  /// Distinct client IPs ever activated (ground truth for unique-IP
  /// measurements).
  [[nodiscard]] std::size_t unique_ips_to_date() const noexcept {
    return spawned_;
  }

  [[nodiscard]] const population_params& cfg() const noexcept { return params_; }

 private:
  [[nodiscard]] tor::client_id spawn_client(bool promiscuous);
  void run_client_day(tor::client_id c, const class_rates& rates, sim_time t);

  tor::network& net_;
  geoip_db& geo_;
  population_params params_;
  rng rng_;
  /// Indexed by client_id; ids created by other drivers are backfilled as
  /// idle placeholders (they never enter active_).
  std::vector<client_class> classes_;
  std::size_t spawned_ = 0;  // population-spawned clients (distinct IPs)
  std::vector<tor::client_id> active_;
  int current_day_ = 0;
  country_index uae_index_;
};

}  // namespace tormet::workload
