#include "src/workload/suffix_list.h"

namespace tormet::workload {

suffix_list suffix_list::embedded() {
  suffix_list list;
  list.suffixes_ = {
      // generic
      "com", "org", "net", "edu", "gov", "mil", "int", "info", "biz", "io",
      "me", "tv", "cc", "xyz", "top", "site", "online", "club", "shop",
      // the ccTLDs Fig 3 measures plus common others
      "br", "cn", "de", "fr", "in", "ir", "it", "jp", "pl", "ru", "uk", "ua",
      "us", "ca", "au", "nl", "se", "no", "es", "ch", "cz", "kr", "tw", "mx",
      "ar", "at", "be", "dk", "fi", "gr", "hu", "id", "il", "pt", "ro", "sk",
      "tr", "vn", "za", "nz", "ae", "sg", "hk", "th", "my", "cl", "co", "ve",
      // common two-label suffixes
      "co.uk", "org.uk", "ac.uk", "gov.uk", "com.br", "com.cn", "com.au",
      "co.jp", "co.in", "co.kr", "com.mx", "com.ar", "com.tr", "co.za",
      "com.sg", "com.hk", "co.nz", "com.tw", "com.ua", "com.ve",
  };
  return list;
}

bool suffix_list::is_public_suffix(std::string_view suffix) const {
  return suffixes_.contains(suffix);
}

std::optional<std::string> suffix_list::public_suffix_of(
    std::string_view hostname) const {
  // Try progressively shorter suffixes: for "a.b.c.co.uk" test "b.c.co.uk",
  // "c.co.uk", "co.uk", "uk"; the *longest* match wins, so scan from the
  // leftmost dot rightwards and return the first hit.
  std::string_view rest = hostname;
  while (true) {
    const std::size_t dot = rest.find('.');
    if (dot == std::string_view::npos) break;
    rest.remove_prefix(dot + 1);
    if (is_public_suffix(rest)) return std::string{rest};
  }
  // A bare label ("localhost") or sole TLD is not a usable suffix match.
  if (is_public_suffix(hostname)) return std::string{hostname};
  return std::nullopt;
}

std::optional<std::string> suffix_list::sld_of(std::string_view hostname) const {
  const auto suffix = public_suffix_of(hostname);
  if (!suffix.has_value()) return std::nullopt;
  if (suffix->size() >= hostname.size()) return std::nullopt;  // no label above
  // hostname = <labels> '.' <suffix>; find the label just above the suffix.
  const std::string_view above =
      hostname.substr(0, hostname.size() - suffix->size() - 1);
  const std::size_t dot = above.rfind('.');
  const std::string_view label =
      dot == std::string_view::npos ? above : above.substr(dot + 1);
  if (label.empty()) return std::nullopt;
  return std::string{label} + "." + *suffix;
}

std::optional<std::string> suffix_list::tld_of(std::string_view hostname) {
  if (hostname.empty() || hostname.back() == '.') return std::nullopt;
  const std::size_t dot = hostname.rfind('.');
  if (dot == std::string_view::npos) return std::string{hostname};
  return std::string{hostname.substr(dot + 1)};
}

}  // namespace tormet::workload
