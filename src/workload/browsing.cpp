#include "src/workload/browsing.h"

#include "src/crypto/sha256.h"
#include "src/util/check.h"

namespace tormet::workload {

browsing_driver::browsing_driver(tor::network& net, const alexa_list& alexa,
                                 browsing_params params)
    : net_{net}, alexa_{alexa}, params_{std::move(params)},
      alexa_ranks_{alexa.size(), params_.alexa_zipf_exponent},
      tail_ranks_{params_.tail_universe, params_.tail_zipf_exponent},
      rng_{params_.seed}, amazon_siblings_{alexa.sibling_set("amazon")} {
  expects(params_.torproject_share + params_.amazon_share + params_.alexa_share <=
              1.0,
          "destination mixture shares must not exceed 1");
}

std::string browsing_driver::sample_destination() {
  const double u = rng_.uniform();
  if (u < params_.torproject_share) {
    // The Onionoo anomaly: automated clients hammering the Tor-status API
    // dominate, with ordinary project-site visits behind it (§4.3: 43.4 %
    // of primary domains were onionoo.torproject.org in the follow-up
    // measurement vs 40.1 % torproject.org overall).
    const double v = rng_.uniform();
    if (v < 0.90) return "onionoo.torproject.org";
    if (v < 0.97) return "www.torproject.org";
    return "torproject.org";
  }
  if (u < params_.torproject_share + params_.amazon_share) {
    if (rng_.bernoulli(params_.www_amazon_fraction)) return "www.amazon.com";
    return amazon_siblings_[static_cast<std::size_t>(
        rng_.below(amazon_siblings_.size()))];
  }
  if (u < params_.torproject_share + params_.amazon_share + params_.alexa_share) {
    // Zipf over ranks, snapped to one active representative per stride
    // bucket (see header comment).
    std::uint64_t rank = alexa_ranks_.sample(rng_);
    const std::uint32_t stride = params_.alexa_active_stride;
    // Snap tail ranks onto one active representative per stride bucket (the
    // Tor-active subset of the list). Head ranks (top 100) are left alone:
    // popular sites are all active, and snapping them would distort the
    // Fig 2 head buckets.
    if (stride > 1 && rank > 100) {
      const std::uint64_t bucket = (rank - 1) / stride;
      const std::uint64_t offset =
          crypto::sha256_trunc64("alexa-bucket:" + std::to_string(bucket)) % stride;
      rank = std::min<std::uint64_t>(bucket * stride + offset + 1, alexa_.size());
    }
    visited_alexa_ranks_.insert(rank);
    const std::string& domain = alexa_.domain_at_rank(static_cast<std::uint32_t>(rank));
    // Half the visits use the bare registered domain, half a www subdomain
    // (membership matching collapses them onto the same list entry).
    return rng_.bernoulli(0.5) ? domain : "www." + domain;
  }
  // Non-Alexa long tail.
  const std::uint64_t k = tail_ranks_.sample(rng_);
  visited_tail_ids_.insert(k);
  static constexpr const char* tail_tlds[] = {"com", "net", "org", "ru", "de",
                                              "info", "io", "cn", "br", "xyz"};
  const auto tld = tail_tlds[k % std::size(tail_tlds)];
  return "tail" + std::to_string(k) + "." + tld;
}

void browsing_driver::visit_site(tor::client_id c, sim_time t) {
  std::vector<tor::stream_spec> streams;
  const auto subsequent =
      static_cast<std::size_t>(rng_.poisson(params_.subsequent_streams_per_initial));
  streams.reserve(1 + subsequent);

  tor::stream_spec initial;
  if (rng_.bernoulli(params_.ip_literal_fraction)) {
    const bool v6 = rng_.bernoulli(0.25);
    initial.kind = v6 ? tor::address_kind::ipv6 : tor::address_kind::ipv4;
    initial.target = v6 ? "2001:db8::1" : "198.51.100.7";
  } else {
    initial.kind = tor::address_kind::hostname;
    initial.target = sample_destination();
  }
  if (rng_.bernoulli(params_.nonweb_port_fraction)) {
    initial.port = 8080;
  } else {
    initial.port = rng_.bernoulli(params_.port_443_fraction) ? 443 : 80;
  }
  initial.bytes =
      static_cast<std::uint64_t>(rng_.exponential(1.0 / params_.stream_bytes_mean));
  streams.push_back(std::move(initial));

  // Subsequent streams fetch embedded resources: third-party hosts, always
  // web ports (their targets are not measured — only initial streams are
  // "primary domains").
  for (std::size_t i = 0; i < subsequent; ++i) {
    tor::stream_spec s;
    s.kind = tor::address_kind::hostname;
    s.target = "cdn" + std::to_string(rng_.below(64)) + ".example.com";
    s.port = 443;
    s.bytes =
        static_cast<std::uint64_t>(rng_.exponential(1.0 / params_.stream_bytes_mean));
    streams.push_back(std::move(s));
  }
  net_.exit_circuit(c, streams, t);
}

void browsing_driver::run_day(std::span<const tor::client_id> web_clients,
                              sim_time day_start) {
  for (const auto c : web_clients) {
    const std::uint64_t visits = rng_.poisson(params_.circuits_per_web_client);
    for (std::uint64_t i = 0; i < visits; ++i) {
      visit_site(c, day_start + static_cast<std::int64_t>(
                                    rng_.below(k_seconds_per_day)));
    }
  }
}

}  // namespace tormet::workload
