// Trace generation: renders the workload models (zipf exit streams, web
// browsing, onion-service activity, entry-side population) into
// deterministic per-DC event traces — the bridge between the simulation
// layer and the distributed deployment, which replays these traces through
// real data-collector processes (see docs/EVENTS.md and cli::node_runner).
//
// Determinism contract: generate_trace_events() is a pure function of its
// params — same params, same per-DC event sequences, on every host and in
// every process. The distributed byte-identity checks depend on this (a
// node process and the in-process reference round both materialize the
// `generate` workload independently).
//
// Partitioning: simulation events materialize at the observed (measured)
// relays of a canonical measurement_study; relay r maps to DC
// `sorted_index(r) % dcs`, so all DCs receive work even when fewer relays
// than DCs see events. Each per-DC sequence is stably sorted by sim time
// (generation order breaks ties), matching the trace-file ordering
// contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/tor/events.h"

namespace tormet::workload {

struct trace_gen_params {
  /// One of trace_models(): "zipf", "browsing", "onion", "population",
  /// "mixed".
  std::string model = "zipf";
  /// Number of data collectors (one trace per DC).
  std::size_t dcs = 4;
  /// network_scale for the simulation models (browsing/onion/population/
  /// mixed): fraction of the paper's network-wide volumes to simulate.
  double scale = 1e-4;
  /// Event budget for the synthetic "zipf" model (exit streams drawn from a
  /// Zipf rank distribution; no network simulation).
  std::uint64_t events = 5'000;
  std::uint64_t seed = 1;
  /// Days of activity to render (`tormet_tracegen --days N`). Simulation
  /// models advance the population one churn step per day (the Table 5
  /// multi-day unique-client driver); the zipf model splits its event
  /// budget evenly across days. Day d's events carry sim times in
  /// [d·86400, (d+1)·86400). Determinism is per-params within one build:
  /// the same params always reproduce identical traces, and days == 1 is
  /// exactly the default single-day generation.
  std::uint64_t days = 1;
};

/// The supported model names.
[[nodiscard]] const std::vector<std::string>& trace_models();
[[nodiscard]] bool is_known_trace_model(std::string_view model);

/// Renders the model into per-DC event sequences (index = DC index, each
/// time-ordered). Pure function of `params`.
[[nodiscard]] std::vector<std::vector<tor::event>> generate_trace_events(
    const trace_gen_params& params);

/// Writes the per-DC traces as `<dir>/dc-<k>.trace` (the directory must
/// exist). Returns per-DC event counts.
std::vector<std::size_t> write_trace_dir(const trace_gen_params& params,
                                         const std::string& dir);

}  // namespace tormet::workload
